package twmarch_test

import (
	"fmt"
	"math/rand"
	"testing"

	"twmarch"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	bm, err := twmarch.Lookup("March C-")
	if err != nil {
		t.Fatal(err)
	}
	res, err := twmarch.Transform(bm, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.TCM() != 35 {
		t.Fatalf("TCM = %d, want 35", res.TCM())
	}
	mem := twmarch.NewMemory(64, 32)
	mem.Randomize(rand.New(rand.NewSource(1)))
	before := mem.Snapshot()
	ctl, err := twmarch.NewBIST(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctl.Run(mem)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass {
		t.Fatal("clean memory failed BIST")
	}
	if !mem.Equal(before) {
		t.Fatal("contents not preserved")
	}
}

func TestFacadeFaultDetection(t *testing.T) {
	bm, _ := twmarch.Lookup("March U")
	res, err := twmarch.Transform(bm, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := twmarch.NewMemory(32, 8)
	mem.Randomize(rand.New(rand.NewSource(2)))
	faulty, err := twmarch.Inject(mem, twmarch.StuckAt{Cell: twmarch.Site{Addr: 9, Bit: 4}, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := twmarch.RunTest(res.TWMarch, faulty, twmarch.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Detected() {
		t.Fatal("stuck-at fault escaped")
	}
}

func TestFacadeCosts(t *testing.T) {
	bm, _ := twmarch.Lookup("March C-")
	for _, scheme := range []string{"scheme1", "scheme2", "proposed", "tomt", "twmta"} {
		c, err := twmarch.ClosedFormCost(scheme, bm, 32)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if c.TCM <= 0 {
			t.Fatalf("%s: TCM = %d", scheme, c.TCM)
		}
		m, err := twmarch.MeasuredCost(scheme, bm, 32)
		if err != nil {
			t.Fatal(err)
		}
		if m.TCM < c.TCM {
			t.Fatalf("%s: measured %d below closed form %d", scheme, m.TCM, c.TCM)
		}
	}
	if _, err := twmarch.ClosedFormCost("nope", bm, 32); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := twmarch.MeasuredCost("nope", bm, 32); err == nil {
		t.Fatal("unknown scheme accepted by MeasuredCost")
	}
}

func TestFacadeCoverage(t *testing.T) {
	bm, _ := twmarch.Lookup("March C-")
	res, err := twmarch.Transform(bm, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := twmarch.Coverage(res.TWMarch, 3, twmarch.AllFaults(3, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || rep.Coverage() < 0.9 {
		t.Fatalf("coverage report: %d faults, %.2f", rep.Total, rep.Coverage())
	}
}

func TestFacadeParseAndCatalog(t *testing.T) {
	if len(twmarch.Catalog()) < 10 {
		t.Fatal("catalog too small")
	}
	tst, err := twmarch.ParseTest("mine", "{any(w0); up(r0,w1); down(r1,w0); any(r0)}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twmarch.Transform(tst, 16); err != nil {
		t.Fatal(err)
	}
	wt, err := twmarch.WordOriented(tst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wt.Ops() != tst.Ops()*3 {
		t.Fatalf("word-oriented ops = %d", wt.Ops())
	}
}

func TestFacadeTransformBit(t *testing.T) {
	bm, _ := twmarch.Lookup("March C-")
	tm, pred, err := twmarch.TransformBit(bm)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Ops() != 9 || pred.Ops() != 5 {
		t.Fatalf("TMarch C- = %d ops, prediction = %d", tm.Ops(), pred.Ops())
	}
}

// ExampleTransform demonstrates the headline transformation.
func ExampleTransform() {
	bm, _ := twmarch.Lookup("March C-")
	res, _ := twmarch.Transform(bm, 8)
	fmt.Println(res.TSMarch.ASCII())
	fmt.Println(res.ATMarch.ASCII())
	fmt.Printf("TCM=%dN TCP=%dN\n", res.TCM(), res.TCP())
	// Output:
	// {up(ra,w~a); up(r~a,wa); down(ra,w~a); down(r~a,wa); any(ra)}
	// {any(ra,wa^c1,ra^c1,wa,ra); any(ra,wa^c2,ra^c2,wa,ra); any(ra,wa^c3,ra^c3,wa,ra); any(ra)}
	// TCM=25N TCP=15N
}

// ExampleTransformBit shows the classical Section 3 transformation.
func ExampleTransformBit() {
	bm, _ := twmarch.Lookup("March C-")
	tm, pred, _ := twmarch.TransformBit(bm)
	fmt.Println(tm.ASCII())
	fmt.Println(pred.ASCII())
	// Output:
	// {up(ra,w~a); up(r~a,wa); down(ra,w~a); down(r~a,wa); any(ra)}
	// {up(ra); up(r~a); down(ra); down(r~a); any(ra)}
}

func TestFacadeDiagnose(t *testing.T) {
	bm, _ := twmarch.Lookup("March C-")
	res, err := twmarch.Transform(bm, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := twmarch.NewMemory(16, 8)
	mem.Randomize(rand.New(rand.NewSource(4)))
	faulty, err := twmarch.Inject(mem, twmarch.StuckAt{Cell: twmarch.Site{Addr: 3, Bit: 2}, Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := twmarch.Diagnose(res.TWMarch, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sites) != 1 || rep.Sites[0].Addr != 3 || rep.Sites[0].Bit != 2 {
		t.Fatalf("diagnosis: %s", rep.Summary())
	}
}

func TestFacadeSymmetric(t *testing.T) {
	bm, _ := twmarch.Lookup("March C-")
	res, err := twmarch.Transform(bm, 8)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := twmarch.MakeSymmetric(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	mem := twmarch.NewMemory(16, 8)
	mem.Randomize(rand.New(rand.NewSource(5)))
	before := mem.Snapshot()
	out, err := twmarch.RunSymmetric(sym, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass || !mem.Equal(before) {
		t.Fatal("symmetric session failed on clean memory")
	}
}

func TestFacadeOnlineSim(t *testing.T) {
	bm, _ := twmarch.Lookup("March C-")
	res, err := twmarch.Transform(bm, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := twmarch.NewBIST(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	mem := twmarch.NewMemory(8, 4)
	stats, err := twmarch.SimulateOnline(ctl, mem, &twmarch.FixedWindows{Len: ctl.SessionOps() * 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CompletedRuns != 3 || !stats.AllPassed {
		t.Fatalf("online sim: %+v", stats)
	}
}

func TestFacadeAliasingStream(t *testing.T) {
	errs, err := twmarch.AliasingErrorStream(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 4 {
		t.Fatalf("stream length %d", len(errs))
	}
	m, err := twmarch.NewMISR(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		m.Feed(e)
	}
	if !m.Signature().IsZero() {
		t.Fatal("aliasing stream does not compress to zero")
	}
	if _, err := twmarch.AliasingErrorStream(17, 4); err == nil {
		t.Fatal("untabulated width accepted")
	}
}

// A scale smoke test: the full BIST flow on a 64K x 32 memory (2 MiB
// of simulated SRAM) stays well inside interactive time.
func TestLargeMemorySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-memory smoke test")
	}
	bm, _ := twmarch.Lookup("March C-")
	res, err := twmarch.Transform(bm, 32)
	if err != nil {
		t.Fatal(err)
	}
	mem := twmarch.NewMemory(1<<16, 32)
	mem.Randomize(rand.New(rand.NewSource(6)))
	ctl, err := twmarch.NewBIST(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctl.Run(mem)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass {
		t.Fatal("clean 64Kx32 memory failed")
	}
	if out.Ops != ctl.SessionOps()*(1<<16) {
		t.Fatalf("ops = %d", out.Ops)
	}
}
