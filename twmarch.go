// Package twmarch implements the transparent word-oriented memory
// test scheme of Li, Tseng and Wey, "An Efficient Transparent Test
// Scheme for Embedded Word-Oriented Memories" (DATE 2005), together
// with everything needed to use and evaluate it: a march-test model
// and catalog, a word-oriented memory simulator with functional fault
// injection, the classical transparent-test transformations it
// improves on, MISR-based signature analysis, and a periodic online
// BIST controller.
//
// # Overview
//
// A transparent march test reads the current content a of each word
// and performs XOR-relative writes (a, ~a, a^c), restoring the
// original contents when it completes; faults are observed by
// comparing a MISR signature of the read stream against a predicted
// signature computed beforehand. The paper's algorithm TWM_TA
// transforms any bit-oriented march test into a transparent
// word-oriented test in two parts:
//
//   - TSMarch: the source test run with solid all-0/all-1 data,
//     transformed by the classical Nicolaidis rules — it covers
//     stuck-at, transition and all inter-word coupling faults;
//   - ATMarch: a short added test walking log2(W) checkerboard
//     backgrounds c_k through every word to excite intra-word
//     coupling faults.
//
// The resulting length is (M + 5·log2 W)·N operations versus
// M·(log2 W + 1)·N for the prior per-background scheme and 8W·N for
// the TOMT online test — about 56% and 19% respectively for March C-
// on 32-bit words.
//
// # Quick start
//
//	bm, _ := twmarch.Lookup("March C-")
//	res, _ := twmarch.Transform(bm, 32) // TWM_TA
//	fmt.Println(res.TWMarch)            // the transparent word test
//	fmt.Println(res.Prediction)         // its signature prediction
//
//	mem := twmarch.NewMemory(1024, 32)  // 1K x 32 simulated SRAM
//	ctl, _ := twmarch.NewBIST(res.TWMarch)
//	out, _ := ctl.Run(mem)              // prediction + test + compare
//	fmt.Println(out.Pass)               // true on a fault-free memory
//
// The deeper machinery lives in the internal packages; this package
// re-exports the stable surface.
package twmarch

import (
	"twmarch/internal/bistctl"
	"twmarch/internal/complexity"
	"twmarch/internal/core"
	"twmarch/internal/diagnose"
	"twmarch/internal/faults"
	"twmarch/internal/faultsim"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/misr"
	"twmarch/internal/symmetric"
	"twmarch/internal/word"
)

// Word is a memory word of up to 128 bits.
type Word = word.Word

// Test is a march test: a sequence of march elements applying
// read/write operations to every address in a prescribed order.
type Test = march.Test

// Element is one march element.
type Element = march.Element

// Op is a single read or write operation.
type Op = march.Op

// Datum is an operation's data expression — a literal for
// conventional tests, an XOR-expression over the initial contents for
// transparent tests.
type Datum = march.Datum

// CatalogEntry describes one of the shipped bit-oriented march tests.
type CatalogEntry = march.CatalogEntry

// Memory is the word-oriented RAM simulator.
type Memory = memory.Memory

// Fault is a functional memory fault (stuck-at, transition or
// coupling).
type Fault = faults.Fault

// StuckAt, Transition and Coupling are the Section 2 fault models;
// AddrAlias/AddrShadow model address-decoder defects, ReadDestructive
// the dynamic RDF/DRDF faults, and Linked a masking pair of coupling
// faults.
type (
	StuckAt         = faults.StuckAt
	Transition      = faults.Transition
	Coupling        = faults.Coupling
	AddrAlias       = faults.AddrAlias
	AddrShadow      = faults.AddrShadow
	ReadDestructive = faults.ReadDestructive
	Linked          = faults.Linked
)

// Site identifies a bit cell by word address and bit position.
type Site = faults.Site

// TransformResult carries every artifact of the TWM_TA transformation
// (SMarch, TSMarch, ATMarch, the combined TWMarch, and the signature
// prediction test).
type TransformResult = core.TWMResult

// Scheme1Result carries the artifacts of the prior-art per-background
// transformation used as the comparison baseline.
type Scheme1Result = core.Scheme1Result

// BIST is the transparent-BIST controller: one Run performs the
// prediction pass, the test pass and the signature comparison.
type BIST = bistctl.Controller

// BISTOutcome reports one BIST session.
type BISTOutcome = bistctl.Outcome

// MISR is the multiple-input signature register.
type MISR = misr.MISR

// Cost is a (TCM, TCP) complexity pair in operations per word.
type Cost = complexity.Cost

// Lookup returns a catalog march test by name ("March C-", "March U",
// "MATS+", …); the lookup is case- and spacing-insensitive.
func Lookup(name string) (*Test, error) { return march.Lookup(name) }

// Catalog lists the shipped bit-oriented march tests.
func Catalog() []CatalogEntry { return march.Catalog() }

// ParseTest reads a march test from textual notation, e.g.
// "{any(w0); up(r0,w1); down(r1,w0)}" or the arrow form with ⇑⇓⇕.
func ParseTest(name, notation string) (*Test, error) { return march.Parse(name, notation) }

// Transform applies the paper's TWM_TA (Algorithm 1) to a bit-oriented
// march test, producing the transparent word-oriented test for the
// given power-of-two word width.
func Transform(bm *Test, width int) (*TransformResult, error) { return core.TWMTA(bm, width) }

// TransformScheme1 applies the prior-art per-background transparent
// transformation of Nicolaidis [12], the paper's Scheme 1 baseline.
func TransformScheme1(bm *Test, width int) (*Scheme1Result, error) { return core.Scheme1(bm, width) }

// TransformBit applies the classical bit-oriented transparent
// transformation (Section 3) and returns the transparent test and its
// signature prediction.
func TransformBit(bm *Test) (transparent, prediction *Test, err error) {
	bt, err := core.TransformBitOriented(bm)
	if err != nil {
		return nil, nil, err
	}
	return bt.Transparent, bt.Prediction, nil
}

// WordOriented builds the conventional nontransparent word-oriented
// march test from data backgrounds (Section 3).
func WordOriented(bm *Test, width int) (*Test, error) { return core.WordOriented(bm, width) }

// NewMemory creates a fault-free memory simulator with the given
// geometry. It panics on invalid geometry; use memory sizes of at
// least one word and widths within 1..128.
func NewMemory(words, width int) *Memory { return memory.MustNew(words, width) }

// Inject wraps a memory with a single injected fault; the result
// satisfies the same access interface and can be passed to RunTest or
// a BIST controller.
func Inject(mem *Memory, f Fault) (march.Mem, error) {
	inj, err := faults.Inject(mem, f)
	if err != nil {
		return nil, err
	}
	return inj, nil
}

// AllFaults enumerates the complete Section 2 single-fault population
// for a geometry: stuck-at, transition, and coupling faults over all
// cell pairs.
func AllFaults(words, width int) []Fault { return faults.EnumerateAll(words, width) }

// RunResult reports an executed march test.
type RunResult = march.Result

// RunOptions configures RunTest.
type RunOptions = march.RunOptions

// RunTest executes a march test against a memory (or an injected
// fault wrapper), comparing every read against its expected value.
func RunTest(t *Test, mem march.Mem, opts RunOptions) (RunResult, error) {
	return march.Run(t, mem, opts)
}

// NewBIST builds a transparent-BIST controller for a transparent march
// test; its Run method performs the full prediction/test/compare flow.
func NewBIST(test *Test) (*BIST, error) { return bistctl.New(test) }

// ClosedFormCost evaluates the paper's Table 2 complexity formulas for
// the scheme names "scheme1", "scheme2"/"tomt", and "proposed".
func ClosedFormCost(scheme string, bm *Test, width int) (Cost, error) {
	s, err := schemeByName(scheme)
	if err != nil {
		return Cost{}, err
	}
	return complexity.ClosedFormFor(s, bm, width)
}

// MeasuredCost returns the constructive complexity of the actually
// generated tests for the same scheme names.
func MeasuredCost(scheme string, bm *Test, width int) (Cost, error) {
	s, err := schemeByName(scheme)
	if err != nil {
		return Cost{}, err
	}
	return complexity.Constructive(s, bm, width)
}

func schemeByName(name string) (complexity.Scheme, error) {
	switch name {
	case "scheme1":
		return complexity.Scheme1, nil
	case "scheme2", "tomt":
		return complexity.Scheme2, nil
	case "proposed", "twmta", "this work":
		return complexity.Proposed, nil
	}
	return 0, errUnknownScheme(name)
}

type errUnknownScheme string

func (e errUnknownScheme) Error() string {
	return "twmarch: unknown scheme " + string(e) + ` (want "scheme1", "scheme2" or "proposed")`
}

// OnlineStats summarizes a periodic online-BIST simulation.
type OnlineStats = bistctl.OnlineStats

// WindowSource yields idle-window lengths (in memory operations) for
// the online simulation.
type WindowSource = bistctl.WindowSource

// GeometricWindows draws idle-window lengths from a geometric
// distribution — the discrete analogue of exponential idle times.
type GeometricWindows = bistctl.GeometricWindows

// FixedWindows yields a constant idle-window length.
type FixedWindows = bistctl.FixedWindows

// SimulateOnline runs periodic transparent-BIST sessions in idle
// windows until targetRuns sessions complete; sessions that do not fit
// their window are preempted, roll back their partial writes, and
// retry. See the paper's motivation: shorter tests interfere less.
func SimulateOnline(ctl *BIST, mem *Memory, windows WindowSource, targetRuns int) (OnlineStats, error) {
	return bistctl.SimulateOnline(ctl, mem, windows, targetRuns)
}

// NewMISR creates a multiple-input signature register of the given
// width using the library's primitive characteristic polynomial.
func NewMISR(width int) (*MISR, error) { return misr.New(width) }

// AliasingErrorStream constructs a non-zero error stream the MISR of
// this width compresses to zero — superimposed on any read stream it
// leaves the signature unchanged. It demonstrates the aliasing
// limitation of signature-based transparent testing.
func AliasingErrorStream(width, length int) ([]Word, error) {
	p, err := misr.LookupPoly(width)
	if err != nil {
		return nil, err
	}
	return misr.AliasingErrorStream(width, p, length)
}

// Diagnosis is a fault-localization report derived from a failed run.
type Diagnosis = diagnose.Report

// Diagnose runs the test against the memory and localizes/classifies
// any observed failure (see the diagnosis example).
func Diagnose(t *Test, mem march.Mem) (*Diagnosis, error) { return diagnose.Locate(t, mem) }

// MakeSymmetric upgrades a transparent march test so that its reads
// cancel under XOR, enabling the one-pass zero-signature flow of the
// symmetric transparent BIST ([18]); see RunSymmetric and the
// internal/symmetric package docs for the compaction trade-off.
func MakeSymmetric(t *Test) (*Test, error) { return symmetric.MakeSymmetric(t) }

// SymmetricOutcome reports a one-pass symmetric BIST session.
type SymmetricOutcome = symmetric.Outcome

// RunSymmetric executes the one-pass symmetric flow: run the (already
// symmetric) test, XOR-compact the reads, compare against zero.
func RunSymmetric(t *Test, mem march.Mem) (SymmetricOutcome, error) {
	return symmetric.Session(t, mem)
}

// CoverageReport summarizes a fault-injection campaign.
type CoverageReport = faultsim.Report

// Coverage runs a fault-injection campaign: each fault in the list is
// injected into a fresh memory with pseudo-random contents and the
// test's detection verdict recorded. Transparent and nontransparent
// tests are both supported.
func Coverage(t *Test, words int, list []Fault, seed int64) (*CoverageReport, error) {
	c := faultsim.Campaign{Test: t, Words: words, Width: t.Width, Mode: faultsim.DirectCompare, Seed: seed}
	return faultsim.Run(c, list)
}
