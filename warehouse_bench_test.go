// Warehouse read-path harness: the benchmarks behind the PERFORMANCE.md
// "read path" numbers and the scripts/benchdiff gate entries
// BenchmarkWarehouseQuery / BenchmarkWarehouseIngest /
// BenchmarkWarehouseWALReplay. All three run against a shared corpus of
// corpusJobs journaled campaigns (built once per test binary, removed
// by TestMain), so the query/replay pair measures the same question —
// "every result for one grid cell across the whole job history" —
// answered by the B+-tree index versus by replaying every WAL the way
// a store without the index would have to. TestWarehouseQuerySpeedup
// turns that ratio into the checked-in acceptance bound.
package twmarch_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/jobstore"
	"twmarch/internal/warehouse"
)

const (
	// corpusJobs is the journaled-job population the read-path numbers
	// are quoted over (the acceptance bound requires >= 10k).
	corpusJobs = 10_000
	// corpusCellsPerJob is each job's synthesized grid size.
	corpusCellsPerJob = 4
)

// corpusTests is the per-cell test name: cell c of every job carries
// corpusTests[c], so pinning one test selects exactly one cell per job.
var corpusTests = []string{"MATS", "March X", "March C-", "March U"}

// corpusCell synthesizes cell c of job seq. Counters are derived, not
// simulated — the harness measures the index and the WAL scan, and a
// real fault-injection campaign per cell would bury both under
// simulation time.
func corpusCell(seq uint64, c int) campaign.CellResult {
	return campaign.CellResult{
		Cell: campaign.Cell{
			Index:  c,
			Test:   corpusTests[c],
			Width:  2 + 2*(c%2),
			Words:  16,
			Scheme: []string{"twm", "scheme1"}[c%2],
			Mode:   "compare",
			Seed:   int64(seq)*31 + int64(c),
		},
		Faults:   128,
		Detected: 96 + int(seq%32),
		TCM:      14,
		TCP:      6,
	}
}

// corpusQuery is the dimension-filtered range query both paths answer:
// all four dimensions pinned to cell 2's tuple, job range unbounded —
// one matching cell in every job of the corpus.
func corpusQuery() warehouse.Query {
	return warehouse.Query{
		Test:   "March C-",
		Width:  2,
		Words:  16,
		Scheme: "twm",
		Limit:  warehouse.MaxQueryLimit,
	}
}

// whCorpus is the lazily built shared corpus. Benchmarks and the
// speedup test share one build because journaling 10k jobs dominates
// any single measurement; TestMain removes the directory after the
// run.
var whCorpus struct {
	once  sync.Once
	dir   string
	store *jobstore.Store
	wh    *warehouse.Warehouse
	err   error
}

func warehouseCorpus(tb testing.TB) (*jobstore.Store, *warehouse.Warehouse) {
	tb.Helper()
	whCorpus.once.Do(func() { whCorpus.err = buildWarehouseCorpus() })
	if whCorpus.err != nil {
		tb.Fatal(whCorpus.err)
	}
	return whCorpus.store, whCorpus.wh
}

func buildWarehouseCorpus() error {
	dir, err := os.MkdirTemp("", "twmarch-warehouse-bench-")
	if err != nil {
		return err
	}
	whCorpus.dir = dir
	store, err := jobstore.Open(dir)
	if err != nil {
		return err
	}
	spec := campaign.Spec{
		Name:    "warehouse-bench",
		Tests:   corpusTests,
		Widths:  []int{2, 4},
		Words:   []int{16},
		Classes: []string{"SAF"},
		Seed:    1,
	}
	for seq := uint64(1); seq <= corpusJobs; seq++ {
		j, err := store.Create(warehouse.JobID(seq), spec)
		if err != nil {
			return err
		}
		for c := 0; c < corpusCellsPerJob; c++ {
			j.Emit(corpusCell(seq, c))
		}
		if err := j.Finish("done", ""); err != nil {
			return err
		}
	}
	// The WALs are the corpus; the index is derived from them exactly
	// the way twmd derives it after a crash.
	wh, err := warehouse.RebuildFromWAL(filepath.Join(dir, "bench.idx"), warehouse.Options{}, store)
	if err != nil {
		return err
	}
	whCorpus.store, whCorpus.wh = store, wh
	return nil
}

// TestMain only exists to remove the shared corpus directory; every
// other fixture in this package uses per-test temp dirs.
func TestMain(m *testing.M) {
	code := m.Run()
	if whCorpus.wh != nil {
		whCorpus.wh.Close()
	}
	if whCorpus.dir != "" {
		os.RemoveAll(whCorpus.dir)
	}
	os.Exit(code)
}

// indexedQuery pages the corpus query through Search to completion and
// returns the match count and page count.
func indexedQuery(wh *warehouse.Warehouse) (records, pages int, err error) {
	q := corpusQuery()
	for {
		res, err := wh.Search(q)
		if err != nil {
			return 0, 0, err
		}
		records += len(res.Records)
		pages++
		if res.NextToken == "" {
			return records, pages, nil
		}
		q.PageToken = res.NextToken
	}
}

// replayQuery answers the corpus query the pre-index way: load every
// journaled job (spec parse + full WAL decode) and filter its cells.
func replayQuery(store *jobstore.Store) (int, error) {
	ids, err := store.IDs()
	if err != nil {
		return 0, err
	}
	matched := 0
	for _, id := range ids {
		j, err := store.Load(id)
		if err != nil {
			return 0, err
		}
		if j.State != "done" {
			continue
		}
		for _, r := range j.Done {
			if r.Err == "" && r.Test == "March C-" && r.Width == 2 &&
				r.Words == 16 && r.Scheme == "twm" {
				matched++
			}
		}
	}
	return matched, nil
}

// BenchmarkWarehouseQuery measures the index-backed read path: one
// dimension-filtered range query over the full corpus, paged to
// completion through the B+-tree (per-op = the whole 10k-record
// answer, not one page). The hit_pct metric is the page-cache hit
// rate over the benchmark — the same number /metrics serves as
// twm_warehouse_pager_{hits,misses}_total.
func BenchmarkWarehouseQuery(b *testing.B) {
	_, wh := warehouseCorpus(b)
	before := wh.CacheStats()
	var records, pages int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		records, pages, err = indexedQuery(wh)
		if err != nil {
			b.Fatal(err)
		}
		if records != corpusJobs {
			b.Fatalf("query matched %d records, want %d", records, corpusJobs)
		}
	}
	b.StopTimer()
	after := wh.CacheStats()
	if reads := after.Hits + after.Misses - before.Hits - before.Misses; reads > 0 {
		b.ReportMetric(100*float64(after.Hits-before.Hits)/float64(reads), "hit_pct")
	}
	b.ReportMetric(float64(records), "records")
	b.ReportMetric(float64(pages), "pages")
}

// BenchmarkWarehouseWALReplay answers the identical query by WAL
// replay — the cost every read paid before the warehouse existed, and
// the baseline TestWarehouseQuerySpeedup holds the index against. It
// is gated like the other two so the comparison stays honest: a
// jobstore change that quietly slowed (or sped up) replay would skew
// the speedup headline without failing anything.
func BenchmarkWarehouseWALReplay(b *testing.B) {
	store, _ := warehouseCorpus(b)
	var records int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		records, err = replayQuery(store)
		if err != nil {
			b.Fatal(err)
		}
		if records != corpusJobs {
			b.Fatalf("replay matched %d records, want %d", records, corpusJobs)
		}
	}
	b.ReportMetric(float64(records), "records")
}

// BenchmarkWarehouseIngest measures the write path: one InsertResult
// per op into a fresh index — both tree inserts, bloom fold and page
// writes included, checkpoints excluded (twmd checkpoints per settled
// job, not per cell; the per-cell cost is what the streaming Ingester
// sink adds to every simulated cell).
func BenchmarkWarehouseIngest(b *testing.B) {
	wh, err := warehouse.Open(filepath.Join(b.TempDir(), "ingest.idx"), warehouse.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer wh.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i/corpusCellsPerJob) + 1
		if err := wh.InsertResult(seq, corpusCell(seq, i%corpusCellsPerJob)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wh.NumPages()), "pages")
}

// TestWarehouseQuerySpeedup is the read-path acceptance bound: over
// >= 10k journaled jobs, the index-backed dimension-filtered range
// query must beat WAL replay by at least 50x. The two paths must also
// agree on the answer, so the speedup is measured on equal work.
func TestWarehouseQuerySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 10k-job corpus benchmark in -short mode")
	}
	store, wh := warehouseCorpus(t)

	// Warm pass: verifies both paths agree and fills the page cache —
	// the steady state a serving daemon queries from.
	idxRecords, _, err := indexedQuery(wh)
	if err != nil {
		t.Fatal(err)
	}
	walRecords, err := replayQuery(store)
	if err != nil {
		t.Fatal(err)
	}
	if idxRecords != corpusJobs || walRecords != corpusJobs {
		t.Fatalf("paths disagree: index %d, replay %d, want %d", idxRecords, walRecords, corpusJobs)
	}

	// Best-of-three on each side filters scheduler noise without
	// letting one lucky run decide.
	best := func(f func() error) time.Duration {
		bestDur := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := f(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestDur {
				bestDur = d
			}
		}
		return bestDur
	}
	idxDur := best(func() error { _, _, err := indexedQuery(wh); return err })
	walDur := best(func() error { _, err := replayQuery(store); return err })

	speedup := float64(walDur) / float64(idxDur)
	t.Logf("index %v vs WAL replay %v over %d jobs: %.0fx", idxDur, walDur, corpusJobs, speedup)
	if speedup < 50 {
		t.Errorf("index query %v is only %.1fx faster than WAL replay %v, want >= 50x",
			idxDur, speedup, walDur)
	}
}
