// Command doclint fails when a Go package contains exported
// identifiers without doc comments. CI runs it over internal/campaign
// (the engine's API surface for the other packages and the binaries)
// so the campaign contract stays fully documented:
//
//	go run ./scripts/doclint internal/campaign [more packages...]
//
// Checked: the package clause itself, exported top-level types,
// functions, and const/var specs (a doc comment on the enclosing
// const/var block satisfies its members), and exported methods on
// exported receiver types. Unexported identifiers and struct fields
// are out of scope.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package dir> [...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := lint(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lint parses one package directory (tests excluded) and returns a
// report line per undocumented exported identifier.
func lint(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	pkgNames := make([]string, 0, len(pkgs))
	for name := range pkgs {
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)
	for _, pkgName := range pkgNames {
		pkg := pkgs[pkgName]
		// Walk files in sorted name order so the report order (and CI
		// log) is stable across runs.
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			report(pkg.Files[names[0]].Package, "package", pkg.Name)
		}
		for _, name := range names {
			f := pkg.Files[name]
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv, exported := receiver(d); recv != "" && !exported {
						continue // method on an unexported type
					} else if recv != "" {
						report(d.Pos(), "method", recv+"."+d.Name.Name)
					} else {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// lintGenDecl checks type, const and var declarations. A doc comment
// on the enclosing parenthesized block covers every spec in it.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && !blockDoc {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || blockDoc {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), "const/var", n.Name)
				}
			}
		}
	}
}

// receiver returns the method receiver's base type name and whether
// that type is exported; ("", false) for plain functions.
func receiver(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, id.IsExported()
	}
	return "", false
}
