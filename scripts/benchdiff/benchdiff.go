// Command benchdiff is the benchmark-regression gate: it parses `go
// test -bench` output into a compact JSON form and compares it against
// a checked-in baseline (BENCH_BASELINE.json), failing when any
// tracked benchmark's ns/op regressed beyond the threshold.
//
//	go test -run xxx -count 3 -bench 'BenchmarkS5Coverage|...' . | tee bench.txt
//	go run ./scripts/benchdiff -bench bench.txt                  # gate
//	go run ./scripts/benchdiff -bench bench.txt -update          # refresh baseline
//
// With -count > 1 the minimum ns/op per benchmark is used — the
// standard noise filter for wall-clock benchmarks. Every benchmark
// present in the baseline must appear in the fresh run (a silently
// dropped benchmark would otherwise disable its gate). Benchmarks in
// the fresh run that the baseline does not track are reported but do
// not fail the gate; add them with -update.
//
// Baseline numbers are machine-dependent. -calibrate names a small,
// stable benchmark (BenchmarkMemory in this repo's CI) whose
// fresh/baseline ratio rescales the whole baseline before gating,
// factoring a uniformly faster or slower runner out of the
// comparison; refresh with -update when results drift for reasons the
// calibration cannot express (a new runner class with different
// relative costs, an accepted optimization).
//
// With -load the gate switches subject: instead of go test -bench
// output it reads a twmload soak report (cmd/twmload) and compares
// per-endpoint p99 latency against LOAD_BASELINE.json, with a looser
// default threshold (-threshold 3.0) suited to wall-clock load
// numbers on shared runners. -update refreshes the load baseline from
// the report; a report carrying invariant violations always fails.
//
//	go run ./cmd/twmload -profile chaos -seed 1 -report load-report.json
//	go run ./scripts/benchdiff -load load-report.json            # gate
//	go run ./scripts/benchdiff -load load-report.json -update    # refresh
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the JSON schema of BENCH_BASELINE.json.
type Baseline struct {
	// Note documents how the numbers were produced.
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its recorded cost.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's recorded cost.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkS5Coverage-8   4118   559597 ns/op   92.98 coverage_pct
//
// The -N GOMAXPROCS suffix is stripped so baselines are stable across
// machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts ns/op per benchmark from go test -bench output,
// keeping the minimum across repeated runs (-count > 1).
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		if cur, ok := out[m[1]]; !ok || ns < cur.NsPerOp {
			out[m[1]] = Entry{NsPerOp: ns}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark results found in input")
	}
	return out, nil
}

// gate compares fresh results against the baseline and returns the
// report lines plus the names that failed the threshold.
//
// When calibrate names a benchmark present on both sides, every
// baseline ns/op is scaled by the calibration benchmark's fresh/base
// ratio before comparison. The calibration anchor should be a small,
// stable workload (BenchmarkMemory here): it factors a uniformly
// faster or slower CI runner class out of the comparison, so the gate
// catches benchmarks that regressed relative to the machine, not
// machines that differ from the one the baseline was recorded on. The
// anchor itself is exempted from gating (its drift defines the
// scale).
func gate(base, fresh map[string]Entry, threshold float64, calibrate string) (report []string, failures []string) {
	scale := 1.0
	if calibrate != "" {
		b, okB := base[calibrate]
		f, okF := fresh[calibrate]
		switch {
		case okB && okF && b.NsPerOp > 0:
			scale = f.NsPerOp / b.NsPerOp
			report = append(report, fmt.Sprintf("calibration %s: baseline scaled by %.3f", calibrate, scale))
		default:
			report = append(report, fmt.Sprintf("FAIL calibration benchmark %s missing from baseline or fresh run", calibrate))
			failures = append(failures, calibrate)
		}
	}
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if n == calibrate {
			continue
		}
		b := base[n]
		b.NsPerOp *= scale
		f, ok := fresh[n]
		if !ok {
			report = append(report, fmt.Sprintf("FAIL %-28s missing from fresh run (baseline %.0f ns/op)", n, b.NsPerOp))
			failures = append(failures, n)
			continue
		}
		delta := f.NsPerOp/b.NsPerOp - 1
		status := "ok  "
		if delta > threshold {
			status = "FAIL"
			failures = append(failures, n)
		}
		report = append(report, fmt.Sprintf("%s %-28s baseline %12.0f ns/op   fresh %12.0f ns/op   %+6.1f%%",
			status, n, b.NsPerOp, f.NsPerOp, 100*delta))
	}
	var extra []string
	for n := range fresh {
		if _, ok := base[n]; !ok && n != calibrate {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		report = append(report, fmt.Sprintf("new  %-28s fresh %12.0f ns/op (not gated; add with -update)", n, fresh[n].NsPerOp))
	}
	return report, failures
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	benchPath := fs.String("bench", "-", "go test -bench output to parse (\"-\" = stdin)")
	basePath := fs.String("baseline", "", "baseline JSON to gate against or update (default BENCH_BASELINE.json, or LOAD_BASELINE.json with -load)")
	threshold := fs.Float64("threshold", -1, "maximum tolerated regression (default 0.25 = +25% ns/op, or 3.0 = 4x p99 with -load)")
	update := fs.Bool("update", false, "rewrite the baseline from the fresh results instead of gating")
	outPath := fs.String("out", "", "also write the fresh results as JSON (CI artifact)")
	note := fs.String("note", "", "with -update: provenance note stored in the baseline")
	calibrate := fs.String("calibrate", "", "scale the baseline by this benchmark's fresh/base ns/op ratio before gating (machine-speed normalization)")
	loadPath := fs.String("load", "", "gate a twmload JSON report (per-endpoint p99) instead of bench output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *loadPath != "" {
		if *basePath == "" {
			*basePath = "LOAD_BASELINE.json"
		}
		if *threshold < 0 {
			*threshold = 3.0
		}
		return runLoad(*loadPath, *basePath, *threshold, *update, *note, stdout)
	}
	if *basePath == "" {
		*basePath = "BENCH_BASELINE.json"
	}
	if *threshold < 0 {
		*threshold = 0.25
	}

	in := io.Reader(os.Stdin)
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	fresh, err := parseBench(in)
	if err != nil {
		return err
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, Baseline{Note: *note, Benchmarks: fresh}); err != nil {
			return err
		}
	}
	if *update {
		n := *note
		if n == "" {
			n = "refresh with: go test -run xxx -count 3 -bench <family> . | go run ./scripts/benchdiff -update"
		}
		if err := writeJSON(*basePath, Baseline{Note: n, Benchmarks: fresh}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchdiff: baseline %s updated with %d benchmarks\n", *basePath, len(fresh))
		return nil
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchdiff: %s: %v", *basePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchdiff: %s tracks no benchmarks", *basePath)
	}
	report, failures := gate(base.Benchmarks, fresh, *threshold, *calibrate)
	for _, l := range report {
		fmt.Fprintln(stdout, l)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchdiff: %d benchmark(s) regressed beyond %.0f%%: %v", len(failures), 100**threshold, failures)
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), 100**threshold)
	return nil
}

func writeJSON(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
