package main

// The -load mode gates a twmload soak report (internal/loadgen.Report)
// against LOAD_BASELINE.json the same way the bench mode gates ns/op:
// per endpoint, the fresh p99 latency may not regress beyond the
// threshold. Load latencies on a shared CI runner are far noisier than
// microbenchmarks, so the default load threshold is deliberately loose
// (3.0 = 4x) — it exists to catch order-of-magnitude regressions
// (an accidental O(n^2) status handler, a lost streaming fast path),
// not single-digit drift. A report carrying violations fails the gate
// outright, whatever the latencies: byte-identity and fault accounting
// are correctness, not performance.
//
// On top of the relative drift gate, the baseline's optional "slo"
// block sets absolute per-endpoint p99 ceilings. The drift gate asks
// "did this PR slow us down?"; the SLO gate asks "are we honoring the
// latency promise at all?" — the nightly soak fails on either.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"twmarch/internal/loadgen"
)

func writeJSONAny(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("benchdiff: %s: %v", path, err)
	}
	return nil
}

// LoadBaseline is the JSON schema of LOAD_BASELINE.json.
type LoadBaseline struct {
	// Note documents how the numbers were produced.
	Note string `json:"note,omitempty"`
	// Profile and Seed pin the workload the numbers describe; gating a
	// report from a different profile is refused.
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	// Endpoints maps endpoint name to its recorded stats.
	Endpoints map[string]loadgen.EndpointStats `json:"endpoints"`
	// SLO maps endpoint name to its hand-set service-level objective.
	// Unlike Endpoints, these are absolute promises, not measurements:
	// -update carries them forward untouched, and the gate fails on any
	// breach regardless of how the relative drift check fares — a soak
	// may be within 4x of a fast baseline and still burn the SLO, or
	// drift 3x against a very fast baseline while honoring it.
	SLO map[string]SLOTarget `json:"slo,omitempty"`
}

// SLOTarget is one endpoint's objective. Zero fields are not gated.
type SLOTarget struct {
	// P99NS is the p99 latency ceiling in nanoseconds.
	P99NS int64 `json:"p99_ns"`
}

// gateSLO checks fresh endpoint stats against the absolute targets.
// Endpoints missing from the fresh report are gateLoad's problem; an
// SLO naming an endpoint the baseline doesn't track is still gated.
func gateSLO(slo map[string]SLOTarget, fresh map[string]loadgen.EndpointStats) (report []string, failures []string) {
	names := make([]string, 0, len(slo))
	for n := range slo {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		target := slo[n]
		if target.P99NS <= 0 {
			continue
		}
		f, ok := fresh[n]
		if !ok {
			continue
		}
		status := "ok  "
		if f.P99NS > target.P99NS {
			status = "FAIL"
			failures = append(failures, n)
		}
		report = append(report, fmt.Sprintf("%s %-8s SLO p99 %10v   fresh p99 %10v  (%5.1f%% of budget)",
			status, n, time.Duration(target.P99NS), time.Duration(f.P99NS),
			100*float64(f.P99NS)/float64(target.P99NS)))
	}
	return report, failures
}

// gateLoad compares fresh endpoint stats against the baseline.
func gateLoad(base, fresh map[string]loadgen.EndpointStats, threshold float64) (report []string, failures []string) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := base[n]
		f, ok := fresh[n]
		if !ok {
			report = append(report, fmt.Sprintf("FAIL %-8s missing from fresh report (baseline p99 %v)",
				n, time.Duration(b.P99NS)))
			failures = append(failures, n)
			continue
		}
		if b.P99NS <= 0 {
			report = append(report, fmt.Sprintf("ok   %-8s baseline p99 is zero; not gated", n))
			continue
		}
		delta := float64(f.P99NS)/float64(b.P99NS) - 1
		status := "ok  "
		if delta > threshold {
			status = "FAIL"
			failures = append(failures, n)
		}
		report = append(report, fmt.Sprintf("%s %-8s baseline p99 %10v   fresh p99 %10v   %+6.1f%%  (p50 %v -> %v)",
			status, n, time.Duration(b.P99NS), time.Duration(f.P99NS), 100*delta,
			time.Duration(b.P50NS), time.Duration(f.P50NS)))
	}
	var extra []string
	for n := range fresh {
		if _, ok := base[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		report = append(report, fmt.Sprintf("new  %-8s fresh p99 %v (not gated; add with -update)",
			n, time.Duration(fresh[n].P99NS)))
	}
	return report, failures
}

// runLoad is the -load entry point.
func runLoad(reportPath, basePath string, threshold float64, update bool, note string, stdout io.Writer) error {
	rep, err := loadgen.ReadReport(reportPath)
	if err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(stdout, "VIOLATION: %s\n", v)
		}
		return fmt.Errorf("benchdiff: load report %s carries %d invariant violations; refusing to gate latencies on a broken run",
			reportPath, len(rep.Violations))
	}

	if update {
		if note == "" {
			note = "refresh with: go run ./cmd/twmload -profile " + rep.Profile +
				" -report load-report.json && go run ./scripts/benchdiff -load load-report.json -update"
		}
		base := LoadBaseline{Note: note, Profile: rep.Profile, Seed: rep.Seed, Endpoints: rep.Endpoints}
		// The SLO block is a hand-set promise, not a measurement: a
		// baseline refresh must never silently loosen or drop it.
		var prev LoadBaseline
		if err := readJSON(basePath, &prev); err == nil {
			base.SLO = prev.SLO
		}
		if err := writeJSONAny(basePath, base); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchdiff: load baseline %s updated with %d endpoints (profile %s seed %d; %d SLO targets kept)\n",
			basePath, len(rep.Endpoints), rep.Profile, rep.Seed, len(base.SLO))
		return nil
	}

	var base LoadBaseline
	if err := readJSON(basePath, &base); err != nil {
		return err
	}
	if len(base.Endpoints) == 0 {
		return fmt.Errorf("benchdiff: %s tracks no endpoints", basePath)
	}
	if base.Profile != "" && base.Profile != rep.Profile {
		return fmt.Errorf("benchdiff: baseline %s records profile %q but the report ran %q; latencies are not comparable",
			basePath, base.Profile, rep.Profile)
	}
	report, failures := gateLoad(base.Endpoints, rep.Endpoints, threshold)
	sloReport, sloFailures := gateSLO(base.SLO, rep.Endpoints)
	for _, l := range append(report, sloReport...) {
		fmt.Fprintln(stdout, l)
	}
	switch {
	case len(failures) > 0 && len(sloFailures) > 0:
		return fmt.Errorf("benchdiff: %d endpoint(s) regressed beyond %.0f%%: %v; %d endpoint(s) burned their SLO: %v",
			len(failures), 100*threshold, failures, len(sloFailures), sloFailures)
	case len(failures) > 0:
		return fmt.Errorf("benchdiff: %d endpoint(s) regressed beyond %.0f%%: %v", len(failures), 100*threshold, failures)
	case len(sloFailures) > 0:
		return fmt.Errorf("benchdiff: %d endpoint(s) burned their p99 SLO: %v", len(sloFailures), sloFailures)
	}
	fmt.Fprintf(stdout, "benchdiff: %d endpoints within %.0f%% of baseline, %d SLO targets honored, zero violations\n",
		len(base.Endpoints), 100*threshold, len(base.SLO))
	return nil
}
