package main

import (
	"path/filepath"
	"strings"
	"testing"

	"twmarch/internal/loadgen"
)

func writeLoadReport(t *testing.T, dir, name string, rep loadgen.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func ep(p50, p99 int64) loadgen.EndpointStats {
	return loadgen.EndpointStats{Count: 100, P50NS: p50, P99NS: p99, P999NS: p99, MaxNS: p99}
}

func TestLoadGate(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "LOAD_BASELINE.json")
	baseRep := loadgen.Report{
		Profile: "chaos", Seed: 1, Workers: 3,
		Endpoints: map[string]loadgen.EndpointStats{
			"submit": ep(1_000_000, 10_000_000),
			"status": ep(500_000, 5_000_000),
		},
		Violations: []string{},
	}
	repPath := writeLoadReport(t, dir, "base-report.json", baseRep)

	// Seed the baseline via -update.
	var out strings.Builder
	if err := run([]string{"-load", repPath, "-baseline", basePath, "-update"}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}

	// Identical report passes.
	out.Reset()
	if err := run([]string{"-load", repPath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("self-gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 endpoints within") {
		t.Fatalf("unexpected gate output:\n%s", out.String())
	}

	// A 10x p99 regression on one endpoint fails; a new ungated
	// endpoint is reported but does not fail.
	bad := baseRep
	bad.Endpoints = map[string]loadgen.EndpointStats{
		"submit": ep(1_000_000, 100_000_000),
		"status": ep(500_000, 5_000_000),
		"events": ep(2_000_000, 20_000_000),
	}
	badPath := writeLoadReport(t, dir, "bad-report.json", bad)
	out.Reset()
	err := run([]string{"-load", badPath, "-baseline", basePath}, &out)
	if err == nil || !strings.Contains(err.Error(), "submit") {
		t.Fatalf("regression not caught: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new  events") {
		t.Fatalf("new endpoint not reported:\n%s", out.String())
	}

	// Within the loose default threshold (4x), a 2x drift passes.
	drift := baseRep
	drift.Endpoints = map[string]loadgen.EndpointStats{
		"submit": ep(2_000_000, 20_000_000),
		"status": ep(1_000_000, 10_000_000),
	}
	driftPath := writeLoadReport(t, dir, "drift-report.json", drift)
	if err := run([]string{"-load", driftPath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("2x drift must pass the 4x default threshold: %v", err)
	}

	// An endpoint missing from the fresh report fails.
	missing := baseRep
	missing.Endpoints = map[string]loadgen.EndpointStats{"submit": ep(1_000_000, 10_000_000)}
	missingPath := writeLoadReport(t, dir, "missing-report.json", missing)
	if err := run([]string{"-load", missingPath, "-baseline", basePath}, &out); err == nil {
		t.Fatal("missing endpoint must fail the gate")
	}
}

// TestLoadGateSLO: the absolute SLO block fails the gate on a burn
// even when the relative drift check passes, and -update carries the
// hand-set targets forward instead of dropping them.
func TestLoadGateSLO(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "LOAD_BASELINE.json")
	baseRep := loadgen.Report{
		Profile: "chaos", Seed: 1, Workers: 3,
		Endpoints: map[string]loadgen.EndpointStats{
			"submit": ep(1_000_000, 10_000_000),
			"status": ep(500_000, 5_000_000),
		},
		Violations: []string{},
	}
	repPath := writeLoadReport(t, dir, "base-report.json", baseRep)
	var out strings.Builder
	if err := run([]string{"-load", repPath, "-baseline", basePath, "-update"}, &out); err != nil {
		t.Fatal(err)
	}

	// Hand-set an SLO: submit p99 must stay under 20ms.
	var base LoadBaseline
	if err := readJSON(basePath, &base); err != nil {
		t.Fatal(err)
	}
	base.SLO = map[string]SLOTarget{"submit": {P99NS: 20_000_000}}
	if err := writeJSONAny(basePath, base); err != nil {
		t.Fatal(err)
	}

	// Within both gates: passes, and the SLO line is reported.
	out.Reset()
	if err := run([]string{"-load", repPath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("SLO-honoring report failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SLO p99") || !strings.Contains(out.String(), "1 SLO targets honored") {
		t.Fatalf("SLO not reported:\n%s", out.String())
	}

	// 25ms p99 is only 2.5x the 10ms baseline — well inside the 4x
	// drift gate — but burns the 20ms SLO. The gate must fail on the
	// SLO alone.
	burn := baseRep
	burn.Endpoints = map[string]loadgen.EndpointStats{
		"submit": ep(1_000_000, 25_000_000),
		"status": ep(500_000, 5_000_000),
	}
	burnPath := writeLoadReport(t, dir, "burn-report.json", burn)
	out.Reset()
	err := run([]string{"-load", burnPath, "-baseline", basePath}, &out)
	if err == nil || !strings.Contains(err.Error(), "SLO") || !strings.Contains(err.Error(), "submit") {
		t.Fatalf("SLO burn not caught: err=%v\n%s", err, out.String())
	}

	// A baseline refresh keeps the hand-set SLO block.
	out.Reset()
	if err := run([]string{"-load", repPath, "-baseline", basePath, "-update"}, &out); err != nil {
		t.Fatal(err)
	}
	var refreshed LoadBaseline
	if err := readJSON(basePath, &refreshed); err != nil {
		t.Fatal(err)
	}
	if refreshed.SLO["submit"].P99NS != 20_000_000 {
		t.Fatalf("-update dropped the SLO block: %+v", refreshed.SLO)
	}
}

func TestLoadGateRefusesViolationsAndProfileMismatch(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "LOAD_BASELINE.json")
	good := loadgen.Report{
		Profile:    "chaos",
		Seed:       1,
		Endpoints:  map[string]loadgen.EndpointStats{"submit": ep(1, 2)},
		Violations: []string{},
	}
	goodPath := writeLoadReport(t, dir, "good.json", good)
	var out strings.Builder
	if err := run([]string{"-load", goodPath, "-baseline", basePath, "-update"}, &out); err != nil {
		t.Fatal(err)
	}

	// Violations poison the gate even with healthy latencies.
	broken := good
	broken.Violations = []string{"byte-identity: job c9 diverged"}
	brokenPath := writeLoadReport(t, dir, "broken.json", broken)
	err := run([]string{"-load", brokenPath, "-baseline", basePath}, &out)
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("violating report must fail: %v", err)
	}

	// A report from another profile is not comparable.
	other := good
	other.Profile = "interactive"
	otherPath := writeLoadReport(t, dir, "other.json", other)
	if err := run([]string{"-load", otherPath, "-baseline", basePath}, &out); err == nil {
		t.Fatal("profile mismatch must fail")
	}
}
