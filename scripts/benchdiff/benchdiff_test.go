package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: twmarch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkS5Coverage-8       4118    559597 ns/op    92.98 coverage_pct    1368 faults
BenchmarkS5Coverage-8       4000    571000 ns/op    92.98 coverage_pct    1368 faults
BenchmarkDetectsFast-8      3964    558495 ns/op    1368 faults
BenchmarkCampaignParallel   3468    698463 ns/op
PASS
ok      twmarch 12.223s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	// -count repeats keep the minimum; the -N suffix is stripped.
	if got["BenchmarkS5Coverage"].NsPerOp != 559597 {
		t.Errorf("S5Coverage = %v, want min 559597", got["BenchmarkS5Coverage"].NsPerOp)
	}
	if got["BenchmarkCampaignParallel"].NsPerOp != 698463 {
		t.Errorf("CampaignParallel = %v", got["BenchmarkCampaignParallel"].NsPerOp)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestGate(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1000},
	}
	fresh := map[string]Entry{
		"BenchmarkA": {NsPerOp: 1200}, // +20%: within a 25% threshold
		"BenchmarkB": {NsPerOp: 1300}, // +30%: regression
		// BenchmarkC missing: must fail
		"BenchmarkD": {NsPerOp: 500}, // untracked: reported, not gated
	}
	report, failures := gate(base, fresh, 0.25, "")
	if len(failures) != 2 || failures[0] != "BenchmarkB" || failures[1] != "BenchmarkC" {
		t.Fatalf("failures = %v, want [BenchmarkB BenchmarkC]", failures)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"ok   BenchmarkA", "FAIL BenchmarkB", "missing from fresh run", "new  BenchmarkD"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

// Calibration rescales the baseline by the anchor's drift: a machine
// that is uniformly 2x slower must not fail the gate, while a
// benchmark that regressed beyond the machine's own drift must.
func TestGateCalibrated(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkMem": {NsPerOp: 100}, // calibration anchor
		"BenchmarkA":   {NsPerOp: 1000},
		"BenchmarkB":   {NsPerOp: 1000},
	}
	fresh := map[string]Entry{
		"BenchmarkMem": {NsPerOp: 200},  // machine is 2x slower
		"BenchmarkA":   {NsPerOp: 2100}, // 2.1x: within 25% of the scaled baseline
		"BenchmarkB":   {NsPerOp: 2600}, // 2.6x: genuine regression
	}
	report, failures := gate(base, fresh, 0.25, "BenchmarkMem")
	if len(failures) != 1 || failures[0] != "BenchmarkB" {
		t.Fatalf("failures = %v, want [BenchmarkB]:\n%s", failures, strings.Join(report, "\n"))
	}
	if !strings.Contains(strings.Join(report, "\n"), "scaled by 2.000") {
		t.Errorf("calibration scale not reported:\n%s", strings.Join(report, "\n"))
	}
	// A missing anchor must fail loudly rather than gate against the
	// wrong machine class.
	delete(fresh, "BenchmarkMem")
	_, failures = gate(base, fresh, 0.25, "BenchmarkMem")
	if len(failures) == 0 || failures[0] != "BenchmarkMem" {
		t.Fatalf("missing calibration anchor not flagged: %v", failures)
	}
}

func TestRunUpdateThenGate(t *testing.T) {
	dir := t.TempDir()
	benchFile := filepath.Join(dir, "bench.txt")
	baseFile := filepath.Join(dir, "baseline.json")
	outFile := filepath.Join(dir, "fresh.json")
	if err := os.WriteFile(benchFile, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-bench", benchFile, "-baseline", baseFile, "-update"}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-bench", benchFile, "-baseline", baseFile, "-out", outFile}, &sb); err != nil {
		t.Fatalf("gate against own baseline failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "within 25% of baseline") {
		t.Errorf("unexpected gate output:\n%s", sb.String())
	}
	if _, err := os.Stat(outFile); err != nil {
		t.Errorf("artifact JSON not written: %v", err)
	}
	// A 10x regression on one benchmark must fail the gate.
	regressed := strings.Replace(sampleBench, "3964    558495 ns/op", "3964    5584950 ns/op", 1)
	if err := os.WriteFile(benchFile, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err := run([]string{"-bench", benchFile, "-baseline", baseFile}, &sb)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkDetectsFast") {
		t.Fatalf("regression not caught: err=%v\n%s", err, sb.String())
	}
}
