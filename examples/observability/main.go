// Observability: the fleet's instrumentation layer end to end. The
// topology of examples/cluster — a coordinator dispatching a campaign
// grid to workers over HTTP — runs again here, but this time the
// point is what you can *see*: every layer records itself on the
// process-wide internal/obs registry, the /metrics endpoint serves
// the Prometheus text exposition twmd and twmw expose, /debug/runtime
// serves the same numbers as JSON alongside heap and goroutine stats,
// and the logs are structured slog records with component and
// per-lease attributes instead of formatted prefixes.
//
// Run it and read the scrape: engine counters (cells simulated,
// fault-cache hits), cluster counters (the lease lifecycle, tallied
// from the same event stream the dispatch journal records), worker
// outcomes, and HTTP request metrics — all from one registry, no
// dependencies installed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
	"twmarch/internal/obs"
)

func main() {
	// Structured logging, as twmw -log-format text configures it: every
	// record carries component; per-lease records add job/lease/cell.
	logger := obs.NewLogger(os.Stderr, obs.LogText, "example", nil).With("worker", "twmw-1")

	spec := campaign.Spec{
		Name:    "observability",
		Tests:   []string{"March C-", "March U"},
		Widths:  []int{4, 8},
		Words:   []int{4, 8},
		Classes: []string{"SAF", "TF"},
		Seed:    42,
	}
	ctx := context.Background()

	// The coordinator plus the observability surface on one mux — the
	// shape of twmd's listener (twmw serves the same obs surface alone
	// on its -metrics-addr). Instrument wraps the mux with the
	// twm_http_* request counter and latency histogram.
	coord := cluster.New(cluster.Options{IdleRetry: 2 * time.Millisecond})
	mux := http.NewServeMux()
	mux.Handle("/cluster/", coord)
	obs.Mount(mux, obs.Default())
	ts := httptest.NewServer(obs.Instrument("example", mux, nil))
	defer ts.Close()
	fmt.Printf("serving /cluster, /metrics and /debug on %s\n\n", ts.URL)

	// One worker fleet, dispatch the grid, wait for the fold — all
	// instrumented as a side effect of running at all.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	for i := 1; i <= 2; i++ {
		w := &cluster.Worker{
			Client:   &cluster.Client{Base: ts.URL, Worker: fmt.Sprintf("twmw-%d", i)},
			Parallel: 2,
			Poll:     2 * time.Millisecond,
			Log:      logger,
		}
		go w.Run(wctx)
	}
	agg, err := coord.Dispatch(ctx, "c1", spec, nil, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign done: %d cells, coverage %.2f%%\n\n", len(agg.Cells), 100*agg.CoverageFraction())

	// Scrape /metrics exactly as Prometheus would and show the families
	// the run just moved. The exposition is deterministically ordered —
	// families by name, series by label values — so repeated scrapes
	// diff cleanly.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— GET /metrics (engine, cluster, worker and HTTP families) —")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, fam := range []string{"twm_engine_cells", "twm_engine_fault_cache", "twm_cluster_lease_events", "twm_worker_leases", "twm_http_requests"} {
			if strings.HasPrefix(line, fam) || (strings.HasPrefix(line, "# ") && strings.Contains(line, " "+fam)) {
				fmt.Println(line)
				break
			}
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// The /debug/runtime snapshot: the registry dump rides alongside
	// goroutine and heap stats, machine-readable.
	resp, err = http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		log.Fatal(err)
	}
	var snap struct {
		Goroutines     int    `json:"goroutines"`
		HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		Metrics        []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\n— GET /debug/runtime —\ngoroutines %d, heap %d KiB, %d metric families registered\n",
		snap.Goroutines, snap.HeapAllocBytes/1024, len(snap.Metrics))
	fmt.Println("(GET /debug/pprof/ serves the standard net/http/pprof profiles on the same mux)")
}
