// Quickstart: transform a classical march test into the paper's
// transparent word-oriented test, run it on a simulated embedded SRAM,
// and watch it preserve the memory contents while catching an injected
// fault.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twmarch"
)

func main() {
	// 1. Pick a bit-oriented march test from the catalog.
	bm, err := twmarch.Lookup("March C-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source test %s (M=%d, Q=%d):\n  %s\n\n", bm.Name, bm.Ops(), bm.Reads(), bm.ASCII())

	// 2. Transform it for a 32-bit word memory with TWM_TA.
	res, err := twmarch.Transform(bm, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transparent word-oriented test (TCM=%dN, TCP=%dN):\n  %s\n\n",
		res.TCM(), res.TCP(), res.TWMarch.ASCII())

	// 3. A 1K x 32 embedded SRAM holding live data.
	mem := twmarch.NewMemory(1024, 32)
	mem.Randomize(rand.New(rand.NewSource(42)))
	before := mem.Snapshot()

	// 4. Run the full transparent BIST flow: prediction pass, test
	// pass, signature comparison.
	ctl, err := twmarch.NewBIST(res.TWMarch)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ctl.Run(mem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free memory: pass=%v, contents preserved=%v (%d ops)\n",
		out.Pass, mem.Equal(before), out.Ops)

	// 5. Inject a stuck-at fault and run again: the signatures now
	// disagree.
	faulty, err := twmarch.Inject(mem, twmarch.StuckAt{
		Cell:  twmarch.Site{Addr: 123, Bit: 17},
		Value: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err = ctl.Run(faulty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with SAF1@123.17:   pass=%v (predicted %s, got %s)\n",
		out.Pass, out.Predicted.Hex(32), out.Actual.Hex(32))
}
