// Customtest: authoring your own march test and putting it through the
// whole pipeline — parse, measure its fault coverage, transform it
// into the transparent word-oriented form, and compare its cost to the
// catalog's workhorse.
//
// The custom test below is a deliberately weakened March C- (one
// descending element dropped): the coverage campaign shows exactly
// which fault class pays for the shortcut, and the transform still
// yields a valid transparent test.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twmarch"
)

func main() {
	// 1. Author a march test in standard notation.
	custom, err := twmarch.ParseTest("My March",
		"{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); any(r1)}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom test (M=%d, Q=%d):\n  %s\n\n", custom.Ops(), custom.Reads(), custom.ASCII())

	// 2. Measure its bit-level fault coverage against the reference.
	reference, err := twmarch.Lookup("March C-")
	if err != nil {
		log.Fatal(err)
	}
	population := twmarch.AllFaults(4, 1)
	for _, tc := range []*twmarch.Test{custom, reference} {
		rep, err := twmarch.Coverage(tc, 4, population, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s coverage %.1f%%:", tc.Name, 100*rep.Coverage())
		for _, cls := range rep.Classes() {
			s := rep.ByClass[cls]
			fmt.Printf("  %s %.0f%%", cls, 100*s.Coverage())
		}
		fmt.Println()
	}
	fmt.Println()

	// 3. Transform the custom test for a 16-bit word memory and check
	// the transparent test still works end to end.
	res, err := twmarch.Transform(custom, 16)
	if err != nil {
		log.Fatal(err)
	}
	mem := twmarch.NewMemory(128, 16)
	mem.Randomize(rand.New(rand.NewSource(1)))
	before := mem.Snapshot()
	ctl, err := twmarch.NewBIST(res.TWMarch)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ctl.Run(mem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transparent form: TCM=%dN TCP=%dN, pass=%v, contents preserved=%v\n",
		res.TCM(), res.TCP(), out.Pass, mem.Equal(before))

	// 4. Cost comparison against the catalog reference at this width.
	refRes, err := twmarch.Transform(reference, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost: custom %dN total vs March C- %dN total\n",
		res.TCM()+res.TCP(), refRes.TCM()+refRes.TCP())
	fmt.Println()
	fmt.Println("Takeaway: the dropped element buys a shorter test but loses part")
	fmt.Println("of the coupling-fault population — the campaign shows which part.")
}
