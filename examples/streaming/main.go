// Streaming: the campaign engine's event-driven run path. Instead of
// waiting for the whole grid, plug campaign.Sinks into Engine.Stream
// and watch each CellResult the moment its simulation completes —
// the same per-cell stream cmd/twmd serves on GET /campaigns/{id}/events
// and journals under -datadir, and the flow a transparent field-test
// controller needs: results arrive continuously, and an interrupted
// run resumes from what already landed.
//
// The example runs one grid three ways over the identical spec:
//
//  1. stream it, printing an NDJSON event line per cell plus live
//     snapshots of the incremental aggregate;
//  2. interrupt it halfway, then resume from the "journaled" results
//     — the engine re-simulates only the remainder;
//  3. compare both canonical aggregates against a plain batch run:
//     all three are byte-identical.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"

	"twmarch/internal/campaign"
)

func main() {
	spec := campaign.Spec{
		Name:    "streaming",
		Tests:   []string{"March C-", "March U"},
		Widths:  []int{4, 8},
		Words:   []int{4, 8},
		Classes: []string{"SAF", "TF"},
		Seed:    42,
	}
	ctx := context.Background()

	// 1. Stream: every completed cell is an event. The engine emits in
	// completion order, serialized, exactly once per cell — and only
	// after folding the result, so a Snapshot taken inside the sink
	// already includes it.
	fmt.Println("— streaming run: one NDJSON line per completed cell —")
	prog := &campaign.Progress{}
	agg := campaign.NewAggregator(spec)
	events := 0
	printer := campaign.SinkFunc(func(r campaign.CellResult) {
		events++
		line, err := json.Marshal(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.100s…\n", line)
		if events%8 == 0 {
			st := agg.Stats()
			fmt.Printf("  snapshot after %d cells: %d/%d faults detected (%.2f%%), %.0f cells/s\n",
				st.Cells, st.Detected, st.Faults, 100*st.CoverageFraction(), prog.Rate())
		}
	})
	streamed, err := campaign.Engine{}.Stream(ctx, spec, prog, agg, printer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d events; final coverage %.2f%%\n\n", events, 100*streamed.CoverageFraction())

	// 2. Interrupt and resume: seed a fresh aggregator with half the
	// results — exactly what twmd does when it replays a job's journal
	// after a restart — and stream the rest. Seeded cells are not
	// re-simulated and not re-emitted.
	fmt.Println("— resumed run: second half only —")
	resumedAgg := campaign.NewAggregator(spec)
	for _, r := range streamed.Cells[:len(streamed.Cells)/2] {
		resumedAgg.Add(r)
	}
	resimulated := 0
	counter := campaign.SinkFunc(func(campaign.CellResult) { resimulated++ })
	resumed, err := campaign.Engine{}.Stream(ctx, spec, &campaign.Progress{}, resumedAgg, counter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume re-simulated %d of %d cells\n\n", resimulated, len(resumed.Cells))

	// 3. Byte-identical canonical aggregates, all three ways.
	batch, err := campaign.Engine{}.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	cStream, err := streamed.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	cResumed, err := resumed.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	cBatch, err := batch.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical stream == batch:  %v\n", bytes.Equal(cStream, cBatch))
	fmt.Printf("canonical resume == batch:  %v\n", bytes.Equal(cResumed, cBatch))
	fmt.Println()
	fmt.Print(streamed.Render())
}
