// Campaign: run a characterization grid on the internal/campaign
// engine — the fleet-scale counterpart of the single faultcoverage
// run. The spec spans march tests × word widths × memory sizes ×
// schemes; the engine fans the cells out over a worker pool with a
// deterministic per-cell seed, so the aggregate below is identical no
// matter how many workers run it (try Workers: 1).
//
// The same spec, POSTed as JSON to a running `twmd` daemon, produces
// the same canonical aggregate over HTTP:
//
//	go run ./cmd/twmd &
//	curl -s -X POST localhost:8080/campaigns -d '{
//	  "name": "example", "tests": ["March C-", "March U"],
//	  "widths": [4, 8], "words": [4, 8], "seed": 42
//	}'
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"twmarch/internal/campaign"
)

func main() {
	spec := campaign.Spec{
		Name:    "example",
		Tests:   []string{"March C-", "March U"},
		Widths:  []int{4, 8},
		Words:   []int{4, 8},
		Classes: []string{"SAF", "TF", "CFst", "CFid", "CFin"},
		Seed:    42,
	}
	cells, err := spec.Cells()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %q: %d cells on %d workers\n\n", spec.Name, len(cells), runtime.GOMAXPROCS(0))

	// Poll progress from a second goroutine while the engine runs —
	// the same counters cmd/twmd serves on GET /campaigns/{id}.
	prog := &campaign.Progress{}
	quit := make(chan struct{})
	go func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				fmt.Printf("  progress: %d/%d (%.0f%%)\n", prog.Done(), prog.Total(), 100*prog.Fraction())
			}
		}
	}()
	agg, err := campaign.Engine{}.RunProgress(context.Background(), spec, prog)
	close(quit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(agg.Render())
	fmt.Printf("\nwall clock: %s for %d fault injections\n",
		time.Duration(agg.WallClockNS).Round(time.Millisecond), agg.Faults)
}
