// Cluster: distributed campaign execution. A coordinator shards a
// campaign's cell grid across worker daemons over HTTP — the topology
// of twmd -cluster plus a twmw fleet, here in one process so the
// example is self-contained. Three workers lease cells, simulate them
// locally, and report results; a fourth "worker" takes a lease and
// dies without completing it, so its cell's lease expires and the
// cell requeues to the healthy fleet.
//
// The punchline is the determinism contract surviving distribution:
// every cell carries a deterministically derived seed and the fold is
// commutative and dup-safe, so the aggregate assembled from whatever
// interleaving, placement, and retry history the run happens to take
// is byte-identical to a single-process engine run of the same spec.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
)

func main() {
	spec := campaign.Spec{
		Name:    "cluster",
		Tests:   []string{"March C-", "March U"},
		Widths:  []int{4, 8},
		Words:   []int{4, 8},
		Classes: []string{"SAF", "TF"},
		Seed:    42,
	}
	ctx := context.Background()

	// The coordinator side: twmd -cluster embeds exactly this, mounted
	// on its API mux. Short lease TTL so the dead worker's cell
	// requeues quickly.
	coord := cluster.New(cluster.Options{
		LeaseTTL:     300 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond,
		IdleRetry:    5 * time.Millisecond,
	})
	ts := httptest.NewServer(coord)
	defer ts.Close()
	fmt.Printf("coordinator serving /cluster on %s\n", ts.URL)

	// Dispatch the grid in the background — this is what a twmd job
	// runner does per submitted campaign; it blocks until every cell
	// is folded. The events hook sees the lease lifecycle — twmd
	// journals these into the job's dispatch.ndjson side log.
	var leases, expires, requeues atomic.Int64
	events := func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EventLease:
			leases.Add(1)
		case cluster.EventExpire:
			expires.Add(1)
			fmt.Printf("lease %s on cell %d expired (worker %s died)\n", ev.Lease, ev.Cell, ev.Worker)
		case cluster.EventRequeue:
			requeues.Add(1)
			fmt.Printf("cell %d requeued (attempt %d)\n", ev.Cell, ev.Attempt)
		}
	}
	var completed atomic.Int64
	sink := campaign.SinkFunc(func(r campaign.CellResult) { completed.Add(1) })
	prog := &campaign.Progress{}
	fmt.Println("\n— dispatching 16 cells across the fleet —")
	type dispatched struct {
		agg *campaign.Aggregate
		err error
	}
	done := make(chan dispatched, 1)
	go func() {
		agg, err := coord.Dispatch(ctx, "c1", spec, prog, nil, events, sink)
		done <- dispatched{agg, err}
	}()

	// A worker that dies mid-cell: it takes one lease and never renews
	// or completes, like a killed twmw process.
	deadbeat := &cluster.Client{Base: ts.URL, Worker: "deadbeat"}
	for {
		g, err := deadbeat.Lease(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if g.Status == cluster.StatusLease {
			fmt.Printf("worker deadbeat leased cell %d and died\n", g.Cell.Index)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The healthy fleet: three twmw-equivalent workers.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	for i := 1; i <= 3; i++ {
		w := &cluster.Worker{
			Client:   &cluster.Client{Base: ts.URL, Worker: fmt.Sprintf("twmw-%d", i)},
			Parallel: 2,
			Poll:     2 * time.Millisecond,
		}
		go w.Run(wctx)
	}

	d := <-done
	if d.err != nil {
		log.Fatal(d.err)
	}
	distributed := d.agg
	fmt.Printf("done: %d cells completed by workers, %d leases granted, %d expired, %d requeued\n",
		completed.Load(), leases.Load(), expires.Load(), requeues.Load())
	fmt.Printf("coverage %.2f%% at %.0f cells/s\n\n", 100*distributed.CoverageFraction(), prog.Rate())

	// The determinism contract across the process boundary: the
	// distributed aggregate is byte-identical to a local engine run.
	local, err := campaign.Engine{}.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	db, err := distributed.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	lb, err := local.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical distributed == local engine run:  %v\n\n", bytes.Equal(db, lb))
	fmt.Print(distributed.Render())
}
