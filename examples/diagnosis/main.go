// Diagnosis: after a transparent test flags a memory, the mismatch
// syndrome localizes the defect — which cell, which polarity, which
// fault family — feeding repair (row/column replacement) or failure
// analysis. This is the diagnosis context of the paper's reference
// [10].
//
// The example injects one fault of each family into a simulated SRAM
// and prints what the diagnosis engine concludes from a single
// transparent-test run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twmarch"
)

func main() {
	bm, err := twmarch.Lookup("March SS") // strongest catalog test
	if err != nil {
		log.Fatal(err)
	}
	res, err := twmarch.Transform(bm, 8)
	if err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		label string
		fault twmarch.Fault
	}{
		{"stuck-at-1 cell", twmarch.StuckAt{Cell: twmarch.Site{Addr: 5, Bit: 3}, Value: 1}},
		{"rising transition fault", twmarch.Transition{Cell: twmarch.Site{Addr: 2, Bit: 6}, Rise: true}},
		{"deceptive read disturb", twmarch.ReadDestructive{Cell: twmarch.Site{Addr: 7, Bit: 0}, Value: 0, Deceptive: true}},
		{"inter-word coupling", twmarch.Coupling{
			Model:     1, // CFid
			Aggressor: twmarch.Site{Addr: 1, Bit: 2}, Victim: twmarch.Site{Addr: 6, Bit: 4},
			AggrTrigger: 1, VictimValue: 1,
		}},
		{"address decoder alias", twmarch.AddrAlias{From: 3, To: 9}},
	}

	fmt.Printf("diagnosing with %s (%d ops/word, word width 8)\n\n", res.TWMarch.Name, res.TWMarch.Ops())
	for _, c := range cases {
		mem := twmarch.NewMemory(16, 8)
		mem.Randomize(rand.New(rand.NewSource(11)))
		faulty, err := twmarch.Inject(mem, c.fault)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := twmarch.Diagnose(res.TWMarch, faulty)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected %-26s -> %s\n", c.label+":", rep.Summary())
	}

	// A clean memory diagnoses clean.
	mem := twmarch.NewMemory(16, 8)
	mem.Randomize(rand.New(rand.NewSource(12)))
	rep, err := twmarch.Diagnose(res.TWMarch, mem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %-26s -> %s\n", "nothing:", rep.Summary())
}
