// Yield: drive the campaign engine's diagnosis-and-repair pipeline
// end to end — the BIST flow downstream of detection. For every fault
// the pipeline collects the comparator-view mismatch syndrome,
// diagnoses the suspect sites (internal/diagnose), allocates spare
// rows/columns for detected faults (internal/repair), and classifies
// test escapes against a field-ECC model (internal/ecc).
//
// The run contrasts two redundancy configurations on the same grid:
// no spares and no ECC (every detected fault is yield loss, every
// escape corrupts field data) versus one spare row + one spare column
// with SEC-DED (single-cell defects repaired, single-bit escapes
// corrected in the field).
//
// The same pipeline block, POSTed inside a spec to a running `twmd`
// daemon, produces the same yield section over HTTP:
//
//	go run ./cmd/twmd &
//	curl -s -X POST localhost:8080/campaigns -d '{
//	  "name": "yield", "tests": ["MATS", "March C-"],
//	  "widths": [4, 8], "words": [8], "seed": 42,
//	  "pipeline": {"enabled": true, "spare_rows": 1, "spare_cols": 1,
//	               "ecc": "secded"}
//	}'
package main

import (
	"context"
	"fmt"
	"log"

	"twmarch/internal/campaign"
)

func main() {
	base := campaign.Spec{
		Name: "yield example",
		// MATS is deliberately weak — its transparent transform lets
		// some transition faults escape, so the ECC stage has work.
		Tests:   []string{"MATS", "March C-"},
		Widths:  []int{4, 8},
		Words:   []int{8},
		Schemes: []string{campaign.SchemeTWM},
		Classes: []string{"SAF", "TF", "CFid"},
		Seed:    42,
	}

	configs := []struct {
		label    string
		pipeline *campaign.PipelineSpec
	}{
		{"no redundancy (0 spares, no ECC)", &campaign.PipelineSpec{Enabled: true}},
		{"1 spare row + 1 spare column, SEC-DED", &campaign.PipelineSpec{
			Enabled: true, SpareRows: 1, SpareCols: 1, ECC: campaign.ECCSECDED,
		}},
	}
	for _, cfg := range configs {
		spec := base
		spec.Pipeline = cfg.pipeline
		agg, err := campaign.Engine{}.Run(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		y := agg.YieldTotal
		fmt.Printf("=== %s ===\n", cfg.label)
		fmt.Printf("  analyzed %d faults: %d detected, %d escaped\n",
			y.Analyzed, y.Detected, y.Escapes)
		fmt.Printf("  repairability: %.1f%% (%d repairable, %d yield loss)\n",
			100*y.RepairabilityRate(), y.Repairable, y.Unrepairable)
		fmt.Printf("  escape rate %.2f%% -> post-ECC %.2f%% (%d corrected in the field)\n",
			100*y.EscapeRate(), 100*y.PostECCEscapeRate(), y.ECCCorrected)
		fmt.Printf("  spare utilization: %.1f%%\n\n",
			100*y.SpareUtilization(cfg.pipeline.SpareRows, cfg.pipeline.SpareCols))
	}

	// The full per-scheme breakdown, as cmd/twmd serves it with
	// ?format=text.
	spec := base
	spec.Pipeline = configs[1].pipeline
	agg, err := campaign.Engine{}.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(agg.Render())
}
