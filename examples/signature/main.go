// Signature: the MISR-based observation mechanism of transparent
// BIST, and its one weakness — aliasing.
//
// The example runs the prediction/test signature flow on a clean and a
// faulty memory, then constructs an error stream that a narrow MISR
// compresses to the very same signature as the fault-free stream,
// demonstrating why the aliasing problem the paper's introduction
// cites is fundamental to signature-based schemes (and why wider
// registers make it exponentially unlikely).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twmarch"
)

func main() {
	bm, err := twmarch.Lookup("March U")
	if err != nil {
		log.Fatal(err)
	}
	res, err := twmarch.Transform(bm, 8)
	if err != nil {
		log.Fatal(err)
	}

	// The two-pass signature flow.
	mem := twmarch.NewMemory(64, 8)
	mem.Randomize(rand.New(rand.NewSource(5)))
	ctl, err := twmarch.NewBIST(res.TWMarch)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ctl.Run(mem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean memory:  predicted %s  actual %s  pass=%v\n",
		out.Predicted.Hex(8), out.Actual.Hex(8), out.Pass)

	faulty, err := twmarch.Inject(mem, twmarch.Transition{Cell: twmarch.Site{Addr: 20, Bit: 3}, Rise: true})
	if err != nil {
		log.Fatal(err)
	}
	out, err = ctl.Run(faulty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with TF↑@20.3: predicted %s  actual %s  pass=%v\n\n",
		out.Predicted.Hex(8), out.Actual.Hex(8), out.Pass)

	// Aliasing: a crafted error stream that leaves the signature
	// untouched.
	const streamLen = 16
	errs, err := twmarch.AliasingErrorStream(8, streamLen)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := twmarch.NewMISR(8)
	if err != nil {
		log.Fatal(err)
	}
	corrupted, err := twmarch.NewMISR(8)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	flipped := 0
	for i := 0; i < streamLen; i++ {
		v := twmarch.Word{Lo: r.Uint64() & 0xff}
		clean.Feed(v)
		corrupted.Feed(v.Xor(errs[i]))
		if !errs[i].IsZero() {
			flipped++
		}
	}
	fmt.Printf("aliasing demo: %d reads corrupted, signatures %s vs %s — equal: %v\n",
		flipped, clean.Signature().Hex(8), corrupted.Signature().Hex(8),
		clean.Signature() == corrupted.Signature())
	fmt.Println()
	fmt.Println("An 8-bit MISR aliases a random error stream with probability 2^-8;")
	fmt.Println("pairing the word width with the register width keeps the risk")
	fmt.Println("negligible for the wide words the paper targets (2^-32 at W=32).")
}
