// Fieldtest: the paper's motivating scenario — an SOC with several
// embedded memory cores of different geometries, tested periodically
// in the idle windows of a running system without losing a byte of
// live data.
//
// For every core the example builds the transparent word-oriented test
// at the core's width, then simulates periodic online BIST with
// realistic (geometrically distributed) idle windows, comparing the
// interference behaviour of the proposed scheme against the Scheme 1
// baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twmarch"
)

// core describes one embedded memory of the simulated SOC.
type core struct {
	name  string
	words int
	width int
}

func main() {
	socCores := []core{
		{"cpu-l1-tags", 256, 16},
		{"dsp-scratch", 512, 32},
		{"net-buffer", 1024, 64},
	}
	bm, err := twmarch.Lookup("March C-")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SOC periodic transparent self-test (March C- based)")
	fmt.Println()
	for _, c := range socCores {
		res, err := twmarch.Transform(bm, c.width)
		if err != nil {
			log.Fatal(err)
		}
		s1, err := twmarch.TransformScheme1(bm, c.width)
		if err != nil {
			log.Fatal(err)
		}

		mem := twmarch.NewMemory(c.words, c.width)
		mem.Randomize(rand.New(rand.NewSource(7)))
		before := mem.Snapshot()

		ctl, err := twmarch.NewBIST(res.TWMarch)
		if err != nil {
			log.Fatal(err)
		}
		ctlS1, err := twmarch.NewBIST(s1.Test)
		if err != nil {
			log.Fatal(err)
		}

		// Idle windows average 1.3x the proposed scheme's session, a
		// tight but realistic budget.
		meanOps := 1.3 * float64(ctl.SessionOps()*c.words)
		run := func(ctl *twmarch.BIST, seed int64) twmarch.OnlineStats {
			win := &twmarch.GeometricWindows{Mean: meanOps, Rng: rand.New(rand.NewSource(seed))}
			stats, err := twmarch.SimulateOnline(ctl, mem, win, 25)
			if err != nil {
				log.Fatal(err)
			}
			if !stats.AllPassed {
				log.Fatalf("%s: session failed on fault-free core", c.name)
			}
			return stats
		}
		stats := run(ctl, 100)
		statsS1 := run(ctlS1, 100)

		if !mem.Equal(before) {
			log.Fatalf("%s: periodic testing corrupted live data", c.name)
		}
		fmt.Printf("%-12s %4dx%-3d  session %6d ops   interference: this work %5.1f%%  vs  Scheme 1 %5.1f%%\n",
			c.name, c.words, c.width, ctl.SessionOps()*c.words,
			100*stats.InterferenceProb(), 100*statsS1.InterferenceProb())
	}
	fmt.Println()
	fmt.Println("All cores tested repeatedly; live contents intact on every core.")
}
