// Faultcoverage: the Section 5 experiment — enumerate the complete
// functional fault population of a small word-oriented memory (stuck-
// at, transition, and coupling faults, intra-word and inter-word) and
// measure which instances the transparent tests detect.
//
// The run shows the trade the paper's scheme makes: SAF, TF and every
// inter-word coupling fault are covered in full; a data-dependent
// share of intra-word CFst/CFid instances is traded for the 2-5x
// shorter test (the Scheme 1 baseline covers them all but costs
// proportionally more; internal/faultsim's tests pin the trade).
package main

import (
	"fmt"
	"log"

	"twmarch"
)

func main() {
	const words, width = 4, 4
	bm, err := twmarch.Lookup("March C-")
	if err != nil {
		log.Fatal(err)
	}
	res, err := twmarch.Transform(bm, width)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := twmarch.TransformScheme1(bm, width)
	if err != nil {
		log.Fatal(err)
	}

	list := twmarch.AllFaults(words, width)
	fmt.Printf("fault population on a %dx%d memory: %d instances\n\n", words, width, len(list))

	for _, tc := range []struct {
		name string
		test *twmarch.Test
	}{
		{"TWMarch (this work)", res.TWMarch},
		{"Scheme 1 baseline", s1.Test},
	} {
		rep, err := twmarch.Coverage(tc.test, words, list, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d ops/word, total coverage %.2f%%\n", tc.name, tc.test.Ops(), 100*rep.Coverage())
		for _, cls := range rep.Classes() {
			s := rep.ByClass[cls]
			fmt.Printf("  %-5s %4d/%-4d  %.2f%%\n", cls, s.Detected, s.Total, 100*s.Coverage())
		}
		fmt.Println()
	}

	fmt.Println("Reading the numbers: TWMarch trades a data-dependent share of")
	fmt.Println("intra-word CFst/CFid instances for a test that is a fraction of")
	fmt.Println("Scheme 1's length; every SAF, TF and inter-word CF is caught.")
}
