package faults

import (
	"testing"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func TestRDFReturnsWrongValueAndDisturbs(t *testing.T) {
	mem := memory.MustNew(2, 4)
	inj := MustInject(mem, ReadDestructive{Cell: Site{0, 1}, Value: 0, Deceptive: false})
	// Cell holds 0 (trigger): the read flips it and returns the new 1.
	got := inj.Read(0)
	if got.Bit(1) != 1 {
		t.Fatal("RDF should return the disturbed value")
	}
	if mem.Read(0).Bit(1) != 1 {
		t.Fatal("RDF should corrupt the stored value")
	}
	// Now the cell holds 1 (not the trigger): reads are clean.
	got = inj.Read(0)
	if got.Bit(1) != 1 || mem.Read(0).Bit(1) != 1 {
		t.Fatal("non-trigger polarity disturbed")
	}
}

func TestDRDFReturnsOldValue(t *testing.T) {
	mem := memory.MustNew(2, 4)
	mem.Write(1, word.FromUint64(0b0010))
	inj := MustInject(mem, ReadDestructive{Cell: Site{1, 1}, Value: 1, Deceptive: true})
	// First read deceives: correct old value, corrupted cell.
	if inj.Read(1).Bit(1) != 1 {
		t.Fatal("DRDF first read should return the old value")
	}
	if mem.Read(1).Bit(1) != 0 {
		t.Fatal("DRDF should have corrupted the cell")
	}
	// Second read sees the corruption (cell now 0, not the trigger).
	if inj.Read(1).Bit(1) != 0 {
		t.Fatal("second read should expose the corruption")
	}
}

func TestReadDestructiveOtherAddressesClean(t *testing.T) {
	mem := memory.MustNew(3, 4)
	mem.Write(2, word.FromUint64(0xf))
	inj := MustInject(mem, ReadDestructive{Cell: Site{0, 0}, Value: 0})
	if inj.Read(2) != word.FromUint64(0xf) {
		t.Fatal("unrelated address perturbed")
	}
	inj.Write(1, word.FromUint64(0x3))
	if inj.Read(1) != word.FromUint64(0x3) {
		t.Fatal("unrelated write perturbed")
	}
}

func TestReadDestructiveMetadata(t *testing.T) {
	rdf := ReadDestructive{Cell: Site{1, 2}, Value: 0}
	drdf := ReadDestructive{Cell: Site{1, 2}, Value: 1, Deceptive: true}
	if rdf.String() != "RDF0@1.2" || drdf.String() != "DRDF1@1.2" {
		t.Errorf("strings: %q %q", rdf.String(), drdf.String())
	}
	if rdf.Class() != "RDF" || drdf.Class() != "DRDF" || !rdf.IntraWord() {
		t.Error("metadata broken")
	}
}

func TestEnumerateReadDestructive(t *testing.T) {
	list := EnumerateReadDestructive(2, 3)
	// 6 cells x 2 polarities x 2 kinds.
	if len(list) != 24 {
		t.Fatalf("count = %d, want 24", len(list))
	}
	seen := map[string]bool{}
	for _, f := range list {
		if seen[f.String()] {
			t.Fatalf("duplicate %s", f)
		}
		seen[f.String()] = true
	}
}
