package faults

import (
	"testing"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func TestNewLinkedValidation(t *testing.T) {
	a := Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{2, 0}, AggrTrigger: 1, VictimValue: 1}
	b := Coupling{Model: CFid, Aggressor: Site{1, 0}, Victim: Site{2, 0}, AggrTrigger: 1, VictimValue: 0}
	if _, err := NewLinked(a, b); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	bad := b
	bad.Victim = Site{3, 0}
	if _, err := NewLinked(a, bad); err == nil {
		t.Error("different victims accepted")
	}
	if _, err := NewLinked(a, a); err == nil {
		t.Error("identical components accepted")
	}
}

// The defining behaviour: the second component can mask the first.
// Aggressor A rising sets the victim to 1; aggressor B rising resets
// it to 0. Exciting A then B leaves the victim clean — undetectable by
// a read placed only after both.
func TestLinkedMasking(t *testing.T) {
	a := Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{2, 0}, AggrTrigger: 1, VictimValue: 1}
	b := Coupling{Model: CFid, Aggressor: Site{1, 0}, Victim: Site{2, 0}, AggrTrigger: 1, VictimValue: 0}
	lf, err := NewLinked(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.MustNew(3, 1)
	inj := MustInject(mem, lf)
	inj.Write(0, word.FromUint64(1)) // A rises: victim = 1
	if inj.Read(2).Bit(0) != 1 {
		t.Fatal("first component did not fire")
	}
	inj.Write(1, word.FromUint64(1)) // B rises: victim back to 0
	if inj.Read(2).Bit(0) != 0 {
		t.Fatal("second component did not mask the first")
	}
}

func TestLinkedSameWriteOrdering(t *testing.T) {
	// Both aggressors in one word: a single write triggers A then B;
	// the victim ends at B's value.
	a := Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{0, 2}, AggrTrigger: 1, VictimValue: 1}
	b := Coupling{Model: CFid, Aggressor: Site{0, 1}, Victim: Site{0, 2}, AggrTrigger: 1, VictimValue: 0}
	lf, err := NewLinked(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.MustNew(1, 3)
	inj := MustInject(mem, lf)
	inj.Write(0, word.FromUint64(0b011)) // both rise in one write
	if inj.Read(0).Bit(2) != 0 {
		t.Fatalf("ordering broken: victim = %d, want B's value 0", inj.Read(0).Bit(2))
	}
}

func TestLinkedMetadata(t *testing.T) {
	a := Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{0, 2}, AggrTrigger: 1, VictimValue: 1}
	b := Coupling{Model: CFid, Aggressor: Site{0, 1}, Victim: Site{0, 2}, AggrTrigger: 0, VictimValue: 0}
	lf, _ := NewLinked(a, b)
	if lf.Class() != "Linked" {
		t.Error("class broken")
	}
	if !lf.IntraWord() {
		t.Error("intra-word pair misclassified")
	}
	if lf.String() == "" {
		t.Error("empty string")
	}
	inter, _ := NewLinked(
		Coupling{Model: CFid, Aggressor: Site{1, 0}, Victim: Site{0, 2}, AggrTrigger: 1, VictimValue: 1},
		b,
	)
	if inter.IntraWord() {
		t.Error("inter-word pair misclassified")
	}
}

func TestEnumerateLinkedCFid(t *testing.T) {
	list := EnumerateLinkedCFid(3, 1)
	if len(list) == 0 {
		t.Fatal("empty enumeration")
	}
	// 3 victims x 1 aggressor pair each x 4 trigger combos.
	if len(list) != 3*1*4 {
		t.Fatalf("count = %d, want 12", len(list))
	}
	for _, f := range list {
		lf := f.(Linked)
		if lf.A.Victim != lf.B.Victim {
			t.Fatal("victim mismatch in enumeration")
		}
	}
}
