package faults

import (
	"testing"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// grid5x5 builds a 25-cell bit memory with a given victim value and a
// neighborhood pattern around address 12 (center of a 5x5 grid).
func grid5x5(t *testing.T, pattern [4]int, victimVal int) *memory.Memory {
	t.Helper()
	mem := memory.MustNew(25, 1)
	// N=7, S=17, W=11, E=13 around center 12.
	for i, addr := range []int{7, 17, 11, 13} {
		mem.Write(addr, word.FromUint64(uint64(pattern[i])))
	}
	mem.Write(12, word.FromUint64(uint64(victimVal)))
	return mem
}

func TestNPSFEnforcement(t *testing.T) {
	pattern := [4]int{0, 1, 0, 1}
	mem := grid5x5(t, pattern, 1)
	f := NPSF{Rows: 5, Cols: 5, Victim: 12, Pattern: pattern, Value: 0}
	inj := MustInject(mem, f)
	// Initial condition: the pattern holds, victim forced to 0.
	if inj.Read(12).Bit(0) != 0 {
		t.Fatal("NPSF not enforced at injection")
	}
	// Writing the victim while the pattern holds is overridden.
	inj.Write(12, word.FromUint64(1))
	if inj.Read(12).Bit(0) != 0 {
		t.Fatal("victim writable despite active pattern")
	}
	// Breaking the pattern releases the victim.
	inj.Write(7, word.FromUint64(1))
	inj.Write(12, word.FromUint64(1))
	if inj.Read(12).Bit(0) != 1 {
		t.Fatal("victim not released after pattern broke")
	}
}

func TestNPSFInactiveWhenPatternAbsent(t *testing.T) {
	pattern := [4]int{1, 1, 1, 1}
	mem := grid5x5(t, [4]int{0, 0, 0, 0}, 1)
	f := NPSF{Rows: 5, Cols: 5, Victim: 12, Pattern: pattern, Value: 0}
	inj := MustInject(mem, f)
	if inj.Read(12).Bit(0) != 1 {
		t.Fatal("NPSF fired without its pattern")
	}
}

func TestNPSFEdgeCellsUseZeroNeighbors(t *testing.T) {
	mem := memory.MustNew(25, 1)
	// Corner cell 0: N and W are off-grid (treated as 0); S=5, E=1.
	f := NPSF{Rows: 5, Cols: 5, Victim: 0, Pattern: [4]int{0, 1, 0, 1}, Value: 1}
	inj := MustInject(mem, f)
	inj.Write(5, word.FromUint64(1))
	inj.Write(1, word.FromUint64(1))
	if inj.Read(0).Bit(0) != 1 {
		t.Fatal("edge-cell NPSF not enforced")
	}
}

func TestNPSFValidation(t *testing.T) {
	mem := memory.MustNew(8, 1)
	if _, err := Inject(mem, NPSF{Rows: 5, Cols: 5, Victim: 12, Value: 0}); err == nil {
		t.Error("grid larger than memory accepted")
	}
	if _, err := Inject(mem, NPSF{Rows: 0, Cols: 5, Victim: 0, Value: 0}); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestNPSFMetadataAndEnumeration(t *testing.T) {
	f := NPSF{Rows: 4, Cols: 4, Victim: 5, Pattern: [4]int{0, 1, 0, 1}, Value: 1}
	if f.String() != "NPSF<0101;1>@5" {
		t.Errorf("string: %q", f.String())
	}
	if f.Class() != "NPSF" || f.IntraWord() {
		t.Error("metadata broken")
	}
	list := EnumerateNPSF(4, 4)
	// 2x2 interior cells x 4 patterns x 2 values.
	if len(list) != 4*4*2 {
		t.Fatalf("enumeration = %d, want 32", len(list))
	}
}
