package faults

import (
	"fmt"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Linked faults: two coupling faults sharing the victim cell whose
// effects can mask each other (van de Goor & Gaydadjiev 1997 — the
// motivation for March U in the catalog). A march test detects the
// pair only if it observes the victim between the two interfering
// excitations; March C- famously misses some linked CFid pairs that
// March U catches.
//
// The model composes two Coupling faults with a common victim: each
// triggering write applies its component's effect in program order
// (first A, then B, when one write triggers both).

// Linked is a pair of coupling faults on the same victim.
type Linked struct {
	A, B Coupling
}

// NewLinked validates and builds a linked fault.
func NewLinked(a, b Coupling) (Linked, error) {
	if a.Victim != b.Victim {
		return Linked{}, fmt.Errorf("faults: linked components have different victims: %s vs %s", a.Victim, b.Victim)
	}
	if a.Aggressor == b.Aggressor && a.AggrTrigger == b.AggrTrigger && a.Model == b.Model {
		return Linked{}, fmt.Errorf("faults: linked components are identical")
	}
	if a.Aggressor == a.Victim || b.Aggressor == b.Victim {
		return Linked{}, fmt.Errorf("faults: linked component couples a cell to itself")
	}
	return Linked{A: a, B: b}, nil
}

// String implements Fault.
func (f Linked) String() string { return fmt.Sprintf("Linked{%s & %s}", f.A, f.B) }

// Class implements Fault.
func (f Linked) Class() string { return "Linked" }

// IntraWord implements Fault.
func (f Linked) IntraWord() bool { return f.A.IntraWord() && f.B.IntraWord() }

func (f Linked) init(m *memory.Memory) {
	f.A.init(m)
	f.B.init(m)
}

func (f Linked) onWrite(addr int, old, v word.Word) word.Word {
	v = f.A.onWrite(addr, old, v)
	v = f.B.onWrite(addr, old, v)
	return v
}

func (f Linked) sideEffects(m *memory.Memory, addr int, old word.Word) {
	f.A.sideEffects(m, addr, old)
	f.B.sideEffects(m, addr, old)
}

// EnumerateLinkedCFid lists the classical linked CFid pairs over
// bit-oriented geometries: two idempotent coupling faults from
// distinct aggressors onto one victim with opposite forced values —
// the masking pattern March U targets. To keep populations manageable
// the enumeration pairs aggressors i<j for every victim distinct from
// both.
func EnumerateLinkedCFid(words, width int) []Fault {
	var sites []Site
	for a := 0; a < words; a++ {
		for b := 0; b < width; b++ {
			sites = append(sites, Site{Addr: a, Bit: b})
		}
	}
	var out []Fault
	for vi, victim := range sites {
		for ai, aggrA := range sites {
			if ai == vi {
				continue
			}
			for bi, aggrB := range sites {
				if bi == vi || bi <= ai {
					continue
				}
				for t1 := 0; t1 <= 1; t1++ {
					for t2 := 0; t2 <= 1; t2++ {
						lf, err := NewLinked(
							Coupling{Model: CFid, Aggressor: aggrA, Victim: victim, AggrTrigger: t1, VictimValue: 1},
							Coupling{Model: CFid, Aggressor: aggrB, Victim: victim, AggrTrigger: t2, VictimValue: 0},
						)
						if err != nil {
							continue
						}
						out = append(out, lf)
					}
				}
			}
		}
	}
	return out
}
