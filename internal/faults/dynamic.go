package faults

import (
	"fmt"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Dynamic (read-disturb) faults, per Hamdioui's classification: a read
// operation itself corrupts the cell.
//
//   - RDF (read destructive fault): the read inverts the cell and
//     returns the *new*, wrong value — any read of the sensitive
//     polarity observes it.
//
//   - DRDF (deceptive read destructive fault): the read inverts the
//     cell but returns the *old*, correct value — only a second
//     observation of the cell before it is rewritten can catch it,
//     which is why March SS performs r,r pairs.
//
// The fault is polarity-sensitive: it fires only when the cell holds
// Value before the read.

// ReadDestructive models RDF and DRDF.
type ReadDestructive struct {
	Cell Site
	// Value is the cell state that triggers the disturb (0 or 1).
	Value int
	// Deceptive selects DRDF semantics (correct value returned).
	Deceptive bool
}

// String implements Fault.
func (f ReadDestructive) String() string {
	kind := "RDF"
	if f.Deceptive {
		kind = "DRDF"
	}
	return fmt.Sprintf("%s%d@%s", kind, f.Value, f.Cell)
}

// Class implements Fault.
func (f ReadDestructive) Class() string {
	if f.Deceptive {
		return "DRDF"
	}
	return "RDF"
}

// IntraWord implements Fault.
func (f ReadDestructive) IntraWord() bool { return true }

func (f ReadDestructive) init(*memory.Memory) {}

func (f ReadDestructive) onWrite(addr int, old, v word.Word) word.Word { return v }

func (f ReadDestructive) sideEffects(*memory.Memory, int, word.Word) {}

// readVia implements the read-perturbation hook: reads of the faulty
// word flip the sensitive cell when it holds the trigger value.
func (f ReadDestructive) readVia(m *memory.Memory, addr int) (word.Word, bool) {
	if addr != f.Cell.Addr {
		return word.Word{}, false
	}
	stored := m.Read(addr)
	if stored.Bit(f.Cell.Bit) != f.Value {
		return stored, true
	}
	disturbed := stored.FlipBit(f.Cell.Bit)
	m.Write(addr, disturbed)
	if f.Deceptive {
		return stored, true // old value returned; corruption latent
	}
	return disturbed, true // wrong value returned immediately
}

// EnumerateReadDestructive lists all RDF and DRDF instances.
func EnumerateReadDestructive(words, width int) []Fault {
	var out []Fault
	for a := 0; a < words; a++ {
		for b := 0; b < width; b++ {
			for v := 0; v <= 1; v++ {
				out = append(out, ReadDestructive{Cell: Site{a, b}, Value: v, Deceptive: false})
				out = append(out, ReadDestructive{Cell: Site{a, b}, Value: v, Deceptive: true})
			}
		}
	}
	return out
}
