package faults

// Enumeration of complete single-fault lists over a memory geometry.
// Campaign sizes grow as O((N·W)²) for coupling faults, so the
// exhaustive lists are intended for the small memories the coverage
// experiments use (the paper's arguments are per cell pair, so small
// exhaustive geometries generalize).

// PairScope restricts which aggressor/victim pairs a coupling
// enumeration generates.
type PairScope int

const (
	// AllPairs enumerates every ordered pair of distinct bit cells.
	AllPairs PairScope = iota
	// IntraWordPairs keeps pairs within one word (the faults only the
	// paper's ATMarch extension can excite).
	IntraWordPairs
	// InterWordPairs keeps pairs across different words (covered by
	// the TSMarch part).
	InterWordPairs
)

// EnumerateStuckAt lists all 2·N·W stuck-at faults.
func EnumerateStuckAt(words, width int) []Fault {
	out := make([]Fault, 0, 2*words*width)
	for a := 0; a < words; a++ {
		for b := 0; b < width; b++ {
			out = append(out, StuckAt{Cell: Site{a, b}, Value: 0})
			out = append(out, StuckAt{Cell: Site{a, b}, Value: 1})
		}
	}
	return out
}

// EnumerateTransition lists all 2·N·W transition faults.
func EnumerateTransition(words, width int) []Fault {
	out := make([]Fault, 0, 2*words*width)
	for a := 0; a < words; a++ {
		for b := 0; b < width; b++ {
			out = append(out, Transition{Cell: Site{a, b}, Rise: true})
			out = append(out, Transition{Cell: Site{a, b}, Rise: false})
		}
	}
	return out
}

// pairs yields all ordered (aggressor, victim) site pairs in scope.
func pairs(words, width int, scope PairScope) []struct{ A, V Site } {
	var out []struct{ A, V Site }
	for aa := 0; aa < words; aa++ {
		for ab := 0; ab < width; ab++ {
			for va := 0; va < words; va++ {
				for vb := 0; vb < width; vb++ {
					if aa == va && ab == vb {
						continue
					}
					intra := aa == va
					if scope == IntraWordPairs && !intra {
						continue
					}
					if scope == InterWordPairs && intra {
						continue
					}
					out = append(out, struct{ A, V Site }{Site{aa, ab}, Site{va, vb}})
				}
			}
		}
	}
	return out
}

// EnumerateCFst lists state coupling faults <s;v> for all four
// (s,v) combinations over the pairs in scope.
func EnumerateCFst(words, width int, scope PairScope) []Fault {
	var out []Fault
	for _, p := range pairs(words, width, scope) {
		for s := 0; s <= 1; s++ {
			for v := 0; v <= 1; v++ {
				out = append(out, Coupling{Model: CFst, Aggressor: p.A, Victim: p.V, AggrTrigger: s, VictimValue: v})
			}
		}
	}
	return out
}

// EnumerateCFid lists idempotent coupling faults <t;v> for all four
// (transition, value) combinations over the pairs in scope.
func EnumerateCFid(words, width int, scope PairScope) []Fault {
	var out []Fault
	for _, p := range pairs(words, width, scope) {
		for tr := 0; tr <= 1; tr++ {
			for v := 0; v <= 1; v++ {
				out = append(out, Coupling{Model: CFid, Aggressor: p.A, Victim: p.V, AggrTrigger: tr, VictimValue: v})
			}
		}
	}
	return out
}

// EnumerateCFin lists inversion coupling faults <t> for both
// transitions over the pairs in scope.
func EnumerateCFin(words, width int, scope PairScope) []Fault {
	var out []Fault
	for _, p := range pairs(words, width, scope) {
		for tr := 0; tr <= 1; tr++ {
			out = append(out, Coupling{Model: CFin, Aggressor: p.A, Victim: p.V, AggrTrigger: tr})
		}
	}
	return out
}

// EnumerateAll lists the complete Section 2 fault population for the
// geometry: SAF, TF, and all coupling families over all pairs.
func EnumerateAll(words, width int) []Fault {
	var out []Fault
	out = append(out, EnumerateStuckAt(words, width)...)
	out = append(out, EnumerateTransition(words, width)...)
	out = append(out, EnumerateCFst(words, width, AllPairs)...)
	out = append(out, EnumerateCFid(words, width, AllPairs)...)
	out = append(out, EnumerateCFin(words, width, AllPairs)...)
	return out
}
