package faults

import (
	"fmt"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Address decoder faults (AFs). March tests owe their ⇑/⇓ structure
// partly to these: a decoder defect makes an address reach the wrong
// cell, several cells, or no cell at all. The two models here cover
// the classical cases reachable without modeling the decoder gate
// level:
//
//   - AddrAlias: address From actually accesses the word at To (From's
//     own storage is never reached). This subsumes van de Goor's AF
//     types "no cell for address" + "cell shared by two addresses",
//     which always occur in such pairs in real decoders.
//
//   - AddrShadow: a write to address From also writes the word at To
//     (multi-select), reads of From return the OR/AND combination —
//     here modeled as wired-AND, the common CMOS bitline behaviour.
//
// Both implement the same injection interface as the cell faults, so
// campaigns can mix populations.

// AddrAlias redirects every access of From to To.
type AddrAlias struct {
	From, To int
}

// String implements Fault.
func (f AddrAlias) String() string { return fmt.Sprintf("AFalias %d->%d", f.From, f.To) }

// Class implements Fault.
func (f AddrAlias) Class() string { return "AF" }

// IntraWord implements Fault; decoder faults are word-level.
func (f AddrAlias) IntraWord() bool { return false }

func (f AddrAlias) init(*memory.Memory) {}

func (f AddrAlias) onWrite(addr int, old, v word.Word) word.Word { return v }

func (f AddrAlias) sideEffects(*memory.Memory, int, word.Word) {}

// AddrShadow makes writes to From also hit To; reads of From return
// the wired-AND of both words.
type AddrShadow struct {
	From, To int
}

// String implements Fault.
func (f AddrShadow) String() string { return fmt.Sprintf("AFshadow %d->%d", f.From, f.To) }

// Class implements Fault.
func (f AddrShadow) Class() string { return "AF" }

// IntraWord implements Fault.
func (f AddrShadow) IntraWord() bool { return false }

func (f AddrShadow) init(*memory.Memory) {}

func (f AddrShadow) onWrite(addr int, old, v word.Word) word.Word { return v }

func (f AddrShadow) sideEffects(m *memory.Memory, addr int, old word.Word) {
	if addr == f.From {
		m.Write(f.To, m.Read(f.From))
	}
}

// addrFaultRead lets the Injected wrapper intercept reads for decoder
// faults (cell faults never need it).
type addrFaultRead interface {
	readVia(m *memory.Memory, addr int) (word.Word, bool)
}

func (f AddrAlias) readVia(m *memory.Memory, addr int) (word.Word, bool) {
	if addr == f.From {
		return m.Read(f.To), true
	}
	return word.Word{}, false
}

// writeVia lets decoder faults redirect the whole write.
type addrFaultWrite interface {
	writeVia(m *memory.Memory, addr int, v word.Word) bool
}

func (f AddrAlias) writeVia(m *memory.Memory, addr int, v word.Word) bool {
	if addr == f.From {
		m.Write(f.To, v)
		return true
	}
	return false
}

func (f AddrShadow) readVia(m *memory.Memory, addr int) (word.Word, bool) {
	if addr == f.From {
		return m.Read(f.From).And(m.Read(f.To)), true
	}
	return word.Word{}, false
}

// EnumerateAddrFaults lists alias and shadow faults over all ordered
// address pairs.
func EnumerateAddrFaults(words int) []Fault {
	var out []Fault
	for a := 0; a < words; a++ {
		for b := 0; b < words; b++ {
			if a == b {
				continue
			}
			out = append(out, AddrAlias{From: a, To: b})
			out = append(out, AddrShadow{From: a, To: b})
		}
	}
	return out
}
