package faults

import (
	"math/rand"
	"strings"
	"testing"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func TestStuckAtForcesValue(t *testing.T) {
	mem := memory.MustNew(4, 8)
	inj := MustInject(mem, StuckAt{Cell: Site{2, 3}, Value: 1})
	// Initial condition applied at injection.
	if inj.Read(2).Bit(3) != 1 {
		t.Fatal("SAF1 not forced at injection")
	}
	inj.Write(2, word.Zero)
	if inj.Read(2).Bit(3) != 1 {
		t.Fatal("SAF1 cell cleared by write")
	}
	// Other bits must still follow writes.
	inj.Write(2, word.FromUint64(0xff))
	if inj.Read(2) != word.FromUint64(0xff) {
		t.Fatalf("SAF disturbed other bits: %v", inj.Read(2))
	}
	// Other addresses unaffected.
	inj.Write(1, word.FromUint64(0x55))
	if inj.Read(1) != word.FromUint64(0x55) {
		t.Fatal("SAF disturbed other address")
	}
}

func TestStuckAtZero(t *testing.T) {
	mem := memory.MustNew(2, 4)
	mem.Fill(word.Ones(4))
	inj := MustInject(mem, StuckAt{Cell: Site{0, 0}, Value: 0})
	if inj.Read(0).Bit(0) != 0 {
		t.Fatal("SAF0 not forced at injection")
	}
	inj.Write(0, word.Ones(4))
	if inj.Read(0).Bit(0) != 0 {
		t.Fatal("SAF0 cell set by write")
	}
}

func TestTransitionUpFails(t *testing.T) {
	mem := memory.MustNew(2, 4)
	inj := MustInject(mem, Transition{Cell: Site{0, 1}, Rise: true})
	inj.Write(0, word.FromUint64(0b0010)) // 0→1 on bit 1 must fail
	if inj.Read(0).Bit(1) != 0 {
		t.Fatal("TF↑ cell rose")
	}
	// Force the cell to 1 via a non-transition? It can never rise; set
	// other bits and confirm they work.
	inj.Write(0, word.FromUint64(0b1101))
	if inj.Read(0) != word.FromUint64(0b1101) {
		t.Fatalf("TF↑ disturbed other bits: %v", inj.Read(0))
	}
	// Falling transition of the faulty cell still works: preload 1
	// directly in the base memory (models a cell manufactured at 1).
	mem.Write(0, word.FromUint64(0b0010))
	inj.Write(0, word.Zero)
	if inj.Read(0).Bit(1) != 0 {
		t.Fatal("TF↑ cell failed its healthy falling transition")
	}
}

func TestTransitionDownFails(t *testing.T) {
	mem := memory.MustNew(2, 4)
	mem.Fill(word.Ones(4))
	inj := MustInject(mem, Transition{Cell: Site{1, 2}, Rise: false})
	inj.Write(1, word.Zero) // 1→0 on bit 2 must fail
	if inj.Read(1).Bit(2) != 1 {
		t.Fatal("TF↓ cell fell")
	}
	if inj.Read(1) != word.FromUint64(0b0100) {
		t.Fatalf("TF↓ disturbed other bits: %v", inj.Read(1))
	}
}

func TestCFstInterWord(t *testing.T) {
	mem := memory.MustNew(4, 4)
	// <1;0>: while aggressor 1.0 is 1, victim 2.2 forced to 0.
	inj := MustInject(mem, Coupling{Model: CFst, Aggressor: Site{1, 0}, Victim: Site{2, 2}, AggrTrigger: 1, VictimValue: 0})
	inj.Write(2, word.FromUint64(0b0100)) // victim 1, aggressor still 0: fine
	if inj.Read(2).Bit(2) != 1 {
		t.Fatal("victim should be writable while aggressor idle")
	}
	inj.Write(1, word.FromUint64(1)) // aggressor → 1: victim forced to 0
	if inj.Read(2).Bit(2) != 0 {
		t.Fatal("CFst did not force victim when aggressor entered state")
	}
	// While aggressor remains 1, victim writes are overridden.
	inj.Write(2, word.FromUint64(0b0100))
	if inj.Read(2).Bit(2) != 0 {
		t.Fatal("CFst did not hold victim while aggressor in state")
	}
	// Aggressor leaves the state: victim becomes writable again.
	inj.Write(1, word.Zero)
	inj.Write(2, word.FromUint64(0b0100))
	if inj.Read(2).Bit(2) != 1 {
		t.Fatal("victim should be writable after aggressor left state")
	}
}

func TestCFstInitialEnforcement(t *testing.T) {
	mem := memory.MustNew(2, 2)
	mem.Write(0, word.FromUint64(0b01)) // aggressor bit 0 starts at 1
	mem.Write(1, word.FromUint64(0b10)) // victim bit 1 starts at 1
	inj := MustInject(mem, Coupling{Model: CFst, Aggressor: Site{0, 0}, Victim: Site{1, 1}, AggrTrigger: 1, VictimValue: 0})
	if inj.Read(1).Bit(1) != 0 {
		t.Fatal("CFst initial condition not enforced at injection")
	}
}

func TestCFidInterWord(t *testing.T) {
	mem := memory.MustNew(4, 4)
	// <↑;1>: aggressor 0.0 rising sets victim 3.3 to 1.
	inj := MustInject(mem, Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{3, 3}, AggrTrigger: 1, VictimValue: 1})
	inj.Write(0, word.FromUint64(1)) // rising
	if inj.Read(3).Bit(3) != 1 {
		t.Fatal("CFid<↑;1> did not set victim")
	}
	// Victim can be rewritten; a non-transition write must not retrigger.
	inj.Write(3, word.Zero)
	inj.Write(0, word.FromUint64(1)) // aggressor stays 1: no transition
	if inj.Read(3).Bit(3) != 0 {
		t.Fatal("CFid retriggered without a transition")
	}
	// Falling transition must not trigger the rising-CFid.
	inj.Write(0, word.Zero)
	if inj.Read(3).Bit(3) != 0 {
		t.Fatal("CFid<↑;1> triggered on falling edge")
	}
}

func TestCFidFallingVariant(t *testing.T) {
	mem := memory.MustNew(2, 2)
	mem.Write(0, word.FromUint64(0b01))
	inj := MustInject(mem, Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{1, 0}, AggrTrigger: 0, VictimValue: 1})
	inj.Write(0, word.Zero) // falling
	if inj.Read(1).Bit(0) != 1 {
		t.Fatal("CFid<↓;1> did not set victim")
	}
}

func TestCFinInterWord(t *testing.T) {
	mem := memory.MustNew(4, 2)
	inj := MustInject(mem, Coupling{Model: CFin, Aggressor: Site{1, 1}, Victim: Site{2, 0}, AggrTrigger: 1})
	if inj.Read(2).Bit(0) != 0 {
		t.Fatal("victim should start at 0")
	}
	inj.Write(1, word.FromUint64(0b10)) // rising: victim inverts → 1
	if inj.Read(2).Bit(0) != 1 {
		t.Fatal("CFin did not invert victim")
	}
	inj.Write(1, word.Zero)             // falling: no effect for ↑ trigger
	inj.Write(1, word.FromUint64(0b10)) // rising again: invert back → 0
	if inj.Read(2).Bit(0) != 0 {
		t.Fatal("CFin second inversion missing")
	}
}

func TestCouplingIntraWordSameWrite(t *testing.T) {
	// Aggressor and victim in one word: a single word write that
	// raises the aggressor forces the victim within that same write.
	mem := memory.MustNew(2, 4)
	inj := MustInject(mem, Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{0, 3}, AggrTrigger: 1, VictimValue: 1})
	inj.Write(0, word.FromUint64(0b0001)) // aggressor rises; victim written 0 but forced 1
	if inj.Read(0).Bit(3) != 1 {
		t.Fatal("intra-word CFid did not force victim in the same write")
	}
}

func TestCouplingIntraWordCFst(t *testing.T) {
	mem := memory.MustNew(1, 4)
	inj := MustInject(mem, Coupling{Model: CFst, Aggressor: Site{0, 1}, Victim: Site{0, 2}, AggrTrigger: 1, VictimValue: 1})
	inj.Write(0, word.FromUint64(0b0010)) // aggressor in state 1 → victim forced 1
	if inj.Read(0).Bit(2) != 1 {
		t.Fatal("intra-word CFst not enforced")
	}
	inj.Write(0, word.Zero) // aggressor leaves state: victim free
	if inj.Read(0).Bit(2) != 0 {
		t.Fatal("victim not writable after aggressor left state")
	}
}

func TestCouplingIntraWordCFin(t *testing.T) {
	mem := memory.MustNew(1, 2)
	inj := MustInject(mem, Coupling{Model: CFin, Aggressor: Site{0, 0}, Victim: Site{0, 1}, AggrTrigger: 1})
	inj.Write(0, word.FromUint64(0b11)) // aggressor rises; victim write 1 inverted → 0
	if inj.Read(0).Bit(1) != 0 {
		t.Fatal("intra-word CFin did not invert the concurrently written victim")
	}
}

func TestInjectValidation(t *testing.T) {
	mem := memory.MustNew(2, 2)
	if _, err := Inject(mem, StuckAt{Cell: Site{5, 0}, Value: 0}); err == nil {
		t.Error("out-of-range address accepted")
	}
	if _, err := Inject(mem, StuckAt{Cell: Site{0, 7}, Value: 0}); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if _, err := Inject(mem, Coupling{Model: CFin, Aggressor: Site{0, 0}, Victim: Site{0, 0}, AggrTrigger: 1}); err == nil {
		t.Error("self-coupling accepted")
	}
}

func TestFaultStrings(t *testing.T) {
	cases := []struct {
		f    Fault
		want string
	}{
		{StuckAt{Cell: Site{2, 3}, Value: 1}, "SAF1@2.3"},
		{Transition{Cell: Site{0, 1}, Rise: true}, "TF↑@0.1"},
		{Transition{Cell: Site{0, 1}, Rise: false}, "TF↓@0.1"},
		{Coupling{Model: CFst, Aggressor: Site{0, 0}, Victim: Site{1, 1}, AggrTrigger: 1, VictimValue: 0}, "CFst<1;0> 0.0->1.1"},
		{Coupling{Model: CFid, Aggressor: Site{0, 0}, Victim: Site{1, 1}, AggrTrigger: 0, VictimValue: 1}, "CFid<↓;1> 0.0->1.1"},
		{Coupling{Model: CFin, Aggressor: Site{0, 0}, Victim: Site{1, 1}, AggrTrigger: 1}, "CFin<↑> 0.0->1.1"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestFaultClassesAndScope(t *testing.T) {
	intra := Coupling{Model: CFid, Aggressor: Site{3, 0}, Victim: Site{3, 1}, AggrTrigger: 1}
	inter := Coupling{Model: CFid, Aggressor: Site{3, 0}, Victim: Site{2, 0}, AggrTrigger: 1}
	if !intra.IntraWord() || inter.IntraWord() {
		t.Error("IntraWord classification broken")
	}
	if intra.Class() != "CFid" || (StuckAt{}).Class() != "SAF" || (Transition{}).Class() != "TF" {
		t.Error("Class labels broken")
	}
}

func TestEnumerationCounts(t *testing.T) {
	const nw, wd = 3, 4 // 12 cells
	cells := nw * wd
	if got := len(EnumerateStuckAt(nw, wd)); got != 2*cells {
		t.Errorf("SAF count = %d, want %d", got, 2*cells)
	}
	if got := len(EnumerateTransition(nw, wd)); got != 2*cells {
		t.Errorf("TF count = %d, want %d", got, 2*cells)
	}
	allPairs := cells * (cells - 1)
	intraPairs := nw * wd * (wd - 1)
	interPairs := allPairs - intraPairs
	if got := len(EnumerateCFst(nw, wd, AllPairs)); got != 4*allPairs {
		t.Errorf("CFst all = %d, want %d", got, 4*allPairs)
	}
	if got := len(EnumerateCFid(nw, wd, IntraWordPairs)); got != 4*intraPairs {
		t.Errorf("CFid intra = %d, want %d", got, 4*intraPairs)
	}
	if got := len(EnumerateCFin(nw, wd, InterWordPairs)); got != 2*interPairs {
		t.Errorf("CFin inter = %d, want %d", got, 2*interPairs)
	}
	total := 2*cells + 2*cells + 4*allPairs + 4*allPairs + 2*allPairs
	if got := len(EnumerateAll(nw, wd)); got != total {
		t.Errorf("EnumerateAll = %d, want %d", got, total)
	}
}

func TestEnumerationScopesPartition(t *testing.T) {
	intra := EnumerateCFin(2, 4, IntraWordPairs)
	inter := EnumerateCFin(2, 4, InterWordPairs)
	all := EnumerateCFin(2, 4, AllPairs)
	if len(intra)+len(inter) != len(all) {
		t.Fatalf("scopes do not partition: %d + %d != %d", len(intra), len(inter), len(all))
	}
	for _, f := range intra {
		if !f.(Coupling).IntraWord() {
			t.Fatalf("intra scope returned inter-word fault %s", f)
		}
	}
	for _, f := range inter {
		if f.(Coupling).IntraWord() {
			t.Fatalf("inter scope returned intra-word fault %s", f)
		}
	}
}

// Property: a faulty memory behaves identically to a fault-free one on
// any access sequence that never touches the fault sites' words.
func TestFaultLocality(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		clean := memory.MustNew(8, 8)
		clean.Randomize(r)
		dirty := clean.Clone()
		inj := MustInject(dirty, Coupling{
			Model:       CouplingModel(r.Intn(3)),
			Aggressor:   Site{6, r.Intn(8)},
			Victim:      Site{7, r.Intn(8)},
			AggrTrigger: r.Intn(2),
			VictimValue: r.Intn(2),
		})
		for i := 0; i < 200; i++ {
			addr := r.Intn(6) // never addresses 6 or 7
			v := word.FromUint64(r.Uint64()).Mask(8)
			clean.Write(addr, v)
			inj.Write(addr, v)
			if clean.Read(addr) != inj.Read(addr) {
				t.Fatal("fault affected unrelated addresses")
			}
		}
	}
}

func TestEnumerateAllStringsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range EnumerateAll(2, 2) {
		s := f.String()
		if seen[s] {
			t.Fatalf("duplicate fault name %q", s)
		}
		seen[s] = true
	}
}

func TestCouplingModelString(t *testing.T) {
	if CFst.String() != "CFst" || CFid.String() != "CFid" || CFin.String() != "CFin" {
		t.Error("model names broken")
	}
	if !strings.Contains(CouplingModel(9).String(), "9") {
		t.Error("out-of-range model should format its value")
	}
}
