// Package faults implements the classical functional RAM fault models
// the paper evaluates against (Section 2): stuck-at faults, transition
// faults, and the three coupling-fault families (state, idempotent,
// inversion), each in intra-word and inter-word form for word-oriented
// memories.
//
// A fault is injected by wrapping a fault-free *memory.Memory in an
// Injected accessor that perturbs write behaviour at bit granularity.
// Reads are non-destructive in these models, so the wrapper keeps the
// perturbed state in the underlying memory and leaves the read path
// untouched. The standard single-fault assumption applies: fault
// effects do not cascade into other faults.
package faults

import (
	"fmt"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Site identifies one bit cell: a word address plus a bit position.
type Site struct {
	Addr int
	Bit  int
}

// String formats the site as addr.bit.
func (s Site) String() string { return fmt.Sprintf("%d.%d", s.Addr, s.Bit) }

// Fault is a functional fault that perturbs memory behaviour.
type Fault interface {
	// String names the fault instance, e.g. "SAF0@2.3" or
	// "CFid<↑;1> 0.1->0.2".
	String() string
	// Class returns the fault class label used in coverage reports:
	// "SAF", "TF", "CFst", "CFid", or "CFin".
	Class() string
	// IntraWord reports whether all involved cells share one word
	// address. Single-cell faults are intra-word by definition.
	IntraWord() bool

	// init forces any initial condition (stuck values, state-coupling
	// enforcement) onto the memory at injection time.
	init(m *memory.Memory)
	// onWrite perturbs a write of value v to address addr given the
	// previous content old, returning the value actually stored.
	// Coupling side effects on other addresses are applied directly
	// to m after the triggering write commits, via sideEffects.
	onWrite(addr int, old, v word.Word) word.Word
	// sideEffects applies post-write coupling effects (victim forcing)
	// to the committed memory state. addr is the address just written,
	// old its prior content.
	sideEffects(m *memory.Memory, addr int, old word.Word)
}

// StuckAt is a stuck-at fault: the cell permanently holds Value.
type StuckAt struct {
	Cell  Site
	Value int // 0 or 1
}

// String implements Fault.
func (f StuckAt) String() string { return fmt.Sprintf("SAF%d@%s", f.Value, f.Cell) }

// Class implements Fault.
func (f StuckAt) Class() string { return "SAF" }

// IntraWord implements Fault.
func (f StuckAt) IntraWord() bool { return true }

func (f StuckAt) init(m *memory.Memory) {
	m.Write(f.Cell.Addr, m.Read(f.Cell.Addr).SetBit(f.Cell.Bit, f.Value))
}

func (f StuckAt) onWrite(addr int, old, v word.Word) word.Word {
	if addr == f.Cell.Addr {
		return v.SetBit(f.Cell.Bit, f.Value)
	}
	return v
}

func (f StuckAt) sideEffects(*memory.Memory, int, word.Word) {}

// Transition is a transition fault: the cell fails one of its two
// transitions. Rise true means the 0→1 transition fails (TF↑); false
// means 1→0 fails (TF↓).
type Transition struct {
	Cell Site
	Rise bool
}

// String implements Fault.
func (f Transition) String() string {
	dir := "↓"
	if f.Rise {
		dir = "↑"
	}
	return fmt.Sprintf("TF%s@%s", dir, f.Cell)
}

// Class implements Fault.
func (f Transition) Class() string { return "TF" }

// IntraWord implements Fault.
func (f Transition) IntraWord() bool { return true }

func (f Transition) init(*memory.Memory) {}

func (f Transition) onWrite(addr int, old, v word.Word) word.Word {
	if addr != f.Cell.Addr {
		return v
	}
	ob, nb := old.Bit(f.Cell.Bit), v.Bit(f.Cell.Bit)
	if f.Rise && ob == 0 && nb == 1 {
		return v.SetBit(f.Cell.Bit, 0) // rising transition fails
	}
	if !f.Rise && ob == 1 && nb == 0 {
		return v.SetBit(f.Cell.Bit, 1) // falling transition fails
	}
	return v
}

func (f Transition) sideEffects(*memory.Memory, int, word.Word) {}

// CouplingModel distinguishes the three coupling-fault families.
type CouplingModel int

const (
	// CFst: while the aggressor holds AggrTrigger, the victim is
	// forced to VictimValue.
	CFst CouplingModel = iota
	// CFid: when the aggressor undergoes the AggrTrigger transition
	// (1 = rising, 0 = falling), the victim is forced to VictimValue.
	CFid
	// CFin: when the aggressor undergoes the AggrTrigger transition,
	// the victim inverts.
	CFin
)

// String implements fmt.Stringer.
func (m CouplingModel) String() string {
	switch m {
	case CFst:
		return "CFst"
	case CFid:
		return "CFid"
	case CFin:
		return "CFin"
	default:
		return fmt.Sprintf("CouplingModel(%d)", int(m))
	}
}

// Coupling is a two-cell coupling fault between distinct bit cells.
type Coupling struct {
	Model     CouplingModel
	Aggressor Site
	Victim    Site
	// AggrTrigger is the aggressor state (CFst) or transition
	// direction (CFid/CFin; 1 = rising).
	AggrTrigger int
	// VictimValue is the value forced onto the victim (CFst/CFid).
	VictimValue int
}

// String implements Fault.
func (f Coupling) String() string {
	switch f.Model {
	case CFst:
		return fmt.Sprintf("CFst<%d;%d> %s->%s", f.AggrTrigger, f.VictimValue, f.Aggressor, f.Victim)
	case CFid:
		return fmt.Sprintf("CFid<%s;%d> %s->%s", arrow(f.AggrTrigger), f.VictimValue, f.Aggressor, f.Victim)
	default:
		return fmt.Sprintf("CFin<%s> %s->%s", arrow(f.AggrTrigger), f.Aggressor, f.Victim)
	}
}

func arrow(t int) string {
	if t == 1 {
		return "↑"
	}
	return "↓"
}

// Class implements Fault.
func (f Coupling) Class() string { return f.Model.String() }

// IntraWord implements Fault.
func (f Coupling) IntraWord() bool { return f.Aggressor.Addr == f.Victim.Addr }

func (f Coupling) init(m *memory.Memory) {
	if f.Model == CFst {
		f.enforceState(m)
	}
}

func (f Coupling) onWrite(addr int, old, v word.Word) word.Word {
	// Intra-word trigger with victim in the same word: the coupling
	// effect overrides the written victim bit within this very write.
	if f.Aggressor.Addr != addr || f.Victim.Addr != addr {
		return v
	}
	ob, nb := old.Bit(f.Aggressor.Bit), v.Bit(f.Aggressor.Bit)
	switch f.Model {
	case CFst:
		if nb == f.AggrTrigger {
			return v.SetBit(f.Victim.Bit, f.VictimValue)
		}
	case CFid:
		if transitioned(ob, nb, f.AggrTrigger) {
			return v.SetBit(f.Victim.Bit, f.VictimValue)
		}
	case CFin:
		if transitioned(ob, nb, f.AggrTrigger) {
			return v.SetBit(f.Victim.Bit, 1-v.Bit(f.Victim.Bit))
		}
	}
	return v
}

func (f Coupling) sideEffects(m *memory.Memory, addr int, old word.Word) {
	// State coupling is a standing condition: as long as the aggressor
	// sits in the trigger state the victim is held, so enforce after
	// every write wherever it landed (including writes attempting to
	// change the victim itself).
	if f.Model == CFst {
		f.enforceState(m)
		return
	}
	// Transition-triggered effects: the aggressor's word was written;
	// the victim lives elsewhere and is updated after the write
	// commits. The same-word case is handled inside onWrite.
	if f.Aggressor.Addr != addr || f.Victim.Addr == addr {
		return
	}
	cur := m.Read(f.Aggressor.Addr)
	ob, nb := old.Bit(f.Aggressor.Bit), cur.Bit(f.Aggressor.Bit)
	switch f.Model {
	case CFid:
		if transitioned(ob, nb, f.AggrTrigger) {
			vw := m.Read(f.Victim.Addr)
			m.Write(f.Victim.Addr, vw.SetBit(f.Victim.Bit, f.VictimValue))
		}
	case CFin:
		if transitioned(ob, nb, f.AggrTrigger) {
			vw := m.Read(f.Victim.Addr)
			m.Write(f.Victim.Addr, vw.FlipBit(f.Victim.Bit))
		}
	}
}

// enforceState forces the victim while the aggressor sits in the
// trigger state (CFst semantics).
func (f Coupling) enforceState(m *memory.Memory) {
	if m.Read(f.Aggressor.Addr).Bit(f.Aggressor.Bit) != f.AggrTrigger {
		return
	}
	vw := m.Read(f.Victim.Addr)
	if vw.Bit(f.Victim.Bit) != f.VictimValue {
		m.Write(f.Victim.Addr, vw.SetBit(f.Victim.Bit, f.VictimValue))
	}
}

func transitioned(oldBit, newBit, trigger int) bool {
	if trigger == 1 {
		return oldBit == 0 && newBit == 1
	}
	return oldBit == 1 && newBit == 0
}

// Injected wraps a memory with one injected fault. It satisfies the
// march.Mem and memory.Accessor contracts.
type Injected struct {
	mem   *memory.Memory
	fault Fault
}

var _ memory.Accessor = (*Injected)(nil)

// Inject wraps mem with the fault and applies its initial condition.
// The fault's sites must lie within the memory geometry.
func Inject(mem *memory.Memory, f Fault) (*Injected, error) {
	for _, s := range sitesOf(f) {
		if s.Addr < 0 || s.Addr >= mem.Words() {
			return nil, fmt.Errorf("faults: %s: address %d out of range [0,%d)", f, s.Addr, mem.Words())
		}
		if s.Bit < 0 || s.Bit >= mem.Width() {
			return nil, fmt.Errorf("faults: %s: bit %d out of range [0,%d)", f, s.Bit, mem.Width())
		}
	}
	if c, ok := f.(Coupling); ok && c.Aggressor == c.Victim {
		return nil, fmt.Errorf("faults: %s: aggressor and victim coincide", f)
	}
	switch a := f.(type) {
	case AddrAlias:
		if a.From == a.To {
			return nil, fmt.Errorf("faults: %s: addresses coincide", f)
		}
	case AddrShadow:
		if a.From == a.To {
			return nil, fmt.Errorf("faults: %s: addresses coincide", f)
		}
	}
	inj := &Injected{mem: mem, fault: f}
	f.init(mem)
	return inj, nil
}

// MustInject is Inject for statically valid faults.
func MustInject(mem *memory.Memory, f Fault) *Injected {
	inj, err := Inject(mem, f)
	if err != nil {
		panic(err)
	}
	return inj
}

func sitesOf(f Fault) []Site {
	switch t := f.(type) {
	case StuckAt:
		return []Site{t.Cell}
	case Transition:
		return []Site{t.Cell}
	case Coupling:
		return []Site{t.Aggressor, t.Victim}
	case AddrAlias:
		return []Site{{Addr: t.From}, {Addr: t.To}}
	case AddrShadow:
		return []Site{{Addr: t.From}, {Addr: t.To}}
	case Linked:
		return []Site{t.A.Aggressor, t.A.Victim, t.B.Aggressor, t.B.Victim}
	case ReadDestructive:
		return []Site{t.Cell}
	case NPSF:
		if t.Rows < 1 || t.Cols < 1 {
			return []Site{{Addr: -1}} // forces the range check to fail
		}
		return []Site{{Addr: t.Victim}, {Addr: t.Rows*t.Cols - 1}}
	default:
		return nil
	}
}

// VictimSites returns the bit cells a fault can corrupt — the cells
// whose stored value the fault perturbs, excluding aggressors (which
// trigger but are never themselves corrupted). The second result is
// false for address-decoder faults, whose effect is redirecting whole
// words rather than corrupting fixed cells, so no cell-local footprint
// exists.
//
// The footprint is what field-level error correction sees: a fault
// corrupting at most one bit per word is covered by a SEC code on
// every word, two bits in one word by SEC-DED detection, while a
// decoder fault returns a perfectly valid codeword from the wrong
// address and escapes ECC entirely. internal/campaign's yield pipeline
// uses exactly this classification.
func VictimSites(f Fault) ([]Site, bool) {
	switch t := f.(type) {
	case StuckAt:
		return []Site{t.Cell}, true
	case Transition:
		return []Site{t.Cell}, true
	case Coupling:
		return []Site{t.Victim}, true
	case ReadDestructive:
		return []Site{t.Cell}, true
	case Linked:
		if t.A.Victim == t.B.Victim {
			return []Site{t.A.Victim}, true
		}
		return []Site{t.A.Victim, t.B.Victim}, true
	case NPSF:
		return []Site{{Addr: t.Victim}}, true
	case AddrAlias, AddrShadow:
		return nil, false
	default:
		return nil, false
	}
}

// Fault returns the injected fault.
func (i *Injected) Fault() Fault { return i.fault }

// Read implements memory access; reads are non-destructive. Address
// decoder faults may redirect or combine the accessed words.
func (i *Injected) Read(addr int) word.Word {
	if af, ok := i.fault.(addrFaultRead); ok {
		if v, handled := af.readVia(i.mem, addr); handled {
			return v
		}
	}
	return i.mem.Read(addr)
}

// Write implements memory access with the fault's perturbation.
func (i *Injected) Write(addr int, v word.Word) {
	v = v.Mask(i.mem.Width())
	if af, ok := i.fault.(addrFaultWrite); ok {
		if af.writeVia(i.mem, addr, v) {
			return
		}
	}
	old := i.mem.Read(addr)
	stored := i.fault.onWrite(addr, old, v)
	i.mem.Write(addr, stored)
	i.fault.sideEffects(i.mem, addr, old)
}

// Words implements memory access.
func (i *Injected) Words() int { return i.mem.Words() }

// Width implements memory access.
func (i *Injected) Width() int { return i.mem.Width() }
