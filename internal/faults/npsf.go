package faults

import (
	"fmt"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Neighborhood pattern-sensitive faults (NPSF). The paper's references
// [3,17] apply the transparent transformation to dedicated PSF tests
// because march tests do not target these faults; the model here makes
// that gap measurable (see this package's NPSF tests).
//
// A static NPSF forces the victim cell to a value while its four
// physical neighbors hold a specific pattern. Physical adjacency needs
// a layout: the bit-oriented memory is interpreted as a Rows×Cols grid
// with address = row·Cols + col.

// NPSF is a static type-1 (five-cell) neighborhood pattern-sensitive
// fault on a bit-oriented memory.
type NPSF struct {
	// Rows and Cols define the physical grid; Rows*Cols must not
	// exceed the memory size.
	Rows, Cols int
	// Victim is the base cell's address (bit 0 of a width-1 memory).
	Victim int
	// Pattern holds the required north, south, west, east neighbor
	// values.
	Pattern [4]int
	// Value is forced onto the victim while the pattern holds.
	Value int
}

// String implements Fault.
func (f NPSF) String() string {
	return fmt.Sprintf("NPSF<%d%d%d%d;%d>@%d", f.Pattern[0], f.Pattern[1], f.Pattern[2], f.Pattern[3], f.Value, f.Victim)
}

// Class implements Fault.
func (f NPSF) Class() string { return "NPSF" }

// IntraWord implements Fault.
func (f NPSF) IntraWord() bool { return false }

// neighbors returns the N,S,W,E addresses, or -1 where the victim sits
// on a grid edge (edge neighbors are treated as holding 0).
func (f NPSF) neighbors() [4]int {
	row, col := f.Victim/f.Cols, f.Victim%f.Cols
	out := [4]int{-1, -1, -1, -1}
	if row > 0 {
		out[0] = f.Victim - f.Cols
	}
	if row < f.Rows-1 {
		out[1] = f.Victim + f.Cols
	}
	if col > 0 {
		out[2] = f.Victim - 1
	}
	if col < f.Cols-1 {
		out[3] = f.Victim + 1
	}
	return out
}

func (f NPSF) matches(m *memory.Memory) bool {
	for i, addr := range f.neighbors() {
		v := 0
		if addr >= 0 {
			v = m.Read(addr).Bit(0)
		}
		if v != f.Pattern[i] {
			return false
		}
	}
	return true
}

func (f NPSF) enforce(m *memory.Memory) {
	if !f.matches(m) {
		return
	}
	v := m.Read(f.Victim)
	if v.Bit(0) != f.Value {
		m.Write(f.Victim, v.SetBit(0, f.Value))
	}
}

func (f NPSF) init(m *memory.Memory) { f.enforce(m) }

func (f NPSF) onWrite(addr int, old, v word.Word) word.Word { return v }

func (f NPSF) sideEffects(m *memory.Memory, addr int, old word.Word) {
	// A standing condition like CFst: enforce after every write.
	f.enforce(m)
}

// EnumerateNPSF lists the active (victim forced against the pattern)
// static NPSF instances over all interior cells of the grid, for a
// fixed pattern set. The full 5-cell population has 32 patterns x 2
// values per cell; the default enumeration keeps the 4 solid and
// checkered patterns that dedicated PSF tests start from, times both
// forced values.
func EnumerateNPSF(rows, cols int) []Fault {
	patterns := [][4]int{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{0, 1, 0, 1},
		{1, 0, 1, 0},
	}
	var out []Fault
	for row := 1; row < rows-1; row++ {
		for col := 1; col < cols-1; col++ {
			victim := row*cols + col
			for _, p := range patterns {
				for v := 0; v <= 1; v++ {
					out = append(out, NPSF{Rows: rows, Cols: cols, Victim: victim, Pattern: p, Value: v})
				}
			}
		}
	}
	return out
}
