package faults

import (
	"testing"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func TestAddrAliasRedirectsAccesses(t *testing.T) {
	mem := memory.MustNew(4, 8)
	mem.Write(2, word.FromUint64(0x22))
	inj := MustInject(mem, AddrAlias{From: 1, To: 2})
	// Reads of 1 see word 2.
	if got := inj.Read(1); got != word.FromUint64(0x22) {
		t.Fatalf("aliased read = %v", got)
	}
	// Writes to 1 land in word 2; word 1's own storage never changes.
	inj.Write(1, word.FromUint64(0x55))
	if got := mem.Read(2); got != word.FromUint64(0x55) {
		t.Fatalf("aliased write missed target: %v", got)
	}
	if got := mem.Read(1); !got.IsZero() {
		t.Fatalf("orphaned storage changed: %v", got)
	}
	// Other addresses unaffected.
	inj.Write(3, word.FromUint64(0x99))
	if inj.Read(3) != word.FromUint64(0x99) {
		t.Fatal("unrelated address disturbed")
	}
}

func TestAddrShadowMultiSelect(t *testing.T) {
	mem := memory.MustNew(4, 8)
	inj := MustInject(mem, AddrShadow{From: 0, To: 3})
	inj.Write(0, word.FromUint64(0xf0))
	// The shadow write also lands at 3.
	if got := mem.Read(3); got != word.FromUint64(0xf0) {
		t.Fatalf("shadow write missing: %v", got)
	}
	// Reads of 0 return the wired-AND of both words.
	mem.Write(3, word.FromUint64(0x3c))
	if got := inj.Read(0); got != word.FromUint64(0x30) {
		t.Fatalf("wired-AND read = %v, want 0x30", got)
	}
	// Reads of 3 are direct.
	if got := inj.Read(3); got != word.FromUint64(0x3c) {
		t.Fatalf("direct read = %v", got)
	}
}

func TestAddrFaultValidation(t *testing.T) {
	mem := memory.MustNew(4, 8)
	if _, err := Inject(mem, AddrAlias{From: 1, To: 1}); err == nil {
		t.Error("self-alias accepted")
	}
	if _, err := Inject(mem, AddrShadow{From: 0, To: 9}); err == nil {
		t.Error("out-of-range shadow accepted")
	}
}

func TestAddrFaultStringsAndClass(t *testing.T) {
	a := AddrAlias{From: 1, To: 2}
	s := AddrShadow{From: 3, To: 0}
	if a.String() != "AFalias 1->2" || s.String() != "AFshadow 3->0" {
		t.Errorf("strings: %q %q", a.String(), s.String())
	}
	if a.Class() != "AF" || s.Class() != "AF" || a.IntraWord() || s.IntraWord() {
		t.Error("classification broken")
	}
}

func TestEnumerateAddrFaults(t *testing.T) {
	list := EnumerateAddrFaults(3)
	// 3*2 ordered pairs x 2 models.
	if len(list) != 12 {
		t.Fatalf("count = %d, want 12", len(list))
	}
	seen := map[string]bool{}
	for _, f := range list {
		if seen[f.String()] {
			t.Fatalf("duplicate %s", f)
		}
		seen[f.String()] = true
	}
}
