// Package tomt reconstructs the transparent online memory test the
// paper compares against as Scheme 2 (Thaller & Steininger, "A
// transparent online memory test for simultaneous detection of
// functional faults and soft errors in memories", IEEE Trans.
// Reliability 2003 — reference [13]).
//
// TOMT assumes every memory word is protected by an error-detecting
// code (parity or Hamming); here the words carry a Hamming SEC-DED
// codeword. Faults are caught *concurrently*: every read is checked
// against the code and compared with the value the test last wrote,
// so no signature and no prediction pass exist (the paper's Table 2
// lists TCP = "No" for this scheme). The price is bit-wise
// manipulation of every word.
//
// The procedure is structured like a word-level March C- whose word
// inversions are carried out one data bit at a time (cumulative
// flip-walks), so inverted word states persist across address sweeps
// exactly as in a march test — that persistence is what excites
// inter-word coupling faults in both polarities:
//
//	P1 ⇑ flip-walk each word, ascending bit order   (2W ops/word)
//	P2 ⇑ flip-walk each word, descending bit order  (2W ops/word)
//	P3 ⇓ flip-walk each word, descending bit order  (2W ops/word)
//	P4 ⇓ flip-walk each word, ascending bit order   (2W ops/word)
//	V  ⇑ verification read of each word             (1 op/word)
//
// Each flip-walk inverts all W data bits one write at a time (reading
// and checking before every write), leaving the word fully inverted;
// two walks restore it, so the memory contents are preserved and the
// test is transparent. The cost is 8W+1 operations per word — the
// paper's Table 2 rounds this to the 8·W·N it attributes to TOMT (the
// closing verification read observes the final restore writes).
//
// The original TOMT paper is not openly available; this reconstruction
// follows the behaviour the DATE'05 paper relies on (bit-wise
// transparent manipulation, ECC-based concurrent detection, ~8WN cost)
// and stands in for the original as a documented substitution.
package tomt

import (
	"fmt"

	"twmarch/internal/ecc"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// DetectionKind classifies how TOMT noticed a fault.
type DetectionKind int

const (
	// SyndromeError: an ECC check of a read codeword failed.
	SyndromeError DetectionKind = iota
	// ReadbackMismatch: a word read back immediately after a write
	// differed from the value written.
	ReadbackMismatch
)

// String implements fmt.Stringer.
func (k DetectionKind) String() string {
	switch k {
	case SyndromeError:
		return "syndrome"
	case ReadbackMismatch:
		return "readback"
	default:
		return fmt.Sprintf("DetectionKind(%d)", int(k))
	}
}

// Detection records one fault observation.
type Detection struct {
	Kind DetectionKind
	Addr int
	// Bit is the data bit under manipulation when the fault surfaced,
	// or -1 for the initial word scan.
	Bit int
}

// String formats the detection.
func (d Detection) String() string {
	return fmt.Sprintf("%s@%d.%d", d.Kind, d.Addr, d.Bit)
}

// Result reports a TOMT execution.
type Result struct {
	// Ops, Reads, Writes count executed memory operations.
	Ops, Reads, Writes int
	// Detections lists observed faults (capped at 256).
	Detections []Detection
	// DetectionCount is exact even when the list is capped.
	DetectionCount int
}

// Detected reports whether the run flagged any fault.
func (r *Result) Detected() bool { return r.DetectionCount > 0 }

// OpsPerWord returns the constructive TOMT test length in operations
// per memory word for the given data width: four 2W-op flip-walks plus
// the closing verification read. The paper's Table 2 closed form drops
// the +1.
func OpsPerWord(dataWidth int) int { return 8*dataWidth + 1 }

// EncodeMemory fills code (a memory of codec codeword width) with the
// encoded contents of data (a memory of codec data width). It models
// the ECC-protected RAM TOMT requires.
func EncodeMemory(codec *ecc.Hamming, data *memory.Memory, code *memory.Memory) error {
	if data.Width() != codec.DataWidth() {
		return fmt.Errorf("tomt: data memory width %d != codec data width %d", data.Width(), codec.DataWidth())
	}
	if code.Width() != codec.CodewordWidth() {
		return fmt.Errorf("tomt: code memory width %d != codeword width %d", code.Width(), codec.CodewordWidth())
	}
	if data.Words() != code.Words() {
		return fmt.Errorf("tomt: geometries differ: %d vs %d words", data.Words(), code.Words())
	}
	for i := 0; i < data.Words(); i++ {
		code.Write(i, codec.Encode(data.Read(i)))
	}
	return nil
}

// Runner executes the TOMT procedure over an ECC-protected memory.
type Runner struct {
	codec *ecc.Hamming
	// MaxDetections bounds the recorded detection list (0 means 256).
	MaxDetections int
}

// NewRunner builds a runner for the codec.
func NewRunner(codec *ecc.Hamming) *Runner {
	return &Runner{codec: codec}
}

// Run executes the TOMT test over mem, which must hold codewords of
// the codec's width. The procedure is transparent: when the memory is
// fault-free its contents are unchanged afterwards. See the package
// comment for the pass structure.
func (t *Runner) Run(mem memory.Accessor) (Result, error) {
	if mem.Width() != t.codec.CodewordWidth() {
		return Result{}, fmt.Errorf("tomt: memory width %d != codeword width %d", mem.Width(), t.codec.CodewordWidth())
	}
	maxDet := t.MaxDetections
	if maxDet == 0 {
		maxDet = 256
	}
	var res Result
	detect := func(k DetectionKind, addr, bit int) {
		res.DetectionCount++
		if len(res.Detections) < maxDet {
			res.Detections = append(res.Detections, Detection{Kind: k, Addr: addr, Bit: bit})
		}
	}
	n := mem.Words()
	w := t.codec.DataWidth()

	// flipWalk inverts every data bit of the addressed word, one write
	// at a time in the given bit order. Each step reads first: the
	// read is ECC-checked and, within the walk, compared against the
	// last written codeword.
	flipWalk := func(addr int, descBits bool) {
		var expected word.Word
		haveExpected := false
		for k := 0; k < w; k++ {
			bit := k
			if descBits {
				bit = w - 1 - k
			}
			cw := mem.Read(addr)
			res.Ops++
			res.Reads++
			if haveExpected && cw != expected {
				detect(ReadbackMismatch, addr, bit)
			} else if !t.codec.Check(cw) {
				detect(SyndromeError, addr, bit)
			}
			next := t.codec.Encode(t.codec.Data(cw).FlipBit(bit))
			mem.Write(addr, next)
			res.Ops++
			res.Writes++
			expected = next
			haveExpected = true
		}
	}
	pass := func(descAddr, descBits bool) {
		for i := 0; i < n; i++ {
			addr := i
			if descAddr {
				addr = n - 1 - i
			}
			flipWalk(addr, descBits)
		}
	}
	pass(false, false) // P1 ⇑, ascending bits: words left inverted
	pass(false, true)  // P2 ⇑, descending bits: words restored
	pass(true, true)   // P3 ⇓, descending bits: words left inverted
	pass(true, false)  // P4 ⇓, ascending bits: words restored
	for addr := 0; addr < n; addr++ {
		// V: closing verification sweep observes the final restores.
		cw := mem.Read(addr)
		res.Ops++
		res.Reads++
		if !t.codec.Check(cw) {
			detect(SyndromeError, addr, -1)
		}
	}
	return res, nil
}
