package tomt

import (
	"math/rand"
	"testing"

	"twmarch/internal/ecc"
	"twmarch/internal/faults"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// setup builds an ECC-protected memory holding n random data words of
// the given data width, returning the codec, the codeword memory and
// the data snapshot.
func setup(t *testing.T, n, dataWidth int, seed int64) (*ecc.Hamming, *memory.Memory, []word.Word) {
	t.Helper()
	codec := ecc.MustNewHamming(dataWidth, true)
	data := memory.MustNew(n, dataWidth)
	data.Randomize(rand.New(rand.NewSource(seed)))
	code := memory.MustNew(n, codec.CodewordWidth())
	if err := EncodeMemory(codec, data, code); err != nil {
		t.Fatal(err)
	}
	return codec, code, data.Snapshot()
}

func TestOpsPerWordMatchesPaper(t *testing.T) {
	// The paper's Table 2 assigns TOMT a test length of 8·W·N; the
	// constructive procedure adds one verification read per word.
	for _, w := range []int{4, 8, 16, 32} {
		if got := OpsPerWord(w); got != 8*w+1 {
			t.Errorf("OpsPerWord(%d) = %d, want %d", w, got, 8*w+1)
		}
	}
}

func TestFaultFreeRunIsCleanAndTransparent(t *testing.T) {
	codec, code, dataBefore := setup(t, 8, 8, 1)
	before := code.Snapshot()
	r := NewRunner(codec)
	res, err := r.Run(code)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Fatalf("fault-free TOMT detected: %v", res.Detections)
	}
	if !code.Equal(before) {
		t.Fatal("TOMT did not preserve codeword contents")
	}
	for i, want := range dataBefore {
		if got := codec.Data(code.Read(i)); got != want {
			t.Fatalf("word %d data changed: %v != %v", i, got, want)
		}
	}
	// Exactly 8·W+1 ops per word: 4W reads + 4W writes in the walks
	// plus the verification read.
	wantOps := OpsPerWord(8) * 8
	if res.Ops != wantOps {
		t.Fatalf("ops = %d, want %d", res.Ops, wantOps)
	}
	if res.Reads != (4*8+1)*8 || res.Writes != 4*8*8 {
		t.Fatalf("reads=%d writes=%d", res.Reads, res.Writes)
	}
}

func TestDetectsStuckAtInDataBit(t *testing.T) {
	codec, code, _ := setup(t, 4, 8, 2)
	// Stuck-at on a stored bit that carries data bit 0: codeword
	// position 3 (first non-power-of-two), stored bit index 3 for the
	// extended layout.
	inj := faults.MustInject(code, faults.StuckAt{Cell: faults.Site{Addr: 2, Bit: 3}, Value: 1})
	res, err := NewRunner(codec).Run(inj)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("TOMT missed a stuck-at fault in a data bit")
	}
}

func TestDetectsStuckAtInCheckBit(t *testing.T) {
	codec, code, _ := setup(t, 4, 8, 3)
	// Stored bit 1 is codeword position 1, a Hamming parity bit.
	inj := faults.MustInject(code, faults.StuckAt{Cell: faults.Site{Addr: 1, Bit: 1}, Value: 0})
	res, err := NewRunner(codec).Run(inj)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("TOMT missed a stuck-at fault in a check bit")
	}
}

func TestDetectsAllStuckAtFaults(t *testing.T) {
	const n, dw = 4, 4
	codec := ecc.MustNewHamming(dw, true)
	cwWidth := codec.CodewordWidth()
	for _, f := range faults.EnumerateStuckAt(n, cwWidth) {
		data := memory.MustNew(n, dw)
		data.Randomize(rand.New(rand.NewSource(42)))
		code := memory.MustNew(n, cwWidth)
		if err := EncodeMemory(codec, data, code); err != nil {
			t.Fatal(err)
		}
		inj := faults.MustInject(code, f)
		res, err := NewRunner(codec).Run(inj)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("TOMT missed %s", f)
		}
	}
}

func TestDetectsTransitionFaults(t *testing.T) {
	const n, dw = 4, 4
	codec := ecc.MustNewHamming(dw, true)
	cwWidth := codec.CodewordWidth()
	for _, f := range faults.EnumerateTransition(n, cwWidth) {
		data := memory.MustNew(n, dw)
		data.Randomize(rand.New(rand.NewSource(11)))
		code := memory.MustNew(n, cwWidth)
		if err := EncodeMemory(codec, data, code); err != nil {
			t.Fatal(err)
		}
		inj := faults.MustInject(code, f)
		res, err := NewRunner(codec).Run(inj)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("TOMT missed %s", f)
		}
	}
}

// couplingPopulation enumerates all CFid/CFin/CFst instances over the
// given bit-cell sites.
func couplingPopulation(n int, bits []int) []faults.Fault {
	var sites []faults.Site
	for a := 0; a < n; a++ {
		for _, b := range bits {
			sites = append(sites, faults.Site{Addr: a, Bit: b})
		}
	}
	var out []faults.Fault
	for _, ag := range sites {
		for _, vi := range sites {
			if ag == vi {
				continue
			}
			for tr := 0; tr <= 1; tr++ {
				for v := 0; v <= 1; v++ {
					out = append(out, faults.Coupling{Model: faults.CFid, Aggressor: ag, Victim: vi, AggrTrigger: tr, VictimValue: v})
					out = append(out, faults.Coupling{Model: faults.CFst, Aggressor: ag, Victim: vi, AggrTrigger: tr, VictimValue: v})
				}
				out = append(out, faults.Coupling{Model: faults.CFin, Aggressor: ag, Victim: vi, AggrTrigger: tr})
			}
		}
	}
	return out
}

// The march-like pass structure must catch every coupling fault among
// the *data* bit cells, intra- and inter-word, for arbitrary memory
// contents. (Coupling faults whose victim is a check bit can be
// structurally masked: the walks only apply prefix/suffix inversion
// masks, under which a parity bit can stay correlated with its
// aggressor; see TestCheckBitCouplingCoverage.)
func TestDetectsAllDataCellCouplingFaults(t *testing.T) {
	const n, dw = 3, 4
	codec := ecc.MustNewHamming(dw, true)
	cwWidth := codec.CodewordWidth()
	missed := 0
	population := couplingPopulation(n, codec.DataBitPositions())
	for _, f := range population {
		data := memory.MustNew(n, dw)
		data.Randomize(rand.New(rand.NewSource(5)))
		code := memory.MustNew(n, cwWidth)
		if err := EncodeMemory(codec, data, code); err != nil {
			t.Fatal(err)
		}
		inj := faults.MustInject(code, f)
		res, err := NewRunner(codec).Run(inj)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			missed++
			if missed <= 5 {
				t.Logf("missed: %s", f)
			}
		}
	}
	if missed > 0 {
		t.Errorf("TOMT missed %d/%d data-cell coupling faults", missed, len(population))
	}
}

// Coupling faults involving check-bit cells: document the measured
// coverage and require it to stay high; exact 100% is structurally out
// of reach for a bit-walking test (the reconstruction note in the
// package comment).
func TestCheckBitCouplingCoverage(t *testing.T) {
	const n, dw = 3, 4
	codec := ecc.MustNewHamming(dw, true)
	cwWidth := codec.CodewordWidth()
	all := make(map[int]bool)
	for _, b := range codec.DataBitPositions() {
		all[b] = true
	}
	var bits []int
	for b := 0; b < cwWidth; b++ {
		bits = append(bits, b)
	}
	missed, total := 0, 0
	for _, f := range couplingPopulation(n, bits) {
		c := f.(faults.Coupling)
		if all[c.Aggressor.Bit] && all[c.Victim.Bit] {
			continue // data-cell pairs covered by the test above
		}
		data := memory.MustNew(n, dw)
		data.Randomize(rand.New(rand.NewSource(5)))
		code := memory.MustNew(n, cwWidth)
		if err := EncodeMemory(codec, data, code); err != nil {
			t.Fatal(err)
		}
		inj := faults.MustInject(code, f)
		res, err := NewRunner(codec).Run(inj)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if !res.Detected() {
			missed++
		}
	}
	coverage := 1 - float64(missed)/float64(total)
	t.Logf("check-bit coupling coverage: %.2f%% (%d/%d missed)", 100*coverage, missed, total)
	if coverage < 0.95 {
		t.Errorf("check-bit coupling coverage %.2f%% below 95%%", 100*coverage)
	}
}

// Transparency must hold regardless of pass structure: contents after
// a fault-free run equal contents before, for many random contents.
func TestTransparencyProperty(t *testing.T) {
	codec := ecc.MustNewHamming(4, true)
	for seed := int64(0); seed < 10; seed++ {
		data := memory.MustNew(5, 4)
		data.Randomize(rand.New(rand.NewSource(seed)))
		code := memory.MustNew(5, codec.CodewordWidth())
		if err := EncodeMemory(codec, data, code); err != nil {
			t.Fatal(err)
		}
		before := code.Snapshot()
		res, err := NewRunner(codec).Run(code)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected() {
			t.Fatalf("seed %d: false positive: %v", seed, res.Detections)
		}
		if !code.Equal(before) {
			t.Fatalf("seed %d: contents changed", seed)
		}
	}
}

func TestRunRejectsWrongWidth(t *testing.T) {
	codec := ecc.MustNewHamming(8, true)
	mem := memory.MustNew(4, 8) // data width, not codeword width
	if _, err := NewRunner(codec).Run(mem); err == nil {
		t.Fatal("wrong-width memory accepted")
	}
}

func TestEncodeMemoryValidation(t *testing.T) {
	codec := ecc.MustNewHamming(8, true)
	data := memory.MustNew(4, 8)
	badData := memory.MustNew(4, 4)
	code := memory.MustNew(4, codec.CodewordWidth())
	badCode := memory.MustNew(4, 8)
	shortCode := memory.MustNew(2, codec.CodewordWidth())
	if err := EncodeMemory(codec, badData, code); err == nil {
		t.Error("bad data width accepted")
	}
	if err := EncodeMemory(codec, data, badCode); err == nil {
		t.Error("bad code width accepted")
	}
	if err := EncodeMemory(codec, data, shortCode); err == nil {
		t.Error("geometry mismatch accepted")
	}
	if err := EncodeMemory(codec, data, code); err != nil {
		t.Errorf("valid encode failed: %v", err)
	}
}

func TestDetectionCapAndStrings(t *testing.T) {
	codec, code, _ := setup(t, 8, 8, 9)
	// A stuck word line: every bit of word 0 stuck via many injections
	// is overkill; instead a single stuck-at generates many detections
	// across sweeps. Cap at 2.
	inj := faults.MustInject(code, faults.StuckAt{Cell: faults.Site{Addr: 0, Bit: 3}, Value: 1})
	r := NewRunner(codec)
	r.MaxDetections = 2
	res, err := r.Run(inj)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) > 2 {
		t.Fatalf("cap ignored: %d recorded", len(res.Detections))
	}
	if res.DetectionCount <= 2 {
		t.Fatalf("DetectionCount = %d, expected more than cap", res.DetectionCount)
	}
	if res.Detections[0].String() == "" {
		t.Error("empty detection string")
	}
	if SyndromeError.String() != "syndrome" || ReadbackMismatch.String() != "readback" {
		t.Error("kind strings broken")
	}
}
