package campaign

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// simulateAll runs every cell of the spec serially, in grid order.
func simulateAll(t testing.TB, spec Spec) []CellResult {
	t.Helper()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		out = append(out, RunCell(spec, c))
	}
	return out
}

// TestAggregatorMatchesBatch is the incremental fold's core guarantee:
// feeding results to an Aggregator in any completion order yields a
// canonical aggregate byte-identical to the batch NewAggregate fold in
// grid order. The grid includes both schemes, both modes, and (via a
// second spec) the yield pipeline, so every folded section is covered.
func TestAggregatorMatchesBatch(t *testing.T) {
	specs := []Spec{gridSpec()}
	p := gridSpec()
	p.Tests = p.Tests[:2]
	p.Modes = []string{ModeCompare}
	p.Pipeline = &PipelineSpec{Enabled: true, SpareRows: 1, SpareCols: 1, ECC: ECCSEC}
	specs = append(specs, p)

	for _, spec := range specs {
		results := simulateAll(t, spec)
		batch := NewAggregate(spec.Normalized(), results)
		want, err := batch.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 5; trial++ {
			perm := rng.Perm(len(results))
			g := NewAggregator(spec)
			for _, i := range perm {
				g.Add(results[i])
			}
			got, err := g.Snapshot().Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("incremental fold (order %v) diverges from batch:\n%s", perm, got)
			}
		}
	}
}

// TestAggregatorPartialSnapshot checks the live view: a snapshot taken
// mid-fold carries exactly the folded cells, internally consistent
// counters, and never disturbs the final aggregate.
func TestAggregatorPartialSnapshot(t *testing.T) {
	spec := gridSpec()
	results := simulateAll(t, spec)
	g := NewAggregator(spec)

	if snap := g.Snapshot(); snap.Cells != nil || snap.Faults != 0 {
		t.Fatalf("empty aggregator snapshot not empty: %+v", snap)
	}
	half := len(results) / 2
	for _, r := range results[:half] {
		g.Add(r)
	}
	snap := g.Snapshot()
	if len(snap.Cells) != half {
		t.Fatalf("partial snapshot has %d cells, want %d", len(snap.Cells), half)
	}
	var faults, detected int
	for _, r := range snap.Cells {
		faults += r.Faults
		detected += r.Detected
	}
	if snap.Faults != faults || snap.Detected != detected {
		t.Fatalf("partial counters inconsistent: %d/%d vs folded %d/%d",
			snap.Faults, snap.Detected, faults, detected)
	}
	st := g.Stats()
	if st.Cells != half || st.Faults != faults || st.Detected != detected {
		t.Fatalf("Stats %+v diverges from snapshot", st)
	}
	// Duplicate adds are ignored — a journal replay can't double-count.
	for _, r := range results[:half] {
		g.Add(r)
	}
	if g.Added() != half {
		t.Fatalf("duplicate adds counted: %d cells", g.Added())
	}
	for _, r := range results[half:] {
		g.Add(r)
	}
	want, err := NewAggregate(spec.Normalized(), results).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("final aggregate after partial snapshots diverges from batch")
	}
}

// TestStreamEmitsEveryCell checks the engine's event contract: every
// cell is emitted to every sink exactly once, and the sinks observe a
// result only after the aggregator folded it.
func TestStreamEmitsEveryCell(t *testing.T) {
	spec := gridSpec()
	agg := NewAggregator(spec)
	var mu sync.Mutex
	seen := make(map[int]int)
	behind := 0
	sink := SinkFunc(func(r CellResult) {
		mu.Lock()
		defer mu.Unlock()
		seen[r.Index]++
		if !agg.Has(r.Index) {
			behind++
		}
	})
	var count int
	counter := SinkFunc(func(CellResult) { count++ })
	a, err := Engine{}.Stream(context.Background(), spec, &Progress{}, agg, sink, counter)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != 112 {
		t.Fatalf("aggregate has %d cells, want 112", len(a.Cells))
	}
	if behind != 0 {
		t.Errorf("%d events emitted before their fold", behind)
	}
	if count != 112 {
		t.Errorf("second sink saw %d events, want 112", count)
	}
	if len(seen) != 112 {
		t.Fatalf("sink saw %d distinct cells, want 112", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d emitted %d times", idx, n)
		}
	}
}

// TestStreamResume is the journal-recovery contract at engine level: a
// run seeded with the first half of the results simulates only the
// remainder (sinks see just those cells) and its final canonical
// aggregate is byte-identical to an uninterrupted run.
func TestStreamResume(t *testing.T) {
	spec := gridSpec()
	full, err := Engine{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// Seed the aggregator with an arbitrary half of the finished cells,
	// the way twmd replays a WAL.
	agg := NewAggregator(spec)
	seeded := make(map[int]bool)
	for i, r := range full.Cells {
		if i%2 == 0 {
			agg.Add(r)
			seeded[r.Index] = true
		}
	}
	var mu sync.Mutex
	emitted := make(map[int]bool)
	sink := SinkFunc(func(r CellResult) {
		mu.Lock()
		emitted[r.Index] = true
		mu.Unlock()
	})
	prog := &Progress{}
	resumed, err := Engine{}.Stream(context.Background(), spec, prog, agg, sink)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed aggregate diverges from uninterrupted run")
	}
	for idx := range emitted {
		if seeded[idx] {
			t.Fatalf("seeded cell %d re-emitted", idx)
		}
	}
	if len(emitted) != len(full.Cells)-len(seeded) {
		t.Fatalf("sinks saw %d cells, want %d", len(emitted), len(full.Cells)-len(seeded))
	}
	if prog.Done() != prog.Total() || prog.Fraction() != 1 {
		t.Fatalf("resume progress incomplete: %d/%d", prog.Done(), prog.Total())
	}
}

// TestStreamCancelEmitsNoArtifacts pins the cancellation contract for
// sinks: a canceled run returns ctx.Err() and must never emit a
// cell poisoned by the cancellation itself — a journal sink would
// otherwise persist the artifact and a recovered job would treat the
// half-simulated cell as a real failure.
func TestStreamCancelEmitsNoArtifacts(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		prog := &Progress{}
		var mu sync.Mutex
		var poisoned []CellResult
		sink := SinkFunc(func(r CellResult) {
			mu.Lock()
			if r.Err != "" {
				poisoned = append(poisoned, r)
			}
			mu.Unlock()
		})
		done := make(chan error, 1)
		go func() {
			_, err := (Engine{}).Stream(ctx, gridSpec(), prog, nil, sink)
			done <- err
		}()
		for prog.Total() == 0 || (prog.Done() < int64(trial) && prog.Done() < prog.Total()) {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
		if err := <-done; err != context.Canceled && prog.Done() < prog.Total() {
			t.Fatalf("trial %d: canceled run returned %v", trial, err)
		}
		mu.Lock()
		if len(poisoned) != 0 {
			t.Fatalf("trial %d: %d poisoned results emitted, first: %+v", trial, len(poisoned), poisoned[0])
		}
		mu.Unlock()
	}
}

// TestProgressTimestamps pins the rate/ETA accounting: elapsed starts
// at zero, grows during a run, freezes at completion; the rate counts
// only cells simulated this run.
func TestProgressTimestamps(t *testing.T) {
	prog := &Progress{}
	if prog.Elapsed() != 0 || prog.Rate() != 0 || prog.ETA() != 0 {
		t.Fatal("zero Progress reports nonzero timing")
	}
	spec := gridSpec()
	if _, err := (Engine{}).Stream(context.Background(), spec, prog, nil); err != nil {
		t.Fatal(err)
	}
	el := prog.Elapsed()
	if el <= 0 {
		t.Fatal("finished run reports zero elapsed")
	}
	if prog.Elapsed() != el {
		t.Fatal("elapsed not frozen after finish")
	}
	if prog.Rate() <= 0 {
		t.Fatalf("finished run reports rate %f", prog.Rate())
	}
	if prog.ETA() != 0 {
		t.Fatalf("finished run reports ETA %s", prog.ETA())
	}
}
