package campaign

// Engine metrics on the process-default obs registry. Instrumentation
// here is on the per-cell granularity — one counter increment and one
// histogram observation per simulated cell, plus a cache tally per
// fault-list lookup — so the per-fault simulation hot path inside
// faultsim is untouched.

import "twmarch/internal/obs"

var (
	metCells = obs.NewCounter("twm_engine_cells_total",
		"grid cells simulated to completion (local engine, worker, or cluster lease)").With()
	metCellErrors = obs.NewCounter("twm_engine_cell_errors_total",
		"simulated cells that finished with a per-cell error").With()
	metCellDur = obs.NewHistogram("twm_engine_cell_duration_seconds",
		"wall-clock simulation time per grid cell", nil).With()
	metCacheHits = obs.NewCounter("twm_engine_fault_cache_hits_total",
		"fault-list lookups served from the per-geometry cache").With()
	metCacheMisses = obs.NewCounter("twm_engine_fault_cache_misses_total",
		"fault-list lookups that enumerated the population").With()
	metActiveWorkers = obs.NewGauge("twm_engine_active_workers",
		"engine pool goroutines currently simulating").With()
)
