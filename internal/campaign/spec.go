// Package campaign runs test campaigns: declarative grids over march
// tests, word widths, memory sizes, transformation schemes, detection
// modes and fault populations, fanned out over a worker pool and
// folded into one deterministic aggregate.
//
// A campaign is the fleet-scale counterpart of a single faultsim run.
// The paper evaluates one memory at a time; a production BIST service
// must characterize thousands of (memory geometry × march test ×
// fault model) configurations, the way a shared controller tests many
// distributed embedded SRAMs. The engine shards the grid into batches,
// derives an independent PRNG seed per cell (so results never depend
// on scheduling), and streams batched results into an aggregator that
// slots them by cell index — the aggregate is byte-identical whether
// the grid ran on one worker or many.
package campaign

import (
	"fmt"

	"twmarch/internal/databg"
	"twmarch/internal/faults"
	"twmarch/internal/march"
)

// Default grid dimensions applied by Normalized when a field is empty.
var (
	// DefaultClasses is the fault population enumerated per cell.
	DefaultClasses = []string{"SAF", "TF", "CFst", "CFid", "CFin"}
	// DefaultSchemes runs the proposed transparent word-oriented test
	// and the per-background Scheme 1 baseline.
	DefaultSchemes = []string{SchemeTWM, SchemeOne}
	// DefaultModes runs the ideal comparator only; add ModeSignature
	// for the realistic MISR flow including aliasing.
	DefaultModes = []string{ModeCompare}
)

// Grid limits enforced by Validate and Cells. They bound what one
// campaign can ask of the engine — cmd/twmd accepts specs from the
// network, so a typo'd geometry must not pin the daemon.
const (
	// MaxWords bounds a single cell's memory size.
	MaxWords = 1 << 16
	// MaxCells bounds the expanded grid.
	MaxCells = 1 << 16
	// MaxCouplingBits bounds words×width when the fault population
	// includes a coupling class: pair enumeration is quadratic in the
	// bit count, so without this cap one cell could allocate an
	// arbitrarily large fault list.
	MaxCouplingBits = 1 << 11
	// MaxWorkers bounds Spec.Workers: a network-submitted spec must not
	// ask the engine for an arbitrary number of goroutines.
	MaxWorkers = 256
)

// Scheme names accepted in Spec.Schemes.
const (
	// SchemeTWM is the paper's TWM_TA transformation (Algorithm 1).
	SchemeTWM = "twm"
	// SchemeOne is the per-background Scheme 1 baseline of [12].
	SchemeOne = "scheme1"
)

// Mode names accepted in Spec.Modes.
const (
	// ModeCompare checks every read against its expected value.
	ModeCompare = "compare"
	// ModeSignature compares MISR signatures against the predicted
	// signature, including aliasing behaviour.
	ModeSignature = "signature"
)

// Spec declares a campaign as a grid: the cross product of Tests ×
// Widths × Words × Schemes × Modes, each cell simulated against the
// fault population described by Classes and Scope. The zero values of
// the optional fields are filled in by Normalized. Spec marshals
// to/from JSON; this is the wire format cmd/twmd accepts.
type Spec struct {
	// Name labels the campaign in reports and daemon listings.
	Name string `json:"name,omitempty"`
	// Tests are catalog march-test names (see march.Catalog).
	Tests []string `json:"tests"`
	// Widths are word widths; power-of-two, ≤ word.MaxWidth.
	Widths []int `json:"widths"`
	// Words are memory sizes in words.
	Words []int `json:"words"`
	// Schemes selects the transformations to evaluate ("twm",
	// "scheme1"); empty means both.
	Schemes []string `json:"schemes,omitempty"`
	// Modes selects detection mechanisms ("compare", "signature");
	// empty means compare only.
	Modes []string `json:"modes,omitempty"`
	// Classes are the fault classes enumerated per cell; empty means
	// DefaultClasses. Also accepted: "AF", "Linked".
	Classes []string `json:"classes,omitempty"`
	// Scope restricts coupling pairs: "all" (default), "intra",
	// "inter".
	Scope string `json:"scope,omitempty"`
	// Seed is the campaign base seed; each cell derives its own
	// initial-contents seed from it, independent of scheduling.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds engine concurrency; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Batch is the shard size handed to a worker at once; 0 picks a
	// size that keeps every worker busy.
	Batch int `json:"batch,omitempty"`
	// Naive forces the naive per-fault simulation path instead of the
	// reference-trace fast path (one fault-free reference per cell,
	// shared across the cell's fault population). Results are
	// bit-identical either way — the flag is a debugging escape hatch
	// and is zeroed in the canonical aggregate like the other
	// scheduling knobs.
	Naive bool `json:"naive,omitempty"`
	// NoLanes forces the scalar per-fault reference replay instead of
	// the bit-parallel lane path that batches up to 64 faults per
	// replay. Results are bit-identical either way — like Naive it is
	// a debugging escape hatch, zeroed in the canonical aggregate, and
	// it has no effect when Naive is set.
	NoLanes bool `json:"no_lanes,omitempty"`
	// Pipeline, when enabled, runs the diagnosis-and-repair stage
	// after detection: mismatch syndromes are diagnosed, suspect sites
	// fed to the spare-row/column allocator, and test escapes checked
	// against a field-ECC model. See PipelineSpec.
	Pipeline *PipelineSpec `json:"pipeline,omitempty"`
}

// Normalized returns a copy with defaults filled in.
func (s Spec) Normalized() Spec {
	if len(s.Schemes) == 0 {
		s.Schemes = append([]string(nil), DefaultSchemes...)
	}
	if len(s.Modes) == 0 {
		s.Modes = append([]string(nil), DefaultModes...)
	}
	if len(s.Classes) == 0 {
		s.Classes = append([]string(nil), DefaultClasses...)
	}
	if s.Scope == "" {
		s.Scope = "all"
	}
	return s
}

// Validate checks the grid before expansion. It works on the
// normalized spec.
func (s Spec) Validate() error {
	s = s.Normalized()
	if len(s.Tests) == 0 {
		return fmt.Errorf("campaign: spec has no tests")
	}
	if len(s.Widths) == 0 {
		return fmt.Errorf("campaign: spec has no widths")
	}
	if len(s.Words) == 0 {
		return fmt.Errorf("campaign: spec has no words")
	}
	for _, name := range s.Tests {
		if _, err := march.Lookup(name); err != nil {
			return fmt.Errorf("campaign: %v", err)
		}
	}
	for _, w := range s.Widths {
		if _, err := databg.Log2(w); err != nil {
			return fmt.Errorf("campaign: width %d: %v", w, err)
		}
	}
	for _, n := range s.Words {
		if n < 2 || n > MaxWords {
			return fmt.Errorf("campaign: words %d out of range [2, %d]", n, MaxWords)
		}
	}
	if n := s.CellCount(); n > MaxCells {
		return fmt.Errorf("campaign: grid has %d cells (max %d)", n, MaxCells)
	}
	for _, sc := range s.Schemes {
		if sc != SchemeTWM && sc != SchemeOne {
			return fmt.Errorf("campaign: unknown scheme %q", sc)
		}
	}
	for _, m := range s.Modes {
		if m != ModeCompare && m != ModeSignature {
			return fmt.Errorf("campaign: unknown mode %q", m)
		}
	}
	scope, err := PairScope(s.Scope)
	if err != nil {
		return err
	}
	if quadraticClasses(s.Classes) {
		for _, n := range s.Words {
			for _, w := range s.Widths {
				if n*w > MaxCouplingBits {
					return fmt.Errorf("campaign: %d×%d memory has %d bits, above the %d-bit coupling-fault limit",
						n, w, n*w, MaxCouplingBits)
				}
			}
		}
	}
	for _, c := range s.Classes {
		if !knownClass(c) {
			return fmt.Errorf("campaign: unknown fault class %q", c)
		}
	}
	// Probe the fault population at the grid's smallest geometry with
	// the spec's actual scope. Enumeration is monotone in words and
	// width and every class's existence threshold is ≤ 2 cells/bits, so
	// the probe geometry can be clamped to 4×4: emptiness there equals
	// emptiness at any geometry at least as large, and the probe never
	// allocates more than a handful of faults on the submit path.
	// Classes are probed one at a time with an early exit.
	pw, pb := minOf(s.Words), minOf(s.Widths)
	if pw > 4 {
		pw = 4
	}
	if pb > 4 {
		pb = 4
	}
	empty := true
	for _, c := range s.Classes {
		if list, err := FaultList([]string{c}, scope, pw, pb); err == nil && len(list) > 0 {
			empty = false
			break
		}
	}
	if empty {
		return fmt.Errorf("campaign: empty fault population at the %d×%d grid minimum (scope %s)",
			minOf(s.Words), minOf(s.Widths), s.Scope)
	}
	if s.Workers < 0 || s.Workers > MaxWorkers {
		return fmt.Errorf("campaign: workers %d out of range [0, %d]", s.Workers, MaxWorkers)
	}
	if s.Batch < 0 {
		return fmt.Errorf("campaign: negative batch %d", s.Batch)
	}
	if err := s.Pipeline.validate(s.Widths); err != nil {
		return err
	}
	return nil
}

// Cell is one point of the campaign grid, self-describing so a worker
// needs nothing but the cell (plus the spec's fault population) to run
// it.
type Cell struct {
	// Index is the cell's position in grid order; the aggregator slots
	// results by it.
	Index int `json:"index"`
	// Test is the catalog march-test name.
	Test string `json:"test"`
	// Width and Words give the memory geometry.
	Width int `json:"width"`
	Words int `json:"words"`
	// Scheme and Mode name the transformation and detection mechanism.
	Scheme string `json:"scheme"`
	Mode   string `json:"mode"`
	// Seed is the cell's derived initial-contents seed.
	Seed int64 `json:"seed"`
}

// knownClass reports whether name is an accepted fault class.
func knownClass(name string) bool {
	switch name {
	case "SAF", "TF", "CFst", "CFid", "CFin", "AF", "Linked":
		return true
	}
	return false
}

// quadraticClasses reports whether the class list contains a coupling
// class, whose enumeration is quadratic in the memory's bit count.
func quadraticClasses(classes []string) bool {
	for _, c := range classes {
		switch c {
		case "CFst", "CFid", "CFin", "Linked":
			return true
		}
	}
	return false
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CellCount returns the size of the expanded grid without expanding
// it. The product saturates at MaxCells+1 so oversized grids cannot
// wrap around the int range and slip past the MaxCells check.
func (s Spec) CellCount() int {
	s = s.Normalized()
	n := 1
	for _, d := range []int{len(s.Tests), len(s.Widths), len(s.Words), len(s.Schemes), len(s.Modes)} {
		if d == 0 {
			return 0
		}
		if n > MaxCells/d {
			return MaxCells + 1
		}
		n *= d
	}
	return n
}

// Cells expands the normalized grid in deterministic order: tests
// outermost, then widths, words, schemes, modes. Each cell's seed is
// derived from the base seed and the cell index with a splitmix64
// step, so cell results are a pure function of (spec, index).
func (s Spec) Cells() ([]Cell, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var cells []Cell
	for _, test := range s.Tests {
		for _, width := range s.Widths {
			for _, words := range s.Words {
				for _, scheme := range s.Schemes {
					for _, mode := range s.Modes {
						idx := len(cells)
						cells = append(cells, Cell{
							Index:  idx,
							Test:   test,
							Width:  width,
							Words:  words,
							Scheme: scheme,
							Mode:   mode,
							Seed:   deriveSeed(s.Seed, idx),
						})
					}
				}
			}
		}
	}
	return cells, nil
}

// deriveSeed mixes the campaign base seed with a cell index using the
// splitmix64 finalizer, giving every cell an independent stream.
func deriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// PairScope parses a Spec.Scope value.
func PairScope(scope string) (faults.PairScope, error) {
	switch scope {
	case "", "all":
		return faults.AllPairs, nil
	case "intra":
		return faults.IntraWordPairs, nil
	case "inter":
		return faults.InterWordPairs, nil
	default:
		return 0, fmt.Errorf("campaign: unknown pair scope %q", scope)
	}
}

// FaultList enumerates the fault population for one cell geometry.
// Class names match cmd/faultsim: SAF, TF, CFst, CFid, CFin, AF,
// Linked.
func FaultList(classes []string, scope faults.PairScope, words, width int) ([]faults.Fault, error) {
	var out []faults.Fault
	for _, c := range classes {
		switch c {
		case "SAF":
			out = append(out, faults.EnumerateStuckAt(words, width)...)
		case "TF":
			out = append(out, faults.EnumerateTransition(words, width)...)
		case "CFst":
			out = append(out, faults.EnumerateCFst(words, width, scope)...)
		case "CFid":
			out = append(out, faults.EnumerateCFid(words, width, scope)...)
		case "CFin":
			out = append(out, faults.EnumerateCFin(words, width, scope)...)
		case "AF":
			out = append(out, faults.EnumerateAddrFaults(words)...)
		case "Linked":
			out = append(out, faults.EnumerateLinkedCFid(words, width)...)
		case "":
		default:
			return nil, fmt.Errorf("campaign: unknown fault class %q", c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty fault list")
	}
	return out, nil
}
