package campaign

import "sync"

// Sink receives completed cell results as the engine's workers finish
// them — the event stream a campaign run emits. Results arrive in
// completion order (not grid order) but exactly once per cell, and the
// engine serializes Emit calls, so a Sink needs no locking of its own
// against the worker pool. cmd/twmd plugs its NDJSON event hub and the
// durable job journal in here; cmd/faultsim plugs a progress printer.
type Sink interface {
	Emit(CellResult)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(CellResult)

// Emit calls f(r).
func (f SinkFunc) Emit(r CellResult) { f(r) }

// Aggregator folds cell results incrementally: Add accepts results in
// any order (workers emit in completion order) and Snapshot returns
// the aggregate folded so far. Because every fold operation is
// commutative — min/max bounds, integer tallies, map merges — the
// final aggregate is byte-identical to a batch fold in grid order, for
// any arrival order. All methods are safe for concurrent use, so a
// server can snapshot a live partial aggregate while the engine is
// still adding results.
//
// An Aggregator pre-seeded with journaled results (Add before handing
// it to Engine.Stream) makes the engine skip those cells — the
// recovery path of a durable job server.
type Aggregator struct {
	mu     sync.Mutex
	spec   Spec
	slots  []CellResult
	filled []bool
	added  int

	coverage   map[string]map[string]ClassCount
	ops        map[string]OpStats
	yield      map[string]*YieldStats
	yieldTotal *YieldStats
	faults     int
	detected   int
	errors     int
}

// NewAggregator returns an empty aggregator for the spec. The spec is
// normalized, matching what Engine runs and what Aggregate.Spec
// documents.
func NewAggregator(spec Spec) *Aggregator {
	return &Aggregator{
		spec:     spec.Normalized(),
		coverage: make(map[string]map[string]ClassCount),
		ops:      make(map[string]OpStats),
	}
}

// Add folds one result in, slotted by its cell index. A negative index
// or a cell index already folded is ignored, so replaying a journal
// with duplicates cannot double-count.
func (g *Aggregator) Add(r CellResult) {
	g.mu.Lock()
	g.addAt(r.Index, r)
	g.mu.Unlock()
}

// Emit makes the aggregator itself a Sink.
func (g *Aggregator) Emit(r CellResult) { g.Add(r) }

// addAt slots r at index i and folds it. Callers hold g.mu.
func (g *Aggregator) addAt(i int, r CellResult) {
	if i < 0 || g.has(i) {
		return
	}
	if i >= len(g.slots) {
		// Grow with doubling so ascending-order folds (single worker,
		// WAL replay, batch NewAggregate) stay amortized linear.
		n := 2 * len(g.slots)
		if n < i+1 {
			n = i + 1
		}
		slots := make([]CellResult, n)
		copy(slots, g.slots)
		g.slots = slots
		filled := make([]bool, n)
		copy(filled, g.filled)
		g.filled = filled
	}
	g.slots[i] = r
	g.filled[i] = true
	g.added++
	g.fold(r)
}

// fold accumulates one result into the running totals. The operations
// are all commutative, which is what makes the incremental aggregate
// independent of arrival order.
func (g *Aggregator) fold(r CellResult) {
	if r.Err != "" {
		g.errors++
		return
	}
	g.faults += r.Faults
	g.detected += r.Detected
	m := g.coverage[r.Scheme]
	if m == nil {
		m = make(map[string]ClassCount)
		g.coverage[r.Scheme] = m
	}
	for cls, c := range r.ByClass {
		t := m[cls]
		t.Total += c.Total
		t.Detected += c.Detected
		m[cls] = t
	}
	os := g.ops[r.Scheme]
	os.add(r)
	g.ops[r.Scheme] = os
	if r.Yield != nil {
		if g.yield == nil {
			g.yield = make(map[string]*YieldStats)
			g.yieldTotal = &YieldStats{}
		}
		ys := g.yield[r.Scheme]
		if ys == nil {
			ys = &YieldStats{}
			g.yield[r.Scheme] = ys
		}
		ys.merge(r.Yield)
		g.yieldTotal.merge(r.Yield)
	}
}

// Has reports whether the cell at index i has been folded in.
func (g *Aggregator) Has(i int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.has(i)
}

func (g *Aggregator) has(i int) bool {
	return i >= 0 && i < len(g.filled) && g.filled[i]
}

// Added returns the number of cells folded so far.
func (g *Aggregator) Added() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.added
}

// Stats is the cheap live view of an aggregator — the headline
// counters without the deep copy Snapshot makes. cmd/twmd serves these
// on the status endpoint while a grid is still running.
type Stats struct {
	// Cells counts the results folded so far.
	Cells int
	// Faults, Detected and Errors mirror the Aggregate fields.
	Faults   int
	Detected int
	Errors   int
}

// CoverageFraction returns the detected fraction over the cells folded
// so far (1 while nothing has landed).
func (s Stats) CoverageFraction() float64 {
	if s.Faults == 0 {
		return 1
	}
	return float64(s.Detected) / float64(s.Faults)
}

// Stats returns the running counters.
func (g *Aggregator) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{Cells: g.added, Faults: g.faults, Detected: g.detected, Errors: g.errors}
}

// Snapshot returns the aggregate folded so far. The copy is deep in
// everything the aggregator keeps mutating, so a snapshot taken
// mid-run stays consistent while results continue to land; Cells holds
// the completed results in grid order (nil while none have landed).
// Once every cell of the grid has been added, Snapshot is the final
// aggregate — byte-identical, in canonical form, to a batch
// NewAggregate over the same results.
func (g *Aggregator) Snapshot() *Aggregate {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := &Aggregate{
		Spec:     g.spec,
		Coverage: make(map[string]map[string]ClassCount, len(g.coverage)),
		Ops:      make(map[string]OpStats, len(g.ops)),
		Faults:   g.faults,
		Detected: g.detected,
		Errors:   g.errors,
	}
	for s, m := range g.coverage {
		mm := make(map[string]ClassCount, len(m))
		for cls, c := range m {
			mm[cls] = c
		}
		a.Coverage[s] = mm
	}
	for s, o := range g.ops {
		a.Ops[s] = o
	}
	if g.yield != nil {
		a.Yield = make(map[string]*YieldStats, len(g.yield))
		for s, y := range g.yield {
			a.Yield[s] = y.clone()
		}
		a.YieldTotal = g.yieldTotal.clone()
	}
	if g.added > 0 {
		a.Cells = make([]CellResult, 0, g.added)
		for i, ok := range g.filled {
			if ok {
				a.Cells = append(a.Cells, g.slots[i])
			}
		}
	}
	return a
}

// clone returns a deep copy of the stats.
func (y *YieldStats) clone() *YieldStats {
	c := *y
	if y.ByDiagClass != nil {
		c.ByDiagClass = make(map[string]int, len(y.ByDiagClass))
		for cls, n := range y.ByDiagClass {
			c.ByDiagClass[cls] = n
		}
	}
	return &c
}
