package campaign

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"twmarch/internal/complexity"
	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/faultsim"
	"twmarch/internal/march"
	"twmarch/internal/tracing"
)

// CellResult is the outcome of simulating one grid cell. Failures are
// recorded in Err rather than aborting the campaign, so the aggregate
// stays a total function of the spec.
type CellResult struct {
	Cell
	// Faults and Detected count the cell's fault population and how
	// many the generated test caught.
	Faults   int `json:"faults"`
	Detected int `json:"detected"`
	// ByClass breaks detection down per fault class.
	ByClass map[string]ClassCount `json:"by_class,omitempty"`
	// TCM and TCP are the generated test and prediction lengths in
	// operations per address (the paper's units of N).
	TCM int `json:"tcm"`
	TCP int `json:"tcp"`
	// ClosedTCM and ClosedTCP are the paper's closed-form lengths for
	// the cell's scheme, for reconciliation against the measured ones.
	ClosedTCM int `json:"closed_tcm"`
	ClosedTCP int `json:"closed_tcp"`
	// DurationNS is wall-clock simulation time; it is zeroed by
	// Aggregate.Canonical so determinism checks ignore it.
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Yield holds the diagnosis-and-repair pipeline outcome; nil when
	// the spec's pipeline stage is disabled.
	Yield *YieldStats `json:"yield,omitempty"`
	// Err records a per-cell failure.
	Err string `json:"error,omitempty"`
}

// ClassCount is a per-class detection tally.
type ClassCount struct {
	Total    int `json:"total"`
	Detected int `json:"detected"`
}

// Coverage returns the detected fraction (1 for an empty class).
func (c ClassCount) Coverage() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.Total)
}

// Shard splits the cell list into batches of at most batch cells,
// preserving grid order. batch ≤ 0 panics; Engine picks a default
// before calling.
func Shard(cells []Cell, batch int) [][]Cell {
	if batch <= 0 {
		panic(fmt.Sprintf("campaign: shard batch %d", batch))
	}
	var out [][]Cell
	for len(cells) > batch {
		out = append(out, cells[:batch])
		cells = cells[batch:]
	}
	if len(cells) > 0 {
		out = append(out, cells)
	}
	return out
}

// RunCell simulates one grid cell: it generates the cell's test with
// the selected scheme, enumerates the spec's fault population at the
// cell geometry, runs the fault-injection campaign and records
// detection counts plus op-count accounting. The result depends only
// on (spec, cell) — never on which worker ran it or when.
func RunCell(spec Spec, c Cell) CellResult {
	return runCell(context.Background(), spec.Normalized(), c, nil)
}

// Simulator runs single grid cells outside the engine — the worker
// side of cluster dispatch. Like one Engine.Stream run, it shares a
// single fault enumeration per memory geometry across calls (and the
// reference fast path per cell), so a worker leasing many cells of the
// same campaign pays enumeration once per geometry. The cache is keyed
// by geometry alone: a Simulator is therefore tied to one spec's fault
// population — use a fresh Simulator per campaign, never across specs
// with different Classes or Scope. Safe for concurrent use.
type Simulator struct {
	cache faultCache
}

// NewSimulator returns an empty simulator.
func NewSimulator() *Simulator { return &Simulator{} }

// RunCell simulates one cell of the spec's grid, observing ctx between
// fault batches. The result is the same pure function of (spec, cell)
// the engine computes: identical bytes wherever the cell runs.
func (s *Simulator) RunCell(ctx context.Context, spec Spec, c Cell) CellResult {
	return runCell(ctx, spec.Normalized(), c, &s.cache)
}

// runCell expects a normalized spec. A non-nil cache shares one fault
// enumeration per memory geometry across the campaign's cells; ctx
// cancellation is observed between fault batches, not just between
// cells, so oversized cells cannot pin a canceled campaign. It is the
// single convergence point for engine and worker execution, so the
// per-cell tracing span — index, test, scheme, fault counts — is
// emitted here for both.
func runCell(ctx context.Context, spec Spec, c Cell, cache *faultCache) CellResult {
	start := time.Now()
	ctx, span := tracing.Start(ctx, "campaign.cell", tracing.KindInternal)
	span.SetAttr("cell", strconv.Itoa(c.Index))
	span.SetAttr("test", c.Test)
	span.SetAttr("scheme", c.Scheme)
	res := simulateCell(ctx, spec, c, cache)
	res.DurationNS = time.Since(start).Nanoseconds()
	span.SetAttr("faults", strconv.Itoa(res.Faults))
	span.SetAttr("detected", strconv.Itoa(res.Detected))
	if res.Err != "" {
		span.SetStatus(tracing.StatusError)
	}
	span.Finish()
	metCells.Inc()
	if res.Err != "" {
		metCellErrors.Inc()
	}
	metCellDur.Observe(time.Duration(res.DurationNS).Seconds())
	return res
}

// faultCache memoizes fault enumerations by memory geometry: every
// test/scheme/mode cell at the same (words, width) shares one list.
// Fault values are stateless (injection state lives in the wrapped
// memory), so a list is safe to share across workers. A nil cache
// enumerates on every call.
type faultCache struct {
	mu    sync.Mutex
	lists map[[2]int][]faults.Fault
}

// maxCachedLists bounds the cache: a grid spanning many geometries
// would otherwise retain every enumeration for the whole run.
const maxCachedLists = 64

func (fc *faultCache) faults(spec Spec, words, width int) ([]faults.Fault, error) {
	scope, err := PairScope(spec.Scope)
	if err != nil {
		return nil, err
	}
	if fc == nil {
		metCacheMisses.Inc()
		return FaultList(spec.Classes, scope, words, width)
	}
	key := [2]int{words, width}
	fc.mu.Lock()
	list, ok := fc.lists[key]
	fc.mu.Unlock()
	if ok {
		metCacheHits.Inc()
		return list, nil
	}
	metCacheMisses.Inc()
	// Enumerate outside the lock; concurrent workers may duplicate the
	// work for the same geometry, but the result is identical.
	list, err = FaultList(spec.Classes, scope, words, width)
	if err != nil {
		return nil, err
	}
	fc.mu.Lock()
	if fc.lists == nil {
		fc.lists = make(map[[2]int][]faults.Fault)
	}
	if len(fc.lists) < maxCachedLists {
		fc.lists[key] = list
	}
	fc.mu.Unlock()
	return list, nil
}

func simulateCell(ctx context.Context, spec Spec, c Cell, cache *faultCache) CellResult {
	res := CellResult{Cell: c}
	bm, err := march.Lookup(c.Test)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	var test *march.Test
	var sch complexity.Scheme
	switch c.Scheme {
	case SchemeTWM:
		r, err := core.TWMTA(bm, c.Width)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		test, res.TCM, res.TCP, sch = r.TWMarch, r.TCM(), r.TCP(), complexity.Proposed
	case SchemeOne:
		r, err := core.Scheme1(bm, c.Width)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		test, res.TCM, res.TCP, sch = r.Test, r.TCM(), r.TCP(), complexity.Scheme1
	default:
		res.Err = fmt.Sprintf("campaign: unknown scheme %q", c.Scheme)
		return res
	}
	if cost, err := complexity.ClosedFormFor(sch, bm, c.Width); err == nil {
		res.ClosedTCM, res.ClosedTCP = cost.TCM, cost.TCP
	}

	list, err := cache.faults(spec, c.Words, c.Width)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	mode := faultsim.DirectCompare
	if c.Mode == ModeSignature {
		mode = faultsim.Signature
	}
	cfg := faultsim.Campaign{
		Test:    test,
		Words:   c.Words,
		Width:   c.Width,
		Mode:    mode,
		Seed:    c.Seed,
		Naive:   spec.Naive,
		NoLanes: spec.NoLanes,
	}
	res.ByClass = make(map[string]ClassCount)
	if spec.Pipeline.On() {
		// Pipeline-enabled cells take the per-fault path: detection
		// verdicts are identical to the batched loop below, plus the
		// diagnosis/repair/ECC outcome in res.Yield.
		simulatePipeline(ctx, spec, c, cfg, list, &res)
		return res
	}
	// One fault-free reference per cell, shared across the cell's
	// whole fault population, riding the bit-parallel lane path unless
	// spec.NoLanes pins the scalar replay; spec.Naive falls back to
	// the one-shot per-fault loop (identical tallies, only slower).
	runBatch := func(batch []faults.Fault) (*faultsim.Report, error) {
		return faultsim.Run(cfg, batch)
	}
	if !spec.Naive {
		ref, err := faultsim.NewReference(cfg)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		if spec.NoLanes {
			runBatch = ref.Run
		} else {
			runBatch = ref.RunLanes
		}
	}
	// Simulate in batches so cancellation has bounded latency even for
	// a cell with millions of faults. Faults are independent, so the
	// merged tallies are identical to one faultsim.Run over the whole
	// list.
	const cancelBatch = 2048
	for lo := 0; lo < len(list); lo += cancelBatch {
		if err := ctx.Err(); err != nil {
			res.Err = err.Error()
			return res
		}
		hi := lo + cancelBatch
		if hi > len(list) {
			hi = len(list)
		}
		rep, err := runBatch(list[lo:hi])
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Faults += rep.Total
		res.Detected += rep.Detected
		for cls, s := range rep.ByClass {
			cc := res.ByClass[cls]
			cc.Total += s.Total
			cc.Detected += s.Detected
			res.ByClass[cls] = cc
		}
	}
	return res
}
