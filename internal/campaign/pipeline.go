package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"twmarch/internal/diagnose"
	"twmarch/internal/ecc"
	"twmarch/internal/faults"
	"twmarch/internal/faultsim"
	"twmarch/internal/repair"
	"twmarch/internal/word"
)

// Pipeline limits enforced by Spec.Validate. Like the grid limits,
// they bound what a network-submitted spec can ask of the engine.
const (
	// MaxSpares bounds the spare rows and spare columns a pipeline may
	// configure per memory: repair allocation walks every (spare ×
	// suspect) combination, so an absurd budget must be rejected up
	// front.
	MaxSpares = 64
	// MaxSyndromeCap bounds PipelineSpec.MaxSyndrome: the diagnostic
	// mismatch log is retained in memory for every analyzed fault, so
	// the per-run cap itself must be capped.
	MaxSyndromeCap = 1 << 16
	// DefaultMaxSyndrome is the diagnostic-log cap applied when the
	// pipeline block leaves MaxSyndrome zero. It is large enough to
	// localize multi-cell defects on the grid geometries the engine
	// accepts while keeping a single run's log bounded.
	DefaultMaxSyndrome = 4096
)

// ECC model names accepted in PipelineSpec.ECC.
const (
	// ECCNone disables field-ECC modeling (the default).
	ECCNone = "none"
	// ECCSEC models a per-word Hamming single-error-correcting code.
	ECCSEC = "sec"
	// ECCSECDED models a per-word extended Hamming code: single errors
	// corrected, double errors detected.
	ECCSECDED = "secded"
)

// PipelineSpec is the "pipeline" block of a campaign spec: it enables
// the diagnosis-and-repair stage that runs downstream of detection.
// For every fault the stage collects the comparator-view mismatch
// syndrome, diagnoses the suspect sites (internal/diagnose), allocates
// spare rows/columns for detected faults (internal/repair), and models
// field ECC for test escapes (internal/ecc). The per-cell outcome
// lands in CellResult.Yield and is folded into the aggregate's yield
// section.
type PipelineSpec struct {
	// Enabled turns the stage on; a nil or disabled block leaves the
	// campaign identical to a plain detection run.
	Enabled bool `json:"enabled"`
	// SpareRows and SpareCols are the redundancy budget per memory:
	// how many spare word lines and bit lines the repair allocator may
	// spend on one faulty cell. Both default to zero (no redundancy,
	// every detected fault is unrepairable).
	SpareRows int `json:"spare_rows,omitempty"`
	SpareCols int `json:"spare_cols,omitempty"`
	// ECC selects the field error-correction model applied to test
	// escapes: "none" (default), "sec", or "secded".
	ECC string `json:"ecc,omitempty"`
	// MaxSyndrome caps the recorded mismatch log per diagnostic run;
	// 0 means DefaultMaxSyndrome. Diagnoses from capped logs are
	// counted in YieldStats.TruncatedSyndromes.
	MaxSyndrome int `json:"max_syndrome,omitempty"`
}

// On reports whether the pipeline stage is configured and enabled.
// It is nil-safe: specs without a pipeline block read as off.
func (p *PipelineSpec) On() bool { return p != nil && p.Enabled }

// maxSyndrome returns the effective diagnostic-log cap.
func (p *PipelineSpec) maxSyndrome() int {
	if p.MaxSyndrome == 0 {
		return DefaultMaxSyndrome
	}
	return p.MaxSyndrome
}

// validate checks the pipeline block against its limits and verifies
// that the selected ECC code exists for every word width in the grid.
// A nil or disabled block is always valid.
func (p *PipelineSpec) validate(widths []int) error {
	if !p.On() {
		return nil
	}
	if p.SpareRows < 0 || p.SpareRows > MaxSpares {
		return fmt.Errorf("campaign: pipeline spare_rows %d out of range [0, %d]", p.SpareRows, MaxSpares)
	}
	if p.SpareCols < 0 || p.SpareCols > MaxSpares {
		return fmt.Errorf("campaign: pipeline spare_cols %d out of range [0, %d]", p.SpareCols, MaxSpares)
	}
	if p.MaxSyndrome < 0 || p.MaxSyndrome > MaxSyndromeCap {
		return fmt.Errorf("campaign: pipeline max_syndrome %d out of range [0, %d]", p.MaxSyndrome, MaxSyndromeCap)
	}
	switch p.ECC {
	case "", ECCNone:
	case ECCSEC, ECCSECDED:
		for _, w := range widths {
			if _, err := ecc.NewHamming(w, p.ECC == ECCSECDED); err != nil {
				return fmt.Errorf("campaign: pipeline ecc %q at width %d: %v", p.ECC, w, err)
			}
		}
	default:
		return fmt.Errorf("campaign: unknown pipeline ecc %q", p.ECC)
	}
	return nil
}

// codec builds the cell's field-ECC codec, or nil when ECC modeling is
// off.
func (p *PipelineSpec) codec(width int) (*ecc.Hamming, error) {
	switch p.ECC {
	case "", ECCNone:
		return nil, nil
	case ECCSEC, ECCSECDED:
		return ecc.NewHamming(width, p.ECC == ECCSECDED)
	default:
		return nil, fmt.Errorf("campaign: unknown pipeline ecc %q", p.ECC)
	}
}

// YieldStats is the folded outcome of the diagnosis-and-repair
// pipeline over a set of faults — one cell's, one scheme's, or the
// whole grid's. All fields are integer tallies so folding is exact and
// deterministic; the derived rates are emitted alongside them in JSON.
//
// Invariants: Detected + Escapes == Analyzed, Repairable +
// Unrepairable + NoSyndrome == Detected, and the ByDiagClass counts
// sum to Detected - NoSyndrome.
type YieldStats struct {
	// Analyzed counts the faults run through the pipeline.
	Analyzed int `json:"analyzed"`
	// Detected counts faults the cell's detection mode flagged;
	// Escapes counts those it missed (they ship to the field).
	Detected int `json:"detected"`
	Escapes  int `json:"escapes"`
	// ByDiagClass histograms the diagnosed fault families (the
	// diagnose.Class labels) over the detected faults.
	ByDiagClass map[string]int `json:"by_diag_class,omitempty"`
	// NoSyndrome counts detected faults whose comparator-view log was
	// empty (a signature-mode anomaly); diagnosis is short-circuited
	// for them.
	NoSyndrome int `json:"no_syndrome,omitempty"`
	// Repairable counts detected faults whose suspect sites fit the
	// spare budget; Unrepairable counts those that exhaust it (yield
	// loss: the part is discarded).
	Repairable   int `json:"repairable"`
	Unrepairable int `json:"unrepairable"`
	// SpareRowsUsed and SpareColsUsed total the spares committed
	// across the repairable plans. An unrepairable allocation is
	// rolled back — the part is discarded, not partially repaired —
	// so its assignment contributes nothing here.
	SpareRowsUsed int `json:"spare_rows_used"`
	SpareColsUsed int `json:"spare_cols_used"`
	// ECCCorrected counts escapes the field ECC corrects (at most one
	// corrupted bit per word — escape-free in the field); ECCDetected
	// counts escapes a SEC-DED code at least flags (two bits in one
	// word). The remaining escapes corrupt data silently.
	ECCCorrected int `json:"ecc_corrected"`
	ECCDetected  int `json:"ecc_detected"`
	// TruncatedSyndromes counts diagnostic runs whose mismatch log hit
	// the MaxSyndrome cap, making their diagnosis potentially partial.
	TruncatedSyndromes int `json:"truncated_syndromes,omitempty"`
}

// RepairabilityRate returns the fraction of detected faults the spare
// budget repairs (1 when nothing was detected).
func (y *YieldStats) RepairabilityRate() float64 {
	if y.Detected == 0 {
		return 1
	}
	return float64(y.Repairable) / float64(y.Detected)
}

// EscapeRate returns the fraction of analyzed faults the test missed
// (0 for an empty population).
func (y *YieldStats) EscapeRate() float64 {
	if y.Analyzed == 0 {
		return 0
	}
	return float64(y.Escapes) / float64(y.Analyzed)
}

// PostECCEscapeRate returns the escape rate after field ECC: escaped
// faults the per-word code corrects no longer corrupt data, so only
// the uncorrected escapes count.
func (y *YieldStats) PostECCEscapeRate() float64 {
	if y.Analyzed == 0 {
		return 0
	}
	return float64(y.Escapes-y.ECCCorrected) / float64(y.Analyzed)
}

// SpareUtilization returns the fraction of the offered spare budget
// the committed repairs actually spent: spares used over (repairable
// plans × per-memory budget). Unrepairable parts are discarded with
// their allocations rolled back, so they count in neither numerator
// nor denominator. 0 when nothing was repaired or no spares were
// offered.
func (y *YieldStats) SpareUtilization(spareRows, spareCols int) float64 {
	budget := spareRows + spareCols
	if y.Repairable == 0 || budget <= 0 {
		return 0
	}
	return float64(y.SpareRowsUsed+y.SpareColsUsed) / float64(y.Repairable*budget)
}

// merge folds o into y.
func (y *YieldStats) merge(o *YieldStats) {
	y.Analyzed += o.Analyzed
	y.Detected += o.Detected
	y.Escapes += o.Escapes
	y.NoSyndrome += o.NoSyndrome
	y.Repairable += o.Repairable
	y.Unrepairable += o.Unrepairable
	y.SpareRowsUsed += o.SpareRowsUsed
	y.SpareColsUsed += o.SpareColsUsed
	y.ECCCorrected += o.ECCCorrected
	y.ECCDetected += o.ECCDetected
	y.TruncatedSyndromes += o.TruncatedSyndromes
	for cls, n := range o.ByDiagClass {
		if y.ByDiagClass == nil {
			y.ByDiagClass = make(map[string]int)
		}
		y.ByDiagClass[cls] += n
	}
}

// MarshalJSON emits the integer tallies together with the derived
// rates, so aggregate consumers (cmd/twmd clients, scripts) get the
// headline yield numbers without recomputing them. The output is a
// pure function of the tallies — safe for the canonical encoding.
func (y *YieldStats) MarshalJSON() ([]byte, error) {
	type alias YieldStats
	return json.Marshal(struct {
		*alias
		RepairabilityRate float64 `json:"repairability_rate"`
		EscapeRate        float64 `json:"escape_rate"`
		PostECCEscapeRate float64 `json:"post_ecc_escape_rate"`
	}{(*alias)(y), y.RepairabilityRate(), y.EscapeRate(), y.PostECCEscapeRate()})
}

// simulatePipeline is the per-fault campaign loop with the pipeline
// stage enabled. It replaces the batched detection loop of
// simulateCell: every fault is detected individually, diagnosed from
// its comparator-view syndrome, fed to the repair allocator when
// detected, and classified against the field-ECC model when it
// escaped. Results are a pure function of (spec, cell, fault list) —
// diagnosis, allocation and ECC classification are all deterministic —
// so the byte-identical aggregate guarantee holds unchanged.
func simulatePipeline(ctx context.Context, spec Spec, c Cell, cfg faultsim.Campaign, list []faults.Fault, res *CellResult) {
	p := spec.Pipeline
	y := &YieldStats{ByDiagClass: make(map[string]int)}
	codec, err := p.codec(c.Width)
	if err != nil {
		res.Err = err.Error()
		return
	}
	maxSyn := p.maxSyndrome()
	// Signature-mode detection goes through the campaign's detector —
	// the cell's shared reference unless the spec forces the naive
	// path (cfg.Naive carries spec.Naive); the diagnostic Syndrome
	// re-run below stays a full comparator-view execution either way.
	// Compare-mode cells take detection from the Syndrome result and
	// never call detect.
	var detect func(f faults.Fault) (bool, error)
	if c.Mode == ModeSignature {
		detect, err = cfg.Detector()
		if err != nil {
			res.Err = err.Error()
			return
		}
	}
	for i, f := range list {
		// The per-fault loop observes cancellation with the same
		// bounded latency as the batched path.
		if i%512 == 0 && ctx.Err() != nil {
			res.Err = ctx.Err().Error()
			return
		}
		var det bool
		var syn *diagnose.Report
		truncated := false
		if c.Mode == ModeSignature {
			// Signature detection first; the diagnostic re-run (a real
			// BIST would switch the comparator on and replay) happens
			// only for flagged faults.
			det, err = detect(f)
			if err != nil {
				res.Err = err.Error()
				return
			}
			if det {
				r, err := faultsim.Syndrome(cfg, f, maxSyn)
				if err != nil {
					res.Err = err.Error()
					return
				}
				syn = diagnose.Analyze(r, c.Width)
				truncated = r.MismatchCount > len(r.Mismatches)
			}
		} else {
			r, err := faultsim.Syndrome(cfg, f, maxSyn)
			if err != nil {
				res.Err = err.Error()
				return
			}
			det = r.Detected()
			if det {
				syn = diagnose.Analyze(r, c.Width)
				truncated = r.MismatchCount > len(r.Mismatches)
			}
		}

		res.Faults++
		cc := res.ByClass[f.Class()]
		cc.Total++
		y.Analyzed++
		if !det {
			res.ByClass[f.Class()] = cc
			y.Escapes++
			if codec != nil {
				switch eccOutcome(codec, f) {
				case ecc.Corrected:
					y.ECCCorrected++
				case ecc.DoubleError:
					y.ECCDetected++
				}
			}
			continue
		}
		res.Detected++
		cc.Detected++
		res.ByClass[f.Class()] = cc
		y.Detected++
		if truncated {
			y.TruncatedSyndromes++
		}
		// An empty mismatch log carries no localization information:
		// short-circuit diagnosis and repair rather than feeding the
		// allocator a vacuous site list.
		if syn == nil || syn.Class == diagnose.NoFault {
			y.NoSyndrome++
			continue
		}
		y.ByDiagClass[syn.Class.String()]++
		plan, err := repair.Allocate(syn.Sites, p.SpareRows, p.SpareCols)
		if err != nil {
			res.Err = err.Error()
			return
		}
		if plan.Repairable {
			y.Repairable++
			y.SpareRowsUsed += len(plan.Assignment.Rows)
			y.SpareColsUsed += len(plan.Assignment.Cols)
		} else {
			y.Unrepairable++
		}
	}
	if len(y.ByDiagClass) == 0 {
		y.ByDiagClass = nil
	}
	res.Yield = y
}

// eccOutcome classifies what a per-word ECC does with a test escape in
// the field, from the fault's ground-truth victim footprint:
//
//   - at most one corruptible bit per word: the code corrects every
//     failure the fault can cause (verified against the actual codec,
//     not assumed) — ecc.Corrected;
//   - exactly two bits in some word under SEC-DED: the code flags the
//     corruption but cannot fix it — ecc.DoubleError;
//   - anything else, including address-decoder faults (which return a
//     valid codeword from the wrong address and are invisible to any
//     per-word code) — ecc.Uncorrectable.
func eccOutcome(codec *ecc.Hamming, f faults.Fault) ecc.Status {
	sites, ok := faults.VictimSites(f)
	if !ok {
		return ecc.Uncorrectable
	}
	perWord := make(map[int]map[int]bool)
	worst := 0
	for _, s := range sites {
		bits := perWord[s.Addr]
		if bits == nil {
			bits = make(map[int]bool)
			perWord[s.Addr] = bits
		}
		bits[s.Bit] = true
		if len(bits) > worst {
			worst = len(bits)
		}
	}
	switch {
	case worst <= 1:
		// Confirm correctability on the real codec: flip the victim's
		// stored data bit in a codeword and require Decode to fix it.
		for _, s := range sites {
			if s.Bit >= codec.DataWidth() {
				return ecc.Uncorrectable
			}
			stored := codec.DataBitPositions()[s.Bit]
			_, _, status, fixed := codec.Decode(codec.Encode(word.Zero).FlipBit(stored))
			if status != ecc.Corrected || fixed != stored {
				return ecc.Uncorrectable
			}
		}
		return ecc.Corrected
	case worst == 2 && codec.Extended():
		return ecc.DoubleError
	default:
		return ecc.Uncorrectable
	}
}
