package campaign

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzAggregatorIncremental fuzzes the incremental fold against the
// batch fold: for a randomized small grid (base seed from the fuzzer)
// and a fuzzer-chosen permutation of completion order, the Aggregator
// must produce a canonical aggregate byte-identical to NewAggregate
// over the grid-ordered slice. This is the property the streaming
// engine rests on — every fold operation commutes.
func FuzzAggregatorIncremental(f *testing.F) {
	f.Add(int64(1), int64(2), false)
	f.Add(int64(42), int64(7), true)
	f.Add(int64(-9), int64(0), false)
	f.Fuzz(func(t *testing.T, specSeed, permSeed int64, pipeline bool) {
		spec := Spec{
			Name:    "fuzz",
			Tests:   []string{"MATS", "MATS+"},
			Widths:  []int{2},
			Words:   []int{2, 3},
			Classes: []string{"SAF", "TF"},
			Seed:    specSeed,
		}
		if pipeline {
			spec.Tests = spec.Tests[:1]
			spec.Pipeline = &PipelineSpec{Enabled: true, SpareRows: 1, SpareCols: 1, ECC: ECCSEC}
		}
		results := simulateAll(t, spec)
		want, err := NewAggregate(spec.Normalized(), results).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		g := NewAggregator(spec)
		for _, i := range rand.New(rand.NewSource(permSeed)).Perm(len(results)) {
			g.Add(results[i])
		}
		got, err := g.Snapshot().Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("incremental fold diverges from batch (specSeed %d permSeed %d):\nbatch:\n%s\nincremental:\n%s",
				specSeed, permSeed, want, got)
		}
	})
}
