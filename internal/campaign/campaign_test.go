package campaign

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"
)

// gridSpec is a ≥100-cell grid small enough to simulate quickly:
// 7 tests × 2 widths × 2 sizes × 2 schemes × 2 modes = 112 cells.
func gridSpec() Spec {
	return Spec{
		Name:    "grid",
		Tests:   []string{"MATS", "MATS+", "MATS++", "March X", "March Y", "March C-", "March U"},
		Widths:  []int{2, 4},
		Words:   []int{2, 3},
		Modes:   []string{ModeCompare, ModeSignature},
		Classes: []string{"SAF", "TF"},
		Seed:    42,
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Tests: []string{"March C-"}},
		{Tests: []string{"March C-"}, Widths: []int{4}},
		{Tests: []string{"no such test"}, Widths: []int{4}, Words: []int{4}},
		{Tests: []string{"March C-"}, Widths: []int{3}, Words: []int{4}},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{1}},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{4}, Schemes: []string{"bogus"}},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{4}, Modes: []string{"bogus"}},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{4}, Scope: "bogus"},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{4}, Classes: []string{"bogus"}},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{4}, Workers: -1},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{4}, Workers: MaxWorkers + 1},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: []int{MaxWords + 1}},
		{Tests: []string{"March C-"}, Widths: []int{4}, Words: bigWordList(MaxCells/2 + 1)},
		// Coupling classes are quadratic in the bit count; big geometries
		// must be rejected up front.
		{Tests: []string{"March C-"}, Widths: []int{64}, Words: []int{MaxWords}, Classes: []string{"CFid"}},
		// Width 1 has no intra-word pairs: the population would be empty
		// in every cell.
		{Tests: []string{"MATS"}, Widths: []int{1}, Words: []int{4}, Classes: []string{"CFin"}, Scope: "intra"},
		// Duplicate-padded lists whose cell product overflows int must
		// not wrap past the MaxCells check.
		{
			Tests:  dup("MATS", 5000),
			Widths: dupInt(2, 5000),
			Words:  dupInt(2, 5000),
			Modes:  dup(ModeCompare, 5000),
		},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := gridSpec().Validate(); err != nil {
		t.Fatalf("grid spec rejected: %v", err)
	}
}

// bigWordList builds n valid word counts, for grid-limit tests.
func bigWordList(n int) []int { return dupInt(2, n) }

func dup(v string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func dupInt(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestCellsOrderAndSeeds(t *testing.T) {
	spec := gridSpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 112 {
		t.Fatalf("grid expanded to %d cells, want 112", len(cells))
	}
	if n := spec.CellCount(); n != len(cells) {
		t.Fatalf("CellCount %d != expanded %d", n, len(cells))
	}
	seeds := make(map[int64]int)
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d", i, c.Index)
		}
		seeds[c.Seed]++
	}
	if len(seeds) != len(cells) {
		t.Errorf("derived seeds collide: %d distinct for %d cells", len(seeds), len(cells))
	}
	again, err := gridSpec().Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("expansion not deterministic at cell %d: %+v vs %+v", i, cells[i], again[i])
		}
	}
}

func TestShard(t *testing.T) {
	cells := make([]Cell, 10)
	for i := range cells {
		cells[i].Index = i
	}
	shards := Shard(cells, 4)
	if len(shards) != 3 || len(shards[0]) != 4 || len(shards[2]) != 2 {
		t.Fatalf("bad shard shape: %v", shards)
	}
	n := 0
	for _, s := range shards {
		for _, c := range s {
			if c.Index != n {
				t.Fatalf("shard order broken at %d", n)
			}
			n++
		}
	}
}

// TestNaiveMatchesFast pins the engine-level equivalence of the two
// simulation paths: the same grid run with the reference-trace fast
// path and with the naive per-fault escape hatch must fold into
// byte-identical canonical aggregates (Canonical zeroes the Naive knob
// alongside the other scheduling fields). The grid spans both schemes
// and both detection modes.
func TestNaiveMatchesFast(t *testing.T) {
	spec := gridSpec()
	ctx := context.Background()

	fast, err := Engine{}.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	naiveSpec := spec
	naiveSpec.Naive = true
	naive, err := Engine{}.Run(ctx, naiveSpec)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fast.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cn, err := naive.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cf, cn) {
		t.Fatalf("naive aggregate diverges from fast:\nfast:\n%s\nnaive:\n%s", cf, cn)
	}
	if fast.Errors != 0 {
		t.Fatalf("%d cells errored: %s", fast.Errors, cf)
	}
}

// TestNoLanesMatchesLanes pins the third tier of the oracle tower: the
// same grid run over the default bit-parallel lane path and with the
// NoLanes escape hatch (scalar per-fault reference replay) must fold
// into byte-identical canonical aggregates, exactly like the Naive
// knob above.
func TestNoLanesMatchesLanes(t *testing.T) {
	spec := gridSpec()
	ctx := context.Background()

	lanes, err := Engine{}.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	scalarSpec := spec
	scalarSpec.NoLanes = true
	scalar, err := Engine{}.Run(ctx, scalarSpec)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := lanes.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := scalar.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cl, cs) {
		t.Fatalf("no-lanes aggregate diverges from lane path:\nlanes:\n%s\nno-lanes:\n%s", cl, cs)
	}
	if lanes.Errors != 0 {
		t.Fatalf("%d cells errored: %s", lanes.Errors, cl)
	}
}

// TestParallelMatchesSerial is the subsystem's core guarantee: the
// same spec and seed produce byte-identical canonical aggregates with
// workers=1 and workers=GOMAXPROCS. Run under -race it also serves as
// the engine's data-race check.
func TestParallelMatchesSerial(t *testing.T) {
	spec := gridSpec()
	ctx := context.Background()

	serial := spec
	serial.Workers = 1
	aggSerial, err := Engine{}.Run(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := spec
	parallel.Workers = runtime.GOMAXPROCS(0)
	aggParallel, err := Engine{}.Run(ctx, parallel)
	if err != nil {
		t.Fatal(err)
	}

	cs, err := aggSerial.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := aggParallel.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs, cp) {
		t.Fatalf("parallel aggregate diverges from serial:\nserial:\n%s\nparallel:\n%s", cs, cp)
	}
	if aggSerial.Errors != 0 {
		t.Fatalf("%d cells errored: %s", aggSerial.Errors, cs)
	}
	if len(aggSerial.Cells) != 112 {
		t.Fatalf("aggregate has %d cells, want 112", len(aggSerial.Cells))
	}
	if aggSerial.Faults == 0 || aggSerial.Detected == 0 {
		t.Fatalf("empty campaign: %d faults, %d detected", aggSerial.Faults, aggSerial.Detected)
	}
	// The transparent word test must preserve strong coverage on the
	// unlinked intra-word population it was built for.
	if cov := aggSerial.CoverageFraction(); cov < 0.9 {
		t.Errorf("grid coverage %.3f suspiciously low", cov)
	}
}

func TestSignatureMode(t *testing.T) {
	spec := Spec{
		Name:    "sig",
		Tests:   []string{"March C-"},
		Widths:  []int{4},
		Words:   []int{4},
		Schemes: []string{SchemeTWM},
		Modes:   []string{ModeCompare, ModeSignature},
		Classes: []string{"SAF"},
		Seed:    7,
	}
	agg, err := Engine{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 {
		t.Fatalf("signature cells errored: %+v", agg.Cells)
	}
	if len(agg.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(agg.Cells))
	}
	for _, c := range agg.Cells {
		if c.Detected == 0 {
			t.Errorf("mode %s detected nothing", c.Mode)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Engine{}.Run(ctx, gridSpec())
	if err != context.Canceled {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
}

func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	prog := &Progress{}
	done := make(chan error, 1)
	go func() {
		_, err := Engine{}.RunProgress(ctx, gridSpec(), prog)
		done <- err
	}()
	// Let at least one cell finish, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for prog.Done() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not stop after cancel")
	}
}

func TestCellErrorDoesNotAbort(t *testing.T) {
	// Hand-build cells with one poisoned entry; the aggregate must
	// carry the error and keep the good cells.
	spec := Spec{Tests: []string{"MATS"}, Widths: []int{2}, Words: []int{2}, Classes: []string{"SAF"}}.Normalized()
	good := RunCell(spec, Cell{Index: 0, Test: "MATS", Width: 2, Words: 2, Scheme: SchemeTWM, Mode: ModeCompare, Seed: 1})
	bad := RunCell(spec, Cell{Index: 1, Test: "no such test", Width: 2, Words: 2, Scheme: SchemeTWM, Mode: ModeCompare, Seed: 2})
	if good.Err != "" {
		t.Fatalf("good cell errored: %s", good.Err)
	}
	if bad.Err == "" {
		t.Fatal("poisoned cell did not record an error")
	}
	agg := NewAggregate(spec, []CellResult{good, bad})
	if agg.Errors != 1 {
		t.Fatalf("aggregate counts %d errors, want 1", agg.Errors)
	}
	if agg.Faults != good.Faults {
		t.Fatalf("aggregate faults %d, want %d", agg.Faults, good.Faults)
	}
}

func TestRenderAndProgress(t *testing.T) {
	spec := Spec{
		Tests:   []string{"MATS++"},
		Widths:  []int{4},
		Words:   []int{3},
		Classes: []string{"SAF", "TF"},
	}
	prog := &Progress{}
	agg, err := Engine{}.RunProgress(context.Background(), spec, prog)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Done() != prog.Total() || prog.Fraction() != 1 {
		t.Fatalf("progress not complete: %d/%d", prog.Done(), prog.Total())
	}
	out := agg.Render()
	for _, want := range []string{"campaign", "TOTAL", "op counts", SchemeTWM, SchemeOne} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
