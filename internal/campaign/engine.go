package campaign

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"twmarch/internal/tracing"
)

// Progress exposes a campaign's completion counters and run timestamps
// for polling while the engine runs. All methods are safe for
// concurrent use. A Progress tracks one run; do not reuse it across
// runs.
type Progress struct {
	total atomic.Int64
	done  atomic.Int64
	// base is the done count at run start: cells recovered from a
	// journal count toward Done but took no wall-clock time, so rate
	// and ETA are computed over the cells simulated this run.
	base    atomic.Int64
	startNS atomic.Int64
	endNS   atomic.Int64
}

// Total returns the number of grid cells in the running campaign.
func (p *Progress) Total() int64 { return p.total.Load() }

// Done returns the number of cells completed so far, including cells
// recovered from a journal rather than simulated this run.
func (p *Progress) Done() int64 { return p.done.Load() }

// Fraction returns completion in [0, 1] (1 when the grid is empty).
func (p *Progress) Fraction() float64 {
	t := p.Total()
	if t == 0 {
		return 1
	}
	return float64(p.Done()) / float64(t)
}

// start stamps the run's start time once and records the done baseline
// for rate accounting.
func (p *Progress) start() {
	if p.startNS.CompareAndSwap(0, time.Now().UnixNano()) {
		p.base.Store(p.done.Load())
	}
}

// finish stamps the run's end time once, freezing Elapsed and Rate.
func (p *Progress) finish() {
	p.endNS.CompareAndSwap(0, time.Now().UnixNano())
}

// Elapsed returns wall-clock time since the run started, frozen at the
// run's end once it finished. Zero before the engine picks the
// campaign up.
func (p *Progress) Elapsed() time.Duration {
	start := p.startNS.Load()
	if start == 0 {
		return 0
	}
	end := p.endNS.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	return time.Duration(end - start)
}

// Rate returns the simulation rate in cells per second over this run
// (journal-recovered cells excluded). Zero until the run has both
// started and completed at least one cell.
func (p *Progress) Rate() float64 {
	el := p.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(p.done.Load()-p.base.Load()) / el.Seconds()
}

// ETA estimates the remaining wall-clock time from the current rate.
// Zero when unknown (no rate yet) or when the run is complete.
func (p *Progress) ETA() time.Duration {
	if p.endNS.Load() != 0 {
		return 0
	}
	rem := p.total.Load() - p.done.Load()
	if rem <= 0 {
		return 0
	}
	rate := p.Rate()
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(rem) / rate * float64(time.Second))
}

// Begin declares a run driven outside the engine — the cluster
// coordinator dispatching cells to remote workers: total grid cells
// and the number already folded before the run (journal-recovered
// cells, which count toward Done but not the rate). It stamps the
// run's start time; Engine.Stream does the equivalent internally.
func (p *Progress) Begin(total, done int64) {
	p.total.Store(total)
	p.done.Store(done)
	p.start()
}

// Step records one completed cell for an externally driven run.
func (p *Progress) Step() { p.done.Add(1) }

// End freezes the run clock (idempotent), like the engine does when
// Stream returns.
func (p *Progress) End() { p.finish() }

// Engine executes campaign grids over a worker pool. The zero value
// runs with GOMAXPROCS workers and an automatic batch size; Spec
// fields override both.
type Engine struct {
	// Workers bounds pool size when the spec doesn't; 0 means
	// GOMAXPROCS.
	Workers int
	// Batch is the shard size when the spec doesn't set one; 0 picks a
	// size that gives every worker several shards for load balancing.
	Batch int
}

// Run executes the campaign and returns its aggregate. It is
// equivalent to RunProgress with a throwaway Progress.
func (e Engine) Run(ctx context.Context, spec Spec) (*Aggregate, error) {
	return e.RunProgress(ctx, spec, &Progress{})
}

// RunProgress executes the campaign, publishing completion counters
// into prog. It is a thin wrapper over Stream with no sinks and a
// fresh aggregator.
func (e Engine) RunProgress(ctx context.Context, spec Spec, prog *Progress) (*Aggregate, error) {
	return e.Stream(ctx, spec, prog, nil)
}

// Stream executes the campaign event-driven: the grid is expanded in
// deterministic order, sharded into batches, fanned out to the worker
// pool, and every completed CellResult is folded into agg and emitted
// to each sink as it lands — in completion order, serialized, exactly
// once per cell. The returned aggregate is agg's final snapshot, which
// is byte-identical (canonical form) for any worker count or
// completion order because every fold operation commutes.
//
// agg may be nil (a fresh aggregator is created) or pre-seeded with
// journaled results from an interrupted run of the same spec: seeded
// cells are skipped, counted in prog immediately, and not re-emitted
// to the sinks — only the remainder is simulated. Cancellation via ctx
// returns ctx's error; per-cell failures do not abort the run (they
// land in CellResult.Err).
func (e Engine) Stream(ctx context.Context, spec Spec, prog *Progress, agg *Aggregator, sinks ...Sink) (*Aggregate, error) {
	start := time.Now()
	spec = spec.Normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	var span *tracing.Span
	ctx, span = tracing.Start(ctx, "campaign.stream", tracing.KindInternal)
	span.SetAttr("cells", strconv.Itoa(len(cells)))
	defer func() {
		if ctx.Err() != nil {
			span.SetStatus(tracing.StatusCanceled)
		}
		span.Finish()
	}()
	if agg == nil {
		agg = NewAggregator(spec)
	}
	pending := make([]Cell, 0, len(cells))
	for _, c := range cells {
		if !agg.Has(c.Index) {
			pending = append(pending, c)
		}
	}
	prog.total.Store(int64(len(cells)))
	prog.done.Store(int64(len(cells) - len(pending)))
	prog.start()
	defer prog.finish()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pending) == 0 {
		a := agg.Snapshot()
		a.WallClockNS = time.Since(start).Nanoseconds()
		return a, nil
	}

	workers := spec.Workers
	if workers == 0 {
		workers = e.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	batch := spec.Batch
	if batch == 0 {
		batch = e.Batch
	}
	if batch <= 0 {
		// Several shards per worker so a slow cell doesn't strand the
		// pool on one oversized batch.
		batch = len(pending)/(4*workers) + 1
	}
	shards := Shard(pending, batch)

	jobs := make(chan []Cell)
	results := make(chan CellResult, 2*workers)
	cache := &faultCache{}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			metActiveWorkers.Inc()
			defer metActiveWorkers.Dec()
			for shard := range jobs {
				for _, c := range shard {
					if ctx.Err() != nil {
						return
					}
					r := runCell(ctx, spec, c, cache)
					if ctx.Err() != nil {
						// The run was canceled while this cell simulated:
						// its result may be a poisoned partial tally
						// (runCell records ctx.Err() per cell). Stream
						// returns ctx's error anyway, so never fold or
						// emit it — a journal sink must not persist a
						// cancellation artifact as a real cell.
						return
					}
					select {
					case results <- r:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, s := range shards {
			select {
			case jobs <- s:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// The collector is the single event loop: it folds each result and
	// fans it out to the sinks, so sinks observe results one at a time
	// and an aggregator snapshot taken concurrently always includes
	// every result already emitted.
	for r := range results {
		agg.Add(r)
		prog.done.Add(1)
		for _, s := range sinks {
			if s != nil {
				s.Emit(r)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a := agg.Snapshot()
	a.WallClockNS = time.Since(start).Nanoseconds()
	return a, nil
}
