package campaign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress exposes a campaign's completion counters for polling while
// the engine runs. All methods are safe for concurrent use.
type Progress struct {
	total atomic.Int64
	done  atomic.Int64
}

// Total returns the number of grid cells in the running campaign.
func (p *Progress) Total() int64 { return p.total.Load() }

// Done returns the number of cells simulated so far.
func (p *Progress) Done() int64 { return p.done.Load() }

// Fraction returns completion in [0, 1] (1 when the grid is empty).
func (p *Progress) Fraction() float64 {
	t := p.Total()
	if t == 0 {
		return 1
	}
	return float64(p.Done()) / float64(t)
}

// Engine executes campaign grids over a worker pool. The zero value
// runs with GOMAXPROCS workers and an automatic batch size; Spec
// fields override both.
type Engine struct {
	// Workers bounds pool size when the spec doesn't; 0 means
	// GOMAXPROCS.
	Workers int
	// Batch is the shard size when the spec doesn't set one; 0 picks a
	// size that gives every worker several shards for load balancing.
	Batch int
}

// Run executes the campaign and returns its aggregate. It is
// equivalent to RunProgress with a throwaway Progress.
func (e Engine) Run(ctx context.Context, spec Spec) (*Aggregate, error) {
	return e.RunProgress(ctx, spec, &Progress{})
}

// RunProgress executes the campaign, publishing completion counters
// into prog. The grid is expanded in deterministic order, sharded into
// batches, fanned out to the worker pool, and the batched results are
// slotted by cell index — so the aggregate is identical for any worker
// count. Cancellation via ctx returns ctx's error; per-cell failures
// do not abort the run (they land in CellResult.Err).
func (e Engine) RunProgress(ctx context.Context, spec Spec, prog *Progress) (*Aggregate, error) {
	start := time.Now()
	spec = spec.Normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	prog.total.Store(int64(len(cells)))

	workers := spec.Workers
	if workers == 0 {
		workers = e.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) && len(cells) > 0 {
		workers = len(cells)
	}
	batch := spec.Batch
	if batch == 0 {
		batch = e.Batch
	}
	if batch <= 0 {
		// Several shards per worker so a slow cell doesn't strand the
		// pool on one oversized batch.
		batch = len(cells)/(4*workers) + 1
	}
	shards := Shard(cells, batch)

	jobs := make(chan []Cell)
	results := make(chan []CellResult, workers)
	cache := &faultCache{}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range jobs {
				out := make([]CellResult, 0, len(shard))
				for _, c := range shard {
					if ctx.Err() != nil {
						return
					}
					out = append(out, runCell(ctx, spec, c, cache))
					prog.done.Add(1)
				}
				select {
				case results <- out:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, s := range shards {
			select {
			case jobs <- s:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	slots := make([]CellResult, len(cells))
	for batch := range results {
		for _, r := range batch {
			slots[r.Index] = r
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	agg := NewAggregate(spec, slots)
	agg.WallClockNS = time.Since(start).Nanoseconds()
	return agg, nil
}
