package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"twmarch/internal/report"
)

// OpStats accumulates op-count accounting (in operations per address)
// across the cells of one scheme.
type OpStats struct {
	// Cells counts the grid cells folded in.
	Cells int `json:"cells"`
	// MinTotal and MaxTotal bound TCM+TCP over the cells.
	MinTotal int `json:"min_total"`
	MaxTotal int `json:"max_total"`
	// SumTCM and SumTCP total the measured lengths, for mean
	// computation without float drift.
	SumTCM int `json:"sum_tcm"`
	SumTCP int `json:"sum_tcp"`
}

func (o *OpStats) add(r CellResult) {
	total := r.TCM + r.TCP
	if o.Cells == 0 || total < o.MinTotal {
		o.MinTotal = total
	}
	if total > o.MaxTotal {
		o.MaxTotal = total
	}
	o.Cells++
	o.SumTCM += r.TCM
	o.SumTCP += r.TCP
}

// MeanTotal returns the mean TCM+TCP per cell.
func (o OpStats) MeanTotal() float64 {
	if o.Cells == 0 {
		return 0
	}
	return float64(o.SumTCM+o.SumTCP) / float64(o.Cells)
}

// Aggregate is the folded outcome of a campaign: every cell result in
// grid order plus coverage matrices and op-count stats per scheme.
// Everything except the wall-clock fields is a pure function of the
// spec, so Canonical gives a byte-stable fingerprint.
type Aggregate struct {
	// Spec is the normalized spec the campaign ran.
	Spec Spec `json:"spec"`
	// Cells holds one result per grid cell, in grid order.
	Cells []CellResult `json:"cells"`
	// Coverage maps scheme → fault class → detection tally, folded
	// over every cell of that scheme.
	Coverage map[string]map[string]ClassCount `json:"coverage"`
	// Ops maps scheme → op-count stats.
	Ops map[string]OpStats `json:"ops"`
	// Yield maps scheme → folded diagnosis-and-repair pipeline stats;
	// nil when the spec's pipeline stage is disabled.
	Yield map[string]*YieldStats `json:"yield,omitempty"`
	// YieldTotal folds the pipeline stats across the whole grid.
	YieldTotal *YieldStats `json:"yield_total,omitempty"`
	// Faults and Detected total the fault population and detections
	// across the whole grid.
	Faults   int `json:"faults"`
	Detected int `json:"detected"`
	// Errors counts cells that failed (CellResult.Err non-empty).
	Errors int `json:"errors"`
	// WallClockNS is total campaign wall-clock time; excluded from
	// Canonical.
	WallClockNS int64 `json:"wall_clock_ns,omitempty"`
}

// NewAggregate folds cell results (in grid order) into an Aggregate.
// It is the batch form of the incremental Aggregator: results are
// folded one at a time at their slice position, so the output is
// byte-identical (in canonical form) to an Aggregator fed the same
// results in any completion order.
func NewAggregate(spec Spec, cells []CellResult) *Aggregate {
	g := NewAggregator(spec)
	g.mu.Lock()
	for i, r := range cells {
		g.addAt(i, r)
	}
	g.mu.Unlock()
	return g.Snapshot()
}

// CoverageFraction returns the grid-wide detected fraction (1 for an
// empty grid).
func (a *Aggregate) CoverageFraction() float64 {
	if a.Faults == 0 {
		return 1
	}
	return float64(a.Detected) / float64(a.Faults)
}

// Canonical returns the deterministic JSON encoding of the aggregate:
// indented, with wall-clock and scheduling fields zeroed. Two campaigns
// over the same grid produce byte-identical Canonical output regardless
// of worker count, batch size, scheduling, host speed, or simulation
// path (the Naive and NoLanes escape hatches change only how verdicts
// are computed, never what they are, so both are zeroed alongside the
// other knobs).
func (a *Aggregate) Canonical() ([]byte, error) {
	c := *a
	c.WallClockNS = 0
	c.Spec.Workers = 0
	c.Spec.Batch = 0
	c.Spec.Naive = false
	c.Spec.NoLanes = false
	c.Cells = make([]CellResult, len(a.Cells))
	copy(c.Cells, a.Cells)
	for i := range c.Cells {
		c.Cells[i].DurationNS = 0
	}
	return json.MarshalIndent(&c, "", "  ")
}

// WriteAggregate writes the aggregate to w — canonical JSON or the
// text report — and returns an error when every cell failed, so
// scripted callers (twmd -once, faultsim -grid) exit nonzero when
// nothing simulated.
func WriteAggregate(w io.Writer, a *Aggregate, asJSON bool) error {
	if asJSON {
		b, err := a.Canonical()
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	} else if _, err := io.WriteString(w, a.Render()); err != nil {
		return err
	}
	if a.Errors == len(a.Cells) && len(a.Cells) > 0 {
		return fmt.Errorf("campaign: all %d cells failed (first: %s)", a.Errors, a.firstErr())
	}
	return nil
}

func (a *Aggregate) firstErr() string {
	for _, c := range a.Cells {
		if c.Err != "" {
			return c.Err
		}
	}
	return ""
}

// Schemes returns the scheme labels present in the aggregate, sorted.
func (a *Aggregate) Schemes() []string {
	out := make([]string, 0, len(a.Coverage))
	for s := range a.Coverage {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Render formats the per-scheme coverage matrix and op-count stats as
// a text table.
func (a *Aggregate) Render() string {
	tb := &report.Table{
		Title: fmt.Sprintf("campaign %q: %d cells, %d faults, %.2f%% detected, %d errors",
			a.Spec.Name, len(a.Cells), a.Faults, 100*a.CoverageFraction(), a.Errors),
		Header: []string{"scheme", "class", "detected", "total", "coverage"},
	}
	for _, scheme := range a.Schemes() {
		m := a.Coverage[scheme]
		classes := make([]string, 0, len(m))
		for cls := range m {
			classes = append(classes, cls)
		}
		sort.Strings(classes)
		var tot ClassCount
		for _, cls := range classes {
			c := m[cls]
			tot.Total += c.Total
			tot.Detected += c.Detected
			tb.AddRow(scheme, cls, fmt.Sprintf("%d", c.Detected), fmt.Sprintf("%d", c.Total),
				fmt.Sprintf("%.2f%%", 100*c.Coverage()))
		}
		tb.AddRow(scheme, "TOTAL", fmt.Sprintf("%d", tot.Detected), fmt.Sprintf("%d", tot.Total),
			fmt.Sprintf("%.2f%%", 100*tot.Coverage()))
	}
	out := tb.Render()
	ops := &report.Table{
		Title:  "op counts (per address, measured TCM+TCP)",
		Header: []string{"scheme", "cells", "min", "mean", "max"},
	}
	for _, scheme := range a.Schemes() {
		o := a.Ops[scheme]
		ops.AddRow(scheme, fmt.Sprintf("%d", o.Cells), fmt.Sprintf("%dN", o.MinTotal),
			fmt.Sprintf("%.1fN", o.MeanTotal()), fmt.Sprintf("%dN", o.MaxTotal))
	}
	out += "\n" + ops.Render()
	if a.Yield != nil {
		out += "\n" + a.renderYield()
	}
	return out
}

// renderYield formats the pipeline's per-scheme yield summary and the
// diagnosed-class histogram.
func (a *Aggregate) renderYield() string {
	var rows, cols int
	if p := a.Spec.Pipeline; p != nil {
		rows, cols = p.SpareRows, p.SpareCols
	}
	yt := &report.Table{
		Title: fmt.Sprintf("yield pipeline (spares %dr+%dc, ecc %s): %.2f%% repairable, %.2f%% post-ECC escapes",
			rows, cols, a.eccName(), 100*a.YieldTotal.RepairabilityRate(), 100*a.YieldTotal.PostECCEscapeRate()),
		Header: []string{"scheme", "analyzed", "detected", "repairable", "unrepairable", "escapes", "ecc-corrected", "spare-util"},
	}
	schemes := make([]string, 0, len(a.Yield))
	for s := range a.Yield {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, scheme := range schemes {
		y := a.Yield[scheme]
		yt.AddRow(scheme, fmt.Sprintf("%d", y.Analyzed), fmt.Sprintf("%d", y.Detected),
			fmt.Sprintf("%d (%.2f%%)", y.Repairable, 100*y.RepairabilityRate()),
			fmt.Sprintf("%d", y.Unrepairable), fmt.Sprintf("%d", y.Escapes),
			fmt.Sprintf("%d", y.ECCCorrected),
			fmt.Sprintf("%.2f%%", 100*y.SpareUtilization(rows, cols)))
	}
	out := yt.Render()
	hist := &report.Table{
		Title:  "diagnosed fault classes (detected faults)",
		Header: []string{"scheme", "diagnosis", "count"},
	}
	for _, scheme := range schemes {
		y := a.Yield[scheme]
		classes := make([]string, 0, len(y.ByDiagClass))
		for cls := range y.ByDiagClass {
			classes = append(classes, cls)
		}
		sort.Strings(classes)
		for _, cls := range classes {
			hist.AddRow(scheme, cls, fmt.Sprintf("%d", y.ByDiagClass[cls]))
		}
		if y.NoSyndrome > 0 {
			hist.AddRow(scheme, "(no syndrome)", fmt.Sprintf("%d", y.NoSyndrome))
		}
	}
	return out + "\n" + hist.Render()
}

// eccName returns the spec's effective ECC model label.
func (a *Aggregate) eccName() string {
	if p := a.Spec.Pipeline; p != nil && p.ECC != "" {
		return p.ECC
	}
	return ECCNone
}
