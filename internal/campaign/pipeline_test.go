package campaign

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"twmarch/internal/ecc"
	"twmarch/internal/faults"
)

// pipelineSpec is a small single-test grid with the pipeline enabled;
// MATS at width 4 is deliberately weak (its TWM transform misses some
// transition faults), so the grid has both detections and escapes.
func pipelineSpec(rows, cols int, eccModel string) Spec {
	return Spec{
		Name:    "yield",
		Tests:   []string{"MATS"},
		Widths:  []int{4},
		Words:   []int{4},
		Schemes: []string{SchemeTWM},
		Classes: []string{"SAF", "TF"},
		Seed:    1,
		Pipeline: &PipelineSpec{
			Enabled:   true,
			SpareRows: rows,
			SpareCols: cols,
			ECC:       eccModel,
		},
	}
}

func runPipelineCell(t *testing.T, spec Spec) *YieldStats {
	t.Helper()
	agg, err := Engine{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 {
		t.Fatalf("cells errored: %+v", agg.Cells)
	}
	if agg.YieldTotal == nil {
		t.Fatal("pipeline enabled but aggregate has no yield section")
	}
	return agg.YieldTotal
}

func TestPipelineSpecValidate(t *testing.T) {
	bad := []*PipelineSpec{
		{Enabled: true, SpareRows: -1},
		{Enabled: true, SpareCols: -1},
		{Enabled: true, SpareRows: MaxSpares + 1},
		{Enabled: true, SpareCols: MaxSpares + 1},
		{Enabled: true, ECC: "bogus"},
		{Enabled: true, MaxSyndrome: -1},
		{Enabled: true, MaxSyndrome: MaxSyndromeCap + 1},
	}
	for i, p := range bad {
		s := pipelineSpec(1, 1, "")
		s.Pipeline = p
		if err := s.Validate(); err == nil {
			t.Errorf("bad pipeline block %d accepted: %+v", i, p)
		}
	}
	// A disabled block is ignored even when out of range.
	s := pipelineSpec(1, 1, "")
	s.Pipeline = &PipelineSpec{Enabled: false, SpareRows: -5}
	if err := s.Validate(); err != nil {
		t.Errorf("disabled pipeline block rejected: %v", err)
	}
	// SEC-DED at width 128 needs a 137-bit codeword, beyond word.MaxWidth.
	s = pipelineSpec(1, 1, ECCSECDED)
	s.Widths = []int{128}
	s.Classes = []string{"SAF"}
	if err := s.Validate(); err == nil {
		t.Error("128-bit SEC-DED codeword accepted")
	}
	if err := pipelineSpec(1, 1, ECCSECDED).Validate(); err != nil {
		t.Errorf("valid pipeline spec rejected: %v", err)
	}
}

// TestPipelineUnrepairable exhausts the spare budget: with zero spare
// rows and columns, every diagnosed fault must land in Unrepairable
// and no spares may be spent.
func TestPipelineUnrepairable(t *testing.T) {
	y := runPipelineCell(t, pipelineSpec(0, 0, ""))
	if y.Detected == 0 {
		t.Fatal("weak-test cell detected nothing; fixture broken")
	}
	if y.Repairable != 0 {
		t.Errorf("%d faults repairable with zero spares", y.Repairable)
	}
	if y.Unrepairable != y.Detected-y.NoSyndrome {
		t.Errorf("unrepairable %d != detected %d - no-syndrome %d",
			y.Unrepairable, y.Detected, y.NoSyndrome)
	}
	if y.SpareRowsUsed != 0 || y.SpareColsUsed != 0 {
		t.Errorf("spares spent from an empty budget: %d rows, %d cols",
			y.SpareRowsUsed, y.SpareColsUsed)
	}
	if r := y.RepairabilityRate(); r != 0 {
		t.Errorf("repairability rate %v, want 0", r)
	}
	if u := y.SpareUtilization(0, 0); u != 0 {
		t.Errorf("spare utilization %v with no budget", u)
	}
}

// TestPipelineECCCorrectedEscapes: the MATS cell lets some single-bit
// transition faults escape; with a SEC code modeled, every one of them
// is corrected in the field, so the post-ECC escape rate drops to 0
// while the raw escape rate stays positive.
func TestPipelineECCCorrectedEscapes(t *testing.T) {
	y := runPipelineCell(t, pipelineSpec(1, 1, ECCSEC))
	if y.Escapes == 0 {
		t.Fatal("weak-test cell had no escapes; fixture broken")
	}
	if y.ECCCorrected != y.Escapes {
		t.Errorf("%d of %d single-bit escapes ECC-corrected", y.ECCCorrected, y.Escapes)
	}
	if r := y.EscapeRate(); r <= 0 {
		t.Errorf("escape rate %v, want > 0", r)
	}
	if r := y.PostECCEscapeRate(); r != 0 {
		t.Errorf("post-ECC escape rate %v, want 0: every escape is single-bit", r)
	}
	// Without ECC modeling nothing is corrected and the rates agree.
	y = runPipelineCell(t, pipelineSpec(1, 1, ""))
	if y.ECCCorrected != 0 {
		t.Errorf("ECC corrections counted with ECC off: %d", y.ECCCorrected)
	}
	if y.EscapeRate() != y.PostECCEscapeRate() {
		t.Errorf("rates diverge with ECC off: %v vs %v", y.EscapeRate(), y.PostECCEscapeRate())
	}
}

// TestPipelineEscapesSkipDiagnosis: an escaped fault leaves no
// mismatch log, so diagnosis and repair are short-circuited for it —
// the diagnosed-class histogram and the allocation tallies must be
// fed exclusively by detected faults.
func TestPipelineEscapesSkipDiagnosis(t *testing.T) {
	y := runPipelineCell(t, pipelineSpec(1, 1, ""))
	if y.Escapes == 0 {
		t.Fatal("fixture has no escapes")
	}
	hist := 0
	for _, n := range y.ByDiagClass {
		hist += n
	}
	if hist+y.NoSyndrome != y.Detected {
		t.Errorf("diagnosed classes (%d) + no-syndrome (%d) != detected (%d): escapes leaked into diagnosis",
			hist, y.NoSyndrome, y.Detected)
	}
	if got := y.Repairable + y.Unrepairable + y.NoSyndrome; got != y.Detected {
		t.Errorf("allocation attempts %d != detected %d", got, y.Detected)
	}
	if y.Detected+y.Escapes != y.Analyzed {
		t.Errorf("detected %d + escapes %d != analyzed %d", y.Detected, y.Escapes, y.Analyzed)
	}
}

// TestPipelineParallelMatchesSerial extends the engine's core
// byte-identical guarantee to pipeline-enabled campaigns: diagnosis,
// spare allocation and ECC classification must all be pure functions
// of (spec, cell), never of scheduling.
func TestPipelineParallelMatchesSerial(t *testing.T) {
	spec := gridSpec()
	// Tight spare budget so the allocator's tie-breaking is exercised,
	// SEC-DED so the ECC stage runs at both grid widths.
	spec.Pipeline = &PipelineSpec{Enabled: true, SpareRows: 1, SpareCols: 1, ECC: ECCSECDED}
	ctx := context.Background()

	serial := spec
	serial.Workers = 1
	aggSerial, err := Engine{}.Run(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := spec
	parallel.Workers = runtime.GOMAXPROCS(0)
	aggParallel, err := Engine{}.Run(ctx, parallel)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := aggSerial.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := aggParallel.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs, cp) {
		t.Fatalf("pipeline aggregate diverges between serial and parallel:\nserial:\n%s\nparallel:\n%s", cs, cp)
	}
	if aggSerial.YieldTotal == nil || aggSerial.YieldTotal.Analyzed == 0 {
		t.Fatal("pipeline ran nothing")
	}
	if !bytes.Contains(cs, []byte(`"yield"`)) || !bytes.Contains(cs, []byte(`"repairability_rate"`)) {
		t.Errorf("canonical aggregate missing yield section:\n%s", cs[:min(len(cs), 2000)])
	}
}

// TestPipelineOffLeavesResultsUnchanged: a disabled pipeline block
// must not perturb detection results relative to the batched path.
func TestPipelineOffLeavesResultsUnchanged(t *testing.T) {
	base := pipelineSpec(1, 1, "")
	base.Pipeline = nil
	aggOff, err := Engine{}.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	on := pipelineSpec(1, 1, "")
	aggOn, err := Engine{}.Run(context.Background(), on)
	if err != nil {
		t.Fatal(err)
	}
	if aggOff.Faults != aggOn.Faults || aggOff.Detected != aggOn.Detected {
		t.Errorf("pipeline changed detection: %d/%d vs %d/%d",
			aggOn.Detected, aggOn.Faults, aggOff.Detected, aggOff.Faults)
	}
	for scheme, classes := range aggOff.Coverage {
		for cls, c := range classes {
			if got := aggOn.Coverage[scheme][cls]; got != c {
				t.Errorf("coverage %s/%s diverges: %+v vs %+v", scheme, cls, got, c)
			}
		}
	}
	if aggOff.YieldTotal != nil {
		t.Error("yield section present with pipeline disabled")
	}
}

// TestPipelineSignatureMode runs the pipeline behind signature-based
// detection: the diagnostic re-run happens only for flagged faults.
func TestPipelineSignatureMode(t *testing.T) {
	spec := pipelineSpec(1, 1, ECCSEC)
	spec.Modes = []string{ModeSignature}
	y := runPipelineCell(t, spec)
	if y.Analyzed == 0 || y.Detected == 0 {
		t.Fatalf("signature pipeline cell empty: %+v", y)
	}
	if y.Detected+y.Escapes != y.Analyzed {
		t.Errorf("tallies inconsistent: %+v", y)
	}
}

// The pipeline's signature-mode detection goes through the cell's
// shared reference; forcing the naive path must not change the
// canonical aggregate (yield section included).
func TestPipelineNaiveMatchesFast(t *testing.T) {
	spec := pipelineSpec(1, 1, ECCSECDED)
	spec.Modes = []string{ModeCompare, ModeSignature}
	ctx := context.Background()
	fast, err := Engine{}.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	naiveSpec := spec
	naiveSpec.Naive = true
	naive, err := Engine{}.Run(ctx, naiveSpec)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fast.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cn, err := naive.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cf, cn) {
		t.Fatalf("pipeline naive aggregate diverges from fast:\nfast:\n%s\nnaive:\n%s", cf, cn)
	}
	if fast.Errors != 0 {
		t.Fatalf("%d cells errored", fast.Errors)
	}
}

// Like the Naive check above, the NoLanes escape hatch must leave the
// pipeline's canonical aggregate untouched: detection verdicts are the
// same whether batches ride the bit-parallel lane path or the scalar
// reference replay.
func TestPipelineNoLanesMatchesLanes(t *testing.T) {
	spec := pipelineSpec(1, 1, ECCSECDED)
	spec.Modes = []string{ModeCompare, ModeSignature}
	ctx := context.Background()
	lanes, err := Engine{}.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	scalarSpec := spec
	scalarSpec.NoLanes = true
	scalar, err := Engine{}.Run(ctx, scalarSpec)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := lanes.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := scalar.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cl, cs) {
		t.Fatalf("pipeline no-lanes aggregate diverges from lane path:\nlanes:\n%s\nno-lanes:\n%s", cl, cs)
	}
	if lanes.Errors != 0 {
		t.Fatalf("%d cells errored", lanes.Errors)
	}
}

func TestECCOutcome(t *testing.T) {
	sec := ecc.MustNewHamming(4, false)
	secded := ecc.MustNewHamming(4, true)
	single := faults.StuckAt{Cell: faults.Site{Addr: 1, Bit: 2}, Value: 1}
	if got := eccOutcome(sec, single); got != ecc.Corrected {
		t.Errorf("single-bit fault under SEC: %v, want corrected", got)
	}
	victim := faults.Site{Addr: 0, Bit: 0}
	coupled := faults.Coupling{Model: faults.CFid, Aggressor: faults.Site{Addr: 1, Bit: 1}, Victim: victim, AggrTrigger: 1}
	if got := eccOutcome(secded, coupled); got != ecc.Corrected {
		t.Errorf("single-victim coupling under SEC-DED: %v, want corrected", got)
	}
	// Address decoder faults return valid codewords from wrong
	// addresses: invisible to any per-word code.
	if got := eccOutcome(secded, faults.AddrAlias{From: 0, To: 1}); got != ecc.Uncorrectable {
		t.Errorf("decoder fault: %v, want uncorrectable", got)
	}
}
