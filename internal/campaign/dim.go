package campaign

// Dim is the grid-dimension tuple of one cell — the canonical
// dimension key the result warehouse indexes campaign results under.
// It is exactly the subset of Cell that positions the cell in the
// spec's cross product (no seed, no index), so two cells from
// different campaigns with the same Dim are directly comparable and
// queries like "coverage of S5 across all word widths" are range
// scans over Dim-ordered keys.
type Dim struct {
	// Test is the catalog march-test name.
	Test string `json:"test"`
	// Width and Words give the memory geometry.
	Width int `json:"width"`
	Words int `json:"words"`
	// Scheme and Mode name the transformation and detection mechanism.
	Scheme string `json:"scheme"`
	Mode   string `json:"mode"`
}

// Dim returns the cell's dimension tuple.
func (c Cell) Dim() Dim {
	return Dim{Test: c.Test, Width: c.Width, Words: c.Words, Scheme: c.Scheme, Mode: c.Mode}
}

// Dims expands the normalized grid's dimension tuples in grid order —
// Dims()[i] is Cells()[i].Dim() — without deriving seeds or running
// the full spec validation. Index consumers use it to cross-check
// journaled results against the spec they claim to belong to.
func (s Spec) Dims() []Dim {
	s = s.Normalized()
	n := s.CellCount()
	if n <= 0 || n > MaxCells {
		return nil
	}
	out := make([]Dim, 0, n)
	for _, test := range s.Tests {
		for _, width := range s.Widths {
			for _, words := range s.Words {
				for _, scheme := range s.Schemes {
					for _, mode := range s.Modes {
						out = append(out, Dim{Test: test, Width: width, Words: words, Scheme: scheme, Mode: mode})
					}
				}
			}
		}
	}
	return out
}
