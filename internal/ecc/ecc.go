// Package ecc implements the error-detecting and -correcting codes the
// TOMT baseline (Scheme 2, Thaller & Steininger [13]) protects its
// memory words with: even parity and Hamming single-error-correcting
// codes, optionally extended with an overall parity bit for
// double-error detection (SEC-DED).
//
// Codewords use the classical positional layout: codeword positions
// are numbered from 1, parity bits sit at the power-of-two positions,
// and parity bit p_i (position 2^i) covers every position whose index
// has bit i set. The syndrome of a corrupted word is then exactly the
// position of a single flipped bit. The extended parity bit, when
// enabled, occupies position 0 of the stored word and covers the whole
// codeword.
package ecc

import (
	"fmt"

	"twmarch/internal/word"
)

// Parity returns the even-parity bit over the low width bits of data:
// 0 when the number of ones is even.
func Parity(data word.Word, width int) int {
	return data.Mask(width).Parity()
}

// CheckParity reports whether the stored parity bit matches the data.
func CheckParity(data word.Word, width, parityBit int) bool {
	return Parity(data, width) == parityBit
}

// Status classifies a decode outcome.
type Status int

const (
	// OK: the codeword is consistent.
	OK Status = iota
	// Corrected: a single-bit error was found and corrected.
	Corrected
	// DoubleError: two bit errors were detected (SEC-DED only); the
	// data is uncorrectable.
	DoubleError
	// Uncorrectable: the syndrome points outside the codeword; more
	// than one error (plain SEC) or an internal inconsistency.
	Uncorrectable
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DoubleError:
		return "double-error"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Hamming is a Hamming SEC or SEC-DED codec for a fixed data width.
type Hamming struct {
	dataWidth  int
	checkBits  int  // r parity bits at power-of-two positions
	extended   bool // overall parity for DED
	positions  int  // highest codeword position (1-based, excl. extended bit)
	dataPos    []int
	parityPos  []int
	storeWidth int
}

// NewHamming builds a codec for dataWidth data bits. With extended set
// the code is SEC-DED. The stored word width is CodewordWidth().
func NewHamming(dataWidth int, extended bool) (*Hamming, error) {
	if dataWidth < 1 {
		return nil, fmt.Errorf("ecc: data width %d must be positive", dataWidth)
	}
	r := 0
	for (1 << uint(r)) < dataWidth+r+1 {
		r++
	}
	positions := dataWidth + r
	h := &Hamming{
		dataWidth: dataWidth,
		checkBits: r,
		extended:  extended,
		positions: positions,
	}
	for p := 1; p <= positions; p++ {
		if p&(p-1) == 0 {
			h.parityPos = append(h.parityPos, p)
		} else {
			h.dataPos = append(h.dataPos, p)
		}
	}
	h.storeWidth = positions
	if extended {
		h.storeWidth++
	}
	if h.storeWidth > word.MaxWidth {
		return nil, fmt.Errorf("ecc: codeword width %d exceeds %d bits", h.storeWidth, word.MaxWidth)
	}
	return h, nil
}

// MustNewHamming is NewHamming for statically valid widths.
func MustNewHamming(dataWidth int, extended bool) *Hamming {
	h, err := NewHamming(dataWidth, extended)
	if err != nil {
		panic(err)
	}
	return h
}

// DataWidth returns the number of protected data bits.
func (h *Hamming) DataWidth() int { return h.dataWidth }

// CheckBits returns the number of Hamming parity bits (excluding the
// extended parity bit).
func (h *Hamming) CheckBits() int { return h.checkBits }

// Extended reports whether the codec is SEC-DED.
func (h *Hamming) Extended() bool { return h.extended }

// CodewordWidth returns the stored word width: data + check bits,
// plus one when extended.
func (h *Hamming) CodewordWidth() int { return h.storeWidth }

// Overhead returns CodewordWidth - DataWidth, the redundancy the TOMT
// scheme pays for concurrent detection.
func (h *Hamming) Overhead() int { return h.storeWidth - h.dataWidth }

// DataBitPositions returns the stored-word bit indices that carry data
// bits, in data-bit order. The remaining stored bits are parity.
func (h *Hamming) DataBitPositions() []int {
	out := make([]int, len(h.dataPos))
	for i, p := range h.dataPos {
		out[i] = h.storedBit(p)
	}
	return out
}

// storedBit maps a 1-based codeword position to the bit index inside
// the stored word. Position i lives at stored bit i-1, shifted up by
// one when the extended parity occupies stored bit 0.
func (h *Hamming) storedBit(pos int) int {
	if h.extended {
		return pos
	}
	return pos - 1
}

// Encode produces the stored codeword for data.
func (h *Hamming) Encode(data word.Word) word.Word {
	data = data.Mask(h.dataWidth)
	var cw word.Word
	for i, p := range h.dataPos {
		cw = cw.SetBit(h.storedBit(p), data.Bit(i))
	}
	for _, p := range h.parityPos {
		par := 0
		for _, dp := range h.dataPos {
			if dp&p != 0 {
				cw2 := cw.Bit(h.storedBit(dp))
				par ^= cw2
			}
		}
		cw = cw.SetBit(h.storedBit(p), par)
	}
	if h.extended {
		cw = cw.SetBit(0, cw.Shr(1).Mask(h.positions).Parity())
	}
	return cw
}

// syndrome recomputes the parity checks over a stored codeword and
// returns the 1-based position of a single-bit error (0 when clean).
func (h *Hamming) syndrome(cw word.Word) int {
	s := 0
	for _, p := range h.parityPos {
		par := 0
		for pos := 1; pos <= h.positions; pos++ {
			if pos&p != 0 {
				par ^= cw.Bit(h.storedBit(pos))
			}
		}
		if par != 0 {
			s |= p
		}
	}
	return s
}

// Data extracts the data bits from a stored codeword without checking.
func (h *Hamming) Data(cw word.Word) word.Word {
	var data word.Word
	for i, p := range h.dataPos {
		data = data.SetBit(i, cw.Bit(h.storedBit(p)))
	}
	return data
}

// Decode checks and, when possible, corrects a stored codeword.
// It returns the decoded data (after correction), the corrected stored
// codeword, the status, and for Corrected the stored bit index that
// was flipped back.
func (h *Hamming) Decode(cw word.Word) (data, corrected word.Word, status Status, fixedBit int) {
	cw = cw.Mask(h.storeWidth)
	s := h.syndrome(cw)
	if !h.extended {
		switch {
		case s == 0:
			return h.Data(cw), cw, OK, -1
		case s <= h.positions:
			fixed := cw.FlipBit(h.storedBit(s))
			return h.Data(fixed), fixed, Corrected, h.storedBit(s)
		default:
			return h.Data(cw), cw, Uncorrectable, -1
		}
	}
	overallOK := cw.Mask(h.storeWidth).Parity() == 0
	switch {
	case s == 0 && overallOK:
		return h.Data(cw), cw, OK, -1
	case s == 0 && !overallOK:
		// The extended parity bit itself flipped.
		fixed := cw.FlipBit(0)
		return h.Data(fixed), fixed, Corrected, 0
	case s != 0 && overallOK:
		// Parity consistent overall but syndrome non-zero: two errors.
		return h.Data(cw), cw, DoubleError, -1
	case s > h.positions:
		return h.Data(cw), cw, Uncorrectable, -1
	default:
		fixed := cw.FlipBit(h.storedBit(s))
		return h.Data(fixed), fixed, Corrected, h.storedBit(s)
	}
}

// Check reports whether the stored codeword is internally consistent
// (syndrome zero and, for SEC-DED, overall parity even).
func (h *Hamming) Check(cw word.Word) bool {
	if h.syndrome(cw.Mask(h.storeWidth)) != 0 {
		return false
	}
	if h.extended && cw.Mask(h.storeWidth).Parity() != 0 {
		return false
	}
	return true
}
