package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twmarch/internal/word"
)

func TestParity(t *testing.T) {
	if Parity(word.FromUint64(0b0101), 4) != 0 {
		t.Error("even ones should give parity 0")
	}
	if Parity(word.FromUint64(0b0111), 4) != 1 {
		t.Error("odd ones should give parity 1")
	}
	// Bits beyond the width are ignored.
	if Parity(word.FromUint64(0b10001), 4) != 1 {
		t.Error("width masking broken")
	}
	if !CheckParity(word.FromUint64(0b11), 4, 0) {
		t.Error("CheckParity rejected a good pair")
	}
	if CheckParity(word.FromUint64(0b11), 4, 1) {
		t.Error("CheckParity accepted a bad pair")
	}
}

func TestNewHammingGeometry(t *testing.T) {
	cases := []struct {
		data, check int
	}{
		{1, 2}, {4, 3}, {8, 4}, {11, 4}, {16, 5}, {26, 5}, {32, 6}, {64, 7},
	}
	for _, c := range cases {
		h := MustNewHamming(c.data, false)
		if h.CheckBits() != c.check {
			t.Errorf("data %d: check bits %d, want %d", c.data, h.CheckBits(), c.check)
		}
		if h.CodewordWidth() != c.data+c.check {
			t.Errorf("data %d: codeword width %d", c.data, h.CodewordWidth())
		}
		he := MustNewHamming(c.data, true)
		if he.CodewordWidth() != c.data+c.check+1 {
			t.Errorf("data %d extended: codeword width %d", c.data, he.CodewordWidth())
		}
		if he.Overhead() != c.check+1 {
			t.Errorf("data %d extended: overhead %d", c.data, he.Overhead())
		}
	}
	if _, err := NewHamming(0, false); err == nil {
		t.Error("zero data width accepted")
	}
	if _, err := NewHamming(125, true); err == nil {
		t.Error("codeword beyond 128 bits accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, dw := range []int{4, 8, 16, 32} {
		for _, ext := range []bool{false, true} {
			h := MustNewHamming(dw, ext)
			r := rand.New(rand.NewSource(int64(dw)))
			for trial := 0; trial < 50; trial++ {
				data := word.FromUint64(r.Uint64()).Mask(dw)
				cw := h.Encode(data)
				if !h.Check(cw) {
					t.Fatalf("dw=%d ext=%v: fresh codeword fails check", dw, ext)
				}
				got, fixed, status, _ := h.Decode(cw)
				if status != OK || got != data || fixed != cw {
					t.Fatalf("dw=%d ext=%v: round trip: %v %v", dw, ext, got, status)
				}
				if h.Data(cw) != data {
					t.Fatalf("dw=%d ext=%v: Data extraction broken", dw, ext)
				}
			}
		}
	}
}

// Single error correction: flipping any single stored bit is detected
// and corrected back to the original data.
func TestSingleErrorCorrection(t *testing.T) {
	for _, ext := range []bool{false, true} {
		h := MustNewHamming(8, ext)
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 20; trial++ {
			data := word.FromUint64(r.Uint64()).Mask(8)
			cw := h.Encode(data)
			for b := 0; b < h.CodewordWidth(); b++ {
				bad := cw.FlipBit(b)
				if h.Check(bad) {
					t.Fatalf("ext=%v: single error at bit %d not detected", ext, b)
				}
				got, fixedCW, status, fixedBit := h.Decode(bad)
				if status != Corrected {
					t.Fatalf("ext=%v bit %d: status %v, want corrected", ext, b, status)
				}
				if got != data {
					t.Fatalf("ext=%v bit %d: corrected data %v != %v", ext, b, got, data)
				}
				if fixedCW != cw {
					t.Fatalf("ext=%v bit %d: corrected codeword differs", ext, b)
				}
				if fixedBit != b {
					t.Fatalf("ext=%v bit %d: reported fixed bit %d", ext, b, fixedBit)
				}
			}
		}
	}
}

// SEC-DED: any double error is flagged DoubleError, never miscorrected.
func TestDoubleErrorDetection(t *testing.T) {
	h := MustNewHamming(8, true)
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		data := word.FromUint64(r.Uint64()).Mask(8)
		cw := h.Encode(data)
		n := h.CodewordWidth()
		for b1 := 0; b1 < n; b1++ {
			for b2 := b1 + 1; b2 < n; b2++ {
				bad := cw.FlipBit(b1).FlipBit(b2)
				_, _, status, _ := h.Decode(bad)
				if status != DoubleError {
					t.Fatalf("double error (%d,%d): status %v", b1, b2, status)
				}
			}
		}
	}
}

// Plain SEC miscorrects double errors (the reason TOMT wants SEC-DED);
// assert it never reports OK for them, at minimum.
func TestPlainSECDoubleErrorNotSilent(t *testing.T) {
	h := MustNewHamming(8, false)
	data := word.FromUint64(0xb7)
	cw := h.Encode(data)
	n := h.CodewordWidth()
	for b1 := 0; b1 < n; b1++ {
		for b2 := b1 + 1; b2 < n; b2++ {
			bad := cw.FlipBit(b1).FlipBit(b2)
			_, _, status, _ := h.Decode(bad)
			if status == OK {
				t.Fatalf("double error (%d,%d) reported OK", b1, b2)
			}
		}
	}
}

// Property: encode/decode round trip over random data for a wide
// SEC-DED code.
func TestQuickRoundTrip64(t *testing.T) {
	h := MustNewHamming(64, true)
	f := func(v uint64) bool {
		data := word.FromUint64(v)
		got, _, status, _ := h.Decode(h.Encode(data))
		return status == OK && got == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct data produce distinct codewords (injectivity).
func TestQuickInjective(t *testing.T) {
	h := MustNewHamming(16, true)
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		return h.Encode(word.FromUint64(uint64(a))) != h.Encode(word.FromUint64(uint64(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		OK: "ok", Corrected: "corrected", DoubleError: "double-error",
		Uncorrectable: "uncorrectable", Status(9): "Status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status %d = %q, want %q", int(s), got, want)
		}
	}
}

func TestEncodeMasksData(t *testing.T) {
	h := MustNewHamming(4, false)
	a := h.Encode(word.FromUint64(0xf5)) // only low 4 bits count
	b := h.Encode(word.FromUint64(0x05))
	if a != b {
		t.Fatal("Encode did not mask data to width")
	}
}

func TestMinimumDistance(t *testing.T) {
	// Exhaustive for a small code: Hamming SEC has minimum distance 3,
	// SEC-DED distance 4.
	check := func(ext bool, wantDist int) {
		h := MustNewHamming(4, ext)
		var codewords []word.Word
		for v := 0; v < 16; v++ {
			codewords = append(codewords, h.Encode(word.FromUint64(uint64(v))))
		}
		min := h.CodewordWidth() + 1
		for i := range codewords {
			for j := i + 1; j < len(codewords); j++ {
				d := codewords[i].Xor(codewords[j]).OnesCount()
				if d < min {
					min = d
				}
			}
		}
		if min != wantDist {
			t.Errorf("ext=%v: minimum distance %d, want %d", ext, min, wantDist)
		}
	}
	check(false, 3)
	check(true, 4)
}
