package bistctl

import (
	"math"
	"math/rand"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func controllerFor(t *testing.T, test string, width int) *Controller {
	t.Helper()
	res, err := core.TWMTA(march.MustLookup(test), width)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func TestNewRejectsNontransparent(t *testing.T) {
	if _, err := New(march.MustLookup("March C-")); err == nil {
		t.Fatal("nontransparent test accepted")
	}
}

func TestRunPassesOnCleanMemory(t *testing.T) {
	ctl := controllerFor(t, "March C-", 8)
	mem := memory.MustNew(16, 8)
	mem.Randomize(rand.New(rand.NewSource(2)))
	before := mem.Snapshot()
	out, err := ctl.Run(mem)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass {
		t.Fatalf("clean memory failed BIST: predicted %v actual %v", out.Predicted, out.Actual)
	}
	if !mem.Equal(before) {
		t.Fatal("BIST session did not preserve contents")
	}
	if out.Ops != ctl.SessionOps()*16 {
		t.Fatalf("ops = %d, want %d", out.Ops, ctl.SessionOps()*16)
	}
}

func TestRunFailsOnFaultyMemory(t *testing.T) {
	ctl := controllerFor(t, "March C-", 8)
	mem := memory.MustNew(16, 8)
	mem.Randomize(rand.New(rand.NewSource(3)))
	inj := faults.MustInject(mem, faults.StuckAt{Cell: faults.Site{Addr: 5, Bit: 2}, Value: 1})
	out, err := ctl.Run(inj)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pass {
		t.Fatal("stuck-at fault escaped the signature comparison")
	}
}

func TestSessionOps(t *testing.T) {
	ctl := controllerFor(t, "March C-", 32)
	// TCM + TCP per word: (10+25) + measured prediction.
	if got := ctl.SessionOps(); got != ctl.Test().Ops()+ctl.Prediction().Ops() {
		t.Fatalf("SessionOps = %d", got)
	}
	if ctl.Prediction().Writes() != 0 {
		t.Fatal("prediction has writes")
	}
}

func TestSimulateOnlineAllWindowsLarge(t *testing.T) {
	ctl := controllerFor(t, "March C-", 4)
	mem := memory.MustNew(8, 4)
	mem.Randomize(rand.New(rand.NewSource(4)))
	before := mem.Snapshot()
	need := ctl.SessionOps() * 8
	stats, err := SimulateOnline(ctl, mem, &FixedWindows{Len: need}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CompletedRuns != 5 || stats.Preemptions != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !stats.AllPassed {
		t.Fatal("clean memory failed online sessions")
	}
	if stats.InterferenceProb() != 0 {
		t.Fatal("interference reported for all-large windows")
	}
	if !mem.Equal(before) {
		t.Fatal("online sessions did not preserve contents")
	}
}

func TestSimulateOnlinePreemption(t *testing.T) {
	ctl := controllerFor(t, "March C-", 4)
	mem := memory.MustNew(8, 4)
	mem.Randomize(rand.New(rand.NewSource(5)))
	before := mem.Snapshot()
	need := ctl.SessionOps() * 8
	// Alternate short and long windows.
	ws := &alternatingWindows{short: need / 3, long: need}
	stats, err := SimulateOnline(ctl, mem, ws, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Preemptions == 0 {
		t.Fatal("no preemptions with short windows")
	}
	if stats.WastedOps == 0 {
		t.Fatal("preempted sessions should report wasted work")
	}
	if !mem.Equal(before) {
		t.Fatal("preempted sessions violated transparency")
	}
	if p := stats.InterferenceProb(); p <= 0 || p >= 1 {
		t.Fatalf("interference prob = %v", p)
	}
}

type alternatingWindows struct {
	short, long int
	flip        bool
}

func (a *alternatingWindows) Next() int {
	a.flip = !a.flip
	if a.flip {
		return a.short
	}
	return a.long
}

func TestSimulateOnlineHopelessWindows(t *testing.T) {
	ctl := controllerFor(t, "March C-", 4)
	mem := memory.MustNew(8, 4)
	if _, err := SimulateOnline(ctl, mem, &FixedWindows{Len: 1}, 1); err == nil {
		t.Fatal("hopelessly short windows should error out")
	}
}

func TestSimulateOnlineWidthMismatch(t *testing.T) {
	ctl := controllerFor(t, "March C-", 4)
	mem := memory.MustNew(8, 8)
	if _, err := SimulateOnline(ctl, mem, &FixedWindows{Len: 100}, 1); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestGeometricWindowsMean(t *testing.T) {
	g := &GeometricWindows{Mean: 50, Rng: rand.New(rand.NewSource(6))}
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		w := g.Next()
		if w < 1 {
			t.Fatal("window below 1")
		}
		sum += w
	}
	mean := float64(sum) / n
	if math.Abs(mean-50) > 2.5 {
		t.Fatalf("empirical mean %.2f, want ≈50", mean)
	}
}

func TestGeometricWindowsDegenerate(t *testing.T) {
	g := &GeometricWindows{Mean: 0.5, Rng: rand.New(rand.NewSource(7))}
	if g.Next() != 1 {
		t.Fatal("degenerate mean should yield 1")
	}
}

// The motivation claim (paper Section 1): interference probability grows
// with test length. The proposed scheme's shorter sessions interfere
// less than Scheme 1's at every idle-window scale.
func TestInterferenceShorterTestsWinMonotonically(t *testing.T) {
	resP, err := core.TWMTA(march.MustLookup("March C-"), 32)
	if err != nil {
		t.Fatal(err)
	}
	resS1, err := core.Scheme1(march.MustLookup("March C-"), 32)
	if err != nil {
		t.Fatal(err)
	}
	const words = 64
	opsP := (resP.TCM() + resP.TCP()) * words
	opsS1 := (resS1.TCM() + resS1.TCP()) * words
	if opsP >= opsS1 {
		t.Fatalf("proposed session %d not shorter than Scheme 1 %d", opsP, opsS1)
	}
	multiples := []float64{0.5, 1, 2, 4}
	// Evaluate both curves against the same absolute window means —
	// express them as multiples of the proposed session length.
	curveP := InterferenceCurve(opsP, multiples, 4000, 11)
	absolute := make([]float64, len(multiples))
	for i, m := range multiples {
		absolute[i] = m * float64(opsP) / float64(opsS1)
	}
	curveS1 := InterferenceCurve(opsS1, absolute, 4000, 11)
	for i := range multiples {
		if curveP[i] >= curveS1[i] {
			t.Errorf("mean multiple %.1f: proposed interference %.3f not below Scheme 1 %.3f",
				multiples[i], curveP[i], curveS1[i])
		}
	}
	// And the curve decreases as idle windows grow.
	for i := 1; i < len(curveP); i++ {
		if curveP[i] > curveP[i-1] {
			t.Errorf("interference curve not monotone: %v", curveP)
		}
	}
}

func TestInterferenceProbEmpty(t *testing.T) {
	var s OnlineStats
	if s.InterferenceProb() != 0 {
		t.Fatal("empty stats should report zero interference")
	}
}

func TestInterferenceCurveMonotone(t *testing.T) {
	curve := InterferenceCurve(1000, []float64{0.5, 1, 2, 8}, 2000, 3)
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	if curve[0] <= curve[len(curve)-1] && curve[0] == 0 {
		t.Fatal("tight windows should interfere")
	}
}

func TestControllerAccessors(t *testing.T) {
	ctl := controllerFor(t, "March U", 8)
	if ctl.Test() == nil || ctl.Prediction() == nil {
		t.Fatal("accessors broken")
	}
	if !ctl.Test().IsTransparent() {
		t.Fatal("controller test not transparent")
	}
}

func TestNewRejectsUntabulatedMISRWidth(t *testing.T) {
	// A transparent test at width 17 has no tabulated MISR polynomial.
	tst := march.MustNew("odd", 17,
		march.Elem(march.Up, march.R(march.Transp(word.Zero))),
	)
	if _, err := New(tst); err == nil {
		t.Fatal("width without MISR polynomial accepted")
	}
}
