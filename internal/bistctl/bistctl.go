// Package bistctl models the controller of a transparent memory BIST
// and its use for periodic online testing.
//
// A transparent BIST session runs two passes over the memory under
// test: the signature-prediction pass (reads only, MISR compresses the
// mask-adjusted data) and the test pass (reads and XOR-relative
// writes, MISR compresses the raw read data). The memory is declared
// faulty when the signatures differ. Contents are preserved by
// construction, so the flow can run periodically during the idle
// phases of a system — the deployment model the paper's introduction
// motivates, where a shorter test directly lowers the probability of
// colliding with normal operation.
//
// The online scheduler here makes that claim measurable: idle windows
// of random length arrive; a BIST attempt that does not finish inside
// its window is preempted, must undo its partial writes before
// yielding (transparency may not be violated), and retries in a later
// window. Interference probability and wasted work fall out directly.
package bistctl

import (
	"fmt"
	"math"
	"math/rand"

	"twmarch/internal/core"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/misr"
	"twmarch/internal/word"
)

// Outcome reports one complete transparent-BIST session.
type Outcome struct {
	// Predicted and Actual are the two signatures.
	Predicted, Actual word.Word
	// Pass is true when the signatures match (memory presumed good).
	Pass bool
	// Ops counts the memory operations of both passes.
	Ops int
}

// Controller executes transparent-BIST sessions for one test.
type Controller struct {
	test *march.Test
	pred *march.Test
	reg  *misr.MISR
}

// New builds a controller for a transparent march test. The MISR width
// follows the test's word width.
func New(test *march.Test) (*Controller, error) {
	if !test.IsTransparent() {
		return nil, fmt.Errorf("bistctl: %q is not transparent", test.Name)
	}
	pred, err := core.Prediction(test)
	if err != nil {
		return nil, err
	}
	reg, err := misr.New(test.Width)
	if err != nil {
		return nil, err
	}
	return &Controller{test: test, pred: pred, reg: reg}, nil
}

// Test returns the controller's transparent test.
func (c *Controller) Test() *march.Test { return c.test }

// Prediction returns the derived signature-prediction test.
func (c *Controller) Prediction() *march.Test { return c.pred }

// SessionOps returns the total operations of one complete session
// (prediction plus test) per memory word.
func (c *Controller) SessionOps() int { return c.pred.Ops() + c.test.Ops() }

// Run executes one full session against mem.
func (c *Controller) Run(mem march.Mem) (Outcome, error) {
	var out Outcome
	c.reg.Reset(word.Zero)
	pres, err := march.Run(c.pred, mem, march.RunOptions{ReadSink: c.reg.PredictSink()})
	if err != nil {
		return out, err
	}
	out.Ops += pres.Ops
	out.Predicted = c.reg.Signature()

	c.reg.Reset(word.Zero)
	tres, err := march.Run(c.test, mem, march.RunOptions{ReadSink: c.reg.TestSink()})
	if err != nil {
		return out, err
	}
	out.Ops += tres.Ops
	out.Actual = c.reg.Signature()
	out.Pass = out.Actual == out.Predicted
	return out, nil
}

// WindowSource yields idle-window lengths in memory operations.
type WindowSource interface {
	Next() int
}

// GeometricWindows draws window lengths from a geometric distribution
// with the given mean, the discrete analogue of exponentially
// distributed idle times.
type GeometricWindows struct {
	Mean float64
	Rng  *rand.Rand
}

// Next implements WindowSource.
func (g *GeometricWindows) Next() int {
	if g.Mean <= 1 {
		return 1
	}
	p := 1 / g.Mean
	// Inverse-CDF sampling of a geometric distribution on {1, 2, …}.
	u := g.Rng.Float64()
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// FixedWindows yields a constant window length.
type FixedWindows struct{ Len int }

// Next implements WindowSource.
func (f *FixedWindows) Next() int { return f.Len }

// OnlineStats summarizes a periodic-test simulation.
type OnlineStats struct {
	// CompletedRuns is the number of full sessions that fit in a
	// window.
	CompletedRuns int
	// Preemptions is the number of sessions cut short by window end.
	Preemptions int
	// UsefulOps and WastedOps split the spent memory operations;
	// wasted ops include the rollback writes preempted sessions pay to
	// restore the contents they had modified.
	UsefulOps, WastedOps int
	// AllPassed is true when every completed session matched
	// signatures.
	AllPassed bool
}

// InterferenceProb returns the fraction of attempted sessions that
// were preempted — the paper's "probability of interference of normal
// system operation".
func (s OnlineStats) InterferenceProb() float64 {
	total := s.CompletedRuns + s.Preemptions
	if total == 0 {
		return 0
	}
	return float64(s.Preemptions) / float64(total)
}

// SimulateOnline runs periodic transparent-BIST sessions against mem
// until targetRuns sessions complete. Each attempt receives one idle
// window; a session whose prediction+test flow does not fit is
// preempted: its partial writes are rolled back from the pre-session
// snapshot (counted as wasted ops) and the session restarts from
// scratch in the next window, because normal operation may modify the
// memory in between, invalidating the predicted signature.
func SimulateOnline(ctl *Controller, mem *memory.Memory, windows WindowSource, targetRuns int) (OnlineStats, error) {
	stats := OnlineStats{AllPassed: true}
	if ctl.test.Width != mem.Width() {
		return stats, fmt.Errorf("bistctl: test width %d != memory width %d", ctl.test.Width, mem.Width())
	}
	need := ctl.SessionOps() * mem.Words()
	guard := 0
	for stats.CompletedRuns < targetRuns {
		guard++
		if guard > 1000*targetRuns {
			return stats, fmt.Errorf("bistctl: windows too short to ever complete a %d-op session", need)
		}
		w := windows.Next()
		if w >= need {
			out, err := ctl.Run(mem)
			if err != nil {
				return stats, err
			}
			stats.CompletedRuns++
			stats.UsefulOps += out.Ops
			if !out.Pass {
				stats.AllPassed = false
			}
			continue
		}
		// Preempted: execute what fits, then roll back.
		stats.Preemptions++
		snapshot := mem.Snapshot()
		budget := w
		pres, err := march.Run(ctl.pred, mem, march.RunOptions{MaxOps: budget})
		if err != nil {
			return stats, err
		}
		spent := pres.Ops
		if !pres.Aborted && spent < budget {
			tres, err := march.Run(ctl.test, mem, march.RunOptions{MaxOps: budget - spent})
			if err != nil {
				return stats, err
			}
			spent += tres.Ops
			// Roll back the partial test writes: transparency must
			// hold even for preempted sessions. The rollback writes
			// are wasted work charged to the session.
			restored := 0
			for i := 0; i < mem.Words(); i++ {
				if mem.Read(i) != snapshot[i] {
					mem.Write(i, snapshot[i])
					restored++
				}
			}
			spent += restored
		}
		stats.WastedOps += spent
	}
	return stats, nil
}

// InterferenceCurve evaluates the interference probability of a test
// across a sweep of mean idle-window lengths (in multiples of the
// session length), using Monte-Carlo simulation without touching a
// memory: only window arithmetic matters for the probability itself.
func InterferenceCurve(sessionOps int, meanMultiples []float64, trials int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(meanMultiples))
	for i, m := range meanMultiples {
		g := &GeometricWindows{Mean: m * float64(sessionOps), Rng: rng}
		pre := 0
		for t := 0; t < trials; t++ {
			if g.Next() < sessionOps {
				pre++
			}
		}
		out[i] = float64(pre) / float64(trials)
	}
	return out
}
