package memory

import "twmarch/internal/word"

// Bit-plane transposition helpers for the bit-parallel fault-simulation
// lanes in internal/faultsim.
//
// A plane set represents the contents of up to 64 simulated memories
// ("lanes") of identical geometry at once. It is a flat []uint64 of
// length words*width, indexed planes[addr*width+b]: bit L of that
// element is the value of memory bit (addr, b) in lane machine L. March
// operations then apply to all 64 machines with ordinary bitwise ops
// on whole planes instead of one scalar replay per machine.

// PlaneIndex returns the index of the plane holding bit b of the word
// at addr in a plane set of the given width.
func PlaneIndex(width, addr, b int) int { return addr*width + b }

// BroadcastPlanes fills dst (length words*width) so that every lane of
// every plane holds the corresponding bit of snapshot: lane L of plane
// (addr, b) is bit b of snapshot[addr], for all 64 lanes. It is the
// plane-set analogue of Restore — all lane machines start from the same
// scalar contents.
func BroadcastPlanes(dst []uint64, snapshot []word.Word, width int) {
	for addr, w := range snapshot {
		base := addr * width
		for b := 0; b < width; b++ {
			var bit uint64
			if b < 64 {
				bit = w.Lo >> uint(b) & 1
			} else {
				bit = w.Hi >> uint(b-64) & 1
			}
			// -bit broadcasts the single bit to all 64 lanes.
			dst[base+b] = -bit
		}
	}
}

// LaneWord reassembles the scalar word stored at addr in lane machine
// lane (0..63) from a plane set of the given width.
func LaneWord(planes []uint64, width, addr, lane int) word.Word {
	var w word.Word
	base := addr * width
	for b := 0; b < width; b++ {
		if planes[base+b]>>uint(lane)&1 == 1 {
			w = w.SetBit(b, 1)
		}
	}
	return w
}

// LaneSnapshot reassembles the full contents of lane machine lane
// (0..63) as a scalar snapshot, the inverse of BroadcastPlanes for a
// single lane. It is the debugging bridge between the bit-parallel
// representation and the scalar Memory model: the result can be fed to
// Restore to replay one lane's state on a plain simulator.
func LaneSnapshot(planes []uint64, words, width, lane int) []word.Word {
	out := make([]word.Word, words)
	for addr := range out {
		out[addr] = LaneWord(planes, width, addr, lane)
	}
	return out
}
