package memory

import (
	"math/rand"
	"testing"

	"twmarch/internal/word"
)

// randomSnapshot builds a deterministic pseudo-random snapshot for the
// given geometry.
func randomSnapshot(rng *rand.Rand, words, width int) []word.Word {
	out := make([]word.Word, words)
	for i := range out {
		w := word.FromUint64(rng.Uint64())
		for b := 64; b < width; b++ {
			if rng.Intn(2) == 1 {
				w = w.SetBit(b, 1)
			}
		}
		out[i] = w.Mask(width)
	}
	return out
}

func TestPlaneIndex(t *testing.T) {
	if got := PlaneIndex(4, 0, 0); got != 0 {
		t.Errorf("PlaneIndex(4,0,0) = %d", got)
	}
	if got := PlaneIndex(4, 2, 3); got != 11 {
		t.Errorf("PlaneIndex(4,2,3) = %d", got)
	}
	if got := PlaneIndex(1, 7, 0); got != 7 {
		t.Errorf("PlaneIndex(1,7,0) = %d", got)
	}
}

// BroadcastPlanes must put the same scalar word in every lane:
// reassembling any lane returns the broadcast snapshot.
func TestBroadcastRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, geo := range []struct{ words, width int }{
		{3, 4}, {2, 8}, {9, 1}, {4, 64}, {2, 100},
	} {
		snap := randomSnapshot(rng, geo.words, geo.width)
		planes := make([]uint64, geo.words*geo.width)
		BroadcastPlanes(planes, snap, geo.width)
		for _, lane := range []int{0, 1, 31, 63} {
			got := LaneSnapshot(planes, geo.words, geo.width, lane)
			for addr := range snap {
				if got[addr] != snap[addr] {
					t.Fatalf("%dx%d lane %d addr %d: got %v want %v",
						geo.words, geo.width, lane, addr, got[addr], snap[addr])
				}
			}
		}
	}
}

// Perturbing a single lane's plane bits must be visible to LaneWord for
// that lane only — planes are truly independent per machine.
func TestLaneWordIsolation(t *testing.T) {
	const words, width = 3, 4
	snap := randomSnapshot(rand.New(rand.NewSource(9)), words, width)
	planes := make([]uint64, words*width)
	BroadcastPlanes(planes, snap, width)

	const lane, addr, bit = 17, 1, 2
	planes[PlaneIndex(width, addr, bit)] ^= uint64(1) << lane

	for l := 0; l < 64; l++ {
		got := LaneWord(planes, width, addr, l)
		want := snap[addr]
		if l == lane {
			want = want.Xor(word.Zero.SetBit(bit, 1))
		}
		if got != want {
			t.Fatalf("lane %d: got %v want %v", l, got, want)
		}
	}
}

// A lane snapshot can be restored onto a scalar Memory — the debugging
// bridge the helper exists for.
func TestLaneSnapshotRestores(t *testing.T) {
	const words, width = 4, 8
	snap := randomSnapshot(rand.New(rand.NewSource(3)), words, width)
	planes := make([]uint64, words*width)
	BroadcastPlanes(planes, snap, width)

	m := MustNew(words, width)
	if err := m.Restore(LaneSnapshot(planes, words, width, 42)); err != nil {
		t.Fatal(err)
	}
	for addr := 0; addr < words; addr++ {
		if got := m.Read(addr); got != snap[addr] {
			t.Fatalf("addr %d: got %v want %v", addr, got, snap[addr])
		}
	}
}
