package memory

import (
	"math/rand"
	"testing"

	"twmarch/internal/word"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("zero words accepted")
	}
	if _, err := New(-4, 8); err == nil {
		t.Error("negative words accepted")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(8, 129); err == nil {
		t.Error("width beyond 128 accepted")
	}
	m, err := New(8, 128)
	if err != nil {
		t.Fatalf("New(8,128): %v", err)
	}
	if m.Words() != 8 || m.Width() != 128 {
		t.Fatalf("geometry: %d x %d", m.Words(), m.Width())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := MustNew(4, 8)
	v := word.FromUint64(0xa5)
	m.Write(2, v)
	if got := m.Read(2); got != v {
		t.Fatalf("Read(2) = %v, want %v", got, v)
	}
	if got := m.Read(0); !got.IsZero() {
		t.Fatalf("untouched word = %v", got)
	}
}

func TestWriteMasksToWidth(t *testing.T) {
	m := MustNew(2, 4)
	m.Write(0, word.FromUint64(0xff))
	if got := m.Read(0); got != word.FromUint64(0xf) {
		t.Fatalf("write not masked: %v", got)
	}
}

func TestAddressBoundsPanic(t *testing.T) {
	m := MustNew(2, 4)
	for _, f := range []func(){
		func() { m.Read(-1) },
		func() { m.Read(2) },
		func() { m.Write(5, word.Zero) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFill(t *testing.T) {
	m := MustNew(4, 8)
	m.Fill(word.FromUint64(0x3c))
	for i := 0; i < 4; i++ {
		if m.Read(i) != word.FromUint64(0x3c) {
			t.Fatalf("word %d not filled", i)
		}
	}
}

func TestSnapshotRestoreEqual(t *testing.T) {
	m := MustNew(16, 32)
	r := rand.New(rand.NewSource(5))
	m.Randomize(r)
	snap := m.Snapshot()
	if !m.Equal(snap) {
		t.Fatal("memory should equal its own snapshot")
	}
	m.Write(7, m.Read(7).FlipBit(3))
	if m.Equal(snap) {
		t.Fatal("Equal missed a modified word")
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(snap) {
		t.Fatal("Restore did not reinstate the snapshot")
	}
}

func TestRestoreLengthMismatch(t *testing.T) {
	m := MustNew(4, 8)
	if err := m.Restore(make([]word.Word, 3)); err == nil {
		t.Fatal("short snapshot accepted")
	}
	if m.Equal(make([]word.Word, 3)) {
		t.Fatal("Equal accepted short snapshot")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	m := MustNew(2, 8)
	snap := m.Snapshot()
	m.Write(0, word.FromUint64(0xff))
	if !snap[0].IsZero() {
		t.Fatal("snapshot aliases memory storage")
	}
}

func TestRandomizeRespectsWidth(t *testing.T) {
	m := MustNew(64, 5)
	r := rand.New(rand.NewSource(11))
	m.Randomize(r)
	for i := 0; i < m.Words(); i++ {
		v := m.Read(i)
		if v != v.Mask(5) {
			t.Fatalf("word %d exceeds width: %v", i, v)
		}
	}
}

func TestRandomizeSeedDeterministic(t *testing.T) {
	a := MustNew(32, 16)
	b := MustNew(32, 16)
	a.RandomizeSeed(99)
	b.RandomizeSeed(99)
	if !a.Equal(b.Snapshot()) {
		t.Fatal("same seed produced different contents")
	}
	b.RandomizeSeed(100)
	if a.Equal(b.Snapshot()) {
		t.Fatal("different seeds produced identical contents")
	}
}

func TestRandomizeSeedRespectsWidth(t *testing.T) {
	m := MustNew(64, 5)
	m.RandomizeSeed(11)
	zeros := 0
	for i := 0; i < m.Words(); i++ {
		v := m.Read(i)
		if v != v.Mask(5) {
			t.Fatalf("word %d exceeds width: %v", i, v)
		}
		if v.IsZero() {
			zeros++
		}
	}
	// A degenerate stream (all zero words) would silently turn the
	// transparent tests into fixed-background tests.
	if zeros == m.Words() {
		t.Fatal("splitmix64 stream produced all-zero contents")
	}
}

func TestClone(t *testing.T) {
	m := MustNew(4, 8)
	m.Write(1, word.FromUint64(0x7e))
	c := m.Clone()
	c.Write(1, word.Zero)
	if m.Read(1) != word.FromUint64(0x7e) {
		t.Fatal("Clone shares storage")
	}
	if c.Words() != m.Words() || c.Width() != m.Width() {
		t.Fatal("Clone geometry differs")
	}
}

func TestObservedReportsAccesses(t *testing.T) {
	m := MustNew(4, 8)
	var log []Access
	o := NewObserved(m, ObserverFunc(func(a Access) { log = append(log, a) }))
	o.Write(2, word.FromUint64(0x11))
	_ = o.Read(2)
	o.Write(2, word.FromUint64(0x22))
	if len(log) != 3 {
		t.Fatalf("observed %d accesses, want 3", len(log))
	}
	if log[0].Kind != AccessWrite || !log[0].Old.IsZero() || log[0].Value != word.FromUint64(0x11) {
		t.Fatalf("first access: %+v", log[0])
	}
	if log[1].Kind != AccessRead || log[1].Value != word.FromUint64(0x11) {
		t.Fatalf("second access: %+v", log[1])
	}
	if log[2].Old != word.FromUint64(0x11) || log[2].Value != word.FromUint64(0x22) {
		t.Fatalf("third access old/value: %+v", log[2])
	}
	if o.Words() != 4 || o.Width() != 8 {
		t.Fatal("Observed geometry passthrough broken")
	}
}

func TestObservedDoesNotAlterData(t *testing.T) {
	m := MustNew(8, 16)
	o := NewObserved(m, ObserverFunc(func(Access) {}))
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		addr := r.Intn(8)
		v := word.FromUint64(r.Uint64()).Mask(16)
		o.Write(addr, v)
		if got := o.Read(addr); got != v {
			t.Fatalf("observed memory corrupted data at %d: %v != %v", addr, got, v)
		}
	}
}
