// Package memory provides a functional simulator for embedded
// word-oriented random-access memories.
//
// The simulator models a memory core at the level march tests are
// defined on: an array of N words of W bits each with single-cycle
// read and write, no timing. Fault behaviour is layered on top by
// wrapping a *Memory in the injectors from internal/faults, and
// observation hooks allow the state-coverage analysis of
// internal/statecover to watch every access without disturbing it.
package memory

import (
	"fmt"
	"math/rand"

	"twmarch/internal/word"
)

// Accessor is the read/write view of a memory shared by the plain
// simulator, fault injectors, and observers. Addresses are word
// addresses in [0, Words()).
type Accessor interface {
	// Read returns the word stored at addr.
	Read(addr int) word.Word
	// Write stores v (masked to the memory width) at addr.
	Write(addr int, v word.Word)
	// Words returns the number of words.
	Words() int
	// Width returns the word width in bits.
	Width() int
}

// Memory is a fault-free word-oriented RAM model.
type Memory struct {
	width int
	cells []word.Word
}

var _ Accessor = (*Memory)(nil)

// New creates a memory with the given number of words and word width.
func New(words, width int) (*Memory, error) {
	if words <= 0 {
		return nil, fmt.Errorf("memory: word count %d must be positive", words)
	}
	if width < 1 || width > word.MaxWidth {
		return nil, fmt.Errorf("memory: width %d out of range [1,%d]", width, word.MaxWidth)
	}
	return &Memory{width: width, cells: make([]word.Word, words)}, nil
}

// MustNew is New for statically valid geometry.
func MustNew(words, width int) *Memory {
	m, err := New(words, width)
	if err != nil {
		panic(err)
	}
	return m
}

// Words returns the number of words.
func (m *Memory) Words() int { return len(m.cells) }

// Width returns the word width in bits.
func (m *Memory) Width() int { return m.width }

func (m *Memory) checkAddr(addr int) {
	if addr < 0 || addr >= len(m.cells) {
		panic(fmt.Sprintf("memory: address %d out of range [0,%d)", addr, len(m.cells)))
	}
}

// Read returns the word at addr.
func (m *Memory) Read(addr int) word.Word {
	m.checkAddr(addr)
	return m.cells[addr]
}

// Write stores v at addr, masked to the memory width.
func (m *Memory) Write(addr int, v word.Word) {
	m.checkAddr(addr)
	m.cells[addr] = v.Mask(m.width)
}

// Fill sets every word to v.
func (m *Memory) Fill(v word.Word) {
	v = v.Mask(m.width)
	for i := range m.cells {
		m.cells[i] = v
	}
}

// Randomize fills the memory with pseudo-random contents from r. It is
// the standard way to model the unknown pre-existing data a transparent
// test must preserve.
func (m *Memory) Randomize(r *rand.Rand) {
	for i := range m.cells {
		m.cells[i] = word.Word{Hi: r.Uint64(), Lo: r.Uint64()}.Mask(m.width)
	}
}

// RandomizeSeed fills the memory with deterministic pseudo-random
// contents derived from seed with a splitmix64 stream — the same
// finalizer internal/campaign derives per-cell seeds with. Unlike
// Randomize it carries no math/rand state, so any two simulators
// given the same (geometry, seed) draw bit-identical initial contents;
// the fault-simulation fast path and its naive counterpart rely on
// this to agree on the pre-existing data a transparent test preserves.
func (m *Memory) RandomizeSeed(seed int64) {
	s := uint64(seed)
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range m.cells {
		hi := next()
		lo := next()
		m.cells[i] = word.Word{Hi: hi, Lo: lo}.Mask(m.width)
	}
}

// Snapshot returns a copy of the current contents.
func (m *Memory) Snapshot() []word.Word {
	out := make([]word.Word, len(m.cells))
	copy(out, m.cells)
	return out
}

// Restore overwrites the contents from a snapshot taken on a memory of
// identical geometry.
func (m *Memory) Restore(snapshot []word.Word) error {
	if len(snapshot) != len(m.cells) {
		return fmt.Errorf("memory: snapshot has %d words, memory has %d", len(snapshot), len(m.cells))
	}
	for i, v := range snapshot {
		m.cells[i] = v.Mask(m.width)
	}
	return nil
}

// Equal reports whether the contents match the snapshot exactly.
func (m *Memory) Equal(snapshot []word.Word) bool {
	if len(snapshot) != len(m.cells) {
		return false
	}
	for i, v := range snapshot {
		if m.cells[i] != v.Mask(m.width) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the memory.
func (m *Memory) Clone() *Memory {
	return &Memory{width: m.width, cells: m.Snapshot()}
}

// AccessKind tags observed operations.
type AccessKind int

const (
	// AccessRead is a read access.
	AccessRead AccessKind = iota
	// AccessWrite is a write access.
	AccessWrite
)

// Access describes one observed memory operation. For reads, Value is
// the value returned; for writes, Value is the value stored and Old the
// value it replaced.
type Access struct {
	Kind  AccessKind
	Addr  int
	Value word.Word
	Old   word.Word
}

// Observer receives every access performed through an Observed
// wrapper.
type Observer interface {
	Observe(Access)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Access)

// Observe implements Observer.
func (f ObserverFunc) Observe(a Access) { f(a) }

// Observed wraps an Accessor and reports every access to an Observer.
// The wrapper itself never modifies data.
type Observed struct {
	Base Accessor
	Obs  Observer
}

var _ Accessor = (*Observed)(nil)

// NewObserved wraps base so that obs sees every access.
func NewObserved(base Accessor, obs Observer) *Observed {
	return &Observed{Base: base, Obs: obs}
}

// Read implements Accessor.
func (o *Observed) Read(addr int) word.Word {
	v := o.Base.Read(addr)
	o.Obs.Observe(Access{Kind: AccessRead, Addr: addr, Value: v})
	return v
}

// Write implements Accessor.
func (o *Observed) Write(addr int, v word.Word) {
	old := o.Base.Read(addr)
	o.Base.Write(addr, v)
	o.Obs.Observe(Access{Kind: AccessWrite, Addr: addr, Value: v.Mask(o.Base.Width()), Old: old})
}

// Words implements Accessor.
func (o *Observed) Words() int { return o.Base.Words() }

// Width implements Accessor.
func (o *Observed) Width() int { return o.Base.Width() }
