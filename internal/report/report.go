// Package report renders aligned text tables — the presentation layer
// every command-line tool and the campaign aggregate's text form share.
// The paper communicates its results as tables (Tables 1–3, the
// Section 5 coverage matrices); this package is how the reproduction
// prints the same artifacts, and how cmd/faultsim, cmd/tables and the
// campaign engine's Render keep one consistent look.
//
// Stdlib-only, no external tabwriter quirks: columns are padded to
// their widest cell, headers are underlined, and an optional title
// precedes the table. Output is deterministic — rows render exactly in
// insertion order — so golden tests can pin it byte for byte.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// widths returns the per-column display widths.
func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	measure := func(cells []string) {
		for i, c := range cells {
			if l := len([]rune(c)); l > w[i] {
				w[i] = l
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// Render formats the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(w); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := w[i] - len([]rune(cell)); pad > 0 && i < len(w)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		rule := make([]string, len(w))
		for i := range rule {
			rule[i] = strings.Repeat("-", w[i])
		}
		line(rule)
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
