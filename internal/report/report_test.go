package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "22")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Fatalf("rule = %q", lines[2])
	}
	// Value column alignment: "x" padded to the width of "longer".
	if !strings.Contains(lines[3], "x       1") {
		t.Fatalf("row not aligned: %q", lines[3])
	}
}

func TestRenderNoHeader(t *testing.T) {
	tb := &Table{}
	tb.AddRow("a", "b")
	out := tb.Render()
	if strings.Contains(out, "-") {
		t.Fatalf("headerless table has a rule: %q", out)
	}
	if !strings.Contains(out, "a  b") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("1")
	tb.AddRow("1", "2", "3")
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Fatalf("wide row lost: %q", out)
	}
}

func TestRenderUnicodeWidths(t *testing.T) {
	tb := &Table{Header: []string{"op", "note"}}
	tb.AddRow("⇑(r0,w1)", "ascending")
	out := tb.Render()
	if !strings.Contains(out, "⇑(r0,w1)") {
		t.Fatalf("unicode row mangled: %q", out)
	}
}
