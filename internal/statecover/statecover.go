// Package statecover instruments march-test executions to reproduce
// the state-coverage analysis of the paper's Figure 1.
//
// Figure 1(a) shows all states two arbitrary cells (or words) traverse
// while a coupling-fault-complete march test runs: both cells must
// visit all four joint values, every single-cell transition must occur
// against both values of the partner, and every cell must be read in
// every joint state. Figure 1(b) shows the written-then-read data
// patterns any two bits *within* a word must exhibit.
//
// The trackers work in the relative data domain of transparent
// testing: a cell's value is recorded as 0 while it equals its initial
// content and 1 while complemented, so the same machinery analyzes
// nontransparent runs (zero-initialized memory) and transparent runs
// (arbitrary contents) and reproduces the paper's D/D̄ notation.
package statecover

import (
	"fmt"
	"strings"

	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Site names one bit cell.
type Site struct {
	Addr int
	Bit  int
}

// String formats the site as addr.bit.
func (s Site) String() string { return fmt.Sprintf("%d.%d", s.Addr, s.Bit) }

// EventKind distinguishes tracked events.
type EventKind int

const (
	// WriteEvent: one of the pair's words was written.
	WriteEvent EventKind = iota
	// ReadEvent: one of the pair's words was read.
	ReadEvent
)

// Event records one access touching the tracked pair, in the relative
// (0 = initial, 1 = complemented) domain.
type Event struct {
	Kind EventKind
	// Cell is 0 or 1 (which tracked site's word was accessed); for
	// intra-word pairs both cells share the word and Cell is 0.
	Cell int
	// VI, VJ are the pair's relative values after the event.
	VI, VJ int
}

// String renders the event like "w0:(1,0)".
func (e Event) String() string {
	k := "r"
	if e.Kind == WriteEvent {
		k = "w"
	}
	return fmt.Sprintf("%s%d:(%d,%d)", k, e.Cell, e.VI, e.VJ)
}

// PairCoverage accumulates the Figure 1(a) conditions for an ordered
// cell pair (i, j).
type PairCoverage struct {
	// I, J are the tracked sites.
	I, J Site
	// Events is the full event sequence (the state traversal).
	Events []Event

	statesVisited map[[2]int]bool
	// transitions: [cell, newValue, partnerValue]
	transitions map[[3]int]bool
	// readsInState: [cell, vi, vj]
	readsInState map[[3]int]bool

	vi, vj int
	initI  int
	initJ  int
	baseI  word.Word
	baseJ  word.Word
}

// NewPairCoverage builds a tracker for sites i and j given the
// memory's initial contents (the reference for the relative domain).
func NewPairCoverage(i, j Site, initial []word.Word) (*PairCoverage, error) {
	if i == j {
		return nil, fmt.Errorf("statecover: pair sites coincide: %s", i)
	}
	if i.Addr >= len(initial) || j.Addr >= len(initial) || i.Addr < 0 || j.Addr < 0 {
		return nil, fmt.Errorf("statecover: site address out of range")
	}
	return &PairCoverage{
		I: i, J: j,
		statesVisited: map[[2]int]bool{{0, 0}: true},
		transitions:   make(map[[3]int]bool),
		readsInState:  make(map[[3]int]bool),
		baseI:         initial[i.Addr],
		baseJ:         initial[j.Addr],
	}, nil
}

// Observe implements memory.Observer.
func (p *PairCoverage) Observe(a memory.Access) {
	touchesI := a.Addr == p.I.Addr
	touchesJ := a.Addr == p.J.Addr
	if !touchesI && !touchesJ {
		return
	}
	switch a.Kind {
	case memory.AccessWrite:
		cell := 0
		if touchesI {
			nv := a.Value.Bit(p.I.Bit) ^ p.baseI.Bit(p.I.Bit)
			if nv != p.vi {
				p.transitions[[3]int{0, nv, p.vj}] = true
			}
			p.vi = nv
		}
		if touchesJ {
			nv := a.Value.Bit(p.J.Bit) ^ p.baseJ.Bit(p.J.Bit)
			if nv != p.vj {
				p.transitions[[3]int{1, nv, p.vi}] = true
			}
			p.vj = nv
			cell = 1
		}
		if touchesI {
			cell = 0
		}
		p.statesVisited[[2]int{p.vi, p.vj}] = true
		p.Events = append(p.Events, Event{Kind: WriteEvent, Cell: cell, VI: p.vi, VJ: p.vj})
	case memory.AccessRead:
		if touchesI {
			p.readsInState[[3]int{0, p.vi, p.vj}] = true
			p.Events = append(p.Events, Event{Kind: ReadEvent, Cell: 0, VI: p.vi, VJ: p.vj})
		}
		if touchesJ {
			p.readsInState[[3]int{1, p.vi, p.vj}] = true
			if !touchesI {
				p.Events = append(p.Events, Event{Kind: ReadEvent, Cell: 1, VI: p.vi, VJ: p.vj})
			}
		}
	}
}

// AllStatesVisited reports whether the pair visited all four joint
// values.
func (p *PairCoverage) AllStatesVisited() bool {
	for _, s := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if !p.statesVisited[s] {
			return false
		}
	}
	return true
}

// AllTransitionsCovered reports whether each cell transitioned in both
// directions against both partner values (8 combinations) — the
// excitation conditions for CFid/CFin in both roles.
func (p *PairCoverage) AllTransitionsCovered() bool {
	for cell := 0; cell <= 1; cell++ {
		for nv := 0; nv <= 1; nv++ {
			for pv := 0; pv <= 1; pv++ {
				if !p.transitions[[3]int{cell, nv, pv}] {
					return false
				}
			}
		}
	}
	return true
}

// AllReadsCovered reports whether each cell was read in all four joint
// states — the observation conditions for CFst in both roles.
func (p *PairCoverage) AllReadsCovered() bool {
	for cell := 0; cell <= 1; cell++ {
		for vi := 0; vi <= 1; vi++ {
			for vj := 0; vj <= 1; vj++ {
				if !p.readsInState[[3]int{cell, vi, vj}] {
					return false
				}
			}
		}
	}
	return true
}

// Complete reports the full Figure 1(a) condition set.
func (p *PairCoverage) Complete() bool {
	return p.AllStatesVisited() && p.AllTransitionsCovered() && p.AllReadsCovered()
}

// Traversal renders the numbered state sequence, the textual analogue
// of Figure 1(a)'s 1..18 edge walk.
func (p *PairCoverage) Traversal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pair (%s,%s):", p.I, p.J)
	for n, e := range p.Events {
		fmt.Fprintf(&b, " %d:%s", n+1, e)
	}
	return b.String()
}

// TrackPair runs the test on mem while tracking the pair, returning
// the coverage record. The memory is modified by the run exactly as a
// normal execution would.
func TrackPair(t *march.Test, mem *memory.Memory, i, j Site) (*PairCoverage, error) {
	initial := mem.Snapshot()
	pc, err := NewPairCoverage(i, j, initial)
	if err != nil {
		return nil, err
	}
	obs := memory.NewObserved(mem, pc)
	if _, err := march.Run(t, obs, march.RunOptions{Initial: initial}); err != nil {
		return nil, err
	}
	return pc, nil
}

// IntraPattern is a written-then-read data pattern of a bit pair
// within one word, in the relative domain: (0,0) means both bits at
// initial value, (1,0) means the first complemented, and so on —
// the conditions of Figure 1(b).
type IntraPattern [2]int

// IntraCoverage tracks the Figure 1(b) conditions for two bits p and q
// of one word.
type IntraCoverage struct {
	Addr int
	P, Q int

	written     map[IntraPattern]bool
	writtenRead map[IntraPattern]bool
	base        word.Word
	cur         IntraPattern
	pending     bool
}

// NewIntraCoverage builds a tracker for bits p and q of the word at
// addr, with the memory's initial contents as reference.
func NewIntraCoverage(addr, p, q int, initial []word.Word) (*IntraCoverage, error) {
	if p == q {
		return nil, fmt.Errorf("statecover: intra-word bits coincide: %d", p)
	}
	if addr < 0 || addr >= len(initial) {
		return nil, fmt.Errorf("statecover: address %d out of range", addr)
	}
	return &IntraCoverage{
		Addr: addr, P: p, Q: q,
		written:     make(map[IntraPattern]bool),
		writtenRead: make(map[IntraPattern]bool),
		base:        initial[addr],
	}, nil
}

// Observe implements memory.Observer.
func (c *IntraCoverage) Observe(a memory.Access) {
	if a.Addr != c.Addr {
		return
	}
	pat := IntraPattern{
		a.Value.Bit(c.P) ^ c.base.Bit(c.P),
		a.Value.Bit(c.Q) ^ c.base.Bit(c.Q),
	}
	switch a.Kind {
	case memory.AccessWrite:
		c.written[pat] = true
		c.cur = pat
		c.pending = true
	case memory.AccessRead:
		if c.pending && pat == c.cur {
			c.writtenRead[pat] = true
			c.pending = false
		}
	}
}

// Written reports whether the pattern was ever written.
func (c *IntraCoverage) Written(p IntraPattern) bool { return c.written[p] }

// WrittenThenRead reports whether the pattern was written and
// subsequently read back — the (w xy; r xy) condition of Figure 1(b).
func (c *IntraCoverage) WrittenThenRead(p IntraPattern) bool { return c.writtenRead[p] }

// ConditionsMet counts how many of the four Figure 1(b) conditions
// hold.
func (c *IntraCoverage) ConditionsMet() int {
	n := 0
	for _, p := range []IntraPattern{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if c.writtenRead[p] {
			n++
		}
	}
	return n
}

// TrackIntraPair runs the test on mem while tracking bits p and q of
// the word at addr.
func TrackIntraPair(t *march.Test, mem *memory.Memory, addr, p, q int) (*IntraCoverage, error) {
	initial := mem.Snapshot()
	ic, err := NewIntraCoverage(addr, p, q, initial)
	if err != nil {
		return nil, err
	}
	obs := memory.NewObserved(mem, ic)
	if _, err := march.Run(t, obs, march.RunOptions{Initial: initial}); err != nil {
		return nil, err
	}
	return ic, nil
}
