package statecover

import (
	"math/rand"
	"strings"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/march"
	"twmarch/internal/memory"
)

// Figure 1(a) for the bit-oriented March C-: any two cells traverse
// all joint states, all transitions and all read conditions. This is
// the classical argument for its 100% coupling-fault coverage.
func TestFigure1aMarchCMinusBitLevel(t *testing.T) {
	tst := march.MustLookup("March C-")
	for _, pair := range [][2]int{{0, 1}, {0, 3}, {2, 3}} {
		mem := memory.MustNew(4, 1)
		pc, err := TrackPair(tst, mem, Site{Addr: pair[0]}, Site{Addr: pair[1]})
		if err != nil {
			t.Fatal(err)
		}
		if !pc.AllStatesVisited() {
			t.Errorf("pair %v: joint states incomplete", pair)
		}
		if !pc.AllTransitionsCovered() {
			t.Errorf("pair %v: transitions incomplete", pair)
		}
		if !pc.AllReadsCovered() {
			t.Errorf("pair %v: read conditions incomplete", pair)
		}
		if !pc.Complete() {
			t.Errorf("pair %v: Figure 1(a) conditions not met", pair)
		}
	}
}

// MATS+ famously does not cover coupling faults; its pairs must not
// satisfy the full Figure 1(a) conditions (harness sanity).
func TestFigure1aMATSPlusIncomplete(t *testing.T) {
	mem := memory.MustNew(4, 1)
	pc, err := TrackPair(march.MustLookup("MATS+"), mem, Site{Addr: 0}, Site{Addr: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pc.Complete() {
		t.Fatal("MATS+ should not meet the full Figure 1(a) conditions")
	}
}

// Figure 1(a) at word level: TSMarch treats solid words as big bits,
// so any two *words* traverse the full state set under the transparent
// test, for arbitrary initial contents. The tracked sites are one bit
// per word; in the relative domain the word-level argument is exactly
// the per-bit one.
func TestFigure1aTSMarchWordLevel(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for _, pair := range [][2]Site{
		{{Addr: 0, Bit: 0}, {Addr: 1, Bit: 0}},
		{{Addr: 0, Bit: 3}, {Addr: 2, Bit: 6}},
		{{Addr: 1, Bit: 7}, {Addr: 3, Bit: 2}},
	} {
		mem := memory.MustNew(4, 8)
		mem.Randomize(r)
		pc, err := TrackPair(res.TSMarch, mem, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !pc.Complete() {
			t.Errorf("pair (%s,%s): TSMarch does not meet Figure 1(a)", pair[0], pair[1])
		}
	}
}

// The traversal rendering is the textual reproduction of the figure's
// numbered walk; for a 2-cell memory under March C- it lists every
// event in order.
func TestTraversalRendering(t *testing.T) {
	mem := memory.MustNew(2, 1)
	pc, err := TrackPair(march.MustLookup("March C-"), mem, Site{Addr: 0}, Site{Addr: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := pc.Traversal()
	if !strings.HasPrefix(s, "pair (0.0,1.0):") {
		t.Fatalf("traversal header: %q", s)
	}
	// March C- has 10 ops on each of 2 cells = 20 events.
	if len(pc.Events) != 20 {
		t.Fatalf("events = %d, want 20", len(pc.Events))
	}
	if !strings.Contains(s, " 1:") || !strings.Contains(s, " 20:") {
		t.Fatalf("traversal not numbered: %q", s)
	}
}

// Figure 1(b) for the proposed scheme: the solid phases give the two
// uniform written-and-read patterns and ATMarch adds a mixed pattern
// for every bit pair — at least 3 of the 4 conditions. Pairs whose
// solo-flip backgrounds exist in both polarities reach all 4; bit 0
// (set in every checkerboard) and bit W-1 (never flipped alone) cap
// their pairs at 3. This measured asymmetry is a reproduction finding
// of this port, beyond what the paper tabulates.
func TestFigure1bTWMarchConditions(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	counts := map[int]int{}
	for p := 0; p < 8; p++ {
		for q := 0; q < 8; q++ {
			if p == q {
				continue
			}
			mem := memory.MustNew(2, 8)
			mem.Randomize(r)
			ic, err := TrackIntraPair(res.TWMarch, mem, 0, p, q)
			if err != nil {
				t.Fatal(err)
			}
			n := ic.ConditionsMet()
			counts[n]++
			if n < 3 {
				t.Errorf("pair (%d,%d): only %d Figure 1(b) conditions met", p, q, n)
			}
			// Uniform patterns always come from the solid phases.
			if !ic.WrittenThenRead(IntraPattern{0, 0}) || !ic.WrittenThenRead(IntraPattern{1, 1}) {
				t.Errorf("pair (%d,%d): uniform conditions missing", p, q)
			}
		}
	}
	if counts[4] == 0 {
		t.Error("no pair met all 4 conditions; checkerboards broken")
	}
	if counts[3] == 0 {
		t.Error("expected some pairs capped at 3 conditions (bit-0/bit-7 asymmetry)")
	}
	t.Logf("Figure 1(b) conditions met: %d pairs with 4/4, %d pairs with 3/4", counts[4], counts[3])
}

// Scheme 1 walks complementary backgrounds and reaches all four
// conditions for every pair — the coverage it buys with its length.
func TestFigure1bScheme1AllConditions(t *testing.T) {
	s1, err := core.Scheme1(march.MustLookup("March C-"), 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(10))
	for p := 0; p < 8; p++ {
		for q := p + 1; q < 8; q++ {
			mem := memory.MustNew(2, 8)
			mem.Randomize(r)
			ic, err := TrackIntraPair(s1.Test, mem, 0, p, q)
			if err != nil {
				t.Fatal(err)
			}
			if ic.ConditionsMet() != 4 {
				t.Errorf("pair (%d,%d): Scheme 1 met %d/4 conditions", p, q, ic.ConditionsMet())
			}
		}
	}
}

func TestTrackerValidation(t *testing.T) {
	mem := memory.MustNew(2, 4)
	if _, err := NewPairCoverage(Site{0, 0}, Site{0, 0}, mem.Snapshot()); err == nil {
		t.Error("coinciding pair accepted")
	}
	if _, err := NewPairCoverage(Site{Addr: 5}, Site{Addr: 0}, mem.Snapshot()); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := NewIntraCoverage(0, 2, 2, mem.Snapshot()); err == nil {
		t.Error("coinciding bits accepted")
	}
	if _, err := NewIntraCoverage(9, 0, 1, mem.Snapshot()); err == nil {
		t.Error("out-of-range address accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: WriteEvent, Cell: 1, VI: 0, VJ: 1}
	if e.String() != "w1:(0,1)" {
		t.Fatalf("event string = %q", e.String())
	}
	e2 := Event{Kind: ReadEvent, Cell: 0, VI: 1, VJ: 1}
	if e2.String() != "r0:(1,1)" {
		t.Fatalf("event string = %q", e2.String())
	}
}

// The relative domain makes transparent and nontransparent runs look
// identical: March C- on zeroed memory and TMarch C- on random memory
// produce the same event sequences for the same pair.
func TestRelativeDomainEquivalence(t *testing.T) {
	bt, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	memA := memory.MustNew(3, 1)
	// Drop the initialization element for the nontransparent run by
	// starting from zeroed memory; the transparent test has no init.
	pcA, err := TrackPair(bt.Transparent, memA, Site{Addr: 0}, Site{Addr: 2})
	if err != nil {
		t.Fatal(err)
	}
	memB := memory.MustNew(3, 1)
	memB.Randomize(rand.New(rand.NewSource(77)))
	pcB, err := TrackPair(bt.Transparent, memB, Site{Addr: 0}, Site{Addr: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pcA.Events) != len(pcB.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(pcA.Events), len(pcB.Events))
	}
	for i := range pcA.Events {
		if pcA.Events[i] != pcB.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, pcA.Events[i], pcB.Events[i])
		}
	}
}
