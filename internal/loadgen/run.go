package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/tracing"
)

// Config parameterizes one twmload run.
type Config struct {
	Profile  string        // workload profile name (see ProfileNames)
	Seed     int64         // root seed; (profile, seed) replays the same specs
	Duration time.Duration // submission window; drain and verify run after
	Workers  int           // twmw fleet size
	MaxJobs  int           // cap on total submissions (0 = unlimited)
	LeaseTTL time.Duration // coordinator lease TTL
	Dir      string        // scratch dir ("" = temp dir, removed unless Keep)
	TwmdBin  string        // prebuilt twmd ("" = build into Dir)
	TwmwBin  string        // prebuilt twmw ("" = build into Dir)
	Race     bool          // build the daemons with -race
	Keep     bool          // keep the scratch dir for postmortems
	Logf     func(format string, args ...any)
}

// tracked is the harness-side registry of every submitted campaign —
// the ground truth the byte-identity verification replays against.
type trackedJob struct {
	id       string
	spec     campaign.Spec
	canceled bool // the session asked for cancellation
	// trace is the session's trace id (32 hex) and parentSpan the span
	// id the submit's traceparent named as parent — the two facts the
	// trace-continuity checks verify the fleet's spans against.
	trace      string
	parentSpan string
	final      JobStatus
}

// Run executes one load/chaos soak: build (if needed) and spawn the
// cluster, drive the profile's sessions for the duration, run the
// chaos script when the profile asks for it, drain every submitted
// job to a terminal state, verify byte-identity of all completed
// results against a local engine run, apply the final accounting
// checks, and fold everything into a Report. The error return is for
// harness failures (cannot build, cannot spawn); invariant breaks are
// reported as Report.Violations.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	profile, err := ProfileByName(cfg.Profile)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 5 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	dir := cfg.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "twmload-")
		if err != nil {
			return nil, err
		}
		if !cfg.Keep {
			defer os.RemoveAll(dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	logf("scratch dir %s", dir)

	twmdBin, twmwBin := cfg.TwmdBin, cfg.TwmwBin
	if twmdBin == "" || twmwBin == "" {
		logf("building twmd and twmw (race=%v)", cfg.Race)
		twmdBin, twmwBin, err = BuildBinaries(ctx, dir, cfg.Race)
		if err != nil {
			return nil, err
		}
	}

	port, err := FreePort()
	if err != nil {
		return nil, err
	}
	pc := &ProcCluster{
		Dir:      dir,
		TwmdBin:  twmdBin,
		TwmwBin:  twmwBin,
		Addr:     fmt.Sprintf("127.0.0.1:%d", port),
		LeaseTTL: cfg.LeaseTTL,
		Chaos:    cfg.Profile == "chaos",
		Logf:     logf,
	}
	defer pc.StopAll()
	if err := pc.StartCoordinator(ctx); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		if err := pc.StartWorker(ctx, i); err != nil {
			return nil, err
		}
	}

	rec := NewRecorder()
	api := &APIClient{Base: pc.BaseURL(), Rec: rec, HTTP: &http.Client{}}

	var (
		mu        sync.Mutex
		jobs      []*trackedJob
		submitted atomic.Int64
	)
	track := func(id string, spec campaign.Spec, canceled bool, sc tracing.SpanContext) *trackedJob {
		tj := &trackedJob{id: id, spec: spec, canceled: canceled,
			trace: sc.Trace.String(), parentSpan: sc.Span.String()}
		mu.Lock()
		jobs = append(jobs, tj)
		mu.Unlock()
		return tj
	}

	start := time.Now()
	subDeadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i, plan := range profile.Plans {
		wg.Add(1)
		go func(i int, plan SessionPlan) {
			defer wg.Done()
			runSession(ctx, api, plan, SessionRand(cfg.Seed, i), subDeadline, cfg.MaxJobs, &submitted, track, logf)
		}(i, plan)
	}

	cc := &ChaosController{Cluster: pc, Rec: rec, Logf: logf}
	chaosDone := make(chan struct{})
	if pc.Chaos {
		go func() {
			defer close(chaosDone)
			cc.Run(ctx)
		}()
	} else {
		close(chaosDone)
	}

	wg.Wait()
	<-chaosDone
	logf("submission window closed: %d campaigns submitted", submitted.Load())

	// Drain: every tracked job must reach a terminal state. The
	// coordinator and fleet are healthy again by now, so anything that
	// stays live past the budget is stuck — a violation, not a wait.
	drainCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	drain(drainCtx, api, rec, jobs)

	// Byte-identity: each completed campaign's served aggregate must
	// equal a local single-process engine run of the same spec.
	stats := verify(ctx, api, rec, jobs, logf)
	stats.Submitted = int(submitted.Load())

	// Trace continuity: each completed campaign's span timeline must
	// hang off the traceparent its session minted, with no orphans.
	traceChecks(ctx, api, rec, jobs, logf)

	// Final accounting (all profiles; the worker-retry check only
	// applies when faults were injected).
	urls := make([]string, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		urls = append(urls, pc.WorkerMetricsURL(i))
	}
	cc.FinalChecks(urls)

	rep := &Report{
		Profile:    cfg.Profile,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		DurationNS: int64(time.Since(start)),
		Endpoints:  rec.Snapshot(time.Since(start)),
		Jobs:       stats,
		Chaos:      cc.Stats,
		Violations: rec.Violations(),
	}
	sort.Strings(rep.Violations)
	return rep, nil
}

// runSession is one client session: submit a campaign, follow it per
// the plan, think, repeat until the submission deadline or job cap.
// Every submission carries a traceparent minted here — one trace per
// submission under a session-known parent span — so after drain the
// harness can ask the fleet for each job's trace by an id it chose
// itself and verify the span tree hangs together.
func runSession(ctx context.Context, api *APIClient, plan SessionPlan, rng *rand.Rand,
	deadline time.Time, maxJobs int, submitted *atomic.Int64,
	track func(string, campaign.Spec, bool, tracing.SpanContext) *trackedJob, logf func(string, ...any)) {
	if plan.Kind == "query" {
		runQuerySession(ctx, api, plan, rng, deadline)
		return
	}
	for n := 0; time.Now().Before(deadline); n++ {
		if ctx.Err() != nil {
			return
		}
		if maxJobs > 0 && submitted.Load() >= int64(maxJobs) {
			return
		}
		spec := SpecForKind(plan.Kind, rng, n)
		sc := tracing.SpanContext{Trace: tracing.NewTraceID(), Span: tracing.NewSpanID(), Sampled: true}
		id, err := api.Submit(ctx, spec, sc.TraceParent())
		if err != nil {
			// Expected during coordinator outages: count it (Observe
			// already did) and retry after a beat.
			sleepCtx(ctx, 200*time.Millisecond)
			continue
		}
		submitted.Add(1)
		tj := track(id, spec, plan.Kind == "cancel", sc)

		switch plan.Kind {
		case "cancel":
			// Let it run long enough to be mid-flight, then cancel.
			sleepCtx(ctx, time.Duration(50+rng.Intn(200))*time.Millisecond)
			api.Cancel(ctx, id)
			followStatus(ctx, api, tj, plan.Poll, deadline)
		case "streaming":
			// Tail the event stream to completion (or until it breaks —
			// a chaos kill mid-stream is recorded, not fatal).
			api.TailEvents(ctx, id, tj.spec.CellCount())
			followStatus(ctx, api, tj, plan.Poll, deadline)
		default:
			followStatus(ctx, api, tj, plan.Poll, deadline)
		}
		sleepCtx(ctx, plan.Think)
	}
}

// runQuerySession is the read-only session kind: it submits nothing
// (so it is exempt from the MaxJobs cap) and drives the warehouse
// query surface for the whole window, following up to two
// continuation pages per query the way a dashboard would. Failures
// during coordinator outages are recorded by Observe and retried
// after a beat, like every other endpoint.
func runQuerySession(ctx context.Context, api *APIClient, plan SessionPlan, rng *rand.Rand, deadline time.Time) {
	for n := 0; time.Now().Before(deadline); n++ {
		if ctx.Err() != nil {
			return
		}
		params := QueryParamsFor(rng, n)
		page, err := api.Query(ctx, params)
		if err != nil {
			sleepCtx(ctx, 200*time.Millisecond)
			continue
		}
		for follow := 0; follow < 2 && page.NextToken != ""; follow++ {
			page, err = api.Query(ctx, params+"&page_token="+url.QueryEscape(page.NextToken))
			if err != nil {
				break
			}
		}
		if !sleepCtx(ctx, plan.Poll) {
			return
		}
	}
}

// followStatus polls one job until it settles or the deadline passes
// (the drain phase finishes the slow ones).
func followStatus(ctx context.Context, api *APIClient, tj *trackedJob, poll time.Duration, deadline time.Time) {
	for time.Now().Before(deadline) {
		st, err := api.Status(ctx, tj.id)
		if err == nil {
			tj.final = st
			if st.Terminal() {
				return
			}
		}
		if !sleepCtx(ctx, poll) {
			return
		}
	}
}

// drain polls every non-terminal tracked job until it settles; a job
// still live when the context expires is a violation.
func drain(ctx context.Context, api *APIClient, rec *Recorder, jobs []*trackedJob) {
	for {
		live := 0
		for _, tj := range jobs {
			if tj.final.Terminal() {
				continue
			}
			st, err := api.Status(ctx, tj.id)
			if err == nil {
				tj.final = st
			}
			if !tj.final.Terminal() {
				live++
			}
		}
		if live == 0 {
			return
		}
		select {
		case <-ctx.Done():
			for _, tj := range jobs {
				if !tj.final.Terminal() {
					rec.Violation("drain: job %s (%s) still %q when the drain budget expired",
						tj.id, tj.spec.Name, tj.final.State)
				}
			}
			return
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// verify re-derives every completed campaign locally and demands the
// cluster served exactly those bytes, whatever faults were injected.
func verify(ctx context.Context, api *APIClient, rec *Recorder, jobs []*trackedJob, logf func(string, ...any)) JobStats {
	var stats JobStats
	eng := campaign.Engine{}
	for _, tj := range jobs {
		switch tj.final.State {
		case "done":
			stats.Done++
		case "canceled":
			stats.Canceled++
			continue
		case "failed":
			stats.Failed++
			if !tj.canceled {
				rec.Violation("job %s (%s) failed: %s", tj.id, tj.spec.Name, tj.final.Error)
			}
			continue
		default:
			continue // already flagged by drain
		}
		served, err := api.Results(ctx, tj.id)
		if err != nil {
			rec.Violation("job %s done but results unfetchable: %v", tj.id, err)
			continue
		}
		agg, err := eng.Stream(ctx, tj.spec, &campaign.Progress{}, nil)
		if err != nil {
			rec.Violation("job %s: local reference run failed: %v", tj.id, err)
			continue
		}
		want, err := agg.Canonical()
		if err != nil {
			rec.Violation("job %s: canonicalize reference: %v", tj.id, err)
			continue
		}
		want = append(want, '\n')
		if !bytes.Equal(served, want) {
			rec.Violation("byte-identity: job %s (%s) served %d bytes diverging from the local reference run",
				tj.id, tj.spec.Name, len(served))
			continue
		}
		stats.Verified++
	}
	logf("verified %d/%d completed campaigns byte-identical", stats.Verified, stats.Done)
	return stats
}

// sleepCtx sleeps unless the context ends first; reports survival.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
