package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"twmarch/internal/campaign"
)

// JobStatus is the subset of twmd's campaign status the harness polls.
type JobStatus struct {
	ID       string  `json:"id"`
	State    string  `json:"state"`
	Cells    int     `json:"cells"`
	Done     int64   `json:"done"`
	Fraction float64 `json:"fraction"`
	Error    string  `json:"error,omitempty"`
}

// Terminal reports whether the job has settled.
func (s JobStatus) Terminal() bool {
	switch s.State {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// APIClient drives the twmd campaign API, recording every request's
// latency and outcome into the Recorder under a stable endpoint name
// (submit, status, results, cancel, events). A request "fails" when
// the transport errors or the server answers 5xx — exactly the
// conditions a coordinator kill produces — so error rates in the
// report expose how much traffic each outage absorbed.
type APIClient struct {
	Base string
	Rec  *Recorder
	HTTP *http.Client
}

func (c *APIClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// observe times fn against endpoint and folds the outcome into the
// Recorder.
func (c *APIClient) observe(endpoint string, fn func() (int, error)) error {
	start := time.Now()
	code, err := fn()
	c.Rec.Observe(endpoint, time.Since(start), err != nil || code >= 500)
	return err
}

// Submit posts a campaign spec and returns the job id. A non-empty
// traceparent is sent as the W3C header, putting the job's whole span
// tree on a trace id the harness knows in advance — the hook the
// post-drain trace-continuity checks hang off.
func (c *APIClient) Submit(ctx context.Context, spec campaign.Spec, traceparent string) (string, error) {
	var id string
	err := c.observe("submit", func() (int, error) {
		raw, err := json.Marshal(spec)
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/campaigns", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return resp.StatusCode, fmt.Errorf("submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, fmt.Errorf("submit: decode: %w", err)
		}
		id = out.ID
		return resp.StatusCode, nil
	})
	return id, err
}

// Status polls one job.
func (c *APIClient) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.observe("status", func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/campaigns/"+id, nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("status %s: %d", id, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return resp.StatusCode, fmt.Errorf("status %s: decode: %w", id, err)
		}
		return resp.StatusCode, nil
	})
	return st, err
}

// Results fetches a done job's canonical aggregate bytes.
func (c *APIClient) Results(ctx context.Context, id string) ([]byte, error) {
	var body []byte
	err := c.observe("results", func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/campaigns/"+id+"/results", nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("results %s: status %d", id, resp.StatusCode)
		}
		body, err = io.ReadAll(resp.Body)
		return resp.StatusCode, err
	})
	return body, err
}

// Cancel requests cancellation of a running job.
func (c *APIClient) Cancel(ctx context.Context, id string) error {
	return c.observe("cancel", func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/campaigns/"+id+"/cancel", nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	})
}

// TailEvents follows the job's NDJSON event stream until it closes,
// maxEvents lines arrive, or the context ends, returning the line
// count. Each tail is one long-lived request; its recorded latency is
// the stream's lifetime, so the events endpoint's histogram measures
// stream duration rather than per-line latency.
func (c *APIClient) TailEvents(ctx context.Context, id string, maxEvents int) (int, error) {
	var lines int
	err := c.observe("events", func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/campaigns/"+id+"/events", nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("events %s: status %d", id, resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) > 0 {
				lines++
			}
			if maxEvents > 0 && lines >= maxEvents {
				break
			}
		}
		// A stream cut mid-line by a coordinator kill is an error for
		// accounting, but the lines already read still count.
		return resp.StatusCode, sc.Err()
	})
	return lines, err
}

// QueryPage is the subset of one /campaigns/query response page the
// harness consumes.
type QueryPage struct {
	Results   []json.RawMessage `json:"results"`
	NextToken string            `json:"next_token"`
	Scanned   int               `json:"scanned"`
}

// Query issues one warehouse read against GET /campaigns/query with
// the given raw query string (e.g. "test=MATS&width=4&limit=50"),
// recording it under the "query" endpoint. The returned page carries
// the match count and continuation token so a session can walk
// further pages.
func (c *APIClient) Query(ctx context.Context, rawQuery string) (QueryPage, error) {
	var page QueryPage
	err := c.observe("query", func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/campaigns/query?"+rawQuery, nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("query: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			return resp.StatusCode, fmt.Errorf("query: decode: %w", err)
		}
		return resp.StatusCode, nil
	})
	return page, err
}

// Healthy reports whether the coordinator answers its liveness probe.
// It does not record into the histogram: health polls are harness
// bookkeeping, not workload.
func (c *APIClient) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
