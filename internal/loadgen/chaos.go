package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"twmarch/internal/cluster"
)

// ChaosController scripts the fault sequence of the chaos profile
// against a live ProcCluster while the load sessions keep driving
// traffic. Every fault is verified against the coordinator's own
// accounting: injected delays and errors must appear one-for-one in
// twm_cluster_chaos_injections_total, a worker SIGKILL mid-lease must
// surface as lease expiries that are each either requeued or
// abandoned, and a coordinator SIGKILL+restart must replay its live
// jobs from the journal. Failures to account are recorded as
// violations, which fail the run.
type ChaosController struct {
	Cluster *ProcCluster
	Rec     *Recorder
	Logf    func(format string, args ...any)

	Stats ChaosStats
}

func (cc *ChaosController) logf(format string, args ...any) {
	if cc.Logf != nil {
		cc.Logf("chaos: "+format, args...)
	}
}

func (cc *ChaosController) base() string { return cc.Cluster.BaseURL() }

// arm posts a chaos budget to the coordinator.
func (cc *ChaosController) arm(req cluster.ChaosRequest) (cluster.ChaosStatus, error) {
	raw, _ := json.Marshal(req)
	resp, err := http.Post(cc.base()+"/cluster/chaos", "application/json", bytes.NewReader(raw))
	if err != nil {
		return cluster.ChaosStatus{}, err
	}
	defer resp.Body.Close()
	var st cluster.ChaosStatus
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return st, fmt.Errorf("arm chaos: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (cc *ChaosController) chaosStatus() (cluster.ChaosStatus, error) {
	resp, err := http.Get(cc.base() + "/cluster/chaos")
	if err != nil {
		return cluster.ChaosStatus{}, err
	}
	defer resp.Body.Close()
	var st cluster.ChaosStatus
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("chaos status: %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitSpent polls until the armed budgets are fully injected, then
// returns the cumulative status. On timeout it clears the leftover
// budget so a stalled stage cannot bleed faults into later ones.
func (cc *ChaosController) waitSpent(ctx context.Context, timeout time.Duration) (cluster.ChaosStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := cc.chaosStatus()
		if err == nil && st.PendingDelays == 0 && st.PendingErrors == 0 {
			return st, nil
		}
		if time.Now().After(deadline) {
			cleared, cerr := cc.arm(cluster.ChaosRequest{}) // drop leftovers
			if cerr != nil {
				return cleared, cerr
			}
			cc.logf("budget not fully spent within %v (workers idle?); cleared", timeout)
			return cleared, nil
		}
		select {
		case <-ctx.Done():
			return cluster.ChaosStatus{}, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// metrics scrapes the coordinator's /metrics.
func (cc *ChaosController) metrics() (*PromSnapshot, error) {
	return ScrapeProm(cc.base() + "/metrics")
}

func (cc *ChaosController) leaseEvents(snap *PromSnapshot, kind string) float64 {
	return snap.Sum("twm_cluster_lease_events_total", map[string]string{"kind": kind})
}

// waitWorkerWithLease polls /cluster/workers for any live worker
// holding at least one lease and returns its index, or -1 on timeout.
func (cc *ChaosController) waitWorkerWithLease(ctx context.Context, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 5 * time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(cc.base() + "/cluster/workers")
		if err == nil && resp.StatusCode == http.StatusOK {
			var rows []cluster.WorkerStatus
			err = json.NewDecoder(resp.Body).Decode(&rows)
			resp.Body.Close()
			if err == nil {
				for _, row := range rows {
					n, convErr := strconv.Atoi(strings.TrimPrefix(row.Worker, "loadw"))
					if convErr == nil && row.Leases > 0 && cc.Cluster.workers[n] != nil {
						return n, nil
					}
				}
			}
		} else if resp != nil {
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return -1, nil
}

// Run executes the chaos script. Stage order matters: the injection
// accounting and the worker kill are verified against the first
// coordinator process's counters, which the later SIGKILL wipes.
func (cc *ChaosController) Run(ctx context.Context) {
	// Let the sessions put real work on the queue first.
	select {
	case <-time.After(1500 * time.Millisecond):
	case <-ctx.Done():
		return
	}

	// Stage 1+2+3: response delays, then 429s with Retry-After (the
	// client's header-honoring path), then plain 500s (its backoff
	// path). Workers absorb all of it; the totals must match.
	if _, err := cc.arm(cluster.ChaosRequest{DelayMS: 150, DelayN: 20}); err != nil {
		cc.Rec.Violation("chaos: arm delays: %v", err)
		return
	}
	st, err := cc.waitSpent(ctx, 30*time.Second)
	if err != nil {
		cc.Rec.Violation("chaos: delay stage: %v", err)
		return
	}
	cc.logf("delay stage done: %d injected", st.DelaysInjected)

	if _, err := cc.arm(cluster.ChaosRequest{Code: 429, CodeN: 10, RetryAfter: "1"}); err != nil {
		cc.Rec.Violation("chaos: arm 429s: %v", err)
		return
	}
	if st, err = cc.waitSpent(ctx, 30*time.Second); err != nil {
		cc.Rec.Violation("chaos: 429 stage: %v", err)
		return
	}
	if _, err := cc.arm(cluster.ChaosRequest{Code: 500, CodeN: 6}); err != nil {
		cc.Rec.Violation("chaos: arm 500s: %v", err)
		return
	}
	if st, err = cc.waitSpent(ctx, 30*time.Second); err != nil {
		cc.Rec.Violation("chaos: 500 stage: %v", err)
		return
	}
	cc.Stats.DelaysInjected, cc.Stats.ErrorsInjected = st.DelaysInjected, st.ErrorsInjected
	cc.logf("error stages done: %d errors injected", st.ErrorsInjected)

	// Accounting check 1: the chaos surface's own counters and the
	// /metrics registry must agree exactly.
	snap, err := cc.metrics()
	if err != nil {
		cc.Rec.Violation("chaos: scrape metrics: %v", err)
		return
	}
	chaosKind := func(kind string) float64 {
		return snap.Sum("twm_cluster_chaos_injections_total", map[string]string{"kind": kind})
	}
	if got := chaosKind("delay"); got != float64(st.DelaysInjected) {
		cc.Rec.Violation("chaos accounting: metrics report %v injected delays, chaos status says %d", got, st.DelaysInjected)
	}
	if got := chaosKind("error"); got != float64(st.ErrorsInjected) {
		cc.Rec.Violation("chaos accounting: metrics report %v injected errors, chaos status says %d", got, st.ErrorsInjected)
	}

	// Stage 4: SIGKILL a worker that provably holds a lease. Reject
	// completes first so the victim cannot slip its lease back before
	// the kill lands: a merely *delayed* complete would still be
	// processed by the coordinator after the worker dies (cells
	// simulate fast enough that the victim often sits inside its
	// complete call at the moment we observe the lease), but a
	// rejected one never lands — the victim's retry loop dies with
	// it, so its lease must expire.
	preKill, err := cc.metrics()
	if err != nil {
		cc.Rec.Violation("chaos: scrape metrics before worker kill: %v", err)
		return
	}
	if _, err := cc.arm(cluster.ChaosRequest{Path: "complete", Code: 500, CodeN: 100000}); err != nil {
		cc.Rec.Violation("chaos: arm complete rejection: %v", err)
		return
	}
	victim, err := cc.waitWorkerWithLease(ctx, 30*time.Second)
	if err != nil {
		return // context canceled
	}
	if victim < 0 {
		cc.Rec.Violation("chaos: no worker ever held a lease; cannot test kill-mid-lease")
		return
	}
	if err := cc.Cluster.KillWorker(victim); err != nil {
		cc.Rec.Violation("chaos: kill worker %d: %v", victim, err)
		return
	}
	cc.Stats.WorkerKills++
	cc.arm(cluster.ChaosRequest{}) // unpin completes

	// The victim's leases must expire within the TTL and every expiry
	// must be requeued or abandoned — no cell may leak.
	expireBase := cc.leaseEvents(preKill, "expire")
	deadline := time.Now().Add(cc.Cluster.LeaseTTL + 30*time.Second)
	accounted := false
	for time.Now().Before(deadline) {
		snap, err := cc.metrics()
		if err == nil {
			expires := cc.leaseEvents(snap, "expire")
			requeues := cc.leaseEvents(snap, "requeue")
			abandons := cc.leaseEvents(snap, "abandon")
			if expires > expireBase && expires == requeues+abandons {
				cc.Stats.LeaseExpiries = int64(expires)
				cc.Stats.Requeues = int64(requeues)
				cc.Stats.Abandons = int64(abandons)
				accounted = true
				break
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	if !accounted {
		cc.Rec.Violation("chaos accounting: worker %d killed mid-lease but expiries never balanced (expire == requeue + abandon) within %v",
			victim, cc.Cluster.LeaseTTL+30*time.Second)
	} else {
		cc.logf("worker %d kill accounted: %d expiries = %d requeues + %d abandons",
			victim, cc.Stats.LeaseExpiries, cc.Stats.Requeues, cc.Stats.Abandons)
		cc.checkAbandonedLeaseSpans(ctx)
	}
	if err := cc.Cluster.StartWorker(ctx, victim); err != nil {
		cc.Rec.Violation("chaos: restart worker %d: %v", victim, err)
		return
	}

	// Stage 5: SIGKILL the coordinator mid-campaign and restart it on
	// the same address and datadir. If any job was live at the kill,
	// the restarted process must report journal recoveries.
	hadLive := cc.liveJobs()
	if err := cc.Cluster.KillCoordinator(); err != nil {
		cc.Rec.Violation("chaos: kill coordinator: %v", err)
		return
	}
	cc.Stats.CoordinatorKills++
	select {
	case <-time.After(500 * time.Millisecond):
	case <-ctx.Done():
		return
	}
	if err := cc.Cluster.StartCoordinator(ctx); err != nil {
		cc.Rec.Violation("chaos: restart coordinator: %v", err)
		return
	}
	cc.logf("coordinator restarted after SIGKILL (%d jobs were live)", hadLive)
	if hadLive > 0 {
		recovered := false
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if snap, err := cc.metrics(); err == nil {
				if n := snap.Sum("twm_jobstore_recovered_jobs_total", nil); n >= 1 {
					cc.Stats.RecoveredJobs = int64(n)
					recovered = true
					break
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
		if !recovered {
			cc.Rec.Violation("chaos accounting: %d jobs were live at coordinator SIGKILL but the restart reports zero journal recoveries", hadLive)
		}
	}
}

// checkAbandonedLeaseSpans verifies the kill-mid-lease trace
// accounting: every lease the victim's death expired must have had its
// coordinator-side span closed with an "abandoned" status, so the
// expiries just counted in /metrics are visible on the trace surface
// too. It must run before the coordinator SIGKILL stage — that wipes
// the in-memory span ring these spans live in. Abandoned lease spans
// are tail-kept whatever the sample rate (non-ok status), and errored
// traces are fresh enough here that ring eviction cannot have claimed
// all of them, so finding none at all is a real accounting hole.
func (cc *ChaosController) checkAbandonedLeaseSpans(ctx context.Context) {
	// The rejected completes of the kill setup each mint a newer errored
	// trace; a default-sized page of newest-first traces could be all of
	// those, so ask for enough to reach the job traces behind them.
	client := &http.Client{Timeout: 5 * time.Second}
	spans, err := fetchSpans(ctx, client, cc.base()+"/debug/traces?error=true&limit=1000")
	if err != nil {
		cc.Rec.Violation("chaos: read /debug/traces after worker kill: %v", err)
		return
	}
	abandoned := 0
	for _, sp := range spans {
		if sp.Name == "cluster.lease" && sp.Status == "abandoned" {
			abandoned++
		}
	}
	if abandoned == 0 {
		cc.Rec.Violation("chaos: worker kill expired %d leases but no cluster.lease span is closed abandoned in /debug/traces",
			cc.Stats.LeaseExpiries)
		return
	}
	cc.logf("worker kill traced: %d cluster.lease spans closed abandoned", abandoned)
}

// liveJobs counts non-terminal campaigns on the coordinator.
func (cc *ChaosController) liveJobs() int {
	resp, err := http.Get(cc.base() + "/campaigns")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var rows []JobStatus
	if json.NewDecoder(resp.Body).Decode(&rows) != nil {
		return 0
	}
	n := 0
	for _, row := range rows {
		if !row.Terminal() {
			n++
		}
	}
	return n
}

// FinalChecks runs the end-of-soak accounting that must hold whatever
// profile ran: expiries balance against requeues+abandons in the
// current coordinator's life, and — when faults were injected — the
// surviving workers' own retry counters prove the Client retry path
// actually absorbed them.
func (cc *ChaosController) FinalChecks(workerMetricsURLs []string) {
	snap, err := cc.metrics()
	if err != nil {
		cc.Rec.Violation("final accounting: scrape coordinator metrics: %v", err)
		return
	}
	expires := cc.leaseEvents(snap, "expire")
	requeues := cc.leaseEvents(snap, "requeue")
	abandons := cc.leaseEvents(snap, "abandon")
	if expires != requeues+abandons {
		cc.Rec.Violation("final accounting: %v lease expiries but %v requeues + %v abandons", expires, requeues, abandons)
	}
	var retries float64
	for _, u := range workerMetricsURLs {
		if u == "" {
			continue
		}
		if ws, err := ScrapeProm(u + "/metrics"); err == nil {
			retries += ws.Sum("twm_worker_retries_total", nil)
		}
	}
	cc.Stats.WorkerRetries = int64(retries)
	if (cc.Stats.ErrorsInjected > 0 || cc.Stats.CoordinatorKills > 0) && retries == 0 {
		cc.Rec.Violation("final accounting: faults were injected but no surviving worker recorded a single client retry")
	}
}
