package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// EndpointStats is the per-endpoint summary folded into the Report.
// Latencies are nanoseconds so the JSON is unit-unambiguous and
// diffable by scripts/benchdiff -load.
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
	RPS    float64 `json:"rps"`
}

// JobStats counts campaign outcomes across the run.
type JobStats struct {
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	// Verified counts done jobs whose served results were re-derived
	// locally and matched byte for byte.
	Verified int `json:"verified"`
}

// ChaosStats counts the faults the harness injected and the recovery
// events it confirmed in the coordinator's metrics.
type ChaosStats struct {
	DelaysInjected   int64 `json:"delays_injected,omitempty"`
	ErrorsInjected   int64 `json:"errors_injected,omitempty"`
	WorkerKills      int   `json:"worker_kills,omitempty"`
	CoordinatorKills int   `json:"coordinator_kills,omitempty"`
	LeaseExpiries    int64 `json:"lease_expiries,omitempty"`
	Requeues         int64 `json:"requeues,omitempty"`
	Abandons         int64 `json:"abandons,omitempty"`
	RecoveredJobs    int64 `json:"recovered_jobs,omitempty"`
	WorkerRetries    int64 `json:"worker_retries,omitempty"`
}

// Report is the run summary twmload emits. benchdiff -load compares
// the per-endpoint quantiles against LOAD_BASELINE.json; the driver
// fails the run when Violations is non-empty.
type Report struct {
	Profile    string                   `json:"profile"`
	Seed       int64                    `json:"seed"`
	Workers    int                      `json:"workers"`
	DurationNS int64                    `json:"duration_ns"`
	Endpoints  map[string]EndpointStats `json:"endpoints"`
	Jobs       JobStats                 `json:"jobs"`
	Chaos      ChaosStats               `json:"chaos"`
	Violations []string                 `json:"violations"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadReport loads a Report written by WriteFile.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// EndpointNames returns the report's endpoints sorted by name.
func (r *Report) EndpointNames() []string {
	names := make([]string, 0, len(r.Endpoints))
	for n := range r.Endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Recorder accumulates per-endpoint latency and error counts during a
// run and collects invariant violations. All methods are safe for
// concurrent use by the session goroutines and the chaos controller.
type Recorder struct {
	mu         sync.Mutex
	hists      map[string]*Hist
	errors     map[string]int64
	violations []string
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{hists: make(map[string]*Hist), errors: make(map[string]int64)}
}

// Observe records one request against endpoint with its latency and
// whether it failed (transport error or 5xx).
func (rec *Recorder) Observe(endpoint string, d time.Duration, failed bool) {
	rec.mu.Lock()
	h := rec.hists[endpoint]
	if h == nil {
		h = &Hist{}
		rec.hists[endpoint] = h
	}
	if failed {
		rec.errors[endpoint]++
	}
	rec.mu.Unlock()
	h.Observe(d)
}

// Violation records a broken invariant. Any violation fails the run.
func (rec *Recorder) Violation(format string, args ...any) {
	rec.mu.Lock()
	rec.violations = append(rec.violations, fmt.Sprintf(format, args...))
	rec.mu.Unlock()
}

// Violations returns a copy of the recorded violations.
func (rec *Recorder) Violations() []string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]string(nil), rec.violations...)
}

// Snapshot folds the recorded histograms into per-endpoint stats over
// the given wall-clock window.
func (rec *Recorder) Snapshot(elapsed time.Duration) map[string]EndpointStats {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make(map[string]EndpointStats, len(rec.hists))
	secs := elapsed.Seconds()
	for name, h := range rec.hists {
		st := EndpointStats{
			Count:  h.Count(),
			Errors: rec.errors[name],
			P50NS:  int64(h.Quantile(0.50)),
			P99NS:  int64(h.Quantile(0.99)),
			P999NS: int64(h.Quantile(0.999)),
			MaxNS:  int64(h.Max()),
		}
		if secs > 0 {
			st.RPS = float64(st.Count) / secs
		}
		out[name] = st
	}
	return out
}
