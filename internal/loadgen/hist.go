// Package loadgen is the seeded load-generator and chaos soak harness
// for the twmd/twmw cluster. It spawns a real coordinator and worker
// fleet as subprocesses, drives them with deterministic mixed
// workloads (interactive submit/poll, batch grids, streaming event
// tailers, cancel storms), injects faults through the coordinator's
// /cluster/chaos surface and by killing processes outright, and
// verifies the system's two load-bearing promises under that abuse:
// every completed campaign's canonical aggregate is byte-identical to
// an undisturbed local engine run, and the /metrics counters account
// for every injected fault. Latency histograms per API endpoint are
// folded into a JSON Report that scripts/benchdiff gates against a
// checked-in baseline.
package loadgen

import (
	"sync"
	"time"
)

// Histogram bucket geometry: log-spaced bounds from 1µs growing by
// 25% per bucket. 85 buckets reach past 120s, far beyond any sane
// request latency, so the overflow bucket only catches pathology.
const (
	histBuckets = 85
	histBase    = float64(time.Microsecond)
	histGrowth  = 1.25
)

// histBounds[i] is the inclusive upper bound of bucket i in
// nanoseconds. Computed once; shared by every Hist.
var histBounds = func() [histBuckets]int64 {
	var b [histBuckets]int64
	bound := histBase
	for i := range b {
		b[i] = int64(bound)
		bound *= histGrowth
	}
	return b
}()

// Hist is a fixed-geometry latency histogram, safe for concurrent
// observers. Quantiles are read from bucket upper bounds, so they
// over-report by at most the bucket growth factor (25%) — plenty for
// regression gating, and the geometry never needs tuning per run.
type Hist struct {
	mu     sync.Mutex
	counts [histBuckets + 1]int64 // +1: overflow
	count  int64
	max    int64
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < histBuckets && histBounds[i] < ns {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the largest recorded sample.
func (h *Hist) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns the latency at quantile q in [0, 1] as the upper
// bound of the bucket holding the q-th sample, clamped to the observed
// max. Zero samples yields zero.
func (h *Hist) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based.
	rank := int64(q*float64(h.count-1)) + 1
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			var bound int64
			if i < histBuckets {
				bound = histBounds[i]
			} else {
				bound = h.max // overflow: best answer is the max
			}
			if bound > h.max {
				bound = h.max
			}
			return time.Duration(bound)
		}
	}
	return time.Duration(h.max)
}
