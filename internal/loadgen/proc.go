package loadgen

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// ProcCluster spawns and supervises a real twmd coordinator plus a
// twmw worker fleet as subprocesses — the system under test. It owns
// their scratch directory (datadir, logs, addr files) and exposes the
// kill/restart primitives the chaos controller scripts against. The
// coordinator listens on a fixed pre-picked port so workers and
// clients reconnect to the same address after a SIGKILL+restart.
type ProcCluster struct {
	Dir      string        // scratch directory (must exist)
	TwmdBin  string        // built twmd binary
	TwmwBin  string        // built twmw binary
	Addr     string        // coordinator listen address, e.g. 127.0.0.1:41873
	LeaseTTL time.Duration // coordinator -lease-ttl
	MaxJobs  int           // coordinator -maxjobs (0 = twmd default)
	Chaos    bool          // expose /cluster/chaos on the coordinator
	Logf     func(format string, args ...any)

	coord   *exec.Cmd
	workers map[int]*exec.Cmd
	wokeAt  map[int]string // worker metrics base URL, from its addr file
}

// BuildBinaries compiles twmd and twmw into dir, optionally with the
// race detector, and returns their paths. Building once up front keeps
// restarts instant — a chaos restart must not pay a compile.
func BuildBinaries(ctx context.Context, dir string, race bool) (twmd, twmw string, err error) {
	for _, tool := range []string{"twmd", "twmw"} {
		out := filepath.Join(dir, tool)
		args := []string{"build"}
		if race {
			args = append(args, "-race")
		}
		args = append(args, "-o", out, "twmarch/cmd/"+tool)
		cmd := exec.CommandContext(ctx, "go", args...)
		if raw, err := cmd.CombinedOutput(); err != nil {
			return "", "", fmt.Errorf("build %s: %v: %s", tool, err, raw)
		}
	}
	return filepath.Join(dir, "twmd"), filepath.Join(dir, "twmw"), nil
}

// FreePort reserves and releases a localhost port. The small window
// between release and the daemon's bind is harmless here: the harness
// owns the whole scratch environment and nothing else is binding.
func FreePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

func (p *ProcCluster) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

// BaseURL is the coordinator's API base.
func (p *ProcCluster) BaseURL() string { return "http://" + p.Addr }

// DataDir is the coordinator's journal directory — shared across
// restarts, which is the whole point.
func (p *ProcCluster) DataDir() string { return filepath.Join(p.Dir, "data") }

// openLog opens name in the scratch dir for appending, so a restarted
// process continues the same log.
func (p *ProcCluster) openLog(name string) (*os.File, error) {
	return os.OpenFile(filepath.Join(p.Dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// StartCoordinator launches twmd -cluster on the fixed address and
// waits until it answers /healthz. Idempotent across restarts: the
// same datadir makes the new process recover the old one's jobs.
func (p *ProcCluster) StartCoordinator(ctx context.Context) error {
	if err := os.MkdirAll(p.DataDir(), 0o755); err != nil {
		return err
	}
	args := []string{
		"-addr", p.Addr,
		"-cluster",
		"-datadir", p.DataDir(),
		"-lease-ttl", p.LeaseTTL.String(),
		"-log-format", "json",
	}
	if p.MaxJobs > 0 {
		args = append(args, "-maxjobs", fmt.Sprint(p.MaxJobs))
	}
	if p.Chaos {
		args = append(args, "-chaos")
	}
	logf, err := p.openLog("twmd.log")
	if err != nil {
		return err
	}
	cmd := exec.Command(p.TwmdBin, args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("start twmd: %w", err)
	}
	go func() { cmd.Wait(); logf.Close() }()
	p.coord = cmd
	p.logf("twmd pid %d on %s", cmd.Process.Pid, p.Addr)
	return p.waitHealthy(ctx, 15*time.Second)
}

func (p *ProcCluster) waitHealthy(ctx context.Context, timeout time.Duration) error {
	api := &APIClient{Base: p.BaseURL(), Rec: NewRecorder()}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if api.Healthy(ctx) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("twmd on %s not healthy after %v", p.Addr, timeout)
}

// KillCoordinator SIGKILLs twmd — the crash the journal exists for.
func (p *ProcCluster) KillCoordinator() error {
	if p.coord == nil || p.coord.Process == nil {
		return fmt.Errorf("no coordinator running")
	}
	p.logf("SIGKILL twmd pid %d", p.coord.Process.Pid)
	err := p.coord.Process.Kill()
	p.coord = nil
	return err
}

// StartWorker launches twmw number i (id loadw{i}) with a metrics
// sidecar on an ephemeral port, published through an addr file.
func (p *ProcCluster) StartWorker(ctx context.Context, i int) error {
	if p.workers == nil {
		p.workers = make(map[int]*exec.Cmd)
		p.wokeAt = make(map[int]string)
	}
	addrFile := filepath.Join(p.Dir, fmt.Sprintf("w%d.addr", i))
	os.Remove(addrFile)
	logf, err := p.openLog(fmt.Sprintf("twmw%d.log", i))
	if err != nil {
		return err
	}
	cmd := exec.Command(p.TwmwBin,
		"-coordinator", p.BaseURL(),
		"-id", fmt.Sprintf("loadw%d", i),
		"-parallel", "1",
		"-poll", "50ms",
		"-metrics-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-log-format", "json",
	)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("start twmw %d: %w", i, err)
	}
	go func() { cmd.Wait(); logf.Close() }()
	p.workers[i] = cmd
	addr, err := waitAddrFile(ctx, addrFile, 10*time.Second)
	if err != nil {
		return fmt.Errorf("twmw %d: %w", i, err)
	}
	p.wokeAt[i] = "http://" + addr
	p.logf("twmw%d pid %d metrics on %s", i, cmd.Process.Pid, addr)
	return nil
}

func waitAddrFile(ctx context.Context, path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		raw, err := os.ReadFile(path)
		if err == nil && len(raw) > 0 {
			return strings.TrimSpace(string(raw)), nil
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return "", fmt.Errorf("addr file %s never appeared", path)
}

// WorkerMetricsURL returns worker i's metrics sidecar base URL.
func (p *ProcCluster) WorkerMetricsURL(i int) string { return p.wokeAt[i] }

// KillWorker SIGKILLs worker i mid-whatever-it-was-doing.
func (p *ProcCluster) KillWorker(i int) error {
	cmd := p.workers[i]
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("no worker %d running", i)
	}
	p.logf("SIGKILL twmw%d pid %d", i, cmd.Process.Pid)
	err := cmd.Process.Kill()
	delete(p.workers, i)
	return err
}

// StopAll terminates every remaining process: workers first (SIGKILL —
// the coordinator requeues their leases), then the coordinator.
func (p *ProcCluster) StopAll() {
	for i, cmd := range p.workers {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		delete(p.workers, i)
	}
	if p.coord != nil && p.coord.Process != nil {
		p.coord.Process.Kill()
		p.coord = nil
	}
}
