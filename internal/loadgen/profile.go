package loadgen

import (
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"time"

	"twmarch/internal/campaign"
)

// SessionPlan describes one concurrent client session of a profile:
// what kind of campaigns it submits and how it follows them.
type SessionPlan struct {
	// Kind selects the spec generator and follow behavior:
	// interactive (submit then poll status), batch (large grid, slow
	// poll), streaming (tail /events instead of polling), cancel
	// (submit then cancel mid-run), query (no submissions — a read-only
	// session hammering GET /campaigns/query over the warehouse index
	// while the other sessions write).
	Kind string
	// Poll is the status poll interval for polling kinds.
	Poll time.Duration
	// Think is the pause between one campaign settling and the next
	// submission.
	Think time.Duration
}

// Profile is a named workload mix. Each plan runs as one goroutine;
// all randomness inside a session derives from the run seed plus the
// session's index, so a (profile, seed) pair replays the same spec
// sequence every time.
type Profile struct {
	Name  string
	Plans []SessionPlan
}

// profiles is the catalog. Session counts are sized for small hosts —
// the soak gate runs on single-core CI — and lean on spec geometry,
// not concurrency, to shape the load.
var profiles = map[string]Profile{
	"interactive": {Name: "interactive", Plans: []SessionPlan{
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
	}},
	"batch": {Name: "batch", Plans: []SessionPlan{
		{Kind: "batch", Poll: 100 * time.Millisecond, Think: 50 * time.Millisecond},
		{Kind: "batch", Poll: 100 * time.Millisecond, Think: 50 * time.Millisecond},
	}},
	"streaming": {Name: "streaming", Plans: []SessionPlan{
		{Kind: "streaming", Poll: 50 * time.Millisecond, Think: 20 * time.Millisecond},
		{Kind: "streaming", Poll: 50 * time.Millisecond, Think: 20 * time.Millisecond},
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
	}},
	"cancelstorm": {Name: "cancelstorm", Plans: []SessionPlan{
		{Kind: "cancel", Poll: 30 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "cancel", Poll: 30 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "cancel", Poll: 30 * time.Millisecond, Think: 10 * time.Millisecond},
	}},
	// query is the read-heavy mix: one writer keeps results landing in
	// the warehouse while two readers drive the query surface.
	"query": {Name: "query", Plans: []SessionPlan{
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "query", Poll: 15 * time.Millisecond, Think: 5 * time.Millisecond},
		{Kind: "query", Poll: 15 * time.Millisecond, Think: 5 * time.Millisecond},
	}},
	"mixed": {Name: "mixed", Plans: []SessionPlan{
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "batch", Poll: 100 * time.Millisecond, Think: 50 * time.Millisecond},
		{Kind: "streaming", Poll: 50 * time.Millisecond, Think: 20 * time.Millisecond},
		{Kind: "cancel", Poll: 30 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "query", Poll: 25 * time.Millisecond, Think: 10 * time.Millisecond},
	}},
	// chaos carries the mixed workload; Run layers the fault-injection
	// controller on top when this profile is selected. The query
	// session doubles as a soak of the warehouse rebuild path: every
	// coordinator SIGKILL leaves a dirty index the restart must rebuild
	// while readers keep hammering it.
	"chaos": {Name: "chaos", Plans: []SessionPlan{
		{Kind: "interactive", Poll: 20 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "batch", Poll: 100 * time.Millisecond, Think: 50 * time.Millisecond},
		{Kind: "streaming", Poll: 50 * time.Millisecond, Think: 20 * time.Millisecond},
		{Kind: "cancel", Poll: 30 * time.Millisecond, Think: 10 * time.Millisecond},
		{Kind: "query", Poll: 25 * time.Millisecond, Think: 10 * time.Millisecond},
	}},
}

// ProfileByName resolves a profile, listing the catalog on miss.
func ProfileByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		names := make([]string, 0, len(profiles))
		for n := range profiles {
			names = append(names, n)
		}
		sort.Strings(names)
		return Profile{}, fmt.Errorf("unknown profile %q (have %v)", name, names)
	}
	return p, nil
}

// ProfileNames lists the catalog for usage text.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SessionRand returns the deterministic rng for session i of a run.
func SessionRand(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
}

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// QueryParamsFor generates the n-th warehouse query of a query
// session: random dimension filters drawn from the same pools the
// spec generators submit, so most queries hit real data, plus
// occasional job-range bounds and tight limits to exercise paging.
// Deterministic in (rng, n) like the spec generators.
func QueryParamsFor(r *rand.Rand, n int) string {
	v := url.Values{}
	if r.Intn(3) > 0 {
		v.Set("test", pick(r, []string{"MATS", "MATS+", "MATS++", "March X", "March C-", "March B"}))
	}
	if r.Intn(2) == 0 {
		v.Set("width", fmt.Sprintf("%d", pick(r, []int{2, 4})))
	}
	if r.Intn(4) == 0 {
		v.Set("scheme", pick(r, []string{"twm", "scheme1"}))
	}
	if r.Intn(8) == 0 {
		v.Set("mode", "compare")
	}
	if r.Intn(4) == 0 {
		lo := 1 + r.Intn(40)
		v.Set("min_job", fmt.Sprintf("%d", lo))
		if r.Intn(2) == 0 {
			v.Set("max_job", fmt.Sprintf("%d", lo+r.Intn(40)))
		}
	}
	v.Set("limit", fmt.Sprintf("%d", 10+r.Intn(90)))
	return v.Encode()
}

// SpecForKind generates the n-th campaign spec of a session. Grid
// geometry is the load knob: interactive cells simulate in a few
// milliseconds, batch cells in tens of milliseconds, so even a
// single-core host keeps every profile responsive while the batch
// kinds still hold leases long enough for chaos to land mid-flight.
func SpecForKind(kind string, r *rand.Rand, n int) campaign.Spec {
	spec := campaign.Spec{
		Name:    fmt.Sprintf("load-%s-%d", kind, n),
		Modes:   []string{"compare"},
		Seed:    r.Int63n(1 << 30),
		Workers: 1,
	}
	switch kind {
	case "batch":
		spec.Tests = []string{pick(r, []string{"March C-", "March B"})}
		spec.Widths = []int{4}
		spec.Words = []int{16, 24}
		spec.Classes = []string{"SAF", "TF", "CFst"}
	case "streaming":
		spec.Tests = []string{"MATS+", "March X"}
		spec.Widths = []int{2, 4}
		spec.Words = []int{8, 12, 16}
		spec.Classes = []string{"SAF", "TF"}
	case "cancel":
		// Slow enough that a cancel reliably lands mid-run.
		spec.Tests = []string{"March C-"}
		spec.Widths = []int{4}
		spec.Words = []int{24, 32}
		spec.Classes = []string{"SAF", "TF", "CFst"}
	default: // interactive
		spec.Tests = []string{pick(r, []string{"MATS", "MATS+", "MATS++", "March X"})}
		spec.Widths = []int{pick(r, []int{2, 4})}
		spec.Words = []int{pick(r, []int{8, 12, 16})}
		spec.Classes = []string{"SAF", "TF"}
		if r.Intn(4) == 0 {
			spec.Modes = []string{"compare", "signature"}
		}
	}
	return spec
}
