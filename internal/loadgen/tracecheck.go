package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"twmarch/internal/tracing"
)

// fetchSpans GETs one NDJSON span surface (GET /debug/traces or
// GET /campaigns/{id}/trace) and decodes every line. Trace fetches are
// harness bookkeeping like health polls, so they never land in the
// latency histograms.
func fetchSpans(ctx context.Context, client *http.Client, url string) ([]tracing.SpanRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("traces: %s: status %d", url, resp.StatusCode)
	}
	var spans []tracing.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec tracing.SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return spans, fmt.Errorf("traces: %s: decode: %w", url, err)
		}
		spans = append(spans, rec)
	}
	return spans, sc.Err()
}

// Traces reads GET /debug/traces with the given raw query string.
func (c *APIClient) Traces(ctx context.Context, rawQuery string) ([]tracing.SpanRecord, error) {
	url := c.Base + "/debug/traces"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	return fetchSpans(ctx, c.httpClient(), url)
}

// JobTrace reads GET /campaigns/{id}/trace, the job's assembled span
// timeline.
func (c *APIClient) JobTrace(ctx context.Context, id string) ([]tracing.SpanRecord, error) {
	return fetchSpans(ctx, c.httpClient(), c.Base+"/campaigns/"+id+"/trace")
}

// traceChecks verifies trace continuity for every completed campaign:
// the spans served for the job — the union of the coordinator's ring
// (GET /debug/traces, filtered to the session's trace id) and the
// job's assembled timeline (GET /campaigns/{id}/trace) — must all
// carry the trace id the session minted, and none may be orphaned.
//
// A span is orphaned when its parent is in none of the places a parent
// can legitimately live: the fetched union, the session's own root
// span (the traceparent's span id — the harness never records it), the
// calling process of a server span (a coordinator-side span for an
// inbound worker request is parented on the worker's client span,
// which only the worker's own ring holds), or the pre-restart half of
// a trace a coordinator SIGKILL wiped, which the union's
// earliest-started span stands in for (a resumed job's root is a
// remote child of the journaled pre-crash root).
//
// A completed job with no spans on either surface is skipped, not
// flagged: the chaos profile's coordinator kill wipes the in-memory
// ring and collectors, and the ring evicts old traces under sustained
// load — absence is not evidence of a broken trace.
func traceChecks(ctx context.Context, api *APIClient, rec *Recorder, jobs []*trackedJob, logf func(string, ...any)) {
	checked := 0
	for _, tj := range jobs {
		if tj.final.State != "done" || tj.trace == "" {
			continue
		}
		ringSpans, err := api.Traces(ctx, "trace="+tj.trace)
		if err != nil {
			rec.Violation("trace: job %s: read /debug/traces: %v", tj.id, err)
			continue
		}
		colSpans, err := api.JobTrace(ctx, tj.id)
		if err != nil {
			rec.Violation("trace: job %s: read timeline: %v", tj.id, err)
			continue
		}
		byID := make(map[string]tracing.SpanRecord)
		var earliest tracing.SpanRecord
		for _, sp := range append(ringSpans, colSpans...) {
			if sp.Trace != tj.trace {
				rec.Violation("trace: job %s: span %s (%s) carries trace %s, session minted %s",
					tj.id, sp.Span, sp.Name, sp.Trace, tj.trace)
				continue
			}
			if _, ok := byID[sp.Span]; !ok {
				byID[sp.Span] = sp
				if earliest.Span == "" || sp.StartNS < earliest.StartNS {
					earliest = sp
				}
			}
		}
		if len(byID) == 0 {
			continue // wiped by a coordinator restart or evicted; see doc comment
		}
		for _, sp := range byID {
			if sp.Parent == "" || sp.Parent == tj.parentSpan ||
				sp.Kind == tracing.KindServer || sp.Span == earliest.Span {
				continue
			}
			if _, ok := byID[sp.Parent]; !ok {
				rec.Violation("trace: job %s: orphan span %s (%s): parent %s absent from the %d-span union",
					tj.id, sp.Span, sp.Name, sp.Parent, len(byID))
			}
		}
		checked++
	}
	logf("trace continuity verified on %d completed campaigns", checked)
}
