package loadgen

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zero")
	}
	// 1000 samples spread 1ms..1000ms: quantiles must land within one
	// bucket's growth factor of the exact value.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != time.Second {
		t.Fatalf("max %v", h.Max())
	}
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.exact || got > time.Duration(float64(tc.exact)*histGrowth) {
			t.Errorf("q%.3f = %v, want in [%v, %v]", tc.q, got, tc.exact,
				time.Duration(float64(tc.exact)*histGrowth))
		}
	}
	// The quantile is clamped to the observed max, never a bucket
	// bound beyond it.
	if got := h.Quantile(1); got != time.Second {
		t.Errorf("q1 = %v, want exactly the max", got)
	}
}

func TestHistOverflow(t *testing.T) {
	var h Hist
	h.Observe(10 * time.Minute) // beyond the last bucket bound
	h.Observe(time.Millisecond)
	if got := h.Quantile(1); got != 10*time.Minute {
		t.Errorf("overflow quantile = %v, want the max", got)
	}
}

func TestParseProm(t *testing.T) {
	text := `# HELP twm_cluster_lease_events_total cluster scheduling events
# TYPE twm_cluster_lease_events_total counter
twm_cluster_lease_events_total{kind="lease"} 42
twm_cluster_lease_events_total{kind="expire"} 3
twm_cluster_lease_events_total{kind="requeue"} 2
twm_cluster_lease_events_total{kind="abandon"} 1
twm_worker_retries_total 7
twm_weird{label="a\"b,c"} 1.5
garbage line without a value
`
	snap, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Sum("twm_cluster_lease_events_total", map[string]string{"kind": "expire"}); got != 3 {
		t.Errorf("expire sum %v, want 3", got)
	}
	if got := snap.Sum("twm_cluster_lease_events_total", nil); got != 48 {
		t.Errorf("family sum %v, want 48", got)
	}
	if got := snap.Sum("twm_worker_retries_total", nil); got != 7 {
		t.Errorf("bare sample sum %v, want 7", got)
	}
	if got := snap.Sum("twm_weird", map[string]string{"label": `a"b,c`}); got != 1.5 {
		t.Errorf("escaped label sum %v, want 1.5", got)
	}
	if got := snap.Sum("never_emitted", nil); got != 0 {
		t.Errorf("missing family sum %v, want 0", got)
	}
}

// TestProfileDeterminism: a (seed, session) pair must replay the same
// spec sequence — the whole point of a seeded load generator.
func TestProfileDeterminism(t *testing.T) {
	for _, kind := range []string{"interactive", "batch", "streaming", "cancel"} {
		a, b := SessionRand(42, 1), SessionRand(42, 1)
		for n := 0; n < 20; n++ {
			sa, sb := SpecForKind(kind, a, n), SpecForKind(kind, b, n)
			if !reflect.DeepEqual(sa, sb) {
				t.Fatalf("%s spec %d diverged under the same seed", kind, n)
			}
		}
		// A different session index must diverge somewhere in the
		// sequence (seeds differ).
		c := SessionRand(42, 2)
		same := true
		a = SessionRand(42, 1)
		for n := 0; n < 20; n++ {
			if !reflect.DeepEqual(SpecForKind(kind, a, n), SpecForKind(kind, c, n)) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: sessions 1 and 2 generated identical sequences", kind)
		}
	}
}

// TestProfileSpecsValid: every generated spec must pass twmd's own
// validation, or the load generator would just measure 400s.
func TestProfileSpecsValid(t *testing.T) {
	for _, kind := range []string{"interactive", "batch", "streaming", "cancel"} {
		r := SessionRand(7, 3)
		for n := 0; n < 50; n++ {
			spec := SpecForKind(kind, r, n)
			if err := spec.Validate(); err != nil {
				t.Fatalf("%s spec %d invalid: %v", kind, n, err)
			}
			if spec.CellCount() == 0 {
				t.Fatalf("%s spec %d expands to zero cells", kind, n)
			}
		}
	}
}

func TestProfileCatalog(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Plans) == 0 {
			t.Errorf("profile %s has no sessions", name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rec := NewRecorder()
	rec.Observe("submit", 5*time.Millisecond, false)
	rec.Observe("submit", 7*time.Millisecond, true)
	rec.Violation("example %d", 1)
	rep := &Report{
		Profile:    "mixed",
		Seed:       1,
		Workers:    3,
		DurationNS: int64(2 * time.Second),
		Endpoints:  rec.Snapshot(2 * time.Second),
		Violations: rec.Violations(),
	}
	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", rep, got)
	}
	st := got.Endpoints["submit"]
	if st.Count != 2 || st.Errors != 1 || st.RPS != 1 {
		t.Fatalf("submit stats %+v", st)
	}
	if st.P50NS <= 0 || st.MaxNS < st.P50NS {
		t.Fatalf("suspicious quantiles %+v", st)
	}
}
