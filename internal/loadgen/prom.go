package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// promSample is one parsed Prometheus text-exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// PromSnapshot is a parsed /metrics scrape. The chaos controller diffs
// snapshots taken around each injected fault to prove the counters
// account for it.
type PromSnapshot struct {
	samples []promSample
}

// ParseProm parses Prometheus text exposition (the subset internal/obs
// emits: `name{l1="v1",...} value` and `name value`, with # comment
// lines). Unparseable lines are skipped — the harness only ever sums
// well-known counter families.
func ParseProm(r io.Reader) (*PromSnapshot, error) {
	snap := &PromSnapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parsePromLine(line)
		if ok {
			snap.samples = append(snap.samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func parsePromLine(line string) (promSample, bool) {
	var s promSample
	name := line
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, false
		}
		labels, ok := parsePromLabels(line[i+1 : end])
		if !ok {
			return s, false
		}
		s.labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		name = line[:i]
		rest = strings.TrimSpace(line[i+1:])
	} else {
		return s, false
	}
	// Histogram samples can carry a timestamp after the value; take
	// the first field only.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, false
	}
	s.name, s.value = name, v
	return s, true
}

func parsePromLabels(body string) (map[string]string, bool) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		var b strings.Builder
		i := 0
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(rest[i])
			i++
		}
		if i >= len(rest) {
			return nil, false
		}
		labels[key] = b.String()
		body = strings.TrimPrefix(strings.TrimPrefix(rest[i+1:], ","), " ")
	}
	return labels, true
}

// Sum adds every sample of family name whose labels include all the
// given key=value pairs (pass none to sum the whole family). A family
// that never appeared sums to zero — counters in internal/obs only
// exist once incremented.
func (p *PromSnapshot) Sum(name string, match map[string]string) float64 {
	if p == nil {
		return 0
	}
	var sum float64
sample:
	for _, s := range p.samples {
		if s.name != name {
			continue
		}
		for k, v := range match {
			if s.labels[k] != v {
				continue sample
			}
		}
		sum += s.value
	}
	return sum
}

// ScrapeProm fetches and parses url's Prometheus text exposition.
func ScrapeProm(url string) (*PromSnapshot, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	return ParseProm(resp.Body)
}
