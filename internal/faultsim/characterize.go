package faultsim

import (
	"fmt"

	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/word"
)

// Characterization is a coverage matrix: one row per march test, one
// column per fault class, each cell the detected fraction over the
// exhaustive class population on a small bit-oriented memory. It
// reproduces the classical march-test comparison tables (van de Goor,
// IEEE D&T 1993) from first principles and locates every catalog test
// on them, including the dynamic and decoder classes the later
// literature added.
type Characterization struct {
	Words   int
	Tests   []string
	Classes []string
	// Coverage[i][j] is test i's coverage of class j.
	Coverage [][]float64
}

// characterizationClasses fixes the column order.
var characterizationClasses = []string{"SAF", "TF", "AF", "CFin", "CFid", "CFst", "RDF", "DRDF", "Linked"}

// classPopulation enumerates the population for one class label.
func classPopulation(class string, words int) ([]faults.Fault, error) {
	switch class {
	case "SAF":
		return faults.EnumerateStuckAt(words, 1), nil
	case "TF":
		return faults.EnumerateTransition(words, 1), nil
	case "AF":
		return faults.EnumerateAddrFaults(words), nil
	case "CFin":
		return faults.EnumerateCFin(words, 1, faults.AllPairs), nil
	case "CFid":
		return faults.EnumerateCFid(words, 1, faults.AllPairs), nil
	case "CFst":
		return faults.EnumerateCFst(words, 1, faults.AllPairs), nil
	case "RDF", "DRDF":
		var out []faults.Fault
		for _, f := range faults.EnumerateReadDestructive(words, 1) {
			if f.Class() == class {
				out = append(out, f)
			}
		}
		return out, nil
	case "Linked":
		return faults.EnumerateLinkedCFid(words, 1), nil
	default:
		return nil, fmt.Errorf("faultsim: unknown class %q", class)
	}
}

// Characterize measures every named test against every fault class on
// a words-cell bit-oriented memory with all-zero initial contents (the
// classical analysis point; the catalog tests initialize themselves).
func Characterize(testNames []string, words int) (*Characterization, error) {
	ch := &Characterization{
		Words:   words,
		Tests:   append([]string(nil), testNames...),
		Classes: append([]string(nil), characterizationClasses...),
	}
	zeros := make([]word.Word, words)
	for _, name := range testNames {
		tst, err := march.Lookup(name)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(ch.Classes))
		for j, class := range ch.Classes {
			list, err := classPopulation(class, words)
			if err != nil {
				return nil, err
			}
			c := Campaign{Test: tst, Words: words, Width: 1, Mode: DirectCompare, Initial: zeros}
			rep, err := Run(c, list)
			if err != nil {
				return nil, err
			}
			row[j] = rep.Coverage()
		}
		ch.Coverage = append(ch.Coverage, row)
	}
	return ch, nil
}

// Get returns the coverage for a test/class pair.
func (c *Characterization) Get(test, class string) (float64, error) {
	ti, ci := -1, -1
	for i, t := range c.Tests {
		if t == test {
			ti = i
		}
	}
	for j, cl := range c.Classes {
		if cl == class {
			ci = j
		}
	}
	if ti < 0 || ci < 0 {
		return 0, fmt.Errorf("faultsim: no cell for %q/%q", test, class)
	}
	return c.Coverage[ti][ci], nil
}
