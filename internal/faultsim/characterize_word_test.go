package faultsim

import (
	"testing"
)

// The word-level matrix confirms the paper-level picture for every
// CF-complete source test: the TWM_TA transform keeps SAF, TF, AF and
// all inter-word CFs at 100%, while intra-word CF coverage lands in
// the data-dependent band of finding F1.
//
// A pleasant side effect shows up for MATS+: Algorithm 1 appends a
// read when the source ends with a write (so the final write is
// observed), and that single read closes MATS+'s classical
// transition-fault hole — the transform is strictly stronger than its
// source here. The read-prepend rule similarly feeds its CF coverage.
func TestWordCharacterization(t *testing.T) {
	names := []string{"MATS+", "March C-", "March U", "March SS"}
	ch, err := CharacterizeWord(names, 3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	full := func(test, class string) {
		t.Helper()
		got, err := ch.Get(test, class)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("%s / %s: coverage %.3f, want 1", test, class, got)
		}
	}
	band := func(test, class string, lo float64) {
		t.Helper()
		got, err := ch.Get(test, class)
		if err != nil {
			t.Fatal(err)
		}
		if got < lo || got >= 1 {
			t.Errorf("%s / %s: coverage %.3f outside [%.2f,1)", test, class, got, lo)
		}
	}
	for _, n := range []string{"March C-", "March U", "March SS"} {
		full(n, "SAF")
		full(n, "TF")
		full(n, "CFinter")
		full(n, "AF")
		band(n, "CFintra", 0.6)
	}
	// MATS+ misses TFs, but its transform does not: the appended
	// ⇕(r·) element of Algorithm 1 observes the final write.
	full("MATS+", "SAF")
	full("MATS+", "TF")
}

func TestWordCharacterizationErrors(t *testing.T) {
	if _, err := CharacterizeWord([]string{"March Z"}, 3, 4, 1); err == nil {
		t.Error("unknown test accepted")
	}
	if _, err := CharacterizeWord([]string{"March C-"}, 3, 12, 1); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	ch, err := CharacterizeWord([]string{"March C-"}, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Get("March C-", "XYZ"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := wordClassPopulation("XYZ", 2, 2); err == nil {
		t.Error("unknown population accepted")
	}
}
