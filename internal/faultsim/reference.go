package faultsim

import (
	"fmt"
	"sync"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/misr"
	"twmarch/internal/word"
)

// refOp is one step of a precompiled replay schedule: a flattened
// march operation with its datum resolved into either a literal value
// or the XOR distance from the initial content, so the per-fault loop
// evaluates each datum with at most one XOR instead of re-walking the
// march elements.
type refOp struct {
	kind        march.OpKind
	addr        int
	transparent bool
	// val is the literal for nontransparent data, pre-masked to the
	// memory width.
	val word.Word
	// eff is the effective XOR mask for transparent data: the op's
	// value is snapshot[addr] ^ eff.
	eff word.Word
}

// compileSchedule flattens a test into refOps under the runner's
// default options (the options every campaign path uses).
func compileSchedule(t *march.Test, words, width int) ([]refOp, error) {
	flat, err := march.Flatten(t, words, march.RunOptions{})
	if err != nil {
		return nil, err
	}
	out := make([]refOp, len(flat))
	for i, f := range flat {
		op := refOp{kind: f.Kind, addr: f.Addr, transparent: f.Data.Transparent}
		if f.Data.Transparent {
			op.eff = f.Data.EffectiveMask(width)
		} else {
			op.val = f.Data.Const.Mask(width)
		}
		out[i] = op
	}
	return out, nil
}

// arena is the pooled per-run scratch state a Reference replays faults
// in: a reusable memory (reset with Restore instead of a fresh
// allocate-and-randomize), a snapshot buffer, and — in Signature mode —
// a MISR. Arenas are checked out of the Reference's pool for the
// duration of one Detects call, so a Reference is safe for concurrent
// use by the campaign worker pool.
type arena struct {
	mem  *memory.Memory
	snap []word.Word
	reg  *misr.MISR
}

// Reference is the precomputed fault-free context of a campaign
// configuration — the reference-trace fast path for fault simulation.
//
// Detects allocates a fresh memory, re-randomizes it and re-walks the
// whole march for every fault, so the fault-free work dominates an
// exhaustive campaign. A Reference runs that work once: it fixes the
// initial contents, compiles the march (and, in Signature mode, the
// prediction test) into a flat replay schedule, and records the
// fault-free MISR feed stream together with the register state before
// every clock. Each fault is then evaluated against the shared
// reference on a pooled arena:
//
//   - DirectCompare replays the schedule and exits at the first read
//     that diverges from its expected value — exactly the verdict of
//     march.Run with StopAtFirstMismatch.
//   - Signature replays both passes but engages the MISR only from the
//     first feed that diverges from the fault-free stream, resuming
//     compression from the recorded prefix state; the fault-free
//     prefix costs one word compare per read instead of a register
//     step.
//
// The replay performs the same access sequence against the injected
// memory as the naive path — including the initial-snapshot reads both
// march.Run passes issue — so faults with read side effects (dynamic
// faults) and address-decoder faults see bit-identical stimuli, and
// the verdicts match Detects exactly. The equivalence suite in
// reference_test.go asserts this over the full fault catalog.
//
// All exported state is read-only after NewReference; the arena pool
// makes concurrent Detects calls safe.
type Reference struct {
	words   int
	width   int
	mode    DetectMode
	initial []word.Word
	sched   []refOp

	// Signature mode: the prediction schedule and, per pass, the
	// fault-free feed stream plus the MISR state after each clock
	// (states[k] is the register after k feeds; states[len(feeds)] is
	// the pass's fault-free signature).
	predSched  []refOp
	predFeeds  []word.Word
	predStates []word.Word
	testFeeds  []word.Word
	testStates []word.Word

	// Bit-parallel lane path (lane.go): the schedules lowered into
	// broadcast rows, the MISR polynomial's tap positions (Signature
	// mode), and the pooled lane arenas.
	laneSched     []laneOp
	lanePredSched []laneOp
	polyBits      []int

	pool     sync.Pool
	lanePool sync.Pool
}

// NewReference precomputes the fault-free reference for the campaign
// configuration. Signature mode requires a transparent test (the
// prediction derivation) and a tabulated MISR polynomial for the
// width, mirroring the per-fault errors of the naive path.
func NewReference(c Campaign) (*Reference, error) {
	if c.Test == nil {
		return nil, fmt.Errorf("faultsim: campaign has no test")
	}
	if c.Test.Width != c.Width {
		return nil, fmt.Errorf("faultsim: test width %d != campaign width %d", c.Test.Width, c.Width)
	}
	mem, err := c.newMemory()
	if err != nil {
		return nil, err
	}
	r := &Reference{
		words:   c.Words,
		width:   c.Width,
		mode:    c.Mode,
		initial: mem.Snapshot(),
	}
	r.sched, err = compileSchedule(c.Test, c.Words, c.Width)
	if err != nil {
		return nil, err
	}
	switch c.Mode {
	case DirectCompare:
	case Signature:
		pred, err := core.Prediction(c.Test)
		if err != nil {
			return nil, err
		}
		r.predSched, err = compileSchedule(pred, c.Words, c.Width)
		if err != nil {
			return nil, err
		}
		r.predFeeds, r.predStates, err = r.faultFreePass(mem, r.predSched, true)
		if err != nil {
			return nil, err
		}
		r.testFeeds, r.testStates, err = r.faultFreePass(mem, r.sched, false)
		if err != nil {
			return nil, err
		}
		poly, err := misr.LookupPoly(c.Width)
		if err != nil {
			return nil, err
		}
		for b := 0; b < c.Width; b++ {
			if poly.Bit(b) == 1 {
				r.polyBits = append(r.polyBits, b)
			}
		}
		r.lanePredSched = compileLaneOps(r.predSched, c.Width)
	default:
		return nil, fmt.Errorf("faultsim: unknown mode %v", c.Mode)
	}
	r.laneSched = compileLaneOps(r.sched, c.Width)
	r.pool.New = func() any {
		a := &arena{
			mem:  memory.MustNew(r.words, r.width),
			snap: make([]word.Word, r.words),
		}
		if r.mode == Signature {
			a.reg = misr.MustNew(r.width)
		}
		return a
	}
	r.lanePool.New = func() any { return newLaneArena(r) }
	return r, nil
}

// faultFreePass executes one pass of the schedule on the fault-free
// memory and records the MISR feed stream and per-clock register
// states. mem is restored to the initial contents before and after, so
// the reference never depends on pass order.
func (r *Reference) faultFreePass(mem *memory.Memory, sched []refOp, predict bool) (feeds, states []word.Word, err error) {
	if err := mem.Restore(r.initial); err != nil {
		return nil, nil, err
	}
	reg, err := misr.New(r.width)
	if err != nil {
		return nil, nil, err
	}
	reg.Reset(word.Zero)
	states = append(states, reg.Signature())
	for _, op := range sched {
		val := op.val
		if op.transparent {
			val = r.initial[op.addr].Xor(op.eff)
		}
		if op.kind == march.Write {
			mem.Write(op.addr, val)
			continue
		}
		feed := mem.Read(op.addr)
		if predict {
			feed = feed.Xor(op.eff)
		}
		reg.Feed(feed)
		feeds = append(feeds, feed)
		states = append(states, reg.Signature())
	}
	if err := mem.Restore(r.initial); err != nil {
		return nil, nil, err
	}
	return feeds, states, nil
}

// Detects evaluates one fault against the reference and reports
// whether the campaign's test caught it. The verdict is bit-identical
// to Detects on the equivalent Campaign; only the cost differs. Safe
// for concurrent use.
func (r *Reference) Detects(f faults.Fault) (bool, error) {
	ar := r.pool.Get().(*arena)
	defer r.pool.Put(ar)
	if err := ar.mem.Restore(r.initial); err != nil {
		return false, err
	}
	inj, err := faults.Inject(ar.mem, f)
	if err != nil {
		return false, err
	}
	switch r.mode {
	case DirectCompare:
		return r.replayDirect(ar, inj), nil
	case Signature:
		predicted := r.replayCompress(ar, inj, r.predSched, true, r.predFeeds, r.predStates)
		testSig := r.replayCompress(ar, inj, r.sched, false, r.testFeeds, r.testStates)
		return predicted != testSig, nil
	default:
		return false, fmt.Errorf("faultsim: unknown mode %v", r.mode)
	}
}

// snapshot replicates the initial-snapshot read sweep march.Run issues
// before a pass. The reads go through the injected wrapper because
// fault models may perturb them (decoder redirection, read disturbs) —
// the fast path must present the same stimulus sequence as the runner.
func (r *Reference) snapshot(ar *arena, inj *faults.Injected) []word.Word {
	for i := range ar.snap {
		ar.snap[i] = inj.Read(i)
	}
	return ar.snap
}

// replayDirect runs the comparator-mode replay: every read is checked
// against the datum evaluated on this run's own snapshot, stopping at
// the first divergence exactly like march.Run with StopAtFirstMismatch.
func (r *Reference) replayDirect(ar *arena, inj *faults.Injected) bool {
	snap := r.snapshot(ar, inj)
	for _, op := range r.sched {
		val := op.val
		if op.transparent {
			val = snap[op.addr].Xor(op.eff)
		}
		if op.kind == march.Write {
			inj.Write(op.addr, val)
			continue
		}
		if inj.Read(op.addr) != val {
			return true
		}
	}
	return false
}

// replayCompress runs one signature-mode pass over the injected
// memory and returns its MISR signature. While the feed stream matches
// the fault-free reference the register is not clocked at all — the
// fault-free state is tabulated — and compression resumes from the
// recorded prefix state at the first divergence.
func (r *Reference) replayCompress(ar *arena, inj *faults.Injected, sched []refOp, predict bool, feeds, states []word.Word) word.Word {
	snap := r.snapshot(ar, inj)
	reg := ar.reg
	clock := 0
	diverged := false
	for _, op := range sched {
		if op.kind == march.Write {
			val := op.val
			if op.transparent {
				val = snap[op.addr].Xor(op.eff)
			}
			inj.Write(op.addr, val)
			continue
		}
		feed := inj.Read(op.addr)
		if predict {
			feed = feed.Xor(op.eff)
		}
		if !diverged {
			if feed == feeds[clock] {
				clock++
				continue
			}
			reg.Reset(states[clock])
			diverged = true
		}
		reg.Feed(feed)
		clock++
	}
	if !diverged {
		return states[clock]
	}
	return reg.Signature()
}

// Run executes the reference over a fault list, producing the same
// Report as Run on the equivalent Campaign.
func (r *Reference) Run(list []faults.Fault) (*Report, error) {
	return runWith(r.Detects, list)
}
