package faultsim

import (
	"reflect"
	"sync"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
)

// laneVerdicts evaluates a list through DetectLane in LaneWidth chunks
// and returns per-fault booleans, for comparison against the scalar
// oracles.
func laneVerdicts(t *testing.T, ref *Reference, list []faults.Fault) []bool {
	t.Helper()
	out := make([]bool, len(list))
	for start := 0; start < len(list); start += LaneWidth {
		end := min(start+LaneWidth, len(list))
		bits, err := ref.DetectLane(list[start:end])
		if err != nil {
			t.Fatalf("DetectLane[%d:%d]: %v", start, end, err)
		}
		for j := start; j < end; j++ {
			out[j] = bits>>uint(j-start)&1 == 1
		}
	}
	return out
}

// The lane path must return bit-identical verdicts to the scalar
// reference replay (and transitively to the naive path) for every
// fault model in the library, across word widths and both detection
// modes — the acceptance gate of the lane engine.
func TestDetectLaneVsReferenceFullCatalog(t *testing.T) {
	for _, c := range equivalenceConfigs(t) {
		list := fullCatalog(c.Words, c.Width)
		ref, err := NewReference(c)
		if err != nil {
			t.Fatalf("%s %dx%d %v: %v", c.Test.Name, c.Words, c.Width, c.Mode, err)
		}
		lane := laneVerdicts(t, ref, list)
		for i, f := range list {
			scalar, err := ref.Detects(f)
			if err != nil {
				t.Fatalf("scalar %s: %v", f, err)
			}
			if lane[i] != scalar {
				t.Errorf("%s %dx%d %v: fault %s: lane=%v scalar=%v",
					c.Test.Name, c.Words, c.Width, c.Mode, f, lane[i], scalar)
			}
		}
	}
}

// RunLanes must produce byte-for-byte identical Reports to the scalar
// reference Run and the naive loop — same tallies, same Missed list
// (order and cap included).
func TestRunLanesMatchesReferenceReport(t *testing.T) {
	for _, c := range equivalenceConfigs(t) {
		list := fullCatalog(c.Words, c.Width)
		ref, err := NewReference(c)
		if err != nil {
			t.Fatal(err)
		}
		lanes, err := ref.RunLanes(list)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := ref.Run(list)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lanes, scalar) {
			t.Errorf("%s %dx%d %v: lane and scalar reports differ:\nlane:   %+v\nscalar: %+v",
				c.Test.Name, c.Words, c.Width, c.Mode, lanes, scalar)
		}
		naive := c
		naive.Naive = true
		slow, err := Run(naive, list)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lanes, slow) {
			t.Errorf("%s %dx%d %v: lane and naive reports differ:\nlane:  %+v\nnaive: %+v",
				c.Test.Name, c.Words, c.Width, c.Mode, lanes, slow)
		}
	}
}

// Partial tail lanes: populations of 1, 63, 64 and 65 faults must
// produce the same verdicts as the scalar path, with the unused lanes'
// verdict bits masked off.
func TestDetectLanePartialLanes(t *testing.T) {
	c := equivalenceConfigs(t)[0]
	full := fullCatalog(c.Words, c.Width)
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 63, 64, 65} {
		if n > len(full) {
			t.Fatalf("catalog too small for size %d", n)
		}
		list := full[:n]
		lane := laneVerdicts(t, ref, list)
		for i, f := range list {
			scalar, err := ref.Detects(f)
			if err != nil {
				t.Fatal(err)
			}
			if lane[i] != scalar {
				t.Errorf("size %d: fault %s: lane=%v scalar=%v", n, f, lane[i], scalar)
			}
		}
		if n < LaneWidth {
			bits, err := ref.DetectLane(list)
			if err != nil {
				t.Fatal(err)
			}
			if tail := bits >> uint(n); tail != 0 {
				t.Errorf("size %d: tail lanes carry verdict bits: %#x", n, tail)
			}
		}
	}
}

// A single-fault lane must agree with the scalar verdict for every
// fault class (each class exercises a different packing path).
func TestDetectLaneSingleFault(t *testing.T) {
	for _, c := range equivalenceConfigs(t) {
		ref, err := NewReference(c)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, f := range fullCatalog(c.Words, c.Width) {
			if seen[f.Class()] {
				continue
			}
			seen[f.Class()] = true
			bits, err := ref.DetectLane([]faults.Fault{f})
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := ref.Detects(f)
			if err != nil {
				t.Fatal(err)
			}
			if (bits&1 == 1) != scalar {
				t.Errorf("%s %dx%d %v: single-fault lane %s: lane=%v scalar=%v",
					c.Test.Name, c.Words, c.Width, c.Mode, f, bits&1 == 1, scalar)
			}
		}
	}
}

// DetectLane on an empty slice is a no-op; beyond LaneWidth it must
// refuse rather than silently truncate.
func TestDetectLaneCapacity(t *testing.T) {
	c := equivalenceConfigs(t)[0]
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := ref.DetectLane(nil)
	if err != nil || bits != 0 {
		t.Errorf("empty lane: bits=%#x err=%v", bits, err)
	}
	list := fullCatalog(c.Words, c.Width)[:LaneWidth+1]
	if _, err := ref.DetectLane(list); err == nil {
		t.Error("DetectLane accepted more than LaneWidth faults")
	}
}

// Invalid faults must surface the same error message the scalar batch
// path reports, from the first offending fault in lane order.
func TestDetectLaneInjectError(t *testing.T) {
	c := equivalenceConfigs(t)[0]
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := faults.StuckAt{Cell: faults.Site{Addr: 99, Bit: 0}, Value: 1}
	good := faults.StuckAt{Cell: faults.Site{Addr: 0, Bit: 0}, Value: 1}
	_, laneErr := ref.DetectLane([]faults.Fault{good, bad})
	if laneErr == nil {
		t.Fatal("DetectLane accepted an out-of-range fault")
	}
	_, scalarErr := ref.Run([]faults.Fault{good, bad})
	if scalarErr == nil {
		t.Fatal("scalar Run accepted an out-of-range fault")
	}
	if laneErr.Error() != scalarErr.Error() {
		t.Errorf("error mismatch:\nlane:   %v\nscalar: %v", laneErr, scalarErr)
	}
	if _, err := ref.RunLanes([]faults.Fault{good, bad}); err == nil || err.Error() != scalarErr.Error() {
		t.Errorf("RunLanes error mismatch: %v vs %v", err, scalarErr)
	}
}

// DetectLane checks arenas out of a pool, so concurrent calls from the
// campaign worker pool must agree with serial verdicts. Run under
// -race in CI.
func TestDetectLaneConcurrent(t *testing.T) {
	c := equivalenceConfigs(t)[2]
	list := fullCatalog(c.Words, c.Width)
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	var chunks [][]faults.Fault
	for start := 0; start < len(list); start += LaneWidth {
		chunks = append(chunks, list[start:min(start+LaneWidth, len(list))])
	}
	serial := make([]uint64, len(chunks))
	for i, ch := range chunks {
		if serial[i], err = ref.DetectLane(ch); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(chunks); i += workers {
				bits, err := ref.DetectLane(chunks[i])
				if err != nil {
					errs <- err
					return
				}
				if bits != serial[i] {
					t.Errorf("chunk %d: concurrent=%#x serial=%#x", i, bits, serial[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Run's default path is lanes; NoLanes and Naive drop to the scalar
// replays. All three must report byte-identically.
func TestRunNoLanesMatchesDefault(t *testing.T) {
	c := equivalenceConfigs(t)[1]
	list := fullCatalog(c.Words, c.Width)
	lanes, err := Run(c, list)
	if err != nil {
		t.Fatal(err)
	}
	noLanes := c
	noLanes.NoLanes = true
	scalar, err := Run(noLanes, list)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lanes, scalar) {
		t.Errorf("NoLanes report differs:\nlanes:  %+v\nscalar: %+v", lanes, scalar)
	}
}

// The lane engine keeps no state between calls: re-running the same
// chunks must reproduce identical verdict vectors (pooled arenas fully
// reset).
func TestDetectLaneRepeat(t *testing.T) {
	for _, sel := range []int{0, 1} { // one config per mode
		c := equivalenceConfigs(t)[sel]
		list := fullCatalog(c.Words, c.Width)
		ref, err := NewReference(c)
		if err != nil {
			t.Fatal(err)
		}
		first := laneVerdicts(t, ref, list)
		second := laneVerdicts(t, ref, list)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%v: repeat lane verdicts differ", c.Mode)
		}
	}
}

// NPSF packs write hooks on the victim and every valid neighbor; a
// bit-oriented campaign with the NPSF population in a single lane must
// match the scalar verdicts (covered by the full catalog at 9x1, but
// asserted here against the naive oracle directly for clarity).
func TestDetectLaneNPSFVsNaive(t *testing.T) {
	bt, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: bt.Transparent, Words: 9, Width: 1, Mode: DirectCompare, Seed: 21}
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	list := faults.EnumerateNPSF(3, 3)
	lane := laneVerdicts(t, ref, list)
	for i, f := range list {
		naive, err := Detects(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if lane[i] != naive {
			t.Errorf("fault %s: lane=%v naive=%v", f, lane[i], naive)
		}
	}
}
