package faultsim

import (
	"fmt"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
)

// WordCharacterization extends the bit-level matrix to the paper's
// word-oriented domain: each catalog test is transformed with TWM_TA
// at the given width and measured against the word-level fault
// classes, splitting coupling faults into the inter-word population
// (covered by TSMarch) and the intra-word population (ATMarch's
// territory, where finding F1 applies).
type WordCharacterization struct {
	Words, Width int
	Tests        []string
	Classes      []string
	Coverage     [][]float64
}

var wordClasses = []string{"SAF", "TF", "CFinter", "CFintra", "AF"}

func wordClassPopulation(class string, words, width int) ([]faults.Fault, error) {
	switch class {
	case "SAF":
		return faults.EnumerateStuckAt(words, width), nil
	case "TF":
		return faults.EnumerateTransition(words, width), nil
	case "CFinter":
		var out []faults.Fault
		out = append(out, faults.EnumerateCFst(words, width, faults.InterWordPairs)...)
		out = append(out, faults.EnumerateCFid(words, width, faults.InterWordPairs)...)
		out = append(out, faults.EnumerateCFin(words, width, faults.InterWordPairs)...)
		return out, nil
	case "CFintra":
		var out []faults.Fault
		out = append(out, faults.EnumerateCFst(words, width, faults.IntraWordPairs)...)
		out = append(out, faults.EnumerateCFid(words, width, faults.IntraWordPairs)...)
		out = append(out, faults.EnumerateCFin(words, width, faults.IntraWordPairs)...)
		return out, nil
	case "AF":
		return faults.EnumerateAddrFaults(words), nil
	default:
		return nil, fmt.Errorf("faultsim: unknown word class %q", class)
	}
}

// CharacterizeWord measures the TWM_TA transforms of the named tests
// over the word-level fault classes, with pseudo-random pre-existing
// contents (seed-fixed for reproducibility).
func CharacterizeWord(testNames []string, words, width int, seed int64) (*WordCharacterization, error) {
	ch := &WordCharacterization{
		Words: words, Width: width,
		Tests:   append([]string(nil), testNames...),
		Classes: append([]string(nil), wordClasses...),
	}
	for _, name := range testNames {
		bm, err := march.Lookup(name)
		if err != nil {
			return nil, err
		}
		res, err := core.TWMTA(bm, width)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(ch.Classes))
		for j, class := range ch.Classes {
			list, err := wordClassPopulation(class, words, width)
			if err != nil {
				return nil, err
			}
			c := Campaign{Test: res.TWMarch, Words: words, Width: width, Mode: DirectCompare, Seed: seed}
			rep, err := Run(c, list)
			if err != nil {
				return nil, err
			}
			row[j] = rep.Coverage()
		}
		ch.Coverage = append(ch.Coverage, row)
	}
	return ch, nil
}

// Get returns the coverage for a test/class pair.
func (c *WordCharacterization) Get(test, class string) (float64, error) {
	ti, ci := -1, -1
	for i, t := range c.Tests {
		if t == test {
			ti = i
		}
	}
	for j, cl := range c.Classes {
		if cl == class {
			ci = j
		}
	}
	if ti < 0 || ci < 0 {
		return 0, fmt.Errorf("faultsim: no cell for %q/%q", test, class)
	}
	return c.Coverage[ti][ci], nil
}
