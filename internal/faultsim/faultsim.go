// Package faultsim runs fault-injection campaigns: it instantiates a
// memory, injects one modeled fault at a time, executes a march test
// against it and decides whether the test detected the fault.
//
// Two detection modes mirror the two ways a transparent BIST observes
// failures. DirectCompare checks every read against its expected
// value, modeling an ideal comparator (no aliasing). Signature runs
// the signature-prediction pass first, compresses both passes in a
// MISR and compares the signatures — the realistic transparent-BIST
// flow, including its aliasing behaviour.
//
// The Section 5 experiments of the paper are campaigns over exhaustive
// fault populations on small memories, comparing the transparent
// word-oriented test against its nontransparent counterpart.
//
// Batch evaluation has three implementations with bit-identical
// verdicts, each the oracle for the next. Detects is the naive
// one-shot path: fresh memory, re-randomized contents and a full march
// per fault. Reference.Detects is the scalar fast path: the fault-free
// run is captured once per configuration (ordered access trace,
// expected reads, MISR prefix states) and each fault replays against
// it on a pooled memory arena. Reference.DetectLane is the
// bit-parallel path: up to 64 faults packed into uint64 bit-planes and
// replayed at once (see lane.go). Run rides the lane path unless
// Campaign.NoLanes drops it to the scalar replay or Campaign.Naive to
// the one-shot loop; Compare and per-fault callers use Detector.
package faultsim

import (
	"fmt"
	"sort"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/misr"
	"twmarch/internal/word"
)

// DetectMode selects the fault-observation mechanism.
type DetectMode int

const (
	// DirectCompare flags a fault when any read mismatches its
	// expected value (ideal comparator, alias-free).
	DirectCompare DetectMode = iota
	// Signature flags a fault when the MISR signature of the test pass
	// differs from the predicted signature.
	Signature
)

// String implements fmt.Stringer.
func (m DetectMode) String() string {
	switch m {
	case DirectCompare:
		return "direct-compare"
	case Signature:
		return "signature"
	default:
		return fmt.Sprintf("DetectMode(%d)", int(m))
	}
}

// Campaign describes a fault-simulation configuration.
type Campaign struct {
	// Test is the march test to evaluate. Signature mode requires it
	// to be transparent (prediction needs XOR-relative reads).
	Test *march.Test
	// Words and Width give the memory geometry; Width must match the
	// test width.
	Words, Width int
	// Mode selects the detection mechanism.
	Mode DetectMode
	// Seed randomizes the pre-existing memory contents.
	Seed int64
	// Initial, when non-nil, fixes the pre-existing contents instead
	// of randomizing (length must equal Words).
	Initial []word.Word
	// Naive forces Run and Compare onto the one-shot per-fault path
	// instead of the reference-trace fast path. Verdicts are identical
	// either way (the equivalence suite asserts it over the full fault
	// catalog); the flag exists as a debugging escape hatch.
	Naive bool
	// NoLanes forces Run onto the scalar per-fault reference replay
	// instead of the bit-parallel lane path (Reference.RunLanes).
	// Reports are byte-identical either way; like Naive, the flag is a
	// debugging escape hatch. It has no effect when Naive is set.
	NoLanes bool
}

// newMemory materializes the campaign's pre-existing contents. The
// randomized case uses the stateless splitmix64 stream of
// memory.RandomizeSeed — the same derivation on every call — so the
// naive path, the reference fast path and the diagnostic Syndrome run
// all see bit-identical initial data for one (geometry, seed).
func (c Campaign) newMemory() (*memory.Memory, error) {
	mem, err := memory.New(c.Words, c.Width)
	if err != nil {
		return nil, err
	}
	if c.Initial != nil {
		if err := mem.Restore(c.Initial); err != nil {
			return nil, err
		}
		return mem, nil
	}
	mem.RandomizeSeed(c.Seed)
	return mem, nil
}

// Detects runs one fault through the campaign configuration and
// reports whether the test caught it. This is the naive one-shot path:
// it allocates and initializes a fresh memory and replays the full
// march (and, in Signature mode, re-derives the prediction test) for
// the single fault. Batch callers should build a Reference once and
// use its Detects — same verdicts, amortized fault-free work.
func Detects(c Campaign, f faults.Fault) (bool, error) {
	if c.Test == nil {
		return false, fmt.Errorf("faultsim: campaign has no test")
	}
	if c.Test.Width != c.Width {
		return false, fmt.Errorf("faultsim: test width %d != campaign width %d", c.Test.Width, c.Width)
	}
	mem, err := c.newMemory()
	if err != nil {
		return false, err
	}
	inj, err := faults.Inject(mem, f)
	if err != nil {
		return false, err
	}
	switch c.Mode {
	case DirectCompare:
		res, err := march.Run(c.Test, inj, march.RunOptions{StopAtFirstMismatch: true})
		if err != nil {
			return false, err
		}
		return res.Detected(), nil
	case Signature:
		return detectsBySignature(c, inj)
	default:
		return false, fmt.Errorf("faultsim: unknown mode %v", c.Mode)
	}
}

func detectsBySignature(c Campaign, mem march.Mem) (bool, error) {
	pred, err := core.Prediction(c.Test)
	if err != nil {
		return false, err
	}
	reg, err := misr.New(c.Width)
	if err != nil {
		return false, err
	}
	// Prediction pass: reads only; the memory is untouched, so the
	// comparator expectations trivially hold and the MISR compresses
	// the mask-adjusted reads.
	reg.Reset(word.Zero)
	if _, err := march.Run(pred, mem, march.RunOptions{ReadSink: reg.PredictSink()}); err != nil {
		return false, err
	}
	predicted := reg.Signature()
	// Test pass: raw reads compressed.
	reg.Reset(word.Zero)
	if _, err := march.Run(c.Test, mem, march.RunOptions{ReadSink: reg.TestSink()}); err != nil {
		return false, err
	}
	return reg.Signature() != predicted, nil
}

// Syndrome runs the diagnostic pass for one fault: a full
// comparator-view execution of the campaign's test over a fresh
// fault-injected memory, recording up to maxMismatches failing reads
// (0 falls back to march.Run's default cap). Unlike Detects it never
// stops early — the complete mismatch log is the failure syndrome that
// internal/diagnose localizes faults from, the way a signature-based
// BIST re-runs a flagged memory in diagnostic mode to recover the
// per-read information the MISR compressed away (the fast-diagnosis
// flow of Wang, Wu & Ivanov).
func Syndrome(c Campaign, f faults.Fault, maxMismatches int) (march.Result, error) {
	if c.Test == nil {
		return march.Result{}, fmt.Errorf("faultsim: campaign has no test")
	}
	if c.Test.Width != c.Width {
		return march.Result{}, fmt.Errorf("faultsim: test width %d != campaign width %d", c.Test.Width, c.Width)
	}
	mem, err := c.newMemory()
	if err != nil {
		return march.Result{}, err
	}
	inj, err := faults.Inject(mem, f)
	if err != nil {
		return march.Result{}, err
	}
	return march.Run(c.Test, inj, march.RunOptions{MaxMismatches: maxMismatches})
}

// ClassStats aggregates detection per fault class.
type ClassStats struct {
	Total, Detected int
}

// Coverage returns the detected fraction (1 for an empty class).
func (s ClassStats) Coverage() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Detected) / float64(s.Total)
}

// Report summarizes a campaign over a fault list.
type Report struct {
	Total, Detected int
	ByClass         map[string]ClassStats
	// Missed lists undetected faults, capped at 64.
	Missed []faults.Fault
}

// Coverage returns the overall detected fraction.
func (r *Report) Coverage() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Total)
}

// Classes returns the class labels in sorted order.
func (r *Report) Classes() []string {
	out := make([]string, 0, len(r.ByClass))
	for k := range r.ByClass {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the campaign over the fault list. By default it builds
// a Reference once for the configuration and rides the bit-parallel
// lane path (Reference.RunLanes); Campaign.NoLanes drops to the scalar
// per-fault reference replay and Campaign.Naive to the one-shot loop.
// The Report is byte-identical on all three paths.
func Run(c Campaign, list []faults.Fault) (*Report, error) {
	if c.Naive {
		return runWith(func(f faults.Fault) (bool, error) { return Detects(c, f) }, list)
	}
	ref, err := NewReference(c)
	if err != nil {
		return nil, err
	}
	if c.NoLanes {
		return ref.Run(list)
	}
	return ref.RunLanes(list)
}

// Detector returns the campaign's per-fault verdict function: the
// naive one-shot loop when Naive is set, a shared Reference otherwise.
// Per-fault callers (Compare, the campaign engine's pipeline stage) go
// through it; batch callers use Run, which additionally selects the
// bit-parallel lane path over whole fault lists.
func (c Campaign) Detector() (func(faults.Fault) (bool, error), error) {
	if c.Naive {
		return func(f faults.Fault) (bool, error) { return Detects(c, f) }, nil
	}
	ref, err := NewReference(c)
	if err != nil {
		return nil, err
	}
	return ref.Detects, nil
}

// runWith folds per-fault verdicts into a Report; it is the single
// tally loop behind Run and Reference.Run, so both paths report
// identically (including the Missed cap and its order).
func runWith(det func(faults.Fault) (bool, error), list []faults.Fault) (*Report, error) {
	rep := &Report{ByClass: make(map[string]ClassStats)}
	for _, f := range list {
		d, err := det(f)
		if err != nil {
			return nil, fmt.Errorf("faultsim: %s: %v", f, err)
		}
		rep.Total++
		cs := rep.ByClass[f.Class()]
		cs.Total++
		if d {
			rep.Detected++
			cs.Detected++
		} else if len(rep.Missed) < 64 {
			rep.Missed = append(rep.Missed, f)
		}
		rep.ByClass[f.Class()] = cs
	}
	return rep, nil
}

// Disagreement records a fault two campaigns judged differently.
type Disagreement struct {
	Fault                faults.Fault
	DetectedA, DetectedB bool
}

// Equivalence compares per-fault detection between two campaigns.
type Equivalence struct {
	Both, OnlyA, OnlyB, Neither int
	// Disagreements lists faults detected by exactly one side, capped
	// at 64.
	Disagreements []Disagreement
}

// Equal reports whether the two campaigns detect exactly the same
// fault set.
func (e *Equivalence) Equal() bool { return e.OnlyA == 0 && e.OnlyB == 0 }

// Compare runs both campaigns over the fault list and reports where
// their verdicts differ. This is the paper's Section 5 experiment: the
// transparent word-oriented test must preserve the coverage of its
// nontransparent counterpart. Each side evaluates through its own
// Reference unless its Naive flag is set.
func Compare(a, b Campaign, list []faults.Fault) (*Equivalence, error) {
	detA, err := a.Detector()
	if err != nil {
		return nil, fmt.Errorf("faultsim: campaign A: %v", err)
	}
	detB, err := b.Detector()
	if err != nil {
		return nil, fmt.Errorf("faultsim: campaign B: %v", err)
	}
	eq := &Equivalence{}
	for _, f := range list {
		da, err := detA(f)
		if err != nil {
			return nil, fmt.Errorf("faultsim: campaign A: %s: %v", f, err)
		}
		db, err := detB(f)
		if err != nil {
			return nil, fmt.Errorf("faultsim: campaign B: %s: %v", f, err)
		}
		switch {
		case da && db:
			eq.Both++
		case da:
			eq.OnlyA++
		case db:
			eq.OnlyB++
		default:
			eq.Neither++
		}
		if da != db && len(eq.Disagreements) < 64 {
			eq.Disagreements = append(eq.Disagreements, Disagreement{Fault: f, DetectedA: da, DetectedB: db})
		}
	}
	return eq, nil
}

// AllContents reports whether the campaign's test detects the fault
// for every possible initial memory content. The exhaustive sweep has
// 2^(Words·Width) cases and is intended for tiny geometries; it errors
// above 16 total bits. The paper's coverage theorem is per arbitrary
// initial data, which this verifies directly.
func AllContents(c Campaign, f faults.Fault) (bool, []word.Word, error) {
	bits := c.Words * c.Width
	if bits > 16 {
		return false, nil, fmt.Errorf("faultsim: exhaustive contents need ≤16 total bits, have %d", bits)
	}
	for v := 0; v < 1<<uint(bits); v++ {
		contents := make([]word.Word, c.Words)
		for i := 0; i < c.Words; i++ {
			chunk := (v >> uint(i*c.Width)) & ((1 << uint(c.Width)) - 1)
			contents[i] = word.FromUint64(uint64(chunk))
		}
		cc := c
		cc.Initial = contents
		det, err := Detects(cc, f)
		if err != nil {
			return false, nil, err
		}
		if !det {
			return false, contents, nil
		}
	}
	return true, nil, nil
}
