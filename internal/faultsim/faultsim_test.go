package faultsim

import (
	"math/rand"
	"testing"

	"twmarch/internal/addrgen"
	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// March C- is known to detect 100% of SAFs, TFs and unlinked coupling
// faults on bit-oriented memories (van de Goor 1993). This validates
// the whole simulation chain against the literature.
func TestMarchCMinusBitCoverage(t *testing.T) {
	c := Campaign{
		Test:  march.MustLookup("March C-"),
		Words: 6, Width: 1,
		Mode: DirectCompare,
	}
	rep, err := Run(c, faults.EnumerateAll(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("March C- coverage %.4f, missed %v", rep.Coverage(), rep.Missed)
	}
	for _, cls := range rep.Classes() {
		if rep.ByClass[cls].Coverage() != 1 {
			t.Errorf("class %s coverage %.4f", cls, rep.ByClass[cls].Coverage())
		}
	}
}

// MATS+ does not detect transition faults; the simulator must show
// partial coverage, not just all-pass (sanity against false positives
// in the harness).
func TestMATSPlusMissesTransitionFaults(t *testing.T) {
	c := Campaign{Test: march.MustLookup("MATS+"), Words: 4, Width: 1, Mode: DirectCompare}
	rep, err := Run(c, faults.EnumerateTransition(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() == 1 {
		t.Fatal("MATS+ should not detect every TF")
	}
}

// The transparent bit-oriented March C- preserves the coverage of its
// source (the Nicolaidis theorem the paper builds on).
func TestTransparentBitMarchCMinusCoverage(t *testing.T) {
	bt, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: bt.Transparent, Words: 6, Width: 1, Mode: DirectCompare, Seed: 7}
	rep, err := Run(c, faults.EnumerateAll(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("TMarch C- coverage %.4f, missed %v", rep.Coverage(), rep.Missed)
	}
}

// Coverage of the guaranteed fault classes (Section 5): TWMarch
// detects every SAF, every TF and every *inter-word* coupling fault on
// a word-oriented memory with arbitrary contents. (TSMarch is a full
// march over "big bits", so inter-word pairs traverse all 18 states of
// the paper's Fig. 1(a).)
func TestTWMarchGuaranteedClassesWidth4(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(4, 4)...)
	list = append(list, faults.EnumerateTransition(4, 4)...)
	list = append(list, faults.EnumerateCFst(4, 4, faults.InterWordPairs)...)
	list = append(list, faults.EnumerateCFid(4, 4, faults.InterWordPairs)...)
	list = append(list, faults.EnumerateCFin(4, 4, faults.InterWordPairs)...)
	for _, seed := range []int64{1, 99} {
		c := Campaign{Test: res.TWMarch, Words: 4, Width: 4, Mode: DirectCompare, Seed: seed}
		rep, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Coverage() != 1 {
			t.Fatalf("seed %d: coverage %.4f (%d/%d), missed: %v",
				seed, rep.Coverage(), rep.Detected, rep.Total, rep.Missed[:min(4, len(rep.Missed))])
		}
	}
}

// Reproduction finding of this port: the paper
// claims intra-word CF coverage equal to the nontransparent
// word-oriented test, arguing via four pattern conditions. Under
// instance-level coupling-fault semantics the ATMarch states
// {a, a^c_k} give each bit pair only ONE mixed polarity (bit 0 is set
// in every checkerboard), so a data-dependent fraction of intra-word
// CF instances goes undetected. The test pins the measured coverage
// band: substantial (ATMarch is doing real work — see the ablation
// below) but not 100%.
func TestTWMarchIntraWordCoverageBand(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: res.TWMarch, Words: 3, Width: 8, Mode: DirectCompare, Seed: 3}
	var list []faults.Fault
	list = append(list, faults.EnumerateCFst(3, 8, faults.IntraWordPairs)...)
	list = append(list, faults.EnumerateCFid(3, 8, faults.IntraWordPairs)...)
	list = append(list, faults.EnumerateCFin(3, 8, faults.IntraWordPairs)...)
	rep, err := Run(c, list)
	if err != nil {
		t.Fatal(err)
	}
	cov := rep.Coverage()
	t.Logf("TWMarch intra-word CF coverage: %.2f%% (%d/%d)", 100*cov, rep.Detected, rep.Total)
	if cov < 0.70 || cov >= 1 {
		t.Fatalf("intra-word coverage %.4f outside the expected (0.70, 1) band", cov)
	}
	// CFin instances are direction-only (no forced value) and remain
	// fully covered; the misses concentrate in CFst/CFid.
	if got := rep.ByClass["CFin"].Coverage(); got != 1 {
		t.Errorf("intra-word CFin coverage %.4f, want 1", got)
	}
}

// Scheme 1 replays the full march for every background b_k AND its
// complement, so each intra-word bit pair sees both mixed polarities:
// its intra-word CF coverage is complete. This quantifies the
// coverage-for-speed trade TWM_TA makes.
func TestScheme1IntraWordCoverageComplete(t *testing.T) {
	s1, err := core.Scheme1(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: s1.Test, Words: 3, Width: 4, Mode: DirectCompare, Seed: 3}
	var list []faults.Fault
	list = append(list, faults.EnumerateCFst(3, 4, faults.IntraWordPairs)...)
	list = append(list, faults.EnumerateCFid(3, 4, faults.IntraWordPairs)...)
	list = append(list, faults.EnumerateCFin(3, 4, faults.IntraWordPairs)...)
	rep, err := Run(c, list)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("Scheme 1 intra-word coverage %.4f, missed %v", rep.Coverage(), rep.Missed[:min(4, len(rep.Missed))])
	}
}

// Ablation: TSMarch alone — without ATMarch — misses
// intra-word coupling faults. This is the paper's motivation for the
// added test.
func TestTSMarchAloneMissesIntraWordCF(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: res.TSMarch, Words: 3, Width: 4, Mode: DirectCompare, Seed: 5}
	list := faults.EnumerateCFid(3, 4, faults.IntraWordPairs)
	rep, err := Run(c, list)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() == 1 {
		t.Fatal("TSMarch alone should not cover intra-word CFs")
	}
	// But it must cover the inter-word population in full.
	inter := faults.EnumerateCFid(3, 4, faults.InterWordPairs)
	rep2, err := Run(c, inter)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Coverage() != 1 {
		t.Fatalf("TSMarch inter-word coverage %.4f, missed %v", rep2.Coverage(), rep2.Missed[:min(4, len(rep2.Missed))])
	}
}

// Section 5's equivalence statement in its defensible form: the
// transparent TWMarch running over contents uniformly equal to a
// detects exactly the faults its nontransparent concretization at a
// (the SMarch+AMarch word test) detects over the same contents. The
// two tests perform identical access sequences on fault-free memory,
// so detection equality over *faulty* memories is the substantive
// check. Verified at several content points, including non-trivial a.
func TestCoverageEquivalenceTransparentVsNontransparent(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []string{"0000", "1011", "0110"} {
		a := word.MustParseBits(bits)
		concrete, err := core.Concretize(res.TWMarch, a)
		if err != nil {
			t.Fatal(err)
		}
		uniform := make([]word.Word, 4)
		for i := range uniform {
			uniform[i] = a
		}
		ca := Campaign{Test: res.TWMarch, Words: 4, Width: 4, Mode: DirectCompare, Initial: uniform}
		cb := Campaign{Test: concrete, Words: 4, Width: 4, Mode: DirectCompare, Initial: uniform}
		eq, err := Compare(ca, cb, faults.EnumerateAll(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		// The transparent test can never detect more: it performs the
		// same accesses with snapshot-relative expectations.
		if eq.OnlyA != 0 {
			t.Fatalf("a=%s: transparent side detected %d faults its concretization missed", bits, eq.OnlyA)
		}
		// It can detect less in exactly one circumstance: a CFst whose
		// trigger matches the aggressor's resting value corrupts the
		// initial contents *before* the snapshot; the transparent test
		// absorbs that corruption as legitimate pre-existing data (it
		// has no reference), while the nontransparent test's absolute
		// expectations expose it. This is the known blind spot of
		// transparent testing; every disagreement must be of that
		// form.
		for _, d := range eq.Disagreements {
			cf, ok := d.Fault.(faults.Coupling)
			if !ok || cf.Model != faults.CFst {
				t.Fatalf("a=%s: unexpected disagreement on %s", bits, d.Fault)
			}
			if a.Bit(cf.Aggressor.Bit) != cf.AggrTrigger {
				t.Fatalf("a=%s: CFst disagreement %s without standing trigger", bits, d.Fault)
			}
		}
		t.Logf("a=%s: agree on %d faults; %d initial-state-absorbed CFst instances visible only nontransparently",
			bits, eq.Both+eq.Neither, eq.OnlyB)
		if eq.Both == 0 {
			t.Fatalf("a=%s: nothing detected by either side", bits)
		}
	}
}

// Signature mode at a realistic MISR width detects the SAF/TF
// population in full; the same population compared directly shows the
// signature path introduces no systematic loss.
func TestSignatureModeDetectionWidth16(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 16)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: res.TWMarch, Words: 4, Width: 16, Mode: Signature, Seed: 17}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(4, 16)...)
	list = append(list, faults.EnumerateTransition(4, 16)...)
	rep, err := Run(c, list)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("signature coverage %.4f, missed %v", rep.Coverage(), rep.Missed)
	}
}

// The aliasing problem the paper's introduction attributes to
// signature-based transparent tests, demonstrated: with a narrow
// 4-bit MISR (aliasing probability 1/16) some faults detected by the
// ideal comparator escape the signature comparison.
func TestSignatureAliasingAtNarrowWidth(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(4, 4)...)
	list = append(list, faults.EnumerateTransition(4, 4)...)
	direct := Campaign{Test: res.TWMarch, Words: 4, Width: 4, Mode: DirectCompare, Seed: 17}
	sig := Campaign{Test: res.TWMarch, Words: 4, Width: 4, Mode: Signature, Seed: 17}
	eq, err := Compare(direct, sig, list)
	if err != nil {
		t.Fatal(err)
	}
	if eq.OnlyB != 0 {
		t.Fatalf("signature mode detected %d faults the comparator missed", eq.OnlyB)
	}
	if eq.OnlyA == 0 {
		t.Skip("no aliasing occurred at this seed; the demonstration is probabilistic")
	}
	t.Logf("aliasing: %d/%d faults escaped the 4-bit signature", eq.OnlyA, eq.Both+eq.OnlyA)
}

// Signature and direct-compare must agree on fault-free memory: no
// false positives in either mode.
func TestNoFalsePositives(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DetectMode{DirectCompare, Signature} {
		c := Campaign{Test: res.TWMarch, Words: 8, Width: 8, Mode: mode, Seed: 29}
		// A coupling fault whose victim is never disturbed: aggressor
		// trigger impossible (aggr==victim forbidden, so use a fault on
		// a pristine memory instead: run with no fault by comparing
		// Detects on an identity-like fault). Simplest: a CFst whose
		// forced value equals what the cell always holds cannot be
		// constructed generically, so instead verify via march.Run on
		// a clean memory in campaign geometry.
		mem, err := c.newMemory()
		if err != nil {
			t.Fatal(err)
		}
		run, err := march.Run(c.Test, mem, march.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if run.Detected() {
			t.Fatalf("mode %v: fault-free run flagged", mode)
		}
	}
}

// The guaranteed classes hold for *every* initial content vector,
// exhaustively checked on a tiny geometry: SAF, TF, and inter-word
// CFs are content-independent.
func TestAllContentsDetectionGuaranteedClasses(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: res.TWMarch, Words: 2, Width: 2, Mode: DirectCompare}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(2, 2)...)
	list = append(list, faults.EnumerateTransition(2, 2)...)
	list = append(list, faults.EnumerateCFst(2, 2, faults.InterWordPairs)...)
	list = append(list, faults.EnumerateCFid(2, 2, faults.InterWordPairs)...)
	list = append(list, faults.EnumerateCFin(2, 2, faults.InterWordPairs)...)
	for _, f := range list {
		ok, counterexample, err := AllContents(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s undetected for contents %v", f, counterexample)
		}
	}
}

// Intra-word CFin is direction-only and content-independent as well:
// every instance is caught for every content vector.
func TestAllContentsIntraWordCFin(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: res.TWMarch, Words: 2, Width: 2, Mode: DirectCompare}
	for _, f := range faults.EnumerateCFin(2, 2, faults.IntraWordPairs) {
		ok, counterexample, err := AllContents(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s undetected for contents %v", f, counterexample)
		}
	}
}

func TestAllContentsRejectsLargeGeometry(t *testing.T) {
	c := Campaign{Test: march.MustLookup("March C-"), Words: 64, Width: 1}
	if _, _, err := AllContents(c, faults.StuckAt{Cell: faults.Site{Addr: 0, Bit: 0}, Value: 0}); err == nil {
		t.Fatal("oversized exhaustive sweep accepted")
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := Detects(Campaign{}, faults.StuckAt{}); err == nil {
		t.Error("empty campaign accepted")
	}
	c := Campaign{Test: march.MustLookup("March C-"), Words: 4, Width: 8}
	if _, err := Detects(c, faults.StuckAt{}); err == nil {
		t.Error("width mismatch accepted")
	}
	bad := Campaign{Test: march.MustLookup("March C-"), Words: 4, Width: 1, Initial: make([]word.Word, 2)}
	if _, err := Detects(bad, faults.StuckAt{}); err == nil {
		t.Error("bad initial length accepted")
	}
	sig := Campaign{Test: march.MustLookup("March C-"), Words: 4, Width: 1, Mode: Signature}
	if _, err := Detects(sig, faults.StuckAt{Cell: faults.Site{Addr: 0, Bit: 0}, Value: 1}); err == nil {
		t.Error("signature mode with nontransparent test accepted")
	}
}

func TestReportClassesSorted(t *testing.T) {
	c := Campaign{Test: march.MustLookup("March C-"), Words: 3, Width: 1, Mode: DirectCompare}
	rep, err := Run(c, faults.EnumerateAll(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	classes := rep.Classes()
	want := []string{"CFid", "CFin", "CFst", "SAF", "TF"}
	if len(classes) != len(want) {
		t.Fatalf("classes = %v", classes)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
}

func TestDetectModeString(t *testing.T) {
	if DirectCompare.String() != "direct-compare" || Signature.String() != "signature" {
		t.Error("mode strings broken")
	}
	if DetectMode(7).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Address decoder faults (extension): the march structure with both
// address orders catches aliasing and multi-select decoder defects.
// The bit-oriented March C- is the classical reference.
func TestMarchCMinusDetectsAddressFaults(t *testing.T) {
	c := Campaign{Test: march.MustLookup("March C-"), Words: 5, Width: 1, Mode: DirectCompare}
	rep, err := Run(c, faults.EnumerateAddrFaults(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("AF coverage %.4f, missed %v", rep.Coverage(), rep.Missed)
	}
}

// The transparent word test keeps decoder-fault coverage: aliased and
// shadowed words diverge from their snapshot-based expectations during
// the solid phases.
func TestTWMarchDetectsAddressFaults(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 42} {
		c := Campaign{Test: res.TWMarch, Words: 5, Width: 8, Mode: DirectCompare, Seed: seed}
		rep, err := Run(c, faults.EnumerateAddrFaults(5))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Coverage() != 1 {
			t.Fatalf("seed %d: AF coverage %.4f, missed %v", seed, rep.Coverage(), rep.Missed)
		}
	}
}

// MATS (single address order, no descending element) is the classical
// example of a test with incomplete AF coverage — harness sanity that
// AFs are not trivially detectable.
func TestMATSMissesSomeAddressFaults(t *testing.T) {
	c := Campaign{Test: march.MustLookup("MATS"), Words: 5, Width: 1, Mode: DirectCompare}
	rep, err := Run(c, faults.EnumerateAddrFaults(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() == 1 {
		t.Fatal("MATS should not catch every decoder fault")
	}
}

// Linked-fault experiment (extension; the context March U was
// published in): two coupling faults sharing a victim can mask each
// other, so no simple march covers the whole linked population. The
// substantive, semantics-robust checks: masking really escapes the
// unlinked-complete March C- (coverage < 1), and the two catalog
// tests disagree on instances — their blind spots differ. (The 1997
// March U paper claims superiority on a specific linked subclass
// under its own fault-precedence semantics; under this simulator's
// last-excitation-wins model the aggregate on the general
// two-aggressor population lands differently, which the log records.)
func TestLinkedFaultsMaskingEscapes(t *testing.T) {
	list := faults.EnumerateLinkedCFid(4, 1)
	zeros := make([]word.Word, 4)
	cmC := Campaign{Test: march.MustLookup("March C-"), Words: 4, Width: 1, Mode: DirectCompare, Initial: zeros}
	cmU := Campaign{Test: march.MustLookup("March U"), Words: 4, Width: 1, Mode: DirectCompare, Initial: zeros}
	eq, err := Compare(cmC, cmU, list)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("linked CFid (%d instances): both %d, onlyC- %d, onlyU %d, neither %d",
		len(list), eq.Both, eq.OnlyA, eq.OnlyB, eq.Neither)
	if eq.Neither == 0 {
		t.Error("some linked CFid pairs should escape both tests")
	}
	if eq.OnlyA+eq.OnlyB == 0 {
		t.Error("the two tests should have different linked-fault blind spots")
	}
	cover := func(c Campaign) float64 {
		rep, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Coverage()
	}
	cm := cover(cmC)
	cu := cover(cmU)
	if cm >= 1 || cu >= 1 {
		t.Errorf("linked population should defeat both tests partially (C-=%.3f, U=%.3f)", cm, cu)
	}

	// The transparent transforms preserve both coverages exactly *at
	// the same content point*: linked CFid detection is content-
	// dependent (the forced victim values are absolute), so the
	// comparison fixes the contents at zero, where the transparent
	// test performs its source's accesses.
	coverZero := func(tst *march.Test) float64 {
		c := Campaign{Test: tst, Words: 4, Width: 1, Mode: DirectCompare, Initial: make([]word.Word, 4)}
		rep, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Coverage()
	}
	cmZero := coverZero(march.MustLookup("March C-"))
	cuZero := coverZero(march.MustLookup("March U"))
	btC, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	btU, err := core.TransformBitOriented(march.MustLookup("March U"))
	if err != nil {
		t.Fatal(err)
	}
	if got := coverZero(btC.Transparent); got != cmZero {
		t.Errorf("transparent March C- linked coverage %.4f != %.4f", got, cmZero)
	}
	if got := coverZero(btU.Transparent); got != cuZero {
		t.Errorf("transparent March U linked coverage %.4f != %.4f", got, cuZero)
	}
}

// Dynamic-fault experiment (extension): deceptive read-destructive
// faults (DRDF) return the correct value while corrupting the cell, so
// only a read-after-read observes them before a rewrite masks the
// corruption. March SS (with its r,r pairs) covers them; March C-
// famously does not. RDF, which returns the wrong value immediately,
// is caught by both.
func TestReadDestructiveMarchSSvsMarchCMinus(t *testing.T) {
	list := faults.EnumerateReadDestructive(4, 1)
	cover := func(name string) (rdf, drdf float64) {
		c := Campaign{Test: march.MustLookup(name), Words: 4, Width: 1, Mode: DirectCompare, Initial: make([]word.Word, 4)}
		rep, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ByClass["RDF"].Coverage(), rep.ByClass["DRDF"].Coverage()
	}
	rdfC, drdfC := cover("March C-")
	rdfSS, drdfSS := cover("March SS")
	t.Logf("RDF: C- %.0f%%, SS %.0f%%; DRDF: C- %.0f%%, SS %.0f%%",
		100*rdfC, 100*rdfSS, 100*drdfC, 100*drdfSS)
	if rdfC != 1 || rdfSS != 1 {
		t.Errorf("RDF should be fully covered by both (C-=%.2f, SS=%.2f)", rdfC, rdfSS)
	}
	if drdfSS != 1 {
		t.Errorf("March SS should cover all DRDF, got %.2f", drdfSS)
	}
	if drdfC == 1 {
		t.Error("March C- should miss deceptive read-destructive faults")
	}
}

// The transparent word-oriented transform of March SS keeps its
// dynamic-fault strength for arbitrary contents: the r,r pairs survive
// the transformation verbatim.
func TestTransparentMarchSSKeepsDRDFCoverage(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March SS"), 4)
	if err != nil {
		t.Fatal(err)
	}
	list := faults.EnumerateReadDestructive(3, 4)
	for _, seed := range []int64{2, 77} {
		c := Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: DirectCompare, Seed: seed}
		rep, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Coverage() != 1 {
			t.Fatalf("seed %d: RDF/DRDF coverage %.4f, missed %v", seed, rep.Coverage(), rep.Missed[:min(4, len(rep.Missed))])
		}
	}
}

// NPSF experiment (extension; the context of the paper's references
// [3,17]): march tests do not target neighborhood pattern-sensitive
// faults, which is why dedicated transparent PSF tests exist. The
// measured gap: even the strongest catalog march leaves part of the
// NPSF population undetected on a 5x5 grid.
func TestMarchTestsMissNPSF(t *testing.T) {
	list := faults.EnumerateNPSF(5, 5)
	if len(list) == 0 {
		t.Fatal("empty NPSF population")
	}
	for _, name := range []string{"March C-", "March SS"} {
		c := Campaign{Test: march.MustLookup(name), Words: 25, Width: 1, Mode: DirectCompare, Initial: make([]word.Word, 25)}
		rep, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s NPSF coverage: %.1f%% (%d/%d)", name, 100*rep.Coverage(), rep.Detected, rep.Total)
		if rep.Coverage() >= 1 {
			t.Errorf("%s should not cover the NPSF population", name)
		}
		if rep.Coverage() == 0 {
			t.Errorf("%s should catch at least the solid-pattern NPSFs", name)
		}
	}
}

// Address-sequencer experiment (extension): march theory only needs a
// fixed order and its reverse, so a hardware BIST may step addresses
// with an LFSR or Gray-code sequencer instead of a binary counter.
// Coverage of the cell-fault classes must be order-independent.
func TestCoverageUnderHardwareAddressSequencers(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(4, 4)...)
	list = append(list, faults.EnumerateTransition(4, 4)...)
	list = append(list, faults.EnumerateCFst(4, 4, faults.InterWordPairs)...)
	list = append(list, faults.EnumerateCFid(4, 4, faults.InterWordPairs)...)
	list = append(list, faults.EnumerateCFin(4, 4, faults.InterWordPairs)...)
	for _, kind := range []addrgen.Kind{addrgen.Linear, addrgen.Gray, addrgen.LFSR} {
		seq, err := addrgen.Sequence(kind, 4)
		if err != nil {
			t.Fatal(err)
		}
		missed := 0
		for _, f := range list {
			mem := memory.MustNew(4, 4)
			mem.Randomize(rand.New(rand.NewSource(31)))
			inj, err := faults.Inject(mem, f)
			if err != nil {
				t.Fatal(err)
			}
			run, err := march.Run(res.TWMarch, inj, march.RunOptions{
				StopAtFirstMismatch: true,
				AddressSequence:     seq,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !run.Detected() {
				missed++
			}
		}
		if missed > 0 {
			t.Errorf("%s sequencer: %d/%d guaranteed-class faults missed", kind, missed, len(list))
		}
	}
}

// Transparency is also sequencer-independent.
func TestTransparencyUnderHardwareAddressSequencers(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []addrgen.Kind{addrgen.Gray, addrgen.LFSR} {
		seq, err := addrgen.Sequence(kind, 16)
		if err != nil {
			t.Fatal(err)
		}
		mem := memory.MustNew(16, 8)
		mem.Randomize(rand.New(rand.NewSource(41)))
		before := mem.Snapshot()
		run, err := march.Run(res.TWMarch, mem, march.RunOptions{AddressSequence: seq})
		if err != nil {
			t.Fatal(err)
		}
		if run.Detected() || !mem.Equal(before) {
			t.Errorf("%s sequencer: transparency broken", kind)
		}
	}
}

// Malformed sequences are rejected.
func TestBadAddressSequenceRejected(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.MustNew(4, 4)
	_, err = march.Run(res.TWMarch, mem, march.RunOptions{AddressSequence: []int{0, 0, 1, 2}})
	if err == nil {
		t.Fatal("duplicate-address sequence accepted")
	}
}
