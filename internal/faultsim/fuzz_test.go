package faultsim

import (
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/march"
)

// FuzzDetectsFastVsNaive drives random (geometry, march test, scheme,
// seed, fault, mode) tuples through both simulation paths and requires
// identical verdicts. The seed corpus covers every fault class and
// both modes; the fuzzer then explores the configuration space.
func FuzzDetectsFastVsNaive(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(0), int64(1), uint16(0), false)
	f.Add(uint8(3), uint8(1), uint8(1), int64(7), uint16(40), true)
	f.Add(uint8(2), uint8(2), uint8(2), int64(42), uint16(97), true)
	f.Add(uint8(4), uint8(0), uint8(3), int64(-9), uint16(500), false)
	f.Add(uint8(5), uint8(2), uint8(4), int64(1<<40), uint16(9999), true)
	f.Add(uint8(2), uint8(1), uint8(5), int64(0), uint16(3), false)
	f.Fuzz(func(t *testing.T, wordsSel, widthSel, testSel uint8, seed int64, faultSel uint16, signature bool) {
		words := 2 + int(wordsSel)%3             // 2..4 words
		width := []int{2, 4, 8}[int(widthSel)%3] // power-of-two widths
		baseTests := []string{"MATS", "MATS+", "March C-", "March U"}
		base := march.MustLookup(baseTests[int(testSel)%len(baseTests)])
		var tst *march.Test
		if int(testSel)%2 == 0 {
			res, err := core.TWMTA(base, width)
			if err != nil {
				t.Skip(err)
			}
			tst = res.TWMarch
		} else {
			res, err := core.Scheme1(base, width)
			if err != nil {
				t.Skip(err)
			}
			tst = res.Test
		}
		list := fullCatalog(words, width)
		fault := list[int(faultSel)%len(list)]
		mode := DirectCompare
		if signature {
			mode = Signature
		}
		c := Campaign{Test: tst, Words: words, Width: width, Mode: mode, Seed: seed}
		ref, err := NewReference(c)
		if err != nil {
			t.Fatalf("NewReference: %v", err)
		}
		fast, err := ref.Detects(fault)
		if err != nil {
			t.Fatalf("fast %s: %v", fault, err)
		}
		naive, err := Detects(c, fault)
		if err != nil {
			t.Fatalf("naive %s: %v", fault, err)
		}
		if fast != naive {
			t.Fatalf("%s %dx%d %v seed %d: fault %s: fast=%v naive=%v",
				tst.Name, words, width, mode, seed, fault, fast, naive)
		}
	})
}

// FuzzDetectLaneVsDetects drives random (geometry, march test, scheme,
// seed, chunk, mode) tuples through the bit-parallel lane path and the
// scalar reference replay and requires identical verdicts for every
// lane. The chunk is a window of the full catalog starting at a fuzzed
// offset with a fuzzed length, so tail-lane masking, mixed fault
// classes within one lane, and single-fault lanes are all explored.
func FuzzDetectLaneVsDetects(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(0), int64(1), uint16(0), uint8(63), false)
	f.Add(uint8(3), uint8(1), uint8(1), int64(7), uint16(40), uint8(0), true)
	f.Add(uint8(2), uint8(2), uint8(2), int64(42), uint16(97), uint8(62), true)
	f.Add(uint8(4), uint8(0), uint8(3), int64(-9), uint16(500), uint8(16), false)
	f.Add(uint8(5), uint8(2), uint8(4), int64(1<<40), uint16(9999), uint8(7), true)
	f.Add(uint8(2), uint8(1), uint8(5), int64(0), uint16(3), uint8(1), false)
	f.Fuzz(func(t *testing.T, wordsSel, widthSel, testSel uint8, seed int64, faultSel uint16, chunkSel uint8, signature bool) {
		words := 2 + int(wordsSel)%3             // 2..4 words
		width := []int{2, 4, 8}[int(widthSel)%3] // power-of-two widths
		baseTests := []string{"MATS", "MATS+", "March C-", "March U"}
		base := march.MustLookup(baseTests[int(testSel)%len(baseTests)])
		var tst *march.Test
		if int(testSel)%2 == 0 {
			res, err := core.TWMTA(base, width)
			if err != nil {
				t.Skip(err)
			}
			tst = res.TWMarch
		} else {
			res, err := core.Scheme1(base, width)
			if err != nil {
				t.Skip(err)
			}
			tst = res.Test
		}
		list := fullCatalog(words, width)
		start := int(faultSel) % len(list)
		n := 1 + int(chunkSel)%LaneWidth
		chunk := list[start:min(start+n, len(list))]
		mode := DirectCompare
		if signature {
			mode = Signature
		}
		c := Campaign{Test: tst, Words: words, Width: width, Mode: mode, Seed: seed}
		ref, err := NewReference(c)
		if err != nil {
			t.Fatalf("NewReference: %v", err)
		}
		bits, err := ref.DetectLane(chunk)
		if err != nil {
			t.Fatalf("DetectLane: %v", err)
		}
		for i, fault := range chunk {
			scalar, err := ref.Detects(fault)
			if err != nil {
				t.Fatalf("scalar %s: %v", fault, err)
			}
			if lane := bits>>uint(i)&1 == 1; lane != scalar {
				t.Fatalf("%s %dx%d %v seed %d: fault %s (lane %d): lane=%v scalar=%v",
					tst.Name, words, width, mode, seed, fault, i, lane, scalar)
			}
		}
	})
}
