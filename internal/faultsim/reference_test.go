package faultsim

import (
	"reflect"
	"sync"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/word"
)

// fullCatalog enumerates every fault model the library implements at
// one geometry: the Section 2 population (SAF, TF, CFst, CFid, CFin
// over all pairs), address-decoder faults, linked idempotent coupling,
// dynamic read disturbs (RDF/DRDF), and — on bit-oriented grids with
// interior cells — static NPSF.
func fullCatalog(words, width int) []faults.Fault {
	list := faults.EnumerateAll(words, width)
	list = append(list, faults.EnumerateAddrFaults(words)...)
	list = append(list, faults.EnumerateLinkedCFid(words, width)...)
	list = append(list, faults.EnumerateReadDestructive(words, width)...)
	if width == 1 && words == 9 {
		list = append(list, faults.EnumerateNPSF(3, 3)...)
	}
	return list
}

// equivalenceConfigs returns the campaign configurations the fast/naive
// equivalence suite exercises: word-oriented TWMarch and Scheme 1
// tests, a bit-oriented transparent march with NPSF in the population,
// in both detection modes.
func equivalenceConfigs(t *testing.T) []Campaign {
	t.Helper()
	twm, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := core.Scheme1(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	return []Campaign{
		{Test: twm.TWMarch, Words: 3, Width: 4, Mode: DirectCompare, Seed: 1},
		{Test: twm.TWMarch, Words: 3, Width: 4, Mode: Signature, Seed: 1},
		{Test: twm.TWMarch, Words: 4, Width: 4, Mode: Signature, Seed: 99},
		{Test: mu.TWMarch, Words: 2, Width: 8, Mode: DirectCompare, Seed: 7},
		{Test: mu.TWMarch, Words: 2, Width: 8, Mode: Signature, Seed: 7},
		{Test: s1.Test, Words: 3, Width: 4, Mode: DirectCompare, Seed: 3},
		{Test: s1.Test, Words: 3, Width: 4, Mode: Signature, Seed: 3},
		{Test: bt.Transparent, Words: 9, Width: 1, Mode: DirectCompare, Seed: 11},
		{Test: bt.Transparent, Words: 9, Width: 1, Mode: Signature, Seed: 11},
	}
}

// The reference-trace fast path must return bit-identical verdicts to
// the naive one-shot path for every fault model in the library, in
// both detection modes — the acceptance gate of the fast path.
func TestFastVsNaiveFullCatalog(t *testing.T) {
	for _, c := range equivalenceConfigs(t) {
		list := fullCatalog(c.Words, c.Width)
		ref, err := NewReference(c)
		if err != nil {
			t.Fatalf("%s %dx%d %v: %v", c.Test.Name, c.Words, c.Width, c.Mode, err)
		}
		for _, f := range list {
			naive, err := Detects(c, f)
			if err != nil {
				t.Fatalf("naive %s: %v", f, err)
			}
			fast, err := ref.Detects(f)
			if err != nil {
				t.Fatalf("fast %s: %v", f, err)
			}
			if naive != fast {
				t.Errorf("%s %dx%d %v: fault %s: naive=%v fast=%v",
					c.Test.Name, c.Words, c.Width, c.Mode, f, naive, fast)
			}
		}
	}
}

// Run must produce byte-for-byte identical Reports on both paths —
// same tallies, same Missed list (order and cap included).
func TestRunFastMatchesNaiveReport(t *testing.T) {
	for _, c := range equivalenceConfigs(t) {
		list := fullCatalog(c.Words, c.Width)
		fast, err := Run(c, list)
		if err != nil {
			t.Fatal(err)
		}
		naive := c
		naive.Naive = true
		slow, err := Run(naive, list)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%s %dx%d %v: fast and naive reports differ:\nfast:  %+v\nnaive: %+v",
				c.Test.Name, c.Words, c.Width, c.Mode, fast, slow)
		}
	}
}

// A Reference is reusable: running the same list twice must give
// identical reports (the pooled arena leaks no state between faults or
// runs).
func TestReferenceRunTwice(t *testing.T) {
	c := equivalenceConfigs(t)[1] // signature mode exercises the MISR resume
	list := fullCatalog(c.Words, c.Width)
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ref.Run(list)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ref.Run(list)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeat run differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// A Reference must be safe under the campaign worker pool: concurrent
// Detects calls (each checking out a pooled arena) must agree with the
// serial verdicts. Run under -race in CI.
func TestReferenceConcurrentDetects(t *testing.T) {
	c := equivalenceConfigs(t)[2]
	list := fullCatalog(c.Words, c.Width)
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]bool, len(list))
	for i, f := range list {
		if serial[i], err = ref.Detects(f); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(list); i += workers {
				det, err := ref.Detects(list[i])
				if err != nil {
					errs <- err
					return
				}
				if det != serial[i] {
					t.Errorf("fault %s: concurrent=%v serial=%v", list[i], det, serial[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Compare accepts a different path per side; verdicts must not depend
// on the combination.
func TestCompareMixedPaths(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := core.Scheme1(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	a := Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: DirectCompare, Seed: 5}
	b := Campaign{Test: s1.Test, Words: 3, Width: 4, Mode: DirectCompare, Seed: 5}
	list := fullCatalog(3, 4)
	fast, err := Compare(a, b, list)
	if err != nil {
		t.Fatal(err)
	}
	an, bn := a, b
	an.Naive = true
	bn.Naive = true
	slow, err := Compare(an, bn, list)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Compare(an, b, list)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) || !reflect.DeepEqual(fast, mixed) {
		t.Errorf("Compare path combinations disagree:\nfast:  %+v\nnaive: %+v\nmixed: %+v", fast, slow, mixed)
	}
}

// The reference honors fixed initial contents the same way the naive
// path does.
func TestReferenceFixedInitial(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	initial := []word.Word{word.FromUint64(0xa), word.FromUint64(0x5), word.FromUint64(0xf)}
	c := Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: Signature, Initial: initial}
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fullCatalog(3, 4) {
		naive, err := Detects(c, f)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := ref.Detects(f)
		if err != nil {
			t.Fatal(err)
		}
		if naive != fast {
			t.Errorf("fixed contents: fault %s: naive=%v fast=%v", f, naive, fast)
		}
	}
}

// NewReference surfaces the same configuration errors the naive path
// reports per fault.
func TestNewReferenceErrors(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    Campaign
	}{
		{"no test", Campaign{Words: 3, Width: 4}},
		{"width mismatch", Campaign{Test: res.TWMarch, Words: 3, Width: 8}},
		{"nontransparent signature", Campaign{Test: march.MustLookup("March C-"), Words: 3, Width: 1, Mode: Signature}},
		{"bad geometry", Campaign{Test: res.TWMarch, Words: 0, Width: 4}},
		{"bad initial length", Campaign{Test: res.TWMarch, Words: 3, Width: 4, Initial: []word.Word{word.Zero}}},
		{"unknown mode", Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: DetectMode(42)}},
	}
	for _, tc := range cases {
		if _, err := NewReference(tc.c); err == nil {
			t.Errorf("%s: NewReference accepted a bad campaign", tc.name)
		}
	}
}

// Faults whose sites fall outside the geometry must error identically
// through the reference (Inject runs per fault on both paths).
func TestReferenceInjectError(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: DirectCompare, Seed: 1}
	ref, err := NewReference(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := faults.StuckAt{Cell: faults.Site{Addr: 99, Bit: 0}, Value: 1}
	if _, err := ref.Detects(bad); err == nil {
		t.Error("fast path accepted an out-of-range fault")
	}
	if _, err := Detects(c, bad); err == nil {
		t.Error("naive path accepted an out-of-range fault")
	}
}
