package faultsim

// Bit-parallel lane replay: the batch fault-simulation path.
//
// A lane packs up to LaneWidth faulty machines into uint64 bit-planes
// (see internal/memory's plane helpers): bit L of plane (addr, b) is
// the value of memory bit (addr, b) in lane machine L. One replay of
// the compiled schedule then advances all 64 machines at once — march
// writes become a handful of bitwise plane transforms, fault
// activation becomes per-plane masks or per-address hooks, and
// detection folds whole lanes (XOR against the expected row in
// DirectCompare, 64 parallel MISR states compressed plane-wise in
// Signature mode).
//
// The dominant fault classes are pure mask algebra, applied to every
// lane in one expression per plane:
//
//	st := (v | stuck1) &^ stuck0       // stuck-at forcing
//	st &^= failRise &^ old & v         // failed 0→1 transitions
//	st |= failFall & old &^ v          // failed 1→0 transitions
//
// Everything else (coupling, linked, decoder, read-disturb,
// pattern-sensitive faults) registers per-address hooks that fix up
// single lanes after the bulk commit; the hook bodies replicate the
// scalar semantics of internal/faults exactly, including effect order
// within one write. Lane verdicts are asserted bit-identical to
// Reference.Detects (and transitively to the naive Detects) by the
// equivalence suite and FuzzDetectLaneVsDetects.

import (
	"fmt"
	"math/bits"

	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// LaneWidth is the number of faulty machines one lane replay evaluates
// in parallel — the lane capacity of DetectLane and the chunk size of
// RunLanes.
const LaneWidth = 64

// laneOp is one schedule step precompiled for plane replay: the refOp
// datum broadcast into per-bit lane rows so the hot loop works on
// uint64 rows without re-broadcasting per call.
type laneOp struct {
	kind        march.OpKind
	addr        int
	base        int // addr * width: first plane index of the word
	transparent bool
	// rows[b] is the datum bit b broadcast across all 64 lanes: the
	// effective XOR mask for transparent data, the literal value
	// otherwise.
	rows []uint64
}

// compileLaneOps lowers a compiled scalar schedule into broadcast form.
// All row slices share one backing array — the schedule is immutable
// after compilation and the single allocation keeps NewReference cheap.
func compileLaneOps(sched []refOp, width int) []laneOp {
	out := make([]laneOp, len(sched))
	backing := make([]uint64, len(sched)*width)
	for i, op := range sched {
		lo := laneOp{
			kind:        op.kind,
			addr:        op.addr,
			base:        op.addr * width,
			transparent: op.transparent,
			rows:        backing[i*width : (i+1)*width : (i+1)*width],
		}
		d := op.val
		if op.transparent {
			d = op.eff
		}
		memory.BroadcastPlanes(lo.rows, []word.Word{d}, width)
		out[i] = lo
	}
	return out
}

// hookKind tags the per-address fix-up hooks a lane replay runs after
// bulk-committing a write (write hooks) or loading a read row (read
// hooks).
type hookKind uint8

const (
	// hookCFst enforces state coupling: whenever the committed
	// aggressor bit sits in the trigger state, the victim bit is
	// forced. Registered at both the aggressor's and the victim's
	// address; enforcement after writes elsewhere is a provable no-op.
	hookCFst hookKind = iota
	// hookCFid forces the victim bit when the aggressor bit underwent
	// the trigger transition in this write. Registered at the
	// aggressor's address only (same-word and cross-word cases both
	// reduce to a post-commit fix-up there).
	hookCFid
	// hookCFin flips the victim bit when the aggressor bit underwent
	// the trigger transition.
	hookCFin
	// hookChain replays a Linked fault's component chain with exact
	// scalar ordering (A's onWrite, B's onWrite, commit, A's side
	// effects, B's side effects).
	hookChain
	// hookAliasWrite copies the written row to the alias target (the
	// redirect mask already preserved the From word's own storage).
	hookAliasWrite
	// hookShadowWrite copies the committed From row to the shadow
	// target (multi-select decoder fault).
	hookShadowWrite
	// hookNPSF enforces a neighborhood pattern-sensitive fault after a
	// write to the victim or any valid neighbor.
	hookNPSF
	// hookAliasRead overrides the read row with the alias target's row.
	hookAliasRead
	// hookShadowRead overrides the read row with the wired-AND of the
	// From and To rows.
	hookShadowRead
	// hookReadDisturb implements RDF/DRDF: a read of the sensitive
	// polarity flips the stored bit, and (unless deceptive) the
	// returned row too.
	hookReadDisturb
)

// laneHook is one registered fix-up. Only the fields its kind uses are
// populated; lane is always the single machine bit the hook acts on.
// The struct is deliberately small (48 bytes): packing copies one hook
// per registered address for every fault of every chunk, so hook size
// is directly on the DetectLane hot path. Bulky payloads (Linked
// chains, NPSF neighborhoods) live in arena side tables reached
// through dataIdx.
type laneHook struct {
	lane   uint64 // single machine bit the hook acts on
	forced uint64 // lane bit pre-multiplied by the forced victim value

	// Coupling hooks.
	aggrIdx   int32 // plane index of the aggressor bit (hookCFst)
	aggrBit   int32 // aggressor bit within the written word (transition hooks)
	victimIdx int32 // plane index of the victim bit

	// Decoder faults.
	from, to int32

	// Index into the arena side table the kind uses: chains for
	// hookChain, npsf for hookNPSF.
	dataIdx int32

	// Read disturb.
	cellBit int32

	kind hookKind
	rise bool // trigger: state 1 (hookCFst) or rising transition

	// Read disturb.
	trigVal1  bool
	deceptive bool
}

// npsfSpec is the neighborhood payload of a hookNPSF, held in a side
// table so the hot hook struct stays small: the N,S,W,E neighbor
// addresses (-1 off-grid) and the sensitizing pattern.
type npsfSpec struct {
	neigh   [4]int32
	pattern [4]int32
}

// laneArena is the pooled scratch state one DetectLane call replays in:
// the bit-planes of all 64 machines, the bulk fault masks, the
// per-address hook lists, and — in Signature mode — the plane-wise MISR
// states of both passes.
type laneArena struct {
	planes []uint64 // words*width bit-planes, index addr*width+b
	snap   []uint64 // per-run snapshot in the same layout

	// Bulk per-plane fault masks (bit L set = lane L carries that
	// fault at this bit cell).
	stuck0, stuck1     []uint64
	failRise, failFall []uint64

	// redirect[addr] holds the lanes whose writes to addr are decoder-
	// redirected: the bulk commit preserves the old row for them.
	redirect []uint64

	// masked[addr] records whether any stuck-at or transition mask is
	// set on a plane of addr, letting write skip the mask algebra on
	// clean addresses (most addresses of a coupling-dominated chunk).
	masked []bool

	writeHooks [][]laneHook
	readHooks  [][]laneHook

	// writeLanes[addr] and readLanes[addr] are the unions of the lane
	// bits of the hooks registered at addr. ANDed against live, they
	// skip a whole hook loop once every lane it serves has detected,
	// and gate hook dispatch without touching the slice headers.
	// nReadHooks counts read hooks across all addresses: when zero the
	// snapshot sweep degenerates to one bulk copy.
	writeLanes []uint64
	readLanes  []uint64
	nReadHooks int

	// Side tables for the bulky hook payloads (laneHook.dataIdx).
	chains [][2]faults.Coupling
	npsf   []npsfSpec

	// Signature mode: the two plane-wise MISR signatures.
	misr, sigA []uint64

	// scratch backs the faults.Inject fallback on the error and
	// unsupported-type paths, so DetectLane reports byte-identical
	// errors to the scalar paths without paying Inject per fault.
	scratch *memory.Memory

	active   uint64
	detected uint64
	// live gates hook execution: hooks whose lane bit is clear are
	// skipped. DirectCompare narrows it to the still-undetected lanes
	// (a detected lane's later evolution cannot change its sticky
	// verdict); Signature keeps every lane live, since signatures
	// depend on the full replay.
	live uint64
	slow []int // lanes deferred to the scalar oracle (unknown types)

	valRow, oldRow, rawRow [word.MaxWidth]uint64
}

func newLaneArena(r *Reference) *laneArena {
	n := r.words * r.width
	// One backing array for the six plane-shaped buffers plus the
	// three per-word masks: arenas are built per pool miss, so the
	// allocation count matters more than locality here.
	back := make([]uint64, 6*n+3*r.words)
	ar := &laneArena{
		planes:     back[0*n : 1*n : 1*n],
		snap:       back[1*n : 2*n : 2*n],
		stuck0:     back[2*n : 3*n : 3*n],
		stuck1:     back[3*n : 4*n : 4*n],
		failRise:   back[4*n : 5*n : 5*n],
		failFall:   back[5*n : 6*n : 6*n],
		redirect:   back[6*n : 6*n+r.words : 6*n+r.words],
		writeLanes: back[6*n+r.words : 6*n+2*r.words : 6*n+2*r.words],
		readLanes:  back[6*n+2*r.words:],
		masked:     make([]bool, r.words),
		writeHooks: make([][]laneHook, r.words),
		readHooks:  make([][]laneHook, r.words),
		scratch:    memory.MustNew(r.words, r.width),
	}
	if r.mode == Signature {
		ar.misr = make([]uint64, r.width)
		ar.sigA = make([]uint64, r.width)
	}
	return ar
}

// reset restores the arena to the fault-free broadcast of the
// campaign's initial contents with no faults packed.
func (ar *laneArena) reset(r *Reference) {
	memory.BroadcastPlanes(ar.planes, r.initial, r.width)
	clear(ar.stuck0)
	clear(ar.stuck1)
	clear(ar.failRise)
	clear(ar.failFall)
	clear(ar.redirect)
	clear(ar.masked)
	clear(ar.writeLanes)
	clear(ar.readLanes)
	ar.nReadHooks = 0
	for i := range ar.writeHooks {
		ar.writeHooks[i] = ar.writeHooks[i][:0]
	}
	for i := range ar.readHooks {
		ar.readHooks[i] = ar.readHooks[i][:0]
	}
	ar.chains = ar.chains[:0]
	ar.npsf = ar.npsf[:0]
	ar.active, ar.detected = 0, 0
	ar.live = ^uint64(0)
	ar.slow = ar.slow[:0]
}

// addWrite and addRead register hooks, seeding a fresh address's list
// with a capacity that skips append's 1→2→4→… growth reallocations
// (hook lists are rebuilt for every chunk; pooled arenas keep the
// capacity across chunks).
func (ar *laneArena) addWrite(addr int, h laneHook) {
	s := ar.writeHooks[addr]
	if cap(s) == 0 {
		s = make([]laneHook, 0, 16)
	}
	ar.writeHooks[addr] = append(s, h)
	ar.writeLanes[addr] |= h.lane
}

func (ar *laneArena) addRead(addr int, h laneHook) {
	s := ar.readHooks[addr]
	if cap(s) == 0 {
		s = make([]laneHook, 0, 8)
	}
	ar.readHooks[addr] = append(s, h)
	ar.readLanes[addr] |= h.lane
	ar.nReadHooks++
}

// packResult classifies what pack did with one fault.
type packResult int

const (
	// packOK: the fault is valid and registered on its lane.
	packOK packResult = iota
	// packInvalid: a site falls outside the geometry (or an equivalent
	// constraint faults.Inject enforces is violated); nothing was
	// registered. DetectLane re-runs faults.Inject to surface the
	// byte-identical error message.
	packInvalid
	// packUnsupported: a fault type the lane engine does not model;
	// DetectLane defers the lane to the scalar oracle.
	packUnsupported
)

func (r *Reference) siteOK(s faults.Site) bool {
	return s.Addr >= 0 && s.Addr < r.words && s.Bit >= 0 && s.Bit < r.width
}

func (r *Reference) addrOK(a int) bool { return a >= 0 && a < r.words }

// pack validates one fault (the same constraints faults.Inject
// enforces, without its allocations), registers it on lane machine
// `lane` (a single bit mask) and applies its injection-time initial
// condition to the planes.
func (ar *laneArena) pack(r *Reference, f faults.Fault, lane uint64) packResult {
	w := r.width
	switch t := f.(type) {
	case faults.StuckAt:
		if !r.siteOK(t.Cell) {
			return packInvalid
		}
		idx := t.Cell.Addr*w + t.Cell.Bit
		ar.masked[t.Cell.Addr] = true
		if t.Value == 1 {
			ar.stuck1[idx] |= lane
			ar.planes[idx] |= lane
		} else {
			ar.stuck0[idx] |= lane
			ar.planes[idx] &^= lane
		}
	case faults.Transition:
		if !r.siteOK(t.Cell) {
			return packInvalid
		}
		idx := t.Cell.Addr*w + t.Cell.Bit
		ar.masked[t.Cell.Addr] = true
		if t.Rise {
			ar.failRise[idx] |= lane
		} else {
			ar.failFall[idx] |= lane
		}
	case faults.Coupling:
		if !r.siteOK(t.Aggressor) || !r.siteOK(t.Victim) || t.Aggressor == t.Victim {
			return packInvalid
		}
		ar.packCoupling(&t, lane, w)
	case faults.Linked:
		if !r.siteOK(t.A.Aggressor) || !r.siteOK(t.A.Victim) ||
			!r.siteOK(t.B.Aggressor) || !r.siteOK(t.B.Victim) {
			return packInvalid
		}
		ar.chains = append(ar.chains, [2]faults.Coupling{t.A, t.B})
		h := laneHook{kind: hookChain, lane: lane, dataIdx: int32(len(ar.chains) - 1)}
		for _, a := range chainAddrs(t) {
			ar.addWrite(a, h)
		}
		ar.initCoupling(&t.A, lane, w)
		ar.initCoupling(&t.B, lane, w)
	case faults.AddrAlias:
		if !r.addrOK(t.From) || !r.addrOK(t.To) || t.From == t.To {
			return packInvalid
		}
		ar.redirect[t.From] |= lane
		ar.addWrite(t.From, laneHook{kind: hookAliasWrite, lane: lane, from: int32(t.From), to: int32(t.To)})
		ar.addRead(t.From, laneHook{kind: hookAliasRead, lane: lane, from: int32(t.From), to: int32(t.To)})
	case faults.AddrShadow:
		if !r.addrOK(t.From) || !r.addrOK(t.To) || t.From == t.To {
			return packInvalid
		}
		ar.addWrite(t.From, laneHook{kind: hookShadowWrite, lane: lane, from: int32(t.From), to: int32(t.To)})
		ar.addRead(t.From, laneHook{kind: hookShadowRead, lane: lane, from: int32(t.From), to: int32(t.To)})
	case faults.ReadDestructive:
		if !r.siteOK(t.Cell) {
			return packInvalid
		}
		ar.addRead(t.Cell.Addr, laneHook{
			kind: hookReadDisturb, lane: lane,
			cellBit: int32(t.Cell.Bit), trigVal1: t.Value == 1, deceptive: t.Deceptive,
		})
	case faults.NPSF:
		if t.Rows < 1 || t.Cols < 1 || !r.addrOK(t.Victim) || !r.addrOK(t.Rows*t.Cols-1) {
			return packInvalid
		}
		spec := npsfSpec{neigh: npsfNeighbors(t)}
		for i, p := range t.Pattern {
			spec.pattern[i] = int32(p)
		}
		ar.npsf = append(ar.npsf, spec)
		h := laneHook{
			kind: hookNPSF, lane: lane,
			victimIdx: int32(t.Victim * w),
			forced:    lane * uint64(t.Value),
			dataIdx:   int32(len(ar.npsf) - 1),
		}
		ar.addWrite(t.Victim, h)
		for _, n := range spec.neigh {
			if n >= 0 {
				ar.addWrite(int(n), h)
			}
		}
		ar.enforceNPSF(&h, w)
	default:
		return packUnsupported
	}
	return packOK
}

// packCoupling registers a plain coupling fault. Each model reduces to
// one post-commit hook: CFst is a standing enforcement at both involved
// addresses (the same-word onWrite override and the after-write
// enforcement coincide), CFid/CFin fire on the committed aggressor
// transition at the aggressor's address (for the same-word case the
// committed row already equals the written value, so fixing up the
// victim bit afterwards is the scalar onWrite result).
func (ar *laneArena) packCoupling(c *faults.Coupling, lane uint64, w int) {
	switch c.Model {
	case faults.CFst:
		h := laneHook{
			kind: hookCFst, lane: lane,
			aggrIdx:   int32(c.Aggressor.Addr*w + c.Aggressor.Bit),
			victimIdx: int32(c.Victim.Addr*w + c.Victim.Bit),
			rise:      c.AggrTrigger == 1,
			forced:    lane * uint64(c.VictimValue),
		}
		ar.addWrite(c.Aggressor.Addr, h)
		if c.Victim.Addr != c.Aggressor.Addr {
			ar.addWrite(c.Victim.Addr, h)
		}
		ar.enforceCFst(&h)
	case faults.CFid:
		ar.addWrite(c.Aggressor.Addr, laneHook{
			kind: hookCFid, lane: lane,
			aggrBit:   int32(c.Aggressor.Bit),
			victimIdx: int32(c.Victim.Addr*w + c.Victim.Bit),
			rise:      c.AggrTrigger == 1,
			forced:    lane * uint64(c.VictimValue),
		})
	case faults.CFin:
		ar.addWrite(c.Aggressor.Addr, laneHook{
			kind: hookCFin, lane: lane,
			aggrBit:   int32(c.Aggressor.Bit),
			victimIdx: int32(c.Victim.Addr*w + c.Victim.Bit),
			rise:      c.AggrTrigger == 1,
		})
	}
}

// initCoupling applies a coupling component's injection-time initial
// condition (CFst standing enforcement) to lane machine `lane`.
func (ar *laneArena) initCoupling(c *faults.Coupling, lane uint64, w int) {
	if c.Model != faults.CFst {
		return
	}
	ai := c.Aggressor.Addr*w + c.Aggressor.Bit
	vi := c.Victim.Addr*w + c.Victim.Bit
	if (ar.planes[ai]&lane != 0) == (c.AggrTrigger == 1) {
		ar.planes[vi] = ar.planes[vi]&^lane | lane*uint64(c.VictimValue)
	}
}

// chainAddrs collects the unique addresses a Linked fault's hook must
// fire at: each CFst component needs its aggressor and victim words,
// transition-triggered components only their aggressor word.
func chainAddrs(t faults.Linked) []int {
	var addrs [4]int
	n := 0
	add := func(a int) {
		for i := 0; i < n; i++ {
			if addrs[i] == a {
				return
			}
		}
		addrs[n] = a
		n++
	}
	for _, c := range [2]faults.Coupling{t.A, t.B} {
		add(c.Aggressor.Addr)
		if c.Model == faults.CFst {
			add(c.Victim.Addr)
		}
	}
	return addrs[:n]
}

// npsfNeighbors mirrors the scalar NPSF neighborhood: the N,S,W,E
// addresses of the victim on the Rows×Cols grid, -1 where the victim
// sits on an edge (edge neighbors read as 0).
func npsfNeighbors(f faults.NPSF) [4]int32 {
	row, col := f.Victim/f.Cols, f.Victim%f.Cols
	out := [4]int32{-1, -1, -1, -1}
	if row > 0 {
		out[0] = int32(f.Victim - f.Cols)
	}
	if row < f.Rows-1 {
		out[1] = int32(f.Victim + f.Cols)
	}
	if col > 0 {
		out[2] = int32(f.Victim - 1)
	}
	if col < f.Cols-1 {
		out[3] = int32(f.Victim + 1)
	}
	return out
}

// write bulk-commits valRow[0:width] to the word at addr across all
// lanes — stuck-at and transition masks applied in-line, decoder-
// redirected lanes keeping their old row — then runs the address's
// write hooks. oldRow is left holding the pre-write row for the hooks.
func (ar *laneArena) write(width, addr, base int) {
	hooked := ar.writeLanes[addr]&ar.live != 0
	red := ar.redirect[addr]
	if !ar.masked[addr] && red == 0 {
		// No stuck-at/transition mask and no redirect on this address:
		// the commit is a plain store. oldRow is only read by write
		// hooks, so it is skipped when none are registered here.
		if !hooked {
			copy(ar.planes[base:base+width], ar.valRow[:width])
			return
		}
		for b := 0; b < width; b++ {
			i := base + b
			ar.oldRow[b] = ar.planes[i]
			ar.planes[i] = ar.valRow[b]
		}
		ar.runWriteHooks(width, addr, base)
		return
	}
	for b := 0; b < width; b++ {
		i := base + b
		old := ar.planes[i]
		ar.oldRow[b] = old
		v := ar.valRow[b]
		st := (v | ar.stuck1[i]) &^ ar.stuck0[i]
		st &^= ar.failRise[i] &^ old & v
		st |= ar.failFall[i] & old &^ v
		st = st&^red | old&red
		ar.planes[i] = st
	}
	if hooked {
		ar.runWriteHooks(width, addr, base)
	}
}

func (ar *laneArena) enforceCFst(h *laneHook) {
	if (ar.planes[h.aggrIdx]&h.lane != 0) == h.rise {
		ar.planes[h.victimIdx] = ar.planes[h.victimIdx]&^h.lane | h.forced
	}
}

func (ar *laneArena) enforceNPSF(h *laneHook, width int) {
	spec := &ar.npsf[h.dataIdx]
	for i := 0; i < 4; i++ {
		var bit int32
		if n := spec.neigh[i]; n >= 0 && ar.planes[int(n)*width]&h.lane != 0 {
			bit = 1
		}
		if bit != spec.pattern[i] {
			return
		}
	}
	ar.planes[h.victimIdx] = ar.planes[h.victimIdx]&^h.lane | h.forced
}

func (ar *laneArena) runWriteHooks(width, addr, base int) {
	hooks := ar.writeHooks[addr]
	for i := range hooks {
		h := &hooks[i]
		if h.lane&ar.live == 0 {
			continue
		}
		switch h.kind {
		case hookCFst:
			ar.enforceCFst(h)
		case hookCFid:
			ob, nb := ar.oldRow[h.aggrBit], ar.planes[base+int(h.aggrBit)]
			trig := ob &^ nb
			if h.rise {
				trig = nb &^ ob
			}
			if trig&h.lane != 0 {
				ar.planes[h.victimIdx] = ar.planes[h.victimIdx]&^h.lane | h.forced
			}
		case hookCFin:
			ob, nb := ar.oldRow[h.aggrBit], ar.planes[base+int(h.aggrBit)]
			trig := ob &^ nb
			if h.rise {
				trig = nb &^ ob
			}
			if trig&h.lane != 0 {
				ar.planes[h.victimIdx] ^= h.lane
			}
		case hookChain:
			ar.runChain(h, width, addr, base)
		case hookAliasWrite:
			tb := int(h.to) * width
			for b := 0; b < width; b++ {
				ar.planes[tb+b] = ar.planes[tb+b]&^h.lane | ar.valRow[b]&h.lane
			}
		case hookShadowWrite:
			fb, tb := int(h.from)*width, int(h.to)*width
			for b := 0; b < width; b++ {
				ar.planes[tb+b] = ar.planes[tb+b]&^h.lane | ar.planes[fb+b]&h.lane
			}
		case hookNPSF:
			ar.enforceNPSF(h, width)
		}
	}
}

func laneTransitioned(ob, nb, trigger int) bool {
	if trigger == 1 {
		return ob == 0 && nb == 1
	}
	return ob == 1 && nb == 0
}

// runChain replays a Linked fault's component chain for one lane with
// exact scalar ordering: both components' onWrite on the in-flight
// value (B sees A's modification), commit, then both components' side
// effects on the committed state.
func (ar *laneArena) runChain(h *laneHook, width, addr, base int) {
	lane := h.lane
	// Overlay of victim-bit modifications the onWrite chain makes to
	// the written value; the bulk commit already stored the raw value
	// for this lane, so only these deltas need re-committing.
	var ovBit, ovVal [2]int
	nov := 0
	getV := func(b int) int {
		for k := nov - 1; k >= 0; k-- {
			if ovBit[k] == b {
				return ovVal[k]
			}
		}
		if ar.valRow[b]&lane != 0 {
			return 1
		}
		return 0
	}
	comps := &ar.chains[h.dataIdx]
	for ci := 0; ci < len(comps); ci++ {
		c := &comps[ci]
		if c.Aggressor.Addr != addr || c.Victim.Addr != addr {
			continue
		}
		ob := 0
		if ar.oldRow[c.Aggressor.Bit]&lane != 0 {
			ob = 1
		}
		nb := getV(c.Aggressor.Bit)
		switch c.Model {
		case faults.CFst:
			if nb == c.AggrTrigger {
				ovBit[nov], ovVal[nov] = c.Victim.Bit, c.VictimValue
				nov++
			}
		case faults.CFid:
			if laneTransitioned(ob, nb, c.AggrTrigger) {
				ovBit[nov], ovVal[nov] = c.Victim.Bit, c.VictimValue
				nov++
			}
		case faults.CFin:
			if laneTransitioned(ob, nb, c.AggrTrigger) {
				v := 1 - getV(c.Victim.Bit)
				ovBit[nov], ovVal[nov] = c.Victim.Bit, v
				nov++
			}
		}
	}
	for k := 0; k < nov; k++ {
		idx := base + ovBit[k]
		ar.planes[idx] = ar.planes[idx]&^lane | uint64(ovVal[k])*lane
	}
	for ci := 0; ci < len(comps); ci++ {
		c := &comps[ci]
		if c.Model == faults.CFst {
			// Standing enforcement after every write.
			ab := 0
			if ar.planes[c.Aggressor.Addr*width+c.Aggressor.Bit]&lane != 0 {
				ab = 1
			}
			if ab == c.AggrTrigger {
				vi := c.Victim.Addr*width + c.Victim.Bit
				ar.planes[vi] = ar.planes[vi]&^lane | uint64(c.VictimValue)*lane
			}
			continue
		}
		if c.Aggressor.Addr != addr || c.Victim.Addr == addr {
			continue
		}
		ob := 0
		if ar.oldRow[c.Aggressor.Bit]&lane != 0 {
			ob = 1
		}
		nb := 0
		if ar.planes[base+c.Aggressor.Bit]&lane != 0 {
			nb = 1
		}
		if !laneTransitioned(ob, nb, c.AggrTrigger) {
			continue
		}
		vi := c.Victim.Addr*width + c.Victim.Bit
		if c.Model == faults.CFid {
			ar.planes[vi] = ar.planes[vi]&^lane | uint64(c.VictimValue)*lane
		} else {
			ar.planes[vi] ^= lane
		}
	}
}

// read loads the word at addr into rawRow across all lanes and runs
// the address's read hooks (decoder overrides, read disturbs), exactly
// the stimulus sequence the scalar Injected wrapper presents.
func (ar *laneArena) read(width, addr, base int) {
	for b := 0; b < width; b++ {
		ar.rawRow[b] = ar.planes[base+b]
	}
	if ar.readLanes[addr]&ar.live != 0 {
		ar.runReadHooks(width, addr)
	}
}

func (ar *laneArena) runReadHooks(width, addr int) {
	hooks := ar.readHooks[addr]
	for i := range hooks {
		h := &hooks[i]
		if h.lane&ar.live == 0 {
			continue
		}
		switch h.kind {
		case hookAliasRead:
			tb := int(h.to) * width
			for b := 0; b < width; b++ {
				ar.rawRow[b] = ar.rawRow[b]&^h.lane | ar.planes[tb+b]&h.lane
			}
		case hookShadowRead:
			fb, tb := int(h.from)*width, int(h.to)*width
			for b := 0; b < width; b++ {
				ar.rawRow[b] = ar.rawRow[b]&^h.lane | ar.planes[fb+b]&ar.planes[tb+b]&h.lane
			}
		case hookReadDisturb:
			idx := addr*width + int(h.cellBit)
			if (ar.planes[idx]&h.lane != 0) == h.trigVal1 {
				ar.planes[idx] ^= h.lane
				if !h.deceptive {
					ar.rawRow[h.cellBit] ^= h.lane
				}
			}
		}
	}
}

// snapshotLane replicates the initial-snapshot read sweep march.Run
// issues before a pass, through the read hooks (read disturbs and
// decoder faults perturb it exactly as they do the scalar sweep).
func (r *Reference) snapshotLane(ar *laneArena) {
	if ar.nReadHooks == 0 {
		// No read hook can perturb the sweep: snapshotting all lanes
		// is one bulk copy of the planes.
		copy(ar.snap, ar.planes)
		return
	}
	w := r.width
	for addr := 0; addr < r.words; addr++ {
		base := addr * w
		ar.read(w, addr, base)
		copy(ar.snap[base:base+w], ar.rawRow[:w])
	}
}

// replayDirectLane runs the comparator-mode replay across all lanes:
// each read row is XORed against its expected row (evaluated on this
// run's own snapshot) and the mismatch fold is OR-accumulated into the
// per-lane verdicts. The replay exits as soon as every active lane has
// detected — the lane analogue of the scalar early exit. Lanes that
// already detected keep evolving, which is harmless: verdicts are
// sticky and nothing else is observed.
func (r *Reference) replayDirectLane(ar *laneArena) {
	w := r.width
	r.snapshotLane(ar)
	for i := range r.laneSched {
		op := &r.laneSched[i]
		if op.kind == march.Write {
			if op.transparent {
				for b := 0; b < w; b++ {
					ar.valRow[b] = ar.snap[op.base+b] ^ op.rows[b]
				}
			} else {
				copy(ar.valRow[:w], op.rows)
			}
			ar.write(w, op.addr, op.base)
			continue
		}
		ar.read(w, op.addr, op.base)
		var mm uint64
		if op.transparent {
			for b := 0; b < w; b++ {
				mm |= ar.rawRow[b] ^ ar.snap[op.base+b] ^ op.rows[b]
			}
		} else {
			for b := 0; b < w; b++ {
				mm |= ar.rawRow[b] ^ op.rows[b]
			}
		}
		if mm != 0 {
			ar.detected |= mm
			if ar.detected&ar.active == ar.active {
				return
			}
			// Detected lanes' verdicts are final — stop paying for
			// their hooks.
			ar.live = ar.active &^ ar.detected
		}
	}
}

// laneCompress runs one signature-mode pass plane-wise and leaves the
// 64 MISR signatures in out (out[b] bit L = signature bit b of lane
// L). Unlike the scalar path it compresses the full feed stream from
// the zero seed — the scalar resume-from-divergence optimization is
// exactly the algebraic identity that makes the two equal — so every
// lane's signature matches misr.MISR fed the same stream. The memory
// planes carry over between passes, as in the scalar replay.
func (r *Reference) laneCompress(ar *laneArena, sched []laneOp, predict bool, out []uint64) {
	w := r.width
	clear(out)
	r.snapshotLane(ar)
	for i := range sched {
		op := &sched[i]
		if op.kind == march.Write {
			if op.transparent {
				for b := 0; b < w; b++ {
					ar.valRow[b] = ar.snap[op.base+b] ^ op.rows[b]
				}
			} else {
				copy(ar.valRow[:w], op.rows)
			}
			ar.write(w, op.addr, op.base)
			continue
		}
		ar.read(w, op.addr, op.base)
		// Clock the 64 registers: Galois shift with the polynomial taps
		// applied to the lanes whose top bit was set, then the feed XOR.
		msb := out[w-1]
		copy(out[1:], out[:w-1])
		out[0] = 0
		for _, pb := range r.polyBits {
			out[pb] ^= msb
		}
		if predict && op.transparent {
			for b := 0; b < w; b++ {
				out[b] ^= ar.rawRow[b] ^ op.rows[b]
			}
		} else {
			for b := 0; b < w; b++ {
				out[b] ^= ar.rawRow[b]
			}
		}
	}
}

// DetectLane evaluates up to LaneWidth faults in one bit-parallel
// replay and returns their verdicts as a bit vector: bit i is set when
// the campaign's test detects fs[i]. Verdicts are bit-identical to
// calling Detects per fault; errors (invalid faults) are reported for
// the first offending fault with the same message the scalar batch
// paths produce. A short slice leaves the tail lanes simulating the
// fault-free machine with their verdict bits masked off. Safe for
// concurrent use.
func (r *Reference) DetectLane(fs []faults.Fault) (uint64, error) {
	if len(fs) == 0 {
		return 0, nil
	}
	if len(fs) > LaneWidth {
		return 0, fmt.Errorf("faultsim: lane capacity is %d faults, got %d", LaneWidth, len(fs))
	}
	ar := r.lanePool.Get().(*laneArena)
	defer r.lanePool.Put(ar)
	ar.reset(r)
	for i, f := range fs {
		switch ar.pack(r, f, uint64(1)<<uint(i)) {
		case packOK:
			ar.active |= uint64(1) << uint(i)
		case packInvalid:
			// Reproduce the exact scalar error message; pack's checks
			// mirror faults.Inject, so Inject must fail here too.
			if _, err := faults.Inject(ar.scratch, f); err != nil {
				return 0, fmt.Errorf("faultsim: %s: %v", f, err)
			}
			return 0, fmt.Errorf("faultsim: %s: invalid fault", f)
		case packUnsupported:
			if _, err := faults.Inject(ar.scratch, f); err != nil {
				return 0, fmt.Errorf("faultsim: %s: %v", f, err)
			}
			ar.slow = append(ar.slow, i)
		}
	}
	if ar.active != 0 {
		switch r.mode {
		case DirectCompare:
			r.replayDirectLane(ar)
		case Signature:
			r.laneCompress(ar, r.lanePredSched, true, ar.sigA)
			r.laneCompress(ar, r.laneSched, false, ar.misr)
			var differ uint64
			for b := 0; b < r.width; b++ {
				differ |= ar.sigA[b] ^ ar.misr[b]
			}
			ar.detected = differ
		default:
			return 0, fmt.Errorf("faultsim: unknown mode %v", r.mode)
		}
	}
	verdict := ar.detected & ar.active
	for _, i := range ar.slow {
		det, err := r.Detects(fs[i])
		if err != nil {
			return 0, fmt.Errorf("faultsim: %s: %v", fs[i], err)
		}
		if det {
			verdict |= uint64(1) << uint(i)
		}
	}
	return verdict, nil
}

// RunLanes executes the reference over a fault list through the
// bit-parallel lane path, chunking the population LaneWidth faults at
// a time in list order. The Report is byte-identical to Run's —
// including the Missed cap and its order — only the cost differs.
func (r *Reference) RunLanes(list []faults.Fault) (*Report, error) {
	rep := &Report{ByClass: make(map[string]ClassStats)}
	for start := 0; start < len(list); start += LaneWidth {
		end := min(start+LaneWidth, len(list))
		chunk := list[start:end]
		verdict, err := r.DetectLane(chunk)
		if err != nil {
			return nil, err
		}
		// Enumerations group faults by class, so tally each run of
		// equal classes with one map update and one popcount instead
		// of per-fault map writes and bit tests; the per-fault walk
		// only happens when a run has misses still worth recording.
		for j := 0; j < len(chunk); {
			cls := chunk[j].Class()
			j0 := j
			for j < len(chunk) && chunk[j].Class() == cls {
				j++
			}
			tot := j - j0
			run := verdict >> uint(j0)
			if tot < 64 {
				run &= uint64(1)<<uint(tot) - 1
			}
			det := bits.OnesCount64(run)
			if det != tot && len(rep.Missed) < 64 {
				for k := j0; k < j && len(rep.Missed) < 64; k++ {
					if verdict>>uint(k)&1 == 0 {
						rep.Missed = append(rep.Missed, chunk[k])
					}
				}
			}
			cs := rep.ByClass[cls]
			cs.Total += tot
			cs.Detected += det
			rep.ByClass[cls] = cs
			rep.Total += tot
			rep.Detected += det
		}
	}
	return rep, nil
}
