package faultsim

import (
	"testing"

	"twmarch/internal/march"
)

// The measured characterization must reproduce the classical
// march-test comparison table (van de Goor 1993 and successors):
// which tests fully cover which fault classes.
func TestCharacterizationMatchesLiterature(t *testing.T) {
	names := make([]string, 0, 12)
	for _, e := range march.Catalog() {
		names = append(names, e.Name)
	}
	ch, err := Characterize(names, 4)
	if err != nil {
		t.Fatal(err)
	}

	full := func(test, class string) {
		t.Helper()
		got, err := ch.Get(test, class)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("%s / %s: coverage %.2f, literature says 100%%", test, class, got)
		}
	}
	partial := func(test, class string) {
		t.Helper()
		got, err := ch.Get(test, class)
		if err != nil {
			t.Fatal(err)
		}
		if got >= 1 {
			t.Errorf("%s / %s: coverage 100%%, literature says partial", test, class)
		}
	}

	// Every march test detects all stuck-at faults.
	for _, n := range names {
		full(n, "SAF")
	}
	// MATS misses transition faults (no read after the final write per
	// state) and decoder faults (single address order).
	partial("MATS", "TF")
	partial("MATS", "AF")
	// MATS+ adds both address orders: AFs covered, TFs still not.
	full("MATS+", "AF")
	partial("MATS+", "TF")
	// MATS++ adds the trailing read: TFs covered.
	full("MATS++", "TF")
	full("MATS++", "AF")
	// March X covers inversion CFs but not the idempotent/state ones.
	full("March X", "CFin")
	partial("March X", "CFid")
	partial("March X", "CFst")
	// The complete CF tests.
	for _, n := range []string{"March C-", "March C", "March U", "March LR", "March SS"} {
		full(n, "CFin")
		full(n, "CFid")
		full(n, "CFst")
		full(n, "TF")
		full(n, "AF")
	}
	// RDF is caught by every test with reads of both polarities; DRDF
	// only by March SS's read-after-read pairs.
	for _, n := range []string{"March C-", "March U", "March SS"} {
		full(n, "RDF")
	}
	full("March SS", "DRDF")
	partial("March C-", "DRDF")
	partial("March U", "DRDF")
	// Linked faults split the catalog exactly along its design lines:
	// March A, March B and March LR — the tests published *for* linked
	// faults — cover the two-aggressor CFid population in full, while
	// the simple-fault tests do not.
	for _, n := range []string{"March A", "March B", "March LR"} {
		full(n, "Linked")
	}
	for _, n := range []string{"MATS", "MATS+", "MATS++", "March X", "March Y", "March C", "March C-", "March U", "March SS"} {
		partial(n, "Linked")
	}
}

func TestCharacterizeErrors(t *testing.T) {
	if _, err := Characterize([]string{"March Z"}, 3); err == nil {
		t.Error("unknown test accepted")
	}
	ch, err := Characterize([]string{"MATS"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Get("MATS", "XYZ"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := ch.Get("nope", "SAF"); err == nil {
		t.Error("unknown test accepted in Get")
	}
	if _, err := classPopulation("XYZ", 2); err == nil {
		t.Error("unknown class population accepted")
	}
}
