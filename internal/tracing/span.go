package tracing

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds, labeling which side of a boundary a span observes.
const (
	// KindServer marks a span opened while handling an incoming
	// request; its parent usually lives in another process.
	KindServer = "server"
	// KindClient marks a span wrapping one outgoing HTTP attempt.
	KindClient = "client"
	// KindInternal marks in-process work: job runs, leases, cells.
	KindInternal = "internal"
)

// Span statuses. The empty status means the span finished without
// incident; anything except "" and StatusOK triggers tail-keep.
const (
	// StatusOK marks explicit success.
	StatusOK = "ok"
	// StatusError marks a failure the caller observed.
	StatusError = "error"
	// StatusCanceled marks work stopped by context cancellation.
	StatusCanceled = "canceled"
	// StatusAbandoned marks a lease or cell whose owner vanished —
	// the span was closed by the expiry sweep, not its worker.
	StatusAbandoned = "abandoned"
	// StatusRevoked marks a duplicate lease retired because a
	// sibling completed the cell first, or a lease closed by job end.
	StatusRevoked = "revoked"
)

// SpanRecord is the immutable, exportable form of a finished span —
// one NDJSON line on the wire and one slot in the ring buffer.
type SpanRecord struct {
	// Trace is the 32-hex-digit trace ID.
	Trace string `json:"trace"`
	// Span is the 16-hex-digit span ID.
	Span string `json:"span"`
	// Parent is the parent span ID, empty for a root span.
	Parent string `json:"parent,omitempty"`
	// Name is the operation, e.g. "cluster.lease" or "campaign.cell".
	Name string `json:"name"`
	// Kind is KindServer, KindClient, or KindInternal.
	Kind string `json:"kind,omitempty"`
	// Status is empty or one of the Status constants.
	Status string `json:"status,omitempty"`
	// StartNS is the wall-clock start in Unix nanoseconds.
	StartNS int64 `json:"start_ns"`
	// EndNS is the wall-clock end in Unix nanoseconds.
	EndNS int64 `json:"end_ns"`
	// Attrs are free-form key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock length.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.EndNS - r.StartNS) }

// Options configures a Tracer.
type Options struct {
	// Sample is the head-sampling rate in [0,1]. The decision is a
	// deterministic function of the trace ID, so every process in the
	// fleet keeps or drops the same traces without coordination.
	// Default 1 (keep everything).
	Sample float64
	// Slow is the tail-keep threshold: an unsampled span at least
	// this long is recorded anyway. Default 250ms.
	Slow time.Duration
	// Capacity is the ring-buffer size in spans. Default 8192.
	Capacity int
}

func (o Options) withDefaults() Options {
	if o.Sample == 0 {
		o.Sample = 1
	}
	if o.Sample < 0 {
		o.Sample = 0
	}
	if o.Slow <= 0 {
		o.Slow = 250 * time.Millisecond
	}
	if o.Capacity <= 0 {
		o.Capacity = 8192
	}
	return o
}

// Stats is a snapshot of a Tracer's lifetime counters, bridged into
// the obs registry as twm_tracing_spans_total{stage=...}.
type Stats struct {
	// Started counts spans opened.
	Started uint64
	// Finished counts spans closed.
	Finished uint64
	// Sampled counts finished spans recorded into the ring (head
	// sampling, tail-keep, or shipped in via Record).
	Sampled uint64
	// Dropped counts finished spans the ring did not keep.
	Dropped uint64
	// Exported counts span records written out as NDJSON.
	Exported uint64
}

// Tracer owns the sampling policy and the process ring buffer.
// Methods are safe for concurrent use; the zero value is not usable —
// construct with New.
type Tracer struct {
	opts      Options
	threshold uint64 // head-sample iff first 8 ID bytes < threshold
	ring      *ring

	started  atomic.Uint64
	finished atomic.Uint64
	sampled  atomic.Uint64
	dropped  atomic.Uint64
	exported atomic.Uint64
}

// New builds a Tracer, applying defaults for zero Options fields.
// Options.Sample < 0 disables head sampling entirely (tail-keep still
// applies).
func New(opts Options) *Tracer {
	opts = opts.withDefaults()
	t := &Tracer{opts: opts, ring: newRing(opts.Capacity)}
	switch {
	case opts.Sample >= 1:
		t.threshold = math.MaxUint64
	default:
		t.threshold = uint64(opts.Sample * float64(math.MaxUint64))
	}
	return t
}

var defaultTracer atomic.Pointer[Tracer]

func init() { defaultTracer.Store(New(Options{})) }

// Default returns the process-wide tracer.
func Default() *Tracer { return defaultTracer.Load() }

// Configure replaces the process-wide tracer (daemon startup, after
// flag parsing). Spans already in flight finish against the tracer
// they were started on.
func Configure(opts Options) { defaultTracer.Store(New(opts)) }

// headSample is the deterministic keep/drop decision for a new trace.
func (t *Tracer) headSample(id TraceID) bool {
	if t.threshold == math.MaxUint64 {
		return true
	}
	return binary.BigEndian.Uint64(id[:8]) < t.threshold
}

// Span is one in-flight operation. All methods are nil-safe so call
// sites never guard; a nil span is an inert no-op.
type Span struct {
	tracer *Tracer
	col    *Collector
	sc     SpanContext
	parent SpanID
	name   string
	kind   string
	start  time.Time

	mu     sync.Mutex
	attrs  map[string]string
	status string
	done   bool
}

// Start opens a span as a child of the context's current span, or as
// a new root (fresh trace ID, head-sampling decision) when the
// context carries none. The returned context carries the new span.
func (t *Tracer) Start(ctx context.Context, name, kind string) (context.Context, *Span) {
	sp := &Span{
		tracer: t,
		col:    CollectorFromContext(ctx),
		name:   name,
		kind:   kind,
		start:  time.Now(),
	}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.sc = SpanContext{Trace: parent.sc.Trace, Span: NewSpanID(), Sampled: parent.sc.Sampled}
		sp.parent = parent.sc.Span
	} else {
		id := NewTraceID()
		sp.sc = SpanContext{Trace: id, Span: NewSpanID(), Sampled: t.headSample(id)}
	}
	t.started.Add(1)
	return ContextWithSpan(ctx, sp), sp
}

// StartRemote opens a span continuing remote — a SpanContext
// extracted from a traceparent header or replayed from the jobstore.
// The remote's sampling decision is respected so a trace is kept or
// dropped consistently across the fleet. An invalid remote falls back
// to Start semantics.
func (t *Tracer) StartRemote(ctx context.Context, name, kind string, remote SpanContext) (context.Context, *Span) {
	if !remote.Valid() {
		return t.Start(ctx, name, kind)
	}
	sp := &Span{
		tracer: t,
		col:    CollectorFromContext(ctx),
		sc:     SpanContext{Trace: remote.Trace, Span: NewSpanID(), Sampled: remote.Sampled},
		parent: remote.Span,
		name:   name,
		kind:   kind,
		start:  time.Now(),
	}
	t.started.Add(1)
	return ContextWithSpan(ctx, sp), sp
}

// Start opens a span on the default tracer; see Tracer.Start.
func Start(ctx context.Context, name, kind string) (context.Context, *Span) {
	return Default().Start(ctx, name, kind)
}

// StartRemote opens a remote-continuing span on the default tracer;
// see Tracer.StartRemote.
func StartRemote(ctx context.Context, name, kind string, remote SpanContext) (context.Context, *Span) {
	return Default().StartRemote(ctx, name, kind, remote)
}

// Context returns the span's propagable identity, or the zero
// SpanContext for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr annotates the span. Later values win for a repeated key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetStatus sets the span's outcome; the last call before Finish
// wins. Any status except "" and StatusOK makes the span tail-kept.
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = status
	s.mu.Unlock()
}

// Finish closes the span, records it into the ring when retained
// (head-sampled, errored, or slower than the tail-keep threshold),
// and into the context's Collector unconditionally. Second and later
// calls are no-ops.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	status := s.status
	attrs := s.attrs
	s.mu.Unlock()

	t := s.tracer
	t.finished.Add(1)
	keep := s.sc.Sampled ||
		(status != "" && status != StatusOK) ||
		dur >= t.opts.Slow
	if !keep && s.col == nil {
		t.dropped.Add(1)
		return
	}
	rec := &SpanRecord{
		Trace:   s.sc.Trace.String(),
		Span:    s.sc.Span.String(),
		Name:    s.name,
		Kind:    s.kind,
		Status:  status,
		StartNS: s.start.UnixNano(),
		EndNS:   s.start.UnixNano() + dur.Nanoseconds(),
		Attrs:   attrs,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if s.col != nil {
		s.col.Add(*rec)
	}
	if keep {
		t.ring.put(rec)
		t.sampled.Add(1)
	} else {
		t.dropped.Add(1)
	}
}

// Record stores an externally produced span record into the ring —
// how the coordinator folds in spans shipped back by workers in
// CompleteRequest. Records missing trace, span, or name are ignored.
func (t *Tracer) Record(rec SpanRecord) {
	if rec.Trace == "" || rec.Span == "" || rec.Name == "" {
		return
	}
	t.ring.put(&rec)
	t.sampled.Add(1)
}

// Stats snapshots the tracer's lifetime counters.
func (t *Tracer) Stats() Stats {
	return Stats{
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Sampled:  t.sampled.Load(),
		Dropped:  t.dropped.Load(),
		Exported: t.exported.Load(),
	}
}

// Snapshot copies the ring's current contents, unordered.
func (t *Tracer) Snapshot() []SpanRecord { return t.ring.snapshot() }
