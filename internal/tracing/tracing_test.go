package tracing

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	got, ok := ParseTraceParent(sc.TraceParent())
	if !ok || got != sc {
		t.Fatalf("round trip: %+v -> %q -> %+v (ok=%v)", sc, sc.TraceParent(), got, ok)
	}
	sc.Sampled = false
	if got, ok = ParseTraceParent(sc.TraceParent()); !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: %q -> %+v", sc.TraceParent(), got)
	}
	// Future versions with extra fields parse; the flags byte's other
	// bits are ignored.
	if got, ok = ParseTraceParent("01-" + sc.Trace.String() + "-" + sc.Span.String() + "-03-extra"); !ok || !got.Sampled {
		t.Fatalf("future version rejected: %+v ok=%v", got, ok)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}.TraceParent()
	for _, bad := range []string{
		"",
		"garbage",
		"00-short-span-01",
		strings.Replace(valid, "00-", "ff-", 1), // reserved version
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span
		strings.ToUpper(valid), // W3C requires lowercase hex
		valid[:len(valid)-1],   // truncated flags
	} {
		if sc, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted: %+v", bad, sc)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	Inject(h, sc)
	if got, ok := Extract(h); !ok || got != sc {
		t.Fatalf("header round trip: %+v ok=%v", got, ok)
	}
	// An invalid context must not write a header.
	h2 := http.Header{}
	Inject(h2, SpanContext{})
	if h2.Get(TraceParentHeader) != "" {
		t.Fatal("invalid context injected a header")
	}
	if _, ok := Extract(h2); ok {
		t.Fatal("extract from empty headers reported ok")
	}
}

// TestHeadSampling: the keep/drop decision is deterministic in the
// trace ID, children inherit the root's decision, and StartRemote
// respects the remote flag — so the whole fleet agrees per trace.
func TestHeadSampling(t *testing.T) {
	always := New(Options{Sample: 1})
	never := New(Options{Sample: -1})
	id := NewTraceID()
	if !always.headSample(id) {
		t.Fatal("sample 1 dropped a trace")
	}
	if never.headSample(id) {
		t.Fatal("sample -1 kept a trace")
	}
	half := New(Options{Sample: 0.5})
	for i := 0; i < 32; i++ {
		id := NewTraceID()
		if half.headSample(id) != half.headSample(id) {
			t.Fatal("head sampling not deterministic")
		}
	}

	ctx, root := never.Start(context.Background(), "root", KindInternal)
	_, child := never.Start(ctx, "child", KindInternal)
	if child.Context().Sampled != root.Context().Sampled {
		t.Fatal("child did not inherit the root's sampling decision")
	}
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child left the root's trace")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child reused the root's span ID")
	}

	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	_, sp := never.StartRemote(context.Background(), "srv", KindServer, remote)
	sc := sp.Context()
	if !sc.Sampled || sc.Trace != remote.Trace || sc.Span == remote.Span {
		t.Fatalf("StartRemote mangled the remote context: %+v from %+v", sc, remote)
	}
	sp.Finish()
	if got := len(never.Snapshot()); got != 1 {
		t.Fatalf("remote-sampled span not in ring: %d records", got)
	}
}

// TestTailKeep: with head sampling off, only errored and slow spans
// reach the ring — the "interesting 1% is never dropped" rule.
func TestTailKeep(t *testing.T) {
	tr := New(Options{Sample: -1, Slow: 10 * time.Millisecond})

	_, fast := tr.Start(context.Background(), "fast", KindInternal)
	fast.Finish()
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("fast clean span kept: %d records", got)
	}

	_, errored := tr.Start(context.Background(), "errored", KindInternal)
	errored.SetStatus(StatusError)
	errored.Finish()
	_, slow := tr.Start(context.Background(), "slow", KindInternal)
	time.Sleep(15 * time.Millisecond)
	slow.Finish()
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("tail-keep recorded %d spans, want errored + slow", len(recs))
	}
	st := tr.Stats()
	if st.Started != 3 || st.Finished != 3 || st.Sampled != 2 || st.Dropped != 1 {
		t.Fatalf("stats %+v", st)
	}
	// An explicit ok status is success, not tail-keep bait.
	_, okSpan := tr.Start(context.Background(), "ok", KindInternal)
	okSpan.SetStatus(StatusOK)
	okSpan.Finish()
	if got := len(tr.Snapshot()); got != 2 {
		t.Fatalf("ok-status span tail-kept: %d records", got)
	}
}

// TestCollectorCompleteness: the per-job collector receives every
// finished span under its context regardless of sampling, so a job
// timeline is whole even at sample 0; drops past the cap are counted.
func TestCollectorCompleteness(t *testing.T) {
	tr := New(Options{Sample: -1})
	col := NewCollector(4)
	ctx := ContextWithCollector(context.Background(), col)
	for i := 0; i < 6; i++ {
		_, sp := tr.Start(ctx, "cell", KindInternal)
		sp.Finish()
	}
	if got := len(col.Snapshot()); got != 4 {
		t.Fatalf("collector holds %d spans, want the cap 4", got)
	}
	if col.Dropped() != 2 {
		t.Fatalf("collector dropped %d, want 2", col.Dropped())
	}
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("unsampled spans leaked into the ring: %d", got)
	}
	// Nil-safety: a nil collector and a nil span are inert.
	var nilCol *Collector
	nilCol.Add(SpanRecord{})
	if nilCol.Snapshot() != nil || nilCol.Dropped() != 0 {
		t.Fatal("nil collector not inert")
	}
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.SetStatus(StatusError)
	nilSpan.Finish()
	if nilSpan.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
}

// TestRecordValidation: worker-shipped records without identity are
// refused instead of polluting the ring.
func TestRecordValidation(t *testing.T) {
	tr := New(Options{})
	tr.Record(SpanRecord{Span: "b", Name: "n"})
	tr.Record(SpanRecord{Trace: "a", Name: "n"})
	tr.Record(SpanRecord{Trace: "a", Span: "b"})
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("invalid records stored: %d", got)
	}
	tr.Record(SpanRecord{Trace: "a", Span: "b", Name: "n"})
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("valid record not stored: %d", got)
	}
}

// TestRingConcurrency is the race test for the lock-free ring: many
// writers wrapping a small ring while readers snapshot continuously.
// Run under -race (CI does); correctness here is "every snapshot entry
// is a whole record" — torn or nil entries mean the ring broke.
func TestRingConcurrency(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 64})
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range tr.Snapshot() {
					if rec.Trace == "" || rec.Span == "" || rec.Name == "" {
						t.Error("snapshot returned a torn record")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, sp := tr.Start(context.Background(), "spin", KindInternal)
				sp.SetAttr("k", "v")
				sp.Finish()
			}
		}()
	}
	for tr.Stats().Finished < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	recs := tr.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("full ring snapshot has %d records, want the capacity 64", len(recs))
	}
	if st := tr.Stats(); st.Sampled != writers*perWriter {
		t.Fatalf("sampled %d, want %d", st.Sampled, writers*perWriter)
	}
}

// TestExportNDJSONGolden pins the export wire format and ordering:
// spans sort by start time with span-ID tie-breaks, one compact JSON
// object per line, empty fields omitted.
func TestExportNDJSONGolden(t *testing.T) {
	tr := New(Options{})
	recs := []SpanRecord{
		{Trace: "0af7651916cd43dd8448eb211c80319c", Span: "b7ad6b7169203331", Name: "late", StartNS: 300, EndNS: 400},
		{Trace: "0af7651916cd43dd8448eb211c80319c", Span: "00f067aa0ba902b7", Parent: "b7ad6b7169203331",
			Name: "cell", Kind: KindInternal, Status: StatusError, StartNS: 100, EndNS: 250,
			Attrs: map[string]string{"cell": "3"}},
		{Trace: "0af7651916cd43dd8448eb211c80319c", Span: "aaaaaaaaaaaaaaaa", Name: "tie-low", StartNS: 100, EndNS: 150},
	}
	var buf bytes.Buffer
	if err := tr.ExportNDJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	golden := `{"trace":"0af7651916cd43dd8448eb211c80319c","span":"00f067aa0ba902b7","parent":"b7ad6b7169203331","name":"cell","kind":"internal","status":"error","start_ns":100,"end_ns":250,"attrs":{"cell":"3"}}
{"trace":"0af7651916cd43dd8448eb211c80319c","span":"aaaaaaaaaaaaaaaa","name":"tie-low","start_ns":100,"end_ns":150}
{"trace":"0af7651916cd43dd8448eb211c80319c","span":"b7ad6b7169203331","name":"late","start_ns":300,"end_ns":400}
`
	if buf.String() != golden {
		t.Errorf("export diverged from golden:\n got: %q\nwant: %q", buf.String(), golden)
	}
	// The input slice must not be reordered in place.
	if recs[0].Name != "late" {
		t.Error("ExportNDJSON reordered the caller's slice")
	}
	if st := tr.Stats(); st.Exported != 3 {
		t.Errorf("exported stat %d, want 3", st.Exported)
	}
}

// TestDebugTracesHandler drives GET /debug/traces through its filters.
func TestDebugTracesHandler(t *testing.T) {
	tr := New(Options{Sample: 1})
	mk := func(name, status, job string) SpanRecord {
		sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
		rec := SpanRecord{Trace: sc.Trace.String(), Span: sc.Span.String(), Name: name,
			Status: status, StartNS: 1000, EndNS: 2000}
		if job != "" {
			rec.Attrs = map[string]string{"job": job}
		}
		return rec
	}
	okRec := mk("clean", "", "c1")
	errRec := mk("broken", StatusError, "c2")
	tr.Record(okRec)
	tr.Record(errRec)
	ts := httptest.NewServer(Handler(tr))
	defer ts.Close()

	get := func(query string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get(""); code != http.StatusOK ||
		!strings.Contains(body, okRec.Trace) || !strings.Contains(body, errRec.Trace) {
		t.Fatalf("unfiltered: code %d body %q", code, body)
	}
	if _, body := get("?error=true"); strings.Contains(body, okRec.Trace) || !strings.Contains(body, errRec.Trace) {
		t.Fatalf("error filter: %q", body)
	}
	if _, body := get("?job=c1"); !strings.Contains(body, okRec.Trace) || strings.Contains(body, errRec.Trace) {
		t.Fatalf("job filter: %q", body)
	}
	if _, body := get("?trace=" + errRec.Trace); strings.Contains(body, okRec.Trace) {
		t.Fatalf("trace filter: %q", body)
	}
	if _, body := get("?min_dur=1h"); strings.Contains(body, okRec.Trace) || strings.Contains(body, errRec.Trace) {
		t.Fatalf("min_dur filter: %q", body)
	}
	if _, body := get("?limit=1"); strings.Count(body, "\n") != 1 {
		t.Fatalf("limit=1 returned %d lines: %q", strings.Count(body, "\n"), body)
	}
	for _, bad := range []string{"?limit=0", "?limit=x", "?min_dur=fast"} {
		if code, _ := get(bad); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", bad, code)
		}
	}
}
