// Package tracing is the fleet's distributed-tracing layer, built on
// nothing outside the standard library: 128-bit random trace IDs,
// W3C trace-context (traceparent) propagation over HTTP, head-based
// sampling with a tail-keep override for errored and slow spans, a
// bounded lock-free ring buffer of recently finished spans, and
// NDJSON export behind GET /debug/traces.
//
// A span is opened with Start (child of whatever span the context
// carries) or StartRemote (continuing a traceparent extracted from an
// incoming request), annotated with SetAttr/SetStatus, and closed
// with Finish. Finishing decides retention: head-sampled spans and
// spans that errored or ran longer than the slow threshold land in
// the process ring; every finished span additionally lands in the
// per-job Collector when the context carries one, so a job's own
// timeline survives ring eviction. Trace identity crosses process
// boundaries via Inject/Extract on HTTP headers and crosses restarts
// via the traceparent string persisted in the jobstore.
package tracing

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"net/http"
	"strings"
	"sync"
)

// TraceID is a 128-bit trace identifier, rendered as 32 lowercase hex
// digits on the wire. The zero value is invalid per W3C trace-context.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex
// digits on the wire. The zero value is invalid per W3C trace-context.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idRand buffers crypto/rand behind a mutex: every span needs a few
// random bytes, and paying a getrandom syscall per ID would put
// microseconds of syscall latency on each span open in the dispatch
// hot path. The buffer amortizes one syscall over ~64 IDs at the same
// entropy.
var idRand = struct {
	mu sync.Mutex
	r  *bufio.Reader
}{r: bufio.NewReaderSize(rand.Reader, 1024)}

func readID(p []byte) {
	idRand.mu.Lock()
	_, err := io.ReadFull(idRand.r, p)
	idRand.mu.Unlock()
	if err != nil {
		// crypto/rand never fails on supported platforms; a counter
		// fallback would silently weaken ID uniqueness, so treat
		// failure as the programming error it is.
		panic("tracing: crypto/rand: " + err.Error())
	}
}

// NewTraceID returns a random non-zero trace ID from crypto/rand.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		readID(t[:])
	}
	return t
}

// NewSpanID returns a random non-zero span ID from crypto/rand.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		readID(s[:])
	}
	return s
}

// SpanContext is the propagated identity of a span: the trace it
// belongs to, its own ID, and whether head sampling kept the trace.
// It is the unit that crosses process boundaries.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero, i.e. the context
// identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// TraceParent renders the context as a W3C traceparent header value:
// version 00, then trace ID, span ID, and the sampled flag.
func (sc SpanContext) TraceParent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-" + flags
}

// ParseTraceParent parses a W3C traceparent header value. It accepts
// any known-length version except the reserved ff, requires non-zero
// trace and span IDs, and reads bit 0 of the flags as the sampled
// flag. ok is false for anything malformed.
func ParseTraceParent(s string) (sc SpanContext, ok bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	version, traceHex, spanHex, flagsHex := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || version == "ff" || !isHex(version) {
		return SpanContext{}, false
	}
	// isHex accepts only lowercase, as W3C trace-context requires;
	// hex.DecodeString alone would let uppercase through.
	if len(traceHex) != 32 || !isHex(traceHex) ||
		len(spanHex) != 16 || !isHex(spanHex) ||
		len(flagsHex) != 2 || !isHex(flagsHex) {
		return SpanContext{}, false
	}
	traceRaw, err := hex.DecodeString(traceHex)
	if err != nil {
		return SpanContext{}, false
	}
	spanRaw, err := hex.DecodeString(spanHex)
	if err != nil {
		return SpanContext{}, false
	}
	copy(sc.Trace[:], traceRaw)
	copy(sc.Span[:], spanRaw)
	if !sc.Valid() {
		return SpanContext{}, false
	}
	flags, err := hex.DecodeString(flagsHex)
	if err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 == 1
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TraceParentHeader is the W3C trace-context header name.
const TraceParentHeader = "traceparent"

// Inject writes sc into h as a traceparent header. Invalid contexts
// are not written.
func Inject(h http.Header, sc SpanContext) {
	if sc.Valid() {
		h.Set(TraceParentHeader, sc.TraceParent())
	}
}

// Extract reads a traceparent header from h. ok is false when the
// header is absent or malformed.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceParentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceParent(v)
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the current span;
// Start derives children from it and the obs log handler reads it for
// trace/span log attrs.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span, or nil when the context
// carries none.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
