package tracing

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// sortRecords orders records by start time, breaking ties by span ID
// — the canonical NDJSON export order.
func sortRecords(recs []SpanRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].StartNS != recs[j].StartNS {
			return recs[i].StartNS < recs[j].StartNS
		}
		return recs[i].Span < recs[j].Span
	})
}

// ExportNDJSON writes recs to w, one JSON object per line, ordered by
// start time then span ID, and counts each line in the exported stat.
func (t *Tracer) ExportNDJSON(w io.Writer, recs []SpanRecord) error {
	recs = append([]SpanRecord(nil), recs...)
	sortRecords(recs)
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
		t.exported.Add(1)
	}
	return nil
}

// traceGroup is one trace assembled from the ring for /debug/traces.
type traceGroup struct {
	id      string
	startNS int64
	endNS   int64
	errored bool
	jobs    map[string]bool
	spans   []SpanRecord
}

// groupTraces folds ring records into per-trace groups.
func groupTraces(recs []SpanRecord) []*traceGroup {
	byID := make(map[string]*traceGroup)
	for _, rec := range recs {
		g := byID[rec.Trace]
		if g == nil {
			g = &traceGroup{id: rec.Trace, startNS: rec.StartNS, endNS: rec.EndNS, jobs: make(map[string]bool)}
			byID[rec.Trace] = g
		}
		if rec.StartNS < g.startNS {
			g.startNS = rec.StartNS
		}
		if rec.EndNS > g.endNS {
			g.endNS = rec.EndNS
		}
		if rec.Status != "" && rec.Status != StatusOK {
			g.errored = true
		}
		if job := rec.Attrs["job"]; job != "" {
			g.jobs[job] = true
		}
		g.spans = append(g.spans, rec)
	}
	out := make([]*traceGroup, 0, len(byID))
	for _, g := range byID {
		out = append(out, g)
	}
	return out
}

// Handler serves GET /debug/traces: recent traces from the ring as
// NDJSON span records, newest trace first, spans within a trace in
// start order. Query parameters filter the output:
//
//	trace=<32 hex>    only this trace
//	job=<id>          only traces touching this campaign
//	error=true        only traces containing a non-ok span
//	min_dur=<dur>     only traces at least this long (e.g. 50ms)
//	limit=<n>         at most n traces (default 20)
//
// A nil t serves from the tracer that is Default at request time,
// surviving a later Configure.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := t
		if tr == nil {
			tr = Default()
		}
		q := r.URL.Query()
		limit := 20
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		var minDur time.Duration
		if v := q.Get("min_dur"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min_dur", http.StatusBadRequest)
				return
			}
			minDur = d
		}
		wantTrace := q.Get("trace")
		wantJob := q.Get("job")
		onlyErrored := q.Get("error") == "true"

		groups := groupTraces(tr.Snapshot())
		kept := groups[:0]
		for _, g := range groups {
			if wantTrace != "" && g.id != wantTrace {
				continue
			}
			if wantJob != "" && !g.jobs[wantJob] {
				continue
			}
			if onlyErrored && !g.errored {
				continue
			}
			if minDur > 0 && time.Duration(g.endNS-g.startNS) < minDur {
				continue
			}
			kept = append(kept, g)
		}
		// Newest trace first; ties broken by ID for stable output.
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].startNS != kept[j].startNS {
				return kept[i].startNS > kept[j].startNS
			}
			return kept[i].id < kept[j].id
		})
		if len(kept) > limit {
			kept = kept[:limit]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, g := range kept {
			if err := tr.ExportNDJSON(w, g.spans); err != nil {
				return
			}
		}
	})
}
