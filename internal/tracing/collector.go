package tracing

import (
	"context"
	"sort"
	"sync"
)

// Collector accumulates every span finished under one context
// regardless of sampling — the per-job sidecar that lets
// GET /campaigns/{id}/trace serve a complete timeline even after the
// global ring evicted the job's spans. It is bounded: once cap spans
// are held, later ones are counted but not stored.
type Collector struct {
	mu      sync.Mutex
	cap     int
	spans   []SpanRecord
	dropped int
}

// NewCollector builds a Collector bounded at cap spans (cap <= 0
// means 4096).
func NewCollector(cap int) *Collector {
	if cap <= 0 {
		cap = 4096
	}
	return &Collector{cap: cap}
}

// Add stores rec unless the collector is full, in which case the
// overflow is counted instead.
func (c *Collector) Add(rec SpanRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if len(c.spans) < c.cap {
		c.spans = append(c.spans, rec)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Snapshot copies the collected spans, ordered by start time then
// span ID.
func (c *Collector) Snapshot() []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]SpanRecord(nil), c.spans...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// Dropped reports how many spans overflowed the bound.
func (c *Collector) Dropped() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

type collectorCtxKey struct{}

// ContextWithCollector returns a context under which every finished
// span is also delivered to c. Attach one per job at submission.
func ContextWithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorCtxKey{}, c)
}

// CollectorFromContext returns the context's collector, or nil.
func CollectorFromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorCtxKey{}).(*Collector)
	return c
}
