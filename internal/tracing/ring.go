package tracing

import (
	"encoding/json"
	"sync/atomic"
)

// ring is a bounded lock-free buffer of finished span records.
// Writers claim a monotonically increasing slot index and store an
// immutable record; the newest Capacity records survive, older ones
// are overwritten in place. Readers snapshot by loading each slot's
// pointer — records are never mutated after being stored, so a torn
// view is impossible and neither side ever blocks the other.
//
// Slots hold records pre-marshaled to JSON rather than live
// SpanRecord values: a full ring of structs would pin thousands of
// attr maps and strings as permanent GC roots, taxing every mark
// cycle of the surrounding process (measurably so in the twmd stream
// path). A flat byte slice per slot is invisible to the collector's
// scan; the cost moves to an unmarshal per record on the rare debug
// scrape instead of every GC cycle in between.
type ring struct {
	slots []atomic.Pointer[[]byte]
	next  atomic.Uint64
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[[]byte], n)}
}

// put stores rec, overwriting the oldest record once the ring is
// full.
func (r *ring) put(rec *SpanRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		return // no SpanRecord field can fail to marshal
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&line)
}

// snapshot decodes the current contents, unordered. Concurrent puts
// may or may not be observed; each slot read is individually atomic.
func (r *ring) snapshot() []SpanRecord {
	out := make([]SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		p := r.slots[i].Load()
		if p == nil {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(*p, &rec); err != nil {
			continue // unreachable: slots only ever hold marshaled records
		}
		out = append(out, rec)
	}
	return out
}
