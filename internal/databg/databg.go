// Package databg generates the data backgrounds used by word-oriented
// march testing.
//
// A data background is the word-wide pattern a bit-oriented march test
// is replayed with so that intra-word coupling faults get excited
// (Dekker et al., ITC 1988). Two families matter here:
//
//   - Standard(width): the log2(W)+1 classical backgrounds
//     00…0, 0101…, 0011…, …, 0…01…1 used by conventional word-oriented
//     march tests and by the Scheme 1 transparent transformation.
//
//   - Checkerboards(width): the log2(W) patterns c_k the paper's
//     ATMarch walks through every word. Bit j of c_k is 1 exactly when
//     ⌊j/2^(k-1)⌋ is even (Section 4), so c_1 = 0101…, c_2 = 0011…,
//     c_3 = 00001111…, etc. For width 8 this reproduces the paper's
//     c1=01010101, c2=00110011, c3=00001111.
//
// The key property (verified in the tests and relied on by the fault
// coverage theorem of Section 5) is that the checkerboards are
// pairwise-distinguishing: for any two bit positions p ≠ q there is a
// k with c_k[p] ≠ c_k[q], so ATMarch drives every intra-word bit pair
// through the (0,1) and (1,0) data combinations the solid backgrounds
// cannot produce.
package databg

import (
	"fmt"

	"twmarch/internal/word"
)

// Log2 returns log2(width) for exact powers of two, or an error
// otherwise. The paper assumes power-of-two word widths; the
// transformation needs ⌈log2⌉ backgrounds in general, and we keep the
// paper's exact-power contract explicit.
func Log2(width int) (int, error) {
	if width < 1 {
		return 0, fmt.Errorf("databg: width %d must be positive", width)
	}
	k := 0
	for v := width; v > 1; v >>= 1 {
		k++
	}
	if 1<<uint(k) != width {
		return 0, fmt.Errorf("databg: width %d is not a power of two", width)
	}
	return k, nil
}

// MustLog2 is Log2 for widths known to be powers of two.
func MustLog2(width int) int {
	k, err := Log2(width)
	if err != nil {
		panic(err)
	}
	return k
}

// CeilLog2 returns ⌈log2 width⌉ for any positive width. It backs the
// arbitrary-width extension: ⌈log2 W⌉ truncated checkerboards remain
// pairwise-distinguishing because two positions p ≠ q < W differ in a
// binary digit below ⌈log2 W⌉.
func CeilLog2(width int) (int, error) {
	if width < 1 {
		return 0, fmt.Errorf("databg: width %d must be positive", width)
	}
	k := 0
	for (1 << uint(k)) < width {
		k++
	}
	return k, nil
}

// CheckerboardAny returns the background c_k truncated to an arbitrary
// width; k ranges over 1..CeilLog2(width). For power-of-two widths it
// agrees with Checkerboard.
func CheckerboardAny(width, k int) (word.Word, error) {
	lg, err := CeilLog2(width)
	if err != nil {
		return word.Word{}, err
	}
	if k < 1 || k > lg {
		return word.Word{}, fmt.Errorf("databg: checkerboard index %d out of range [1,%d] for width %d", k, lg, width)
	}
	var w word.Word
	block := 1 << uint(k-1)
	for j := 0; j < width; j++ {
		if (j/block)%2 == 0 {
			w = w.SetBit(j, 1)
		}
	}
	return w, nil
}

// Checkerboard returns the paper's background c_k for the given word
// width: bit j is 1 iff ⌊j/2^(k-1)⌋ is even. k ranges over
// 1..log2(width).
func Checkerboard(width, k int) (word.Word, error) {
	lg, err := Log2(width)
	if err != nil {
		return word.Word{}, err
	}
	if k < 1 || k > lg {
		return word.Word{}, fmt.Errorf("databg: checkerboard index %d out of range [1,%d] for width %d", k, lg, width)
	}
	var w word.Word
	block := 1 << uint(k-1)
	for j := 0; j < width; j++ {
		if (j/block)%2 == 0 {
			w = w.SetBit(j, 1)
		}
	}
	return w, nil
}

// Checkerboards returns c_1..c_log2(width) in order.
func Checkerboards(width int) ([]word.Word, error) {
	lg, err := Log2(width)
	if err != nil {
		return nil, err
	}
	out := make([]word.Word, lg)
	for k := 1; k <= lg; k++ {
		c, err := Checkerboard(width, k)
		if err != nil {
			return nil, err
		}
		out[k-1] = c
	}
	return out, nil
}

// MustCheckerboards is Checkerboards for valid widths.
func MustCheckerboards(width int) []word.Word {
	cs, err := Checkerboards(width)
	if err != nil {
		panic(err)
	}
	return cs
}

// Standard returns the log2(width)+1 classical data backgrounds
// b_1..b_{log2(width)+1}: the all-zero word followed by the
// checkerboards. This is the background set the conventional
// word-oriented march test of Section 3 iterates over
// (e.g. 0000, 0101, 0011 for 4-bit words).
func Standard(width int) ([]word.Word, error) {
	cs, err := Checkerboards(width)
	if err != nil {
		return nil, err
	}
	out := make([]word.Word, 0, len(cs)+1)
	out = append(out, word.Zero)
	out = append(out, cs...)
	return out, nil
}

// MustStandard is Standard for valid widths.
func MustStandard(width int) []word.Word {
	bs, err := Standard(width)
	if err != nil {
		panic(err)
	}
	return bs
}

// Count returns the number of standard backgrounds for the width,
// log2(width)+1.
func Count(width int) (int, error) {
	lg, err := Log2(width)
	if err != nil {
		return 0, err
	}
	return lg + 1, nil
}

// Distinguishes reports whether background bg separates bit positions
// p and q, i.e. assigns them different values.
func Distinguishes(bg word.Word, p, q int) bool {
	return bg.Bit(p) != bg.Bit(q)
}

// DistinguishingIndex returns the smallest k (1-based) such that
// Checkerboard(width,k) separates bits p and q, or an error if the
// positions coincide or exceed the width.
func DistinguishingIndex(width, p, q int) (int, error) {
	if p == q {
		return 0, fmt.Errorf("databg: positions %d and %d coincide", p, q)
	}
	if p < 0 || p >= width || q < 0 || q >= width {
		return 0, fmt.Errorf("databg: positions %d,%d out of range [0,%d)", p, q, width)
	}
	cs, err := Checkerboards(width)
	if err != nil {
		return 0, err
	}
	for i, c := range cs {
		if Distinguishes(c, p, q) {
			return i + 1, nil
		}
	}
	// Unreachable for power-of-two widths: the binary expansions of p
	// and q differ in some bit b, and c_{b+1} separates them.
	return 0, fmt.Errorf("databg: no checkerboard separates bits %d and %d at width %d", p, q, width)
}

// Names returns printable labels c1..clog2(width) for the
// checkerboards, used when formatting generated tests.
func Names(width int) []string {
	lg := MustLog2(width)
	out := make([]string, lg)
	for k := 1; k <= lg; k++ {
		out[k-1] = fmt.Sprintf("c%d", k)
	}
	return out
}
