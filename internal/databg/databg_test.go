package databg

import (
	"testing"

	"twmarch/internal/word"
)

func TestLog2(t *testing.T) {
	good := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 16: 4, 32: 5, 64: 6, 128: 7}
	for w, want := range good {
		got, err := Log2(w)
		if err != nil || got != want {
			t.Errorf("Log2(%d) = %d, %v; want %d", w, got, err, want)
		}
	}
	for _, w := range []int{0, -1, 3, 6, 12, 100} {
		if _, err := Log2(w); err == nil {
			t.Errorf("Log2(%d) succeeded, want error", w)
		}
	}
}

func TestCheckerboardPaperExamples(t *testing.T) {
	// Section 4: for 8-bit words c1=01010101, c2=00110011, c3=00001111.
	want := []string{"01010101", "00110011", "00001111"}
	cs := MustCheckerboards(8)
	if len(cs) != 3 {
		t.Fatalf("got %d checkerboards, want 3", len(cs))
	}
	for i, c := range cs {
		if got := c.Bits(8); got != want[i] {
			t.Errorf("c%d = %s, want %s", i+1, got, want[i])
		}
	}
}

func TestCheckerboardWidth4(t *testing.T) {
	cs := MustCheckerboards(4)
	if cs[0].Bits(4) != "0101" || cs[1].Bits(4) != "0011" {
		t.Fatalf("width-4 checkerboards: %s %s", cs[0].Bits(4), cs[1].Bits(4))
	}
}

func TestCheckerboardFormula(t *testing.T) {
	// Verify bit j of c_k is 1 iff floor(j / 2^(k-1)) is even, at
	// every supported power-of-two width.
	for _, width := range []int{2, 4, 8, 16, 32, 64, 128} {
		lg := MustLog2(width)
		for k := 1; k <= lg; k++ {
			c, err := Checkerboard(width, k)
			if err != nil {
				t.Fatalf("Checkerboard(%d,%d): %v", width, k, err)
			}
			for j := 0; j < width; j++ {
				want := 0
				if (j/(1<<uint(k-1)))%2 == 0 {
					want = 1
				}
				if got := c.Bit(j); got != want {
					t.Fatalf("width %d c%d bit %d = %d, want %d", width, k, j, got, want)
				}
			}
		}
	}
}

func TestCheckerboardRangeErrors(t *testing.T) {
	if _, err := Checkerboard(8, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Checkerboard(8, 4); err == nil {
		t.Error("k=log2+1 accepted")
	}
	if _, err := Checkerboard(6, 1); err == nil {
		t.Error("non-power-of-two width accepted")
	}
}

func TestStandardBackgrounds(t *testing.T) {
	// Section 3 example: 4-bit words use 0000, 0101, 0011.
	bs := MustStandard(4)
	want := []string{"0000", "0101", "0011"}
	if len(bs) != len(want) {
		t.Fatalf("got %d standard backgrounds, want %d", len(bs), len(want))
	}
	for i, b := range bs {
		if got := b.Bits(4); got != want[i] {
			t.Errorf("b%d = %s, want %s", i+1, got, want[i])
		}
	}
	n, err := Count(4)
	if err != nil || n != 3 {
		t.Fatalf("Count(4) = %d, %v", n, err)
	}
}

// The crux of the paper's intra-word coverage argument: the
// checkerboards pairwise-distinguish all bit positions.
func TestCheckerboardsPairwiseDistinguishing(t *testing.T) {
	for _, width := range []int{2, 4, 8, 16, 32, 64, 128} {
		cs := MustCheckerboards(width)
		for p := 0; p < width; p++ {
			for q := p + 1; q < width; q++ {
				found := false
				for _, c := range cs {
					if Distinguishes(c, p, q) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("width %d: no checkerboard separates bits %d and %d", width, p, q)
				}
			}
		}
	}
}

func TestDistinguishingIndex(t *testing.T) {
	// Bits 0 and 1 differ in their lowest binary digit → c1.
	k, err := DistinguishingIndex(8, 0, 1)
	if err != nil || k != 1 {
		t.Fatalf("DistinguishingIndex(8,0,1) = %d, %v", k, err)
	}
	// Bits 0 and 4 differ first at digit 2 → c3.
	k, err = DistinguishingIndex(8, 0, 4)
	if err != nil || k != 3 {
		t.Fatalf("DistinguishingIndex(8,0,4) = %d, %v", k, err)
	}
	if _, err := DistinguishingIndex(8, 3, 3); err == nil {
		t.Error("coinciding positions accepted")
	}
	if _, err := DistinguishingIndex(8, 0, 8); err == nil {
		t.Error("out-of-range position accepted")
	}
}

// DistinguishingIndex matches the binary-expansion argument: the
// smallest separating checkerboard is the lowest differing bit of p
// and q, plus one.
func TestDistinguishingIndexFormula(t *testing.T) {
	for _, width := range []int{4, 8, 16, 32} {
		for p := 0; p < width; p++ {
			for q := 0; q < width; q++ {
				if p == q {
					continue
				}
				k, err := DistinguishingIndex(width, p, q)
				if err != nil {
					t.Fatal(err)
				}
				diff := p ^ q
				lowest := 0
				for diff&1 == 0 {
					diff >>= 1
					lowest++
				}
				if k != lowest+1 {
					t.Fatalf("width %d p=%d q=%d: k=%d, want %d", width, p, q, k, lowest+1)
				}
			}
		}
	}
}

func TestCheckerboardOnesCount(t *testing.T) {
	// Every checkerboard has exactly width/2 ones.
	for _, width := range []int{2, 8, 64, 128} {
		for _, c := range MustCheckerboards(width) {
			if got := c.OnesCount(); got != width/2 {
				t.Fatalf("width %d: checkerboard %s has %d ones", width, c.Bits(width), got)
			}
		}
	}
}

func TestCheckerboardComplementRelation(t *testing.T) {
	// c_k and its complement partition the word; the complement is the
	// background with odd ⌊j/2^(k-1)⌋ — sanity for the Not operation
	// used throughout the transforms.
	for _, width := range []int{4, 8, 32} {
		for _, c := range MustCheckerboards(width) {
			inv := c.Not(width)
			if c.Xor(inv) != word.Ones(width) {
				t.Fatalf("width %d: c ^ ~c != ones", width)
			}
		}
	}
}

func TestNames(t *testing.T) {
	names := Names(8)
	want := []string{"c1", "c2", "c3"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names(8) = %v", names)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	if _, err := Checkerboards(12); err == nil {
		t.Error("Checkerboards(12) succeeded")
	}
	if _, err := Standard(12); err == nil {
		t.Error("Standard(12) succeeded")
	}
	if _, err := Count(12); err == nil {
		t.Error("Count(12) succeeded")
	}
	if _, err := DistinguishingIndex(12, 0, 1); err == nil {
		t.Error("DistinguishingIndex at bad width succeeded")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 7: 3, 8: 3, 9: 4, 100: 7, 128: 7}
	for w, want := range cases {
		got, err := CeilLog2(w)
		if err != nil || got != want {
			t.Errorf("CeilLog2(%d) = %d, %v; want %d", w, got, err, want)
		}
	}
	if _, err := CeilLog2(0); err == nil {
		t.Error("CeilLog2(0) accepted")
	}
	if _, err := CeilLog2(-3); err == nil {
		t.Error("negative width accepted")
	}
}

func TestCheckerboardAnyAgreesOnPowersOfTwo(t *testing.T) {
	for _, w := range []int{2, 4, 8, 32, 128} {
		lg := MustLog2(w)
		for k := 1; k <= lg; k++ {
			a, err := Checkerboard(w, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := CheckerboardAny(w, k)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("width %d c%d: %v != %v", w, k, a, b)
			}
		}
	}
}

func TestCheckerboardAnyTruncation(t *testing.T) {
	// Width 5 uses ceil(log2)=3 backgrounds; every one must stay
	// within the width.
	for k := 1; k <= 3; k++ {
		c, err := CheckerboardAny(5, k)
		if err != nil {
			t.Fatal(err)
		}
		if c != c.Mask(5) {
			t.Fatalf("c%d exceeds width 5: %v", k, c)
		}
	}
	if _, err := CheckerboardAny(5, 4); err == nil {
		t.Error("k beyond ceil accepted")
	}
	if _, err := CheckerboardAny(0, 1); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"MustLog2":          func() { MustLog2(12) },
		"MustCheckerboards": func() { MustCheckerboards(12) },
		"MustStandard":      func() { MustStandard(12) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on invalid width", name)
				}
			}()
			f()
		}()
	}
}
