// Package obs is the fleet observability layer: a zero-dependency
// metrics registry (labeled counters, gauges, and histograms with
// atomic hot paths and a deterministic Prometheus text exposition),
// structured-logging helpers on log/slog, and the HTTP surfaces —
// /metrics, /debug/pprof, and a JSON runtime snapshot — that cmd/twmd
// and cmd/twmw serve.
//
// Instrumented packages declare their metrics once at init against the
// process-default registry and hold the resolved series:
//
//	var cells = obs.Counter("twm_engine_cells_total",
//		"grid cells simulated to completion").With()
//	...
//	cells.Inc()
//
// Inc/Add/Set/Observe are single atomic operations (no locks, no
// allocation), cheap enough for the simulation hot path; label
// resolution (With) takes a read lock and should be hoisted out of
// loops. Gather output is deterministically ordered — families by
// name, series by label values — so exposition is golden-testable.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metric families are one of three types, mirroring the Prometheus
// exposition TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric and its series, keyed by joined label
// values.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]any // *Counter | *Gauge | *Histogram
}

// labelKey joins label values into the series map key. \xff cannot
// appear in a utf-8 label value's first byte position ambiguously
// enough to matter here; values containing it would still collide only
// with themselves.
const labelSep = "\xff"

func (f *family) key(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has labels %v, got %d value(s)", f.name, f.labels, len(values)))
	}
	return strings.Join(values, labelSep)
}

// get returns the series for the label values, creating it on first
// use.
func (f *family) get(values []string) any {
	k := f.key(values)
	f.mu.RLock()
	m, ok := f.series[k]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[k]; ok {
		return m
	}
	switch f.typ {
	case typeCounter:
		m = &Counter{}
	case typeGauge:
		m = &Gauge{}
	case typeHistogram:
		m = newHistogram(f.buckets)
	}
	f.series[k] = m
	return m
}

// delete drops the series for the label values (no-op when absent).
func (f *family) delete(values []string) {
	k := f.key(values)
	f.mu.Lock()
	delete(f.series, k)
	f.mu.Unlock()
}

// Registry is a set of metric families. The zero value is not usable;
// use NewRegistry (or the process-wide Default). All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order; sorted at gather time
	gatherFn []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the package-level
// helpers register against; cmd/twmd and cmd/twmw expose it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds (or returns the existing, identical) family. A name
// collision with a different type or label set panics: two packages
// fighting over one metric name is a programming error, caught at
// init.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v (was %s%v)", name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]any),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (idempotently) a counter family with the given
// label names and returns its vec.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers a gauge family and returns its vec.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers a histogram family with the given bucket upper
// bounds (nil means DurationBuckets) and returns its vec.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &HistogramVec{fam: r.register(name, help, typeHistogram, labels, b)}
}

// OnGather registers a hook run at the start of every Gather (and
// therefore every /metrics scrape): the place to refresh gauges that
// are derived from other state — cmd/twmd publishes per-job rate
// gauges here. Hooks must not call Gather.
func (r *Registry) OnGather(f func()) {
	r.mu.Lock()
	r.gatherFn = append(r.gatherFn, f)
	r.mu.Unlock()
}

// sortedFamilies snapshots the family list in name order, firing the
// OnGather hooks first.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	hooks := append([]func(){}, r.gatherFn...)
	r.mu.RUnlock()
	for _, h := range hooks {
		h()
	}
	r.mu.RLock()
	names := append([]string{}, r.order...)
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	return fams
}

// Package-level helpers registering against the Default registry —
// what instrumented packages use at init.

// NewCounter registers a counter family on the default registry.
func NewCounter(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.Counter(name, help, labels...)
}

// NewGauge registers a gauge family on the default registry.
func NewGauge(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.Gauge(name, help, labels...)
}

// NewHistogram registers a histogram family on the default registry.
func NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return defaultRegistry.Histogram(name, help, buckets, labels...)
}
