package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"twmarch/internal/tracing"
)

// HTTP-layer metrics, shared by every Instrument wrapper in the
// process. The component label separates the daemons (twmd, twmw);
// route is the normalized route pattern, never a raw path, so label
// cardinality stays bounded.
var (
	httpReqs = NewCounter("twm_http_requests_total",
		"HTTP requests served, by component, route, method and status code",
		"component", "route", "method", "code")
	httpDur = NewHistogram("twm_http_request_duration_seconds",
		"HTTP request handling latency, by component and route",
		nil, "component", "route")
)

// Instrument wraps an HTTP handler with request counting and latency
// observation on the default registry, and opens a server span per
// request — continuing the caller's trace when the request carries a
// traceparent header, starting a fresh one otherwise. route maps a
// request to its bounded route pattern (e.g.
// "/campaigns/{id}/events"); nil uses the raw URL path, which is only
// safe for muxes with a fixed path set.
func Instrument(component string, next http.Handler, route func(*http.Request) string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pattern := r.URL.Path
		if route != nil {
			pattern = route(r)
		}
		start := time.Now()
		remote, _ := tracing.Extract(r.Header)
		ctx, span := tracing.StartRemote(r.Context(), pattern, tracing.KindServer, remote)
		span.SetAttr("component", component)
		span.SetAttr("method", r.Method)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.SetAttr("code", strconv.Itoa(sw.code))
		if sw.code >= http.StatusInternalServerError {
			span.SetStatus(tracing.StatusError)
		}
		span.Finish()
		httpReqs.With(component, pattern, r.Method, strconv.Itoa(sw.code)).Inc()
		httpDur.With(component, pattern).Observe(time.Since(start).Seconds())
	})
}

// statusWriter captures the response code for the request counter. It
// forwards Flush and exposes Unwrap so http.ResponseController (the
// event stream's rolling write deadline) reaches the real writer.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

// WriteHeader records the status code.
func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports flushing.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// RuntimeSnapshot is the JSON body of the /debug runtime endpoint: a
// point-in-time view of the Go runtime plus a full registry dump.
type RuntimeSnapshot struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// GOMAXPROCS and NumCPU describe the scheduler's parallelism.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// HeapAllocBytes through NextGCBytes are lifted from
	// runtime.MemStats.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	HeapObjects     uint64 `json:"heap_objects"`
	StackInuseBytes uint64 `json:"stack_inuse_bytes"`
	GCCycles        uint32 `json:"gc_cycles"`
	GCPauseTotalNS  uint64 `json:"gc_pause_total_ns"`
	NextGCBytes     uint64 `json:"next_gc_bytes"`
	// Metrics is the registry dump, families in name order.
	Metrics []FamilySnapshot `json:"metrics"`
}

// NewRuntimeSnapshot captures the current runtime state and reg's
// registry dump (nil reg dumps the default registry).
func NewRuntimeSnapshot(reg *Registry) RuntimeSnapshot {
	if reg == nil {
		reg = Default()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		Goroutines:      runtime.NumGoroutine(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		HeapObjects:     ms.HeapObjects,
		StackInuseBytes: ms.StackInuse,
		GCCycles:        ms.NumGC,
		GCPauseTotalNS:  ms.PauseTotalNs,
		NextGCBytes:     ms.NextGC,
		Metrics:         reg.Snapshot(),
	}
}

// Mount wires the observability surfaces onto an existing mux:
//
//	/metrics            Prometheus text exposition of reg
//	/debug/runtime      JSON runtime snapshot (goroutines, heap, registry)
//	/debug/traces       recent traces from the span ring, as NDJSON
//	/debug/pprof/...    the standard net/http/pprof handlers
//
// cmd/twmd mounts these on its API mux; cmd/twmw serves DebugMux on
// its -metrics-addr.
func Mount(mux *http.ServeMux, reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tracing.Handler(nil))
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(NewRuntimeSnapshot(reg))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux returns a standalone mux serving the Mount surfaces — the
// whole of a worker's -metrics-addr listener.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(mux, reg)
	return mux
}
