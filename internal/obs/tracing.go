package obs

import (
	"sync"

	"twmarch/internal/tracing"
)

// Tracing counter bridge: the tracing package keeps its own atomic
// lifetime counters (it cannot import obs — obs imports tracing), so
// at every gather the deltas since the previous scrape are folded
// into one counter family. stage is the tracer-lifecycle stage.
var metTracingSpans = NewCounter("twm_tracing_spans_total",
	"tracing spans by lifecycle stage: started, finished, sampled (kept in the ring), dropped, exported",
	"stage")

var tracingBridge struct {
	mu   sync.Mutex
	last tracing.Stats
}

func init() {
	defaultRegistry.OnGather(func() {
		cur := tracing.Default().Stats()
		tracingBridge.mu.Lock()
		last := tracingBridge.last
		tracingBridge.last = cur
		tracingBridge.mu.Unlock()
		// Configure swaps the tracer and resets its counters; clamp
		// so a post-swap scrape adds nothing instead of wrapping.
		add := func(stage string, cur, last uint64) {
			if cur > last {
				metTracingSpans.With(stage).Add(float64(cur - last))
			}
		}
		add("started", cur.Started, last.Started)
		add("finished", cur.Finished, last.Finished)
		add("sampled", cur.Sampled, last.Sampled)
		add("dropped", cur.Dropped, last.Dropped)
		add("exported", cur.Exported, last.Exported)
	})
}
