package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exposition format byte-for-byte:
// deterministic family and series ordering, HELP/TYPE metadata,
// label quoting, histogram cumulative buckets, integer-vs-float
// rendering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_cells_total", "cells simulated", "scheme")
	c.With("twm").Add(42)
	c.With("scheme1").Inc()
	g := r.Gauge("test_queue_depth", "pending cells", "job")
	g.With("c1").Set(3)
	g.With("c2").Set(0.5)
	h := r.Histogram("test_duration_seconds", "cell latency", []float64{0.1, 1})
	h.With().Observe(0.05)
	h.With().Observe(0.05)
	h.With().Observe(0.7)
	h.With().Observe(5)
	r.Counter("test_empty_total", "registered but never incremented")

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_cells_total cells simulated
# TYPE test_cells_total counter
test_cells_total{scheme="scheme1"} 1
test_cells_total{scheme="twm"} 42
# HELP test_duration_seconds cell latency
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{le="0.1"} 2
test_duration_seconds_bucket{le="1"} 3
test_duration_seconds_bucket{le="+Inf"} 4
test_duration_seconds_sum 5.8
test_duration_seconds_count 4
# HELP test_empty_total registered but never incremented
# TYPE test_empty_total counter
# HELP test_queue_depth pending cells
# TYPE test_queue_depth gauge
test_queue_depth{job="c1"} 3
test_queue_depth{job="c2"} 0.5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelEscaping pins quoting of label values that need escapes.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "v").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE esc_total counter\nesc_total{v=\"a\\\"b\\\\c\\nd\"} 1\n"
	if got := buf.String(); got != want {
		t.Errorf("escaped exposition = %q, want %q", got, want)
	}
}

// TestDelete drops a series from exposition — the per-job gauge
// cleanup path on eviction.
func TestDelete(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("del_gauge", "", "job")
	g.With("c1").Set(1)
	g.With("c2").Set(2)
	g.Delete("c1")
	var buf bytes.Buffer
	r.WriteProm(&buf)
	if strings.Contains(buf.String(), `job="c1"`) {
		t.Errorf("deleted series still exposed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `job="c2"`) {
		t.Errorf("surviving series missing:\n%s", buf.String())
	}
}

// TestReregister checks idempotent registration returns the same
// series and that a conflicting re-registration panics.
func TestReregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("re_total", "first")
	b := r.Counter("re_total", "second")
	a.With().Inc()
	b.With().Inc()
	if v := a.With().Value(); v != 2 {
		t.Errorf("re-registered counter diverged: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("re_total", "conflict")
}

// TestConcurrentHotPath hammers Inc/Observe/Set from many goroutines
// while Gather runs — the -race test for the atomic hot paths.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "", "w").With("a")
	g := r.Gauge("hot_gauge", "")
	h := r.Histogram("hot_seconds", "", []float64{0.001, 0.01, 0.1})
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			gg := g.With()
			hh := h.With()
			for j := 0; j < iters; j++ {
				c.Inc()
				gg.Set(float64(j))
				hh.Observe(float64(j%100) / 1000)
			}
		}(i)
	}
	stop := make(chan struct{})
	var gatherWG sync.WaitGroup
	gatherWG.Add(1)
	go func() {
		defer gatherWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := r.WriteProm(&buf); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	gatherWG.Wait()
	if v := c.Value(); v != goroutines*iters {
		t.Errorf("counter = %v after %d increments", v, goroutines*iters)
	}
	if n := h.With().Count(); n != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", n, goroutines*iters)
	}
}

// TestInstrument checks the HTTP middleware records request count and
// latency under the normalized route, captures non-200 codes, and
// leaves Flusher/Unwrap working.
func TestInstrument(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("instrumented writer lost Flusher")
		}
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	h := Instrument("test", mux, func(r *http.Request) string { return "route:" + r.URL.Path })
	ts := httptest.NewServer(h)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if v := httpReqs.With("test", "route:/ok", "GET", "200").Value(); v != 3 {
		t.Errorf("requests counter = %v, want 3", v)
	}
	if v := httpReqs.With("test", "route:/missing", "GET", "404").Value(); v != 1 {
		t.Errorf("404 counter = %v, want 1", v)
	}
	if n := httpDur.With("test", "route:/ok").Count(); n != 3 {
		t.Errorf("duration histogram count = %d, want 3", n)
	}
}

// TestOnGather checks gather hooks run before series are read, so
// derived gauges are fresh in the scrape that reads them.
func TestOnGather(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("derived_gauge", "")
	n := 0.0
	r.OnGather(func() { n++; g.With().Set(n) })
	var buf bytes.Buffer
	r.WriteProm(&buf)
	r.WriteProm(&buf)
	out := buf.String()
	if !strings.Contains(out, "derived_gauge 1\n") || !strings.Contains(out, "derived_gauge 2\n") {
		t.Errorf("OnGather hook not applied per scrape:\n%s", out)
	}
}

// TestDebugMux smoke-tests the /metrics, /debug/runtime and
// /debug/pprof/ surfaces end to end.
func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mux_total", "x").With().Inc()
	ts := httptest.NewServer(DebugMux(reg))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "mux_total 1") {
		t.Errorf("metrics body missing counter:\n%s", buf.String())
	}

	resp, err = http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	var snap RuntimeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Goroutines <= 0 || snap.HeapAllocBytes == 0 {
		t.Errorf("runtime snapshot implausible: %+v", snap)
	}
	if len(snap.Metrics) == 0 || snap.Metrics[0].Name != "mux_total" {
		t.Errorf("snapshot registry dump missing: %+v", snap.Metrics)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
}

// TestLoggerFormats checks both -log-format variants carry the
// component attribute.
func TestLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, LogJSON, "twmd", nil).Info("hello", "job", "c1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line %q: %v", buf.String(), err)
	}
	if rec["component"] != "twmd" || rec["job"] != "c1" || rec["msg"] != "hello" {
		t.Errorf("json record %v", rec)
	}
	buf.Reset()
	NewLogger(&buf, LogText, "twmw", nil).Info("hi", "lease", "c1-7")
	line := buf.String()
	if !strings.Contains(line, "component=twmw") || !strings.Contains(line, "lease=c1-7") {
		t.Errorf("text record %q", line)
	}
	NopLogger().Error("dropped")
}
