package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per family, then
// one line per series. Output order is deterministic — families by
// name, series by label values — so scrapes are golden-testable.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.sortedSeries() {
			switch m := s.metric.(type) {
			case *Counter:
				writeSample(bw, f.name, f.labels, s.values, "", "", m.Value())
			case *Gauge:
				writeSample(bw, f.name, f.labels, s.values, "", "", m.Value())
			case *Histogram:
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					writeSample(bw, f.name+"_bucket", f.labels, s.values, "le", formatFloat(b), float64(cum))
				}
				writeSample(bw, f.name+"_bucket", f.labels, s.values, "le", "+Inf", float64(m.Count()))
				writeSample(bw, f.name+"_sum", f.labels, s.values, "", "", m.Sum())
				writeSample(bw, f.name+"_count", f.labels, s.values, "", "", float64(m.Count()))
			}
		}
	}
	return bw.Flush()
}

// series pairs a metric with its decoded label values for exposition.
type series struct {
	values []string
	metric any
}

// sortedSeries snapshots a family's series sorted by label values.
func (f *family) sortedSeries() []series {
	f.mu.RLock()
	out := make([]series, 0, len(f.series))
	for k, m := range f.series {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(k, labelSep)
		}
		out = append(out, series{values: values, metric: m})
	}
	f.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool {
		for i := range out[a].values {
			if out[a].values[i] != out[b].values[i] {
				return out[a].values[i] < out[b].values[i]
			}
		}
		return false
	})
	return out
}

// writeSample writes one exposition line. extraName/extraVal append a
// synthetic label (the histogram "le").
func writeSample(w io.Writer, name string, labels, values []string, extraName, extraVal string, v float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || extraName != "" {
		io.WriteString(w, "{")
		first := true
		for i, l := range labels {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, "%s=%q", l, escapeLabel(values[i]))
		}
		if extraName != "" {
			if !first {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", extraName, escapeLabel(extraVal))
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatFloat(v))
	io.WriteString(w, "\n")
}

// escapeLabel escapes a label value per the exposition format. %q in
// writeSample adds the quotes and escapes " and \; newlines are the
// one case %q would render differently from the exposition spec, and
// its \n form happens to match, so plain %q suffices — this helper
// exists to make that contract explicit and keep call sites uniform.
func escapeLabel(v string) string { return v }

// escapeHelp escapes a help string: backslashes and newlines.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample value: integral values without an
// exponent or decimal point, everything else in Go's shortest 'g'
// form, which Prometheus parsers accept.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// FamilySnapshot is one metric family in a structured registry dump —
// the JSON form served by the /debug runtime snapshot.
type FamilySnapshot struct {
	// Name, Type and Help mirror the exposition metadata.
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Series holds the family's series in deterministic label order.
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// SeriesSnapshot is one labeled series in a FamilySnapshot.
type SeriesSnapshot struct {
	// Labels maps label names to this series' values (nil when the
	// family is unlabeled).
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value (histograms use Count/Sum).
	Value float64 `json:"value"`
	// Count and Sum are the histogram totals.
	Count uint64 `json:"count,omitempty"`
	// Sum is the histogram's observation sum.
	Sum float64 `json:"sum,omitempty"`
	// Buckets maps histogram upper bounds ("le") to cumulative counts.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot dumps every family and series as structured data, in the
// same deterministic order as WriteProm.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, s := range f.sortedSeries() {
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					ss.Labels[l] = s.values[i]
				}
			}
			switch m := s.metric.(type) {
			case *Counter:
				ss.Value = m.Value()
			case *Gauge:
				ss.Value = m.Value()
			case *Histogram:
				ss.Count, ss.Sum = m.Count(), m.Sum()
				ss.Buckets = make(map[string]uint64, len(m.bounds)+1)
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					ss.Buckets[formatFloat(b)] = cum
				}
				ss.Buckets["+Inf"] = m.Count()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
