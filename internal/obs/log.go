package obs

import (
	"context"
	"io"
	"log/slog"

	"twmarch/internal/tracing"
)

// Log formats accepted by NewLogger and the daemons' -log-format flag.
const (
	// LogText is the human-oriented key=value format (slog.TextHandler).
	LogText = "text"
	// LogJSON is the machine-oriented one-object-per-line format
	// (slog.JSONHandler), for log shippers.
	LogJSON = "json"
)

// NewLogger builds a structured logger writing to w in the given
// format (LogText unless format is LogJSON), with a component
// attribute — "twmd", "twmw" — on every record. level bounds the
// minimum level (nil means slog.LevelInfo). Records logged through
// the context-aware methods (InfoContext etc.) gain trace and span
// attrs when the context carries a tracing span, tying log lines to
// the per-job timelines. Call-site attributes (job, lease, worker,
// cell) are added per call or via With, replacing the old hand-rolled
// "twmd: " prefixes.
func NewLogger(w io.Writer, format, component string, level slog.Leveler) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == LogJSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(traceHandler{h})
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// NopLogger returns a logger that discards every record — the default
// for library types (cluster.Worker) and tests that pass no logger.
func NopLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler drops everything at the Enabled gate, so disabled
// log calls cost a single virtual call and no formatting. (The stdlib
// slog.DiscardHandler only exists from Go 1.24; this repo supports
// 1.21.)
type discardHandler struct{}

// Enabled reports false for every level.
func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle discards the record.
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs returns the handler unchanged.
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler { return d }

// WithGroup returns the handler unchanged.
func (d discardHandler) WithGroup(string) slog.Handler { return d }

// traceHandler decorates records with the current tracing identity:
// when the logging context carries a span, the record gains trace and
// span attrs, so grepping a trace ID in the logs yields the exact
// lines interleaved with that trace's spans.
type traceHandler struct {
	next slog.Handler
}

// Enabled defers to the wrapped handler.
func (h traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.next.Enabled(ctx, level)
}

// Handle adds trace/span attrs from ctx, then forwards.
func (h traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sc := tracing.SpanFromContext(ctx).Context(); sc.Valid() {
		rec.AddAttrs(
			slog.String("trace", sc.Trace.String()),
			slog.String("span", sc.Span.String()),
		)
	}
	return h.next.Handle(ctx, rec)
}

// WithAttrs forwards and re-wraps, keeping trace decoration.
func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{h.next.WithAttrs(attrs)}
}

// WithGroup forwards and re-wraps, keeping trace decoration.
func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{h.next.WithGroup(name)}
}
