package obs

import (
	"io"
	"log/slog"
)

// Log formats accepted by NewLogger and the daemons' -log-format flag.
const (
	// LogText is the human-oriented key=value format (slog.TextHandler).
	LogText = "text"
	// LogJSON is the machine-oriented one-object-per-line format
	// (slog.JSONHandler), for log shippers.
	LogJSON = "json"
)

// NewLogger builds a structured logger writing to w in the given
// format (LogText unless format is LogJSON), with a component
// attribute — "twmd", "twmw" — on every record. Call-site attributes
// (job, lease, worker, cell) are added per call or via With, replacing
// the old hand-rolled "twmd: " prefixes.
func NewLogger(w io.Writer, format, component string) *slog.Logger {
	var h slog.Handler
	if format == LogJSON {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// NopLogger returns a logger that discards every record — the default
// for library types (cluster.Worker) and tests that pass no logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
