package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DurationBuckets is the default histogram bucket ladder, in seconds:
// half a millisecond to ten seconds, the range a grid cell simulation
// or an HTTP request plausibly spans.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat is a float64 with atomic add/store on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing series. Inc and Add are
// lock-free; negative adds are ignored to keep the monotonic contract.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v (ignored when negative).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a series that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram is a fixed-bucket distribution: observations land in the
// first bucket whose upper bound is ≥ the value (the Prometheus "le"
// contract), with a running sum and count. Observe is lock-free.
type Histogram struct {
	bounds []float64       // sorted upper bounds; the +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// With resolves the series for the label values (created on first
// use). Hoist the result out of hot loops.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.get(values).(*Counter) }

// Delete drops the series for the label values, removing it from
// exposition — the cleanup path when a label value (a job id, a
// worker id) leaves the system.
func (v *CounterVec) Delete(values ...string) { v.fam.delete(values) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With resolves the series for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.get(values).(*Gauge) }

// Delete drops the series for the label values.
func (v *GaugeVec) Delete(values ...string) { v.fam.delete(values) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// With resolves the series for the label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.get(values).(*Histogram) }

// Delete drops the series for the label values.
func (v *HistogramVec) Delete(values ...string) { v.fam.delete(values) }
