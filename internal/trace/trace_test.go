package trace

import (
	"strings"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/march"
	"twmarch/internal/word"
)

// Table 1 of the paper: word contents while the first three ATMarch
// elements run on an 8-bit word. The first element (c1=01010101)
// complements d6,d4,d2,d0; the second (c2=00110011) complements
// d5,d4,d1,d0; the third (c3=00001111) complements d3..d0.
func TestTable1Reproduction(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := SymbolicContents(res.ATMarch)
	if err != nil {
		t.Fatal(err)
	}
	// 3 elements x 5 ops + closing read.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	join := func(r Row) string { return strings.Join(r.Content, " ") }
	initial := "d7 d6 d5 d4 d3 d2 d1 d0"
	// Row 0: after r a, content unchanged.
	if join(rows[0]) != initial {
		t.Fatalf("row 0 = %q", join(rows[0]))
	}
	// Row 1: after w a^c1.
	if want := "d7 ~d6 d5 ~d4 d3 ~d2 d1 ~d0"; join(rows[1]) != want {
		t.Fatalf("row 1 = %q, want %q", join(rows[1]), want)
	}
	// Row 3: after w a, restored.
	if join(rows[3]) != initial {
		t.Fatalf("row 3 = %q", join(rows[3]))
	}
	// Row 6: after w a^c2.
	if want := "d7 d6 ~d5 ~d4 d3 d2 ~d1 ~d0"; join(rows[6]) != want {
		t.Fatalf("row 6 = %q, want %q", join(rows[6]), want)
	}
	// Row 11: after w a^c3.
	if want := "d7 d6 d5 d4 ~d3 ~d2 ~d1 ~d0"; join(rows[11]) != want {
		t.Fatalf("row 11 = %q, want %q", join(rows[11]), want)
	}
	// Final row: closing read leaves the initial content.
	if join(rows[15]) != initial {
		t.Fatalf("final row = %q", join(rows[15]))
	}
	// Operation labels render in the paper's style.
	if rows[1].Op != "wa^c1" {
		t.Fatalf("row 1 op = %q", rows[1].Op)
	}
}

func TestSymbolicRejectsNontransparent(t *testing.T) {
	if _, err := SymbolicContents(march.MustLookup("March C-")); err == nil {
		t.Fatal("nontransparent test accepted")
	}
}

// The concrete simulator trace matches the symbolic table for an
// arbitrary initial value.
func TestConcreteMatchesSymbolic(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := SymbolicContents(res.ATMarch)
	if err != nil {
		t.Fatal(err)
	}
	initial := word.FromUint64(0b1011_0010)
	contents, err := ConcreteContents(res.ATMarch, initial)
	if err != nil {
		t.Fatal(err)
	}
	if idx := CheckAgainstSymbolic(rows, contents, initial, 8); idx != -1 {
		t.Fatalf("concrete trace diverges from Table 1 at row %d: got %s", idx, contents[idx].Bits(8))
	}
}

// The whole TWMarch is traceable too, and ends at the initial content.
func TestFullTestTrace(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := SymbolicContents(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != res.TWMarch.Ops() {
		t.Fatalf("rows = %d, want %d", len(rows), res.TWMarch.Ops())
	}
	last := strings.Join(rows[len(rows)-1].Content, " ")
	if last != "d3 d2 d1 d0" {
		t.Fatalf("final content %q not initial", last)
	}
	initial := word.MustParseBits("1010")
	contents, err := ConcreteContents(res.TWMarch, initial)
	if err != nil {
		t.Fatal(err)
	}
	if idx := CheckAgainstSymbolic(rows, contents, initial, 4); idx != -1 {
		t.Fatalf("trace diverges at row %d", idx)
	}
}

func TestCheckAgainstSymbolicDetectsMismatch(t *testing.T) {
	rows := []Row{{Op: "ra", Content: []string{"d1", "d0"}}}
	contents := []word.Word{word.MustParseBits("01")}
	// initial 00 → expected content 00, got 01 → mismatch at 0.
	if idx := CheckAgainstSymbolic(rows, contents, word.Zero, 2); idx != 0 {
		t.Fatalf("mismatch index = %d", idx)
	}
	// Length mismatch reports index 0.
	if idx := CheckAgainstSymbolic(rows, nil, word.Zero, 2); idx != 0 {
		t.Fatalf("length mismatch index = %d", idx)
	}
}
