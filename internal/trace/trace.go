// Package trace reproduces the paper's Table 1: the content of a
// memory word while the ATMarch elements execute, written in the
// symbolic d_{W-1} … d_0 notation (d for an unchanged bit, ~d for a
// complemented bit).
//
// Alongside the symbolic table a concrete trace is available: the
// recorded contents of a real word in the simulator after every
// ATMarch operation, which the tests cross-check against the symbolic
// rows.
//
// Table 1 is the paper's correctness argument made visible: every
// ATMarch element leaves the word back at its pre-test content, which
// is exactly the transparency property (Section 3) the whole scheme
// rests on. cmd/tables -table 1 prints the rows this package derives.
package trace

import (
	"fmt"

	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Row is one line of the content table: the operation performed and
// the symbolic word content after it, one cell per bit, most
// significant first.
type Row struct {
	Op      string
	Content []string
}

// SymbolicContents walks a transparent test applied to a single word
// and returns the content after every operation. The content of bit j
// renders as "dj" while it equals its initial value and "~dj" once
// complemented — the paper's overbar notation in ASCII.
func SymbolicContents(t *march.Test) ([]Row, error) {
	if !t.IsTransparent() {
		return nil, fmt.Errorf("trace: %q is not transparent", t.Name)
	}
	width := t.Width
	mask := word.Zero // content = initial ^ mask
	var rows []Row
	render := func() []string {
		cells := make([]string, width)
		for j := 0; j < width; j++ {
			bit := width - 1 - j // MSB first, like the paper
			if mask.Bit(bit) == 1 {
				cells[j] = fmt.Sprintf("~d%d", bit)
			} else {
				cells[j] = fmt.Sprintf("d%d", bit)
			}
		}
		return cells
	}
	for _, e := range t.Elements {
		for _, op := range e.Ops {
			if op.Kind == march.Write {
				mask = op.Data.EffectiveMask(width)
			}
			rows = append(rows, Row{Op: op.Format(width), Content: render()})
		}
	}
	return rows, nil
}

// ConcreteContents runs the transparent test on a single-word memory
// holding initial and records the stored word after every operation.
func ConcreteContents(t *march.Test, initial word.Word) ([]word.Word, error) {
	mem := memory.MustNew(1, t.Width)
	mem.Write(0, initial)
	var out []word.Word
	obs := memory.NewObserved(mem, memory.ObserverFunc(func(memory.Access) {
		out = append(out, mem.Read(0))
	}))
	if _, err := march.Run(t, obs, march.RunOptions{Initial: []word.Word{initial.Mask(t.Width)}}); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckAgainstSymbolic verifies that a concrete per-op content log
// matches the symbolic rows for the given initial value. It returns
// the first mismatching index, or -1.
func CheckAgainstSymbolic(rows []Row, contents []word.Word, initial word.Word, width int) int {
	if len(rows) != len(contents) {
		return 0
	}
	for i, row := range rows {
		var want word.Word
		for j, cell := range row.Content {
			bit := width - 1 - j
			v := initial.Bit(bit)
			if len(cell) > 0 && cell[0] == '~' {
				v ^= 1
			}
			want = want.SetBit(bit, v)
		}
		if contents[i] != want {
			return i
		}
	}
	return -1
}
