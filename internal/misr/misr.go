// Package misr implements the multiple-input signature register a
// transparent memory BIST compresses its read stream with.
//
// A MISR is a Galois LFSR whose state is XORed with one input word per
// clock. The transparent test scheme runs two passes over the memory:
// the signature-prediction pass (reads only) computes the reference
// signature, the test pass compresses the actual read data, and a
// final comparison flags the memory as faulty when they differ.
// Because the compression is lossy, distinct error streams can map to
// the same signature — the aliasing problem the paper's introduction
// discusses; Aliasing helpers make that concrete.
package misr

import (
	"fmt"

	"twmarch/internal/march"
	"twmarch/internal/word"
)

// primitivePolys maps register width to the low-order coefficients of
// a primitive characteristic polynomial over GF(2) (the x^width term
// is implicit). A primitive polynomial gives the register its maximal
// cycle length of 2^width − 1, which minimizes aliasing for random
// error streams. Sources: Peterson & Weldon, "Error-Correcting Codes";
// the widths match the memory word widths this library simulates.
var primitivePolys = map[int]word.Word{
	1:  word.FromUint64(0x1),    // x + 1
	2:  word.FromUint64(0x3),    // x^2 + x + 1
	3:  word.FromUint64(0x3),    // x^3 + x + 1
	4:  word.FromUint64(0x3),    // x^4 + x + 1
	5:  word.FromUint64(0x5),    // x^5 + x^2 + 1
	6:  word.FromUint64(0x3),    // x^6 + x + 1
	7:  word.FromUint64(0x9),    // x^7 + x^3 + 1
	8:  word.FromUint64(0x1d),   // x^8 + x^4 + x^3 + x^2 + 1
	9:  word.FromUint64(0x11),   // x^9 + x^4 + 1
	10: word.FromUint64(0x9),    // x^10 + x^3 + 1
	11: word.FromUint64(0x5),    // x^11 + x^2 + 1
	12: word.FromUint64(0x53),   // x^12 + x^6 + x^4 + x + 1
	13: word.FromUint64(0x1b),   // x^13 + x^4 + x^3 + x + 1
	14: word.FromUint64(0x443),  // x^14 + x^10 + x^6 + x + 1
	15: word.FromUint64(0x3),    // x^15 + x + 1
	16: word.FromUint64(0x100b), // x^16 + x^12 + x^3 + x + 1
	20: word.FromUint64(0x9),    // x^20 + x^3 + 1
	// Widths below are too long for an exhaustive period check; the
	// polynomials are the published low-weight primitive polynomials
	// (Seroussi, "Table of low-weight binary irreducible polynomials",
	// HP Labs HPL-98-135).
	24:  word.FromUint64(0x1b),     // x^24 + x^4 + x^3 + x + 1
	32:  word.FromUint64(0x400007), // x^32 + x^22 + x^2 + x + 1
	64:  word.FromUint64(0x1b),     // x^64 + x^4 + x^3 + x + 1
	128: word.FromUint64(0x87),     // x^128 + x^7 + x^2 + x + 1
}

// LookupPoly returns the library's primitive characteristic polynomial
// for the width (low-order coefficient mask, implicit x^width term).
func LookupPoly(width int) (word.Word, error) {
	p, ok := primitivePolys[width]
	if !ok {
		return word.Word{}, fmt.Errorf("misr: no primitive polynomial tabulated for width %d", width)
	}
	return p, nil
}

// Widths lists the register widths with tabulated polynomials.
func Widths() []int {
	out := make([]int, 0, len(primitivePolys))
	for w := range primitivePolys {
		out = append(out, w)
	}
	// Deterministic order for display.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// MISR is a Galois-configuration multiple-input signature register.
// The zero value is not usable; construct with New or NewWithPoly.
type MISR struct {
	width  int
	poly   word.Word
	state  word.Word
	clocks int
}

// New creates a MISR of the given width using the tabulated primitive
// polynomial, seeded with zero.
func New(width int) (*MISR, error) {
	p, err := LookupPoly(width)
	if err != nil {
		return nil, err
	}
	return NewWithPoly(width, p)
}

// MustNew is New for widths known to be tabulated.
func MustNew(width int) *MISR {
	m, err := New(width)
	if err != nil {
		panic(err)
	}
	return m
}

// NewWithPoly creates a MISR with an explicit characteristic
// polynomial (low-order coefficient mask; the x^width term is
// implicit).
func NewWithPoly(width int, poly word.Word) (*MISR, error) {
	if width < 1 || width > word.MaxWidth {
		return nil, fmt.Errorf("misr: width %d out of range [1,%d]", width, word.MaxWidth)
	}
	if poly != poly.Mask(width) {
		return nil, fmt.Errorf("misr: polynomial %v exceeds width %d", poly, width)
	}
	return &MISR{width: width, poly: poly}, nil
}

// Width returns the register width.
func (m *MISR) Width() int { return m.width }

// Poly returns the characteristic polynomial mask.
func (m *MISR) Poly() word.Word { return m.poly }

// Reset loads the seed into the register and clears the clock count.
func (m *MISR) Reset(seed word.Word) {
	m.state = seed.Mask(m.width)
	m.clocks = 0
}

// step advances the LFSR one clock without input.
func (m *MISR) step() {
	msb := m.state.Bit(m.width - 1)
	m.state = m.state.Shl(1).Mask(m.width)
	if msb == 1 {
		m.state = m.state.Xor(m.poly)
	}
}

// Feed clocks the register once, compressing one input word.
func (m *MISR) Feed(d word.Word) {
	m.step()
	m.state = m.state.Xor(d.Mask(m.width))
	m.clocks++
}

// Shift clocks the register once with no input (pure LFSR step).
func (m *MISR) Shift() {
	m.step()
	m.clocks++
}

// Signature returns the current register state.
func (m *MISR) Signature() word.Word { return m.state }

// Clocks returns the number of Feed/Shift operations since Reset.
func (m *MISR) Clocks() int { return m.clocks }

// TestSink adapts the MISR to the march runner's ReadSink for the
// *test* phase: raw read data are compressed.
func (m *MISR) TestSink() func(addr int, got word.Word, op march.Op) {
	return func(_ int, got word.Word, _ march.Op) { m.Feed(got) }
}

// PredictSink adapts the MISR to the march runner's ReadSink for the
// *prediction* phase: each read of the untouched memory is XORed with
// the operation's effective mask before compression, producing the
// value the fault-free test phase will read at the corresponding
// operation.
func (m *MISR) PredictSink() func(addr int, got word.Word, op march.Op) {
	return func(_ int, got word.Word, op march.Op) {
		m.Feed(got.Xor(op.Data.EffectiveMask(m.width)))
	}
}

// SignatureOf compresses a sequence of words from a zero seed; a
// convenience for tests and aliasing analysis.
func SignatureOf(width int, poly word.Word, seq []word.Word) (word.Word, error) {
	m, err := NewWithPoly(width, poly)
	if err != nil {
		return word.Word{}, err
	}
	for _, d := range seq {
		m.Feed(d)
	}
	return m.Signature(), nil
}

// AliasingErrorStream constructs a non-zero error stream of the given
// length that a MISR of this width and polynomial compresses to the
// zero signature — i.e. superimposing it on any data stream leaves the
// signature unchanged (aliasing). By linearity it suffices to inject
// the polynomial pattern and let the register absorb it: an error e
// fed at clock i and its LFSR image fed at clock i+1 cancel. Returns
// an error when length < 2 (single-error streams never alias, which is
// also asserted in the tests).
func AliasingErrorStream(width int, poly word.Word, length int) ([]word.Word, error) {
	if length < 2 {
		return nil, fmt.Errorf("misr: aliasing needs at least 2 clocks; single errors never alias")
	}
	// Error e at clock 0 evolves to step(e) at clock 1; feeding
	// step(e) as the clock-1 error cancels the register difference.
	e := word.FromUint64(1)
	m, err := NewWithPoly(width, poly)
	if err != nil {
		return nil, err
	}
	m.Reset(e)
	m.Shift()
	cancel := m.Signature()
	stream := make([]word.Word, length)
	stream[0] = e
	stream[1] = cancel
	return stream, nil
}

// AliasingProbability returns the asymptotic probability 2^-width that
// a random non-zero error stream aliases in a maximal-length MISR.
func AliasingProbability(width int) float64 {
	p := 1.0
	for i := 0; i < width; i++ {
		p /= 2
	}
	return p
}
