package misr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twmarch/internal/word"
)

func TestLookupPolyKnownWidths(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		if _, err := LookupPoly(w); err != nil {
			t.Errorf("LookupPoly(%d): %v", w, err)
		}
	}
	if _, err := LookupPoly(17); err == nil {
		t.Error("untabulated width accepted")
	}
}

func TestWidthsSorted(t *testing.T) {
	ws := Widths()
	if len(ws) == 0 {
		t.Fatal("no widths")
	}
	for i := 1; i < len(ws); i++ {
		if ws[i-1] >= ws[i] {
			t.Fatalf("widths not sorted: %v", ws)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewWithPoly(0, word.Zero); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewWithPoly(129, word.Zero); err == nil {
		t.Error("width 129 accepted")
	}
	if _, err := NewWithPoly(4, word.FromUint64(0x10)); err == nil {
		t.Error("polynomial exceeding width accepted")
	}
}

// A primitive polynomial gives the pure LFSR (no input) its maximal
// period 2^w − 1 from any non-zero seed. Exhaustively checked for the
// small widths; this validates the tabulated polynomials.
func TestMaximalPeriodSmallWidths(t *testing.T) {
	for _, w := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16} {
		m := MustNew(w)
		seed := word.FromUint64(1)
		m.Reset(seed)
		period := 0
		for {
			m.Shift()
			period++
			if m.Signature() == seed {
				break
			}
			if period > 1<<uint(w) {
				t.Fatalf("width %d: no cycle within 2^w steps", w)
			}
		}
		want := 1<<uint(w) - 1
		if period != want {
			t.Errorf("width %d: period %d, want %d (polynomial not primitive)", w, period, want)
		}
	}
}

func TestMaximalPeriodMediumWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("period check for width 20 is ~1M steps")
	}
	for _, w := range []int{14, 20} {
		m := MustNew(w)
		seed := word.FromUint64(1)
		m.Reset(seed)
		period := 0
		for {
			m.Shift()
			period++
			if m.Signature() == seed {
				break
			}
			if period > 1<<uint(w) {
				t.Fatalf("width %d: no cycle within 2^w steps", w)
			}
		}
		if want := 1<<uint(w) - 1; period != want {
			t.Errorf("width %d: period %d, want %d", w, period, want)
		}
	}
}

func TestFeedChangesState(t *testing.T) {
	m := MustNew(8)
	m.Feed(word.FromUint64(0xa5))
	if m.Signature().IsZero() {
		t.Fatal("state still zero after feeding nonzero word")
	}
	if m.Clocks() != 1 {
		t.Fatalf("clocks = %d", m.Clocks())
	}
	m.Reset(word.Zero)
	if !m.Signature().IsZero() || m.Clocks() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestDeterminism(t *testing.T) {
	seq := []word.Word{word.FromUint64(1), word.FromUint64(0xff), word.Zero, word.FromUint64(0x3c)}
	p, _ := LookupPoly(8)
	s1, err := SignatureOf(8, p, seq)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := SignatureOf(8, p, seq)
	if s1 != s2 {
		t.Fatal("MISR not deterministic")
	}
}

// Linearity over GF(2): sig(a ⊕ b) == sig(a) ⊕ sig(b) from zero seed.
// This is the property aliasing analysis rests on.
func TestQuickLinearity(t *testing.T) {
	p, _ := LookupPoly(16)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]word.Word, len(raw))
		b := make([]word.Word, len(raw))
		x := make([]word.Word, len(raw))
		r := rand.New(rand.NewSource(int64(len(raw))))
		for i, v := range raw {
			a[i] = word.FromUint64(uint64(v))
			b[i] = word.FromUint64(uint64(r.Uint32() & 0xffff))
			x[i] = a[i].Xor(b[i])
		}
		sa, _ := SignatureOf(16, p, a)
		sb, _ := SignatureOf(16, p, b)
		sx, _ := SignatureOf(16, p, x)
		return sx == sa.Xor(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A single corrupted word in a stream always changes the signature
// (single errors never alias in an LFSR-based MISR).
func TestSingleErrorNeverAliases(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	p, _ := LookupPoly(8)
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(40)
		seq := make([]word.Word, n)
		for i := range seq {
			seq[i] = word.FromUint64(r.Uint64() & 0xff)
		}
		base, _ := SignatureOf(8, p, seq)
		pos := r.Intn(n)
		bad := make([]word.Word, n)
		copy(bad, seq)
		errw := word.FromUint64(uint64(1 + r.Intn(255)))
		bad[pos] = bad[pos].Xor(errw)
		got, _ := SignatureOf(8, p, bad)
		if got == base {
			t.Fatalf("single error %v at %d aliased (n=%d)", errw, pos, n)
		}
	}
}

// The constructed aliasing stream really does alias: superimposing it
// on any data stream leaves the signature unchanged.
func TestAliasingErrorStream(t *testing.T) {
	p, _ := LookupPoly(8)
	es, err := AliasingErrorStream(8, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, e := range es {
		if !e.IsZero() {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("aliasing stream is all zero")
	}
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		seq := make([]word.Word, len(es))
		for i := range seq {
			seq[i] = word.FromUint64(r.Uint64() & 0xff)
		}
		bad := make([]word.Word, len(es))
		for i := range seq {
			bad[i] = seq[i].Xor(es[i])
		}
		sGood, _ := SignatureOf(8, p, seq)
		sBad, _ := SignatureOf(8, p, bad)
		if sGood != sBad {
			t.Fatalf("trial %d: constructed stream did not alias", trial)
		}
	}
	if _, err := AliasingErrorStream(8, p, 1); err == nil {
		t.Error("length-1 aliasing stream accepted")
	}
}

func TestAliasingProbability(t *testing.T) {
	if got := AliasingProbability(1); got != 0.5 {
		t.Errorf("P(1) = %v", got)
	}
	if got := AliasingProbability(8); got != 1.0/256 {
		t.Errorf("P(8) = %v", got)
	}
	if got := AliasingProbability(32); got != 1.0/(1<<32) {
		t.Errorf("P(32) = %v", got)
	}
}

func TestWideMISR128(t *testing.T) {
	m := MustNew(128)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		m.Feed(word.Word{Hi: r.Uint64(), Lo: r.Uint64()})
	}
	if m.Signature().IsZero() {
		t.Fatal("128-bit MISR collapsed to zero on random input")
	}
	if m.Clocks() != 1000 {
		t.Fatalf("clocks = %d", m.Clocks())
	}
}

func TestPolyAccessors(t *testing.T) {
	m := MustNew(8)
	if m.Width() != 8 {
		t.Error("Width broken")
	}
	if m.Poly() != word.FromUint64(0x1d) {
		t.Errorf("Poly = %v", m.Poly())
	}
}
