// Package diagnose turns the mismatch log of a failed march-test run
// into a fault-localization report: which bit cells are suspect, what
// the failure syndrome looks like, and which fault class it suggests.
//
// Embedded-memory BIST flows use exactly this kind of post-test
// analysis to drive repair (row/column replacement) and failure
// analysis — the diagnosis context of the authors' JETTA 2002 work the
// paper cites as [10]. The classification is heuristic but
// deliberately conservative: it names a single-cell class only when
// the whole syndrome is consistent with it.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"twmarch/internal/march"
)

// SiteEvidence aggregates the mismatches observed at one bit cell.
type SiteEvidence struct {
	Addr, Bit int
	// Count is the number of failing reads involving this bit.
	Count int
	// Reads is the value the bit read on failures: 0, 1, or -1 when
	// both values were observed.
	Reads int
}

// String formats the evidence.
func (s SiteEvidence) String() string {
	v := "mixed"
	if s.Reads >= 0 {
		v = fmt.Sprintf("always %d", s.Reads)
	}
	return fmt.Sprintf("%d.%d: %d failing reads, %s", s.Addr, s.Bit, s.Count, v)
}

// Class is the diagnosed fault family.
type Class int

const (
	// NoFault: the run had no mismatches.
	NoFault Class = iota
	// StuckAtSuspect: one cell always reading one value.
	StuckAtSuspect
	// TransitionSuspect: one cell reading both values — consistent
	// with a failing transition or a dynamic (read-disturb) fault.
	TransitionSuspect
	// WordSuspect: several bits of a single word — consistent with a
	// word-line, port or decoder defect.
	WordSuspect
	// CouplingSuspect: cells across several words — consistent with
	// coupling between words or an address-decoder fault.
	CouplingSuspect
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case NoFault:
		return "no fault"
	case StuckAtSuspect:
		return "single-cell stuck-at"
	case TransitionSuspect:
		return "single-cell transition/dynamic"
	case WordSuspect:
		return "single-word (word-line/decoder)"
	case CouplingSuspect:
		return "multi-word (coupling/decoder)"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Report is the diagnosis of one failed run.
type Report struct {
	// Sites lists the suspect bit cells, most-failing first.
	Sites []SiteEvidence
	// Class is the suggested fault family.
	Class Class
	// StuckValue is the stuck polarity for StuckAtSuspect (else -1).
	StuckValue int
	// Truncated is set when the mismatch log was capped and the
	// diagnosis may therefore be incomplete.
	Truncated bool
}

// Addresses returns the distinct suspect word addresses in order.
func (r *Report) Addresses() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range r.Sites {
		if !seen[s.Addr] {
			seen[s.Addr] = true
			out = append(out, s.Addr)
		}
	}
	sort.Ints(out)
	return out
}

// Summary renders a one-paragraph diagnosis.
func (r *Report) Summary() string {
	if r.Class == NoFault {
		return "no fault: all reads matched"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "suspect class: %s", r.Class)
	if r.Class == StuckAtSuspect {
		fmt.Fprintf(&b, " (stuck-at-%d)", r.StuckValue)
	}
	fmt.Fprintf(&b, "; %d suspect cell(s):", len(r.Sites))
	for i, s := range r.Sites {
		if i == 4 {
			fmt.Fprintf(&b, " …")
			break
		}
		fmt.Fprintf(&b, " [%s]", s)
	}
	if r.Truncated {
		fmt.Fprintf(&b, " (mismatch log capped; diagnosis may be partial)")
	}
	return b.String()
}

// Analyze builds a diagnosis from an executed run. The width is the
// memory word width the test ran at.
func Analyze(res march.Result, width int) *Report {
	if res.MismatchCount == 0 {
		return &Report{Class: NoFault, StuckValue: -1}
	}
	type key struct{ addr, bit int }
	acc := map[key]*SiteEvidence{}
	for _, m := range res.Mismatches {
		diff := m.Got.Xor(m.Want)
		for b := 0; b < width; b++ {
			if diff.Bit(b) == 0 {
				continue
			}
			k := key{m.Addr, b}
			ev, ok := acc[k]
			if !ok {
				ev = &SiteEvidence{Addr: m.Addr, Bit: b, Reads: m.Got.Bit(b)}
				acc[k] = ev
			} else if ev.Reads >= 0 && ev.Reads != m.Got.Bit(b) {
				ev.Reads = -1
			}
			ev.Count++
		}
	}
	rep := &Report{
		StuckValue: -1,
		Truncated:  res.MismatchCount > len(res.Mismatches),
	}
	for _, ev := range acc {
		rep.Sites = append(rep.Sites, *ev)
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		if rep.Sites[i].Count != rep.Sites[j].Count {
			return rep.Sites[i].Count > rep.Sites[j].Count
		}
		if rep.Sites[i].Addr != rep.Sites[j].Addr {
			return rep.Sites[i].Addr < rep.Sites[j].Addr
		}
		return rep.Sites[i].Bit < rep.Sites[j].Bit
	})

	addrs := rep.Addresses()
	switch {
	case len(rep.Sites) == 1 && rep.Sites[0].Reads >= 0:
		rep.Class = StuckAtSuspect
		rep.StuckValue = rep.Sites[0].Reads
	case len(rep.Sites) == 1:
		rep.Class = TransitionSuspect
	case len(addrs) == 1:
		rep.Class = WordSuspect
	default:
		rep.Class = CouplingSuspect
	}
	return rep
}

// Locate is a convenience that runs the test against the memory and
// analyzes the outcome in one call.
func Locate(t *march.Test, mem march.Mem) (*Report, error) {
	res, err := march.Run(t, mem, march.RunOptions{MaxMismatches: 4096})
	if err != nil {
		return nil, err
	}
	return Analyze(res, t.Width), nil
}
