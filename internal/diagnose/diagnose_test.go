package diagnose

import (
	"math/rand"
	"strings"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func twmarchFor(t *testing.T, width int) *march.Test {
	t.Helper()
	res, err := core.TWMTA(march.MustLookup("March C-"), width)
	if err != nil {
		t.Fatal(err)
	}
	return res.TWMarch
}

func TestNoFault(t *testing.T) {
	tst := twmarchFor(t, 8)
	mem := memory.MustNew(8, 8)
	mem.Randomize(rand.New(rand.NewSource(1)))
	rep, err := Locate(tst, mem)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != NoFault {
		t.Fatalf("clean memory diagnosed as %v", rep.Class)
	}
	if !strings.Contains(rep.Summary(), "no fault") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

// Every stuck-at fault must be localized to its exact cell with the
// correct polarity.
func TestStuckAtLocalization(t *testing.T) {
	tst := twmarchFor(t, 4)
	for _, f := range faults.EnumerateStuckAt(4, 4) {
		sa := f.(faults.StuckAt)
		mem := memory.MustNew(4, 4)
		mem.Randomize(rand.New(rand.NewSource(7)))
		inj := faults.MustInject(mem, sa)
		rep, err := Locate(tst, inj)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Class != StuckAtSuspect {
			t.Errorf("%s diagnosed as %v", sa, rep.Class)
			continue
		}
		if rep.StuckValue != sa.Value {
			t.Errorf("%s: polarity %d", sa, rep.StuckValue)
		}
		if len(rep.Sites) != 1 || rep.Sites[0].Addr != sa.Cell.Addr || rep.Sites[0].Bit != sa.Cell.Bit {
			t.Errorf("%s localized to %v", sa, rep.Sites)
		}
	}
}

// Transition faults localize to the cell and classify as
// transition/dynamic (the cell reads both values across the run).
func TestTransitionLocalization(t *testing.T) {
	tst := twmarchFor(t, 4)
	hits := 0
	for _, f := range faults.EnumerateTransition(3, 4) {
		tf := f.(faults.Transition)
		mem := memory.MustNew(3, 4)
		mem.Randomize(rand.New(rand.NewSource(3)))
		inj := faults.MustInject(mem, tf)
		rep, err := Locate(tst, inj)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Class == NoFault {
			t.Errorf("%s not detected", tf)
			continue
		}
		// The faulty cell must always be among the suspects.
		found := false
		for _, s := range rep.Sites {
			if s.Addr == tf.Cell.Addr && s.Bit == tf.Cell.Bit {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not among suspects %v", tf, rep.Sites)
		}
		if rep.Class == TransitionSuspect || rep.Class == StuckAtSuspect {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no transition fault classified as single-cell")
	}
}

// Inter-word coupling produces multi-address evidence.
func TestCouplingClassification(t *testing.T) {
	tst := twmarchFor(t, 4)
	cf := faults.Coupling{
		Model:     faults.CFin,
		Aggressor: faults.Site{Addr: 0, Bit: 1},
		Victim:    faults.Site{Addr: 2, Bit: 3},
		// Rising trigger.
		AggrTrigger: 1,
	}
	mem := memory.MustNew(4, 4)
	mem.Randomize(rand.New(rand.NewSource(4)))
	inj := faults.MustInject(mem, cf)
	rep, err := Locate(tst, inj)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class == NoFault {
		t.Fatal("CFin not detected")
	}
	// The victim must be a suspect.
	found := false
	for _, s := range rep.Sites {
		if s.Addr == 2 && s.Bit == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim not among suspects: %v", rep.Sites)
	}
}

// A word-level decoder fault yields multi-bit single- or multi-address
// evidence, never a single-cell class.
func TestDecoderFaultClassification(t *testing.T) {
	tst := twmarchFor(t, 8)
	mem := memory.MustNew(4, 8)
	mem.Randomize(rand.New(rand.NewSource(5)))
	inj := faults.MustInject(mem, faults.AddrAlias{From: 1, To: 3})
	rep, err := Locate(tst, inj)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class == NoFault || rep.Class == StuckAtSuspect || rep.Class == TransitionSuspect {
		t.Fatalf("decoder fault classified as %v", rep.Class)
	}
	if len(rep.Addresses()) == 0 {
		t.Fatal("no suspect addresses")
	}
}

func TestSummaryAndStrings(t *testing.T) {
	tst := twmarchFor(t, 4)
	mem := memory.MustNew(4, 4)
	mem.Randomize(rand.New(rand.NewSource(6)))
	inj := faults.MustInject(mem, faults.StuckAt{Cell: faults.Site{Addr: 2, Bit: 0}, Value: 1})
	rep, err := Locate(tst, inj)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"stuck-at-1", "2.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
	if StuckAtSuspect.String() == "" || Class(99).String() == "" {
		t.Error("class strings broken")
	}
	if (SiteEvidence{Addr: 1, Bit: 2, Count: 3, Reads: -1}).String() == "" {
		t.Error("site string broken")
	}
}

func TestAnalyzeEmptyRun(t *testing.T) {
	rep := Analyze(march.Result{}, 8)
	if rep.Class != NoFault || rep.StuckValue != -1 {
		t.Fatal("empty run misdiagnosed")
	}
}

func TestTruncationFlag(t *testing.T) {
	res := march.Result{MismatchCount: 500}
	// Only 2 recorded of 500.
	res.Mismatches = []march.Mismatch{
		{Addr: 0, Got: wordOf(1), Want: wordOf(0)},
		{Addr: 0, Got: wordOf(1), Want: wordOf(0)},
	}
	rep := Analyze(res, 1)
	if !rep.Truncated {
		t.Fatal("truncation not flagged")
	}
	if !strings.Contains(rep.Summary(), "capped") {
		t.Fatal("summary does not mention the cap")
	}
}

func wordOf(v uint64) word.Word { return word.FromUint64(v) }
