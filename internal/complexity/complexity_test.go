package complexity

import (
	"math"
	"testing"

	"twmarch/internal/march"
)

// Table 2's closed forms at the paper's headline point: March C-
// (M=10, Q=5) on 32-bit words.
func TestClosedFormMarchCMinus32(t *testing.T) {
	bm := march.MustLookup("March C-")
	if bm.Ops() != 10 || bm.Reads() != 5 {
		t.Fatalf("March C- M=%d Q=%d", bm.Ops(), bm.Reads())
	}
	cases := []struct {
		s        Scheme
		tcm, tcp int
	}{
		{Scheme1, 60, 30},  // M(log2 W+1), Q(log2 W+1) with log2 32 = 5
		{Scheme2, 256, 0},  // 8W
		{Proposed, 35, 15}, // M+5 log2 W, Q+2 log2 W
	}
	for _, c := range cases {
		got, err := ClosedFormFor(c.s, bm, 32)
		if err != nil {
			t.Fatal(err)
		}
		if got.TCM != c.tcm || got.TCP != c.tcp {
			t.Errorf("%v: TCM/TCP = %d/%d, want %d/%d", c.s, got.TCM, got.TCP, c.tcm, c.tcp)
		}
	}
}

// The abstract's 56% / 19% claim, reproduced exactly from the closed
// forms: 50/90 ≈ 0.56 and 50/256 ≈ 0.195.
func TestHeadlineRatios(t *testing.T) {
	h, err := Headline(march.MustLookup("March C-"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if h.ProposedTotal != 50 || h.Scheme1Total != 90 || h.Scheme2Total != 256 {
		t.Fatalf("totals = %d/%d/%d, want 50/90/256", h.ProposedTotal, h.Scheme1Total, h.Scheme2Total)
	}
	if math.Abs(h.VsScheme1-0.5556) > 0.001 {
		t.Errorf("vs Scheme 1 = %.4f, want ≈0.5556 (the paper's 56%%)", h.VsScheme1)
	}
	if math.Abs(h.VsScheme2-0.1953) > 0.001 {
		t.Errorf("vs Scheme 2 = %.4f, want ≈0.1953 (the paper's 19%%)", h.VsScheme2)
	}
	// The measured (constructive) ratios keep the shape: proposed
	// clearly shortest, with ratios in the same bands.
	if h.MeasuredVsScheme1 > 0.65 || h.MeasuredVsScheme2 > 0.30 {
		t.Errorf("measured ratios %.3f / %.3f out of shape", h.MeasuredVsScheme1, h.MeasuredVsScheme2)
	}
}

// The full Table 3 closed-form sweep.
func TestTable3ClosedForm(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Tests)*len(Table3Widths) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot checks derived from the formulas (March C-: M=10 Q=5;
	// March U: M=13 Q=6).
	want := map[string]map[int][3]Cost{
		"March C-": {
			16:  {{TCM: 50, TCP: 25}, {TCM: 128, TCP: 0}, {TCM: 30, TCP: 13}},
			32:  {{TCM: 60, TCP: 30}, {TCM: 256, TCP: 0}, {TCM: 35, TCP: 15}},
			64:  {{TCM: 70, TCP: 35}, {TCM: 512, TCP: 0}, {TCM: 40, TCP: 17}},
			128: {{TCM: 80, TCP: 40}, {TCM: 1024, TCP: 0}, {TCM: 45, TCP: 19}},
		},
		"March U": {
			16:  {{TCM: 65, TCP: 30}, {TCM: 128, TCP: 0}, {TCM: 33, TCP: 14}},
			32:  {{TCM: 78, TCP: 36}, {TCM: 256, TCP: 0}, {TCM: 38, TCP: 16}},
			64:  {{TCM: 91, TCP: 42}, {TCM: 512, TCP: 0}, {TCM: 43, TCP: 18}},
			128: {{TCM: 104, TCP: 48}, {TCM: 1024, TCP: 0}, {TCM: 48, TCP: 20}},
		},
	}
	for _, row := range rows {
		exp, ok := want[row.Test][row.Width]
		if !ok {
			t.Fatalf("unexpected row %s W=%d", row.Test, row.Width)
		}
		for _, s := range Schemes() {
			if row.Closed[s] != exp[s] {
				t.Errorf("%s W=%d %v: closed = %+v, want %+v", row.Test, row.Width, s, row.Closed[s], exp[s])
			}
		}
	}
}

// Shape preservation: in every Table 3 row, measured and closed-form
// agree on the ordering (proposed < Scheme 1 < Scheme 2 in total
// cost) and the measured values sit within a small bounded gap of the
// closed forms.
func TestTable3MeasuredShape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		mp, m1, m2 := row.Measured[Proposed].Total(), row.Measured[Scheme1].Total(), row.Measured[Scheme2].Total()
		if !(mp < m1 && m1 < m2) {
			t.Errorf("%s W=%d: measured ordering broken: %d / %d / %d", row.Test, row.Width, mp, m1, m2)
		}
		for _, s := range Schemes() {
			c, m := row.Closed[s], row.Measured[s]
			// The bookkeeping gap: prepended reads, restore elements,
			// ATMarch prediction reads, TOMT verification read.
			if m.TCM < c.TCM || m.TCM > c.TCM+2*(1+c.TCM/4) {
				t.Errorf("%s W=%d %v: measured TCM %d far from closed %d", row.Test, row.Width, s, m.TCM, c.TCM)
			}
		}
	}
}

// The paper's closing observation: the proposed scheme's length is
// only slightly related to the source test (the ATMarch overhead is
// test-independent), while Scheme 1 scales multiplicatively.
func TestSourceSensitivity(t *testing.T) {
	short := march.MustLookup("March C-") // M=10
	long := march.MustLookup("March B")   // M=17
	for _, w := range []int{16, 128} {
		pShort, _ := ClosedFormFor(Proposed, short, w)
		pLong, _ := ClosedFormFor(Proposed, long, w)
		s1Short, _ := ClosedFormFor(Scheme1, short, w)
		s1Long, _ := ClosedFormFor(Scheme1, long, w)
		dProposed := pLong.TCM - pShort.TCM
		dScheme1 := s1Long.TCM - s1Short.TCM
		if dProposed != long.Ops()-short.Ops() {
			t.Errorf("W=%d: proposed delta %d, want %d", w, dProposed, long.Ops()-short.Ops())
		}
		if dScheme1 <= dProposed {
			t.Errorf("W=%d: Scheme 1 should amplify source length (%d vs %d)", w, dScheme1, dProposed)
		}
	}
}

func TestFormulaStrings(t *testing.T) {
	for _, s := range Schemes() {
		tcm, tcp := Formula(s)
		if tcm == "" || tcp == "" || tcm == "?" {
			t.Errorf("%v: formula strings broken", s)
		}
	}
	if s := Scheme(9).String(); s == "" {
		t.Error("unknown scheme string empty")
	}
}

func TestClosedFormValidation(t *testing.T) {
	if _, err := ClosedForm(Proposed, 10, 5, 12); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	if _, err := ClosedForm(Proposed, 0, 0, 16); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := ClosedForm(Proposed, 4, 5, 16); err == nil {
		t.Error("Q>M accepted")
	}
	if _, err := ClosedForm(Scheme(9), 10, 5, 16); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Constructive(Scheme(9), march.MustLookup("March C-"), 16); err == nil {
		t.Error("unknown scheme accepted by Constructive")
	}
}

func TestCostTotal(t *testing.T) {
	if (Cost{TCM: 35, TCP: 15}).Total() != 50 {
		t.Error("Total broken")
	}
}
