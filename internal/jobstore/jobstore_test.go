package jobstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"twmarch/internal/campaign"
)

func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:    "journal",
		Tests:   []string{"MATS"},
		Widths:  []int{2},
		Words:   []int{2, 3},
		Classes: []string{"SAF"},
		Seed:    9,
	}
}

// results simulates the spec's cells serially, for journal fixtures.
func results(t *testing.T, spec campaign.Spec) []campaign.CellResult {
	t.Helper()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]campaign.CellResult, 0, len(cells))
	for _, c := range cells {
		out = append(out, campaign.RunCell(spec, c))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	res := results(t, spec)

	j, err := st.Create("c1", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res[:2] {
		j.Emit(r)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	got := jobs[0]
	if got.ID != "c1" || got.State != "" {
		t.Fatalf("recovered job %q state %q, want c1 interrupted", got.ID, got.State)
	}
	if got.Spec.Name != spec.Name || len(got.Spec.Tests) != 1 {
		t.Fatalf("spec did not round-trip: %+v", got.Spec)
	}
	if len(got.Done) != 2 {
		t.Fatalf("recovered %d cells, want 2", len(got.Done))
	}
	for i, r := range got.Done {
		if r.Index != res[i].Index || r.Faults != res[i].Faults || r.Detected != res[i].Detected {
			t.Fatalf("cell %d did not round-trip: got %+v want %+v", i, r, res[i])
		}
	}

	// Reopen appends; the replay sees old and new lines.
	j2, err := st.Reopen("c1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res[2:] {
		j2.Emit(r)
	}
	if err := j2.Finish("done", ""); err != nil {
		t.Fatal(err)
	}
	jobs, err = st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs[0].Done) != len(res) || jobs[0].State != "done" {
		t.Fatalf("after finish: %d cells, state %q", len(jobs[0].Done), jobs[0].State)
	}
}

func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	res := results(t, spec)
	j, err := st.Create("c1", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		j.Emit(r)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final line as a crash mid-write would.
	wal := filepath.Join(dir, "c1", "wal.ndjson")
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Done) != len(res)-1 {
		t.Fatalf("torn WAL recovered %d cells, want %d", len(jobs[0].Done), len(res)-1)
	}

	// Reopen truncates the torn fragment before appending — otherwise
	// the next record would merge into it and everything journaled
	// after this restart would be unrecoverable on the one after.
	j2, err := st.Reopen("c1")
	if err != nil {
		t.Fatal(err)
	}
	j2.Emit(res[len(res)-1])
	if err := j2.Finish("done", ""); err != nil {
		t.Fatal(err)
	}
	jobs, err = st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs[0].Done) != len(res) || jobs[0].State != "done" {
		t.Fatalf("after reopen-and-finish: %d cells (want %d), state %q",
			len(jobs[0].Done), len(res), jobs[0].State)
	}

	// A valid final line missing only its newline is also a torn tail.
	raw, err = os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err = st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs[0].Done) != len(res)-1 {
		t.Fatalf("newline-less tail counted: %d cells, want %d", len(jobs[0].Done), len(res)-1)
	}
}

func TestRecoverSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A directory without a spec (crash between Mkdir and rename), a
	// directory with a malformed spec, and a stray file.
	if err := os.Mkdir(filepath.Join(dir, "c7"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "c8"), 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "c8", "spec.json"), []byte("{"), 0o644)
	os.WriteFile(filepath.Join(dir, "README"), []byte("not a job"), 0o644)

	if _, err := st.Create("c2", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("c10", testSpec()); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "c2" || jobs[1].ID != "c10" {
		t.Fatalf("recovered %+v, want [c2 c10] in numeric order", jobs)
	}
}

func TestRemoveAndIDValidation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("c1", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("c1", testSpec()); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := st.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("removed job still recovered: %+v", jobs)
	}
	for _, id := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := st.Create(id, testSpec()); err == nil {
			t.Errorf("id %q accepted", id)
		}
		if err := st.Remove(id); err == nil {
			t.Errorf("remove %q accepted", id)
		}
	}
	if _, err := st.Reopen("nope"); err == nil {
		t.Error("reopen of missing job accepted")
	}
	if _, err := Open(""); err == nil {
		t.Error("empty store dir accepted")
	}
}

// TestDispatchLog pins the cluster side log: events append as NDJSON,
// survive a reopen, a torn tail line is dropped, recovery never
// replays them, and a job that never dispatched reads back nil.
func TestDispatchLog(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.Create("c1", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		Kind string `json:"kind"`
		Cell int    `json:"cell"`
	}
	j.Dispatch(ev{Kind: "lease", Cell: 0})
	j.Dispatch(ev{Kind: "complete", Cell: 0})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Events append across a reopen, like the WAL.
	j2, err := st.Reopen("c1")
	if err != nil {
		t.Fatal(err)
	}
	j2.Dispatch(ev{Kind: "lease", Cell: 1})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn tail (crash mid-append) is dropped on read.
	f, err := os.OpenFile(filepath.Join(st.Dir(), "c1", "dispatch.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"requ`)
	f.Close()

	lines, err := st.DispatchLog("c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("dispatch log has %d lines, want 3: %s", len(lines), lines)
	}
	var last ev
	if err := json.Unmarshal(lines[2], &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "lease" || last.Cell != 1 {
		t.Fatalf("last event %+v", last)
	}

	// Recovery ignores the side log entirely.
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Done) != 0 {
		t.Fatalf("recovery affected by dispatch log: %+v", jobs)
	}

	// A job without a dispatch log reads back nil.
	if _, err := st.Create("c2", testSpec()); err != nil {
		t.Fatal(err)
	}
	lines, err = st.DispatchLog("c2")
	if err != nil || lines != nil {
		t.Fatalf("undispatched job log = %v, %v; want nil, nil", lines, err)
	}
	if _, err := st.DispatchLog("../escape"); err == nil {
		t.Error("invalid id accepted")
	}
}
