// Package jobstore is the durable job journal behind cmd/twmd's
// -datadir: one directory per submitted campaign holding the spec, a
// write-ahead log of completed cell results, and a terminal-state
// marker. A restarted server recovers every journaled job — terminal
// jobs rebuild their aggregate from the WAL, interrupted jobs replay
// the finished cells and re-simulate only the remainder (cell results
// are pure functions of (spec, cell), so the recovered aggregate is
// byte-identical to an uninterrupted run).
//
// Layout under the store root:
//
//	<id>/spec.json       the submitted campaign.Spec (atomic rename)
//	<id>/wal.ndjson      one compact JSON CellResult per line, append-only
//	<id>/state.json      terminal marker {state, error} (atomic rename)
//	<id>/dispatch.ndjson cluster scheduling events (lease/requeue/...),
//	                     append-only; an operator-facing side log that
//	                     recovery never replays
//	<id>/trace           the job span's W3C traceparent (atomic rename),
//	                     so a restarted server resumes the same trace
//
// The WAL is written one line per syscall without fsync: a torn tail
// from a crash is detected on replay and dropped, costing only the
// re-simulation of that cell.
package jobstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"twmarch/internal/campaign"
)

// Store is a journal directory. Methods are safe for concurrent use;
// per-job serialization is the Journal's.
type Store struct {
	dir string
}

// Open creates the store root if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// IDs returns every job directory name in the store, including ones
// Recover would skip as unrecoverable (e.g. a crash-orphaned directory
// without a spec). Id allocators must steer clear of all of them — a
// reused id would collide with the leftover directory and silently run
// unjournaled.
func (s *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// validID rejects ids that could escape the store root. Server job ids
// are "c<seq>", but the store guards its own invariants.
func validID(id string) error {
	if id == "" || id == "." || id == ".." || strings.ContainsAny(id, `/\`) {
		return fmt.Errorf("jobstore: invalid job id %q", id)
	}
	return nil
}

// Create journals a new job: it writes the spec and opens the cell WAL
// for appending. It fails if the job already exists.
func (s *Store) Create(id string, spec campaign.Spec) (*Journal, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.dir, id)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobstore: encode spec: %v", err)
	}
	if err := atomicWrite(filepath.Join(dir, "spec.json"), append(raw, '\n')); err != nil {
		return nil, err
	}
	return openWAL(dir)
}

// Reopen returns the journal of an existing job, appending to its WAL
// — the recovery path for a job resumed after a restart. A torn tail
// left by a crash is truncated away first: appending after the
// fragment would merge two records into one malformed line and make
// everything journaled afterwards unrecoverable on later restarts.
func (s *Store) Reopen(id string) (*Journal, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.dir, id)
	if _, err := os.Stat(filepath.Join(dir, "spec.json")); err != nil {
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	wal := filepath.Join(dir, "wal.ndjson")
	if valid, size, err := scanWAL(wal, nil); err == nil && valid < size {
		if err := os.Truncate(wal, valid); err != nil {
			return nil, fmt.Errorf("jobstore: truncate torn tail: %v", err)
		}
		metTornRepairs.Inc()
	}
	return openWAL(dir)
}

// Remove deletes a job's journal — the eviction path.
func (s *Store) Remove(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	return os.RemoveAll(filepath.Join(s.dir, id))
}

// Job is one recovered journal entry.
type Job struct {
	// ID is the job's directory name (the server's job id).
	ID string
	// Spec is the submitted campaign spec.
	Spec campaign.Spec
	// Done holds the journaled cell results, in WAL (completion) order.
	Done []campaign.CellResult
	// State is the terminal marker ("done", "failed", "canceled"), or
	// empty for a job that was interrupted mid-run and should resume.
	State string
	// Err is the terminal marker's error message.
	Err string
	// TraceParent is the job span's journaled W3C traceparent, empty
	// when the job predates tracing or the file was lost.
	TraceParent string
}

// terminalMarker is the state.json schema.
type terminalMarker struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Load reads one journaled job — spec, WAL replay, terminal marker —
// without touching the rest of the store. It fails when the spec is
// missing or unreadable (a crash between Mkdir and the spec rename
// leaves nothing recoverable); a malformed or torn WAL tail drops the
// affected line and everything after it. Recover is the whole-store
// sweep built on it; index consumers (the result warehouse's rebuild
// and reconcile paths) use Load directly so repairing one job's index
// entries never re-reads every journal.
func (s *Store) Load(id string) (Job, error) {
	if err := validID(id); err != nil {
		return Job{}, err
	}
	dir := filepath.Join(s.dir, id)
	raw, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return Job{}, fmt.Errorf("jobstore: %v", err)
	}
	var spec campaign.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return Job{}, fmt.Errorf("jobstore: %s: parse spec: %v", id, err)
	}
	j := Job{ID: id, Spec: spec, Done: readWAL(filepath.Join(dir, "wal.ndjson"))}
	if raw, err := os.ReadFile(filepath.Join(dir, "state.json")); err == nil {
		var m terminalMarker
		if err := json.Unmarshal(raw, &m); err == nil {
			j.State, j.Err = m.State, m.Error
		}
	}
	if raw, err := os.ReadFile(filepath.Join(dir, "trace")); err == nil {
		j.TraceParent = strings.TrimSpace(string(raw))
	}
	return j, nil
}

// WriteTrace journals the job span's traceparent so recovery can
// resume the job on the same trace. Written once at submission;
// atomic like the other markers.
func (s *Store) WriteTrace(id, traceparent string) error {
	if err := validID(id); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, id, "trace"), []byte(traceparent+"\n"))
}

// Recover loads every journaled job, sorted by id (numeric-suffix
// aware: c2 before c10). Directories without a readable spec are
// skipped — a crash between Mkdir and the spec rename leaves nothing
// recoverable. A malformed or torn WAL tail drops the affected line
// and everything after it; those cells simply re-simulate.
func (s *Store) Recover() ([]Job, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	var jobs []Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		j, err := s.Load(e.Name())
		if err != nil {
			continue
		}
		metRecoveredJobs.Inc()
		metRecoveredCells.Add(float64(len(j.Done)))
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if len(jobs[a].ID) != len(jobs[b].ID) {
			return len(jobs[a].ID) < len(jobs[b].ID)
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs, nil
}

// readWAL parses cell results up to the first torn or malformed line.
// The WAL is append-only, so everything before a torn tail is intact.
func readWAL(path string) []campaign.CellResult {
	var out []campaign.CellResult
	scanWAL(path, func(r campaign.CellResult) { out = append(out, r) })
	return out
}

// scanWAL walks the WAL's valid prefix — complete, newline-terminated
// lines that unmarshal — calling visit (when non-nil) per record, and
// returns the prefix length in bytes alongside the file size. A line
// without its terminating newline is a torn tail even if it happens to
// parse: appending after it would corrupt the record boundary.
func scanWAL(path string, visit func(campaign.CellResult)) (valid, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	rd := bufio.NewReaderSize(f, 64*1024)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			return valid, size, nil // EOF: any unterminated remainder is torn
		}
		var r campaign.CellResult
		if json.Unmarshal(line, &r) != nil {
			return valid, size, nil
		}
		valid += int64(len(line))
		if visit != nil {
			visit(r)
		}
	}
}

// Journal is one job's open write-ahead log. It implements
// campaign.Sink: plugged into Engine.Stream it journals every
// completed cell as it lands. Append errors don't stop the campaign —
// the first one is retained for Err and later results are dropped, so
// a full disk degrades to re-simulation after the next restart rather
// than a failed job.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	dir string
	err error
	// df is the dispatch side log, opened lazily on the first event so
	// non-cluster jobs never create the file.
	df    *os.File
	dfErr error
}

func openWAL(dir string) (*Journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.ndjson"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	return &Journal{f: f, dir: dir}, nil
}

// Emit appends one cell result to the WAL (campaign.Sink).
func (j *Journal) Emit(r campaign.CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.f == nil {
		return
	}
	raw, err := json.Marshal(r)
	if err != nil {
		j.err = fmt.Errorf("jobstore: encode cell %d: %v", r.Index, err)
		metAppendErrors.Inc()
		return
	}
	// One write syscall per line keeps torn writes to the tail, which
	// replay detects and drops.
	if _, err := j.f.Write(append(raw, '\n')); err != nil {
		j.err = fmt.Errorf("jobstore: append cell %d: %v", r.Index, err)
		metAppendErrors.Inc()
		return
	}
	metWALAppends.Inc()
}

// Dispatch appends one cluster scheduling event — any JSON-marshalable
// value; cmd/twmd passes cluster.Event — to the job's dispatch side
// log (<id>/dispatch.ndjson). The log is pure observability: recovery
// never replays it, so append failures are swallowed after the first
// (retained for Err) and a full disk costs the event trail, not the
// job.
func (j *Journal) Dispatch(ev any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// The j.f guard mirrors Emit and doubles as the closed check: a
	// straggler event arriving after Finish/Close (lease revocations
	// race the collector) must not reopen the side log and leak the fd.
	if j.dfErr != nil || j.f == nil {
		return
	}
	if j.df == nil {
		f, err := os.OpenFile(filepath.Join(j.dir, "dispatch.ndjson"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			j.dfErr = fmt.Errorf("jobstore: %v", err)
			metAppendErrors.Inc()
			return
		}
		j.df = f
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		j.dfErr = fmt.Errorf("jobstore: encode dispatch event: %v", err)
		metAppendErrors.Inc()
		return
	}
	if _, err := j.df.Write(append(raw, '\n')); err != nil {
		j.dfErr = fmt.Errorf("jobstore: append dispatch event: %v", err)
		metAppendErrors.Inc()
		return
	}
	metDispatchEvents.Inc()
}

// DispatchLog reads a job's dispatch side log as raw NDJSON lines
// (nil when the job never dispatched). Lines are returned verbatim so
// callers decode into their own event schema; a torn tail line is
// dropped.
func (s *Store) DispatchLog(id string) ([]json.RawMessage, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, id, "dispatch.ndjson"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("jobstore: %v", err)
	}
	var out []json.RawMessage
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			break // torn tail
		}
		line := raw[:nl]
		raw = raw[nl+1:]
		if json.Valid(line) {
			out = append(out, json.RawMessage(append([]byte(nil), line...)))
		}
	}
	return out, nil
}

// Err returns the first append failure, if any — a WAL failure wins
// over a dispatch-log one, since only the WAL affects recovery.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.dfErr
}

// Finish writes the terminal-state marker and closes the WAL. A job
// with a marker is restored verbatim on recovery instead of resumed.
func (j *Journal) Finish(state, errMsg string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, err := json.Marshal(terminalMarker{State: state, Error: errMsg})
	if err != nil {
		return fmt.Errorf("jobstore: encode marker: %v", err)
	}
	if err := atomicWrite(filepath.Join(j.dir, "state.json"), append(raw, '\n')); err != nil {
		return err
	}
	return j.closeLocked()
}

// Close closes the WAL without a terminal marker, leaving the job
// interrupted — on recovery it resumes from the journaled cells. This
// is the graceful-shutdown path.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closeLocked()
}

func (j *Journal) closeLocked() error {
	if j.df != nil {
		j.df.Close() // best-effort, like the appends
		j.df = nil
	}
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("jobstore: %v", err)
	}
	return nil
}

// atomicWrite writes via a temp file and rename so readers (and
// recovery after a crash) never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("jobstore: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: %v", err)
	}
	return nil
}
