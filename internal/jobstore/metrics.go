package jobstore

// Journal metrics on the process-default obs registry: the durability
// layer's health — append volume, append failures (a full disk shows
// up here long before recovery does), recovery replays, and torn-tail
// repairs.

import "twmarch/internal/obs"

var (
	metWALAppends = obs.NewCounter("twm_jobstore_wal_appends_total",
		"cell results appended to job WALs").With()
	metAppendErrors = obs.NewCounter("twm_jobstore_append_errors_total",
		"failed WAL or dispatch-log appends (first failure per journal sticks)").With()
	metDispatchEvents = obs.NewCounter("twm_jobstore_dispatch_events_total",
		"cluster scheduling events appended to dispatch side logs").With()
	metRecoveredJobs = obs.NewCounter("twm_jobstore_recovered_jobs_total",
		"journaled jobs replayed by Recover after a restart").With()
	metRecoveredCells = obs.NewCounter("twm_jobstore_recovered_cells_total",
		"cell results replayed from WALs by Recover").With()
	metTornRepairs = obs.NewCounter("twm_jobstore_torn_tail_repairs_total",
		"torn WAL tails truncated away on journal reopen").With()
)
