package jobstore

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twmarch/internal/campaign"
)

func tornSpec() campaign.Spec {
	return campaign.Spec{
		Name:    "torn",
		Tests:   []string{"MATS"},
		Widths:  []int{2},
		Words:   []int{4, 6},
		Classes: []string{"SAF"},
		Modes:   []string{"compare"},
		Seed:    7,
	}
}

// TestTornTailRepairEveryOffset is the crash-consistency sweep for the
// WAL: a SIGKILL can tear the final record at any byte, so for every
// truncation offset inside the last line (from zero bytes of it up to
// all of it minus the newline) recovery must (a) replay exactly the
// intact prefix, (b) repair the tail on reopen so later appends land
// on a clean record boundary, and (c) resume to an aggregate
// byte-identical to an uninterrupted run.
func TestTornTailRepairEveryOffset(t *testing.T) {
	spec := tornSpec()
	ctx := context.Background()

	// Reference: an uninterrupted streaming run, capturing the emitted
	// results in order.
	var results []campaign.CellResult
	ref, err := campaign.Engine{}.Stream(ctx, spec, &campaign.Progress{}, nil,
		campaign.SinkFunc(func(r campaign.CellResult) { results = append(results, r) }))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("spec expanded to %d cells, need >= 2", len(results))
	}

	// Journal every result once to get the intact WAL bytes.
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jn, err := store.Create("intact", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		jn.Emit(r)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(store.Dir(), "intact", "wal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := bytes.LastIndexByte(bytes.TrimSuffix(wal, []byte("\n")), '\n') + 1

	for cut := lastStart; cut < len(wal); cut++ {
		id := fmt.Sprintf("cut%d", cut)
		j, err := store.Create(id, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		walPath := filepath.Join(store.Dir(), id, "wal.ndjson")
		if err := os.WriteFile(walPath, wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// (a) Recovery replays the intact prefix, nothing more.
		done := readWAL(walPath)
		if len(done) != len(results)-1 {
			t.Fatalf("cut %d: recovered %d results, want %d", cut, len(done), len(results)-1)
		}
		for i := range done {
			if !reflect.DeepEqual(done[i], results[i]) {
				t.Fatalf("cut %d: recovered result %d diverges from the journaled one", cut, i)
			}
		}

		// (b) Reopen truncates the torn fragment away so appends start on
		// a record boundary.
		rj, err := store.Reopen(id)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatalf("cut %d: stat repaired WAL: %v", cut, err)
		}
		if fi.Size() != int64(lastStart) {
			t.Fatalf("cut %d: WAL is %d bytes after repair, want %d", cut, fi.Size(), lastStart)
		}

		// (c) Resume the run the way twmd does — seed an aggregator from
		// the recovered cells, stream the remainder into the reopened
		// journal — and demand byte-identity with the uninterrupted run.
		agg := campaign.NewAggregator(spec)
		for _, r := range done {
			agg.Add(r)
		}
		resumed, err := campaign.Engine{}.Stream(ctx, spec, &campaign.Progress{}, agg, rj)
		if err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		got, err := resumed.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d: resumed aggregate diverges from uninterrupted run", cut)
		}
		if err := rj.Close(); err != nil {
			t.Fatal(err)
		}

		// The repaired-and-resumed WAL replays whole again.
		if done := readWAL(walPath); len(done) != len(results) {
			t.Fatalf("cut %d: post-resume WAL replays %d results, want %d", cut, len(done), len(results))
		}
		if err := store.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if lastStart+1 >= len(wal) {
		t.Fatalf("final WAL record is only %d bytes; sweep covered nothing", len(wal)-lastStart)
	}
}
