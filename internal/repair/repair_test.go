package repair

import (
	"math/rand"
	"strings"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/diagnose"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
)

func site(addr, bit int) diagnose.SiteEvidence {
	return diagnose.SiteEvidence{Addr: addr, Bit: bit, Count: 1}
}

func TestSingleCellUsesOneSpare(t *testing.T) {
	plan, err := Allocate([]diagnose.SiteEvidence{site(3, 5)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable {
		t.Fatal("single cell should be repairable")
	}
	if len(plan.Assignment.Rows)+len(plan.Assignment.Cols) != 1 {
		t.Fatalf("used more than one spare: %+v", plan.Assignment)
	}
	if !Covers(plan.Assignment, []diagnose.SiteEvidence{site(3, 5)}) {
		t.Fatal("plan does not cover the defect")
	}
}

func TestRowDefectForcesSpareRow(t *testing.T) {
	// Four cells in one word with only one spare column available: the
	// must-repair phase has to spend the spare row.
	sites := []diagnose.SiteEvidence{site(2, 0), site(2, 1), site(2, 2), site(2, 3)}
	plan, err := Allocate(sites, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable {
		t.Fatal("row defect with a spare row should be repairable")
	}
	if len(plan.Assignment.Rows) != 1 || plan.Assignment.Rows[0] != 2 {
		t.Fatalf("expected spare row at 2, got %+v", plan.Assignment)
	}
}

func TestColumnDefectForcesSpareColumn(t *testing.T) {
	sites := []diagnose.SiteEvidence{site(0, 6), site(1, 6), site(2, 6), site(3, 6)}
	plan, err := Allocate(sites, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || len(plan.Assignment.Cols) != 1 || plan.Assignment.Cols[0] != 6 {
		t.Fatalf("expected spare column at 6, got %+v", plan)
	}
}

func TestUnrepairablePattern(t *testing.T) {
	// A diagonal of 3 defects needs 3 spares in any mix; give 2.
	sites := []diagnose.SiteEvidence{site(0, 0), site(1, 1), site(2, 2)}
	plan, err := Allocate(sites, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Repairable {
		t.Fatal("diagonal of 3 with 2 spares should be unrepairable")
	}
	if len(plan.Uncovered) == 0 {
		t.Fatal("uncovered cells not reported")
	}
	if !strings.Contains(plan.String(), "unrepairable") {
		t.Fatalf("plan string: %s", plan.String())
	}
}

func TestZeroSpares(t *testing.T) {
	plan, err := Allocate([]diagnose.SiteEvidence{site(0, 0)}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Repairable {
		t.Fatal("no spares cannot repair anything")
	}
	if _, err := Allocate(nil, -1, 0); err == nil {
		t.Fatal("negative spares accepted")
	}
}

func TestEmptyDiagnosisNeedsNothing(t *testing.T) {
	plan, err := Allocate(nil, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || len(plan.Assignment.Rows)+len(plan.Assignment.Cols) != 0 {
		t.Fatalf("empty diagnosis should use no spares: %+v", plan)
	}
	if !strings.Contains(plan.String(), "repairable") {
		t.Fatal("plan string broken")
	}
}

// Property: whenever Allocate says repairable, the assignment really
// covers all sites and respects the spare budget.
func TestAllocatePropertyRandomPatterns(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(8)
		var sites []diagnose.SiteEvidence
		seen := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			k := [2]int{r.Intn(6), r.Intn(6)}
			if seen[k] {
				continue
			}
			seen[k] = true
			sites = append(sites, site(k[0], k[1]))
		}
		sr, sc := r.Intn(3), r.Intn(3)
		plan, err := Allocate(sites, sr, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Assignment.Rows) > sr || len(plan.Assignment.Cols) > sc {
			t.Fatalf("budget exceeded: %+v with %d/%d", plan.Assignment, sr, sc)
		}
		if plan.Repairable {
			if !Covers(plan.Assignment, sites) {
				t.Fatalf("claimed repairable but uncovered: %+v / %+v", plan.Assignment, sites)
			}
		} else if len(plan.Uncovered) == 0 {
			t.Fatal("unrepairable without uncovered cells")
		}
	}
}

// TestAllocateDeterministic pins the plan down under spare starvation:
// three must-repair rows compete for two spare rows, so a map-order
// dependent sweep would spend them on a different pair from run to
// run. The campaign yield pipeline's byte-identical aggregate
// guarantee rests on Allocate being a pure function of its inputs.
func TestAllocateDeterministic(t *testing.T) {
	sites := []diagnose.SiteEvidence{
		site(0, 0), site(0, 1),
		site(1, 0), site(1, 1),
		site(2, 0), site(2, 1),
	}
	first, err := Allocate(sites, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		plan, err := Allocate(sites, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Repairable != first.Repairable ||
			!equalInts(plan.Assignment.Rows, first.Assignment.Rows) ||
			!equalInts(plan.Assignment.Cols, first.Assignment.Cols) ||
			len(plan.Uncovered) != len(first.Uncovered) {
			t.Fatalf("trial %d diverged: %+v vs %+v", trial, plan, first)
		}
	}
	// Ascending-order sweep: rows 0 and 1 get the spare rows.
	if !equalInts(first.Assignment.Rows, []int{0, 1}) {
		t.Errorf("must-repair spent rows %v, want [0 1]", first.Assignment.Rows)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// End-to-end: BIST detects, diagnosis localizes, repair allocates —
// the full embedded self-repair pipeline.
func TestPipelineFromDiagnosis(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.MustNew(16, 8)
	mem.Randomize(rand.New(rand.NewSource(2)))
	inj := faults.MustInject(mem, faults.StuckAt{Cell: faults.Site{Addr: 9, Bit: 4}, Value: 0})
	rep, err := diagnose.Locate(res.TWMarch, inj)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(rep.Sites, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable {
		t.Fatalf("single stuck cell should be repairable: %s", plan)
	}
	if !Covers(plan.Assignment, rep.Sites) {
		t.Fatal("plan does not cover the diagnosed cell")
	}
}
