// Package repair allocates redundancy for a faulty embedded memory
// from a diagnosis report: given spare rows (word lines) and spare
// columns (bit lines), it decides which defective resources to
// replace. Built-in self-repair (BISR) sits directly downstream of the
// BIST diagnosis this library produces; the allocation problem is the
// classical spare-row/spare-column assignment (NP-hard in general;
// solved here with the standard must-repair reduction followed by a
// greedy cover, which is what hardware BISR state machines implement).
package repair

import (
	"fmt"
	"sort"

	"twmarch/internal/diagnose"
)

// Assignment is the chosen redundancy mapping.
type Assignment struct {
	// Rows lists word addresses replaced by spare rows.
	Rows []int
	// Cols lists bit positions replaced by spare columns.
	Cols []int
}

// Plan is the outcome of an allocation.
type Plan struct {
	Assignment Assignment
	// Repairable is false when the defect pattern exceeds the spares;
	// Uncovered then lists the cells left unrepaired.
	Repairable bool
	Uncovered  []diagnose.SiteEvidence
}

// String summarizes the plan.
func (p *Plan) String() string {
	if !p.Repairable {
		return fmt.Sprintf("unrepairable: %d cells uncovered (rows %v, cols %v assigned)",
			len(p.Uncovered), p.Assignment.Rows, p.Assignment.Cols)
	}
	return fmt.Sprintf("repairable: spare rows -> %v, spare columns -> %v",
		p.Assignment.Rows, p.Assignment.Cols)
}

// Allocate maps the suspect cells of a diagnosis onto the available
// spares. The algorithm is the textbook two-phase repair:
//
//  1. Must-repair: a row with more defective cells than the remaining
//     spare columns can only be fixed by a spare row, and vice versa;
//     iterate until stable.
//  2. Greedy cover: repeatedly spend whichever spare kind covers the
//     most remaining defects (ties prefer rows, the cheaper resource
//     in most embedded SRAM layouts).
//
// Allocate is deterministic: equal inputs produce the identical plan,
// with candidate rows and columns considered in ascending index order.
// The campaign yield pipeline depends on this for its byte-identical
// aggregate guarantee.
func Allocate(sites []diagnose.SiteEvidence, spareRows, spareCols int) (*Plan, error) {
	if spareRows < 0 || spareCols < 0 {
		return nil, fmt.Errorf("repair: negative spare counts")
	}
	type cell struct{ row, col int }
	remaining := map[cell]diagnose.SiteEvidence{}
	for _, s := range sites {
		remaining[cell{s.Addr, s.Bit}] = s
	}
	plan := &Plan{Repairable: true}
	usedRows := map[int]bool{}
	usedCols := map[int]bool{}

	countByRow := func() map[int]int {
		m := map[int]int{}
		for c := range remaining {
			m[c.row]++
		}
		return m
	}
	countByCol := func() map[int]int {
		m := map[int]int{}
		for c := range remaining {
			m[c.col]++
		}
		return m
	}
	spendRow := func(row int) {
		usedRows[row] = true
		plan.Assignment.Rows = append(plan.Assignment.Rows, row)
		for c := range remaining {
			if c.row == row {
				delete(remaining, c)
			}
		}
		spareRows--
	}
	spendCol := func(col int) {
		usedCols[col] = true
		plan.Assignment.Cols = append(plan.Assignment.Cols, col)
		for c := range remaining {
			if c.col == col {
				delete(remaining, c)
			}
		}
		spareCols--
	}

	// Phase 1: must-repair fixed point. Candidates are visited in
	// ascending index order so that, when the spare budget runs out
	// mid-sweep, which lines got the spares is a pure function of the
	// input — Go's randomized map iteration must not leak into the plan.
	sortedKeys := func(m map[int]int) []int {
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		return keys
	}
	for {
		changed := false
		byRow := countByRow()
		for _, row := range sortedKeys(byRow) {
			if byRow[row] > spareCols && spareRows > 0 && !usedRows[row] {
				spendRow(row)
				changed = true
			}
		}
		byCol := countByCol()
		for _, col := range sortedKeys(byCol) {
			if byCol[col] > spareRows && spareCols > 0 && !usedCols[col] {
				spendCol(col)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase 2: greedy cover.
	for len(remaining) > 0 && (spareRows > 0 || spareCols > 0) {
		bestRow, bestRowN := -1, 0
		for row, n := range countByRow() {
			if n > bestRowN || (n == bestRowN && row < bestRow) {
				bestRow, bestRowN = row, n
			}
		}
		bestCol, bestColN := -1, 0
		for col, n := range countByCol() {
			if n > bestColN || (n == bestColN && col < bestCol) {
				bestCol, bestColN = col, n
			}
		}
		switch {
		case spareRows > 0 && (bestRowN >= bestColN || spareCols == 0):
			spendRow(bestRow)
		case spareCols > 0:
			spendCol(bestCol)
		}
	}

	if len(remaining) > 0 {
		plan.Repairable = false
		for _, s := range remaining {
			plan.Uncovered = append(plan.Uncovered, s)
		}
		sort.Slice(plan.Uncovered, func(i, j int) bool {
			if plan.Uncovered[i].Addr != plan.Uncovered[j].Addr {
				return plan.Uncovered[i].Addr < plan.Uncovered[j].Addr
			}
			return plan.Uncovered[i].Bit < plan.Uncovered[j].Bit
		})
	}
	sort.Ints(plan.Assignment.Rows)
	sort.Ints(plan.Assignment.Cols)
	return plan, nil
}

// Covers reports whether the plan's assignment repairs every given
// site (used to verify plans independently of how they were found).
func Covers(a Assignment, sites []diagnose.SiteEvidence) bool {
	rows := map[int]bool{}
	for _, r := range a.Rows {
		rows[r] = true
	}
	cols := map[int]bool{}
	for _, c := range a.Cols {
		cols[c] = true
	}
	for _, s := range sites {
		if !rows[s.Addr] && !cols[s.Bit] {
			return false
		}
	}
	return true
}
