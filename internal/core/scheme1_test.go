package core

import (
	"math/rand"
	"testing"

	"twmarch/internal/databg"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Section 3 example: the 4-bit word-oriented March C- uses backgrounds
// 0000, 0101, 0011, and Scheme 1 transforms each part.
func TestScheme1Backgrounds(t *testing.T) {
	res, err := Scheme1(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0000", "0101", "0011"}
	if len(res.Backgrounds) != len(want) {
		t.Fatalf("backgrounds = %d, want %d", len(res.Backgrounds), len(want))
	}
	for i, b := range res.Backgrounds {
		if got := b.Bits(4); got != want[i] {
			t.Errorf("b%d = %s, want %s", i+1, got, want[i])
		}
	}
	if len(res.Parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(res.Parts))
	}
}

// Constructive op count: part 1 drops its initialization (M-1 ops),
// each later part keeps it with a prepended read (M+1 ops), and the
// restore element adds 2, giving (M+1)(log2 W + 1) for sources ending
// away from the all-zero state.
func TestScheme1ConstructiveComplexity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		width int
	}{
		{"March C-", 4}, {"March C-", 32}, {"March U", 8}, {"March U", 128},
	} {
		bm := march.MustLookup(tc.name)
		res, err := Scheme1(bm, tc.width)
		if err != nil {
			t.Fatal(err)
		}
		L := databg.MustLog2(tc.width) + 1
		M := bm.Ops()
		if got, want := res.TCM(), (M+1)*L; got != want {
			t.Errorf("%s W=%d: TCM = %d, want %d", tc.name, tc.width, got, want)
		}
		Q := bm.Reads()
		// Reads: Q in part 1, Q+1 in each later part, 1 in the restore.
		if got, want := res.TCP(), Q+(L-1)*(Q+1)+1; got != want {
			t.Errorf("%s W=%d: TCP = %d, want %d", tc.name, tc.width, got, want)
		}
	}
}

// Scheme 1 must also be transparent: pass and preserve arbitrary
// fault-free contents.
func TestScheme1Transparency(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, name := range []string{"MATS++", "March C-", "March U", "March B"} {
		for _, width := range []int{4, 16} {
			res, err := Scheme1(march.MustLookup(name), width)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			mem := memory.MustNew(10, width)
			mem.Randomize(r)
			before := mem.Snapshot()
			run, err := march.Run(res.Test, mem, march.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if run.Detected() {
				t.Fatalf("%s W=%d: fault-free Scheme1 run mismatched: %v", name, width, run.Mismatches[0])
			}
			if !mem.Equal(before) {
				t.Fatalf("%s W=%d: contents not preserved", name, width)
			}
		}
	}
}

func TestScheme1PartsAreLabelled(t *testing.T) {
	res, err := Scheme1(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Part 2 data should print with b2 labels.
	ascii := res.Parts[1].ASCII()
	if want := "a^b2"; !containsStr(ascii, want) {
		t.Fatalf("part 2 = %s, want %s labels", ascii, want)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestScheme1PredictionReadsOnly(t *testing.T) {
	res, err := Scheme1(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prediction.Writes() != 0 {
		t.Fatal("prediction contains writes")
	}
	if res.Prediction.Reads() != res.Test.Reads() {
		t.Fatal("prediction loses reads")
	}
}

func TestScheme1Errors(t *testing.T) {
	if _, err := Scheme1(march.MustParse("w", "{any(w01)}"), 8); err == nil {
		t.Error("non-bit test accepted")
	}
	if _, err := Scheme1(march.MustLookup("March C-"), 10); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	if _, err := Scheme1(march.MustParse("noreads", "{any(w0)}"), 8); err == nil {
		t.Error("read-free test accepted")
	}
}

// Scheme 1 is never shorter than TWM_TA, and strictly longer for every
// realistic test (the tiny MATS family can tie at small widths because
// its per-background replay is nearly as short as the ATMarch
// overhead) — the paper's comparison in Table 2/3.
func TestScheme1NeverShorterThanTWMTA(t *testing.T) {
	strict := map[string]bool{
		"March X": true, "March Y": true, "March C": true, "March C-": true,
		"March A": true, "March B": true, "March U": true, "March LR": true,
	}
	for _, e := range march.Catalog() {
		for _, width := range []int{4, 16, 64} {
			bm := march.MustLookup(e.Name)
			s1, err := Scheme1(bm, width)
			if err != nil {
				t.Fatal(err)
			}
			tw, err := TWMTA(bm, width)
			if err != nil {
				t.Fatal(err)
			}
			s1Total, twTotal := s1.TCM()+s1.TCP(), tw.TCM()+tw.TCP()
			if s1Total < twTotal {
				t.Errorf("%s W=%d: Scheme1 total %d shorter than TWM_TA total %d",
					e.Name, width, s1Total, twTotal)
			}
			if strict[e.Name] && s1Total <= twTotal {
				t.Errorf("%s W=%d: Scheme1 total %d not strictly longer than TWM_TA total %d",
					e.Name, width, s1Total, twTotal)
			}
		}
	}
}

func TestWordOriented(t *testing.T) {
	bm := march.MustLookup("March C-")
	wt, err := WordOriented(bm, 4)
	if err != nil {
		t.Fatal(err)
	}
	L := databg.MustLog2(4) + 1
	if got, want := wt.Ops(), bm.Ops()*L; got != want {
		t.Fatalf("word-oriented ops = %d, want %d", got, want)
	}
	// Runs clean on a zeroed memory (its own initialization writes
	// all backgrounds).
	mem := memory.MustNew(8, 4)
	run, err := march.Run(wt, mem, march.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Detected() {
		t.Fatalf("fault-free word-oriented run mismatched: %v", run.Mismatches)
	}
	// Final contents are the last background written back.
	if got := mem.Read(0); got != word.MustParseBits("0011") {
		t.Fatalf("final contents = %s", got.Bits(4))
	}
}

func TestWordOrientedErrors(t *testing.T) {
	if _, err := WordOriented(march.MustParse("w", "{any(w01)}"), 8); err == nil {
		t.Error("non-bit test accepted")
	}
	if _, err := WordOriented(march.MustLookup("March C-"), 6); err == nil {
		t.Error("non-power-of-two width accepted")
	}
}
