package core

import (
	"fmt"

	"twmarch/internal/databg"
	"twmarch/internal/march"
	"twmarch/internal/word"
)

// Scheme1Result carries the artifacts of the prior-art word-oriented
// transparent transformation of Nicolaidis [12] ("Scheme 1" in the
// paper's comparison).
type Scheme1Result struct {
	// Source is the bit-oriented march test transformed.
	Source *march.Test
	// Width is the word width.
	Width int
	// Backgrounds are the log2(W)+1 standard data backgrounds the
	// transparent test iterates over (all-0 first, then the
	// checkerboards).
	Backgrounds []word.Word
	// Parts are the per-background transparent passes, in order.
	Parts []*march.Test
	// Test is the complete transparent word-oriented test: all parts
	// concatenated plus the final restore element.
	Test *march.Test
	// Prediction is the signature-prediction test of Test.
	Prediction *march.Test
}

// TCM returns the transparent test length in operations per address.
func (r *Scheme1Result) TCM() int { return r.Test.Ops() }

// TCP returns the prediction length in operations per address.
func (r *Scheme1Result) TCP() int { return r.Prediction.Ops() }

// Scheme1 transforms a bit-oriented march test into the transparent
// word-oriented march test of [12]: the Section 3 transformation is
// executed on each bit of a word, which amounts to replaying the
// transparent test once per standard data background b_k (Section 3's
// T1', T2', T3' … example). Concretely, with the memory holding a^m
// between parts:
//
//   - part 1 uses the solid backgrounds {0, all-1} and drops its
//     initialization element;
//   - part k ≥ 2 writes data {b_k, ~b_k} XOR-relative to the initial
//     contents; its initialization element cannot be dropped (it
//     switches backgrounds) and receives a prepended read;
//   - after the last part a closing ⇕(r a^m, w a) element (the paper's
//     T4') restores the initial contents.
//
// The per-part tests are retained for inspection; Test is their
// concatenation plus the restore.
func Scheme1(bm *march.Test, width int) (*Scheme1Result, error) {
	if !bm.IsBitOriented() {
		return nil, fmt.Errorf("core: Scheme1 requires a bit-oriented march test, got %q", bm.Name)
	}
	if bm.Reads() == 0 {
		return nil, fmt.Errorf("core: Scheme1: %q has no read operations", bm.Name)
	}
	bgs, err := databg.Standard(width)
	if err != nil {
		return nil, err
	}

	res := &Scheme1Result{Source: bm.Clone(), Width: width, Backgrounds: bgs}
	ones := word.Ones(width)
	m := word.Zero // current content a^m across parts

	for bi, bg := range bgs {
		label := fmt.Sprintf("b%d", bi+1)
		part := &march.Test{Name: fmt.Sprintf("T%d'(%s, W=%d)", bi+1, bm.Name, width), Width: width}
		elements := bm.Elements
		if bi == 0 && elements[0].IsWriteOnly() {
			// The first part's initialization is dropped exactly as in
			// the bit-oriented transformation.
			elements = elements[1:]
			if len(elements) == 0 {
				return nil, fmt.Errorf("core: Scheme1: %q consists only of initialization", bm.Name)
			}
		}
		for _, e := range elements {
			ne := march.Element{Order: e.Order}
			if e.Ops[0].Kind == march.Write {
				ne.Ops = append(ne.Ops, march.R(march.Transp(m)))
			}
			for _, op := range e.Ops {
				bit := op.Data.Const.Bit(0)
				v := bg
				lbl := label
				if bit == 1 {
					v = bg.Xor(ones)
					lbl = "~" + label
				}
				d := march.Transp(v)
				if bi > 0 {
					// Solid part data print naturally as a/~a; the
					// background parts carry b_k labels.
					d = d.WithLabel(lbl)
				}
				ne.Ops = append(ne.Ops, march.Op{Kind: op.Kind, Data: d})
				if op.Kind == march.Write {
					m = v
				}
			}
			part.Elements = append(part.Elements, ne)
		}
		if err := part.Validate(); err != nil {
			return nil, err
		}
		res.Parts = append(res.Parts, part)
	}

	full, err := Concat(fmt.Sprintf("TScheme1(%s, W=%d)", bm.Name, width), res.Parts...)
	if err != nil {
		return nil, err
	}
	if !m.IsZero() {
		// T4': restore the initial contents.
		full.Elements = append(full.Elements, march.Elem(march.Any,
			march.R(march.Transp(m)),
			march.W(march.Transp(word.Zero)),
		))
	}
	if err := full.CheckReadConsistency(); err != nil {
		return nil, fmt.Errorf("core: generated Scheme1 test failed self-check: %v", err)
	}
	if fc := full.FinalContent(); !fc.Datum.EffectiveMask(width).IsZero() {
		return nil, fmt.Errorf("core: generated Scheme1 test is not transparent: final content %s", fc.Datum.Format(width))
	}
	res.Test = full
	pred, err := Prediction(full)
	if err != nil {
		return nil, err
	}
	res.Prediction = pred
	return res, nil
}

// WordOriented builds the conventional nontransparent word-oriented
// march test of Section 3: the bit-oriented test replayed once per
// standard data background, with 0 mapped to b_k and 1 to ~b_k (the
// T1, T2, T3 … parts of the paper's 4-bit example).
func WordOriented(bm *march.Test, width int) (*march.Test, error) {
	if !bm.IsBitOriented() {
		return nil, fmt.Errorf("core: WordOriented requires a bit-oriented march test, got %q", bm.Name)
	}
	bgs, err := databg.Standard(width)
	if err != nil {
		return nil, err
	}
	out := &march.Test{Name: fmt.Sprintf("Word(%s, W=%d)", bm.Name, width), Width: width}
	ones := word.Ones(width)
	for bi, bg := range bgs {
		label := fmt.Sprintf("b%d", bi+1)
		for _, e := range bm.Elements {
			ne := march.Element{Order: e.Order, Ops: make([]march.Op, 0, len(e.Ops))}
			for _, op := range e.Ops {
				v := bg
				lbl := label
				if op.Data.Const.Bit(0) == 1 {
					v = bg.Xor(ones)
					lbl = "~" + label
				}
				ne.Ops = append(ne.Ops, march.Op{Kind: op.Kind, Data: march.Lit(v).WithLabel(lbl)})
			}
			out.Elements = append(out.Elements, ne)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	if err := out.CheckReadConsistency(); err != nil {
		return nil, fmt.Errorf("core: generated word-oriented test failed self-check: %v", err)
	}
	return out, nil
}
