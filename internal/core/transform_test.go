package core

import (
	"math/rand"
	"testing"

	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Section 3 worked example: March C- transforms into TMarch C-.
func TestTMarchCMinusExample(t *testing.T) {
	bm := march.MustLookup("March C-")
	res, err := TransformBitOriented(bm)
	if err != nil {
		t.Fatal(err)
	}
	want := "{up(ra,w~a); up(r~a,wa); down(ra,w~a); down(r~a,wa); any(ra)}"
	if got := res.Transparent.ASCII(); got != want {
		t.Fatalf("TMarch C- = %s\nwant        %s", got, want)
	}
	if got := res.Transparent.Ops(); got != 9 {
		t.Fatalf("TMarch C- ops = %d, want 9", got)
	}
	// Section 3: the signature prediction algorithm of TMarch C-.
	wantPred := "{up(ra); up(r~a); down(ra); down(r~a); any(ra)}"
	if got := res.Prediction.ASCII(); got != wantPred {
		t.Fatalf("prediction = %s\nwant       %s", got, wantPred)
	}
}

func TestTransformBitOrientedWholeCatalog(t *testing.T) {
	for _, e := range march.Catalog() {
		bm := march.MustLookup(e.Name)
		res, err := TransformBitOriented(bm)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !res.Transparent.IsTransparent() {
			t.Errorf("%s: result not transparent", e.Name)
		}
		if err := res.Transparent.CheckReadConsistency(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		// Transparent tests must end with contents restored.
		if m := res.Transparent.FinalContent().Datum.EffectiveMask(1); !m.IsZero() {
			t.Errorf("%s: transparent test ends with mask %v", e.Name, m)
		}
		if res.Prediction.Writes() != 0 {
			t.Errorf("%s: prediction contains writes", e.Name)
		}
		if res.Prediction.Reads() != res.Transparent.Reads() {
			t.Errorf("%s: prediction reads %d != test reads %d", e.Name, res.Prediction.Reads(), res.Transparent.Reads())
		}
	}
}

// Transparency is the defining property: on a fault-free memory with
// arbitrary contents the transparent test passes and preserves every
// word.
func TestTransparentBitTestsPreserveContents(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, e := range march.Catalog() {
		res, err := TransformBitOriented(march.MustLookup(e.Name))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			mem := memory.MustNew(16, 1)
			mem.Randomize(r)
			before := mem.Snapshot()
			run, err := march.Run(res.Transparent, mem, march.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if run.Detected() {
				t.Fatalf("%s: fault-free transparent run mismatched: %v", e.Name, run.Mismatches)
			}
			if !mem.Equal(before) {
				t.Fatalf("%s: contents not preserved", e.Name)
			}
		}
	}
}

func TestTransformRejectsNonBitTests(t *testing.T) {
	wide := march.MustParse("w", "{any(w0101); up(r0101)}")
	if _, err := TransformBitOriented(wide); err == nil {
		t.Error("non-bit test accepted")
	}
	transparent := march.MustParse("t", "{up(ra)}")
	if _, err := TransformBitOriented(transparent); err == nil {
		t.Error("transparent test accepted")
	}
}

func TestTransformRejectsInitOnly(t *testing.T) {
	initOnly := march.MustParse("init", "{any(w0)}")
	if _, err := TransformBitOriented(initOnly); err == nil {
		t.Error("initialization-only test accepted")
	}
}

func TestTransparentizePrependsReadToWriteFirstElements(t *testing.T) {
	bm := march.MustParse("wf", "{any(w0); up(w1,r1); any(r1)}")
	res, err := TransformBitOriented(bm)
	if err != nil {
		t.Fatal(err)
	}
	// After init removal the first element begins with a write and
	// must gain a leading read of the current (initial) content; the
	// test ends complemented, so Step 3 appends a restore element.
	want := "{up(ra,w~a,r~a); any(r~a); any(r~a,wa)}"
	if got := res.Transparent.ASCII(); got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

func TestStep3RestoreOnlyWhenInverted(t *testing.T) {
	inv := march.MustParse("inv", "{any(w0); up(r0,w1); any(r1)}")
	res, err := TransformBitOriented(inv)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Transparent.Elements[len(res.Transparent.Elements)-1]
	if len(last.Ops) != 2 || last.Ops[1].Kind != march.Write {
		t.Fatalf("expected restore element, got %s", res.Transparent.ASCII())
	}
	if m := res.Transparent.FinalContent().Datum.EffectiveMask(1); !m.IsZero() {
		t.Fatal("restore did not bring contents back")
	}
}

func TestSolid(t *testing.T) {
	bm := march.MustLookup("MATS+")
	s, err := Solid(bm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Width != 8 {
		t.Fatalf("width = %d", s.Width)
	}
	if s.Ops() != bm.Ops() {
		t.Fatalf("solid ops = %d, want %d", s.Ops(), bm.Ops())
	}
	// w0 → all-0, w1 → all-1.
	if d := s.Elements[0].Ops[0].Data; !d.Const.IsZero() {
		t.Fatalf("solid init datum = %v", d.Const)
	}
	if d := s.Elements[1].Ops[1].Data; d.Const != word.Ones(8) {
		t.Fatalf("solid w1 datum = %v", d.Const)
	}
	if _, err := Solid(bm, 12); err != nil {
		t.Errorf("Solid accepts any width; got %v", err)
	}
	if _, err := Solid(bm, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Solid(march.MustParse("w", "{any(w01)}"), 8); err == nil {
		t.Error("non-bit test accepted")
	}
}

func TestPredictionDropsWriteOnlyElements(t *testing.T) {
	tm := march.MustParse("tm", "{up(ra,w~a); down(w~a); any(r~a,wa)}")
	p, err := Prediction(tm)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ASCII(); got != "{up(ra); any(r~a)}" {
		t.Fatalf("prediction = %s", got)
	}
	if _, err := Prediction(march.MustLookup("MATS+")); err == nil {
		t.Error("nontransparent input accepted")
	}
	writesOnly := march.MustParse("w", "{up(wa)}")
	if _, err := Prediction(writesOnly); err == nil {
		t.Error("write-only transparent test accepted")
	}
}

func TestConcat(t *testing.T) {
	a := march.MustParse("a", "{up(ra)}")
	b := march.MustParse("b", "{down(ra,w~a); any(r~a,wa)}")
	c, err := Concat("c", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops() != 5 || len(c.Elements) != 3 {
		t.Fatalf("concat shape: %s", c.ASCII())
	}
	wide := march.MustParse("w", "{up(ra^0101)}")
	if _, err := Concat("bad", a, wide); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := Concat("empty"); err == nil {
		t.Error("empty concat accepted")
	}
}

func TestConcretize(t *testing.T) {
	tm := march.MustParse("tm", "{up(ra, wa^0101, ra^0101, wa, ra)}")
	init := word.MustParseBits("1100")
	ct, err := Concretize(tm, init)
	if err != nil {
		t.Fatal(err)
	}
	if ct.IsTransparent() {
		t.Fatal("concretized test still transparent")
	}
	// a=1100: reads/writes evaluate to 1100, 1001, 1001, 1100, 1100.
	wantVals := []string{"1100", "1001", "1001", "1100", "1100"}
	for i, op := range ct.Elements[0].Ops {
		if got := op.Data.Const.Bits(4); got != wantVals[i] {
			t.Fatalf("op %d value = %s, want %s", i, got, wantVals[i])
		}
	}
	if _, err := Concretize(ct, init); err == nil {
		t.Error("concretizing nontransparent test accepted")
	}
}

// Concretize must be behaviour-preserving: running the transparent
// test on memory filled with value a performs exactly the accesses of
// the concretized test.
func TestConcretizeBehaviourEquivalence(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	init := word.MustParseBits("1010")

	record := func(tst *march.Test) []memory.Access {
		mem := memory.MustNew(6, 4)
		mem.Fill(init)
		var log []memory.Access
		obs := memory.NewObserved(mem, memory.ObserverFunc(func(a memory.Access) { log = append(log, a) }))
		snap := make([]word.Word, 6)
		for i := range snap {
			snap[i] = init
		}
		log = log[:0] // discard nothing yet; snapshot passed explicitly below
		if _, err := march.Run(tst, obs, march.RunOptions{Initial: snap}); err != nil {
			t.Fatal(err)
		}
		return log
	}

	ct, err := Concretize(res.TWMarch, init)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := record(res.TWMarch), record(ct)
	if len(la) != len(lb) {
		t.Fatalf("access counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}
