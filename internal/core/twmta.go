package core

import (
	"fmt"

	"twmarch/internal/databg"
	"twmarch/internal/march"
	"twmarch/internal/word"
)

// TWMResult carries every artifact of Algorithm 1 so callers can
// inspect, execute, and account for the parts individually.
type TWMResult struct {
	// Source is the bit-oriented march test the transformation
	// started from.
	Source *march.Test
	// Width is the word width of the generated tests.
	Width int
	// SMarch is the solid-background word test, including the read
	// element appended when the source ended with a write.
	SMarch *march.Test
	// TSMarch is the transparent form of SMarch (Steps 1–2; the Step 3
	// restore is deferred to ATMarch).
	TSMarch *march.Test
	// ATMarch is the added transparent test that walks the log2(W)
	// checkerboard backgrounds c_k through every word and leaves the
	// memory holding its initial contents.
	ATMarch *march.Test
	// TWMarch is the complete transparent word-oriented march test,
	// TSMarch followed by ATMarch.
	TWMarch *march.Test
	// Prediction is the signature-prediction test of TWMarch (writes
	// removed).
	Prediction *march.Test
	// BaseInverted records whether TSMarch left the memory
	// complemented, making ATMarch operate on the ~a base and restore
	// the contents in its closing element.
	BaseInverted bool
}

// TCM returns the transparent test length in operations per address
// (the paper's TCM, in units of N).
func (r *TWMResult) TCM() int { return r.TWMarch.Ops() }

// TCP returns the prediction test length in operations per address
// (the paper's TCP, in units of N).
func (r *TWMResult) TCP() int { return r.Prediction.Ops() }

// TWMTA is the paper's transparent word-oriented march transformation
// algorithm (Algorithm 1). Given a bit-oriented march test and a
// power-of-two word width it produces the transparent word-oriented
// march test TWMarch = TSMarch ; ATMarch and its signature-prediction
// test.
//
// The steps follow Section 4:
//
//  1. Replace bit data 0/1 by the solid all-0/all-1 backgrounds
//     (SMarch).
//  2. If the last operation of SMarch is a write, append a ⇕(r·)
//     element so the final write is observed.
//  3. Transform SMarch into the transparent TSMarch with the Section 3
//     rules, treating the solid words as single bits. The Step 3
//     restore is deferred: if the contents end up complemented,
//     ATMarch runs on the ~a base and restores in its final element.
//  4. Append ATMarch: for k = 1..log2(W) the element
//     ⇕(r x, w x^c_k, r x^c_k, w x, r x) with x the TSMarch end state
//     (a or ~a) and c_k the checkerboard background whose bit j is 1
//     iff ⌊j/2^(k-1)⌋ is even; then a closing ⇕(r a) — or, on the ~a
//     base, ⇕(r ~a, w a) which also restores the initial contents.
func TWMTA(bm *march.Test, width int) (*TWMResult, error) {
	lg, err := databg.Log2(width)
	if err != nil {
		return nil, err
	}
	return twmta(bm, width, lg)
}

// TWMTAGeneral extends Algorithm 1 to arbitrary (non-power-of-two)
// word widths, as found in parity- or tag-extended embedded memories:
// ⌈log2 W⌉ truncated checkerboards keep the pairwise-distinguishing
// property the intra-word coverage argument rests on, so the
// construction carries over unchanged. For power-of-two widths the
// result is identical to TWMTA.
func TWMTAGeneral(bm *march.Test, width int) (*TWMResult, error) {
	if width < 1 || width > 128 {
		return nil, fmt.Errorf("core: width %d out of range [1,128]", width)
	}
	lg, err := databg.CeilLog2(width)
	if err != nil {
		return nil, err
	}
	return twmta(bm, width, lg)
}

func twmta(bm *march.Test, width, lg int) (*TWMResult, error) {
	if !bm.IsBitOriented() {
		return nil, fmt.Errorf("core: TWM_TA requires a bit-oriented march test, got %q", bm.Name)
	}
	if bm.Reads() == 0 {
		// Algorithm 1 aborts on tests that cannot observe anything.
		return nil, fmt.Errorf("core: TWM_TA: %q has no read operations", bm.Name)
	}

	smarch, err := Solid(bm, width)
	if err != nil {
		return nil, err
	}
	last := smarch.Elements[len(smarch.Elements)-1]
	if last.Ops[len(last.Ops)-1].Kind == march.Write {
		// The final write would otherwise go unobserved.
		final := last.Ops[len(last.Ops)-1].Data
		smarch.Elements = append(smarch.Elements, march.Elem(march.Any, march.R(final)))
	}

	tsmarch, endMask, err := transparentize(smarch, false)
	if err != nil {
		return nil, err
	}
	tsmarch.Name = fmt.Sprintf("TSMarch(%s, W=%d)", bm.Name, width)
	baseInverted := !endMask.IsZero()

	atmarch, err := buildATMarch(width, lg, baseInverted)
	if err != nil {
		return nil, err
	}

	twmarch, err := Concat(fmt.Sprintf("TWMarch(%s, W=%d)", bm.Name, width), tsmarch, atmarch)
	if err != nil {
		return nil, err
	}
	if err := twmarch.CheckReadConsistency(); err != nil {
		return nil, fmt.Errorf("core: generated TWMarch failed self-check: %v", err)
	}
	if fc := twmarch.FinalContent(); !fc.Datum.EffectiveMask(width).IsZero() {
		return nil, fmt.Errorf("core: generated TWMarch is not transparent: final content %s", fc.Datum.Format(width))
	}
	pred, err := Prediction(twmarch)
	if err != nil {
		return nil, err
	}
	return &TWMResult{
		Source:       bm.Clone(),
		Width:        width,
		SMarch:       smarch,
		TSMarch:      tsmarch,
		ATMarch:      atmarch,
		TWMarch:      twmarch,
		Prediction:   pred,
		BaseInverted: baseInverted,
	}, nil
}

// buildATMarch assembles the added transparent march test on base x,
// where x = a when inverted is false and x = ~a otherwise.
func buildATMarch(width, lg int, inverted bool) (*march.Test, error) {
	base := func(mask word.Word, label string) march.Datum {
		d := march.Datum{Transparent: true, Invert: inverted, Mask: mask}
		if label != "" {
			d.Label = label
		}
		return d
	}
	at := &march.Test{Name: fmt.Sprintf("ATMarch(W=%d)", width), Width: width}
	for k := 1; k <= lg; k++ {
		ck, err := databg.CheckerboardAny(width, k)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("c%d", k)
		at.Elements = append(at.Elements, march.Elem(march.Any,
			march.R(base(word.Zero, "")),
			march.W(base(ck, label)),
			march.R(base(ck, label)),
			march.W(base(word.Zero, "")),
			march.R(base(word.Zero, "")),
		))
	}
	if inverted {
		// Closing element doubles as the Step 3 restore: contents are
		// ~a here; read them and write the inverse.
		at.Elements = append(at.Elements, march.Elem(march.Any,
			march.R(base(word.Zero, "")),
			march.W(march.Transp(word.Zero)),
		))
	} else {
		at.Elements = append(at.Elements, march.Elem(march.Any,
			march.R(march.Transp(word.Zero)),
		))
	}
	if err := at.Validate(); err != nil {
		return nil, err
	}
	return at, nil
}

// NontransparentEquivalent returns the conventional word-oriented
// march test whose fault coverage the transparent TWMarch preserves:
// the transparent test evaluated at all-zero initial contents, i.e.
// SMarch followed by the nontransparent AMarch of Section 5.
func NontransparentEquivalent(r *TWMResult) (*march.Test, error) {
	t, err := Concretize(r.TWMarch, word.Zero)
	if err != nil {
		return nil, err
	}
	t.Name = fmt.Sprintf("SMarch+AMarch(%s, W=%d)", r.Source.Name, r.Width)
	return t, nil
}
