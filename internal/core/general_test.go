package core

import (
	"math/rand"
	"testing"

	"twmarch/internal/databg"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
)

// TWMTAGeneral agrees with TWMTA on power-of-two widths.
func TestTWMTAGeneralMatchesPowerOfTwo(t *testing.T) {
	bm := march.MustLookup("March C-")
	for _, w := range []int{2, 8, 32, 128} {
		a, err := TWMTA(bm, w)
		if err != nil {
			t.Fatal(err)
		}
		b, err := TWMTAGeneral(bm, w)
		if err != nil {
			t.Fatal(err)
		}
		if a.TWMarch.ASCII() != b.TWMarch.ASCII() {
			t.Errorf("W=%d: general path diverges", w)
		}
	}
}

// Arbitrary widths: the extension produces transparent,
// content-preserving tests with ⌈log2 W⌉ checkerboard elements.
func TestTWMTAGeneralArbitraryWidths(t *testing.T) {
	bm := march.MustLookup("March C-")
	r := rand.New(rand.NewSource(8))
	for _, w := range []int{3, 5, 12, 24, 33, 100, 127} {
		res, err := TWMTAGeneral(bm, w)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		lg, _ := databg.CeilLog2(w)
		if got := res.ATMarch.Ops(); got != 5*lg+1 {
			t.Errorf("W=%d: ATMarch ops %d, want %d", w, got, 5*lg+1)
		}
		mem := memory.MustNew(6, w)
		mem.Randomize(r)
		before := mem.Snapshot()
		run, err := march.Run(res.TWMarch, mem, march.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if run.Detected() || !mem.Equal(before) {
			t.Errorf("W=%d: not transparent", w)
		}
	}
	if _, err := TWMTAGeneral(bm, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := TWMTAGeneral(bm, 129); err == nil {
		t.Error("width 129 accepted")
	}
}

// The truncated checkerboards remain pairwise-distinguishing, so the
// guaranteed fault classes keep full coverage at odd widths.
func TestTWMTAGeneralCoverageWidth5(t *testing.T) {
	res, err := TWMTAGeneral(march.MustLookup("March C-"), 5)
	if err != nil {
		t.Fatal(err)
	}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(3, 5)...)
	list = append(list, faults.EnumerateTransition(3, 5)...)
	list = append(list, faults.EnumerateCFin(3, 5, faults.AllPairs)...)
	missed := 0
	for _, f := range list {
		mem := memory.MustNew(3, 5)
		mem.Randomize(rand.New(rand.NewSource(2)))
		inj := faults.MustInject(mem, f)
		run, err := march.Run(res.TWMarch, inj, march.RunOptions{StopAtFirstMismatch: true})
		if err != nil {
			t.Fatal(err)
		}
		if !run.Detected() {
			missed++
			t.Errorf("missed %s", f)
		}
	}
	if missed > 0 {
		t.Fatalf("missed %d/%d", missed, len(list))
	}
}

func TestCeilLog2AndCheckerboardAny(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 12: 4, 100: 7, 128: 7}
	for w, want := range cases {
		got, err := databg.CeilLog2(w)
		if err != nil || got != want {
			t.Errorf("CeilLog2(%d) = %d, %v; want %d", w, got, err, want)
		}
	}
	if _, err := databg.CeilLog2(0); err == nil {
		t.Error("CeilLog2(0) accepted")
	}
	// Truncated checkerboards pairwise-distinguish at odd widths.
	for _, w := range []int{3, 5, 12, 100} {
		lg, _ := databg.CeilLog2(w)
		for p := 0; p < w; p++ {
			for q := p + 1; q < w; q++ {
				found := false
				for k := 1; k <= lg; k++ {
					c, err := databg.CheckerboardAny(w, k)
					if err != nil {
						t.Fatal(err)
					}
					if c.Bit(p) != c.Bit(q) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("width %d: bits %d,%d not distinguished", w, p, q)
				}
			}
		}
	}
	if _, err := databg.CheckerboardAny(5, 4); err == nil {
		t.Error("k beyond ceil-log2 accepted")
	}
	if _, err := databg.CheckerboardAny(5, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
