package core

import (
	"math/rand"
	"strings"
	"testing"

	"twmarch/internal/databg"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

// Section 4 worked example: transparent word-oriented March U for an
// 8-bit memory has complexity 29 N.
func TestMarchUExampleComplexity29(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TCM(); got != 29 {
		t.Fatalf("TCM = %d N, want 29 N (paper, Section 4)", got)
	}
	// TSMarch U carries 13 ops: the appended ⇕(r0) plus the
	// transformed four elements.
	if got := res.TSMarch.Ops(); got != 13 {
		t.Fatalf("TSMarch ops = %d, want 13", got)
	}
	if got := res.ATMarch.Ops(); got != 16 {
		t.Fatalf("ATMarch ops = %d, want 16 (3 backgrounds x 5 + closing read)", got)
	}
	if res.BaseInverted {
		t.Fatal("March U TSMarch ends at the initial contents; base must not be inverted")
	}
}

// Section 4: the exact shape of TSMarch U for 8-bit words.
func TestTSMarchUShape(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := "{up(ra,w~a,r~a,wa); up(ra,w~a); down(r~a,wa,ra,w~a); down(r~a,wa); any(ra)}"
	if got := res.TSMarch.ASCII(); got != want {
		t.Fatalf("TSMarch U = %s\nwant        %s", got, want)
	}
}

// Section 4: ATMarch for 8-bit words walks c1=01010101, c2=00110011,
// c3=00001111 and closes with a read.
func TestATMarchShapeWidth8(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	at := res.ATMarch
	if len(at.Elements) != 4 {
		t.Fatalf("ATMarch elements = %d, want 4", len(at.Elements))
	}
	wantMasks := []string{"01010101", "00110011", "00001111"}
	for i := 0; i < 3; i++ {
		e := at.Elements[i]
		if len(e.Ops) != 5 {
			t.Fatalf("element %d has %d ops, want 5", i, len(e.Ops))
		}
		kinds := []march.OpKind{march.Read, march.Write, march.Read, march.Write, march.Read}
		for j, k := range kinds {
			if e.Ops[j].Kind != k {
				t.Fatalf("element %d op %d kind = %v, want %v", i, j, e.Ops[j].Kind, k)
			}
		}
		if got := e.Ops[1].Data.Mask.Bits(8); got != wantMasks[i] {
			t.Fatalf("element %d mask = %s, want %s", i, got, wantMasks[i])
		}
		// r x, w x^ck, r x^ck, w x, r x: masks 0, ck, ck, 0, 0.
		if !e.Ops[0].Data.Mask.IsZero() || !e.Ops[3].Data.Mask.IsZero() || !e.Ops[4].Data.Mask.IsZero() {
			t.Fatalf("element %d base ops carry masks", i)
		}
		if e.Ops[2].Data.Mask != e.Ops[1].Data.Mask {
			t.Fatalf("element %d read-back mask differs from written mask", i)
		}
	}
	closing := at.Elements[3]
	if len(closing.Ops) != 1 || closing.Ops[0].Kind != march.Read {
		t.Fatalf("closing element = %+v, want single read", closing)
	}
}

// The paper's general complexity claim: TCM = (M + 5 log2 W) N for
// source tests with an initialization element, read-first elements and
// a final read (March C- satisfies all three).
func TestTCMFormulaMarchCMinus(t *testing.T) {
	bm := march.MustLookup("March C-")
	M := bm.Ops()
	for _, width := range []int{2, 4, 8, 16, 32, 64, 128} {
		res, err := TWMTA(bm, width)
		if err != nil {
			t.Fatal(err)
		}
		lg := databg.MustLog2(width)
		if got, want := res.TCM(), M+5*lg; got != want {
			t.Errorf("W=%d: TCM = %d, want %d", width, got, want)
		}
		// Constructive prediction: Q reads in TSMarch plus 3 per
		// checkerboard element plus the closing read.
		if got, want := res.TCP(), bm.Reads()+3*lg+1; got != want {
			t.Errorf("W=%d: TCP = %d, want %d", width, got, want)
		}
	}
}

// Transparency: for every catalog test and several widths, TWMarch
// passes on fault-free memory with random contents and preserves them.
func TestTWMarchTransparencyAcrossCatalog(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, e := range march.Catalog() {
		for _, width := range []int{2, 8, 32} {
			res, err := TWMTA(march.MustLookup(e.Name), width)
			if err != nil {
				t.Fatalf("%s W=%d: %v", e.Name, width, err)
			}
			mem := memory.MustNew(12, width)
			mem.Randomize(r)
			before := mem.Snapshot()
			run, err := march.Run(res.TWMarch, mem, march.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if run.Detected() {
				t.Fatalf("%s W=%d: fault-free TWMarch mismatched: %v", e.Name, width, run.Mismatches[0])
			}
			if !mem.Equal(before) {
				t.Fatalf("%s W=%d: contents not preserved", e.Name, width)
			}
		}
	}
}

// A source test ending with the complemented contents exercises the
// inverted-base ATMarch variant, whose closing element restores.
func TestTWMTABaseInvertedVariant(t *testing.T) {
	bm := march.MustParse("endsAt1", "{any(w0); up(r0,w1); any(r1)}")
	res, err := TWMTA(bm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BaseInverted {
		t.Fatal("expected inverted base")
	}
	closing := res.ATMarch.Elements[len(res.ATMarch.Elements)-1]
	if len(closing.Ops) != 2 || closing.Ops[1].Kind != march.Write {
		t.Fatalf("closing element should read ~a and restore a: %+v", closing)
	}
	// The first checkerboard element must operate on the ~a base.
	first := res.ATMarch.Elements[0]
	if !first.Ops[0].Data.Invert {
		t.Fatal("ATMarch base should be ~a")
	}
	// End-to-end transparency still holds.
	mem := memory.MustNew(8, 8)
	r := rand.New(rand.NewSource(3))
	mem.Randomize(r)
	before := mem.Snapshot()
	run, err := march.Run(res.TWMarch, mem, march.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Detected() || !mem.Equal(before) {
		t.Fatal("inverted-base TWMarch not transparent")
	}
	// TCM = TSMarch + 5 lg + 2 on the inverted base.
	if got, want := res.TCM(), res.TSMarch.Ops()+5*3+2; got != want {
		t.Fatalf("TCM = %d, want %d", got, want)
	}
}

// Sources ending in a write receive the appended read element.
func TestTWMTAAppendsReadAfterTrailingWrite(t *testing.T) {
	bm := march.MustLookup("March U") // ends ⇓(r1,w0)
	res, err := TWMTA(bm, 4)
	if err != nil {
		t.Fatal(err)
	}
	last := res.SMarch.Elements[len(res.SMarch.Elements)-1]
	if len(last.Ops) != 1 || last.Ops[0].Kind != march.Read {
		t.Fatalf("SMarch should end with the appended read element, got %+v", last)
	}
	// A source already ending with a read is left alone.
	bm2 := march.MustLookup("March C-")
	res2, err := TWMTA(bm2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SMarch.Ops() != bm2.Ops() {
		t.Fatalf("March C- SMarch ops = %d, want %d", res2.SMarch.Ops(), bm2.Ops())
	}
}

func TestTWMTAErrors(t *testing.T) {
	if _, err := TWMTA(march.MustParse("w", "{any(w01)}"), 8); err == nil {
		t.Error("non-bit test accepted")
	}
	if _, err := TWMTA(march.MustLookup("March C-"), 12); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	if _, err := TWMTA(march.MustParse("noreads", "{any(w0); up(w1)}"), 8); err == nil {
		t.Error("read-free test accepted")
	}
}

func TestTWMTAWidthOne(t *testing.T) {
	// Width 1 degenerates gracefully: no checkerboards, ATMarch is the
	// closing read only, and the result is the bit-oriented
	// transparent test plus that read.
	res, err := TWMTA(march.MustLookup("March C-"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ATMarch.Ops(); got != 1 {
		t.Fatalf("ATMarch ops at width 1 = %d, want 1", got)
	}
	mem := memory.MustNew(16, 1)
	r := rand.New(rand.NewSource(5))
	mem.Randomize(r)
	before := mem.Snapshot()
	run, err := march.Run(res.TWMarch, mem, march.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Detected() || !mem.Equal(before) {
		t.Fatal("width-1 TWMarch not transparent")
	}
}

func TestPredictionMatchesPaperStructure(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction = reads of TWMarch: 7 in TSMarch (6 source reads + 1
	// appended) and 3 per checkerboard element + closing = 10.
	if got := res.TCP(); got != 17 {
		t.Fatalf("TCP = %d, want 17", got)
	}
	if res.Prediction.Writes() != 0 {
		t.Fatal("prediction contains writes")
	}
}

func TestNontransparentEquivalentRunsOnZeroMemory(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := NontransparentEquivalent(res)
	if err != nil {
		t.Fatal(err)
	}
	if eq.IsTransparent() {
		t.Fatal("equivalent test should be nontransparent")
	}
	if eq.Ops() != res.TWMarch.Ops() {
		t.Fatalf("ops differ: %d vs %d", eq.Ops(), res.TWMarch.Ops())
	}
	mem := memory.MustNew(8, 4) // zeroed = the a=0 concretization point
	run, err := march.Run(eq, mem, march.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Detected() {
		t.Fatalf("fault-free equivalent run mismatched: %v", run.Mismatches)
	}
	if !strings.Contains(eq.Name, "AMarch") {
		t.Fatalf("name = %q", eq.Name)
	}
}

// The ATMarch data walk reproduces Table 1's content sequence; the
// full table generator lives in internal/trace, but the underlying
// symbolic states are asserted here.
func TestATMarchContentStates(t *testing.T) {
	res, err := TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	a := word.FromUint64(0b11001010) // arbitrary 8-bit initial content
	mem := memory.MustNew(1, 8)
	mem.Write(0, a)
	// After TSMarch the content is a again; execute ATMarch and check
	// the content after each element is a.
	if _, err := march.Run(res.TSMarch, mem, march.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if mem.Read(0) != a {
		t.Fatal("TSMarch did not restore contents")
	}
	states := res.ATMarch.TrackContent()
	for i, s := range states {
		if m := s.Datum.EffectiveMask(8); !m.IsZero() {
			t.Fatalf("ATMarch boundary %d leaves mask %s", i, m.Bits(8))
		}
	}
	if _, err := march.Run(res.ATMarch, mem, march.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if mem.Read(0) != a {
		t.Fatal("ATMarch did not restore contents")
	}
}

// Property: for random widths and catalog tests, TCM growth over the
// source length is exactly the ATMarch overhead — slightly related to
// the source test only through the appended read (the paper's closing
// observation in Section 5).
func TestTWMTAOverheadIndependentOfSource(t *testing.T) {
	for _, width := range []int{4, 16, 64} {
		lg := databg.MustLog2(width)
		for _, e := range march.Catalog() {
			bm := march.MustLookup(e.Name)
			res, err := TWMTA(bm, width)
			if err != nil {
				t.Fatal(err)
			}
			overhead := res.TCM() - res.TSMarch.Ops()
			if res.BaseInverted {
				if overhead != 5*lg+2 {
					t.Errorf("%s W=%d: overhead %d, want %d", e.Name, width, overhead, 5*lg+2)
				}
			} else if overhead != 5*lg+1 {
				t.Errorf("%s W=%d: overhead %d, want %d", e.Name, width, overhead, 5*lg+1)
			}
		}
	}
}
