package core

import (
	"math/rand"
	"testing"

	"twmarch/internal/databg"
	"twmarch/internal/march"
	"twmarch/internal/memory"
)

// randomBitMarch generates a structurally valid bit-oriented march
// test: an initialization element followed by 1..5 elements of 1..5
// operations whose reads always expect the tracked content. This is
// the input space TWM_TA and Scheme 1 must handle.
func randomBitMarch(r *rand.Rand) *march.Test {
	t := &march.Test{Name: "random", Width: 1}
	// Initialization.
	t.Elements = append(t.Elements, march.Elem(march.Any, march.W(march.LitBit(0))))
	content := 0
	hasRead := false
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		order := march.Order(r.Intn(3))
		var ops []march.Op
		k := 1 + r.Intn(5)
		for j := 0; j < k; j++ {
			if r.Intn(2) == 0 {
				ops = append(ops, march.R(march.LitBit(content)))
				hasRead = true
			} else {
				content = r.Intn(2)
				ops = append(ops, march.W(march.LitBit(content)))
			}
		}
		t.Elements = append(t.Elements, march.Element{Order: order, Ops: ops})
	}
	if !hasRead {
		t.Elements = append(t.Elements, march.Elem(march.Any, march.R(march.LitBit(content))))
	}
	return t
}

// The generator itself must produce valid, read-consistent tests.
func TestRandomBitMarchGenerator(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		bm := randomBitMarch(r)
		if err := bm.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := bm.CheckReadConsistency(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bm.IsBitOriented() {
			t.Fatalf("iteration %d: not bit-oriented", i)
		}
	}
}

// Property: for every generated march test and width, TWM_TA produces
// a transparent, read-consistent, content-preserving test whose op
// count follows the constructive formula, and a fault-free execution
// is silent.
func TestPropertyTWMTAInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	widths := []int{2, 4, 16, 64}
	for i := 0; i < 120; i++ {
		bm := randomBitMarch(r)
		width := widths[r.Intn(len(widths))]
		res, err := TWMTA(bm, width)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !res.TWMarch.IsTransparent() {
			t.Fatal("TWMarch not transparent")
		}
		if err := res.TWMarch.CheckReadConsistency(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// Complexity: TSMarch ops + ATMarch ops; ATMarch is
		// 5·log2(width) + 1 (or +2 on the inverted base).
		lg := databg.MustLog2(width)
		want := res.TSMarch.Ops() + 5*lg + 1
		if res.BaseInverted {
			want++
		}
		if res.TCM() != want {
			t.Fatalf("iteration %d: TCM %d, want %d", i, res.TCM(), want)
		}
		// Prediction is the read subsequence.
		if res.TCP() != res.TWMarch.Reads() {
			t.Fatalf("iteration %d: TCP %d != reads %d", i, res.TCP(), res.TWMarch.Reads())
		}
		// Transparency on random contents.
		mem := memory.MustNew(5, width)
		mem.Randomize(r)
		before := mem.Snapshot()
		run, err := march.Run(res.TWMarch, mem, march.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if run.Detected() {
			t.Fatalf("iteration %d: fault-free run mismatched: %v", i, run.Mismatches[0])
		}
		if !mem.Equal(before) {
			t.Fatalf("iteration %d: contents not preserved", i)
		}
	}
}

// Property: Scheme 1 has the same invariants, and is never shorter
// than TWM_TA in total cost.
func TestPropertyScheme1Invariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	widths := []int{2, 8, 32}
	for i := 0; i < 80; i++ {
		bm := randomBitMarch(r)
		width := widths[r.Intn(len(widths))]
		s1, err := Scheme1(bm, width)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := s1.Test.CheckReadConsistency(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		mem := memory.MustNew(4, width)
		mem.Randomize(r)
		before := mem.Snapshot()
		run, err := march.Run(s1.Test, mem, march.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if run.Detected() || !mem.Equal(before) {
			t.Fatalf("iteration %d: Scheme 1 not transparent", i)
		}
		// Scheme 1's per-background replay scales with M while the
		// ATMarch overhead is fixed at ~5·log2 W, so TWM_TA wins once
		// the source test has realistic length (every published march
		// has M ≥ 10); toy tests below that can tip the other way.
		if bm.Ops() >= 8 {
			tw, err := TWMTA(bm, width)
			if err != nil {
				t.Fatal(err)
			}
			if s1.TCM()+s1.TCP() < tw.TCM()+tw.TCP() {
				t.Fatalf("iteration %d: Scheme 1 total %d below TWM_TA %d (M=%d, W=%d)",
					i, s1.TCM()+s1.TCP(), tw.TCM()+tw.TCP(), bm.Ops(), width)
			}
		}
	}
}

// Property: the bit-oriented transparent transformation preserves the
// read/write structure: reads map to reads, every write-leading
// element gains exactly one read, and a restore element appears iff
// the source ends complemented.
func TestPropertyBitTransformStructure(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		bm := randomBitMarch(r)
		bt, err := TransformBitOriented(bm)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// Count expected ops: source minus init, plus one read per
		// write-leading element, plus 2 if the last write leaves ~a.
		elements := bm.Elements[1:]
		want := 0
		for _, e := range elements {
			want += len(e.Ops)
			if e.Ops[0].Kind == march.Write {
				want++
			}
		}
		final := 0
		for _, e := range elements {
			for _, op := range e.Ops {
				if op.Kind == march.Write {
					final = int(op.Data.Const.Bit(0))
				}
			}
		}
		if final == 1 {
			want += 2
		}
		if bt.Transparent.Ops() != want {
			t.Fatalf("iteration %d: transparent ops %d, want %d (source %s)",
				i, bt.Transparent.Ops(), want, bm.ASCII())
		}
		if bt.Prediction.Reads() != bt.Transparent.Reads() {
			t.Fatalf("iteration %d: prediction loses reads", i)
		}
	}
}

// Property: Concretize at the all-zero point turns TWMarch into a
// test that runs silently on a zeroed memory.
func TestPropertyConcretizeZero(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		bm := randomBitMarch(r)
		res, err := TWMTA(bm, 4)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := NontransparentEquivalent(res)
		if err != nil {
			t.Fatal(err)
		}
		mem := memory.MustNew(4, 4)
		run, err := march.Run(ct, mem, march.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if run.Detected() {
			t.Fatalf("iteration %d: concretized run mismatched on zero memory", i)
		}
	}
}
