// Package core implements the paper's transparent-test transformation
// algorithms:
//
//   - TransformBitOriented: the classical Nicolaidis rules (Section 3)
//     that turn a conventional bit-oriented march test into a
//     transparent march test plus its signature-prediction test.
//
//   - TWMTA: the paper's contribution (Algorithm 1, Section 4) — an
//     efficient transparent *word-oriented* march test built from a
//     solid-background transparent pass (TSMarch) plus a short added
//     test (ATMarch) that walks log2(W) checkerboard backgrounds.
//
//   - Scheme1: the prior-art word-oriented transparent transformation
//     of Nicolaidis [12], which replays the whole transparent test for
//     every one of the log2(W)+1 data backgrounds. Implemented
//     constructively as the comparison baseline.
//
//   - WordOriented: the conventional nontransparent word-oriented
//     march test obtained from data backgrounds (Section 3), used by
//     the fault-coverage equivalence experiments.
//
// All generated tests are validated structurally and checked for read
// consistency before being returned.
package core

import (
	"fmt"

	"twmarch/internal/march"
	"twmarch/internal/word"
)

// solidDatum maps a bit literal of a bit-oriented march test to the
// solid word background it denotes at the target width: 0 → all-0,
// 1 → all-1 (Algorithm 1, first step).
func solidDatum(d march.Datum, width int) (march.Datum, error) {
	if d.Transparent {
		return march.Datum{}, fmt.Errorf("core: datum %s is already transparent", d.Format(width))
	}
	switch d.Const {
	case word.Zero:
		return march.Lit(word.Zero), nil
	case word.Ones(1):
		return march.Lit(word.Ones(width)), nil
	default:
		return march.Datum{}, fmt.Errorf("core: datum %s is not a bit literal", d.Format(1))
	}
}

// Solid converts a bit-oriented march test into its solid-background
// word-oriented form at the given width: every 0 becomes the all-0
// word and every 1 the all-1 word. This is the SMarch of Algorithm 1
// (before the appended read). Any width in [1,128] is accepted; the
// power-of-two restriction of the paper applies to the background
// generation, not to the solid part.
func Solid(bm *march.Test, width int) (*march.Test, error) {
	if !bm.IsBitOriented() {
		return nil, fmt.Errorf("core: %q is not a bit-oriented march test", bm.Name)
	}
	if width < 1 || width > word.MaxWidth {
		return nil, fmt.Errorf("core: width %d out of range [1,%d]", width, word.MaxWidth)
	}
	out := &march.Test{Name: fmt.Sprintf("SMarch(%s, W=%d)", bm.Name, width), Width: width}
	for _, e := range bm.Elements {
		ne := march.Element{Order: e.Order, Ops: make([]march.Op, 0, len(e.Ops))}
		for _, op := range e.Ops {
			d, err := solidDatum(op.Data, width)
			if err != nil {
				return nil, fmt.Errorf("core: %q: %v", bm.Name, err)
			}
			ne.Ops = append(ne.Ops, march.Op{Kind: op.Kind, Data: d})
		}
		out.Elements = append(out.Elements, ne)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// transparentize applies the Nicolaidis transformation rules (Section
// 3, Steps 1–2) to a march test whose data are the two solid literals
// at its width, producing a transparent test of the same width:
//
//	Step 1: drop a write-only initialization element; prepend a read
//	        of the current content to any element that begins with a
//	        write.
//	Step 2: replace every literal v by the XOR-expression a^v.
//
// When restore (Step 3) is requested and the content after the last
// element is the complement of the initial data, a closing
// ⇕(r ~a, w a) element is appended so the test leaves memory as it
// found it.
//
// The returned mask is the symbolic content after the transformed
// test: zero means contents equal the initial data, all-ones means
// they are complemented (only those two arise from solid inputs).
func transparentize(t *march.Test, restore bool) (*march.Test, word.Word, error) {
	width := t.Width
	ones := word.Ones(width)
	out := &march.Test{Name: t.Name, Width: width}

	elements := t.Elements
	// Step 1, removal: a write-only leading element is pure
	// initialization; transparent testing works relative to the
	// pre-existing contents instead.
	if elements[0].IsWriteOnly() {
		elements = elements[1:]
	}
	if len(elements) == 0 {
		return nil, word.Word{}, fmt.Errorf("core: %q consists only of initialization and cannot be made transparent", t.Name)
	}

	m := word.Zero // current content is a^m
	for _, e := range elements {
		ne := march.Element{Order: e.Order}
		if e.Ops[0].Kind == march.Write {
			// Step 1, read-prepend: fault activation needs the read of
			// the value about to be overwritten.
			ne.Ops = append(ne.Ops, march.R(march.Transp(m)))
		}
		for _, op := range e.Ops {
			v := op.Data.Const.Mask(width)
			if op.Data.Transparent || (v != word.Zero && v != ones) {
				return nil, word.Word{}, fmt.Errorf("core: %q: datum %s is not solid", t.Name, op.Data.Format(width))
			}
			ne.Ops = append(ne.Ops, march.Op{Kind: op.Kind, Data: march.Transp(v)})
			if op.Kind == march.Write {
				m = v
			}
		}
		out.Elements = append(out.Elements, ne)
	}

	if restore && m == ones {
		// Step 3: read back the complemented contents and write their
		// inverse, restoring the initial data.
		out.Elements = append(out.Elements, march.Elem(march.Any,
			march.R(march.Transp(ones)),
			march.W(march.Transp(word.Zero)),
		))
		m = word.Zero
	}
	if err := out.Validate(); err != nil {
		return nil, word.Word{}, err
	}
	if err := out.CheckReadConsistency(); err != nil {
		return nil, word.Word{}, err
	}
	return out, m, nil
}

// Prediction derives the signature-prediction test from a transparent
// test by removing every write operation (Step 4). Elements that
// contained only writes disappear; address orders are preserved so the
// prediction pass visits cells in the same sequence as the test pass.
func Prediction(t *march.Test) (*march.Test, error) {
	if !t.IsTransparent() {
		return nil, fmt.Errorf("core: %q is not transparent; prediction applies to transparent tests", t.Name)
	}
	out := &march.Test{Name: "Pred(" + t.Name + ")", Width: t.Width}
	for _, e := range t.Elements {
		ne := march.Element{Order: e.Order}
		for _, op := range e.Ops {
			if op.Kind == march.Read {
				ne.Ops = append(ne.Ops, op)
			}
		}
		if len(ne.Ops) > 0 {
			out.Elements = append(out.Elements, ne)
		}
	}
	if len(out.Elements) == 0 {
		return nil, fmt.Errorf("core: %q has no read operations to predict", t.Name)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// BitTransform is the result of the classical bit-oriented transparent
// transformation.
type BitTransform struct {
	// Transparent is the transparent march test (TMarch).
	Transparent *march.Test
	// Prediction is the signature-prediction test (reads only).
	Prediction *march.Test
}

// TransformBitOriented applies the Section 3 rules (Steps 1–4) to a
// conventional bit-oriented march test, e.g. March C- into TMarch C-:
//
//	{⇑(ra,w~a); ⇑(r~a,wa); ⇓(ra,w~a); ⇓(r~a,wa); ⇕(ra)}
func TransformBitOriented(bm *march.Test) (BitTransform, error) {
	if !bm.IsBitOriented() {
		return BitTransform{}, fmt.Errorf("core: %q is not a bit-oriented march test", bm.Name)
	}
	t, _, err := transparentize(bm, true)
	if err != nil {
		return BitTransform{}, err
	}
	t.Name = "TMarch(" + bm.Name + ")"
	pred, err := Prediction(t)
	if err != nil {
		return BitTransform{}, err
	}
	return BitTransform{Transparent: t, Prediction: pred}, nil
}

// Concat joins several march tests of identical width into one.
func Concat(name string, tests ...*march.Test) (*march.Test, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: Concat needs at least one test")
	}
	out := &march.Test{Name: name, Width: tests[0].Width}
	for _, t := range tests {
		if t.Width != out.Width {
			return nil, fmt.Errorf("core: Concat width mismatch: %q is %d-bit, expected %d", t.Name, t.Width, out.Width)
		}
		for _, e := range t.Elements {
			out.Elements = append(out.Elements, e.Clone())
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Concretize evaluates every datum of a transparent test at a fixed
// initial content, yielding the nontransparent march test the
// transparent one degenerates to. Running the result on a memory
// pre-filled with that content performs exactly the same accesses as
// the transparent original. Section 5 uses this to name the
// nontransparent counterpart (SMarch+AMarch) whose fault coverage the
// transparent test preserves.
func Concretize(t *march.Test, initial word.Word) (*march.Test, error) {
	if !t.IsTransparent() {
		return nil, fmt.Errorf("core: %q is already nontransparent", t.Name)
	}
	out := &march.Test{Name: fmt.Sprintf("Concrete(%s, a=%s)", t.Name, initial.Hex(t.Width)), Width: t.Width}
	for _, e := range t.Elements {
		ne := march.Element{Order: e.Order, Ops: make([]march.Op, 0, len(e.Ops))}
		for _, op := range e.Ops {
			v := op.Data.Value(initial, t.Width)
			ne.Ops = append(ne.Ops, march.Op{Kind: op.Kind, Data: march.Lit(v)})
		}
		out.Elements = append(out.Elements, ne)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
