package symmetric

import (
	"math/rand"
	"testing"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func TestIsSymmetricRejectsNontransparent(t *testing.T) {
	if _, err := IsSymmetric(march.MustLookup("March C-")); err == nil {
		t.Fatal("nontransparent test accepted")
	}
}

// TMarch C- reads each cell five times with masks {0,1,0,1,0}: odd
// count, zero XOR — the classic asymmetric case [18] fixes with an
// additional state.
func TestTMarchCMinusIsAsymmetric(t *testing.T) {
	bt, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsSymmetric(bt.Transparent)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TMarch C- should not be symmetric")
	}
}

func TestMakeSymmetricAllCatalogTransforms(t *testing.T) {
	for _, e := range march.Catalog() {
		for _, width := range []int{1, 8, 32} {
			var tst *march.Test
			if width == 1 {
				bt, err := core.TransformBitOriented(march.MustLookup(e.Name))
				if err != nil {
					t.Fatal(err)
				}
				tst = bt.Transparent
			} else {
				res, err := core.TWMTA(march.MustLookup(e.Name), width)
				if err != nil {
					t.Fatal(err)
				}
				tst = res.TWMarch
			}
			sym, err := MakeSymmetric(tst)
			if err != nil {
				t.Fatalf("%s W=%d: %v", e.Name, width, err)
			}
			ok, err := IsSymmetric(sym)
			if err != nil || !ok {
				t.Fatalf("%s W=%d: result not symmetric (%v)", e.Name, width, err)
			}
			// The fix costs at most 6 extra ops.
			if sym.Ops() > tst.Ops()+6 {
				t.Errorf("%s W=%d: symmetrization added %d ops", e.Name, width, sym.Ops()-tst.Ops())
			}
		}
	}
}

func TestMakeSymmetricIdempotentOnSymmetric(t *testing.T) {
	// Reads carry masks {0, 1, 1, 0}: even count, zero XOR.
	tm := march.MustParse("sym", "{up(ra,w~a); up(r~a,r~a,wa); any(ra)}")
	ok, err := IsSymmetric(tm)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fixture should be symmetric")
	}
	sym, err := MakeSymmetric(tm)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Ops() != tm.Ops() {
		t.Fatalf("symmetric input gained ops: %d -> %d", tm.Ops(), sym.Ops())
	}
}

// Zero-signature property: a symmetric test compacted by the XOR
// accumulator yields zero on fault-free memories of any content.
func TestZeroSignatureProperty(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := MakeSymmetric(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		mem := memory.MustNew(16, 8)
		mem.Randomize(r)
		before := mem.Snapshot()
		out, err := Session(sym, mem)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Pass || !out.Signature.IsZero() {
			t.Fatalf("trial %d: signature %v", trial, out.Signature)
		}
		if !mem.Equal(before) {
			t.Fatal("symmetric session did not preserve contents")
		}
	}
}

func TestSessionRejectsAsymmetric(t *testing.T) {
	bt, err := core.TransformBitOriented(march.MustLookup("March C-"))
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.MustNew(4, 1)
	if _, err := Session(bt.Transparent, mem); err == nil {
		t.Fatal("asymmetric test accepted by Session")
	}
}

// The central limitation of pure XOR compaction, asserted as a
// theorem: a stuck-at cell makes every read of that cell return the
// stuck bit, so the per-read error is the expected bit value — whose
// XOR over a *symmetric* read multiset is zero by the very property
// that zeroes the fault-free signature. Every SAF therefore aliases.
// Transition faults break the pairing only when the failed transition
// splits a complementary read pair, giving partial detection. This is
// precisely why [18] needs MISR-based (time-dependent) compaction and
// why prediction-based schemes like the paper's remain attractive.
func TestSymmetricXORCompactionBlindToSAF(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := MakeSymmetric(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	safDetected, tfDetected, tfTotal := 0, 0, 0
	run := func(f faults.Fault) bool {
		mem := memory.MustNew(4, 4)
		mem.Randomize(rand.New(rand.NewSource(9)))
		inj := faults.MustInject(mem, f)
		out, err := Session(sym, inj)
		if err != nil {
			t.Fatal(err)
		}
		return !out.Pass
	}
	for _, f := range faults.EnumerateStuckAt(4, 4) {
		if run(f) {
			safDetected++
		}
	}
	for _, f := range faults.EnumerateTransition(4, 4) {
		tfTotal++
		if run(f) {
			tfDetected++
		}
	}
	if safDetected != 0 {
		t.Errorf("XOR compaction detected %d SAFs; symmetry should cancel them all", safDetected)
	}
	rate := float64(tfDetected) / float64(tfTotal)
	t.Logf("symmetric one-pass TF detection: %.1f%% (%d/%d); SAF detection: 0 by construction",
		100*rate, tfDetected, tfTotal)
	if tfDetected == 0 {
		t.Error("no TF detected; the compactor should catch split pairs")
	}
}

// In comparator mode (reads checked against snapshot expectations) the
// symmetric test itself still detects everything its parent detects —
// the blindness above is a property of the compactor, not the test.
func TestSymmetricTestWithComparatorKeepsCoverage(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := MakeSymmetric(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	var list []faults.Fault
	list = append(list, faults.EnumerateStuckAt(3, 4)...)
	list = append(list, faults.EnumerateTransition(3, 4)...)
	for _, f := range list {
		mem := memory.MustNew(3, 4)
		mem.Randomize(rand.New(rand.NewSource(5)))
		inj := faults.MustInject(mem, f)
		run, err := march.Run(sym, inj, march.RunOptions{StopAtFirstMismatch: true})
		if err != nil {
			t.Fatal(err)
		}
		if !run.Detected() {
			t.Errorf("comparator missed %s under the symmetric test", f)
		}
	}
}

// The session saves the whole prediction pass: its cost equals the
// test alone.
func TestSymmetricSessionCost(t *testing.T) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := MakeSymmetric(res.TWMarch)
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.MustNew(8, 8)
	out, err := Session(sym, mem)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops != sym.Ops()*8 {
		t.Fatalf("session ops = %d, want %d", out.Ops, sym.Ops()*8)
	}
	// Compare with the prediction-based flow: TCM+TCP vs Sym ops.
	twoPass := res.TCM() + res.TCP()
	if sym.Ops() >= twoPass {
		t.Fatalf("symmetric session (%dN) not shorter than two-pass flow (%dN)", sym.Ops(), twoPass)
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(8)
	a.Sink()(0, word.FromUint64(0xf0), march.R(march.Transp(word.Zero)))
	a.Sink()(1, word.FromUint64(0x0f), march.R(march.Transp(word.Zero)))
	if a.Signature() != word.FromUint64(0xff) || a.Reads() != 2 {
		t.Fatalf("acc = %v after %d reads", a.Signature(), a.Reads())
	}
	a.Reset()
	if !a.Signature().IsZero() || a.Reads() != 0 {
		t.Fatal("Reset broken")
	}
}

// Exercise every MakeSymmetric case explicitly.
func TestMakeSymmetricCases(t *testing.T) {
	cases := []struct {
		name     string
		notation string
	}{
		// even count, nonzero xor: reads {0, 1}: count 2, xor = 1.
		{"evenNonzero", "{up(ra,w~a); up(r~a,wa)}"},
		// odd count, zero xor, m=0: reads {0,1,0,1,0}.
		{"oddZero", "{up(ra,w~a); up(r~a,wa); down(ra,w~a); down(r~a,wa); any(ra)}"},
		// odd count, nonzero xor: reads {0}: count 1, xor 0 — no;
		// use reads {1}: {up(ra,w~a); up(r~a,wa)} has even... craft:
		// reads {0, 1, 1}: count 3, xor 0 — no. reads {0,0,1}: xor 1
		// odd: {up(ra, ra, w~a, r~a, wa)}.
		{"oddNonzero", "{up(ra,ra,w~a,r~a,wa)}"},
	}
	for _, c := range cases {
		tst := march.MustParse(c.name, c.notation)
		sym, err := MakeSymmetric(tst)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ok, _ := IsSymmetric(sym); !ok {
			t.Fatalf("%s: not symmetric", c.name)
		}
		if err := sym.CheckReadConsistency(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

// Case: odd count, zero xor, with non-zero final mask (content left
// complemented) — needs the complement-excursion fix.
func TestMakeSymmetricOddZeroInvertedEnd(t *testing.T) {
	// reads {0, 1, 1}: count 3, xor 0; final content ~a.
	tst := march.MustParse("inv", "{up(ra,w~a,r~a); any(r~a)}")
	ok, err := IsSymmetric(tst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fixture unexpectedly symmetric")
	}
	sym, err := MakeSymmetric(tst)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsSymmetric(sym); !ok {
		t.Fatal("not symmetric after fix")
	}
	// Final content must still be ~a (the fix may not restore).
	if m := sym.FinalContent().Datum.EffectiveMask(1); m.IsZero() {
		t.Fatal("fix changed the final content")
	}
}
