// Package symmetric implements the symmetric transparent BIST idea of
// Yarmolik and Hellebrand (DATE 1999, the paper's reference [18]) on
// top of the word-oriented transparent tests of internal/core.
//
// A transparent test is *symmetric* when, for every address, the data
// expressions of its read operations cancel under XOR: each word is
// read an even number of times and the effective masks XOR to zero.
// Compacting the read stream with a pure XOR accumulator then yields a
// zero signature on a fault-free memory regardless of its contents —
// the signature-prediction pass disappears entirely.
//
// The catch, demonstrated by this package's tests: the same
// cancellation makes the XOR compactor
// provably blind to any fault that corrupts a cell's reads uniformly
// (every stuck-at fault), because the per-read errors inherit the
// symmetry and cancel too. [18] therefore pairs symmetric tests with
// a time-dependent (MISR-style) compactor; this package keeps the
// plain accumulator to make the trade measurable, and the comparator
// path shows the symmetrized *test* loses nothing — only the
// compactor does.
//
// MakeSymmetric upgrades any transparent march test into a symmetric
// one by appending at most one short element; Session runs the
// one-pass flow.
package symmetric

import (
	"fmt"

	"twmarch/internal/march"
	"twmarch/internal/word"
)

// IsSymmetric reports whether the transparent test's reads cancel:
// an even number of reads per address whose effective masks XOR to
// zero. Since march tests apply the same element sequence to every
// address, the check is per-test, not per-address.
func IsSymmetric(t *march.Test) (bool, error) {
	even, x, err := readBalance(t)
	if err != nil {
		return false, err
	}
	return even && x.IsZero(), nil
}

// readBalance returns whether the read count is even and the XOR of
// all read masks.
func readBalance(t *march.Test) (bool, word.Word, error) {
	if !t.IsTransparent() {
		return false, word.Word{}, fmt.Errorf("symmetric: %q is not transparent", t.Name)
	}
	count := 0
	x := word.Zero
	for _, e := range t.Elements {
		for _, op := range e.Ops {
			if op.Kind == march.Read {
				count++
				x = x.Xor(op.Data.EffectiveMask(t.Width))
			}
		}
	}
	return count%2 == 0, x, nil
}

// MakeSymmetric returns a symmetric version of a transparent march
// test, following [18]: when the reads do not already cancel, one
// additional march element is appended whose reads supply exactly the
// missing parity and XOR mass. With m the test's final content mask
// (zero for the tests generated in this library, i.e. contents equal
// the initial data), c the read count and s the XOR of all read
// masks, the appended element is:
//
//	c even, s ≠ 0:  ⇕(r a^m, w a^(m^s), r a^(m^s), w a^m)
//	                 reads {m, m^s}: +2 reads, XOR s — balances s.
//	c odd,  s = 0:  ⇕(r a^m, r a^m, r a^m) when m = 0, else
//	                 ⇕(r a^m, w a^(m^1), r a^(m^1), w a^1, r a^1, w a^m)
//	                 (1 = all-ones): 3 reads XORing to zero.
//	c odd,  s ≠ 0:  ⇕(r a^m, r a^m, w a^s, r a^s, w a^m)
//	                 reads {m, m, s}: +3 reads, XOR s.
//
// Every variant starts by reading the current content, leaves the
// final content unchanged, and keeps the test transparent. The result
// is validated to be symmetric and read-consistent.
func MakeSymmetric(t *march.Test) (*march.Test, error) {
	even, s, err := readBalance(t)
	if err != nil {
		return nil, err
	}
	out := t.Clone()
	out.Name = "Sym(" + t.Name + ")"
	fc := t.FinalContent()
	if !fc.Known || !fc.Datum.Transparent {
		return nil, fmt.Errorf("symmetric: %q has no transparent final content", t.Name)
	}
	m := fc.Datum.EffectiveMask(t.Width)
	ones := word.Ones(t.Width)

	r := func(mask word.Word) march.Op { return march.R(march.Transp(mask)) }
	w := func(mask word.Word) march.Op { return march.W(march.Transp(mask)) }

	switch {
	case even && s.IsZero():
		// Already symmetric.
	case even && !s.IsZero():
		out.Elements = append(out.Elements, march.Elem(march.Any,
			r(m), w(m.Xor(s)), r(m.Xor(s)), w(m),
		))
	case !even && s.IsZero():
		if m.IsZero() {
			out.Elements = append(out.Elements, march.Elem(march.Any,
				r(m), r(m), r(m),
			))
		} else {
			out.Elements = append(out.Elements, march.Elem(march.Any,
				r(m), w(m.Xor(ones)), r(m.Xor(ones)), w(ones), r(ones), w(m),
			))
		}
	default: // odd count, s != 0
		out.Elements = append(out.Elements, march.Elem(march.Any,
			r(m), r(m), w(s), r(s), w(m),
		))
	}

	ok, err := IsSymmetric(out)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("symmetric: internal error: %q not symmetric after fix", t.Name)
	}
	if err := out.CheckReadConsistency(); err != nil {
		return nil, err
	}
	if final := out.FinalContent().Datum.EffectiveMask(out.Width); final != m {
		return nil, fmt.Errorf("symmetric: symmetrization changed the final content")
	}
	return out, nil
}

// Accumulator is the XOR compactor of the symmetric scheme: the
// signature is the XOR of all read data. Fault-free symmetric tests
// produce a zero signature for any memory contents.
type Accumulator struct {
	width int
	acc   word.Word
	reads int
}

// NewAccumulator creates an XOR compactor for the word width.
func NewAccumulator(width int) *Accumulator { return &Accumulator{width: width} }

// Sink adapts the accumulator to the march runner.
func (a *Accumulator) Sink() func(addr int, got word.Word, op march.Op) {
	return func(_ int, got word.Word, _ march.Op) {
		a.acc = a.acc.Xor(got.Mask(a.width))
		a.reads++
	}
}

// Signature returns the accumulated XOR.
func (a *Accumulator) Signature() word.Word { return a.acc }

// Reads returns the number of compacted reads.
func (a *Accumulator) Reads() int { return a.reads }

// Reset clears the accumulator.
func (a *Accumulator) Reset() { a.acc = word.Zero; a.reads = 0 }

// Outcome reports one symmetric-BIST session.
type Outcome struct {
	// Signature is the final accumulator value; zero means pass.
	Signature word.Word
	// Pass is Signature == 0.
	Pass bool
	// Ops counts the executed operations — the whole session, since
	// there is no prediction pass.
	Ops int
}

// Session runs the one-pass symmetric flow: execute the test, compact
// reads, compare against zero.
func Session(t *march.Test, mem march.Mem) (Outcome, error) {
	ok, err := IsSymmetric(t)
	if err != nil {
		return Outcome{}, err
	}
	if !ok {
		return Outcome{}, fmt.Errorf("symmetric: %q is not symmetric; run MakeSymmetric first", t.Name)
	}
	acc := NewAccumulator(t.Width)
	res, err := march.Run(t, mem, march.RunOptions{ReadSink: acc.Sink()})
	if err != nil {
		return Outcome{}, err
	}
	sig := acc.Signature()
	return Outcome{Signature: sig, Pass: sig.IsZero(), Ops: res.Ops}, nil
}
