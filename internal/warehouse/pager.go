package warehouse

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the on-disk page size when Options leaves it 0.
// 4 KiB matches the common filesystem block size, so one page write is
// one block write.
const DefaultPageSize = 4096

// DefaultCachePages is the page-cache capacity when Options leaves it
// 0: 256 pages × 4 KiB = 1 MiB of hot index per warehouse.
const DefaultCachePages = 256

// CacheStats is a point-in-time read of one pager's cache counters.
// The same numbers feed the twm_warehouse_pager_* metrics; the local
// copies exist so tests can assert per-instance behaviour against a
// registry shared by the whole process.
type CacheStats struct {
	// Hits and Misses count page reads served from cache vs disk.
	Hits   uint64
	Misses uint64
	// Evictions counts pages dropped to make room (dirty ones are
	// written back first).
	Evictions uint64
}

// cpage is one cached page: an intrusive LRU list node.
type cpage struct {
	id         uint32
	buf        []byte
	dirty      bool
	prev, next *cpage
}

// Pager reads and writes fixed-size pages of one index file through
// an LRU cache. The hot path — a cache hit — takes one mutex
// acquisition and two pointer splices; the atomic stat counters stay
// off the lock entirely. A Pager is safe for concurrent use, though
// the warehouse additionally serializes whole tree operations.
type Pager struct {
	pageSize int
	maxPages int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	mu     sync.Mutex
	f      *os.File
	cache  map[uint32]*cpage
	head   *cpage // most recently used
	tail   *cpage // least recently used
	npages uint32
}

// openPager opens (or creates) the file and derives the allocated
// page count from its size.
func openPager(path string, pageSize, cachePages int) (*Pager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if cachePages <= 0 {
		cachePages = DefaultCachePages
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %v", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("warehouse: %v", err)
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("%w: %s: size %d not a multiple of the %d-byte page",
			ErrNeedsRebuild, path, fi.Size(), pageSize)
	}
	return &Pager{
		pageSize: pageSize,
		maxPages: cachePages,
		f:        f,
		cache:    make(map[uint32]*cpage),
		npages:   uint32(fi.Size() / int64(pageSize)),
	}, nil
}

// PageSize returns the fixed page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the allocated page count.
func (p *Pager) NumPages() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.npages
}

// Stats returns the cache counters.
func (p *Pager) Stats() CacheStats {
	return CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load(), Evictions: p.evictions.Load()}
}

// unlink removes c from the LRU list.
func (p *Pager) unlink(c *cpage) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		p.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else {
		p.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

// pushFront makes c the most recently used page.
func (p *Pager) pushFront(c *cpage) {
	c.next = p.head
	if p.head != nil {
		p.head.prev = c
	}
	p.head = c
	if p.tail == nil {
		p.tail = c
	}
}

// evictLocked drops the least-recently-used page, writing it back
// first when dirty. Callers hold p.mu.
func (p *Pager) evictLocked() error {
	c := p.tail
	if c == nil {
		return nil
	}
	if c.dirty {
		if _, err := p.f.WriteAt(c.buf, int64(c.id)*int64(p.pageSize)); err != nil {
			return fmt.Errorf("warehouse: write page %d: %v", c.id, err)
		}
	}
	p.unlink(c)
	delete(p.cache, c.id)
	p.evictions.Add(1)
	metPagerEvictions.Inc()
	return nil
}

// ReadPage returns page id's bytes. The slice is owned by the cache:
// it is valid only until the next Pager call and must not be mutated
// — mutations go through WritePage with a fresh buffer.
func (p *Pager) ReadPage(id uint32) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.cache[id]; ok {
		p.hits.Add(1)
		metPagerHits.Inc()
		if p.head != c {
			p.unlink(c)
			p.pushFront(c)
		}
		return c.buf, nil
	}
	if id >= p.npages {
		return nil, fmt.Errorf("warehouse: read past end: page %d of %d", id, p.npages)
	}
	p.misses.Add(1)
	metPagerMisses.Inc()
	buf := make([]byte, p.pageSize)
	// A page allocated and cached but evicted clean before its first
	// flush cannot exist: eviction writes dirty pages, and every
	// allocated page is written dirty before it is ever read back. So
	// a short read here is real corruption, not a hole.
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("warehouse: read page %d: %v", id, err)
	}
	for len(p.cache) >= p.maxPages {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	c := &cpage{id: id, buf: buf}
	p.cache[id] = c
	p.pushFront(c)
	return buf, nil
}

// WritePage replaces page id's contents and marks it dirty. The pager
// takes ownership of buf, which must be exactly one page long.
func (p *Pager) WritePage(id uint32, buf []byte) error {
	if len(buf) != p.pageSize {
		return fmt.Errorf("warehouse: write page %d: %d bytes, want %d", id, len(buf), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.npages {
		return fmt.Errorf("warehouse: write past end: page %d of %d", id, p.npages)
	}
	if c, ok := p.cache[id]; ok {
		c.buf = buf
		c.dirty = true
		if p.head != c {
			p.unlink(c)
			p.pushFront(c)
		}
		return nil
	}
	for len(p.cache) >= p.maxPages {
		if err := p.evictLocked(); err != nil {
			return err
		}
	}
	c := &cpage{id: id, buf: buf, dirty: true}
	p.cache[id] = c
	p.pushFront(c)
	return nil
}

// WriteNow writes the page through the cache straight to disk and
// syncs — the durability point for the meta page's clean/dirty marker.
func (p *Pager) WriteNow(id uint32, buf []byte) error {
	if err := p.WritePage(id, buf); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.cache[id]
	if _, err := p.f.WriteAt(c.buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("warehouse: write page %d: %v", id, err)
	}
	c.dirty = false
	return p.sync()
}

// Alloc extends the file by one page and returns its id. The page's
// contents are undefined until the first WritePage.
func (p *Pager) Alloc() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.npages
	p.npages++
	return id
}

// Flush writes every dirty cached page (in page order) and syncs the
// file.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]uint32, 0, len(p.cache))
	for id, c := range p.cache {
		if c.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		c := p.cache[id]
		if _, err := p.f.WriteAt(c.buf, int64(id)*int64(p.pageSize)); err != nil {
			return fmt.Errorf("warehouse: write page %d: %v", id, err)
		}
		c.dirty = false
	}
	return p.sync()
}

// sync fsyncs the file. Callers hold p.mu.
func (p *Pager) sync() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("warehouse: sync: %v", err)
	}
	return nil
}

// Close flushes and closes the file.
func (p *Pager) Close() error {
	if err := p.Flush(); err != nil {
		p.f.Close()
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.f.Close(); err != nil {
		return fmt.Errorf("warehouse: %v", err)
	}
	return nil
}
