// Package warehouse is the indexed campaign-result warehouse behind
// cmd/twmd's jobstore: a paged B+-tree index over completed campaign
// cell results, served through an LRU page cache, so dimension-
// filtered range queries ("coverage of S5 across all word widths,
// jobs 9000..10000") are contiguous leaf walks instead of WAL
// replays.
//
// The NDJSON job journals (internal/jobstore) stay the source of
// truth. The warehouse is a derived, disposable view: every entry is
// reproducible from the WALs, Rebuild reproduces the whole file
// deterministically (two rebuilds of the same store are
// byte-identical), and any doubt about the file's integrity — a
// crash mid-ingest, a version mismatch — is answered by throwing it
// away and rebuilding.
//
// On disk the warehouse is a single file of fixed-size pages:
//
//	page 0      meta (magic, page size, tree roots, clean marker)
//	pages 1..n  B+-tree nodes of two trees —
//	            the dimension index, keyed by (test, width, words,
//	            scheme, job, cell) in order-preserving form (Key), and
//	            the primary index, keyed by (job, cell)
//
// Mutations mark the meta page dirty (synced before the first page
// changes) and Checkpoint flushes all pages before writing the clean
// marker back, so Open of a crashed file fails with ErrNeedsRebuild
// instead of serving a torn tree. In-memory, per-segment bloom
// filters over the ingested job sequences short-circuit point
// lookups for absent jobs without touching a page.
package warehouse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"twmarch/internal/campaign"
)

// metaMagic identifies a warehouse index file (and its format
// version): rebuilding is the upgrade path, so any mismatch is
// ErrNeedsRebuild rather than a migration.
const metaMagic = "TWMWHSE1"

// ErrNeedsRebuild reports an index file that cannot be trusted — a
// dirty clean-marker after a crash, a foreign or torn file, a format
// version mismatch. The caller's move is always Rebuild.
var ErrNeedsRebuild = errors.New("warehouse: index needs rebuild from the jobstore WALs")

// Options tunes a warehouse. The zero value means DefaultPageSize
// pages and a DefaultCachePages-page cache.
type Options struct {
	// PageSize is the on-disk page size in bytes.
	PageSize int
	// CachePages caps the LRU page cache, in pages.
	CachePages int
}

func (o Options) pageSize() int {
	if o.PageSize > 0 {
		return o.PageSize
	}
	return DefaultPageSize
}

// Warehouse is one open index file. All methods are safe for
// concurrent use; tree operations are serialized under one mutex (the
// pager's cache has its own lock-cheap path for the page reads
// within).
type Warehouse struct {
	mu   sync.Mutex
	path string
	pg   *Pager
	dim  *tree
	pri  *tree
	segs []*segment
	jobs int
	// clean mirrors the on-disk meta marker; the first mutation after
	// a checkpoint syncs it false before any page can hit disk.
	clean bool
	// lastJob caches the most recent job looked up by insert, sparing
	// one primary probe per cell of a streaming ingest.
	lastJob      uint64
	lastJobKnown bool
}

// maxEntry bounds one leaf entry (header + key + value) so a split
// always yields two fitting halves.
func maxEntry(pageSize int) int { return (pageSize - nodeHeader) / 4 }

// Open opens an existing index file, or creates an empty one when the
// path does not exist (or is empty). A file that exists but cannot be
// trusted — wrong magic or page size, torn length, or a dirty clean
// marker left by a crash — fails with an error wrapping
// ErrNeedsRebuild.
func Open(path string, opts Options) (*Warehouse, error) {
	pg, err := openPager(path, opts.pageSize(), opts.CachePages)
	if err != nil {
		return nil, err
	}
	if pg.NumPages() == 0 {
		return createLocked(path, pg)
	}
	w := &Warehouse{path: path, pg: pg}
	if err := w.loadMeta(); err != nil {
		pg.Close()
		return nil, err
	}
	if err := w.loadSegments(); err != nil {
		pg.Close()
		return nil, fmt.Errorf("%w: %v", ErrNeedsRebuild, err)
	}
	w.publishGauges()
	return w, nil
}

// createLocked initializes a fresh file on an empty pager: meta page,
// then one empty leaf root per tree.
func createLocked(path string, pg *Pager) (*Warehouse, error) {
	w := &Warehouse{path: path, pg: pg}
	if id := pg.Alloc(); id != 0 {
		pg.Close()
		return nil, fmt.Errorf("warehouse: meta page allocated as %d", id)
	}
	var err error
	if w.dim, err = newTree(pg); err != nil {
		pg.Close()
		return nil, err
	}
	if w.pri, err = newTree(pg); err != nil {
		pg.Close()
		return nil, err
	}
	if err := w.checkpointLocked(); err != nil {
		pg.Close()
		return nil, err
	}
	w.publishGauges()
	return w, nil
}

// metaBuf renders the meta page.
func (w *Warehouse) metaBuf(clean bool) []byte {
	buf := make([]byte, w.pg.PageSize())
	copy(buf, metaMagic)
	binary.BigEndian.PutUint32(buf[8:], uint32(w.pg.PageSize()))
	binary.BigEndian.PutUint32(buf[12:], w.dim.root)
	binary.BigEndian.PutUint32(buf[16:], w.pri.root)
	binary.BigEndian.PutUint32(buf[20:], w.pg.NumPages())
	if clean {
		buf[24] = 1
	}
	return buf
}

// loadMeta validates the meta page and attaches the trees.
func (w *Warehouse) loadMeta() error {
	buf, err := w.pg.ReadPage(0)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNeedsRebuild, err)
	}
	if string(buf[:8]) != metaMagic {
		return fmt.Errorf("%w: bad magic", ErrNeedsRebuild)
	}
	if int(binary.BigEndian.Uint32(buf[8:])) != w.pg.PageSize() {
		return fmt.Errorf("%w: page size %d, opened with %d",
			ErrNeedsRebuild, binary.BigEndian.Uint32(buf[8:]), w.pg.PageSize())
	}
	dimRoot := binary.BigEndian.Uint32(buf[12:])
	priRoot := binary.BigEndian.Uint32(buf[16:])
	npages := binary.BigEndian.Uint32(buf[20:])
	if buf[24] != 1 {
		return fmt.Errorf("%w: file was not checkpointed cleanly", ErrNeedsRebuild)
	}
	if npages != w.pg.NumPages() || dimRoot == 0 || dimRoot >= npages || priRoot == 0 || priRoot >= npages {
		return fmt.Errorf("%w: meta references pages outside the file", ErrNeedsRebuild)
	}
	w.dim = &tree{pg: w.pg, root: dimRoot}
	w.pri = &tree{pg: w.pg, root: priRoot}
	w.clean = true
	return nil
}

// loadSegments rebuilds the in-memory bloom segments and job count by
// walking the primary tree's leaf chain once.
func (w *Warehouse) loadSegments() error {
	var last uint64
	var any bool
	return w.pri.scan(nil, func(k, v []byte) bool {
		seq := binary.BigEndian.Uint64(k)
		if !any || seq != last {
			w.segs = addJob(w.segs, seq)
			w.jobs++
			any, last = true, seq
		}
		return true
	})
}

// publishGauges refreshes the pages/jobs gauges.
func (w *Warehouse) publishGauges() {
	metPages.Set(float64(w.pg.NumPages()))
	metJobs.Set(float64(w.jobs))
}

// ensureDirtyLocked syncs the meta page's dirty marker to disk before
// the first mutation after a checkpoint, so a crash mid-write is
// always detectable at the next Open. Callers hold w.mu.
func (w *Warehouse) ensureDirtyLocked() error {
	if !w.clean {
		return nil
	}
	if err := w.pg.WriteNow(0, w.metaBuf(false)); err != nil {
		return err
	}
	w.clean = false
	return nil
}

// checkpointLocked flushes dirty pages, then writes the clean meta
// marker. Callers hold w.mu.
func (w *Warehouse) checkpointLocked() error {
	if err := w.pg.Flush(); err != nil {
		return err
	}
	if err := w.pg.WriteNow(0, w.metaBuf(true)); err != nil {
		return err
	}
	w.clean = true
	metCheckpoints.Inc()
	w.publishGauges()
	return nil
}

// Checkpoint makes every ingested record durable and marks the file
// clean: dirty pages are flushed and synced before the meta page's
// clean marker is written back. cmd/twmd checkpoints after each job
// settles.
func (w *Warehouse) Checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.checkpointLocked()
}

// Close checkpoints and releases the file.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkpointLocked(); err != nil {
		w.pg.Close()
		return err
	}
	return w.pg.Close()
}

// Path returns the index file path.
func (w *Warehouse) Path() string { return w.path }

// CacheStats returns the page cache counters (also exported as
// twm_warehouse_pager_* metrics).
func (w *Warehouse) CacheStats() CacheStats { return w.pg.Stats() }

// NumJobs returns the distinct jobs currently indexed.
func (w *Warehouse) NumJobs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs
}

// NumPages returns the allocated page count of the index file.
func (w *Warehouse) NumPages() uint32 { return w.pg.NumPages() }

// InsertResult indexes one completed cell result under the job
// sequence. Errored cells are skipped (they carry no dimensions worth
// querying), and re-inserting an already-indexed (job, cell) is a
// no-op — journal replay and settle-time backfill are idempotent.
func (w *Warehouse) InsertResult(job uint64, r campaign.CellResult) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.insertLocked(job, r)
}

func (w *Warehouse) insertLocked(job uint64, r campaign.CellResult) error {
	if r.Err != "" || r.Index < 0 || r.Width < 0 || r.Words < 0 {
		return nil
	}
	rec := recordOf(job, r)
	dimKey := rec.Key().Encode(nil)
	val := encodeValue(rec)
	if 4+len(dimKey)+len(val) > maxEntry(w.pg.PageSize()) {
		return fmt.Errorf("warehouse: record for job %d cell %d exceeds the %d-byte entry limit",
			job, r.Index, maxEntry(w.pg.PageSize()))
	}
	known := w.lastJobKnown && w.lastJob == job
	if !known {
		var err error
		if known, err = w.hasJobLocked(job); err != nil {
			return err
		}
	}
	if err := w.ensureDirtyLocked(); err != nil {
		return err
	}
	added, err := w.pri.insert(priKey(job, rec.Cell), val)
	if err != nil {
		return err
	}
	if !added {
		return nil
	}
	if _, err := w.dim.insert(dimKey, val); err != nil {
		return err
	}
	metInserts.Inc()
	if !known {
		w.segs = addJob(w.segs, job)
		w.jobs++
		metJobs.Set(float64(w.jobs))
	}
	w.lastJob, w.lastJobKnown = job, true
	return nil
}

// hasJobLocked reports whether any cell of the job is indexed,
// consulting the segment blooms before touching a page.
func (w *Warehouse) hasJobLocked(job uint64) (bool, error) {
	if !mightContainJob(w.segs, job) {
		metBloomSkips.Inc()
		return false, nil
	}
	found := false
	err := w.pri.scan(priKey(job, 0), func(k, v []byte) bool {
		found = len(k) >= 8 && binary.BigEndian.Uint64(k) == job
		return false
	})
	return found, err
}

// HasJob reports whether the job has any indexed cells.
func (w *Warehouse) HasJob(job uint64) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hasJobLocked(job)
}

// jobEntriesLocked collects the primary entries of one job.
func (w *Warehouse) jobEntriesLocked(job uint64) (cells []uint32, vals [][]byte, err error) {
	err = w.pri.scan(priKey(job, 0), func(k, v []byte) bool {
		if len(k) < 12 || binary.BigEndian.Uint64(k) != job {
			return false
		}
		cells = append(cells, binary.BigEndian.Uint32(k[8:]))
		vals = append(vals, v)
		return true
	})
	return cells, vals, err
}

// RemoveJob deletes every index entry of the job — the eviction path
// — and returns how many cells were dropped. The blooms are left
// untouched (a stale positive only costs one tree probe).
func (w *Warehouse) RemoveJob(job uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.removeJobLocked(job)
}

func (w *Warehouse) removeJobLocked(job uint64) (int, error) {
	if !mightContainJob(w.segs, job) {
		metBloomSkips.Inc()
		return 0, nil
	}
	cells, vals, err := w.jobEntriesLocked(job)
	if err != nil {
		return 0, err
	}
	if len(cells) == 0 {
		return 0, nil
	}
	if err := w.ensureDirtyLocked(); err != nil {
		return 0, err
	}
	for i, cell := range cells {
		rec, err := decodeValue(job, cell, vals[i])
		if err != nil {
			return i, fmt.Errorf("warehouse: job %d cell %d: %v", job, cell, err)
		}
		if _, err := w.dim.delete(rec.Key().Encode(nil)); err != nil {
			return i, err
		}
		if _, err := w.pri.delete(priKey(job, cell)); err != nil {
			return i, err
		}
		metDeletes.Inc()
	}
	w.jobs--
	metJobs.Set(float64(w.jobs))
	if w.lastJobKnown && w.lastJob == job {
		w.lastJobKnown = false
	}
	return len(cells), nil
}

// JobRecords returns the indexed records of one job in cell order —
// the reconcile path's view of what the index believes about a job.
func (w *Warehouse) JobRecords(job uint64) ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cells, vals, err := w.jobEntriesLocked(job)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(cells))
	for i, cell := range cells {
		rec, err := decodeValue(job, cell, vals[i])
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// IndexedJobs walks the primary tree once and returns the cell count
// per indexed job sequence.
func (w *Warehouse) IndexedJobs() (map[uint64]int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[uint64]int, w.jobs)
	err := w.pri.scan(nil, func(k, v []byte) bool {
		if len(k) >= 8 {
			out[binary.BigEndian.Uint64(k)]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// remove deletes the index file from disk — used when a rebuild must
// start from nothing.
func remove(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("warehouse: %v", err)
	}
	return nil
}
