package warehouse

import (
	"encoding/binary"
	"fmt"

	"twmarch/internal/campaign"
)

// Record is one indexed campaign cell result: the dimension tuple
// plus the headline counters a query consumer needs. It is the unit
// both trees store — the warehouse answers queries entirely from
// records, never from the WALs.
type Record struct {
	// Job is the numeric job sequence (see JobSeq) and Cell the cell's
	// grid index within it.
	Job  uint64
	Cell uint32
	// Dim is the cell's grid-dimension tuple.
	Dim campaign.Dim
	// Faults and Detected count the cell's fault population and
	// detections; TCM and TCP are the generated test and prediction
	// lengths in operations per address.
	Faults   int
	Detected int
	TCM      int
	TCP      int
}

// Key returns the record's composite dimension key.
func (r Record) Key() Key {
	return Key{
		Test:   r.Dim.Test,
		Width:  uint32(r.Dim.Width),
		Words:  uint32(r.Dim.Words),
		Scheme: r.Dim.Scheme,
		Job:    r.Job,
		Cell:   r.Cell,
	}
}

// appendLP appends a length-prefixed string (uvarint length).
func appendLP(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readLP decodes one appendLP string.
func readLP(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("warehouse: truncated string in record")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// encodeValue serializes the record's non-key payload. Both trees
// store the same bytes: the primary tree's key carries only
// (job, cell), so the value repeats the dimensions to make every
// entry self-describing.
func encodeValue(r Record) []byte {
	out := make([]byte, 0, 48)
	out = appendLP(out, r.Dim.Test)
	out = binary.AppendUvarint(out, uint64(r.Dim.Width))
	out = binary.AppendUvarint(out, uint64(r.Dim.Words))
	out = appendLP(out, r.Dim.Scheme)
	out = appendLP(out, r.Dim.Mode)
	out = binary.AppendUvarint(out, uint64(r.Faults))
	out = binary.AppendUvarint(out, uint64(r.Detected))
	out = binary.AppendUvarint(out, uint64(r.TCM))
	out = binary.AppendUvarint(out, uint64(r.TCP))
	return out
}

// decodeValue parses an encodeValue payload back into a Record.
func decodeValue(job uint64, cell uint32, b []byte) (Record, error) {
	r := Record{Job: job, Cell: cell}
	var err error
	if r.Dim.Test, b, err = readLP(b); err != nil {
		return Record{}, err
	}
	ints := [2]*int{&r.Dim.Width, &r.Dim.Words}
	for _, p := range ints {
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return Record{}, fmt.Errorf("warehouse: truncated int in record")
		}
		*p = int(n)
		b = b[sz:]
	}
	if r.Dim.Scheme, b, err = readLP(b); err != nil {
		return Record{}, err
	}
	if r.Dim.Mode, b, err = readLP(b); err != nil {
		return Record{}, err
	}
	tails := [4]*int{&r.Faults, &r.Detected, &r.TCM, &r.TCP}
	for _, p := range tails {
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return Record{}, fmt.Errorf("warehouse: truncated counter in record")
		}
		*p = int(n)
		b = b[sz:]
	}
	if len(b) != 0 {
		return Record{}, fmt.Errorf("warehouse: %d trailing bytes in record", len(b))
	}
	return r, nil
}

// recordOf builds the Record for one completed cell result.
func recordOf(job uint64, r campaign.CellResult) Record {
	return Record{
		Job:      job,
		Cell:     uint32(r.Index),
		Dim:      r.Cell.Dim(),
		Faults:   r.Faults,
		Detected: r.Detected,
		TCM:      r.TCM,
		TCP:      r.TCP,
	}
}
