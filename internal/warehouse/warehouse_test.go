package warehouse

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"twmarch/internal/campaign"
	"twmarch/internal/jobstore"
)

// testResult synthesizes one completed cell result.
func testResult(idx int, test string, width, words int, scheme, mode string) campaign.CellResult {
	return campaign.CellResult{
		Cell: campaign.Cell{
			Index: idx, Test: test, Width: width, Words: words,
			Scheme: scheme, Mode: mode,
		},
		Faults:   100 + idx,
		Detected: 90 + idx,
		TCM:      14,
		TCP:      10,
	}
}

// gridResults expands a small grid of results, one cell per
// (test, width, scheme) combination.
func gridResults() []campaign.CellResult {
	tests := []string{"MATS+", "March C-", "S5"}
	widths := []int{4, 8}
	schemes := []string{"scheme1", "twm"}
	var out []campaign.CellResult
	idx := 0
	for _, tn := range tests {
		for _, wd := range widths {
			for _, sc := range schemes {
				out = append(out, testResult(idx, tn, wd, 16, sc, "compare"))
				idx++
			}
		}
	}
	return out
}

// openTest opens a small warehouse in a temp dir.
func openTest(t *testing.T) *Warehouse {
	t.Helper()
	w, err := Open(filepath.Join(t.TempDir(), "warehouse.idx"), Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestWarehouseInsertSearch(t *testing.T) {
	w := openTest(t)
	for job := uint64(1); job <= 20; job++ {
		for _, r := range gridResults() {
			if err := w.InsertResult(job, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := w.NumJobs(); got != 20 {
		t.Fatalf("NumJobs = %d, want 20", got)
	}

	// Dimension plan: fully pinned dims plus a job range.
	res, err := w.Search(Query{Test: "S5", Width: 8, Words: 16, Scheme: "twm", MinJob: 5, MaxJob: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("pinned query returned %d records, want 6", len(res.Records))
	}
	for i, r := range res.Records {
		if r.Dim.Test != "S5" || r.Dim.Width != 8 || r.Dim.Scheme != "twm" {
			t.Fatalf("record %d has wrong dims: %+v", i, r.Dim)
		}
		if r.Job != uint64(5+i) {
			t.Fatalf("record %d job = %d, want %d", i, r.Job, 5+i)
		}
	}
	// A fully pinned scan should not have examined more than it returned.
	if res.Scanned != len(res.Records) {
		t.Fatalf("pinned query scanned %d entries for %d records", res.Scanned, len(res.Records))
	}

	// Partial prefix: test only.
	res, err = w.Search(Query{Test: "March C-", Limit: MaxQueryLimit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4*20 {
		t.Fatalf("test-only query returned %d records, want 80", len(res.Records))
	}

	// Primary plan: job range only.
	res, err = w.Search(Query{MinJob: 19, Limit: MaxQueryLimit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2*len(gridResults()) {
		t.Fatalf("job-range query returned %d records, want %d", len(res.Records), 2*len(gridResults()))
	}

	// In-scan filter that is not part of any key.
	res, err = w.Search(Query{Mode: "signature"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("mode filter matched %d records, want 0", len(res.Records))
	}

	// Absent job short-circuits via the blooms.
	if ok, err := w.HasJob(999); err != nil || ok {
		t.Fatalf("HasJob(999) = %v, %v", ok, err)
	}
}

func TestWarehousePaging(t *testing.T) {
	w := openTest(t)
	for job := uint64(1); job <= 30; job++ {
		for _, r := range gridResults() {
			if err := w.InsertResult(job, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := 30 * len(gridResults())
	var got []Record
	q := Query{Limit: 37}
	pages := 0
	for {
		res, err := w.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Records...)
		pages++
		if res.NextToken == "" {
			break
		}
		q.PageToken = res.NextToken
		if pages > total {
			t.Fatal("paging did not terminate")
		}
	}
	if len(got) != total {
		t.Fatalf("paged scan returned %d records, want %d", len(got), total)
	}
	seen := make(map[string]bool, total)
	for _, r := range got {
		k := fmt.Sprintf("%d/%d", r.Job, r.Cell)
		if seen[k] {
			t.Fatalf("duplicate record %s across pages", k)
		}
		seen[k] = true
	}

	// A token from one plan is rejected by the other.
	res, err := w.Search(Query{Limit: 5})
	if err != nil || res.NextToken == "" {
		t.Fatalf("seed page: %v", err)
	}
	if _, err := w.Search(Query{Test: "S5", PageToken: res.NextToken}); err == nil {
		t.Fatal("cross-plan token accepted")
	}
}

func TestWarehouseRemoveJob(t *testing.T) {
	w := openTest(t)
	for job := uint64(1); job <= 5; job++ {
		for _, r := range gridResults() {
			if err := w.InsertResult(job, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	n, err := w.RemoveJob(3)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(gridResults()) {
		t.Fatalf("RemoveJob dropped %d cells, want %d", n, len(gridResults()))
	}
	if w.NumJobs() != 4 {
		t.Fatalf("NumJobs = %d after remove, want 4", w.NumJobs())
	}
	res, err := w.Search(Query{MinJob: 3, MaxJob: 3})
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("removed job still queryable: %d records, err %v", len(res.Records), err)
	}
	res, err = w.Search(Query{Test: "S5", Limit: MaxQueryLimit})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Job == 3 {
			t.Fatal("removed job still in the dimension tree")
		}
	}
	if n, err := w.RemoveJob(3); err != nil || n != 0 {
		t.Fatalf("re-remove: %d, %v", n, err)
	}
}

func TestWarehouseReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warehouse.idx")
	w, err := Open(path, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for job := uint64(1); job <= 8; job++ {
		for _, r := range gridResults() {
			if err := w.InsertResult(job, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Open(path, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.NumJobs() != 8 {
		t.Fatalf("NumJobs after reopen = %d, want 8", w.NumJobs())
	}
	res, err := w.Search(Query{Test: "MATS+", Width: 4, Words: 16, Scheme: "twm"})
	if err != nil || len(res.Records) != 8 {
		t.Fatalf("query after reopen: %d records, err %v", len(res.Records), err)
	}
}

func TestWarehouseDirtyNeedsRebuild(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warehouse.idx")
	w, err := Open(path, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.InsertResult(1, testResult(0, "S5", 8, 16, "twm", "compare")); err != nil {
		t.Fatal(err)
	}
	// Abandon without checkpoint: the on-disk meta page still carries
	// the dirty marker WriteNow synced before the insert.
	if err := w.pg.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{PageSize: 512}); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("open of dirty file: %v, want ErrNeedsRebuild", err)
	}
	// Wrong page size is also a rebuild.
	if _, err := Open(path, Options{PageSize: 1024}); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("open with wrong page size: %v, want ErrNeedsRebuild", err)
	}
}

// seedStore journals n done jobs into a fresh jobstore.
func seedStore(t *testing.T, dir string, n int) *jobstore.Store {
	t.Helper()
	store, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		j, err := store.Create(JobID(uint64(i)), campaign.Spec{Name: "t"})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range gridResults() {
			j.Emit(r)
		}
		if err := j.Finish("done", ""); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestRebuildFromWALDeterministic(t *testing.T) {
	dir := t.TempDir()
	store := seedStore(t, filepath.Join(dir, "jobs"), 12)

	path1 := filepath.Join(dir, "a.idx")
	w1, err := RebuildFromWAL(path1, Options{PageSize: 512}, store)
	if err != nil {
		t.Fatal(err)
	}
	if w1.NumJobs() != 12 {
		t.Fatalf("rebuild indexed %d jobs, want 12", w1.NumJobs())
	}
	res, err := w1.Search(Query{Test: "S5", Scheme: "twm", Limit: MaxQueryLimit})
	if err != nil || len(res.Records) != 2*12 {
		t.Fatalf("query on rebuilt index: %d records, err %v", len(res.Records), err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	path2 := filepath.Join(dir, "b.idx")
	w2, err := RebuildFromWAL(path2, Options{PageSize: 512}, store)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	b1, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two rebuilds differ: %d vs %d bytes", len(b1), len(b2))
	}
}

func TestReconcile(t *testing.T) {
	dir := t.TempDir()
	store := seedStore(t, filepath.Join(dir, "jobs"), 6)
	path := filepath.Join(dir, "warehouse.idx")
	w, err := RebuildFromWAL(path, Options{PageSize: 512}, store)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Drift both ways: job 2's WAL disappears (evict raced the index),
	// job 4 loses cells from the index, job 7 is journaled done but
	// never indexed.
	if err := store.Remove(JobID(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RemoveJob(4); err != nil {
		t.Fatal(err)
	}
	if err := w.IndexJob(JobID(4), gridResults()[:3]); err != nil {
		t.Fatal(err)
	}
	j, err := store.Create(JobID(7), campaign.Spec{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range gridResults() {
		j.Emit(r)
	}
	if err := j.Finish("done", ""); err != nil {
		t.Fatal(err)
	}

	stats, err := w.Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Removed) != 1 || stats.Removed[0] != JobID(2) {
		t.Fatalf("Removed = %v, want [c2]", stats.Removed)
	}
	if len(stats.Repaired) != 2 {
		t.Fatalf("Repaired = %v, want [c4 c7]", stats.Repaired)
	}

	// The index now mirrors the store exactly.
	indexed, err := w.IndexedJobs()
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]int{1: 12, 3: 12, 4: 12, 5: 12, 6: 12, 7: 12}
	if len(indexed) != len(want) {
		t.Fatalf("indexed jobs = %v, want %v", indexed, want)
	}
	for seq, n := range want {
		if indexed[seq] != n {
			t.Fatalf("job %d has %d cells indexed, want %d", seq, indexed[seq], n)
		}
	}

	// A second reconcile is a no-op.
	stats, err = w.Reconcile(store)
	if err != nil || len(stats.Removed) != 0 || len(stats.Repaired) != 0 {
		t.Fatalf("second reconcile not clean: %+v, %v", stats, err)
	}
}

func TestIngesterAndErroredCells(t *testing.T) {
	w := openTest(t)
	sink := w.Ingester("c9")
	for _, r := range gridResults() {
		sink.Emit(r)
	}
	bad := testResult(99, "S5", 8, 16, "twm", "compare")
	bad.Err = "simulated failure"
	sink.Emit(bad)
	res, err := w.Search(Query{MinJob: 9, MaxJob: 9, Limit: MaxQueryLimit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(gridResults()) {
		t.Fatalf("ingested %d records, want %d (errored cell must be skipped)", len(res.Records), len(gridResults()))
	}
	// Unindexable ids are inert.
	w.Ingester("not-a-job").Emit(testResult(0, "S5", 8, 16, "twm", "compare"))
	if w.NumJobs() != 1 {
		t.Fatalf("NumJobs = %d, want 1", w.NumJobs())
	}
}

func TestCacheStatsObservable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warehouse.idx")
	w, err := Open(path, Options{PageSize: 512, CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	for job := uint64(1); job <= 40; job++ {
		for _, r := range gridResults() {
			if err := w.InsertResult(job, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := w.Search(Query{Test: "S5"}); err != nil {
		t.Fatal(err)
	}
	s := w.CacheStats()
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("expected nonzero cache counters under a 4-page cache, got %+v", s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordValueRoundTrip(t *testing.T) {
	rec := Record{
		Job: 42, Cell: 7,
		Dim:    campaign.Dim{Test: "March C-", Width: 8, Words: 64, Scheme: "twm", Mode: "signature"},
		Faults: 1234, Detected: 1200, TCM: 14, TCP: 10,
	}
	got, err := decodeValue(rec.Job, rec.Cell, encodeValue(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}
	if _, err := decodeValue(1, 1, append(encodeValue(rec), 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
