package warehouse

import (
	"os"
	"sort"

	"twmarch/internal/campaign"
	"twmarch/internal/jobstore"
)

// validResults canonicalizes a job's journaled cell results for
// indexing: errored cells and negative indices are dropped, the rest
// are sorted by cell index, and duplicate indices (a WAL replayed
// over a resumed run can journal a cell twice) keep the first
// occurrence. The output is a pure function of the input set, which
// is what makes RebuildFromWAL deterministic.
func validResults(results []campaign.CellResult) []campaign.CellResult {
	out := make([]campaign.CellResult, 0, len(results))
	seen := make(map[int]bool, len(results))
	for _, r := range results {
		if r.Err != "" || r.Index < 0 || seen[r.Index] {
			continue
		}
		seen[r.Index] = true
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// IndexJob indexes every valid journaled result of one job — the
// settle-time backfill that covers cells a recovery-seeded run never
// streamed through a Sink. Re-indexing an already-indexed job is a
// no-op per cell. Ids that are not twmd-shaped ("c<seq>") are
// silently not indexable.
func (w *Warehouse) IndexJob(id string, results []campaign.CellResult) error {
	seq, ok := JobSeq(id)
	if !ok {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, r := range validResults(results) {
		if err := w.insertLocked(seq, r); err != nil {
			return err
		}
	}
	return nil
}

// RemoveJobID drops a job's index entries by twmd job id — the evict
// path. Unindexable ids are a no-op.
func (w *Warehouse) RemoveJobID(id string) (int, error) {
	seq, ok := JobSeq(id)
	if !ok {
		return 0, nil
	}
	return w.RemoveJob(seq)
}

// Ingester returns a campaign.Sink that indexes each completed cell
// of the job as it streams out of the engine, so a finished job's
// results are queryable the moment it settles without a backfill
// scan. Insert failures count in twm_warehouse_ingest_errors_total;
// the WALs stay the source of truth, so a dropped insert is repaired
// by the next reconcile or rebuild rather than failing the run.
func (w *Warehouse) Ingester(id string) campaign.Sink {
	seq, ok := JobSeq(id)
	if !ok {
		return campaign.SinkFunc(func(campaign.CellResult) {})
	}
	return campaign.SinkFunc(func(r campaign.CellResult) {
		if err := w.InsertResult(seq, r); err != nil {
			metIngestErrors.Inc()
		}
	})
}

// RebuildFromWAL builds a fresh index at path from the jobstore's
// journals and returns it opened. The build happens in path+
// ".rebuild" and atomically renames over path, so a crash mid-rebuild
// leaves either the old file or none. Only terminally done jobs are
// indexed, in job-sequence order with cells in index order, and every
// page is zero-padded before use — two rebuilds of the same store
// produce byte-identical files.
func RebuildFromWAL(path string, opts Options, store *jobstore.Store) (*Warehouse, error) {
	tmp := path + ".rebuild"
	if err := remove(tmp); err != nil {
		return nil, err
	}
	w, err := Open(tmp, opts)
	if err != nil {
		return nil, err
	}
	jobs, err := doneJobs(store)
	if err != nil {
		w.pg.Close()
		return nil, err
	}
	for _, j := range jobs {
		if err := w.IndexJob(j.ID, j.Done); err != nil {
			w.pg.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	metRebuilds.Inc()
	return Open(path, opts)
}

// doneJobs loads every terminally done, indexable job from the store,
// sorted by job sequence.
func doneJobs(store *jobstore.Store) ([]jobstore.Job, error) {
	ids, err := store.IDs()
	if err != nil {
		return nil, err
	}
	type seqID struct {
		seq uint64
		id  string
	}
	var seqs []seqID
	for _, id := range ids {
		if seq, ok := JobSeq(id); ok {
			seqs = append(seqs, seqID{seq, id})
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a].seq < seqs[b].seq })
	var jobs []jobstore.Job
	for _, s := range seqs {
		j, err := store.Load(s.id)
		if err != nil {
			continue // unrecoverable journal: nothing to index
		}
		if j.State == "done" {
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// ReconcileStats reports what Reconcile changed.
type ReconcileStats struct {
	// Removed lists jobs dropped from the index: their WAL is gone or
	// no longer terminally done (an evict or crash raced the index).
	Removed []string
	// Repaired lists jobs whose indexed cell set drifted from the WAL
	// and were re-indexed from it.
	Repaired []string
}

// Reconcile audits the index against the jobstore and repairs drift
// in both directions: indexed jobs without a terminally done WAL are
// removed, and done WALs whose indexed cell count disagrees are
// re-indexed. cmd/twmd runs this at startup, after recovery scans the
// datadir and before resumed runs begin mutating either side.
func (w *Warehouse) Reconcile(store *jobstore.Store) (ReconcileStats, error) {
	indexed, err := w.IndexedJobs()
	if err != nil {
		return ReconcileStats{}, err
	}
	jobs, err := doneJobs(store)
	if err != nil {
		return ReconcileStats{}, err
	}
	var stats ReconcileStats
	done := make(map[uint64]bool, len(jobs))
	for _, j := range jobs {
		seq, _ := JobSeq(j.ID)
		done[seq] = true
		want := validResults(j.Done)
		if indexed[seq] == len(want) && len(want) > 0 {
			continue
		}
		if len(want) == 0 {
			// Nothing indexable in the WAL; drop any stale entries.
			if indexed[seq] != 0 {
				if _, err := w.RemoveJob(seq); err != nil {
					return stats, err
				}
				stats.Removed = append(stats.Removed, j.ID)
				metReconcileRemoved.Inc()
			}
			continue
		}
		if indexed[seq] != 0 {
			if _, err := w.RemoveJob(seq); err != nil {
				return stats, err
			}
		}
		if err := w.IndexJob(j.ID, j.Done); err != nil {
			return stats, err
		}
		stats.Repaired = append(stats.Repaired, j.ID)
		metReconcileRepaired.Inc()
	}
	for seq := range indexed {
		if done[seq] {
			continue
		}
		if _, err := w.RemoveJob(seq); err != nil {
			return stats, err
		}
		stats.Removed = append(stats.Removed, JobID(seq))
		metReconcileRemoved.Inc()
	}
	sort.Strings(stats.Removed)
	sort.Strings(stats.Repaired)
	return stats, nil
}
