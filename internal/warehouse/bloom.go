package warehouse

import "encoding/binary"

// bloom is a fixed-size bloom filter with double hashing. All
// operations are deterministic functions of the added keys, so a
// rebuilt warehouse reproduces identical filters.
type bloom struct {
	bits []uint64
	k    int
}

// newBloom sizes a filter for n keys at bitsPerKey bits each (10 bits
// per key ≈ 1% false positives with k=7).
func newBloom(n, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := bitsPerKey * 69 / 100 // ln 2 ≈ 0.69
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &bloom{bits: make([]uint64, (nbits+63)/64), k: k}
}

// add folds one pre-hashed key into the filter.
func (b *bloom) add(h uint64) {
	h2 := h>>33 | h<<31
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h + uint64(i)*h2) % n
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mightContain reports whether the key may have been added; false is
// definitive.
func (b *bloom) mightContain(h uint64) bool {
	h2 := h>>33 | h<<31
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h + uint64(i)*h2) % n
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// hashJob hashes a job sequence for the segment blooms (FNV-1a over
// the big-endian bytes).
func hashJob(seq uint64) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	h := uint64(14695981039346656037)
	for _, c := range buf {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// segJobs is the capacity of one bloom segment: after this many
// distinct jobs fold in, the warehouse rotates to a fresh segment.
// Segments bound each filter's false-positive rate as the index grows
// and keep the min/max job range per segment tight, so point lookups
// for absent jobs short-circuit on range or bloom without a tree
// descent.
const segJobs = 1024

// segment is one bloom filter over a contiguous run of ingested jobs.
type segment struct {
	bl     *bloom
	jobs   int
	minJob uint64
	maxJob uint64
}

// addJob folds a job into the newest segment, rotating when full.
// Returns the (possibly extended) segment list.
func addJob(segs []*segment, seq uint64) []*segment {
	if len(segs) == 0 || segs[len(segs)-1].jobs >= segJobs {
		segs = append(segs, &segment{bl: newBloom(segJobs, 10), minJob: seq, maxJob: seq})
	}
	s := segs[len(segs)-1]
	s.bl.add(hashJob(seq))
	s.jobs++
	if seq < s.minJob {
		s.minJob = seq
	}
	if seq > s.maxJob {
		s.maxJob = seq
	}
	return segs
}

// mightContainJob reports whether any segment may hold the job.
func mightContainJob(segs []*segment, seq uint64) bool {
	for _, s := range segs {
		if seq < s.minJob || seq > s.maxJob {
			continue
		}
		if s.bl.mightContain(hashJob(seq)) {
			return true
		}
	}
	return false
}
