package warehouse

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Page type tags; page 0 is the meta page, so 0 doubles as the "no
// page" sentinel in next-leaf links and the roots.
const (
	pageLeaf     = 1
	pageInternal = 2
)

// node is the decoded in-memory form of one tree page. Decoding
// copies every key and value out of the pager's buffer, so nodes stay
// valid across later pager calls (which may evict the backing page).
type node struct {
	leaf bool
	next uint32   // leaf: right sibling (0 = none)
	keys [][]byte // sorted
	vals [][]byte // leaf: len(keys) values
	kids []uint32 // internal: len(keys)+1 children
}

// leafHeader is the fixed prefix of a leaf page: tag, key count, next
// pointer. Internal pages reuse the same prefix with the next field
// holding child 0.
const nodeHeader = 1 + 2 + 4

// size returns the node's encoded length in bytes.
func (n *node) size() int {
	sz := nodeHeader
	if n.leaf {
		for i, k := range n.keys {
			sz += 4 + len(k) + len(n.vals[i])
		}
	} else {
		for _, k := range n.keys {
			sz += 2 + len(k) + 4
		}
	}
	return sz
}

// encode serializes the node into a fresh zero-padded page buffer.
func (n *node) encode(pageSize int) ([]byte, error) {
	if n.size() > pageSize {
		return nil, fmt.Errorf("warehouse: node overflows page: %d > %d", n.size(), pageSize)
	}
	buf := make([]byte, pageSize)
	if n.leaf {
		buf[0] = pageLeaf
	} else {
		buf[0] = pageInternal
	}
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	off := nodeHeader
	if n.leaf {
		binary.BigEndian.PutUint32(buf[3:7], n.next)
		for i, k := range n.keys {
			v := n.vals[i]
			binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
			binary.BigEndian.PutUint16(buf[off+2:], uint16(len(v)))
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], v)
		}
	} else {
		binary.BigEndian.PutUint32(buf[3:7], n.kids[0])
		for i, k := range n.keys {
			binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			binary.BigEndian.PutUint32(buf[off:], n.kids[i+1])
			off += 4
		}
	}
	return buf, nil
}

// decodeNode parses a page buffer, copying keys and values out of it.
func decodeNode(buf []byte) (*node, error) {
	if len(buf) < nodeHeader {
		return nil, fmt.Errorf("warehouse: short page")
	}
	n := &node{}
	nkeys := int(binary.BigEndian.Uint16(buf[1:3]))
	off := nodeHeader
	switch buf[0] {
	case pageLeaf:
		n.leaf = true
		n.next = binary.BigEndian.Uint32(buf[3:7])
		n.keys = make([][]byte, 0, nkeys)
		n.vals = make([][]byte, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("warehouse: truncated leaf entry")
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			vl := int(binary.BigEndian.Uint16(buf[off+2:]))
			off += 4
			if off+kl+vl > len(buf) {
				return nil, fmt.Errorf("warehouse: leaf entry overruns page")
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			n.vals = append(n.vals, append([]byte(nil), buf[off+kl:off+kl+vl]...))
			off += kl + vl
		}
	case pageInternal:
		n.kids = make([]uint32, 1, nkeys+1)
		n.kids[0] = binary.BigEndian.Uint32(buf[3:7])
		n.keys = make([][]byte, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			if off+2 > len(buf) {
				return nil, fmt.Errorf("warehouse: truncated internal entry")
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+kl+4 > len(buf) {
				return nil, fmt.Errorf("warehouse: internal entry overruns page")
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			off += kl
			n.kids = append(n.kids, binary.BigEndian.Uint32(buf[off:]))
			off += 4
		}
	default:
		return nil, fmt.Errorf("warehouse: page tag 0x%02x is not a node", buf[0])
	}
	return n, nil
}

// tree is one paged B+-tree over order-preserving byte keys. It
// supports idempotent insert, point get, lazy delete, and in-order
// range scans via the leaf sibling chain. Methods are not safe for
// concurrent use — the Warehouse serializes whole operations.
//
// Delete is lazy: it removes the entry from its leaf without merging
// or rebalancing, so heavy deletion leaves sparse pages behind. The
// warehouse is a derived, rebuildable view, and a rebuild from the
// WALs compacts the file; trading space for a radically simpler
// structure is the right call here.
type tree struct {
	pg   *Pager
	root uint32
}

// newTree allocates an empty tree (a zero-key leaf root).
func newTree(pg *Pager) (*tree, error) {
	id := pg.Alloc()
	t := &tree{pg: pg, root: id}
	buf, err := (&node{leaf: true}).encode(pg.PageSize())
	if err != nil {
		return nil, err
	}
	return t, pg.WritePage(id, buf)
}

// readNode loads and decodes one page.
func (t *tree) readNode(id uint32) (*node, error) {
	buf, err := t.pg.ReadPage(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(buf)
}

// writeNode encodes and stores one page.
func (t *tree) writeNode(id uint32, n *node) error {
	buf, err := n.encode(t.pg.PageSize())
	if err != nil {
		return err
	}
	return t.pg.WritePage(id, buf)
}

// childIndex returns which child of an internal node covers key.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
}

// leafPos returns the position of the first key ≥ key in a leaf.
func leafPos(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
}

// pathEl is one step of a root-to-leaf descent.
type pathEl struct {
	id  uint32
	n   *node
	idx int // child index taken
}

// descend walks from the root to the leaf covering key, returning the
// internal path (for split propagation) and the leaf.
func (t *tree) descend(key []byte) (path []pathEl, leafID uint32, leaf *node, err error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, 0, nil, err
		}
		if n.leaf {
			return path, id, n, nil
		}
		idx := childIndex(n, key)
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.kids[idx]
	}
}

// insert adds (key, val); an existing key is left untouched and
// reported, making journal replay and settle-time backfill idempotent.
func (t *tree) insert(key, val []byte) (added bool, err error) {
	path, leafID, leaf, err := t.descend(key)
	if err != nil {
		return false, err
	}
	pos := leafPos(leaf, key)
	if pos < len(leaf.keys) && bytes.Equal(leaf.keys[pos], key) {
		return false, nil
	}
	leaf.keys = append(leaf.keys, nil)
	copy(leaf.keys[pos+1:], leaf.keys[pos:])
	leaf.keys[pos] = append([]byte(nil), key...)
	leaf.vals = append(leaf.vals, nil)
	copy(leaf.vals[pos+1:], leaf.vals[pos:])
	leaf.vals[pos] = append([]byte(nil), val...)

	if leaf.size() <= t.pg.PageSize() {
		return true, t.writeNode(leafID, leaf)
	}
	// Split the leaf: left keeps the page id (parent pointers stay
	// valid), right is fresh and linked as the sibling.
	mid := len(leaf.keys) / 2
	right := &node{leaf: true, next: leaf.next,
		keys: leaf.keys[mid:], vals: leaf.vals[mid:]}
	rightID := t.pg.Alloc()
	leaf.keys, leaf.vals, leaf.next = leaf.keys[:mid:mid], leaf.vals[:mid:mid], rightID
	if err := t.writeNode(rightID, right); err != nil {
		return false, err
	}
	if err := t.writeNode(leafID, leaf); err != nil {
		return false, err
	}
	sep := append([]byte(nil), right.keys[0]...)
	return true, t.insertParent(path, sep, rightID)
}

// insertParent propagates a split separator up the recorded path,
// splitting internal nodes as needed and growing a new root when the
// split reaches the top.
func (t *tree) insertParent(path []pathEl, sep []byte, rightID uint32) error {
	for len(path) > 0 {
		el := path[len(path)-1]
		path = path[:len(path)-1]
		n, idx := el.n, el.idx
		n.keys = append(n.keys, nil)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = sep
		n.kids = append(n.kids, 0)
		copy(n.kids[idx+2:], n.kids[idx+1:])
		n.kids[idx+1] = rightID
		if n.size() <= t.pg.PageSize() {
			return t.writeNode(el.id, n)
		}
		mid := len(n.keys) / 2
		upSep := n.keys[mid]
		right := &node{keys: append([][]byte(nil), n.keys[mid+1:]...),
			kids: append([]uint32(nil), n.kids[mid+1:]...)}
		n.keys = n.keys[:mid:mid]
		n.kids = n.kids[: mid+1 : mid+1]
		newRight := t.pg.Alloc()
		if err := t.writeNode(newRight, right); err != nil {
			return err
		}
		if err := t.writeNode(el.id, n); err != nil {
			return err
		}
		sep, rightID = upSep, newRight
	}
	// The root itself split: grow the tree by one level.
	newRoot := t.pg.Alloc()
	n := &node{keys: [][]byte{sep}, kids: []uint32{t.root, rightID}}
	if err := t.writeNode(newRoot, n); err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// get returns the value stored under key.
func (t *tree) get(key []byte) ([]byte, bool, error) {
	_, _, leaf, err := t.descend(key)
	if err != nil {
		return nil, false, err
	}
	pos := leafPos(leaf, key)
	if pos < len(leaf.keys) && bytes.Equal(leaf.keys[pos], key) {
		return leaf.vals[pos], true, nil
	}
	return nil, false, nil
}

// delete removes key from its leaf (lazily — see the type comment).
func (t *tree) delete(key []byte) (removed bool, err error) {
	_, leafID, leaf, err := t.descend(key)
	if err != nil {
		return false, err
	}
	pos := leafPos(leaf, key)
	if pos >= len(leaf.keys) || !bytes.Equal(leaf.keys[pos], key) {
		return false, nil
	}
	leaf.keys = append(leaf.keys[:pos], leaf.keys[pos+1:]...)
	leaf.vals = append(leaf.vals[:pos], leaf.vals[pos+1:]...)
	return true, t.writeNode(leafID, leaf)
}

// scan walks entries with key ≥ start in order, calling fn until it
// returns false or the tree is exhausted. The key and value slices
// are owned by the scan; fn may retain them.
func (t *tree) scan(start []byte, fn func(k, v []byte) bool) error {
	_, _, leaf, err := t.descend(start)
	if err != nil {
		return err
	}
	pos := leafPos(leaf, start)
	for {
		for ; pos < len(leaf.keys); pos++ {
			if !fn(leaf.keys[pos], leaf.vals[pos]) {
				return nil
			}
		}
		if leaf.next == 0 {
			return nil
		}
		leaf, err = t.readNode(leaf.next)
		if err != nil {
			return err
		}
		pos = 0
	}
}
