package warehouse

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"fmt"
)

// DefaultQueryLimit is the page size a Query gets when it asks for
// none, and MaxQueryLimit the most records one page may return.
const (
	DefaultQueryLimit = 100
	MaxQueryLimit     = 1000
)

// maxScanPerQuery bounds how many index entries one Search call may
// examine. A highly selective in-scan filter (say Mode over a huge
// job range) could otherwise walk the whole tree inside one request;
// hitting the cap returns a continuation token instead, keeping
// per-request latency bounded.
const maxScanPerQuery = 4096

// Query selects indexed records by grid dimensions and job range.
// Zero-valued fields match everything: empty strings and zero ints
// mean "any", MaxJob 0 means "no upper bound".
//
// The planner uses the dimension tree when Test is set, narrowing the
// scan prefix by each further dimension set consecutively in key
// order (Width, then Words, then Scheme); otherwise it range-scans
// the primary tree by job sequence. Whatever the plan cannot pin —
// including Mode, which is never part of a key — is filtered in-scan.
type Query struct {
	// Test, Scheme and Mode filter their dimension exactly; empty
	// matches any.
	Test   string
	Scheme string
	Mode   string
	// Width and Words filter the memory geometry; 0 matches any.
	Width int
	Words int
	// MinJob and MaxJob bound the job sequence, inclusive. MaxJob 0
	// means unbounded.
	MinJob uint64
	MaxJob uint64
	// Limit caps records per page (DefaultQueryLimit when 0, clamped
	// to MaxQueryLimit).
	Limit int
	// PageToken resumes a prior Result at its NextToken.
	PageToken string
}

// limit returns the effective page size.
func (q Query) limit() int {
	if q.Limit <= 0 {
		return DefaultQueryLimit
	}
	if q.Limit > MaxQueryLimit {
		return MaxQueryLimit
	}
	return q.Limit
}

// maxJob returns the effective inclusive upper bound.
func (q Query) maxJob() uint64 {
	if q.MaxJob == 0 {
		return ^uint64(0)
	}
	return q.MaxJob
}

// matches applies the filters a scan plan could not pin into its key
// range.
func (q Query) matches(r Record) bool {
	if q.Test != "" && r.Dim.Test != q.Test {
		return false
	}
	if q.Width != 0 && r.Dim.Width != q.Width {
		return false
	}
	if q.Words != 0 && r.Dim.Words != q.Words {
		return false
	}
	if q.Scheme != "" && r.Dim.Scheme != q.Scheme {
		return false
	}
	if q.Mode != "" && r.Dim.Mode != q.Mode {
		return false
	}
	return r.Job >= q.MinJob && r.Job <= q.maxJob()
}

// Result is one page of a Search.
type Result struct {
	// Records are the matches, in plan order: dimension-key order for
	// dimension-tree scans, (job, cell) order for primary scans.
	Records []Record
	// NextToken resumes the scan where this page stopped; empty when
	// the scan is exhausted.
	NextToken string
	// Scanned counts index entries examined to build the page — the
	// observable gap between a tight index plan and a filter-heavy one.
	Scanned int
}

// Plan markers, recorded in page tokens so a continuation resumes the
// same scan it left.
const (
	planDim     = 'd'
	planPrimary = 'p'
)

// plan returns which tree the query scans.
func (q Query) plan() byte {
	if q.Test != "" {
		return planDim
	}
	return planPrimary
}

// dimPrefix builds the dimension-tree scan prefix: each dimension set
// consecutively in key order extends it. Returns the prefix and
// whether all four key dimensions are pinned (so MinJob can extend
// the start key too).
func (q Query) dimPrefix() (prefix []byte, full bool) {
	prefix = appendEscaped(nil, q.Test)
	if q.Width == 0 {
		return prefix, false
	}
	prefix = binary.BigEndian.AppendUint32(prefix, uint32(q.Width))
	if q.Words == 0 {
		return prefix, false
	}
	prefix = binary.BigEndian.AppendUint32(prefix, uint32(q.Words))
	if q.Scheme == "" {
		return prefix, false
	}
	return appendEscaped(prefix, q.Scheme), true
}

// encodeToken renders a continuation token: the plan marker plus the
// last examined key, base64 for URL safety.
func encodeToken(plan byte, lastKey []byte) string {
	raw := make([]byte, 0, 1+len(lastKey))
	raw = append(raw, plan)
	raw = append(raw, lastKey...)
	return base64.RawURLEncoding.EncodeToString(raw)
}

// decodeToken parses a PageToken and checks it belongs to this
// query's plan.
func decodeToken(tok string, plan byte) ([]byte, error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil || len(raw) < 1 {
		return nil, fmt.Errorf("warehouse: malformed page token")
	}
	if raw[0] != plan {
		return nil, fmt.Errorf("warehouse: page token does not match this query")
	}
	return raw[1:], nil
}

// Search runs one page of the query against the index. It touches
// only index pages — never the WALs — and bounds its work by the page
// limit and maxScanPerQuery.
func (w *Warehouse) Search(q Query) (Result, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	metQueries.Inc()
	if q.MinJob > q.maxJob() {
		return Result{}, nil
	}

	plan := q.plan()
	var start, prefix []byte
	var full bool
	if plan == planDim {
		prefix, full = q.dimPrefix()
		start = prefix
		if full && q.MinJob > 0 {
			start = binary.BigEndian.AppendUint64(append([]byte(nil), prefix...), q.MinJob)
		}
	} else {
		start = priKey(q.MinJob, 0)
	}
	if q.PageToken != "" {
		after, err := decodeToken(q.PageToken, plan)
		if err != nil {
			return Result{}, err
		}
		// Resume exclusively: one zero byte past the last examined key
		// is the smallest key strictly greater than it.
		start = append(after, 0x00)
	}

	limit := q.limit()
	res := Result{}
	var lastKey []byte
	more := false
	scan := func(k, v []byte) bool {
		rec, job, ok := w.entryRecord(plan, k, v)
		if !ok {
			return false // corrupt entry: stop rather than skip silently
		}
		if plan == planDim {
			if !bytes.HasPrefix(k, prefix) {
				return false // past the dimension prefix: done
			}
			if full && job > q.maxJob() {
				// All key dimensions pinned, so within the prefix keys
				// sort by job: past the range means done. With a partial
				// prefix, later keys can rewind to smaller jobs, so only
				// the in-scan filter applies.
				return false
			}
		} else if job > q.maxJob() {
			return false
		}
		res.Scanned++
		lastKey = k
		if q.matches(rec) {
			res.Records = append(res.Records, rec)
		}
		if len(res.Records) >= limit || res.Scanned >= maxScanPerQuery {
			more = true
			return false
		}
		return true
	}
	if plan == planDim {
		if err := w.dim.scan(start, scan); err != nil {
			return Result{}, err
		}
	} else {
		if err := w.pri.scan(start, scan); err != nil {
			return Result{}, err
		}
	}
	if more && lastKey != nil {
		res.NextToken = encodeToken(plan, lastKey)
	}
	metQueryResults.Add(float64(len(res.Records)))
	return res, nil
}

// entryRecord decodes one scanned index entry into a Record according
// to the plan's key shape.
func (w *Warehouse) entryRecord(plan byte, k, v []byte) (Record, uint64, bool) {
	if plan == planDim {
		key, err := DecodeKey(k)
		if err != nil {
			return Record{}, 0, false
		}
		rec, err := decodeValue(key.Job, key.Cell, v)
		if err != nil {
			return Record{}, 0, false
		}
		return rec, key.Job, true
	}
	if len(k) != 12 {
		return Record{}, 0, false
	}
	job := binary.BigEndian.Uint64(k)
	rec, err := decodeValue(job, binary.BigEndian.Uint32(k[8:]), v)
	if err != nil {
		return Record{}, 0, false
	}
	return rec, job, true
}
