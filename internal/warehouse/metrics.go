package warehouse

import "twmarch/internal/obs"

// Warehouse metrics, registered against the process-default registry
// so cmd/twmd's /metrics surface exports them without extra wiring.
// The pager counters make the page-cache hit rate observable
// (hits / (hits + misses)); the rest account for the index's write,
// read, and repair paths.
var (
	metPagerHits = obs.NewCounter("twm_warehouse_pager_hits_total",
		"warehouse page reads served from the LRU page cache").With()
	metPagerMisses = obs.NewCounter("twm_warehouse_pager_misses_total",
		"warehouse page reads that went to disk").With()
	metPagerEvictions = obs.NewCounter("twm_warehouse_pager_evictions_total",
		"warehouse pages evicted from the cache (dirty evictions write back first)").With()
	metInserts = obs.NewCounter("twm_warehouse_inserts_total",
		"cell records inserted into the warehouse index").With()
	metDeletes = obs.NewCounter("twm_warehouse_deletes_total",
		"cell records deleted from the warehouse index").With()
	metQueries = obs.NewCounter("twm_warehouse_queries_total",
		"warehouse range/point queries served").With()
	metQueryResults = obs.NewCounter("twm_warehouse_query_results_total",
		"cell records returned by warehouse queries").With()
	metBloomSkips = obs.NewCounter("twm_warehouse_bloom_short_circuits_total",
		"point lookups answered 'absent' by the segment bloom filters without touching a page").With()
	metCheckpoints = obs.NewCounter("twm_warehouse_checkpoints_total",
		"warehouse checkpoints (dirty pages flushed, clean marker written)").With()
	metRebuilds = obs.NewCounter("twm_warehouse_rebuilds_total",
		"full index rebuilds from the jobstore WALs").With()
	metReconcileRemoved = obs.NewCounter("twm_warehouse_reconcile_removed_total",
		"indexed jobs dropped by startup reconciliation (absent or non-terminal in the jobstore)").With()
	metReconcileRepaired = obs.NewCounter("twm_warehouse_reconcile_repaired_total",
		"indexed jobs re-indexed by startup reconciliation (cell count drifted from the WAL)").With()
	metIngestErrors = obs.NewCounter("twm_warehouse_ingest_errors_total",
		"cell results the ingest sink failed to index").With()
	metPages = obs.NewGauge("twm_warehouse_pages",
		"pages allocated in the warehouse index file").With()
	metJobs = obs.NewGauge("twm_warehouse_jobs",
		"distinct jobs currently indexed in the warehouse").With()
)
