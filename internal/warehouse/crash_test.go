package warehouse

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"twmarch/internal/jobstore"
)

// TestWarehouseCrashHelper is the child half of
// TestCrashConsistency: it runs only when re-exec'd with the env
// gate, ingests past a checkpoint into the index named by the
// environment, and spins until the parent SIGKILLs it mid-write.
func TestWarehouseCrashHelper(t *testing.T) {
	dir := os.Getenv("TWM_WAREHOUSE_CRASH_DIR")
	if dir == "" {
		t.Skip("not a crash-helper invocation")
	}
	store, err := jobstore.Open(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(filepath.Join(dir, "live.idx"), Options{PageSize: 512, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := doneJobs(store)
	if err != nil || len(jobs) == 0 {
		t.Fatalf("helper sees no jobs: %v", err)
	}
	// Index the first job and checkpoint: a clean, durable prefix.
	if err := w.IndexJob(jobs[0].ID, jobs[0].Done); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// First post-checkpoint insert: ensureDirty has now synced the
	// dirty marker, so however the parent's SIGKILL lands from here on,
	// the on-disk file reads as dirty.
	if err := w.IndexJob(jobs[1].ID, jobs[1].Done); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ready"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Keep mutating without ever checkpointing until the kill arrives.
	for seq := uint64(1 << 20); ; seq++ {
		for _, j := range jobs {
			if err := w.IndexJob(JobID(seq), j.Done); err != nil {
				t.Fatal(err)
			}
			seq++
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashConsistency SIGKILLs a warehouse mid-ingest, then verifies
// the crashed index is refused as dirty and that RebuildFromWAL
// restores it byte-identical to an index built from a pristine
// process — the WAL-is-truth contract, end to end.
func TestCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test")
	}
	dir := t.TempDir()
	store := seedStore(t, filepath.Join(dir, "jobs"), 6)

	// Pristine reference build from the same journals.
	pristine := filepath.Join(dir, "pristine.idx")
	wp, err := RebuildFromWAL(pristine, Options{PageSize: 512, CachePages: 8}, store)
	if err != nil {
		t.Fatal(err)
	}
	if err := wp.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run", "TestWarehouseCrashHelper", "-test.v")
	cmd.Env = append(os.Environ(), "TWM_WAREHOUSE_CRASH_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := filepath.Join(dir, "ready")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper never became ready; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The crashed file must refuse to open...
	live := filepath.Join(dir, "live.idx")
	if _, err := Open(live, Options{PageSize: 512}); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("open of crashed index: %v, want ErrNeedsRebuild", err)
	}
	// ...and rebuild to exactly the pristine bytes, twice.
	for round := 0; round < 2; round++ {
		w, err := RebuildFromWAL(live, Options{PageSize: 512, CachePages: 8}, store)
		if err != nil {
			t.Fatalf("rebuild round %d: %v", round, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(live)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(pristine)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rebuild round %d differs from pristine: %d vs %d bytes", round, len(got), len(want))
		}
	}
}
