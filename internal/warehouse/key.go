package warehouse

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
)

// Key is the composite dimension key the warehouse indexes campaign
// cell results under: the grid dimensions first (march test, word
// width, memory size, scheme), then the job sequence and the cell
// index to make the key unique. Encode is order-preserving —
// bytes.Compare over encoded keys equals Compare over the tuples — so
// a B+-tree over encoded keys serves dimension-range scans like
// "test=S5, every width, jobs 9000..10000" as one contiguous walk.
//
// Mode is deliberately not part of the key: the issue's query shapes
// filter by grid dimensions and job ranges, and folding mode into the
// scan filter keeps keys shorter. It travels in the record value.
type Key struct {
	// Test is the catalog march-test name.
	Test string
	// Width and Words give the memory geometry.
	Width uint32
	Words uint32
	// Scheme names the transformation ("twm", "scheme1").
	Scheme string
	// Job is the numeric job sequence (JobSeq of the twmd job id).
	Job uint64
	// Cell is the cell's grid index within its job.
	Cell uint32
}

// appendEscaped appends an order-preserving encoding of s: each 0x00
// byte is escaped to 0x00 0x01 and the value is terminated by
// 0x00 0x00. Because the escape byte (0x01) is greater than the
// terminator's second byte (0x00), a proper prefix still sorts before
// its extensions and lexicographic order over the raw strings is
// preserved over the encodings.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0x01)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00, 0x00)
}

// readEscaped decodes one appendEscaped value from b, returning the
// string and the remaining bytes.
func readEscaped(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("warehouse: truncated escaped string")
		}
		switch b[i+1] {
		case 0x00:
			return string(out), b[i+2:], nil
		case 0x01:
			out = append(out, 0x00)
			i++
		default:
			return "", nil, fmt.Errorf("warehouse: invalid escape byte 0x%02x", b[i+1])
		}
	}
	return "", nil, fmt.Errorf("warehouse: unterminated escaped string")
}

// Encode appends the order-preserving byte form of the key to dst.
func (k Key) Encode(dst []byte) []byte {
	dst = appendEscaped(dst, k.Test)
	dst = binary.BigEndian.AppendUint32(dst, k.Width)
	dst = binary.BigEndian.AppendUint32(dst, k.Words)
	dst = appendEscaped(dst, k.Scheme)
	dst = binary.BigEndian.AppendUint64(dst, k.Job)
	dst = binary.BigEndian.AppendUint32(dst, k.Cell)
	return dst
}

// DecodeKey parses an Encode-d key.
func DecodeKey(b []byte) (Key, error) {
	var k Key
	var err error
	if k.Test, b, err = readEscaped(b); err != nil {
		return Key{}, err
	}
	if len(b) < 8 {
		return Key{}, fmt.Errorf("warehouse: truncated key ints")
	}
	k.Width = binary.BigEndian.Uint32(b)
	k.Words = binary.BigEndian.Uint32(b[4:])
	b = b[8:]
	if k.Scheme, b, err = readEscaped(b); err != nil {
		return Key{}, err
	}
	if len(b) != 12 {
		return Key{}, fmt.Errorf("warehouse: key tail is %d bytes, want 12", len(b))
	}
	k.Job = binary.BigEndian.Uint64(b)
	k.Cell = binary.BigEndian.Uint32(b[8:])
	return k, nil
}

// Compare orders keys as tuples: Test, Width, Words, Scheme, Job,
// Cell, strings lexicographic and integers numeric. It is the
// specification Encode must preserve (FuzzKeyCodecRoundTrip holds the
// two orders equal).
func (k Key) Compare(o Key) int {
	if c := bytes.Compare([]byte(k.Test), []byte(o.Test)); c != 0 {
		return c
	}
	if k.Width != o.Width {
		return cmpU64(uint64(k.Width), uint64(o.Width))
	}
	if k.Words != o.Words {
		return cmpU64(uint64(k.Words), uint64(o.Words))
	}
	if c := bytes.Compare([]byte(k.Scheme), []byte(o.Scheme)); c != 0 {
		return c
	}
	if k.Job != o.Job {
		return cmpU64(k.Job, o.Job)
	}
	return cmpU64(uint64(k.Cell), uint64(o.Cell))
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// priKey is the primary-index key: (job, cell) big-endian, so the
// primary tree clusters every cell of a job contiguously in job-
// sequence order.
func priKey(job uint64, cell uint32) []byte {
	b := make([]byte, 0, 12)
	b = binary.BigEndian.AppendUint64(b, job)
	return binary.BigEndian.AppendUint32(b, cell)
}

// JobSeq parses a twmd job id ("c<seq>") into the numeric sequence
// the warehouse keys on. Ids not of that shape are not indexable.
func JobSeq(id string) (uint64, bool) {
	if len(id) < 2 || id[0] != 'c' {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// JobID formats a job sequence back into the twmd job id.
func JobID(seq uint64) string { return "c" + strconv.FormatUint(seq, 10) }
