package warehouse

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// testPager opens a small-page pager backed by a temp file so splits
// happen after a handful of keys.
func testPager(t *testing.T, pageSize, cachePages int) *Pager {
	t.Helper()
	pg, err := openPager(filepath.Join(t.TempDir(), "idx"), pageSize, cachePages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	return pg
}

func TestTreeInsertGetScan(t *testing.T) {
	pg := testPager(t, 256, 8)
	pg.Alloc() // reserve page 0 like the warehouse meta does
	tr, err := newTree(pg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	// Insert in a scrambled but deterministic order.
	for i := 0; i < n; i++ {
		j := (i * 263) % n
		k := []byte(fmt.Sprintf("key%04d", j))
		added, err := tr.insert(k, []byte(fmt.Sprintf("val%04d", j)))
		if err != nil {
			t.Fatalf("insert %d: %v", j, err)
		}
		if !added {
			t.Fatalf("insert %d: reported duplicate", j)
		}
	}
	// Duplicate inserts are no-ops.
	if added, err := tr.insert([]byte("key0007"), []byte("other")); err != nil || added {
		t.Fatalf("dup insert: added=%v err=%v", added, err)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		v, ok, err := tr.get(k)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		want := fmt.Sprintf("val%04d", i)
		if string(v) != want {
			t.Fatalf("get %d: %q, want %q", i, v, want)
		}
	}
	if _, ok, _ := tr.get([]byte("missing")); ok {
		t.Fatal("get of absent key reported present")
	}
	// Full scan returns every key in order.
	var got []string
	if err := tr.scan(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan returned %d keys, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order at %d: %q then %q", i, got[i-1], got[i])
		}
	}
	// Bounded scan starts at the right key.
	var first string
	tr.scan([]byte("key0250"), func(k, v []byte) bool { first = string(k); return false })
	if first != "key0250" {
		t.Fatalf("scan start = %q, want key0250", first)
	}
}

func TestTreeDelete(t *testing.T) {
	pg := testPager(t, 256, 8)
	pg.Alloc()
	tr, err := newTree(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := tr.insert([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		removed, err := tr.delete([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !removed {
			t.Fatalf("delete %d: removed=%v err=%v", i, removed, err)
		}
	}
	if removed, err := tr.delete([]byte("k000")); err != nil || removed {
		t.Fatalf("re-delete: removed=%v err=%v", removed, err)
	}
	count := 0
	tr.scan(nil, func(k, v []byte) bool { count++; return true })
	if count != 100 {
		t.Fatalf("after deletes scan sees %d keys, want 100", count)
	}
	for i := 1; i < 200; i += 2 {
		if _, ok, _ := tr.get([]byte(fmt.Sprintf("k%03d", i))); !ok {
			t.Fatalf("odd key %d lost", i)
		}
	}
}

func TestTreeSurvivesCacheEviction(t *testing.T) {
	// A 2-page cache forces constant eviction and re-read from disk.
	pg := testPager(t, 256, 2)
	pg.Alloc()
	tr, err := newTree(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tr.insert([]byte(fmt.Sprintf("key%04d", i)), bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		v, ok, err := tr.get([]byte(fmt.Sprintf("key%04d", i)))
		if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 16)) {
			t.Fatalf("get %d under eviction pressure: ok=%v err=%v", i, ok, err)
		}
	}
	if s := pg.Stats(); s.Evictions == 0 || s.Misses == 0 {
		t.Fatalf("expected evictions and misses with a 2-page cache, got %+v", s)
	}
}
