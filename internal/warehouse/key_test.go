package warehouse

import (
	"bytes"
	"testing"
)

func TestKeyCodecRoundTrip(t *testing.T) {
	keys := []Key{
		{},
		{Test: "S5", Width: 8, Words: 64, Scheme: "twm", Job: 42, Cell: 7},
		{Test: "March C-", Width: 1, Words: 1, Scheme: "scheme1", Job: 1, Cell: 0},
		{Test: "a\x00b", Width: 0, Words: 0, Scheme: "\x00\x00", Job: ^uint64(0), Cell: ^uint32(0)},
	}
	for _, k := range keys {
		got, err := DecodeKey(k.Encode(nil))
		if err != nil {
			t.Fatalf("decode %+v: %v", k, err)
		}
		if got != k {
			t.Fatalf("round trip: %+v != %+v", got, k)
		}
	}
}

func TestJobSeq(t *testing.T) {
	if seq, ok := JobSeq("c17"); !ok || seq != 17 {
		t.Fatalf("JobSeq(c17) = %d, %v", seq, ok)
	}
	for _, bad := range []string{"", "c", "17", "x17", "c-1", "c1x"} {
		if _, ok := JobSeq(bad); ok {
			t.Fatalf("JobSeq(%q) accepted", bad)
		}
	}
	if JobID(17) != "c17" {
		t.Fatalf("JobID(17) = %q", JobID(17))
	}
}

// sign collapses a comparison to {-1, 0, 1}.
func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// FuzzKeyCodecRoundTrip holds the codec's two contracts: DecodeKey
// inverts Encode, and bytes.Compare over encodings equals Compare
// over the tuples (the order-preserving property every range scan
// rests on).
func FuzzKeyCodecRoundTrip(f *testing.F) {
	f.Add("S5", uint32(8), uint32(64), "twm", uint64(42), uint32(7),
		"March C-", uint32(4), uint32(64), "scheme1", uint64(41), uint32(7))
	f.Add("a\x00", uint32(0), uint32(0), "", uint64(0), uint32(0),
		"a", uint32(1), uint32(0), "\x00", uint64(1), uint32(1))
	f.Add("", ^uint32(0), uint32(1), "x", ^uint64(0), uint32(2),
		"", ^uint32(0), uint32(1), "x", ^uint64(0), uint32(2))
	f.Fuzz(func(t *testing.T,
		t1 string, w1, d1 uint32, s1 string, j1 uint64, c1 uint32,
		t2 string, w2, d2 uint32, s2 string, j2 uint64, c2 uint32) {
		k1 := Key{Test: t1, Width: w1, Words: d1, Scheme: s1, Job: j1, Cell: c1}
		k2 := Key{Test: t2, Width: w2, Words: d2, Scheme: s2, Job: j2, Cell: c2}
		e1, e2 := k1.Encode(nil), k2.Encode(nil)
		for _, pair := range []struct {
			k Key
			e []byte
		}{{k1, e1}, {k2, e2}} {
			got, err := DecodeKey(pair.e)
			if err != nil {
				t.Fatalf("decode %+v: %v", pair.k, err)
			}
			if got != pair.k {
				t.Fatalf("round trip: %+v != %+v", got, pair.k)
			}
		}
		if be, tu := sign(bytes.Compare(e1, e2)), sign(k1.Compare(k2)); be != tu {
			t.Fatalf("order disagreement: bytes %d, tuples %d for %+v vs %+v", be, tu, k1, k2)
		}
	})
}
