package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnes(t *testing.T) {
	cases := []struct {
		width int
		want  Word
	}{
		{0, Word{}},
		{1, Word{Lo: 1}},
		{4, Word{Lo: 0xf}},
		{8, Word{Lo: 0xff}},
		{63, Word{Lo: 0x7fffffffffffffff}},
		{64, Word{Lo: ^uint64(0)}},
		{65, Word{Hi: 1, Lo: ^uint64(0)}},
		{127, Word{Hi: 0x7fffffffffffffff, Lo: ^uint64(0)}},
		{128, Word{Hi: ^uint64(0), Lo: ^uint64(0)}},
	}
	for _, c := range cases {
		if got := Ones(c.width); got != c.want {
			t.Errorf("Ones(%d) = %v, want %v", c.width, got, c.want)
		}
	}
}

func TestOnesPanicsOutOfRange(t *testing.T) {
	for _, w := range []int{-1, 129} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ones(%d) did not panic", w)
				}
			}()
			Ones(w)
		}()
	}
}

func TestBitSetBit(t *testing.T) {
	var w Word
	for _, i := range []int{0, 1, 31, 63, 64, 65, 100, 127} {
		if got := w.Bit(i); got != 0 {
			t.Fatalf("zero word bit %d = %d", i, got)
		}
		w2 := w.SetBit(i, 1)
		if got := w2.Bit(i); got != 1 {
			t.Fatalf("after SetBit(%d,1), bit = %d", i, got)
		}
		// Other bits untouched.
		for _, j := range []int{0, 63, 64, 127} {
			if j == i {
				continue
			}
			if got := w2.Bit(j); got != 0 {
				t.Fatalf("SetBit(%d,1) disturbed bit %d", i, j)
			}
		}
		if got := w2.SetBit(i, 0); !got.IsZero() {
			t.Fatalf("SetBit(%d,0) = %v, want zero", i, got)
		}
	}
}

func TestSetBitPanicsOnBadValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetBit with value 2 did not panic")
		}
	}()
	Zero.SetBit(0, 2)
}

func TestFlipBit(t *testing.T) {
	w := Zero
	for _, i := range []int{0, 63, 64, 127} {
		w = w.FlipBit(i)
		if w.Bit(i) != 1 {
			t.Fatalf("flip set bit %d failed", i)
		}
		w = w.FlipBit(i)
		if w.Bit(i) != 0 {
			t.Fatalf("flip clear bit %d failed", i)
		}
	}
}

func TestNotRespectsWidth(t *testing.T) {
	w := FromUint64(0b0101)
	got := w.Not(4)
	if got != FromUint64(0b1010) {
		t.Fatalf("Not(4) = %v, want 1010", got.Bits(4))
	}
	// High bits must remain clear.
	if got.Hi != 0 || got.Lo>>4 != 0 {
		t.Fatalf("Not(4) leaked outside width: %v", got)
	}
	w65 := Word{Hi: 1, Lo: 0}
	if got := w65.Not(65); got != (Word{Hi: 0, Lo: ^uint64(0)}) {
		t.Fatalf("Not(65) = %v", got)
	}
}

func TestShifts(t *testing.T) {
	one := FromUint64(1)
	for i := 0; i < 128; i++ {
		w := one.Shl(i)
		if w.Bit(i) != 1 || w.OnesCount() != 1 {
			t.Fatalf("Shl(%d): got %v", i, w)
		}
		back := w.Shr(i)
		if back != one {
			t.Fatalf("Shr(%d) round trip: got %v", i, back)
		}
	}
	if !one.Shl(128).IsZero() {
		t.Fatal("Shl(128) should clear the word")
	}
	if !Ones(128).Shr(128).IsZero() {
		t.Fatal("Shr(128) should clear the word")
	}
}

func TestOnesCountAndParity(t *testing.T) {
	cases := []struct {
		w      Word
		count  int
		parity int
	}{
		{Zero, 0, 0},
		{FromUint64(1), 1, 1},
		{FromUint64(0b0101_0101), 4, 0},
		{Ones(64), 64, 0},
		{Ones(65), 65, 1},
		{Ones(128), 128, 0},
	}
	for _, c := range cases {
		if got := c.w.OnesCount(); got != c.count {
			t.Errorf("OnesCount(%v) = %d, want %d", c.w, got, c.count)
		}
		if got := c.w.Parity(); got != c.parity {
			t.Errorf("Parity(%v) = %d, want %d", c.w, got, c.parity)
		}
	}
}

func TestBitsFormatting(t *testing.T) {
	w := MustParseBits("01010101")
	if got := w.Bits(8); got != "01010101" {
		t.Fatalf("Bits(8) = %q", got)
	}
	if got := w.Hex(8); got != "55" {
		t.Fatalf("Hex(8) = %q", got)
	}
	w2 := MustParseBits("0011_0011")
	if got := w2.Bits(8); got != "00110011" {
		t.Fatalf("Bits with separators = %q", got)
	}
}

func TestParseBitsErrors(t *testing.T) {
	for _, s := range []string{"", "___", "012", "abc"} {
		if _, err := ParseBits(s); err == nil {
			t.Errorf("ParseBits(%q) succeeded, want error", s)
		}
	}
	long := make([]byte, 129)
	for i := range long {
		long[i] = '1'
	}
	if _, err := ParseBits(string(long)); err == nil {
		t.Error("ParseBits of 129-bit literal succeeded, want error")
	}
}

func TestParseBitsRoundTripWide(t *testing.T) {
	w := Word{Hi: 0xdeadbeefcafebabe, Lo: 0x0123456789abcdef}
	s := w.Bits(128)
	got := MustParseBits(s)
	if got != w {
		t.Fatalf("round trip: got %v, want %v", got, w)
	}
}

func randWord(r *rand.Rand) Word {
	return Word{Hi: r.Uint64(), Lo: r.Uint64()}
}

// Property: XOR is self-inverse, i.e. (a^b)^b == a.
func TestQuickXorSelfInverse(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a := Word{Hi: ahi, Lo: alo}
		b := Word{Hi: bhi, Lo: blo}
		return a.Xor(b).Xor(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Not is an involution under any width and stays in width.
func TestQuickNotInvolution(t *testing.T) {
	f := func(hi, lo uint64, wseed uint8) bool {
		width := int(wseed)%MaxWidth + 1
		a := Word{Hi: hi, Lo: lo}.Mask(width)
		n := a.Not(width)
		return n.Not(width) == a && n.Mask(width) == n && a.Xor(n) == Ones(width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bit view agrees with algebraic view — flipping every bit
// individually equals Not.
func TestQuickBitwiseNot(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		width := r.Intn(MaxWidth) + 1
		a := randWord(r).Mask(width)
		got := a
		for i := 0; i < width; i++ {
			got = got.FlipBit(i)
		}
		if got != a.Not(width) {
			t.Fatalf("width %d: bitwise flips %v != Not %v", width, got, a.Not(width))
		}
	}
}

// Property: OnesCount(a xor b) == OnesCount(a)+OnesCount(b) - 2*OnesCount(a and b).
func TestQuickOnesCountXor(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a := Word{Hi: ahi, Lo: alo}
		b := Word{Hi: bhi, Lo: blo}
		return a.Xor(b).OnesCount() == a.OnesCount()+b.OnesCount()-2*a.And(b).OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bits/ParseBits round trip at random widths.
func TestQuickBitsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		width := r.Intn(MaxWidth) + 1
		a := randWord(r).Mask(width)
		s := a.Bits(width)
		if len(s) != width {
			t.Fatalf("Bits(%d) length %d", width, len(s))
		}
		got, err := ParseBits(s)
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", s, err)
		}
		if got != a {
			t.Fatalf("round trip width %d: %v != %v", width, got, a)
		}
	}
}

func TestHexWidths(t *testing.T) {
	w := FromUint64(0xabc)
	if got := w.Hex(12); got != "abc" {
		t.Fatalf("Hex(12) = %q", got)
	}
	if got := w.Hex(16); got != "0abc" {
		t.Fatalf("Hex(16) = %q", got)
	}
	if got := Zero.Hex(1); got != "0" {
		t.Fatalf("Hex(1) of zero = %q", got)
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := MustParseBits("1100")
	b := MustParseBits("1010")
	if got := a.And(b); got != MustParseBits("1000") {
		t.Errorf("And = %s", got.Bits(4))
	}
	if got := a.Or(b); got != MustParseBits("1110") {
		t.Errorf("Or = %s", got.Bits(4))
	}
	if got := a.AndNot(b); got != MustParseBits("0100") {
		t.Errorf("AndNot = %s", got.Bits(4))
	}
}

func TestShiftPanicsOnNegative(t *testing.T) {
	for _, f := range []func(){func() { Zero.Shl(-1) }, func() { Zero.Shr(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative shift did not panic")
				}
			}()
			f()
		}()
	}
}

func TestShlCrossesBoundary(t *testing.T) {
	w := FromUint64(0x8000000000000000)
	got := w.Shl(1)
	if got != (Word{Hi: 1}) {
		t.Fatalf("Shl crossing 64-bit boundary: %v", got)
	}
	back := got.Shr(1)
	if back != w {
		t.Fatalf("Shr crossing boundary: %v", back)
	}
}
