// Package word provides a fixed-width bit-vector value type used to
// model the data words of a word-oriented memory.
//
// The paper's evaluation (Table 3) covers word widths up to 128 bits,
// beyond what a single uint64 can hold, so Word packs 128 bits into two
// machine words. A Word does not carry its own width; the memory model
// and the march-test data expressions track width explicitly and mask
// results to it. All operations are pure value operations: Words are
// small, comparable, and usable as map keys.
package word

import (
	"fmt"
	"strings"
)

// MaxWidth is the widest word supported by the library.
const MaxWidth = 128

// Word is a 128-bit little-endian bit vector: bit 0 is the least
// significant bit of Lo, bit 64 is the least significant bit of Hi.
type Word struct {
	Hi, Lo uint64
}

// Zero is the all-zero word.
var Zero = Word{}

// FromUint64 returns a Word holding v in its low 64 bits.
func FromUint64(v uint64) Word { return Word{Lo: v} }

// Uint64 returns the low 64 bits of w.
func (w Word) Uint64() uint64 { return w.Lo }

// Ones returns a word with the low width bits set.
// It panics if width is not in [0, MaxWidth].
func Ones(width int) Word {
	checkWidth(width)
	switch {
	case width == 0:
		return Word{}
	case width < 64:
		return Word{Lo: (uint64(1) << uint(width)) - 1}
	case width == 64:
		return Word{Lo: ^uint64(0)}
	case width < 128:
		return Word{Hi: (uint64(1) << uint(width-64)) - 1, Lo: ^uint64(0)}
	default:
		return Word{Hi: ^uint64(0), Lo: ^uint64(0)}
	}
}

func checkWidth(width int) {
	if width < 0 || width > MaxWidth {
		panic(fmt.Sprintf("word: width %d out of range [0,%d]", width, MaxWidth))
	}
}

// checkBit panics if i is not a valid bit index.
func checkBit(i int) {
	if i < 0 || i >= MaxWidth {
		panic(fmt.Sprintf("word: bit index %d out of range [0,%d)", i, MaxWidth))
	}
}

// Xor returns w ^ v.
func (w Word) Xor(v Word) Word { return Word{Hi: w.Hi ^ v.Hi, Lo: w.Lo ^ v.Lo} }

// And returns w & v.
func (w Word) And(v Word) Word { return Word{Hi: w.Hi & v.Hi, Lo: w.Lo & v.Lo} }

// Or returns w | v.
func (w Word) Or(v Word) Word { return Word{Hi: w.Hi | v.Hi, Lo: w.Lo | v.Lo} }

// AndNot returns w &^ v.
func (w Word) AndNot(v Word) Word { return Word{Hi: w.Hi &^ v.Hi, Lo: w.Lo &^ v.Lo} }

// Not returns the complement of w restricted to the low width bits.
func (w Word) Not(width int) Word {
	m := Ones(width)
	return Word{Hi: ^w.Hi & m.Hi, Lo: ^w.Lo & m.Lo}
}

// Mask returns w restricted to the low width bits.
func (w Word) Mask(width int) Word { return w.And(Ones(width)) }

// IsZero reports whether every bit of w is zero.
func (w Word) IsZero() bool { return w.Hi == 0 && w.Lo == 0 }

// Bit returns bit i of w (0 or 1).
func (w Word) Bit(i int) int {
	checkBit(i)
	if i < 64 {
		return int((w.Lo >> uint(i)) & 1)
	}
	return int((w.Hi >> uint(i-64)) & 1)
}

// SetBit returns a copy of w with bit i set to b (0 or 1).
func (w Word) SetBit(i, b int) Word {
	checkBit(i)
	if b != 0 && b != 1 {
		panic(fmt.Sprintf("word: bit value %d not 0 or 1", b))
	}
	if i < 64 {
		if b == 1 {
			w.Lo |= uint64(1) << uint(i)
		} else {
			w.Lo &^= uint64(1) << uint(i)
		}
		return w
	}
	i -= 64
	if b == 1 {
		w.Hi |= uint64(1) << uint(i)
	} else {
		w.Hi &^= uint64(1) << uint(i)
	}
	return w
}

// FlipBit returns a copy of w with bit i inverted.
func (w Word) FlipBit(i int) Word {
	checkBit(i)
	if i < 64 {
		w.Lo ^= uint64(1) << uint(i)
		return w
	}
	w.Hi ^= uint64(1) << uint(i-64)
	return w
}

// OnesCount returns the number of set bits in w.
func (w Word) OnesCount() int {
	return popcount(w.Hi) + popcount(w.Lo)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Parity returns the XOR of all bits of w (0 or 1).
func (w Word) Parity() int { return w.OnesCount() & 1 }

// Shl returns w shifted left by n bits (bits shifted past bit 127 are
// discarded).
func (w Word) Shl(n int) Word {
	if n < 0 {
		panic("word: negative shift")
	}
	switch {
	case n == 0:
		return w
	case n >= 128:
		return Word{}
	case n >= 64:
		return Word{Hi: w.Lo << uint(n-64)}
	default:
		return Word{Hi: w.Hi<<uint(n) | w.Lo>>uint(64-n), Lo: w.Lo << uint(n)}
	}
}

// Shr returns w shifted right by n bits.
func (w Word) Shr(n int) Word {
	if n < 0 {
		panic("word: negative shift")
	}
	switch {
	case n == 0:
		return w
	case n >= 128:
		return Word{}
	case n >= 64:
		return Word{Lo: w.Hi >> uint(n-64)}
	default:
		return Word{Hi: w.Hi >> uint(n), Lo: w.Lo>>uint(n) | w.Hi<<uint(64-n)}
	}
}

// String formats w as a hexadecimal literal covering 128 bits.
// For width-aware formatting use Bits or Hex.
func (w Word) String() string { return fmt.Sprintf("%016x%016x", w.Hi, w.Lo) }

// Hex formats the low width bits of w as a minimal hexadecimal string.
func (w Word) Hex(width int) string {
	checkWidth(width)
	digits := (width + 3) / 4
	if digits == 0 {
		digits = 1
	}
	s := fmt.Sprintf("%016x%016x", w.Hi, w.Lo)
	return s[len(s)-digits:]
}

// Bits formats the low width bits of w MSB-first, e.g. "01010101" for
// the paper's c1 background at width 8.
func (w Word) Bits(width int) string {
	checkWidth(width)
	var b strings.Builder
	for i := width - 1; i >= 0; i-- {
		if w.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ParseBits parses an MSB-first binary string such as "00110011" into a
// Word. Underscores are ignored as visual separators.
func ParseBits(s string) (Word, error) {
	var w Word
	n := 0
	for _, r := range s {
		switch r {
		case '_':
			continue
		case '0', '1':
			if n >= MaxWidth {
				return Word{}, fmt.Errorf("word: binary literal %q longer than %d bits", s, MaxWidth)
			}
			w = w.Shl(1)
			if r == '1' {
				w.Lo |= 1
			}
			n++
		default:
			return Word{}, fmt.Errorf("word: invalid binary digit %q in %q", r, s)
		}
	}
	if n == 0 {
		return Word{}, fmt.Errorf("word: empty binary literal")
	}
	return w, nil
}

// MustParseBits is like ParseBits but panics on error. It is intended
// for constants in tests and tables.
func MustParseBits(s string) Word {
	w, err := ParseBits(s)
	if err != nil {
		panic(err)
	}
	return w
}

// Equal reports whether two words are identical on all 128 bits.
func (w Word) Equal(v Word) bool { return w == v }

// Random-ish utility: Fold mixes the word into a single uint64; used by
// hashing helpers in tests. It is not cryptographic.
func (w Word) Fold() uint64 { return w.Hi*0x9e3779b97f4a7c15 ^ w.Lo }
