package addrgen

import (
	"testing"
)

func TestLinearSequence(t *testing.T) {
	seq, err := Sequence(Linear, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range seq {
		if a != i {
			t.Fatalf("linear sequence broken: %v", seq)
		}
	}
}

func TestGraySequence(t *testing.T) {
	seq, err := Sequence(Gray, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPermutation(seq, 8) {
		t.Fatalf("gray not a permutation: %v", seq)
	}
	// Exactly one bit toggles between consecutive addresses.
	for i := 1; i < len(seq); i++ {
		diff := seq[i] ^ seq[i-1]
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("gray step %d: %d -> %d toggles more than one bit", i, seq[i-1], seq[i])
		}
	}
	if _, err := Sequence(Gray, 6); err == nil {
		t.Error("non-power-of-two gray accepted")
	}
}

func TestLFSRSequences(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		seq, err := Sequence(LFSR, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !IsPermutation(seq, n) {
			t.Fatalf("n=%d: LFSR not a permutation", n)
		}
		if seq[0] != 0 {
			t.Fatalf("n=%d: zero address not spliced first", n)
		}
	}
	if _, err := Sequence(LFSR, 12); err == nil {
		t.Error("non-power-of-two LFSR accepted")
	}
	if _, err := Sequence(LFSR, 1<<17); err == nil {
		t.Error("untabulated LFSR size accepted")
	}
}

func TestAllTabulatedTapsMaximal(t *testing.T) {
	// Every tabulated tap set must produce a full-period sequence.
	for bits := 1; bits <= 16; bits++ {
		n := 1 << uint(bits)
		if n > 1<<14 && testing.Short() {
			continue
		}
		seq, err := Sequence(LFSR, n)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if !IsPermutation(seq, n) {
			t.Fatalf("bits=%d: not maximal", bits)
		}
	}
}

func TestReverse(t *testing.T) {
	seq := []int{3, 1, 2, 0}
	rev := Reverse(seq)
	want := []int{0, 2, 1, 3}
	for i := range want {
		if rev[i] != want[i] {
			t.Fatalf("reverse = %v", rev)
		}
	}
	// Reverse must not alias its input.
	rev[0] = 99
	if seq[3] == 99 {
		t.Fatal("Reverse aliases input")
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int{2, 0, 1}, 3) {
		t.Error("valid permutation rejected")
	}
	if IsPermutation([]int{0, 0, 1}, 3) {
		t.Error("duplicate accepted")
	}
	if IsPermutation([]int{0, 1}, 3) {
		t.Error("short sequence accepted")
	}
	if IsPermutation([]int{0, 1, 3}, 3) {
		t.Error("out-of-range accepted")
	}
}

func TestSequenceErrors(t *testing.T) {
	if _, err := Sequence(Linear, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Sequence(Kind(9), 4); err == nil {
		t.Error("unknown kind accepted")
	}
	if Kind(9).String() == "" || Linear.String() != "linear" || Gray.String() != "gray" || LFSR.String() != "lfsr" {
		t.Error("kind strings broken")
	}
}
