// Package addrgen provides the address sequences a hardware BIST
// controller steps a march test through.
//
// March-test theory only requires that ⇑ visits every address in some
// fixed order and ⇓ in exactly the reverse order; the "addresses" need
// not be counted linearly. Hardware generators exploit that freedom:
// an LFSR sequencer costs a fraction of a binary up/down counter, and
// Gray-code stepping toggles one address bit per cycle, reducing
// switching noise on the address bus. This package implements the
// three classical generators and proves (in its tests and in the
// faultsim experiments) that fault coverage is preserved under any of
// them — with the documented exception that "adjacent address"
// arguments change meaning.
package addrgen

import (
	"fmt"
)

// Kind selects an address-sequence generator.
type Kind int

const (
	// Linear is the ordinary binary counter: 0, 1, 2, …
	Linear Kind = iota
	// Gray steps a reflected Gray code: 0, 1, 3, 2, 6, …; exactly one
	// address bit toggles per step. Requires a power-of-two size.
	Gray
	// LFSR steps a maximal-length Fibonacci LFSR with the zero state
	// spliced in front, covering all 2^n addresses in a fixed
	// pseudo-random order. Requires a power-of-two size.
	LFSR
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Gray:
		return "gray"
	case LFSR:
		return "lfsr"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// taps holds Fibonacci LFSR feedback taps (bit positions, 0-based)
// yielding maximal-length sequences for small register sizes — enough
// for the simulator geometries (up to 2^16 addresses).
var taps = map[int][]int{
	1:  {0},
	2:  {1, 0},
	3:  {2, 1},
	4:  {3, 2},
	5:  {4, 2},
	6:  {5, 4},
	7:  {6, 5},
	8:  {7, 5, 4, 3},
	9:  {8, 4},
	10: {9, 6},
	11: {10, 8},
	12: {11, 10, 9, 3},
	13: {12, 11, 10, 7},
	14: {13, 12, 11, 1},
	15: {14, 13},
	16: {15, 14, 12, 3},
}

// Sequence returns the full address permutation of the given kind over
// n addresses. Gray and LFSR require n to be a power of two.
func Sequence(kind Kind, n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("addrgen: size %d must be positive", n)
	}
	switch kind {
	case Linear:
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	case Gray:
		bits, err := log2exact(n)
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i ^ (i >> 1)
		}
		_ = bits
		return out, nil
	case LFSR:
		bits, err := log2exact(n)
		if err != nil {
			return nil, err
		}
		if bits == 0 {
			return []int{0}, nil
		}
		tp, ok := taps[bits]
		if !ok {
			return nil, fmt.Errorf("addrgen: no LFSR taps tabulated for %d address bits", bits)
		}
		out := make([]int, 0, n)
		out = append(out, 0) // splice the all-zero address in front
		state := 1
		for len(out) < n {
			out = append(out, state)
			fb := 0
			for _, t := range tp {
				fb ^= (state >> uint(t)) & 1
			}
			state = ((state << 1) | fb) & (n - 1)
			if state == 1 && len(out) < n {
				return nil, fmt.Errorf("addrgen: LFSR for %d bits cycled early (%d of %d)", bits, len(out), n)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("addrgen: unknown kind %v", kind)
	}
}

func log2exact(n int) (int, error) {
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	if 1<<uint(k) != n {
		return 0, fmt.Errorf("addrgen: size %d is not a power of two", n)
	}
	return k, nil
}

// IsPermutation reports whether seq visits each of 0..n-1 exactly
// once.
func IsPermutation(seq []int, n int) bool {
	if len(seq) != n {
		return false
	}
	seen := make([]bool, n)
	for _, a := range seq {
		if a < 0 || a >= n || seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// Reverse returns the reversed sequence (the ⇓ order matching a ⇑
// sequence).
func Reverse(seq []int) []int {
	out := make([]int, len(seq))
	for i, a := range seq {
		out[len(seq)-1-i] = a
	}
	return out
}
