package cluster

import (
	"context"
	"encoding/json"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/obs"
	"twmarch/internal/tracing"
)

// shipCollectorCap bounds the worker-side spans collected per lease
// for shipping back in the completion (well under the coordinator's
// maxShippedSpans acceptance cap plus decode limits).
const shipCollectorCap = 256

// Worker is the lease-poll-simulate-complete loop cmd/twmw runs: each
// of Parallel slots independently leases a cell, simulates it locally
// (heartbeating the lease meanwhile), and reports the result with the
// cell's deterministic seed — so which worker ran a cell never affects
// the campaign's output. A slot that learns its lease is gone —
// usually because the job was evicted, canceled, or drained on the
// coordinator — cancels its simulation mid-cell and moves on.
type Worker struct {
	// Client talks to the coordinator.
	Client *Client
	// Simulate overrides the local simulation (tests inject failures
	// here). nil uses campaign.Simulator, one per job so each
	// campaign's fault-population cache stays coherent.
	Simulate func(ctx context.Context, job string, spec campaign.Spec, cell campaign.Cell) campaign.CellResult
	// Parallel is the number of concurrent cells (default 1).
	Parallel int
	// Poll floors the idle wait between lease attempts when the
	// coordinator doesn't name a longer one (default 500ms).
	Poll time.Duration
	// MaxIdle, when positive, makes Run return cleanly once no slot
	// has held work for this long — how a CI-spawned worker fleet
	// winds down instead of polling forever.
	MaxIdle time.Duration
	// Log receives structured per-lease progress records; every record
	// carries job/lease/cell attributes (cmd/twmw adds component and
	// worker). nil is silent.
	Log *slog.Logger

	// sims caches one simulator per job (bounded; see simulator).
	simsMu sync.Mutex
	sims   map[string]simEntry
	// lastWork is the UnixNano of the last held lease and inFlight the
	// leases currently simulating, shared by the slots for the MaxIdle
	// accounting: the worker is idle only when nothing is in flight
	// AND nothing has been for MaxIdle.
	lastWork atomic.Int64
	inFlight atomic.Int64
}

// maxCachedSims bounds the per-job simulator cache; a worker serving
// endless distinct jobs must not retain every fault enumeration.
const maxCachedSims = 8

// simEntry ties a cached simulator to the spec it was built for. A
// Simulator's fault cache is keyed by geometry alone, so a cached one
// is only valid for the exact spec it served — and a long-lived
// worker can see one job id carry different specs (a journalless
// coordinator restart resets its id sequence).
type simEntry struct {
	fingerprint string
	sim         *campaign.Simulator
}

// simulator returns the cached simulator for (job, spec), replacing a
// stale entry whose spec changed under the same job id.
func (w *Worker) simulator(job string, spec *campaign.Spec) *campaign.Simulator {
	fp, err := json.Marshal(spec)
	if err != nil {
		return campaign.NewSimulator() // can't fingerprint: don't cache
	}
	w.simsMu.Lock()
	defer w.simsMu.Unlock()
	if w.sims == nil {
		w.sims = make(map[string]simEntry)
	}
	if e, ok := w.sims[job]; ok && e.fingerprint == string(fp) {
		return e.sim
	}
	if len(w.sims) >= maxCachedSims {
		for k := range w.sims {
			delete(w.sims, k)
			break
		}
	}
	s := campaign.NewSimulator()
	w.sims[job] = simEntry{fingerprint: string(fp), sim: s}
	return s
}

// log returns the worker's logger, or a silent one.
func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return obs.NopLogger()
}

// Run polls the coordinator until ctx is canceled (returns ctx's
// error) or the worker has been idle for MaxIdle (returns nil).
func (w *Worker) Run(ctx context.Context) error {
	parallel := w.Parallel
	if parallel < 1 {
		parallel = 1
	}
	w.lastWork.Store(time.Now().UnixNano())
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slot(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// slot is one lease loop.
func (w *Worker) slot(ctx context.Context) {
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		if ctx.Err() != nil {
			return
		}
		grant, err := w.Client.Lease(ctx)
		wait := poll
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			// The client already retried with backoff; treat a still-
			// failing coordinator like an idle one and keep polling.
			w.log().Warn("lease request failed", "err", err)
		case grant.Status == StatusLease && grant.Cell != nil && grant.Spec != nil:
			w.lastWork.Store(time.Now().UnixNano())
			w.inFlight.Add(1)
			w.runLease(ctx, grant)
			w.lastWork.Store(time.Now().UnixNano())
			w.inFlight.Add(-1)
			continue // immediately try for the next cell
		default: // idle
			if r := time.Duration(grant.RetryNS); r > wait {
				wait = r
			}
		}
		// A sibling slot mid-cell keeps the worker alive: a cell slower
		// than MaxIdle must not shrink the pool slot by slot.
		if w.MaxIdle > 0 && w.inFlight.Load() == 0 &&
			time.Since(time.Unix(0, w.lastWork.Load())) >= w.MaxIdle {
			w.log().Info("idle limit reached, slot exiting", "max_idle", w.MaxIdle)
			return
		}
		metWorkerIdle.Add(wait.Seconds())
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return
		}
	}
}

// runLease simulates one granted cell under a heartbeat. The
// heartbeat renews at a third of the TTL; a gone response (or a renew
// that keeps failing past the client's retries) cancels the
// simulation so the slot stops burning CPU on a dead cell.
//
// Tracing: the grant's TraceParent is continued in a worker.cell span
// so the cell's execution — including the campaign.cell span under it
// and each renew attempt — stays on the job's trace. Every span
// finished during the lease collects locally and ships back in the
// completion, letting the coordinator assemble the cross-process
// timeline.
func (w *Worker) runLease(ctx context.Context, g *LeaseGrant) {
	log := w.log().With("job", g.Job, "lease", g.LeaseID, "cell", g.Cell.Index)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	col := tracing.NewCollector(shipCollectorCap)
	cctx = tracing.ContextWithCollector(cctx, col)
	remote, _ := tracing.ParseTraceParent(g.TraceParent)
	var span *tracing.Span
	cctx, span = tracing.StartRemote(cctx, "worker.cell", tracing.KindInternal, remote)
	span.SetAttr("job", g.Job)
	span.SetAttr("lease", g.LeaseID)
	span.SetAttr("cell", strconv.Itoa(g.Cell.Index))
	span.SetAttr("worker", w.Client.Worker)
	ttl := time.Duration(g.TTLNS)
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-cctx.Done():
				return
			case <-t.C:
				st, err := w.Client.Renew(cctx, g.Job, g.LeaseID)
				if err != nil && cctx.Err() == nil {
					log.WarnContext(cctx, "lease renew failed, abandoning cell", "err", err)
					cancel()
					return
				}
				if st == StatusGone {
					log.InfoContext(cctx, "lease gone, abandoning cell")
					cancel()
					return
				}
			}
		}
	}()

	simulate := w.Simulate
	if simulate == nil {
		simulate = func(ctx context.Context, job string, spec campaign.Spec, cell campaign.Cell) campaign.CellResult {
			return w.simulator(job, &spec).RunCell(ctx, spec, cell)
		}
	}
	res := simulate(cctx, g.Job, *g.Spec, *g.Cell)
	// Snapshot the cancellation state before the deferred-cancel region:
	// a cctx canceled while simulating means the lease died and the
	// result may be a poisoned partial tally (cancellation lands in
	// res.Err). Never report it — the coordinator requeued the cell.
	poisoned := cctx.Err() != nil
	cancel()
	hb.Wait()
	if poisoned || ctx.Err() != nil {
		span.SetStatus(tracing.StatusAbandoned)
		span.Finish()
		metWorkerLeases.With("abandoned").Inc()
		return
	}
	// Finish the cell span before completing so it ships in the same
	// request; the Complete call itself runs as its child (span
	// identity survives Finish for parenting and injection).
	span.Finish()
	tctx := tracing.ContextWithSpan(ctx, span)
	st, err := w.Client.Complete(tctx, g.Job, g.LeaseID, res, col.Snapshot())
	switch {
	case err != nil:
		metWorkerLeases.With("error").Inc()
		log.WarnContext(tctx, "complete failed", "err", err)
	case st == StatusGone:
		metWorkerLeases.With("gone").Inc()
		log.InfoContext(tctx, "job gone, result discarded")
	default:
		metWorkerLeases.With("completed").Inc()
		log.InfoContext(tctx, "cell completed")
	}
}
