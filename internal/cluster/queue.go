package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/obs"
	"twmarch/internal/tracing"
)

// pendingCell is one cell waiting to be leased. eligible gates
// requeued cells behind their backoff.
type pendingCell struct {
	cell     campaign.Cell
	attempt  int
	eligible time.Time
}

// lease is one outstanding grant.
type lease struct {
	id       string
	worker   string
	cell     campaign.Cell
	attempt  int
	deadline time.Time
	// span covers the lease's lifetime coordinator-side: grant to
	// completion (ok), expiry (abandoned), or job end (revoked). Its
	// identity rides the grant's TraceParent to the worker.
	span *tracing.Span
}

// queue is one dispatched job's lease state. It owns the cells the
// coordinator's Dispatch call is waiting on: pending cells are leased
// out FIFO (requeued cells behind their backoff gate), outstanding
// leases are kept alive by renewals and requeued when they expire, and
// each accepted completion is delivered to the results channel exactly
// once per cell — the channel is sized for that, so sends never block
// while the mutex is held.
type queue struct {
	job   string
	spec  campaign.Spec
	cells []campaign.Cell // full grid expansion, for validating results

	mu      sync.Mutex
	pending []pendingCell
	leases  map[string]*lease
	done    map[int]bool
	seq     int
	closed  bool

	results chan<- campaign.CellResult
	opts    Options
	events  func(Event)
	// tctx is the dispatch span's context: lease spans start under it
	// so they parent to the dispatch span and land in the job's
	// trace collector.
	tctx context.Context

	// depth and out are this job's queue-depth and outstanding-lease
	// gauges, resolved once; close deletes the series.
	depth *obs.Gauge
	out   *obs.Gauge
}

// newQueue builds the queue for one Dispatch call. cells is the full
// grid expansion; pending the subset still to simulate (the rest is
// marked done so a stray completion for a pre-folded cell is a
// duplicate, not a fold). tctx carries the dispatch span and the
// job's trace collector (nil means background).
func newQueue(tctx context.Context, job string, spec campaign.Spec, cells, pending []campaign.Cell, results chan<- campaign.CellResult, opts Options, events func(Event)) *queue {
	if tctx == nil {
		tctx = context.Background()
	}
	q := &queue{
		job:     job,
		spec:    spec,
		cells:   cells,
		leases:  make(map[string]*lease),
		done:    make(map[int]bool, len(cells)),
		results: results,
		opts:    opts,
		events:  events,
		tctx:    tctx,
		depth:   metQueueDepth.With(job),
		out:     metLeasesOut.With(job),
	}
	for _, c := range cells {
		q.done[c.Index] = true
	}
	q.pending = make([]pendingCell, 0, len(pending))
	for _, c := range pending {
		q.done[c.Index] = false
		q.pending = append(q.pending, pendingCell{cell: c})
	}
	q.depth.Set(float64(len(q.pending)))
	return q
}

// gaugesLocked refreshes the queue's depth and outstanding-lease
// gauges; callers hold q.mu.
func (q *queue) gaugesLocked() {
	q.depth.Set(float64(len(q.pending)))
	q.out.Set(float64(len(q.leases)))
}

// emit tallies the events into the cluster metrics and fires the
// dispatch-event hook, both outside the queue lock.
func (q *queue) emit(evs []Event) {
	recordEvents(evs)
	if q.events == nil {
		return
	}
	for _, ev := range evs {
		q.events(ev)
	}
}

// lease grants the first eligible pending cell to worker. When nothing
// is grantable it returns nil along with the wait until the next
// requeued cell becomes eligible (zero when the queue is fully leased
// out or exhausted, meaning "poll again at the idle cadence").
func (q *queue) lease(worker string, now time.Time) (*LeaseGrant, time.Duration) {
	var evs []Event
	defer func() { q.emit(evs) }()
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.gaugesLocked()
	evs = q.expireLocked(now)
	if q.closed {
		return nil, 0
	}
	var wait time.Duration
	for i, p := range q.pending {
		if p.eligible.After(now) {
			if d := p.eligible.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		q.pending = append(q.pending[:i], q.pending[i+1:]...)
		q.seq++
		l := &lease{
			id:       fmt.Sprintf("%s-%d", q.job, q.seq),
			worker:   worker,
			cell:     p.cell,
			attempt:  p.attempt,
			deadline: now.Add(q.opts.LeaseTTL),
		}
		_, l.span = tracing.Start(q.tctx, "cluster.lease", tracing.KindInternal)
		l.span.SetAttr("job", q.job)
		l.span.SetAttr("cell", strconv.Itoa(p.cell.Index))
		l.span.SetAttr("worker", worker)
		l.span.SetAttr("attempt", strconv.Itoa(p.attempt))
		q.leases[l.id] = l
		cell := p.cell
		evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventLease, Cell: cell.Index, Worker: worker, Lease: l.id, Attempt: l.attempt})
		return &LeaseGrant{
			Status:      StatusLease,
			LeaseID:     l.id,
			Job:         q.job,
			Spec:        &q.spec,
			Cell:        &cell,
			TTLNS:       q.opts.LeaseTTL.Nanoseconds(),
			TraceParent: l.span.Context().TraceParent(),
		}, 0
	}
	return nil, wait
}

// renew extends a lease's deadline. It reports false — gone — for a
// lease the queue no longer holds (expired and requeued, or completed
// by another worker) and for a closed queue.
func (q *queue) renew(leaseID string, now time.Time) bool {
	var evs []Event
	defer func() { q.emit(evs) }()
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.gaugesLocked()
	evs = q.expireLocked(now)
	if q.closed {
		return false
	}
	l, ok := q.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = now.Add(q.opts.LeaseTTL)
	metLeasesRenewed.Inc()
	return true
}

// complete accepts one simulated result. A valid result for a cell not
// yet folded is delivered to the results channel; a result for a cell
// already folded is a duplicate — acknowledged and dropped, folding
// nothing. Late completions whose lease already expired are still
// accepted when the cell is outstanding: the work is valid, and the
// cell's replacement lease (if any) is revoked. Results that don't
// match the job's own grid expansion are rejected.
func (q *queue) complete(leaseID string, res campaign.CellResult, now time.Time) (string, error) {
	var evs []Event
	defer func() { q.emit(evs) }()
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.gaugesLocked()
	evs = q.expireLocked(now)
	if q.closed {
		return StatusGone, nil
	}
	if res.Index < 0 || res.Index >= len(q.cells) || res.Cell != q.cells[res.Index] {
		return "", fmt.Errorf("cluster: result for job %s does not match cell %d of the grid", q.job, res.Index)
	}
	// Consume the named lease only when it actually covers this cell:
	// a mismatched (lease, result) pair must not delete some other
	// cell's lease — that cell would be neither pending, leased, nor
	// done, and the campaign would never finish. (The revoke sweep
	// below handles the completed cell's own leases by index.)
	attempt := 0
	if l, ok := q.leases[leaseID]; ok && l.cell.Index == res.Index {
		attempt = l.attempt
		delete(q.leases, leaseID)
		l.span.SetStatus(tracing.StatusOK)
		l.span.Finish()
	}
	if q.done[res.Index] {
		evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventDuplicate, Cell: res.Index, Lease: leaseID})
		return StatusOK, nil
	}
	// The cell may have been requeued (pending) or re-leased elsewhere
	// after this worker's lease expired; either way this completion
	// wins — drop the stragglers so nobody re-simulates it.
	for i, p := range q.pending {
		if p.cell.Index == res.Index {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			break
		}
	}
	for id, l := range q.leases {
		if l.cell.Index == res.Index {
			delete(q.leases, id)
			l.span.SetStatus(tracing.StatusRevoked)
			l.span.Finish()
			evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventRevoke, Cell: res.Index, Worker: l.worker, Lease: id, Attempt: l.attempt})
		}
	}
	q.done[res.Index] = true
	evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventComplete, Cell: res.Index, Lease: leaseID, Attempt: attempt})
	q.results <- res
	return StatusOK, nil
}

// expire requeues every lease past its deadline.
func (q *queue) expire(now time.Time) {
	q.mu.Lock()
	evs := q.expireLocked(now)
	q.gaugesLocked()
	q.mu.Unlock()
	q.emit(evs)
}

// expireLocked is expire under q.mu; it returns the events to emit
// once the lock is released. An expired cell re-enters the queue
// behind an exponential backoff gate; a cell that exhausted
// MaxAttempts folds as an errored result so the campaign still
// terminates.
func (q *queue) expireLocked(now time.Time) []Event {
	if q.closed {
		return nil
	}
	var evs []Event
	for id, l := range q.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(q.leases, id)
		// The holder vanished either way (requeue or abandon): the
		// lease span closes abandoned, and the loadgen chaos stage
		// asserts exactly these spans for SIGKILLed workers.
		l.span.SetStatus(tracing.StatusAbandoned)
		l.span.Finish()
		attempt := l.attempt + 1
		evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventExpire, Cell: l.cell.Index, Worker: l.worker, Lease: id, Attempt: attempt})
		if attempt >= q.opts.MaxAttempts {
			res := campaign.CellResult{Cell: l.cell}
			res.Err = fmt.Sprintf("cluster: cell %d abandoned after %d expired leases", l.cell.Index, attempt)
			q.done[l.cell.Index] = true
			evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventAbandon, Cell: l.cell.Index, Attempt: attempt})
			q.results <- res
			continue
		}
		q.pending = append(q.pending, pendingCell{
			cell:     l.cell,
			attempt:  attempt,
			eligible: now.Add(q.backoff(attempt)),
		})
		evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventRequeue, Cell: l.cell.Index, Attempt: attempt})
	}
	return evs
}

// backoff returns the requeue delay before attempt n+1: exponential in
// the completed attempts, capped.
func (q *queue) backoff(attempt int) time.Duration {
	return capDoubling(q.opts.RetryBackoff, q.opts.MaxBackoff, attempt-1)
}

// capDoubling returns base·2^doublings clamped to max — the one
// exponential-backoff schedule, shared by the queue's requeue delay
// and the client's retry delay.
func capDoubling(base, max time.Duration, doublings int) time.Duration {
	d := base
	for i := 0; i < doublings && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// close revokes every outstanding lease and stops the queue cold:
// every later lease/renew/complete answers gone. The eviction, cancel,
// and drain path.
func (q *queue) close(now time.Time) {
	var evs []Event
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		for id, l := range q.leases {
			l.span.SetStatus(tracing.StatusRevoked)
			l.span.Finish()
			evs = append(evs, Event{TimeNS: now.UnixNano(), Kind: EventRevoke, Cell: l.cell.Index, Worker: l.worker, Lease: id, Attempt: l.attempt})
			delete(q.leases, id)
		}
		q.pending = nil
	}
	q.mu.Unlock()
	// The job's dispatch is over: drop its gauge series so a long-lived
	// coordinator's exposition stays bounded by in-flight jobs.
	metQueueDepth.Delete(q.job)
	metLeasesOut.Delete(q.job)
	q.emit(evs)
}

// maxShippedSpans caps how many worker-shipped span records one
// completion may carry into the ring and collector.
const maxShippedSpans = 512

// recordSpans folds worker-shipped span records into the process ring
// and the job's trace collector, so cross-process timelines assemble
// coordinator-side. Records from a different trace than the job's are
// dropped — a stale or confused worker must not pollute another job's
// timeline. A worker retrying a lost completion can deliver the same
// record twice; duplicates are harmless in both surfaces.
func (q *queue) recordSpans(recs []tracing.SpanRecord) {
	if len(recs) == 0 {
		return
	}
	if len(recs) > maxShippedSpans {
		recs = recs[:maxShippedSpans]
	}
	jobTrace := ""
	if sp := tracing.SpanFromContext(q.tctx); sp != nil {
		jobTrace = sp.Context().Trace.String()
	}
	col := tracing.CollectorFromContext(q.tctx)
	for _, rec := range recs {
		if jobTrace != "" && rec.Trace != jobTrace {
			continue
		}
		tracing.Default().Record(rec)
		col.Add(rec)
	}
}

// workerLeases counts worker's outstanding leases.
func (q *queue) workerLeases(worker string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, l := range q.leases {
		if l.worker == worker {
			n++
		}
	}
	return n
}
