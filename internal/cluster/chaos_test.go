package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postChaos(t *testing.T, base string, req ChaosRequest) (ChaosStatus, int) {
	t.Helper()
	raw, _ := json.Marshal(req)
	resp, err := http.Post(base+"/cluster/chaos", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ChaosStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

func getChaos(t *testing.T, base string) ChaosStatus {
	t.Helper()
	resp, err := http.Get(base + "/cluster/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ChaosStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosDisabledByDefault: a coordinator built without the chaos
// option serves no injection surface and intercepts nothing.
func TestChaosDisabledByDefault(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()
	if _, code := postChaos(t, ts.URL, ChaosRequest{Code: 500, CodeN: 1}); code != http.StatusNotFound {
		t.Fatalf("chaos POST on plain coordinator: got %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/cluster/chaos")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chaos GET on plain coordinator: got %d, want 404", resp.StatusCode)
	}
}

// TestChaosErrorInjection: an armed error budget answers the next N
// worker-facing requests with the chosen status and Retry-After, the
// worker Client absorbs them through its retry path, and the injected
// totals account for every fault.
func TestChaosErrorInjection(t *testing.T) {
	coord := New(Options{Chaos: true, IdleRetry: time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	st, code := postChaos(t, ts.URL, ChaosRequest{Code: 429, CodeN: 2, RetryAfter: "0"})
	if code != http.StatusOK || st.PendingErrors != 2 {
		t.Fatalf("arm: code %d, status %+v", code, st)
	}

	// The client sees 429+Retry-After twice, retries, and the lease
	// call still succeeds (idle grant).
	cl := &Client{Base: ts.URL, Worker: "w", Backoff: time.Millisecond}
	grant, err := cl.Lease(context.Background())
	if err != nil {
		t.Fatalf("lease through injected 429s: %v", err)
	}
	if grant.Status != StatusIdle {
		t.Fatalf("grant status %q, want idle", grant.Status)
	}

	st = getChaos(t, ts.URL)
	if st.ErrorsInjected != 2 || st.PendingErrors != 0 {
		t.Fatalf("after injection: %+v, want 2 injected 0 pending", st)
	}
}

// TestChaosDelayAndPathFilter: a delay budget scoped to one endpoint
// slows only that endpoint and is spent exactly N times.
func TestChaosDelayAndPathFilter(t *testing.T) {
	coord := New(Options{Chaos: true, IdleRetry: time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	if _, code := postChaos(t, ts.URL, ChaosRequest{Path: "renew", DelayMS: 300, DelayN: 1}); code != http.StatusOK {
		t.Fatalf("arm: %d", code)
	}
	cl := &Client{Base: ts.URL, Worker: "w", Backoff: time.Millisecond}

	// Lease is not matched by the renew-scoped budget, so its delay
	// budget must still be intact afterwards.
	if _, err := cl.Lease(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := getChaos(t, ts.URL); st.PendingDelays != 1 || st.DelaysInjected != 0 {
		t.Fatalf("after lease under renew-only budget: %+v, want 1 pending 0 injected", st)
	}

	// The first renew burns the delay budget (the unknown lease still
	// answers gone — injection happens before handling).
	start := time.Now()
	stRenew, err := cl.Renew(context.Background(), "nojob", "nolease")
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 300*time.Millisecond {
		t.Fatalf("renew returned in %v, want >= 300ms injected delay", d)
	}
	if stRenew != StatusGone {
		t.Fatalf("renew status %q, want gone", stRenew)
	}
	st := getChaos(t, ts.URL)
	if st.DelaysInjected != 1 || st.PendingDelays != 0 {
		t.Fatalf("after delayed renew: %+v, want 1 injected 0 pending", st)
	}
}

// TestChaosArmValidation: malformed arms are rejected with 400.
func TestChaosArmValidation(t *testing.T) {
	ts := httptest.NewServer(New(Options{Chaos: true}))
	defer ts.Close()
	for _, req := range []ChaosRequest{
		{Code: 200, CodeN: 1},    // not an error status
		{Code: 700, CodeN: 1},    // out of range
		{Path: "evict"},          // unknown endpoint
		{DelayMS: -1, DelayN: 1}, // negative delay
	} {
		if _, code := postChaos(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("arm %+v: got %d, want 400", req, code)
		}
	}
}
