package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"twmarch/internal/campaign"
)

// gridSpec is the 16-cell campaign the dispatch tests fan out.
func gridSpec() campaign.Spec {
	return campaign.Spec{
		Name:    "cluster",
		Tests:   []string{"MATS", "March C-"},
		Widths:  []int{2, 4},
		Words:   []int{2, 3},
		Classes: []string{"SAF", "TF"},
		Seed:    11,
	}
}

// startWorkers launches n workers against the coordinator URL and
// returns a stop function that waits them out.
func startWorkers(t *testing.T, base string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w := &Worker{
			Client:   &Client{Base: base, Worker: fmt.Sprintf("w%d", i), Backoff: time.Millisecond},
			Parallel: 2,
			Poll:     2 * time.Millisecond,
		}
		go func() {
			defer func() { done <- struct{}{} }()
			w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		for i := 0; i < n; i++ {
			<-done
		}
	}
}

// TestDispatchByteIdentical is the package-level acceptance test: a
// grid dispatched over HTTP to three workers folds to a canonical
// aggregate byte-identical to a single-process engine run.
func TestDispatchByteIdentical(t *testing.T) {
	coord := New(Options{LeaseTTL: 5 * time.Second, IdleRetry: 5 * time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()
	stop := startWorkers(t, ts.URL, 3)
	defer stop()

	prog := &campaign.Progress{}
	got, err := coord.Dispatch(context.Background(), "c1", gridSpec(), prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Engine{}.Run(context.Background(), gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Errorf("dispatched aggregate diverges from local engine run:\n%.2000s", gb)
	}
	if prog.Done() != prog.Total() || prog.Done() != 16 {
		t.Errorf("progress %d/%d, want 16/16", prog.Done(), prog.Total())
	}

	// The heartbeat view saw all three workers.
	if ws := coord.Workers(time.Now()); len(ws) != 3 {
		t.Errorf("worker listing has %d rows, want 3: %+v", len(ws), ws)
	}
}

// TestDispatchResumesSeededAggregator pins the recovery path under
// dispatch: cells pre-folded into the aggregator are neither leased
// nor re-emitted, and the final aggregate still matches a full local
// run byte for byte.
func TestDispatchResumesSeededAggregator(t *testing.T) {
	spec := gridSpec()
	full, err := campaign.Engine{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	coord := New(Options{LeaseTTL: 5 * time.Second, IdleRetry: 5 * time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()
	stop := startWorkers(t, ts.URL, 2)
	defer stop()

	agg := campaign.NewAggregator(spec)
	for _, r := range full.Cells[:8] {
		agg.Add(r)
	}
	emitted := 0
	sink := campaign.SinkFunc(func(campaign.CellResult) { emitted++ })
	got, err := coord.Dispatch(context.Background(), "c2", spec, nil, agg, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 8 {
		t.Errorf("resume emitted %d cells, want the 8 missing ones", emitted)
	}
	gb, _ := got.Canonical()
	wb, _ := full.Canonical()
	if !bytes.Equal(gb, wb) {
		t.Error("resumed dispatch diverges from uninterrupted run")
	}
}

// TestDispatchSurvivesKilledWorker is the fault-tolerance e2e: a
// deadbeat worker leases a cell and dies without completing or
// renewing; the lease expires, the cell requeues, an honest worker
// re-runs it, and the aggregate is still byte-identical.
func TestDispatchSurvivesKilledWorker(t *testing.T) {
	coord := New(Options{
		LeaseTTL:     150 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
		IdleRetry:    5 * time.Millisecond,
	})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	var requeues, expires atomic.Int32
	events := func(ev Event) {
		switch ev.Kind {
		case EventRequeue:
			requeues.Add(1)
		case EventExpire:
			expires.Add(1)
		}
	}

	done := make(chan struct{})
	var got *campaign.Aggregate
	var dispatchErr error
	go func() {
		defer close(done)
		got, dispatchErr = coord.Dispatch(context.Background(), "c3", gridSpec(), nil, nil, events)
	}()

	// The deadbeat takes one lease and vanishes mid-"simulation".
	deadbeat := &Client{Base: ts.URL, Worker: "deadbeat", Backoff: time.Millisecond}
	var g *LeaseGrant
	for {
		var err error
		g, err = deadbeat.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if g.Status == StatusLease {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Honest workers finish the grid, including the abandoned cell.
	stop := startWorkers(t, ts.URL, 3)
	defer stop()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("dispatch with a killed worker never completed")
	}
	if dispatchErr != nil {
		t.Fatal(dispatchErr)
	}
	if n := expires.Load(); n == 0 {
		t.Error("deadbeat's lease never expired")
	}
	if n := requeues.Load(); n == 0 {
		t.Error("no cell was requeued")
	}

	want, err := campaign.Engine{}.Run(context.Background(), gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := got.Canonical()
	wb, _ := want.Canonical()
	if !bytes.Equal(gb, wb) {
		t.Error("aggregate after a killed-and-requeued worker diverges from local run")
	}
	if got.Errors != 0 {
		t.Errorf("%d cells folded as errors", got.Errors)
	}

	// The deadbeat's lease is terminally gone.
	if st, err := deadbeat.Renew(context.Background(), g.Job, g.LeaseID); err != nil || st != StatusGone {
		t.Errorf("dead lease renew: %q, %v (want gone)", st, err)
	}
}

// TestDispatchCancelRevokesLeases pins the cancel/evict/drain path
// end to end: once Dispatch's context is canceled, the job's leases
// answer gone on renew and complete, so workers abandon dead cells.
func TestDispatchCancelRevokesLeases(t *testing.T) {
	coord := New(Options{LeaseTTL: 5 * time.Second, IdleRetry: 5 * time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := coord.Dispatch(ctx, "c4", gridSpec(), nil, nil, nil)
		done <- err
	}()

	cl := &Client{Base: ts.URL, Worker: "w", Backoff: time.Millisecond}
	var g *LeaseGrant
	for {
		var err error
		g, err = cl.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if g.Status == StatusLease {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled dispatch returned %v", err)
	}

	if st, err := cl.Renew(context.Background(), g.Job, g.LeaseID); err != nil || st != StatusGone {
		t.Errorf("renew after cancel: %q, %v (want gone)", st, err)
	}
	res := campaign.CellResult{Cell: *g.Cell}
	if st, err := cl.Complete(context.Background(), g.Job, g.LeaseID, res, nil); err != nil || st != StatusGone {
		t.Errorf("complete after cancel: %q, %v (want gone)", st, err)
	}
	if g2, err := cl.Lease(context.Background()); err != nil || g2.Status != StatusIdle {
		t.Errorf("lease after cancel: %+v, %v (want idle)", g2, err)
	}
}

// TestWorkerMaxIdle pins the CI wind-down: a worker with -max-idle
// against a coordinator with no jobs exits cleanly on its own.
func TestWorkerMaxIdle(t *testing.T) {
	coord := New(Options{IdleRetry: 2 * time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	w := &Worker{
		Client:  &Client{Base: ts.URL, Worker: "idler", Backoff: time.Millisecond},
		Poll:    2 * time.Millisecond,
		MaxIdle: 50 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idle worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle worker never exited")
	}
}

// TestWorkerMaxIdleWaitsForInFlightCell pins the idle accounting: a
// cell that simulates longer than MaxIdle must not make sibling slots
// (or the worker) give up while it is in flight.
func TestWorkerMaxIdleWaitsForInFlightCell(t *testing.T) {
	coord := New(Options{LeaseTTL: 5 * time.Second, IdleRetry: 2 * time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	slow := 300 * time.Millisecond
	w := &Worker{
		Client:   &Client{Base: ts.URL, Worker: "slowpoke", Backoff: time.Millisecond},
		Parallel: 2,
		Poll:     2 * time.Millisecond,
		MaxIdle:  50 * time.Millisecond, // much shorter than the cell
		Simulate: func(ctx context.Context, job string, spec campaign.Spec, cell campaign.Cell) campaign.CellResult {
			select {
			case <-time.After(slow):
			case <-ctx.Done():
			}
			return campaign.RunCell(spec, cell)
		},
	}
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(context.Background()) }()

	got, err := coord.Dispatch(context.Background(), "c1", oneCellSpec(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Errors != 0 || len(got.Cells) != 1 {
		t.Fatalf("slow cell did not complete cleanly: %+v", got)
	}
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never wound down after the slow cell")
	}
}

// TestClientRetryAfterAndBackoff pins the client's transient-failure
// handling: a 503 with Retry-After and a bare 500 are both retried
// (the first honoring the header), a 400 is not.
func TestClientRetryAfterAndBackoff(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case 2:
			http.Error(w, "hiccup", http.StatusInternalServerError)
		default:
			writeJSON(w, http.StatusOK, LeaseGrant{Status: StatusIdle, RetryNS: 1000})
		}
	}))
	defer ts.Close()

	cl := &Client{Base: ts.URL, Worker: "w", Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	g, err := cl.Lease(context.Background())
	if err != nil {
		t.Fatalf("lease through transient failures: %v", err)
	}
	if g.Status != StatusIdle || calls.Load() != 3 {
		t.Fatalf("grant %+v after %d calls, want idle after 3", g, calls.Load())
	}

	// Non-retryable: a 400 fails immediately.
	calls.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer ts2.Close()
	cl2 := &Client{Base: ts2.URL, Worker: "w", Backoff: time.Millisecond}
	if _, err := cl2.Lease(context.Background()); err == nil {
		t.Fatal("400 response retried into success")
	}
	if calls.Load() != 1 {
		t.Fatalf("400 response tried %d times, want 1", calls.Load())
	}
}

// TestDispatchDuplicateJobID pins the registry invariant: two live
// dispatches cannot share a job id.
func TestDispatchDuplicateJobID(t *testing.T) {
	coord := New(Options{IdleRetry: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	go func() {
		close(started)
		coord.Dispatch(ctx, "dup", gridSpec(), nil, nil, nil)
	}()
	<-started
	for coord.lookup("dup") == nil {
		time.Sleep(time.Millisecond)
	}
	if _, err := coord.Dispatch(context.Background(), "dup", gridSpec(), nil, nil, nil); err == nil {
		t.Fatal("duplicate job id dispatched")
	}
}
