package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Chaos injection: the coordinator's fault-injection test hooks,
// exercised by cmd/twmload's soak harness. When Options.Chaos is set
// the coordinator exposes POST/GET /cluster/chaos, and armed
// injections apply to the worker-facing endpoints (lease, renew,
// complete): a pending delay budget sleeps matching requests, a
// pending error budget answers them with a chosen status (and an
// optional Retry-After header) instead of handling them — driving the
// worker Client's retry/backoff path from outside the process.
// Injections are counted both here (served back by GET /cluster/chaos)
// and in the twm_cluster_chaos_injections_total metric, so a soak run
// can assert the two surfaces agree and that every injected fault is
// accounted for. Without Options.Chaos the endpoint answers 404 and no
// interception happens — production coordinators carry no chaos
// surface.

// ChaosRequest arms one round of injections (POST /cluster/chaos). A
// new request replaces any pending budgets; injected totals are
// cumulative across rounds.
type ChaosRequest struct {
	// Path restricts the injection to one worker-facing endpoint
	// ("lease", "renew", or "complete"); empty matches all three.
	Path string `json:"path,omitempty"`
	// DelayMS delays the next DelayN matching requests by this many
	// milliseconds before handling them.
	DelayMS int `json:"delay_ms,omitempty"`
	DelayN  int `json:"delay_n,omitempty"`
	// Code answers the next CodeN matching requests with this HTTP
	// status (400-599) instead of handling them.
	Code  int `json:"code,omitempty"`
	CodeN int `json:"code_n,omitempty"`
	// RetryAfter, when non-empty, is sent as the Retry-After header on
	// injected errors — delta-seconds ("2") or an HTTP-date.
	RetryAfter string `json:"retry_after,omitempty"`
}

// ChaosStatus is the GET /cluster/chaos response (and the POST
// acknowledgment): pending budgets plus cumulative injected totals.
type ChaosStatus struct {
	Enabled        bool  `json:"enabled"`
	PendingDelays  int   `json:"pending_delays"`
	PendingErrors  int   `json:"pending_errors"`
	DelaysInjected int64 `json:"delays_injected"`
	ErrorsInjected int64 `json:"errors_injected"`
}

// chaos holds the armed injection state. The zero value is inert.
type chaos struct {
	mu             sync.Mutex
	path           string
	delay          time.Duration
	delayN         int
	code           int
	codeN          int
	retryAfter     string
	delaysInjected int64
	errorsInjected int64
}

// arm validates and installs one injection round.
func (c *chaos) arm(req ChaosRequest) error {
	switch req.Path {
	case "", "lease", "renew", "complete":
	default:
		return fmt.Errorf("cluster: chaos path %q is not lease, renew, or complete", req.Path)
	}
	if req.DelayN < 0 || req.CodeN < 0 || req.DelayMS < 0 {
		return fmt.Errorf("cluster: chaos budgets must be non-negative")
	}
	if req.CodeN > 0 && (req.Code < 400 || req.Code > 599) {
		return fmt.Errorf("cluster: chaos code %d out of range [400, 599]", req.Code)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.path = req.Path
	c.delay = time.Duration(req.DelayMS) * time.Millisecond
	c.delayN = req.DelayN
	c.code = req.Code
	c.codeN = req.CodeN
	c.retryAfter = req.RetryAfter
	return nil
}

// status snapshots the injection state.
func (c *chaos) status(enabled bool) ChaosStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChaosStatus{
		Enabled:        enabled,
		PendingDelays:  c.delayN,
		PendingErrors:  c.codeN,
		DelaysInjected: c.delaysInjected,
		ErrorsInjected: c.errorsInjected,
	}
}

// intercept applies pending injections to one worker-facing request.
// It reports true when it wrote the response itself (an injected
// error); a pure delay sleeps and then lets normal handling proceed.
func (c *chaos) intercept(w http.ResponseWriter, r *http.Request) bool {
	op := strings.TrimPrefix(r.URL.Path, "/cluster/")
	if op != "lease" && op != "renew" && op != "complete" {
		return false
	}
	c.mu.Lock()
	if c.path != "" && c.path != op {
		c.mu.Unlock()
		return false
	}
	var sleep time.Duration
	if c.delayN > 0 {
		c.delayN--
		c.delaysInjected++
		sleep = c.delay
	}
	inject := false
	var code int
	var retryAfter string
	if c.codeN > 0 {
		c.codeN--
		c.errorsInjected++
		code, retryAfter = c.code, c.retryAfter
		inject = true
	}
	c.mu.Unlock()
	if sleep > 0 {
		metChaosInjections.With("delay").Inc()
		time.Sleep(sleep)
	}
	if !inject {
		return false
	}
	metChaosInjections.With("error").Inc()
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	writeError(w, code, fmt.Errorf("cluster: chaos injected %d", code))
	return true
}

// serveChaos handles /cluster/chaos: GET reads the injection status,
// POST arms a round. Both answer 404 unless the coordinator was built
// with Options.Chaos.
func (c *Coordinator) serveChaos(w http.ResponseWriter, r *http.Request) {
	if !c.opts.Chaos {
		writeError(w, http.StatusNotFound, fmt.Errorf("chaos injection disabled (coordinator runs without the chaos option)"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, c.chaos.status(true))
	case http.MethodPost:
		var req ChaosRequest
		if !decodeInto(w, r, &req) {
			return
		}
		if err := c.chaos.arm(req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, c.chaos.status(true))
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}
