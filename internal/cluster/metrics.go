package cluster

// Cluster metrics on the process-default obs registry. Lease-lifecycle
// counters are recorded centrally from the queue's own event stream
// (recordEvents), so the dispatch journal and /metrics can never
// disagree about what happened; gauges track the live queue state and
// are deleted when their job's dispatch ends, keeping label
// cardinality bounded by in-flight jobs.

import "twmarch/internal/obs"

var (
	metLeaseEvents = obs.NewCounter("twm_cluster_lease_events_total",
		"cluster scheduling events by kind (lease, expire, requeue, complete, duplicate, revoke, abandon)",
		"kind")
	metLeasesRenewed = obs.NewCounter("twm_cluster_leases_renewed_total",
		"lease heartbeats accepted").With()
	metQueueDepth = obs.NewGauge("twm_cluster_queue_depth",
		"cells waiting to be leased, per dispatching job", "job")
	metLeasesOut = obs.NewGauge("twm_cluster_leases_outstanding",
		"cells currently leased to workers, per dispatching job", "job")
	metJobsDispatching = obs.NewGauge("twm_cluster_jobs_dispatching",
		"jobs currently dispatching cells to the cluster").With()
	metWorkersLive = obs.NewGauge("twm_cluster_workers_live",
		"workers in the coordinator's heartbeat view").With()
	metWorkerHeartbeat = obs.NewGauge("twm_cluster_worker_heartbeat_timestamp_seconds",
		"unix time of each worker's last heartbeat; series are pruned with the heartbeat view", "worker")
	metChaosInjections = obs.NewCounter("twm_cluster_chaos_injections_total",
		"faults injected by the /cluster/chaos test surface, by kind (delay, error)",
		"kind")

	// Worker-side metrics (cmd/twmw).
	metWorkerLeases = obs.NewCounter("twm_worker_leases_total",
		"leases processed by this worker, by outcome (completed, gone, abandoned, error)",
		"outcome")
	metWorkerRetries = obs.NewCounter("twm_worker_retries_total",
		"client calls retried after a transport error, 5xx, or 429").With()
	metWorkerIdle = obs.NewCounter("twm_worker_idle_seconds_total",
		"seconds worker slots spent waiting for work").With()
)

// recordEvents tallies queue scheduling events into the lease-event
// counters. Shared by every queue regardless of whether a dispatch
// journal hook is attached.
func recordEvents(evs []Event) {
	for _, ev := range evs {
		metLeaseEvents.With(ev.Kind).Inc()
	}
}
