package cluster

import (
	"net/http"
	"testing"
	"time"
)

// respondWith builds a minimal response carrying one Retry-After value.
func respondWith(retryAfter string) *http.Response {
	h := make(http.Header)
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	return &http.Response{StatusCode: http.StatusTooManyRequests, Header: h}
}

// TestRetryDelayRetryAfterForms covers both RFC 9110 Retry-After forms
// (delta-seconds and HTTP-date) plus garbage values that must fall
// back to the computed backoff.
func TestRetryDelayRetryAfterForms(t *testing.T) {
	c := &Client{Backoff: 200 * time.Millisecond, MaxBackoff: 5 * time.Second}
	// The jittered fallback for attempt 0 is in [Backoff/2, Backoff].
	backMin, backMax := 100*time.Millisecond, 200*time.Millisecond

	cases := []struct {
		name       string
		retryAfter string
		// Exact expectation, or a [min, max] window for values derived
		// from the wall clock (HTTP-date) or from jitter (fallback).
		min, max time.Duration
	}{
		{"delta seconds", "3", 3 * time.Second, 3 * time.Second},
		{"delta zero", "0", 0, 0},
		{"http date future", time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat), 500 * time.Millisecond, 2 * time.Second},
		{"http date past", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, 0},
		{"http date ANSI C form", time.Now().Add(2 * time.Second).UTC().Format(time.ANSIC), 500 * time.Millisecond, 2 * time.Second},
		{"negative delta falls back", "-5", backMin, backMax},
		{"garbage falls back", "banana", backMin, backMax},
		{"empty falls back", "", backMin, backMax},
		{"float delta falls back", "1.5", backMin, backMax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := c.retryDelay(0, respondWith(tc.retryAfter))
			if d < tc.min || d > tc.max {
				t.Errorf("retryDelay(%q) = %v, want in [%v, %v]", tc.retryAfter, d, tc.min, tc.max)
			}
		})
	}
}

// TestRetryDelayNoResponse exercises the transport-error path (no
// response at all): pure jittered backoff, doubling per attempt up to
// the cap.
func TestRetryDelayNoResponse(t *testing.T) {
	c := &Client{Backoff: 200 * time.Millisecond, MaxBackoff: time.Second}
	for attempt, max := range map[int]time.Duration{0: 200 * time.Millisecond, 1: 400 * time.Millisecond, 5: time.Second} {
		d := c.retryDelay(attempt, nil)
		if d < max/2 || d > max {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, max/2, max)
		}
	}
}
