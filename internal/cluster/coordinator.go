package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/tracing"
)

// Options tunes the coordinator. The zero value gets production
// defaults from withDefaults.
type Options struct {
	// LeaseTTL is how long a granted lease lives without a renewal.
	// Workers heartbeat at a fraction of this. Default 15s.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease attempts per cell: a cell whose leases
	// expired this many times folds as an errored result instead of
	// requeueing forever. Default 5.
	MaxAttempts int
	// RetryBackoff is the requeue delay after a cell's first expired
	// lease; it doubles per further expiry up to MaxBackoff. Defaults
	// 250ms and 5s.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// IdleRetry is the poll backoff advertised to workers when nothing
	// is leasable. Default 500ms.
	IdleRetry time.Duration
	// Chaos exposes the /cluster/chaos fault-injection surface (see
	// chaos.go) — delays and error answers on the worker-facing
	// endpoints, driven from outside the process by the twmload soak
	// harness. Never enable it on a production coordinator.
	Chaos bool
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.IdleRetry <= 0 {
		o.IdleRetry = 500 * time.Millisecond
	}
	return o
}

// Coordinator is the dispatch side of cluster execution: it owns a
// lease queue per in-flight Dispatch call and serves the /cluster HTTP
// API workers poll. Safe for concurrent use; any number of jobs
// dispatch at once.
type Coordinator struct {
	opts  Options
	chaos chaos

	mu    sync.Mutex
	jobs  map[string]*queue
	order []string // registration order, for round-robin lease fairness
	next  int
	seen  map[string]time.Time // worker -> last heartbeat
}

// New returns a coordinator with opts (zero fields defaulted).
func New(opts Options) *Coordinator {
	return &Coordinator{
		opts: opts.withDefaults(),
		jobs: make(map[string]*queue),
		seen: make(map[string]time.Time),
	}
}

// register adds a job's queue; the job id must be unique among
// in-flight dispatches.
func (c *Coordinator) register(job string, q *queue) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[job]; ok {
		return fmt.Errorf("cluster: job %s already dispatching", job)
	}
	c.jobs[job] = q
	c.order = append(c.order, job)
	metJobsDispatching.Set(float64(len(c.jobs)))
	return nil
}

// unregister drops a job's queue and revokes its outstanding leases;
// every later lease, renew, or complete touching the job answers gone.
func (c *Coordinator) unregister(job string) {
	c.mu.Lock()
	q := c.jobs[job]
	delete(c.jobs, job)
	metJobsDispatching.Set(float64(len(c.jobs)))
	for i, id := range c.order {
		if id == job {
			c.order = append(c.order[:i], c.order[i+1:]...)
			if c.next > i {
				c.next--
			}
			break
		}
	}
	c.mu.Unlock()
	if q != nil {
		q.close(time.Now())
	}
}

// lookup returns the job's queue, or nil for a job the coordinator no
// longer (or never) knew — the gone case.
func (c *Coordinator) lookup(job string) *queue {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[job]
}

// seenHorizon is how long a silent worker stays in the heartbeat view
// before it is pruned, in lease TTLs. Workers churn (twmw ids default
// to host-pid), so the map must not grow with every process ever seen.
const seenHorizon = 20

// heartbeat records a worker sighting and prunes long-silent workers.
func (c *Coordinator) heartbeat(worker string, now time.Time) {
	if worker == "" {
		return
	}
	cutoff := now.Add(-seenHorizon * c.opts.LeaseTTL)
	c.mu.Lock()
	c.seen[worker] = now
	metWorkerHeartbeat.With(worker).Set(float64(now.UnixNano()) / 1e9)
	for w, t := range c.seen {
		if t.Before(cutoff) {
			delete(c.seen, w)
			metWorkerHeartbeat.Delete(w)
		}
	}
	metWorkersLive.Set(float64(len(c.seen)))
	c.mu.Unlock()
}

// Lease grants one cell from any dispatching job, round-robin across
// jobs so one huge grid cannot starve the others. When nothing is
// grantable the returned grant is StatusIdle with the retry backoff.
func (c *Coordinator) Lease(worker string, now time.Time) *LeaseGrant {
	c.heartbeat(worker, now)
	c.mu.Lock()
	queues := make([]*queue, 0, len(c.order))
	for i := 0; i < len(c.order); i++ {
		queues = append(queues, c.jobs[c.order[(c.next+i)%len(c.order)]])
	}
	if len(c.order) > 0 {
		c.next = (c.next + 1) % len(c.order)
	}
	c.mu.Unlock()
	retry := c.opts.IdleRetry
	for _, q := range queues {
		grant, wait := q.lease(worker, now)
		if grant != nil {
			return grant
		}
		if wait > 0 && wait < retry {
			retry = wait
		}
	}
	return &LeaseGrant{Status: StatusIdle, RetryNS: retry.Nanoseconds()}
}

// Renew heartbeats a lease; StatusGone tells the worker to abandon the
// cell.
func (c *Coordinator) Renew(req RenewRequest, now time.Time) RenewResponse {
	c.heartbeat(req.Worker, now)
	q := c.lookup(req.Job)
	if q == nil || !q.renew(req.LeaseID, now) {
		return RenewResponse{Status: StatusGone}
	}
	return RenewResponse{Status: StatusOK, TTLNS: c.opts.LeaseTTL.Nanoseconds()}
}

// Complete folds a worker's result into its job (via the job's
// Dispatch collector). Duplicates acknowledge as StatusOK and fold
// nothing; a dead job answers StatusGone; a result that contradicts
// the job's own grid expansion is an error.
func (c *Coordinator) Complete(req CompleteRequest, now time.Time) (CompleteResponse, error) {
	c.heartbeat(req.Worker, now)
	q := c.lookup(req.Job)
	if q == nil {
		return CompleteResponse{Status: StatusGone}, nil
	}
	st, err := q.complete(req.LeaseID, req.Result, now)
	if err != nil {
		return CompleteResponse{}, err
	}
	q.recordSpans(req.Spans)
	return CompleteResponse{Status: st}, nil
}

// Workers snapshots the per-worker heartbeat view.
func (c *Coordinator) Workers(now time.Time) []WorkerStatus {
	c.mu.Lock()
	workers := make([]string, 0, len(c.seen))
	last := make(map[string]time.Time, len(c.seen))
	for w, t := range c.seen {
		workers = append(workers, w)
		last[w] = t
	}
	queues := make([]*queue, 0, len(c.jobs))
	for _, q := range c.jobs {
		queues = append(queues, q)
	}
	c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(workers))
	for _, w := range workers {
		n := 0
		for _, q := range queues {
			n += q.workerLeases(w)
		}
		out = append(out, WorkerStatus{Worker: w, LastSeenNS: now.Sub(last[w]).Nanoseconds(), Leases: n})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Worker < out[b].Worker })
	return out
}

// Dispatch runs one campaign by leasing its cells to workers instead
// of simulating locally — the cluster counterpart of Engine.Stream,
// with the same collector contract: each accepted result is folded
// into agg, counted in prog, and emitted to every sink exactly once,
// serialized. agg may be pre-seeded with journaled results (the
// recovery path); seeded cells are neither leased nor re-emitted. The
// events hook (may be nil) observes every scheduling event — twmd
// journals these. The returned aggregate is agg's final snapshot,
// byte-identical in canonical form to a single-process run of the same
// spec for any worker placement, interleaving, or retry history.
func (c *Coordinator) Dispatch(ctx context.Context, job string, spec campaign.Spec, prog *campaign.Progress, agg *campaign.Aggregator, events func(Event), sinks ...campaign.Sink) (*campaign.Aggregate, error) {
	start := time.Now()
	spec = spec.Normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	if agg == nil {
		agg = campaign.NewAggregator(spec)
	}
	if prog == nil {
		prog = &campaign.Progress{}
	}
	pending := make([]campaign.Cell, 0, len(cells))
	for _, cell := range cells {
		if !agg.Has(cell.Index) {
			pending = append(pending, cell)
		}
	}
	prog.Begin(int64(len(cells)), int64(len(cells)-len(pending)))
	defer prog.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tctx, span := tracing.Start(ctx, "cluster.dispatch", tracing.KindInternal)
	span.SetAttr("job", job)
	span.SetAttr("cells", strconv.Itoa(len(cells)))
	span.SetAttr("pending", strconv.Itoa(len(pending)))
	defer func() {
		if ctx.Err() != nil {
			span.SetStatus(tracing.StatusCanceled)
		}
		span.Finish()
	}()
	if len(pending) == 0 {
		a := agg.Snapshot()
		a.WallClockNS = time.Since(start).Nanoseconds()
		return a, nil
	}

	// The queue delivers at most one result per pending cell, so this
	// buffer guarantees its sends never block while it holds its lock.
	results := make(chan campaign.CellResult, len(pending))
	q := newQueue(tctx, job, spec, cells, pending, results, c.opts, events)
	if err := c.register(job, q); err != nil {
		return nil, err
	}
	defer c.unregister(job)

	// Expiry is driven two ways: lazily on every worker call, and by
	// this ticker so a queue all of whose workers died still requeues.
	period := c.opts.LeaseTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()

	for remaining := len(pending); remaining > 0; {
		select {
		case r := <-results:
			if agg.Has(r.Index) {
				continue // the queue already dedups; belt and braces
			}
			agg.Add(r)
			prog.Step()
			remaining--
			for _, s := range sinks {
				if s != nil {
					s.Emit(r)
				}
			}
		case <-tick.C:
			q.expire(time.Now())
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	a := agg.Snapshot()
	a.WallClockNS = time.Since(start).Nanoseconds()
	return a, nil
}

// ServeHTTP serves the worker-facing API under /cluster/: POST lease,
// renew, and complete, plus GET workers (the heartbeat listing).
// cmd/twmd mounts this on its mux when -cluster is set.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/cluster/chaos" {
		c.serveChaos(w, r)
		return
	}
	if c.opts.Chaos && c.chaos.intercept(w, r) {
		return
	}
	now := time.Now()
	switch r.URL.Path {
	case "/cluster/lease":
		var req LeaseRequest
		if !decodeInto(w, r, &req) {
			return
		}
		grant := c.Lease(req.Worker, now)
		if grant.Status == StatusIdle {
			// Retry-After is advisory here (the body carries the precise
			// backoff); proxies and generic clients understand the header.
			w.Header().Set("Retry-After", strconv.Itoa(int(grant.RetryNS/1e9)+1))
		}
		writeJSON(w, http.StatusOK, grant)
	case "/cluster/renew":
		var req RenewRequest
		if !decodeInto(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.Renew(req, now))
	case "/cluster/complete":
		var req CompleteRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.Complete(req, now)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	case "/cluster/workers":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		writeJSON(w, http.StatusOK, c.Workers(now))
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no cluster endpoint %q", r.URL.Path))
	}
}

// decodeInto parses a POST body, writing the HTTP error itself when
// the request is unusable.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
