// Package cluster fans a campaign's cell grid out across processes
// and machines: a coordinator (embedded in cmd/twmd behind -cluster)
// keeps a lease queue over the grid's cells, and any number of twmw
// workers poll it over HTTP, simulate leased cells locally, and report
// results back.
//
// The design leans on the properties the campaign engine already
// guarantees. Every cell carries its deterministic seed, so a result
// is a pure function of (spec, cell) no matter which worker computes
// it; and the Aggregator's fold is commutative and dup-safe, so the
// coordinator can accept completions in any order — including
// duplicates from retried requests or from a lease that expired and
// was re-run elsewhere — and still produce an aggregate byte-identical
// to a single-process Engine.Stream run. The coordinator folds through
// the same collector discipline as the engine (one goroutine, fold
// then emit to each Sink exactly once), so twmd's event hub, the
// journal, and -datadir recovery work unchanged under dispatch.
//
// Failure handling: leases carry a TTL and are kept alive by worker
// heartbeats (renew); an expired lease requeues its cell with
// exponential backoff, and a cell that exhausts its attempts folds as
// an errored result rather than wedging the campaign. A lease or job
// the coordinator no longer knows — evicted, canceled, drained, or
// expired — answers "gone", telling the worker to abandon the cell.
package cluster

import (
	"twmarch/internal/campaign"
	"twmarch/internal/tracing"
)

// Wire statuses returned by the coordinator's /cluster endpoints.
const (
	// StatusLease marks a lease grant: the response carries a cell.
	StatusLease = "lease"
	// StatusIdle means nothing is leasable right now; retry after the
	// advertised backoff.
	StatusIdle = "idle"
	// StatusOK acknowledges a renew or complete.
	StatusOK = "ok"
	// StatusGone is terminal for the lease: its job was evicted,
	// canceled, or drained, or the lease expired and moved on. The
	// worker stops simulating the cell and discards it.
	StatusGone = "gone"
)

// LeaseRequest asks the coordinator for one cell to simulate
// (POST /cluster/lease).
type LeaseRequest struct {
	// Worker identifies the requester for heartbeat accounting and the
	// dispatch event log.
	Worker string `json:"worker"`
}

// LeaseGrant is the /cluster/lease response. Status selects which
// fields are populated: a StatusLease grant carries the lease id, the
// owning job, the cell (with its deterministic seed), the spec the
// cell must be simulated under, and the lease TTL the worker's
// heartbeats must beat; StatusIdle carries only the retry backoff.
type LeaseGrant struct {
	Status  string         `json:"status"`
	LeaseID string         `json:"lease_id,omitempty"`
	Job     string         `json:"job,omitempty"`
	Spec    *campaign.Spec `json:"spec,omitempty"`
	Cell    *campaign.Cell `json:"cell,omitempty"`
	TTLNS   int64          `json:"ttl_ns,omitempty"`
	RetryNS int64          `json:"retry_ns,omitempty"`
	// TraceParent carries the coordinator-side lease span's identity
	// so the worker's cell execution continues the job's trace.
	TraceParent string `json:"traceparent,omitempty"`
}

// RenewRequest is a lease heartbeat (POST /cluster/renew): it pushes
// the lease deadline out by one TTL.
type RenewRequest struct {
	Worker  string `json:"worker"`
	Job     string `json:"job"`
	LeaseID string `json:"lease_id"`
}

// RenewResponse acknowledges a heartbeat (StatusOK, with the renewed
// TTL) or terminates the lease (StatusGone).
type RenewResponse struct {
	Status string `json:"status"`
	TTLNS  int64  `json:"ttl_ns,omitempty"`
}

// CompleteRequest reports a simulated cell (POST /cluster/complete).
// The result embeds the cell — including its seed — so the
// coordinator can verify it against its own grid expansion before
// folding.
type CompleteRequest struct {
	Worker  string              `json:"worker"`
	Job     string              `json:"job"`
	LeaseID string              `json:"lease_id"`
	Result  campaign.CellResult `json:"result"`
	// Spans are the worker-side spans finished while simulating the
	// leased cell, shipped back so the coordinator can assemble the
	// job's full cross-process timeline.
	Spans []tracing.SpanRecord `json:"spans,omitempty"`
}

// CompleteResponse acknowledges a completion. StatusOK covers the
// duplicate case too — folding a duplicate is a no-op, so the worker
// needs no distinct handling; StatusGone means the job is dead and the
// result was discarded.
type CompleteResponse struct {
	Status string `json:"status"`
}

// WorkerStatus is one row of the GET /cluster/workers listing: the
// coordinator's per-worker heartbeat view.
type WorkerStatus struct {
	// Worker is the id the worker reports in its requests.
	Worker string `json:"worker"`
	// LastSeenNS is nanoseconds since the worker's last lease, renew,
	// or complete.
	LastSeenNS int64 `json:"last_seen_ns"`
	// Leases counts the worker's outstanding leases.
	Leases int `json:"leases"`
}

// Event is one scheduling event of a dispatched campaign — the
// coordinator emits these into the hook Dispatch is given, and twmd
// journals them to the job's dispatch side log.
type Event struct {
	// TimeNS is the event's wall-clock timestamp.
	TimeNS int64 `json:"time_ns"`
	// Kind is "lease", "complete", "duplicate", "expire", "requeue",
	// "abandon", or "revoke".
	Kind string `json:"kind"`
	// Cell is the affected cell's grid index.
	Cell int `json:"cell"`
	// Worker and Lease identify the holder, when the event has one.
	Worker string `json:"worker,omitempty"`
	Lease  string `json:"lease,omitempty"`
	// Attempt is the cell's completed lease attempts so far.
	Attempt int `json:"attempt,omitempty"`
}

// Event kinds recorded in the dispatch event log.
const (
	// EventLease marks a lease grant.
	EventLease = "lease"
	// EventComplete marks a result accepted and folded.
	EventComplete = "complete"
	// EventDuplicate marks a completion for a cell already folded —
	// dropped as a no-op.
	EventDuplicate = "duplicate"
	// EventExpire marks a lease passing its deadline.
	EventExpire = "expire"
	// EventRequeue marks an expired cell re-entering the queue with
	// backoff.
	EventRequeue = "requeue"
	// EventAbandon marks a cell that exhausted its attempts and folded
	// as an errored result.
	EventAbandon = "abandon"
	// EventRevoke marks an outstanding lease discarded because its job
	// ended (evicted, canceled, or drained).
	EventRevoke = "revoke"
)
