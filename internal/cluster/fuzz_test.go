package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzClusterAPIDecode throws malformed, truncated, and type-confused
// JSON at every POST decoder of the /cluster API (lease, renew,
// complete, chaos). The chaos soak harness generates plenty of hostile
// traffic — killed workers mid-write, injected proxies, retried
// partial bodies — and the contract is strict: the coordinator answers
// 400 for anything it cannot decode and never panics. Valid decodes
// must answer 200 (lease/renew/chaos; an unknown job is still a clean
// answer) with a JSON body either way.
func FuzzClusterAPIDecode(f *testing.F) {
	valid := [][]byte{
		[]byte(`{"worker":"w1"}`),
		[]byte(`{"worker":"w1","job":"c1","lease_id":"c1-1"}`),
		[]byte(`{"worker":"w1","job":"c1","lease_id":"c1-1","result":{"index":0,"faults":3,"detected":3}}`),
		[]byte(`{"delay_ms":10,"delay_n":2,"code":429,"code_n":1,"retry_after":"1"}`),
	}
	for i, body := range valid {
		f.Add(uint8(i), body)
	}
	// Hostile seeds: truncations, wrong types, deep nesting, huge
	// numbers, trailing garbage, raw bytes.
	for _, body := range [][]byte{
		[]byte(`{"worker":`),
		[]byte(`{"worker":123}`),
		[]byte(`{"result":"notanobject"}`),
		[]byte(`{"result":{"index":99999999999999999999999}}`),
		[]byte(`[1,2,3]`),
		[]byte(`"just a string"`),
		[]byte(`{"worker":"w"}{"worker":"w2"}`),
		[]byte("\x00\xff\xfe"),
		[]byte(`{"result":{"cell":{"seed":-1,"width":"wide"}}}`),
		bytes.Repeat([]byte(`{"result":`), 50),
		{},
	} {
		for which := uint8(0); which < 4; which++ {
			f.Add(which, body)
		}
	}

	paths := []string{"/cluster/lease", "/cluster/renew", "/cluster/complete", "/cluster/chaos"}
	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		coord := New(Options{Chaos: true, IdleRetry: time.Millisecond})
		path := paths[int(which)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		coord.ServeHTTP(rec, req) // must not panic, whatever the body

		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("%s with %q: status %d, want 200 or 400", path, body, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s with %q: non-JSON response %q", path, body, rec.Body.Bytes())
		}
	})
}
