package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/tracing"
)

// Client is the worker side of the /cluster wire protocol: typed
// lease/renew/complete calls against one coordinator, with jittered
// exponential backoff on transport errors and 5xx/429 responses. A
// Retry-After header on a rejection overrides the computed backoff —
// the coordinator (or a proxy in front of it) names its own price.
// Safe for concurrent use by a worker's parallel slots.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://twmd:8080".
	Base string
	// Worker is the id reported in every request; it keys the
	// coordinator's heartbeat view and the dispatch event log.
	Worker string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds the retry attempts per call (default 4); the
	// call fails with the last error once they are spent.
	MaxRetries int
	// Backoff is the first retry delay (default 200ms), doubling per
	// attempt up to MaxBackoff (default 5s), each draw jittered to
	// [d/2, d) so a worker fleet losing its coordinator doesn't
	// stampede the restart.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Lease asks for one cell. The grant is StatusLease (cell attached) or
// StatusIdle (nothing now; honor RetryNS before polling again).
func (c *Client) Lease(ctx context.Context) (*LeaseGrant, error) {
	var grant LeaseGrant
	if err := c.post(ctx, "/cluster/lease", LeaseRequest{Worker: c.Worker}, &grant); err != nil {
		return nil, err
	}
	return &grant, nil
}

// Renew heartbeats a lease. The returned status is StatusOK or
// StatusGone; gone means stop simulating the cell and discard it.
func (c *Client) Renew(ctx context.Context, job, leaseID string) (string, error) {
	var resp RenewResponse
	if err := c.post(ctx, "/cluster/renew", RenewRequest{Worker: c.Worker, Job: job, LeaseID: leaseID}, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// Complete reports a simulated cell, shipping along the worker-side
// spans finished while running it (may be nil). StatusOK covers
// duplicates (the coordinator folds them as no-ops), so retrying a
// Complete whose response was lost is always safe.
func (c *Client) Complete(ctx context.Context, job, leaseID string, res campaign.CellResult, spans []tracing.SpanRecord) (string, error) {
	var resp CompleteResponse
	if err := c.post(ctx, "/cluster/complete", CompleteRequest{Worker: c.Worker, Job: job, LeaseID: leaseID, Result: res, Spans: spans}, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// post sends one JSON request with retries. Retried: transport errors,
// 5xx, and 429. Not retried: other 4xx (the request itself is wrong)
// and context cancellation.
func (c *Client) post(ctx context.Context, path string, reqBody, respBody any) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("cluster: encode request: %v", err)
	}
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 4
	}
	var last error
	for attempt := 0; ; attempt++ {
		resp, err := c.try(ctx, path, raw, respBody, attempt)
		if err == nil {
			return nil
		}
		last = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !retryable(resp) || attempt >= maxRetries {
			return last
		}
		metWorkerRetries.Inc()
		d := c.retryDelay(attempt, resp)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// try performs one attempt. When the context carries a tracing span,
// the attempt runs under its own client span — named after the path,
// tagged with the attempt number, traceparent injected — so a retried
// call shows each try on the timeline. A bare context (the worker's
// idle lease polls) stays span-free and header-free. The response is
// returned (with its body drained and closed) alongside the error so
// the retry loop can read status and Retry-After.
func (c *Client) try(ctx context.Context, path string, raw []byte, respBody any, attempt int) (resp *http.Response, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("cluster: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tracing.SpanFromContext(ctx) != nil {
		var span *tracing.Span
		_, span = tracing.Start(ctx, "cluster"+path, tracing.KindClient)
		span.SetAttr("attempt", strconv.Itoa(attempt))
		tracing.Inject(req.Header, span.Context())
		defer func() {
			if err != nil {
				span.SetStatus(tracing.StatusError)
			}
			span.Finish()
		}()
	}
	resp, err = c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return resp, fmt.Errorf("cluster: %s: read response: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp, fmt.Errorf("cluster: %s: %s: %.200s", path, resp.Status, body)
	}
	if err := json.Unmarshal(body, respBody); err != nil {
		return resp, fmt.Errorf("cluster: %s: parse response: %v", path, err)
	}
	return resp, nil
}

// retryable reports whether the attempt's failure class is worth
// retrying: no response at all (transport error), 5xx, or 429.
func retryable(resp *http.Response) bool {
	if resp == nil {
		return true
	}
	return resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
}

// retryDelay picks the wait before the next attempt: Retry-After when
// the server sent one, otherwise exponential backoff with equal
// jitter. Both RFC 9110 Retry-After forms are honored — delta-seconds
// ("2") and HTTP-date (an absolute time, waited for relative to now; a
// date already in the past means retry immediately). A header that
// parses as neither falls through to the computed backoff.
func (c *Client) retryDelay(attempt int, resp *http.Response) time.Duration {
	if resp != nil {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				return time.Duration(secs) * time.Second
			}
			if when, err := http.ParseTime(s); err == nil {
				if d := time.Until(when); d > 0 {
					return d
				}
				return 0
			}
		}
	}
	base := c.Backoff
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := capDoubling(base, maxB, attempt)
	// Equal jitter: [d/2, d). Worker backoff needs no reproducibility,
	// so the global source is fine.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
