package cluster

import (
	"strings"
	"testing"
	"time"

	"twmarch/internal/campaign"
)

// testOpts keeps the clock-dependent knobs small and explicit; queue
// methods take the current time, so these tests never sleep.
func testOpts() Options {
	return Options{
		LeaseTTL:     50 * time.Millisecond,
		MaxAttempts:  3,
		RetryBackoff: 20 * time.Millisecond,
		MaxBackoff:   100 * time.Millisecond,
		IdleRetry:    30 * time.Millisecond,
	}.withDefaults()
}

// oneCellSpec expands to exactly one grid cell.
func oneCellSpec() campaign.Spec {
	return campaign.Spec{
		Tests:   []string{"MATS"},
		Widths:  []int{2},
		Words:   []int{2},
		Schemes: []string{campaign.SchemeTWM},
		Modes:   []string{campaign.ModeCompare},
		Classes: []string{"SAF"},
		Seed:    7,
	}
}

// newTestQueue builds a queue over the spec's full grid, recording
// every dispatch event.
func newTestQueue(t *testing.T, spec campaign.Spec, opts Options) (*queue, chan campaign.CellResult, *[]Event) {
	t.Helper()
	spec = spec.Normalized()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan campaign.CellResult, len(cells))
	var events []Event
	q := newQueue(nil, "j1", spec, cells, cells, results, opts, func(ev Event) { events = append(events, ev) })
	return q, results, &events
}

func kinds(events []Event) string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.Kind
	}
	return strings.Join(out, ",")
}

// TestQueueLeaseExpiryRequeue pins the failure path: a lease that
// stops renewing expires, its cell requeues behind the backoff gate,
// and the replacement lease carries the bumped attempt while the dead
// lease answers gone.
func TestQueueLeaseExpiryRequeue(t *testing.T) {
	q, results, events := newTestQueue(t, oneCellSpec(), testOpts())
	t0 := time.Now()

	g, _ := q.lease("w1", t0)
	if g == nil || g.Status != StatusLease || g.Cell.Index != 0 {
		t.Fatalf("first lease: %+v", g)
	}
	if g.Spec == nil || len(g.Spec.Tests) == 0 || g.Cell.Seed == 0 {
		t.Fatalf("lease missing spec or derived seed: %+v", g)
	}
	// A renewal pushes the deadline out: no expiry at t0+60ms.
	if !q.renew(g.LeaseID, t0.Add(30*time.Millisecond)) {
		t.Fatal("renew of a live lease refused")
	}
	q.expire(t0.Add(60 * time.Millisecond))
	if g2, _ := q.lease("w2", t0.Add(60*time.Millisecond)); g2 != nil {
		t.Fatalf("cell leased twice while the first lease is live: %+v", g2)
	}

	// Past the renewed deadline the cell requeues — but only becomes
	// leasable after the backoff.
	q.expire(t0.Add(100 * time.Millisecond))
	if g2, wait := q.lease("w2", t0.Add(110*time.Millisecond)); g2 != nil || wait <= 0 {
		t.Fatalf("requeued cell leasable before its backoff (grant %+v, wait %s)", g2, wait)
	}
	g2, _ := q.lease("w2", t0.Add(130*time.Millisecond))
	if g2 == nil || g2.Cell.Index != 0 {
		t.Fatalf("requeued cell not leasable after backoff: %+v", g2)
	}
	if g2.LeaseID == g.LeaseID {
		t.Fatal("replacement lease reused the dead lease id")
	}

	// The dead lease is gone for renewals.
	if q.renew(g.LeaseID, t0.Add(140*time.Millisecond)) {
		t.Fatal("expired lease still renewable")
	}
	if len(results) != 0 {
		t.Fatalf("%d results delivered with nothing completed", len(results))
	}
	want := "lease,expire,requeue,lease"
	if got := kinds(*events); got != want {
		t.Fatalf("event trail %q, want %q", got, want)
	}
}

// TestQueueAbandonAfterMaxAttempts pins the retry bound: a cell whose
// leases keep expiring folds as an errored result instead of
// requeueing forever, so the campaign still terminates.
func TestQueueAbandonAfterMaxAttempts(t *testing.T) {
	opts := testOpts()
	opts.MaxAttempts = 2
	q, results, events := newTestQueue(t, oneCellSpec(), opts)
	now := time.Now()
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		g, wait := q.lease("w1", now)
		if g == nil {
			now = now.Add(wait)
			g, _ = q.lease("w1", now)
		}
		if g == nil {
			t.Fatalf("attempt %d: no lease", attempt)
		}
		now = now.Add(opts.LeaseTTL + time.Millisecond)
		q.expire(now)
	}
	select {
	case r := <-results:
		if r.Err == "" || r.Index != 0 {
			t.Fatalf("abandoned cell folded as %+v, want an errored result", r)
		}
	default:
		t.Fatal("exhausted cell delivered no result")
	}
	if g, _ := q.lease("w1", now.Add(time.Hour)); g != nil {
		t.Fatalf("abandoned cell leased again: %+v", g)
	}
	if got := kinds(*events); !strings.HasSuffix(got, "expire,abandon") {
		t.Fatalf("event trail %q does not end in expire,abandon", got)
	}
}

// TestQueueDuplicateComplete pins exactly-once folding at the queue:
// the first completion of a cell is delivered, every later one — a
// retried request, or a late result from a lease that already expired
// and was re-run elsewhere — acknowledges OK and delivers nothing.
func TestQueueDuplicateComplete(t *testing.T) {
	q, results, events := newTestQueue(t, oneCellSpec(), testOpts())
	t0 := time.Now()
	g, _ := q.lease("w1", t0)
	res := campaign.CellResult{Cell: *g.Cell, Faults: 8, Detected: 8}

	st, err := q.complete(g.LeaseID, res, t0.Add(time.Millisecond))
	if err != nil || st != StatusOK {
		t.Fatalf("first complete: %s, %v", st, err)
	}
	if len(results) != 1 {
		t.Fatalf("first complete delivered %d results", len(results))
	}
	<-results

	// A retried request (the worker lost the first response).
	st, err = q.complete(g.LeaseID, res, t0.Add(2*time.Millisecond))
	if err != nil || st != StatusOK {
		t.Fatalf("duplicate complete: %s, %v", st, err)
	}
	if len(results) != 0 {
		t.Fatal("duplicate completion delivered a second result")
	}
	if got := kinds(*events); got != "lease,complete,duplicate" {
		t.Fatalf("event trail %q", got)
	}
}

// TestQueueLateCompleteWins pins the expired-lease race: worker A's
// lease expires and the cell is re-leased to B, then A's result
// arrives anyway. The work is valid — A's completion is accepted, B's
// replacement lease is revoked, and B's own completion later folds as
// a duplicate no-op.
func TestQueueLateCompleteWins(t *testing.T) {
	opts := testOpts()
	q, results, _ := newTestQueue(t, oneCellSpec(), opts)
	t0 := time.Now()
	gA, _ := q.lease("A", t0)
	res := campaign.CellResult{Cell: *gA.Cell, Faults: 8, Detected: 8}

	// A's lease expires; after the backoff the cell goes to B.
	q.expire(t0.Add(opts.LeaseTTL + time.Millisecond))
	gB, _ := q.lease("B", t0.Add(opts.LeaseTTL+opts.RetryBackoff+2*time.Millisecond))
	if gB == nil || gB.Cell.Index != 0 {
		t.Fatalf("requeued cell not re-leased: %+v", gB)
	}

	// A completes late, with its dead lease id.
	st, err := q.complete(gA.LeaseID, res, t0.Add(opts.LeaseTTL+opts.RetryBackoff+3*time.Millisecond))
	if err != nil || st != StatusOK {
		t.Fatalf("late complete: %s, %v", st, err)
	}
	if len(results) != 1 {
		t.Fatalf("late complete delivered %d results", len(results))
	}

	// B's lease was revoked with it; B's completion is a duplicate.
	if q.renew(gB.LeaseID, t0.Add(opts.LeaseTTL+opts.RetryBackoff+4*time.Millisecond)) {
		t.Fatal("revoked replacement lease still renewable")
	}
	st, err = q.complete(gB.LeaseID, res, t0.Add(opts.LeaseTTL+opts.RetryBackoff+5*time.Millisecond))
	if err != nil || st != StatusOK {
		t.Fatalf("B's duplicate complete: %s, %v", st, err)
	}
	if len(results) != 1 {
		t.Fatal("duplicate completion folded twice")
	}
}

// TestQueueMismatchedLeaseDoesNotOrphan pins a wedge bug: a
// completion whose lease id names one cell's lease but whose result is
// another cell must not consume the named lease — the named lease's
// cell would end up neither pending, leased, nor done, and the
// campaign would never finish.
func TestQueueMismatchedLeaseDoesNotOrphan(t *testing.T) {
	spec := oneCellSpec()
	spec.Words = []int{2, 3} // two cells
	q, results, _ := newTestQueue(t, spec, testOpts())
	t0 := time.Now()
	g0, _ := q.lease("A", t0)
	g1, _ := q.lease("B", t0)
	if g0 == nil || g1 == nil || g0.Cell.Index == g1.Cell.Index {
		t.Fatalf("setup leases: %+v %+v", g0, g1)
	}

	// Complete cell g1 under g0's lease id.
	res1 := campaign.CellResult{Cell: *g1.Cell, Faults: 4, Detected: 4}
	st, err := q.complete(g0.LeaseID, res1, t0.Add(time.Millisecond))
	if err != nil || st != StatusOK {
		t.Fatalf("mismatched-lease complete: %s, %v", st, err)
	}
	if len(results) != 1 {
		t.Fatalf("complete delivered %d results, want 1", len(results))
	}
	<-results

	// g0's lease survived; its own cell can still complete normally.
	if !q.renew(g0.LeaseID, t0.Add(2*time.Millisecond)) {
		t.Fatal("unrelated lease consumed by a mismatched completion")
	}
	res0 := campaign.CellResult{Cell: *g0.Cell, Faults: 4, Detected: 4}
	st, err = q.complete(g0.LeaseID, res0, t0.Add(3*time.Millisecond))
	if err != nil || st != StatusOK {
		t.Fatalf("completing the surviving lease: %s, %v", st, err)
	}
	if len(results) != 1 {
		t.Fatalf("second cell delivered %d results, want 1", len(results))
	}
}

// TestQueueRejectsMismatchedResult pins the wire validation: a result
// that contradicts the coordinator's own grid expansion — wrong seed,
// wrong geometry, out-of-range index — is an error, never folded.
func TestQueueRejectsMismatchedResult(t *testing.T) {
	q, results, _ := newTestQueue(t, oneCellSpec(), testOpts())
	t0 := time.Now()
	g, _ := q.lease("w1", t0)

	tampered := campaign.CellResult{Cell: *g.Cell}
	tampered.Seed++
	if _, err := q.complete(g.LeaseID, tampered, t0); err == nil {
		t.Fatal("tampered seed accepted")
	}
	oob := campaign.CellResult{Cell: *g.Cell}
	oob.Index = 99
	if _, err := q.complete(g.LeaseID, oob, t0); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if len(results) != 0 {
		t.Fatal("rejected result delivered")
	}
}

// TestQueueCloseGone pins the eviction path: a closed queue answers
// gone on every verb and revokes its outstanding leases.
func TestQueueCloseGone(t *testing.T) {
	q, results, events := newTestQueue(t, oneCellSpec(), testOpts())
	t0 := time.Now()
	g, _ := q.lease("w1", t0)
	q.close(t0.Add(time.Millisecond))

	if g2, _ := q.lease("w2", t0.Add(2*time.Millisecond)); g2 != nil {
		t.Fatalf("closed queue granted a lease: %+v", g2)
	}
	if q.renew(g.LeaseID, t0.Add(2*time.Millisecond)) {
		t.Fatal("closed queue renewed a lease")
	}
	st, err := q.complete(g.LeaseID, campaign.CellResult{Cell: *g.Cell}, t0.Add(2*time.Millisecond))
	if err != nil || st != StatusGone {
		t.Fatalf("complete on closed queue: %s, %v", st, err)
	}
	if len(results) != 0 {
		t.Fatal("closed queue folded a result")
	}
	if got := kinds(*events); got != "lease,revoke" {
		t.Fatalf("event trail %q", got)
	}
}

// TestQueueBackoffCapped pins the requeue delay schedule: exponential
// from RetryBackoff, clamped at MaxBackoff.
func TestQueueBackoffCapped(t *testing.T) {
	q, _, _ := newTestQueue(t, oneCellSpec(), testOpts())
	want := []time.Duration{
		20 * time.Millisecond,  // attempt 1
		40 * time.Millisecond,  // attempt 2
		80 * time.Millisecond,  // attempt 3
		100 * time.Millisecond, // attempt 4 (capped)
		100 * time.Millisecond, // attempt 5 (capped)
	}
	for i, w := range want {
		if got := q.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %s, want %s", i+1, got, w)
		}
	}
}
