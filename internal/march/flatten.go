package march

import "fmt"

// FlatOp is one step of a test's flattened execution schedule: the
// operation Run would execute at this position, bound to the concrete
// address its element walk visits. Element and OpIndex locate the op in
// the test for diagnostics; they match the fields of Mismatch.
type FlatOp struct {
	Element int
	OpIndex int
	Kind    OpKind
	Addr    int
	Data    Datum
}

// Flatten expands the test into the exact operation sequence Run
// executes against an n-word memory under opts (only AnyDown and
// AddressSequence are consulted; the other options do not affect
// ordering). The result has t.Ops()·n entries.
//
// Replay loops that evaluate the same test against many memories — the
// fault-simulation reference path in internal/faultsim — flatten once
// and iterate the schedule instead of re-resolving element orders and
// re-validating the test on every run. Flatten and Run share the
// address-walk machinery, so the sequence is the runner's by
// construction.
func Flatten(t *Test, n int, opts RunOptions) ([]FlatOp, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("march: flatten over %d words", n)
	}
	var up []int
	if opts.AddressSequence != nil {
		if !isPermutation(opts.AddressSequence, n) {
			return nil, fmt.Errorf("march: address sequence is not a permutation of 0..%d", n-1)
		}
		up = opts.AddressSequence
	}
	out := make([]FlatOp, 0, t.Ops()*n)
	for ei, e := range t.Elements {
		for _, addr := range elementAddresses(e.Order, n, opts.AnyDown, up) {
			for oi, op := range e.Ops {
				out = append(out, FlatOp{Element: ei, OpIndex: oi, Kind: op.Kind, Addr: addr, Data: op.Data})
			}
		}
	}
	return out, nil
}
