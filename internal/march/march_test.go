package march

import (
	"strings"
	"testing"
	"testing/quick"

	"twmarch/internal/word"
)

func TestDatumValueLiteral(t *testing.T) {
	d := Lit(word.MustParseBits("0101"))
	a := word.MustParseBits("1111")
	if got := d.Value(a, 4); got != word.MustParseBits("0101") {
		t.Fatalf("literal value = %s", got.Bits(4))
	}
}

func TestDatumValueTransparent(t *testing.T) {
	a := word.MustParseBits("1100")
	cases := []struct {
		d    Datum
		want string
	}{
		{Transp(word.Zero), "1100"},
		{TranspInv(word.Zero), "0011"},
		{Transp(word.MustParseBits("0101")), "1001"},
		{TranspInv(word.MustParseBits("0101")), "0110"},
	}
	for _, c := range cases {
		if got := c.d.Value(a, 4); got != word.MustParseBits(c.want) {
			t.Errorf("%s: value = %s, want %s", c.d.Format(4), got.Bits(4), c.want)
		}
	}
}

func TestDatumEffectiveMask(t *testing.T) {
	d := TranspInv(word.MustParseBits("0101"))
	want := word.MustParseBits("1010")
	if got := d.EffectiveMask(4); got != want {
		t.Fatalf("EffectiveMask = %s, want %s", got.Bits(4), want.Bits(4))
	}
}

// Property: for any initial content, Value(a) == a ^ EffectiveMask.
func TestQuickTransparentValueIsXor(t *testing.T) {
	f := func(alo, mlo uint64, inv bool, wseed uint8) bool {
		width := int(wseed)%word.MaxWidth + 1
		a := word.FromUint64(alo).Mask(width)
		d := Datum{Transparent: true, Invert: inv, Mask: word.FromUint64(mlo).Mask(width)}
		return d.Value(a, width) == a.Xor(d.EffectiveMask(width))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDatumSemanticEqualIgnoresLabel(t *testing.T) {
	d1 := Transp(word.MustParseBits("0101")).WithLabel("c1")
	d2 := Transp(word.MustParseBits("0101"))
	if !d1.SemanticEqual(d2, 4) {
		t.Fatal("labelled and unlabelled data should be semantically equal")
	}
	// ~a^m equals a^(~m): invert folded into mask.
	d3 := TranspInv(word.MustParseBits("0101"))
	d4 := Transp(word.MustParseBits("1010"))
	if !d3.SemanticEqual(d4, 4) {
		t.Fatal("~a^0101 should equal a^1010 at width 4")
	}
	if d3.SemanticEqual(d4, 5) {
		t.Fatal("~a^0101 should differ from a^1010 at width 5")
	}
}

func TestDatumFormat(t *testing.T) {
	cases := []struct {
		d     Datum
		width int
		want  string
	}{
		{LitBit(0), 1, "0"},
		{LitBit(1), 1, "1"},
		{Lit(word.MustParseBits("0101")), 4, "0101"},
		{Lit(word.FromUint64(0xab)).WithLabel("b2"), 8, "b2"},
		{Lit(word.FromUint64(0xdeadbeef)), 32, "0xdeadbeef"},
		{Transp(word.Zero), 8, "a"},
		{TranspInv(word.Zero), 8, "~a"},
		{Transp(word.MustParseBits("0101")), 4, "a^0101"},
		{Transp(word.MustParseBits("0101")).WithLabel("c1"), 4, "a^c1"},
		{TranspInv(word.MustParseBits("01010101")).WithLabel("c1"), 8, "~a^c1"},
		{Transp(word.FromUint64(0x55555555)), 32, "a^0x55555555"},
	}
	for _, c := range cases {
		if got := c.d.Format(c.width); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

func TestParseMarchCMinus(t *testing.T) {
	tst := MustParse("March C-", "{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}")
	if tst.Width != 1 {
		t.Fatalf("width = %d", tst.Width)
	}
	if got := tst.Ops(); got != 10 {
		t.Fatalf("ops = %d, want 10", got)
	}
	if got := tst.Reads(); got != 5 {
		t.Fatalf("reads = %d, want 5", got)
	}
	if got := tst.Writes(); got != 5 {
		t.Fatalf("writes = %d, want 5", got)
	}
	if !tst.IsBitOriented() {
		t.Fatal("March C- should be bit-oriented")
	}
	if tst.IsTransparent() {
		t.Fatal("March C- is not transparent")
	}
	orders := []Order{Any, Up, Up, Down, Down, Any}
	for i, e := range tst.Elements {
		if e.Order != orders[i] {
			t.Errorf("element %d order = %v, want %v", i, e.Order, orders[i])
		}
	}
}

func TestParseArrowNotation(t *testing.T) {
	a := MustParse("x", "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}")
	b := MustParse("x", "{any(w0); up(r0,w1); down(r1,w0)}")
	if a.ASCII() != b.ASCII() {
		t.Fatalf("arrow and ascii notations disagree: %s vs %s", a.ASCII(), b.ASCII())
	}
}

func TestParseTransparentNotation(t *testing.T) {
	tst := MustParse("tm", "{up(ra,w~a); up(r~a,wa); any(ra)}")
	if !tst.IsTransparent() {
		t.Fatal("expected transparent test")
	}
	if tst.Ops() != 5 || tst.Reads() != 3 {
		t.Fatalf("ops=%d reads=%d", tst.Ops(), tst.Reads())
	}
	if err := tst.CheckReadConsistency(); err != nil {
		t.Fatalf("read consistency: %v", err)
	}
}

func TestParseTransparentMask(t *testing.T) {
	tst := MustParse("tm", "{any(ra, wa^0101, ra^0101, wa, ra)}")
	if tst.Width != 4 {
		t.Fatalf("width = %d, want 4", tst.Width)
	}
	if err := tst.CheckReadConsistency(); err != nil {
		t.Fatalf("read consistency: %v", err)
	}
}

func TestParseWordLiterals(t *testing.T) {
	tst := MustParse("wl", "{any(w0101); up(r0101, w1010); up(r1010)}")
	if tst.Width != 4 {
		t.Fatalf("width = %d", tst.Width)
	}
	if err := tst.CheckReadConsistency(); err != nil {
		t.Fatalf("read consistency: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"{}",
		"{up()}",
		"{up(x0)}",
		"{up(r0,w1)",
		"{sideways(r0)}",
		"{up(r0,w1)} trailing",
		"{up(r~)}",
		"{up(~w0)}",
		"{up(r0 w1)}",
	}
	for _, s := range bad {
		if _, err := Parse("bad", s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

// Property: print → parse round trip preserves semantics for
// bit-oriented catalog tests.
func TestRoundTripCatalog(t *testing.T) {
	for _, entry := range Catalog() {
		orig := MustLookup(entry.Name)
		re, err := Parse(entry.Name, orig.ASCII())
		if err != nil {
			t.Fatalf("%s: reparse: %v", entry.Name, err)
		}
		if re.ASCII() != orig.ASCII() {
			t.Errorf("%s: round trip mismatch:\n  %s\n  %s", entry.Name, orig.ASCII(), re.ASCII())
		}
	}
}

func TestCatalogContents(t *testing.T) {
	wantLens := map[string]int{
		"MATS":     4,
		"MATS+":    5,
		"MATS++":   6,
		"March X":  6,
		"March Y":  8,
		"March C":  11,
		"March C-": 10,
		"March A":  15,
		"March B":  17,
		"March U":  13,
		"March LR": 14,
	}
	wantReads := map[string]int{
		"March C-": 5,
		"March U":  6,
		"March LR": 7,
		"March B":  6,
	}
	for name, ops := range wantLens {
		tst := MustLookup(name)
		if got := tst.Ops(); got != ops {
			t.Errorf("%s: ops = %d, want %d", name, got, ops)
		}
	}
	for name, reads := range wantReads {
		tst := MustLookup(name)
		if got := tst.Reads(); got != reads {
			t.Errorf("%s: reads = %d, want %d", name, got, reads)
		}
	}
}

func TestCatalogLookupNormalization(t *testing.T) {
	for _, name := range []string{"march c-", "MARCH C-", "MarchC-", "march cminus", "March_C-"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("March Z"); err == nil {
		t.Error("Lookup of unknown test succeeded")
	}
	if !strings.Contains(func() string { _, err := Lookup("nope"); return err.Error() }(), "March C-") {
		t.Error("unknown-test error should list available tests")
	}
}

func TestCatalogSortedByLength(t *testing.T) {
	entries := Catalog()
	prev := 0
	for _, e := range entries {
		l := MustLookup(e.Name).Ops()
		if l < prev {
			t.Fatalf("catalog not sorted: %s has %d ops after %d", e.Name, l, prev)
		}
		prev = l
	}
}

func TestCatalogAllStartWithInitialization(t *testing.T) {
	for _, e := range Catalog() {
		tst := MustLookup(e.Name)
		if !tst.Elements[0].IsWriteOnly() {
			t.Errorf("%s: first element %v is not write-only initialization", e.Name, tst.Elements[0])
		}
	}
}

func TestValidateRejectsBadTests(t *testing.T) {
	cases := []*Test{
		{Name: "no elements", Width: 1},
		{Name: "empty element", Width: 1, Elements: []Element{{Order: Up}}},
		{Name: "bad width", Width: 0, Elements: []Element{Elem(Up, R(LitBit(0)))}},
		{Name: "wide literal", Width: 1, Elements: []Element{Elem(Up, W(Lit(word.FromUint64(2))))}},
		{Name: "wide mask", Width: 2, Elements: []Element{Elem(Up, W(Transp(word.FromUint64(4))))}},
	}
	for _, tc := range cases {
		if err := tc.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", tc.Name)
		}
	}
}

func TestTrackContent(t *testing.T) {
	tst := MustParse("tm", "{up(ra,w~a); up(r~a,wa); any(ra)}")
	states := tst.TrackContent()
	if len(states) != 4 {
		t.Fatalf("states = %d, want 4", len(states))
	}
	// After element 0: ~a; after element 1: a; after element 2: a.
	if m := states[1].Datum.EffectiveMask(1); m != word.Ones(1) {
		t.Errorf("state after element 0: mask %v, want 1", m)
	}
	if m := states[3].Datum.EffectiveMask(1); !m.IsZero() {
		t.Errorf("final state: mask %v, want 0", m)
	}
}

func TestFinalContentNontransparent(t *testing.T) {
	tst := MustLookup("March C-")
	fc := tst.FinalContent()
	if !fc.Known || fc.Datum.Transparent {
		t.Fatal("final content of March C- should be a known literal")
	}
	if !fc.Datum.Const.IsZero() {
		t.Fatalf("March C- final content = %v, want 0", fc.Datum.Const)
	}
}

func TestCheckReadConsistencyCatchesBadRead(t *testing.T) {
	bad := MustNew("bad", 1,
		Elem(Up, R(Transp(word.Zero)), W(TranspInv(word.Zero))),
		Elem(Up, R(Transp(word.Zero))), // content is ~a here, read expects a
	)
	if err := bad.CheckReadConsistency(); err == nil {
		t.Fatal("inconsistent read not caught")
	}
	if err := bad.CheckReadConsistency(); !strings.Contains(err.Error(), "element 1") {
		t.Fatalf("error should locate element 1: %v", err)
	}
}

func TestCheckReadConsistencyNontransparentNeedsInit(t *testing.T) {
	bad := MustNew("bad", 1, Elem(Up, R(LitBit(0))))
	if err := bad.CheckReadConsistency(); err == nil {
		t.Fatal("read-before-write not caught")
	}
	good := MustLookup("March U")
	if err := good.CheckReadConsistency(); err != nil {
		t.Fatalf("March U should be consistent: %v", err)
	}
}

func TestAllCatalogTestsReadConsistent(t *testing.T) {
	for _, e := range Catalog() {
		if err := MustLookup(e.Name).CheckReadConsistency(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := MustLookup("March C-")
	cp := orig.Clone()
	cp.Elements[0].Ops[0] = R(LitBit(1))
	if orig.Elements[0].Ops[0].Kind == Read {
		t.Fatal("Clone shares op storage with original")
	}
}

func TestAddresses(t *testing.T) {
	up := Addresses(Up, 4, false)
	for i, a := range up {
		if a != i {
			t.Fatalf("Up order: %v", up)
		}
	}
	down := Addresses(Down, 4, false)
	for i, a := range down {
		if a != 3-i {
			t.Fatalf("Down order: %v", down)
		}
	}
	anyUp := Addresses(Any, 4, false)
	if anyUp[0] != 0 {
		t.Fatalf("Any default should ascend: %v", anyUp)
	}
	anyDown := Addresses(Any, 4, true)
	if anyDown[0] != 3 {
		t.Fatalf("Any with anyDown should descend: %v", anyDown)
	}
}

func TestOrderFormatting(t *testing.T) {
	if Any.String() != "any" || Up.String() != "up" || Down.String() != "down" {
		t.Error("order String broken")
	}
	if Any.Arrow() != "⇕" || Up.Arrow() != "⇑" || Down.Arrow() != "⇓" {
		t.Error("order Arrow broken")
	}
	if Order(99).String() == "" || Order(99).Arrow() != "?" {
		t.Error("out-of-range order formatting broken")
	}
}

func TestLitBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LitBit(2) did not panic")
		}
	}()
	LitBit(2)
}

func TestStringUsesArrows(t *testing.T) {
	tst := MustLookup("MATS+")
	s := tst.String()
	if !strings.Contains(s, "⇑") || !strings.Contains(s, "⇓") || !strings.Contains(s, "⇕") {
		t.Fatalf("String() = %q, want arrow notation", s)
	}
}
