package march

import (
	"testing"

	"twmarch/internal/word"
)

// FuzzParse hardens the notation parser: arbitrary input must never
// panic, and anything that parses must re-parse from its own ASCII
// rendering to a semantically identical test (print/parse round trip).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"{any(w0); up(r0,w1); down(r1,w0); any(r0)}",
		"{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}",
		"{up(ra,w~a); up(r~a,wa); any(ra)}",
		"{any(ra, wa^0101, ra^0101, wa, ra)}",
		"{any(w0101); up(r0101, w1010); up(r1010)}",
		"up(r0)",
		"{up(r0,w1)",
		"{sideways(r0)}",
		"{up()}",
		"",
		"{any(w0);; up(r0)}",
		"{up(r~)}",
		"{up(w0)} trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tst, err := Parse("fuzz", input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		ascii := tst.ASCII()
		re, err := Parse("fuzz2", ascii)
		if err != nil {
			t.Fatalf("rendering of a parsed test failed to re-parse: %q -> %q: %v", input, ascii, err)
		}
		if re.ASCII() != ascii {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, ascii, re.ASCII())
		}
		if re.Ops() != tst.Ops() || re.Reads() != tst.Reads() {
			t.Fatalf("round trip changed op counts for %q", input)
		}
	})
}

// FuzzDatumValue checks the transparent-value algebra on arbitrary
// inputs: Value is always within width, and XOR-ing the effective mask
// twice returns the initial content.
func FuzzDatumValue(f *testing.F) {
	f.Add(uint64(0), uint64(0), false, uint8(8))
	f.Add(^uint64(0), uint64(0x55), true, uint8(64))
	f.Fuzz(func(t *testing.T, a, mask uint64, invert bool, wseed uint8) {
		width := int(wseed)%128 + 1
		d := Datum{Transparent: true, Invert: invert, Mask: word.FromUint64(mask).Mask(width)}
		init := word.FromUint64(a).Mask(width)
		v := d.Value(init, width)
		if v != v.Mask(width) {
			t.Fatalf("value exceeds width: %v at %d", v, width)
		}
		if v.Xor(d.EffectiveMask(width)) != init {
			t.Fatal("effective-mask algebra broken")
		}
	})
}
