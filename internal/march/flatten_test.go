package march

import (
	"testing"

	"twmarch/internal/word"
)

// recordingMem logs every access so the flattened schedule can be
// checked against the runner's actual behaviour.
type recordingMem struct {
	cells []word.Word
	width int
	log   []FlatOp // Kind and Addr only; Element/OpIndex left zero
}

func (m *recordingMem) Read(addr int) word.Word {
	m.log = append(m.log, FlatOp{Kind: Read, Addr: addr})
	return m.cells[addr]
}

func (m *recordingMem) Write(addr int, v word.Word) {
	m.log = append(m.log, FlatOp{Kind: Write, Addr: addr})
	m.cells[addr] = v.Mask(m.width)
}

func (m *recordingMem) Words() int { return len(m.cells) }
func (m *recordingMem) Width() int { return m.width }

// Flatten must list exactly the operations Run executes, in the same
// order, for every option combination that affects ordering.
func TestFlattenMatchesRun(t *testing.T) {
	tst := MustNew("flatten probe", 1,
		Elem(Any, W(LitBit(0))),
		Elem(Up, R(LitBit(0)), W(LitBit(1))),
		Elem(Down, R(LitBit(1)), W(LitBit(0))),
		Elem(Any, R(LitBit(0))),
	)
	const n = 5
	for _, opts := range []RunOptions{
		{},
		{AnyDown: true},
		{AddressSequence: []int{3, 1, 4, 0, 2}},
		{AnyDown: true, AddressSequence: []int{4, 3, 2, 1, 0}},
	} {
		flat, err := Flatten(tst, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(flat) != tst.Ops()*n {
			t.Fatalf("flatten produced %d ops, want %d", len(flat), tst.Ops()*n)
		}
		mem := &recordingMem{cells: make([]word.Word, n), width: 1}
		if _, err := Run(tst, mem, opts); err != nil {
			t.Fatal(err)
		}
		// Run takes its initial snapshot with one read per word before
		// the test proper; skip those log entries.
		log := mem.log[n:]
		if len(log) != len(flat) {
			t.Fatalf("runner executed %d ops, flatten lists %d", len(log), len(flat))
		}
		for i := range flat {
			if flat[i].Kind != log[i].Kind || flat[i].Addr != log[i].Addr {
				t.Fatalf("opts %+v: op %d: flatten %v@%d, runner %v@%d",
					opts, i, flat[i].Kind, flat[i].Addr, log[i].Kind, log[i].Addr)
			}
		}
	}
}

// Flatten preserves element/op provenance so replay diagnostics can
// point back into the test.
func TestFlattenProvenance(t *testing.T) {
	tst := MustNew("prov", 1, Elem(Up, R(LitBit(0)), W(LitBit(1))))
	flat, err := Flatten(tst, 2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []FlatOp{
		{Element: 0, OpIndex: 0, Kind: Read, Addr: 0, Data: LitBit(0)},
		{Element: 0, OpIndex: 1, Kind: Write, Addr: 0, Data: LitBit(1)},
		{Element: 0, OpIndex: 0, Kind: Read, Addr: 1, Data: LitBit(0)},
		{Element: 0, OpIndex: 1, Kind: Write, Addr: 1, Data: LitBit(1)},
	}
	if len(flat) != len(want) {
		t.Fatalf("got %d ops, want %d", len(flat), len(want))
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Errorf("op %d: got %+v, want %+v", i, flat[i], want[i])
		}
	}
}

func TestFlattenErrors(t *testing.T) {
	tst := MustNew("ok", 1, Elem(Up, R(LitBit(0))))
	if _, err := Flatten(tst, 0, RunOptions{}); err == nil {
		t.Error("accepted zero words")
	}
	if _, err := Flatten(tst, 3, RunOptions{AddressSequence: []int{0, 1}}); err == nil {
		t.Error("accepted a short address sequence")
	}
	if _, err := Flatten(tst, 3, RunOptions{AddressSequence: []int{0, 1, 1}}); err == nil {
		t.Error("accepted a non-permutation")
	}
	bad := &Test{Name: "empty", Width: 1}
	if _, err := Flatten(bad, 3, RunOptions{}); err == nil {
		t.Error("accepted an invalid test")
	}
}
