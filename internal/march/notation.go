package march

import (
	"fmt"
	"strings"

	"twmarch/internal/word"
)

// Parse reads a march test from its textual notation.
//
// The grammar accepts both the conventional arrow symbols and ASCII
// keywords for address orders:
//
//	test    = [ "{" ] element { ";" element } [ "}" ]
//	element = order "(" op { "," op } ")"
//	order   = "⇕" | "⇑" | "⇓" | "any" | "up" | "down" | "asc" | "desc"
//	op      = ("r" | "w") datum
//	datum   = "0" | "1"            literal bit (width 1)
//	        | binary literal       e.g. "0101" (width = len)
//	        | "a" | "~a"           transparent identity / complement
//	        | ("a"|"~a") "^" bits  transparent with binary XOR mask
//
// Whitespace is insignificant. The width of the parsed test is the
// maximum width implied by any datum (literal bit data imply width 1).
// Parse is primarily used for the bit-oriented source tests; generated
// transparent tests can also be round-tripped through it for widths
// ≤ 16 where masks print in binary.
func Parse(name, s string) (*Test, error) {
	p := &parser{src: s}
	p.skipSpace()
	braced := p.eat("{")
	var elements []Element
	width := 1
	for {
		p.skipSpace()
		if p.done() {
			break
		}
		if braced && p.peekIs("}") {
			break
		}
		e, w, err := p.element()
		if err != nil {
			return nil, fmt.Errorf("march: parsing %q: %v", name, err)
		}
		if w > width {
			width = w
		}
		elements = append(elements, e)
		p.skipSpace()
		if !p.eat(";") {
			break
		}
	}
	p.skipSpace()
	if braced && !p.eat("}") {
		return nil, fmt.Errorf("march: parsing %q: missing closing brace", name)
	}
	p.skipSpace()
	if !p.done() {
		return nil, fmt.Errorf("march: parsing %q: trailing input %q", name, p.rest())
	}
	if len(elements) == 0 {
		return nil, fmt.Errorf("march: parsing %q: no elements", name)
	}
	return New(name, width, elements...)
}

// MustParse is Parse for statically known-good notation.
func MustParse(name, s string) *Test {
	t, err := Parse(name, s)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src string
	pos int
}

func (p *parser) done() bool { return p.pos >= len(p.src) }

func (p *parser) rest() string { return p.src[p.pos:] }

func (p *parser) skipSpace() {
	for !p.done() {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *parser) peekIs(tok string) bool {
	return strings.HasPrefix(p.src[p.pos:], tok)
}

func (p *parser) eat(tok string) bool {
	if p.peekIs(tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) element() (Element, int, error) {
	order, err := p.order()
	if err != nil {
		return Element{}, 0, err
	}
	p.skipSpace()
	if !p.eat("(") {
		return Element{}, 0, fmt.Errorf("expected '(' at %q", p.rest())
	}
	var ops []Op
	width := 1
	for {
		p.skipSpace()
		op, w, err := p.op()
		if err != nil {
			return Element{}, 0, err
		}
		if w > width {
			width = w
		}
		ops = append(ops, op)
		p.skipSpace()
		if p.eat(",") {
			continue
		}
		if p.eat(")") {
			break
		}
		return Element{}, 0, fmt.Errorf("expected ',' or ')' at %q", p.rest())
	}
	return Element{Order: order, Ops: ops}, width, nil
}

func (p *parser) order() (Order, error) {
	switch {
	case p.eat("⇕"), p.eat("any"):
		return Any, nil
	case p.eat("⇑"), p.eat("up"), p.eat("asc"):
		return Up, nil
	case p.eat("⇓"), p.eat("down"), p.eat("desc"):
		return Down, nil
	}
	return Any, fmt.Errorf("expected address order at %q", p.rest())
}

func (p *parser) op() (Op, int, error) {
	var kind OpKind
	switch {
	case p.eat("r"):
		kind = Read
	case p.eat("w"):
		kind = Write
	default:
		return Op{}, 0, fmt.Errorf("expected 'r' or 'w' at %q", p.rest())
	}
	p.skipSpace()
	d, w, err := p.datum()
	if err != nil {
		return Op{}, 0, err
	}
	return Op{Kind: kind, Data: d}, w, nil
}

func (p *parser) datum() (Datum, int, error) {
	invert := false
	if p.eat("~") {
		invert = true
		p.skipSpace()
	}
	if p.eat("a") {
		// Transparent datum, optional ^mask.
		d := Datum{Transparent: true, Invert: invert}
		p.skipSpace()
		if p.eat("^") {
			p.skipSpace()
			bits, err := p.binary()
			if err != nil {
				return Datum{}, 0, err
			}
			m, err := word.ParseBits(bits)
			if err != nil {
				return Datum{}, 0, err
			}
			d.Mask = m
			return d, len(bits), nil
		}
		return d, 1, nil
	}
	if invert {
		return Datum{}, 0, fmt.Errorf("'~' must precede 'a' at %q", p.rest())
	}
	bits, err := p.binary()
	if err != nil {
		return Datum{}, 0, err
	}
	v, err := word.ParseBits(bits)
	if err != nil {
		return Datum{}, 0, err
	}
	return Datum{Const: v}, len(bits), nil
}

func (p *parser) binary() (string, error) {
	start := p.pos
	for !p.done() {
		c := p.src[p.pos]
		if c == '0' || c == '1' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected binary literal at %q", p.rest())
	}
	return p.src[start:p.pos], nil
}
