package march

import (
	"math/rand"
	"testing"

	"twmarch/internal/memory"
	"twmarch/internal/word"
)

func TestRunNontransparentFaultFree(t *testing.T) {
	mem := memory.MustNew(16, 1)
	tst := MustLookup("March C-")
	res, err := Run(tst, mem, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Fatalf("fault-free March C- reported %d mismatches: %v", res.MismatchCount, res.Mismatches)
	}
	if res.Ops != 10*16 {
		t.Fatalf("ops = %d, want %d", res.Ops, 10*16)
	}
	if res.Reads != 5*16 || res.Writes != 5*16 {
		t.Fatalf("reads=%d writes=%d", res.Reads, res.Writes)
	}
}

func TestRunAllCatalogFaultFree(t *testing.T) {
	for _, e := range Catalog() {
		tst := MustLookup(e.Name)
		mem := memory.MustNew(8, 1)
		res, err := Run(tst, mem, RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if res.Detected() {
			t.Errorf("%s: fault-free run detected a fault: %v", e.Name, res.Mismatches)
		}
	}
}

func TestRunTransparentPreservesContents(t *testing.T) {
	tm := MustParse("tmarch", "{up(ra,w~a); up(r~a,wa); down(ra,w~a); down(r~a,wa); any(ra)}")
	mem := memory.MustNew(32, 1)
	r := rand.New(rand.NewSource(1))
	mem.Randomize(r)
	before := mem.Snapshot()
	res, err := Run(tm, mem, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Fatalf("fault-free transparent run mismatched: %v", res.Mismatches)
	}
	if !mem.Equal(before) {
		t.Fatal("transparent test did not preserve contents")
	}
}

func TestRunWidthMismatch(t *testing.T) {
	mem := memory.MustNew(4, 8)
	if _, err := Run(MustLookup("MATS+"), mem, RunOptions{}); err == nil {
		t.Fatal("width mismatch not rejected")
	}
}

func TestRunBadInitialLength(t *testing.T) {
	mem := memory.MustNew(4, 1)
	_, err := Run(MustLookup("MATS+"), mem, RunOptions{Initial: make([]word.Word, 3)})
	if err == nil {
		t.Fatal("bad snapshot length not rejected")
	}
}

func TestRunDetectsStuckCell(t *testing.T) {
	mem := memory.MustNew(8, 1)
	// Simulate a stuck-at-1 cell by wrapping the memory.
	stuck := &stuckMem{Mem: mem, addr: 3}
	res, err := Run(MustLookup("March C-"), stuck, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("March C- missed a stuck-at-1 cell")
	}
	for _, m := range res.Mismatches {
		if m.Addr != 3 {
			t.Fatalf("mismatch at wrong address: %v", m)
		}
	}
}

// stuckMem forces one address to read 1 regardless of writes.
type stuckMem struct {
	Mem  *memory.Memory
	addr int
}

func (s *stuckMem) Read(addr int) word.Word {
	if addr == s.addr {
		return word.FromUint64(1)
	}
	return s.Mem.Read(addr)
}
func (s *stuckMem) Write(addr int, v word.Word) { s.Mem.Write(addr, v) }
func (s *stuckMem) Words() int                  { return s.Mem.Words() }
func (s *stuckMem) Width() int                  { return s.Mem.Width() }

func TestRunStopAtFirstMismatch(t *testing.T) {
	mem := memory.MustNew(8, 1)
	stuck := &stuckMem{Mem: mem, addr: 0}
	res, err := Run(MustLookup("March C-"), stuck, RunOptions{StopAtFirstMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.MismatchCount != 1 {
		t.Fatalf("aborted=%v count=%d, want aborted after 1", res.Aborted, res.MismatchCount)
	}
}

func TestRunMismatchCap(t *testing.T) {
	mem := memory.MustNew(64, 1)
	stuck := &allOnesMem{Mem: mem}
	res, err := Run(MustLookup("March C-"), stuck, RunOptions{MaxMismatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 4 {
		t.Fatalf("recorded %d mismatches, want cap 4", len(res.Mismatches))
	}
	if res.MismatchCount <= 4 {
		t.Fatalf("MismatchCount = %d, should exceed the cap", res.MismatchCount)
	}
}

// allOnesMem reads 1 everywhere.
type allOnesMem struct{ Mem *memory.Memory }

func (s *allOnesMem) Read(addr int) word.Word     { return word.FromUint64(1) }
func (s *allOnesMem) Write(addr int, v word.Word) { s.Mem.Write(addr, v) }
func (s *allOnesMem) Words() int                  { return s.Mem.Words() }
func (s *allOnesMem) Width() int                  { return s.Mem.Width() }

func TestRunReadSinkSeesRawData(t *testing.T) {
	mem := memory.MustNew(4, 1)
	var seen []word.Word
	tst := MustLookup("MATS++")
	_, err := Run(tst, mem, RunOptions{ReadSink: func(addr int, got word.Word, op Op) {
		if op.Kind != Read {
			t.Errorf("sink received non-read op %v", op)
		}
		seen = append(seen, got)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != tst.Reads()*4 {
		t.Fatalf("sink saw %d reads, want %d", len(seen), tst.Reads()*4)
	}
}

func TestRunAnyDownDirection(t *testing.T) {
	// A test whose only element is Any; observe first accessed address.
	tst := MustNew("probe", 1, Elem(Any, W(LitBit(0))))
	mem := memory.MustNew(4, 1)
	var first = -1
	obs := memory.NewObserved(mem, memory.ObserverFunc(func(a memory.Access) {
		if first < 0 && a.Kind == memory.AccessWrite {
			first = a.Addr
		}
	}))
	// Supply the snapshot explicitly so the runner's own snapshot
	// reads do not reach the observer.
	if _, err := Run(tst, obs, RunOptions{AnyDown: true, Initial: make([]word.Word, 4)}); err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("AnyDown first address = %d, want 3", first)
	}
}

func TestRunMismatchString(t *testing.T) {
	m := Mismatch{Element: 1, OpIndex: 2, Addr: 3, Got: word.FromUint64(1), Want: word.Zero}
	s := m.String()
	if s == "" {
		t.Fatal("empty mismatch string")
	}
}

func TestRunWordWideTransparent(t *testing.T) {
	// 8-bit transparent test with a mask background.
	tm := MustParse("tmask", "{any(ra, wa^01010101, ra^01010101, wa, ra)}")
	mem := memory.MustNew(16, 8)
	r := rand.New(rand.NewSource(9))
	mem.Randomize(r)
	before := mem.Snapshot()
	res, err := Run(tm, mem, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Fatalf("mismatches: %v", res.Mismatches)
	}
	if !mem.Equal(before) {
		t.Fatal("contents not preserved")
	}
}
