package march

import (
	"fmt"
	"sort"
)

// CatalogEntry describes a well-known bit-oriented march test.
type CatalogEntry struct {
	// Name is the canonical test name, e.g. "March C-".
	Name string
	// Notation is the ASCII notation the test is built from.
	Notation string
	// Reference cites where the test was published.
	Reference string
	// Detects summarizes the fault classes the test is known to cover.
	Detects string
}

// catalog lists the bit-oriented march tests shipped with the library.
// All notations are written with explicit initialization elements; the
// transparency transforms strip them per Nicolaidis' rules.
var catalog = []CatalogEntry{
	{
		Name:      "MATS",
		Notation:  "{any(w0); any(r0,w1); any(r1)}",
		Reference: "Nair, IEEE Trans. Computers 1979",
		Detects:   "SAF",
	},
	{
		Name:      "MATS+",
		Notation:  "{any(w0); up(r0,w1); down(r1,w0)}",
		Reference: "Abadir & Reghbati, ACM Comp. Surveys 1983",
		Detects:   "SAF, AF",
	},
	{
		Name:      "MATS++",
		Notation:  "{any(w0); up(r0,w1); down(r1,w0,r0)}",
		Reference: "van de Goor, 'Testing Semiconductor Memories' 1991",
		Detects:   "SAF, TF, AF",
	},
	{
		Name:      "March X",
		Notation:  "{any(w0); up(r0,w1); down(r1,w0); any(r0)}",
		Reference: "van de Goor, 'Testing Semiconductor Memories' 1991",
		Detects:   "SAF, TF, AF, CFin",
	},
	{
		Name:      "March Y",
		Notation:  "{any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0)}",
		Reference: "van de Goor, 'Testing Semiconductor Memories' 1991",
		Detects:   "SAF, TF, AF, CFin, linked TF",
	},
	{
		Name:      "March C",
		Notation:  "{any(w0); up(r0,w1); up(r1,w0); any(r0); down(r0,w1); down(r1,w0); any(r0)}",
		Reference: "Marinescu, ITC 1982",
		Detects:   "SAF, TF, AF, CF",
	},
	{
		Name:      "March C-",
		Notation:  "{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}",
		Reference: "van de Goor, IEEE D&T 1993 (Marinescu 1982 minus redundancy)",
		Detects:   "SAF, TF, AF, 100% unlinked CF (CFin, CFid, CFst)",
	},
	{
		Name:      "March A",
		Notation:  "{any(w0); up(r0,w1,w0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0)}",
		Reference: "Suk & Reddy, IEEE Trans. Computers 1981",
		Detects:   "SAF, TF, AF, CFin, linked CFid",
	},
	{
		Name:      "March B",
		Notation:  "{any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0)}",
		Reference: "Suk & Reddy, IEEE Trans. Computers 1981",
		Detects:   "SAF, TF, AF, CFin, linked TF/CFid",
	},
	{
		Name:      "March U",
		Notation:  "{any(w0); up(r0,w1,r1,w0); up(r0,w1); down(r1,w0,r0,w1); down(r1,w0)}",
		Reference: "van de Goor & Gaydadjiev, IEE Proc. Circuits Devices Syst. 1997",
		Detects:   "SAF, TF, AF, unlinked CF, some linked faults",
	},
	{
		Name:      "March LR",
		Notation:  "{any(w0); down(r0,w1); up(r1,w0,r0,w1); up(r1,w0); up(r0,w1,r1,w0); up(r0)}",
		Reference: "van de Goor et al., ATS 1996",
		Detects:   "SAF, TF, AF, CF, realistic linked faults",
	},
	{
		Name:      "March SS",
		Notation:  "{any(w0); up(r0,r0,w0,r0,w1); up(r1,r1,w1,r1,w0); down(r0,r0,w0,r0,w1); down(r1,r1,w1,r1,w0); any(r0)}",
		Reference: "Hamdioui, Al-Ars & van de Goor, MTDT 2002",
		Detects:   "all static simple faults incl. RDF/DRDF/WDF (read-after-read pairs)",
	},
}

var catalogByName map[string]*Test

func init() {
	catalogByName = make(map[string]*Test, len(catalog))
	for _, e := range catalog {
		t := MustParse(e.Name, e.Notation)
		if !t.IsBitOriented() {
			panic(fmt.Sprintf("march: catalog test %q is not bit-oriented", e.Name))
		}
		catalogByName[canonical(e.Name)] = t
	}
}

// canonical normalizes a test name for lookup: case-insensitive, and
// tolerant of spacing and "minus" spelling ("marchc-", "March C-",
// "march cminus" all match March C-).
func canonical(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '_':
			// skip
		default:
			out = append(out, r)
		}
	}
	s := string(out)
	if len(s) > 5 && s[len(s)-5:] == "minus" {
		s = s[:len(s)-5] + "-"
	}
	return s
}

// Lookup returns the catalog test with the given name. The lookup is
// case- and spacing-insensitive.
func Lookup(name string) (*Test, error) {
	t, ok := catalogByName[canonical(name)]
	if !ok {
		return nil, fmt.Errorf("march: unknown test %q (have: %s)", name, catalogNames())
	}
	return t.Clone(), nil
}

// MustLookup is Lookup for statically known names.
func MustLookup(name string) *Test {
	t, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Catalog returns the catalog metadata, sorted by test length then
// name, so callers can enumerate the shipped tests.
func Catalog() []CatalogEntry {
	out := make([]CatalogEntry, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool {
		li := MustLookup(out[i].Name).Ops()
		lj := MustLookup(out[j].Name).Ops()
		if li != lj {
			return li < lj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func catalogNames() string {
	names := ""
	for i, e := range catalog {
		if i > 0 {
			names += ", "
		}
		names += e.Name
	}
	return names
}
