package march

import (
	"fmt"

	"twmarch/internal/word"
)

// Mem is the memory access contract the runner needs. It is satisfied
// by *memory.Memory and by the fault-injecting and observing wrappers
// around it.
type Mem interface {
	Read(addr int) word.Word
	Write(addr int, v word.Word)
	Words() int
	Width() int
}

// Mismatch records a read whose value differed from the expected datum.
type Mismatch struct {
	Element int
	OpIndex int
	Addr    int
	Got     word.Word
	Want    word.Word
}

// String formats the mismatch for diagnostics.
func (m Mismatch) String() string {
	return fmt.Sprintf("element %d op %d addr %d: got %v want %v", m.Element, m.OpIndex, m.Addr, m.Got, m.Want)
}

// RunOptions configures a test execution.
type RunOptions struct {
	// AnyDown runs ⇕ (Any) elements in descending order instead of the
	// default ascending order.
	AnyDown bool
	// Initial supplies the initial-content snapshot that transparent
	// data expressions are evaluated against. When nil, the runner
	// takes the snapshot itself by reading every word once before the
	// test starts — exactly how a transparent BIST's prediction pass
	// sees the memory. Snapshot reads are not counted in the result
	// and are not fed to ReadSink.
	Initial []word.Word
	// ReadSink, when non-nil, receives the raw data of every read
	// operation in execution order together with the operation that
	// produced it. Signature analyzers hang off this: the test phase
	// feeds the raw value, the prediction phase feeds the value XORed
	// with the operation's effective mask.
	ReadSink func(addr int, got word.Word, op Op)
	// StopAtFirstMismatch aborts the run at the first failing read.
	StopAtFirstMismatch bool
	// MaxMismatches bounds the recorded mismatch list (0 means 256).
	MaxMismatches int
	// MaxOps, when positive, aborts the run after that many executed
	// operations. The online BIST scheduler uses this to model idle
	// windows that close before the test completes.
	MaxOps int
	// AddressSequence, when non-nil, replaces the linear address
	// counter: ⇑ elements walk the sequence, ⇓ elements its reverse.
	// It must be a permutation of 0..Words-1. March-test theory only
	// needs a fixed order and its reverse, so hardware BISTs may use
	// LFSR or Gray sequencers (see internal/addrgen).
	AddressSequence []int
}

// Result reports an executed test.
type Result struct {
	// Ops, Reads and Writes count executed operations (across all
	// addresses).
	Ops, Reads, Writes int
	// Mismatches lists failing reads, capped at MaxMismatches. The
	// count in MismatchCount is exact even when the list is capped.
	Mismatches    []Mismatch
	MismatchCount int
	// Aborted is set when StopAtFirstMismatch cut the run short.
	Aborted bool
}

// Detected reports whether any read mismatched, i.e. whether a
// comparator-based BIST would flag the memory as faulty.
func (r Result) Detected() bool { return r.MismatchCount > 0 }

// Addresses returns the address sequence for an element order over n
// words. Any resolves to ascending unless anyDown is set.
func Addresses(order Order, n int, anyDown bool) []int {
	return elementAddresses(order, n, anyDown, nil)
}

// elementAddresses resolves an element's address walk, optionally over
// a custom "up" permutation.
func elementAddresses(order Order, n int, anyDown bool, up []int) []int {
	desc := order == Down || (order == Any && anyDown)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		a := i
		if up != nil {
			a = up[i]
		}
		if desc {
			out[n-1-i] = a
		} else {
			out[i] = a
		}
	}
	return out
}

func isPermutation(seq []int, n int) bool {
	if len(seq) != n {
		return false
	}
	seen := make([]bool, n)
	for _, a := range seq {
		if a < 0 || a >= n || seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// Run executes the test against mem. The test width must match the
// memory width. Reads are compared against the op's datum evaluated on
// the initial snapshot; writes store the evaluated datum.
func Run(t *Test, mem Mem, opts RunOptions) (Result, error) {
	if t.Width != mem.Width() {
		return Result{}, fmt.Errorf("march: test %q width %d does not match memory width %d", t.Name, t.Width, mem.Width())
	}
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	n := mem.Words()
	initial := opts.Initial
	if initial == nil {
		initial = make([]word.Word, n)
		for i := 0; i < n; i++ {
			initial[i] = mem.Read(i)
		}
	} else if len(initial) != n {
		return Result{}, fmt.Errorf("march: initial snapshot has %d words, memory has %d", len(initial), n)
	}
	maxMis := opts.MaxMismatches
	if maxMis == 0 {
		maxMis = 256
	}
	var up []int
	if opts.AddressSequence != nil {
		if !isPermutation(opts.AddressSequence, n) {
			return Result{}, fmt.Errorf("march: address sequence is not a permutation of 0..%d", n-1)
		}
		up = opts.AddressSequence
	}
	var res Result
	for ei, e := range t.Elements {
		for _, addr := range elementAddresses(e.Order, n, opts.AnyDown, up) {
			for oi, op := range e.Ops {
				if opts.MaxOps > 0 && res.Ops >= opts.MaxOps {
					res.Aborted = true
					return res, nil
				}
				res.Ops++
				val := op.Data.Value(initial[addr], t.Width)
				switch op.Kind {
				case Read:
					res.Reads++
					got := mem.Read(addr)
					if opts.ReadSink != nil {
						opts.ReadSink(addr, got, op)
					}
					if got != val {
						res.MismatchCount++
						if len(res.Mismatches) < maxMis {
							res.Mismatches = append(res.Mismatches, Mismatch{
								Element: ei, OpIndex: oi, Addr: addr, Got: got, Want: val,
							})
						}
						if opts.StopAtFirstMismatch {
							res.Aborted = true
							return res, nil
						}
					}
				case Write:
					res.Writes++
					mem.Write(addr, val)
				}
			}
		}
	}
	return res, nil
}
