package main

import (
	"context"
	"testing"
	"time"

	"twmarch/internal/loadgen"
)

// TestChaosSoakE2E runs the full harness — real twmd coordinator, real
// twmw fleet, mixed traffic, the complete fault script (delays, 429s,
// 500s, worker SIGKILL mid-lease, coordinator SIGKILL+restart) — at a
// small scale and demands a clean report: every campaign drained,
// every completed aggregate byte-identical, every fault accounted.
// This is the harness's own regression test; the nightly CI soak runs
// the same thing bigger and with -race.
func TestChaosSoakE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process cluster and runs a multi-second soak")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Profile:  "chaos",
		Seed:     1,
		Duration: 8 * time.Second,
		Workers:  2,
		LeaseTTL: 3 * time.Second,
		Dir:      t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Jobs.Submitted == 0 || rep.Jobs.Done == 0 {
		t.Fatalf("no work flowed: %+v", rep.Jobs)
	}
	if rep.Jobs.Verified != rep.Jobs.Done {
		t.Errorf("verified %d of %d done jobs", rep.Jobs.Verified, rep.Jobs.Done)
	}
	if rep.Chaos.WorkerKills == 0 || rep.Chaos.CoordinatorKills == 0 {
		t.Errorf("chaos script incomplete: %+v", rep.Chaos)
	}
	if rep.Chaos.DelaysInjected == 0 || rep.Chaos.ErrorsInjected == 0 {
		t.Errorf("no faults injected: %+v", rep.Chaos)
	}
	for _, endpoint := range []string{"submit", "status", "results"} {
		if rep.Endpoints[endpoint].Count == 0 {
			t.Errorf("endpoint %s saw no traffic", endpoint)
		}
	}
}
