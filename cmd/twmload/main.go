// Command twmload is the seeded load-generator and chaos soak harness
// for the twmd/twmw cluster. It compiles and spawns a real coordinator
// plus a worker fleet, drives them with a deterministic workload
// profile, optionally injects faults (response delays, 429/500 bursts,
// worker SIGKILL mid-lease, coordinator SIGKILL+restart), then drains
// every campaign and verifies the cluster's promises: completed
// results byte-identical to a local engine run, and /metrics counters
// that account for every injected fault.
//
//	twmload -profile interactive -seed 1 -duration 30s
//	twmload -profile chaos -seed 1                    the full fault script
//	twmload -profile mixed -report load-report.json
//
// Profiles (all seeded; same -profile and -seed replays the same spec
// sequence): interactive (small grids, tight submit/poll loops), batch
// (larger March C-/B grids), streaming (tails /events), cancelstorm
// (submits then cancels mid-run), mixed (one of each), chaos (mixed
// plus the fault-injection controller; starts twmd with -chaos).
//
// The JSON report carries per-endpoint p50/p99/p999 latencies, error
// counts and throughput, job outcome counts, chaos accounting, and
// the violation list. scripts/benchdiff -load gates a report against
// the checked-in LOAD_BASELINE.json. Exit status: 0 when the run
// completed with zero violations, 1 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"twmarch/internal/loadgen"
)

func main() {
	fs := flag.NewFlagSet("twmload", flag.ExitOnError)
	profile := fs.String("profile", "mixed", "workload profile: "+strings.Join(loadgen.ProfileNames(), ", "))
	seed := fs.Int64("seed", 1, "root seed; (profile, seed) replays the same workload")
	duration := fs.Duration("duration", 30*time.Second, "submission window (drain and verification run after)")
	workers := fs.Int("twmw", 3, "twmw worker fleet size")
	maxJobs := fs.Int("maxjobs", 0, "stop submitting after this many campaigns (0 = until -duration)")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Second, "coordinator lease TTL (bounds worker-kill recovery time)")
	report := fs.String("report", "twmload-report.json", "write the JSON report here (empty = don't)")
	dir := fs.String("dir", "", "scratch directory (default: a temp dir, removed on exit)")
	twmdBin := fs.String("twmd-bin", "", "prebuilt twmd binary (default: build into the scratch dir)")
	twmwBin := fs.String("twmw-bin", "", "prebuilt twmw binary (default: build into the scratch dir)")
	race := fs.Bool("race", false, "build the daemons with the race detector")
	keep := fs.Bool("keep", false, "keep the scratch dir (logs, datadir) for postmortems")
	quiet := fs.Bool("quiet", false, "suppress progress lines")
	fs.Parse(os.Args[1:])

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "twmload: "+format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Profile:  *profile,
		Seed:     *seed,
		Duration: *duration,
		Workers:  *workers,
		MaxJobs:  *maxJobs,
		LeaseTTL: *leaseTTL,
		Dir:      *dir,
		TwmdBin:  *twmdBin,
		TwmwBin:  *twmwBin,
		Race:     *race,
		Keep:     *keep,
		Logf:     logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "twmload: %v\n", err)
		os.Exit(1)
	}
	if *report != "" {
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintf(os.Stderr, "twmload: write report: %v\n", err)
			os.Exit(1)
		}
	}
	printSummary(rep)
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

func printSummary(rep *loadgen.Report) {
	fmt.Printf("profile %s seed %d: %d submitted, %d done (%d verified byte-identical), %d canceled, %d failed in %v\n",
		rep.Profile, rep.Seed, rep.Jobs.Submitted, rep.Jobs.Done, rep.Jobs.Verified,
		rep.Jobs.Canceled, rep.Jobs.Failed, time.Duration(rep.DurationNS).Round(time.Millisecond))
	for _, name := range rep.EndpointNames() {
		st := rep.Endpoints[name]
		fmt.Printf("  %-8s %6d calls %4d errors  p50 %8s  p99 %8s  p999 %8s  %.1f/s\n",
			name, st.Count, st.Errors,
			time.Duration(st.P50NS).Round(time.Microsecond),
			time.Duration(st.P99NS).Round(time.Microsecond),
			time.Duration(st.P999NS).Round(time.Microsecond), st.RPS)
	}
	c := rep.Chaos
	if c.DelaysInjected+c.ErrorsInjected > 0 || c.WorkerKills+c.CoordinatorKills > 0 {
		fmt.Printf("  chaos: %d delays, %d errors, %d worker kills, %d coordinator kills; %d expiries = %d requeues + %d abandons; %d jobs recovered; %d worker retries\n",
			c.DelaysInjected, c.ErrorsInjected, c.WorkerKills, c.CoordinatorKills,
			c.LeaseExpiries, c.Requeues, c.Abandons, c.RecoveredJobs, c.WorkerRetries)
	}
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("  invariants held: zero violations")
	}
}
