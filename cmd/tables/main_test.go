package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func render(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestTable1Output(t *testing.T) {
	out := render(t, "-table", "1")
	for _, want := range []string{"Table 1", "wa^c1", "~d6", "~d0", "d7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q", want)
		}
	}
}

func TestTable1CustomWidth(t *testing.T) {
	out := render(t, "-table", "1", "-width", "4")
	if !strings.Contains(out, "W=4") || !strings.Contains(out, "d3") {
		t.Errorf("width-4 table broken:\n%s", out)
	}
	if strings.Contains(out, "d7") {
		t.Error("width-4 table mentions d7")
	}
}

func TestTable2Output(t *testing.T) {
	out := render(t, "-table", "2")
	for _, want := range []string{"Scheme 1 [12]", "8W·N", "(M + 5 log2 W)·N", "No"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 output missing %q", want)
		}
	}
}

func TestTable3Output(t *testing.T) {
	out := render(t, "-table", "3")
	for _, want := range []string{"March C-", "March U", "128", "50N (56N)", "1024N"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 output missing %q", want)
		}
	}
}

func TestHeadlineOutput(t *testing.T) {
	out := render(t, "-headline")
	for _, want := range []string{"55.6%", "19.5%", "50N", "90N", "256N"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline output missing %q", want)
		}
	}
}

func TestAllOutput(t *testing.T) {
	out := render(t, "-all")
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("-all output missing %q", want)
		}
	}
}

func TestNoArgsErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestBadFlagErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestBadWidthErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-table", "1", "-width", "9"}, &b); err == nil {
		t.Fatal("non-power-of-two width accepted")
	}
}

// The -all output is pinned as a golden file: any change to the
// generated tables (op counts, formulas, ratios) must be reviewed
// against the paper. Regenerate with:
//
//	go test ./cmd/tables -run TestGoldenAll -update
func TestGoldenAll(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-all"}, &b); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/all.golden", []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile("testdata/all.golden")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("output diverged from testdata/all.golden (regenerate with -update):\n%s", b.String())
	}
}
