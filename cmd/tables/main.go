// Command tables regenerates the paper's tables and headline numbers:
//
//	tables -table 1     word contents during ATMarch (Table 1)
//	tables -table 2     TCM/TCP formulas of the three schemes (Table 2)
//	tables -table 3     complexity sweep over word sizes (Table 3)
//	tables -headline    the 56% / 19% comparison for March C-, W=32
//	tables -all         everything, in order
//
// Closed-form values reproduce the paper's formulas; measured values
// are operation counts of the tests this library actually generates
// (the golden files under testdata/ pin the reconciliation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"twmarch/internal/complexity"
	"twmarch/internal/core"
	"twmarch/internal/march"
	"twmarch/internal/report"
	"twmarch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	table := fs.Int("table", 0, "table number to print (1, 2 or 3)")
	headline := fs.Bool("headline", false, "print the abstract's 56%/19% comparison")
	all := fs.Bool("all", false, "print every table and the headline")
	width := fs.Int("width", 8, "word width for table 1")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *all {
		for _, t := range []func(io.Writer) error{
			func(w io.Writer) error { return table1(w, *width) },
			table2, table3, headlineOut,
		} {
			if err := t(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	switch {
	case *table == 1:
		return table1(out, *width)
	case *table == 2:
		return table2(out)
	case *table == 3:
		return table3(out)
	case *headline:
		return headlineOut(out)
	}
	fs.Usage()
	return fmt.Errorf("choose -table 1|2|3, -headline or -all")
}

// table1 prints the word contents while ATMarch executes (the paper
// uses W=8 and shows the first three elements; we print all of them).
func table1(out io.Writer, width int) error {
	res, err := core.TWMTA(march.MustLookup("March U"), width)
	if err != nil {
		return err
	}
	rows, err := trace.SymbolicContents(res.ATMarch)
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("Table 1: word contents during ATMarch (W=%d)", width),
		Header: append([]string{"op"}, headerBits(width)...),
	}
	for _, r := range rows {
		tb.AddRow(append([]string{r.Op}, r.Content...)...)
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

func headerBits(width int) []string {
	out := make([]string, width)
	for i := 0; i < width; i++ {
		out[i] = fmt.Sprintf("d%d", width-1-i)
	}
	return out
}

// table2 prints the symbolic complexity comparison.
func table2(out io.Writer) error {
	tb := &report.Table{
		Title:  "Table 2: comparison of transparent test schemes",
		Header: []string{"scheme", "TCM", "TCP"},
	}
	for _, s := range complexity.Schemes() {
		tcm, tcp := complexity.Formula(s)
		tb.AddRow(s.String(), tcm, tcp)
	}
	_, err := io.WriteString(out, tb.Render())
	return err
}

// table3 prints the word-size sweep, closed-form and measured.
func table3(out io.Writer) error {
	rows, err := complexity.Table3()
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title: "Table 3: time complexity (ops per word; closed form, measured in parentheses)",
		Header: []string{"test", "W",
			"[12] TCM+TCP", "[13] TCM", "this work TCM+TCP"},
	}
	for _, r := range rows {
		tb.AddRow(
			r.Test,
			fmt.Sprintf("%d", r.Width),
			cell(r.Closed[complexity.Scheme1].Total(), r.Measured[complexity.Scheme1].Total()),
			cell(r.Closed[complexity.Scheme2].TCM, r.Measured[complexity.Scheme2].TCM),
			cell(r.Closed[complexity.Proposed].Total(), r.Measured[complexity.Proposed].Total()),
		)
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

func cell(closed, measured int) string {
	return fmt.Sprintf("%dN (%dN)", closed, measured)
}

// headlineOut prints the abstract's comparison for March C- on 32-bit
// words.
func headlineOut(out io.Writer) error {
	h, err := complexity.Headline(march.MustLookup("March C-"), 32)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Headline: March C-, W=32 (TCM+TCP totals)\n")
	fmt.Fprintf(out, "  closed form:  proposed %dN, Scheme 1 %dN, Scheme 2 %dN\n",
		h.ProposedTotal, h.Scheme1Total, h.Scheme2Total)
	fmt.Fprintf(out, "    proposed / Scheme 1 = %.1f%%   (paper: about 56%%)\n", 100*h.VsScheme1)
	fmt.Fprintf(out, "    proposed / Scheme 2 = %.1f%%   (paper: about 19%%)\n", 100*h.VsScheme2)
	fmt.Fprintf(out, "  measured:     proposed %dN, Scheme 1 %dN, Scheme 2 %dN\n",
		h.MeasuredProposedTotal, h.MeasuredScheme1Total, h.MeasuredScheme2Total)
	fmt.Fprintf(out, "    proposed / Scheme 1 = %.1f%%\n", 100*h.MeasuredVsScheme1)
	fmt.Fprintf(out, "    proposed / Scheme 2 = %.1f%%\n", 100*h.MeasuredVsScheme2)
	return nil
}
