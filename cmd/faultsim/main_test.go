package main

import (
	"io"
	"strings"
	"testing"
)

func render(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestDefaultCampaign(t *testing.T) {
	out := render(t, "-words", "3")
	for _, want := range []string{"TWMarch", "Scheme 1", "SAF", "TF", "CFid", "TOTAL", "100.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIntraScopeShowsTheTrade(t *testing.T) {
	out := render(t, "-words", "2", "-classes", "CFid", "-scope", "intra")
	if !strings.Contains(out, "TWMarch") || !strings.Contains(out, "Scheme 1") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Scheme 1 covers intra-word CFid fully; TWMarch partially.
	lines := strings.Split(out, "\n")
	var twTotal, s1Total string
	for _, l := range lines {
		if strings.HasPrefix(l, "TWMarch") && strings.Contains(l, "TOTAL") {
			twTotal = l
		}
		if strings.HasPrefix(l, "Scheme 1") && strings.Contains(l, "TOTAL") {
			s1Total = l
		}
	}
	if !strings.Contains(s1Total, "100.00%") {
		t.Errorf("Scheme 1 intra CFid should be complete: %q", s1Total)
	}
	if strings.Contains(twTotal, "100.00%") {
		t.Errorf("TWMarch intra CFid should be partial: %q", twTotal)
	}
}

func TestAddressFaultClass(t *testing.T) {
	out := render(t, "-classes", "AF", "-words", "3", "-baseline=false")
	if !strings.Contains(out, "AF") || !strings.Contains(out, "100.00%") {
		t.Errorf("AF campaign broken:\n%s", out)
	}
}

func TestSignatureMode(t *testing.T) {
	out := render(t, "-mode", "signature", "-classes", "SAF", "-words", "2", "-width", "8", "-baseline=false")
	if !strings.Contains(out, "signature") {
		t.Errorf("mode not reflected:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-classes", "XYZ"}, &b, io.Discard); err == nil {
		t.Error("unknown class accepted")
	}
	if err := run([]string{"-scope", "sideways"}, &b, io.Discard); err == nil {
		t.Error("unknown scope accepted")
	}
	if err := run([]string{"-mode", "psychic"}, &b, io.Discard); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-test", "March Z"}, &b, io.Discard); err == nil {
		t.Error("unknown test accepted")
	}
	if err := run([]string{"-classes", ""}, &b, io.Discard); err == nil {
		t.Error("empty class list accepted")
	}
}

// The -naive escape hatch must not change any reported number, in
// either single-run or grid mode (grid canonical JSON zeroes the knob,
// so the outputs are byte-identical).
func TestNaiveFlagMatchesFastPath(t *testing.T) {
	fast := render(t, "-words", "3", "-mode", "signature")
	naive := render(t, "-words", "3", "-mode", "signature", "-naive")
	if fast != naive {
		t.Errorf("single-run -naive output differs:\nfast:\n%s\nnaive:\n%s", fast, naive)
	}
	gridFast := render(t, "-grid", "-tests", "MATS,March C-", "-widths", "2,4", "-sizes", "2,3", "-json")
	gridNaive := render(t, "-grid", "-tests", "MATS,March C-", "-widths", "2,4", "-sizes", "2,3", "-json", "-naive")
	if gridFast != gridNaive {
		t.Errorf("grid -naive aggregate differs:\nfast:\n%s\nnaive:\n%s", gridFast, gridNaive)
	}
}

func TestGridMode(t *testing.T) {
	out := render(t, "-grid", "-tests", "MATS,March C-", "-widths", "2,4", "-sizes", "2,3",
		"-classes", "SAF,TF", "-seed", "9")
	for _, want := range []string{"16 cells", "twm", "scheme1", "TOTAL", "op counts"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
	// Without -baseline the scheme1 column disappears.
	solo := render(t, "-grid", "-baseline=false", "-classes", "SAF", "-sizes", "2")
	if strings.Contains(solo, "scheme1") {
		t.Errorf("-baseline=false grid still runs scheme1:\n%s", solo)
	}
}

func TestGridPipeline(t *testing.T) {
	out := render(t, "-grid", "-pipeline", "-classes", "SAF,TF", "-sizes", "4", "-widths", "4",
		"-ecc", "secded", "-spare-rows", "1", "-spare-cols", "1")
	for _, want := range []string{"yield pipeline", "repairable", "diagnosed fault classes", "ecc secded"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline grid output missing %q:\n%s", want, out)
		}
	}
	var b strings.Builder
	if err := run([]string{"-grid", "-pipeline", "-ecc", "psychic"}, &b, io.Discard); err == nil {
		t.Error("bad -ecc accepted")
	}
	if err := run([]string{"-grid", "-pipeline", "-spare-rows", "-2"}, &b, io.Discard); err == nil {
		t.Error("negative -spare-rows accepted")
	}
}

// TestGridProgress checks the -progress stream: completion lines land
// on the error writer (stdout stays clean for the report) and the
// final line reports the full grid.
func TestGridProgress(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-grid", "-progress", "-tests", "MATS,March C-", "-widths", "2,4",
		"-sizes", "2,3", "-classes", "SAF,TF", "-seed", "9"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(out.String(), "op counts") {
		t.Errorf("report missing from stdout:\n%s", out.String())
	}
	if strings.Contains(out.String(), "progress:") {
		t.Errorf("progress lines leaked into stdout:\n%s", out.String())
	}
	prog := errOut.String()
	if !strings.Contains(prog, "progress: 16/16 cells (100.0%)") {
		t.Errorf("final progress line missing:\n%s", prog)
	}
	if !strings.Contains(prog, "cells/s") {
		t.Errorf("progress lines carry no rate:\n%s", prog)
	}

	// Without -progress the error writer stays silent.
	errOut.Reset()
	out.Reset()
	if err := run([]string{"-grid", "-classes", "SAF", "-sizes", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if errOut.Len() != 0 {
		t.Errorf("progress printed without -progress:\n%s", errOut.String())
	}
}

func TestGridModeJSON(t *testing.T) {
	out := render(t, "-grid", "-json", "-classes", "SAF", "-sizes", "2", "-widths", "2")
	if !strings.Contains(out, `"spec"`) || !strings.Contains(out, `"coverage"`) {
		t.Errorf("grid JSON aggregate malformed:\n%s", out)
	}
}

func TestGridModeErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-grid", "-widths", "nope"}, &b, io.Discard); err == nil {
		t.Error("bad -widths accepted")
	}
	if err := run([]string{"-grid", "-sizes", "1.5"}, &b, io.Discard); err == nil {
		t.Error("bad -sizes accepted")
	}
	if err := run([]string{"-grid", "-mode", "psychic"}, &b, io.Discard); err == nil {
		t.Error("bad grid mode accepted")
	}
	if err := run([]string{"-grid", "-tests", "March Z"}, &b, io.Discard); err == nil {
		t.Error("unknown grid test accepted")
	}
}

func TestCharacterizeFlag(t *testing.T) {
	out := render(t, "-characterize", "-words", "3")
	for _, want := range []string{"characterization", "March SS", "DRDF", "Linked", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("characterization output missing %q", want)
		}
	}
}
